//! Criterion benches for the §5 multiprocessor algorithms (E9–E11).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pas_core::multi::{flow, makespan, partition};
use pas_power::PolyPower;
use pas_workload::{generators, Instance};
use std::hint::black_box;

fn equal_work_instance(n: usize) -> Instance {
    let raw = generators::poisson(n, 1.0, (1.0, 1.0), 42);
    let releases: Vec<f64> = raw.jobs().iter().map(|j| j.release).collect();
    Instance::equal_work(&releases, 1.0).expect("valid")
}

fn bench_multi_solvers(c: &mut Criterion) {
    let model = PolyPower::CUBE;
    let mut group = c.benchmark_group("multi");
    group.sample_size(15);
    for &(n, m) in &[(32usize, 2usize), (64, 4), (128, 8)] {
        let instance = equal_work_instance(n);
        let budget = 2.0 * instance.total_work();
        group.bench_with_input(
            BenchmarkId::new("makespan", format!("n{n}_m{m}")),
            &n,
            |b, _| {
                b.iter(|| makespan::laptop(black_box(&instance), &model, m, budget, 1e-9).unwrap())
            },
        );
        group.bench_with_input(
            BenchmarkId::new("flow", format!("n{n}_m{m}")),
            &n,
            |b, _| b.iter(|| flow::laptop(black_box(&instance), 3.0, m, budget, 1e-9).unwrap()),
        );
    }
    group.finish();
}

fn bench_partition_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("partition");
    group.sample_size(10);
    for &n in &[12usize, 16, 20] {
        let works: Vec<f64> = (0..n).map(|k| 0.5 + (k as f64 * 0.77) % 3.0).collect();
        group.bench_with_input(BenchmarkId::new("bb_incremental", n), &n, |b, _| {
            b.iter(|| partition::min_norm_assignment(black_box(&works), 3, 3.0))
        });
        // The kept seed engine, for the speedup denominator (the full
        // witness sweep lives in exp-scaling --only multi).
        if n <= 16 {
            group.bench_with_input(BenchmarkId::new("bb_reference", n), &n, |b, _| {
                b.iter(|| partition::min_norm_assignment_reference(black_box(&works), 3, 3.0))
            });
        }
        group.bench_with_input(BenchmarkId::new("bb_parallel", n), &n, |b, _| {
            b.iter(|| {
                pas_core::multi::parallel::min_norm_assignment_parallel(black_box(&works), 3, 3.0)
            })
        });
        group.bench_with_input(BenchmarkId::new("lpt", n), &n, |b, _| {
            b.iter(|| partition::lpt_assignment(black_box(&works), 3, 3.0))
        });
    }
    // Subset-sum DP scales with the value range.
    for &half in &[100u64, 1000, 10000] {
        let values = generators::partition_yes_instance(8, half, 3);
        group.bench_with_input(BenchmarkId::new("subset_sum_dp", half), &half, |b, _| {
            b.iter(|| partition::partition_witness(black_box(&values)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_multi_solvers, bench_partition_solvers);
criterion_main!(benches);
