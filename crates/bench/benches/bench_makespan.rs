//! Criterion benches for the §3 makespan solvers (experiments E4/E5).
//!
//! The claims under test: `IncMerge` and the frontier build are linear
//! in `n` (after sorting), MoveRight is quadratic, and the §3.1 DP is
//! slower still. Criterion reports per-size timings; the shape to check
//! is the growth factor per doubling (≈2 / ≈4 / ≈8).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pas_core::makespan::{dp, incmerge, moveright, Frontier};
use pas_power::PolyPower;
use pas_workload::generators;
use std::hint::black_box;

fn bench_makespan_solvers(c: &mut Criterion) {
    let model = PolyPower::CUBE;
    let mut group = c.benchmark_group("makespan");
    group.sample_size(20);

    for &n in &[256usize, 1024, 4096] {
        let instance = generators::uniform(n, n as f64, (0.2, 2.0), 42);
        let budget = 2.0 * instance.total_work();
        group.bench_with_input(BenchmarkId::new("incmerge", n), &n, |b, _| {
            b.iter(|| incmerge::laptop(black_box(&instance), &model, budget).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("frontier_build", n), &n, |b, _| {
            b.iter(|| Frontier::build(black_box(&instance), &model))
        });
    }

    for &n in &[256usize, 512, 1024] {
        let instance = generators::uniform(n, n as f64, (0.2, 2.0), 42);
        let deadline = instance.last_release() + 0.1 * n as f64;
        group.bench_with_input(BenchmarkId::new("moveright", n), &n, |b, _| {
            b.iter(|| moveright::server_moveright(black_box(&instance), &model, deadline).unwrap())
        });
    }

    for &n in &[64usize, 128, 256] {
        let instance = generators::uniform(n, n as f64, (0.2, 2.0), 42);
        let budget = 2.0 * instance.total_work();
        group.bench_with_input(BenchmarkId::new("dp", n), &n, |b, _| {
            b.iter(|| dp::laptop_dp(black_box(&instance), &model, budget).unwrap())
        });
    }
    group.finish();
}

fn bench_frontier_queries(c: &mut Criterion) {
    let model = PolyPower::CUBE;
    let instance = generators::uniform(4096, 4096.0, (0.2, 2.0), 42);
    let frontier = Frontier::build(&instance, &model);
    let budget = 2.0 * instance.total_work();
    let mut group = c.benchmark_group("frontier_queries");
    group.bench_function("makespan_at_energy", |b| {
        b.iter(|| frontier.makespan(&model, black_box(budget)).unwrap())
    });
    let t = frontier.makespan(&model, budget).unwrap();
    group.bench_function("energy_for_makespan", |b| {
        b.iter(|| frontier.energy_for_makespan(&model, black_box(t)).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_makespan_solvers, bench_frontier_queries);
criterion_main!(benches);
