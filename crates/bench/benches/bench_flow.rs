//! Criterion benches for the §4 flow solver (experiments E6–E8, E20).
//!
//! Measures the block-decomposition engine against the damped
//! fixed-point reference on the shared E20 family (`solve_for_u` and the
//! full laptop solve), the marginal cost of a warm-started curve point
//! vs a cold one, and the Theorem-8 witness verification at several
//! tolerances.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pas_bench::experiments::scaling::e20_instance;
use pas_core::flow::solver::{self, FlowWorkspace};
use pas_core::flow::{curve, hardness};
use std::hint::black_box;

fn bench_flow_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("flow");
    group.sample_size(20);
    for &n in &[16usize, 64, 256, 1024] {
        let instance = e20_instance(n);
        let budget = 2.0 * instance.total_work();
        group.bench_with_input(BenchmarkId::new("solve_for_u", n), &n, |b, _| {
            b.iter(|| solver::solve_for_u(black_box(&instance), 3.0, 1.0).unwrap())
        });
        if n <= 256 {
            group.bench_with_input(BenchmarkId::new("solve_for_u_reference", n), &n, |b, _| {
                b.iter(|| solver::solve_for_u_reference(black_box(&instance), 3.0, 1.0).unwrap())
            });
        }
        group.bench_with_input(BenchmarkId::new("laptop", n), &n, |b, _| {
            b.iter(|| solver::laptop(black_box(&instance), 3.0, budget, 1e-9).unwrap())
        });
    }
    group.finish();
}

fn bench_curve_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("flow_curve");
    group.sample_size(10);
    for &n in &[64usize, 256] {
        let instance = e20_instance(n);
        let w = instance.total_work();
        let energies: Vec<f64> = (0..40).map(|k| w * (0.5 + 3.5 * k as f64 / 39.0)).collect();
        // The full warm-started sweep (workspace + neighbour seeds)...
        group.bench_with_input(BenchmarkId::new("sweep_warm", n), &n, |b, _| {
            b.iter(|| curve::tradeoff_curve(black_box(&instance), 3.0, &energies, 1e-9).unwrap())
        });
        // ...vs the same energies each solved cold.
        group.bench_with_input(BenchmarkId::new("sweep_cold", n), &n, |b, _| {
            b.iter(|| {
                let ws = FlowWorkspace::new(black_box(&instance), 3.0).unwrap();
                for &e in &energies {
                    ws.laptop(e, 1e-9, None).unwrap();
                }
            })
        });
    }
    group.finish();
}

fn bench_witness(c: &mut Criterion) {
    let mut group = c.benchmark_group("hardness_witness");
    group.sample_size(20);
    for &tol in &[1e-6, 1e-12] {
        group.bench_with_input(
            BenchmarkId::new("verify", format!("{tol:e}")),
            &tol,
            |b, &tol| b.iter(|| hardness::verify_witness(black_box(tol)).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_flow_solver, bench_curve_sweep, bench_witness);
criterion_main!(benches);
