//! Criterion benches for the §4 flow solver (experiments E6–E8).
//!
//! Measures the inner Theorem-1 fixed point and the full laptop solve
//! (outer bisection included) as `n` grows, plus the Theorem-8 witness
//! verification at several tolerances.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pas_core::flow::{hardness, solver};
use pas_workload::generators;
use std::hint::black_box;

fn bench_flow_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("flow");
    group.sample_size(20);
    for &n in &[16usize, 64, 256] {
        let instance = generators::equal_work_poisson(n, 1.0, 1.0, 42);
        let budget = 2.0 * instance.total_work();
        group.bench_with_input(BenchmarkId::new("solve_for_u", n), &n, |b, _| {
            b.iter(|| solver::solve_for_u(black_box(&instance), 3.0, 1.0).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("laptop", n), &n, |b, _| {
            b.iter(|| solver::laptop(black_box(&instance), 3.0, budget, 1e-9).unwrap())
        });
    }
    group.finish();
}

fn bench_witness(c: &mut Criterion) {
    let mut group = c.benchmark_group("hardness_witness");
    group.sample_size(20);
    for &tol in &[1e-6, 1e-12] {
        group.bench_with_input(
            BenchmarkId::new("verify", format!("{tol:e}")),
            &tol,
            |b, &tol| b.iter(|| hardness::verify_witness(black_box(tol)).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_flow_solver, bench_witness);
criterion_main!(benches);
