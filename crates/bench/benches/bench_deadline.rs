//! Criterion benches for the §2 deadline-scheduling substrate (E12) and
//! the YDS timeline engine vs the seed reference (E19).
//!
//! The naive-vs-optimized group stops the `O(n⁴)` reference at n=512 to
//! keep `cargo bench` minutes-scale; the full acceptance sweep (through
//! n=2000, written to `BENCH_yds.json`) lives in
//! `exp-scaling --bench-json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pas_bench::experiments::scaling::{e19_instance, E19_REFERENCE_CAP};
use pas_core::deadline::{avr, oa, yds, yds_reference, DeadlineInstance};
use std::hint::black_box;

fn bench_deadline_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("deadline");
    group.sample_size(15);
    for &n in &[16usize, 32, 64] {
        let instance = DeadlineInstance::random(n, n as f64, (0.5, 6.0), (0.2, 2.0), 42);
        group.bench_with_input(BenchmarkId::new("yds", n), &n, |b, _| {
            b.iter(|| yds(black_box(&instance)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("avr", n), &n, |b, _| {
            b.iter(|| avr(black_box(&instance)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("oa", n), &n, |b, _| {
            b.iter(|| oa(black_box(&instance)).unwrap())
        });
    }
    group.finish();
}

fn bench_yds_naive_vs_optimized(c: &mut Criterion) {
    let mut group = c.benchmark_group("yds_scaling");
    group.sample_size(10);
    for &n in &[64usize, 128, 256, 512, 1024] {
        let instance = e19_instance(n);
        group.bench_with_input(BenchmarkId::new("optimized", n), &n, |b, _| {
            b.iter(|| yds(black_box(&instance)).unwrap())
        });
        if n <= E19_REFERENCE_CAP {
            group.bench_with_input(BenchmarkId::new("reference", n), &n, |b, _| {
                b.iter(|| yds_reference(black_box(&instance)).unwrap())
            });
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_deadline_algorithms,
    bench_yds_naive_vs_optimized
);
criterion_main!(benches);
