//! Criterion benches for the §2 deadline-scheduling substrate (E12).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pas_core::deadline::{avr, oa, yds, DeadlineInstance};
use std::hint::black_box;

fn bench_deadline_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("deadline");
    group.sample_size(15);
    for &n in &[16usize, 32, 64] {
        let instance = DeadlineInstance::random(n, n as f64, (0.5, 6.0), (0.2, 2.0), 42);
        group.bench_with_input(BenchmarkId::new("yds", n), &n, |b, _| {
            b.iter(|| yds(black_box(&instance)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("avr", n), &n, |b, _| {
            b.iter(|| avr(black_box(&instance)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("oa", n), &n, |b, _| {
            b.iter(|| oa(black_box(&instance)).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_deadline_algorithms);
criterion_main!(benches);
