//! Criterion benches for the §2 deadline-scheduling substrate (E12),
//! the YDS timeline engine vs the seed reference (E19), and the OA
//! kinetic tournament vs the per-event sweep (E22).
//!
//! The YDS naive-vs-optimized group stops the `O(n⁴)` reference at
//! n=512 to keep `cargo bench` minutes-scale; the full acceptance
//! sweeps (YDS through n=2000 into `BENCH_yds.json`, OA through
//! n=20000 into `BENCH_oa.json`) live in `exp-scaling --bench-json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pas_bench::experiments::scaling::{
    e19_instance, e22_clustered, e22_uniform, E19_REFERENCE_CAP,
};
use pas_core::deadline::{avr, oa, oa_reference, yds, yds_reference, DeadlineInstance};
use std::hint::black_box;

fn bench_deadline_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("deadline");
    group.sample_size(15);
    for &n in &[16usize, 32, 64] {
        let instance = DeadlineInstance::random(n, n as f64, (0.5, 6.0), (0.2, 2.0), 42);
        group.bench_with_input(BenchmarkId::new("yds", n), &n, |b, _| {
            b.iter(|| yds(black_box(&instance)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("avr", n), &n, |b, _| {
            b.iter(|| avr(black_box(&instance)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("oa", n), &n, |b, _| {
            b.iter(|| oa(black_box(&instance)).unwrap())
        });
    }
    group.finish();
}

fn bench_yds_naive_vs_optimized(c: &mut Criterion) {
    let mut group = c.benchmark_group("yds_scaling");
    group.sample_size(10);
    for &n in &[64usize, 128, 256, 512, 1024] {
        let instance = e19_instance(n);
        group.bench_with_input(BenchmarkId::new("optimized", n), &n, |b, _| {
            b.iter(|| yds(black_box(&instance)).unwrap())
        });
        if n <= E19_REFERENCE_CAP {
            group.bench_with_input(BenchmarkId::new("reference", n), &n, |b, _| {
                b.iter(|| yds_reference(black_box(&instance)).unwrap())
            });
        }
    }
    group.finish();
}

fn bench_oa_kinetic_vs_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("oa_scaling");
    group.sample_size(10);
    for &n in &[256usize, 1024, 4096] {
        for (family, instance) in [("uniform", e22_uniform(n)), ("clustered", e22_clustered(n))] {
            group.bench_with_input(
                BenchmarkId::new(format!("kinetic/{family}"), n),
                &n,
                |b, _| b.iter(|| oa(black_box(&instance)).unwrap()),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("reference/{family}"), n),
                &n,
                |b, _| b.iter(|| oa_reference(black_box(&instance)).unwrap()),
            );
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_deadline_algorithms,
    bench_yds_naive_vs_optimized,
    bench_oa_kinetic_vs_sweep
);
criterion_main!(benches);
