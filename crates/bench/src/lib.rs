//! # pas-bench
//!
//! The experiment harness regenerating every figure of the paper and
//! every quantitative claim the reproduction tracks (EXPERIMENTS.md).
//!
//! Each experiment lives in [`experiments`] as a pure function returning
//! [`CsvTable`]s; the `exp-*` binaries are thin wrappers printing one
//! experiment to stdout, and `exp-all` writes every table under
//! `results/`. Criterion benches (in `benches/`) cover the performance
//! claims (IncMerge's linearity vs the DP and MoveRight baselines, etc.).

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod experiments;
pub mod harness;

pub use harness::CsvTable;
