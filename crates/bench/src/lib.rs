//! # pas-bench
//!
//! The experiment harness regenerating every figure of the paper and
//! every quantitative claim the reproduction tracks (EXPERIMENTS.md).
//!
//! Each experiment lives in [`experiments`] as a pure function returning
//! [`CsvTable`]s; the `exp-*` binaries are thin wrappers printing one
//! experiment to stdout, and `exp-all` writes every table under
//! `results/`. Criterion benches (in `benches/`) cover the performance
//! claims (IncMerge's linearity vs the DP and MoveRight baselines, etc.).
//!
//! The engine-vs-reference rewrites each record a perf trajectory as a
//! repo-root JSON file via `exp-scaling --bench-json` (see README.md's
//! `BENCH_*` convention): E19 `BENCH_yds.json` (§2 deadline stack),
//! E20 `BENCH_flow.json` (§4 flow solver), E21 `BENCH_multi.json`
//! (§5 multiprocessor partition). `--smoke` is the seconds-scale tier
//! CI runs so the plumbing cannot rot.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod experiments;
pub mod harness;

pub use harness::CsvTable;
