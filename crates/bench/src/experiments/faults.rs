//! E23: the fault-resilience sweep — fault rate × online policy.
//!
//! For each workload family, policy, and fault rate, a deterministic
//! [`FaultPlan`] sampled from [`FaultModel::uniform_mix`] (equal parts
//! crash, cancellation, throttle, and arrival burst) is injected into
//! the online engine, and the faulted run is compared against the same
//! policy's fault-free baseline on the same instance. The table records
//! the energy and flow overheads, the makespan stretch, and the
//! [`pas_sim::ResilienceReport`] counters (downtime, lost work,
//! recovery latency, SLO misses). The shape to expect: overheads grow
//! with the fault rate, hedged policies degrade more gracefully than
//! spend-all (a crash late in a spend-all run has no energy left to
//! recover with), and recovery latency tracks crash duration plus the
//! re-planning delay of the first post-recovery decision.

use crate::harness::{fmt, CsvTable};
use pas_core::online::{AdaptiveRate, FractionalSpend, SpendAll};
use pas_power::PolyPower;
use pas_sim::online::OnlinePolicy;
use pas_sim::{metrics, run_online_with_faults, FaultModel, FaultPlan};
use pas_workload::{generators, Instance};

/// One faulted run compared against its fault-free baseline.
#[derive(Debug, Clone)]
pub struct FaultPoint {
    /// Workload family name.
    pub workload: &'static str,
    /// Policy name (from [`OnlinePolicy::name`]).
    pub policy: String,
    /// Total fault rate fed to [`FaultModel::uniform_mix`].
    pub rate: f64,
    /// Seed used for both the workload and the fault plan.
    pub seed: u64,
    /// Energy of the fault-free baseline run.
    pub baseline_energy: f64,
    /// Makespan of the fault-free baseline run.
    pub baseline_makespan: f64,
    /// Mean per-job flow of the fault-free baseline run.
    pub baseline_mean_flow: f64,
    /// Energy of the faulted run.
    pub energy: f64,
    /// Makespan of the faulted run.
    pub makespan: f64,
    /// Mean per-job flow of the faulted run (over the jobs it actually
    /// delivered — cancelled jobs excluded, burst jobs included).
    pub mean_flow: f64,
    /// Crash events applied.
    pub crashes: usize,
    /// Total machine downtime.
    pub downtime: f64,
    /// Work erased by lose-progress crashes and cancellations.
    pub lost_work: f64,
    /// Energy metered on progress later erased or cancelled.
    pub wasted_energy: f64,
    /// Jobs cancelled.
    pub cancelled_jobs: usize,
    /// Jobs injected by arrival bursts.
    pub burst_jobs: usize,
    /// Decisions clamped by a throttle cap.
    pub throttle_clamps: usize,
    /// Largest crash-to-first-work recovery latency.
    pub max_recovery_latency: f64,
    /// Jobs whose flow exceeded the SLO (cancelled jobs count).
    pub deadline_misses: usize,
}

impl FaultPoint {
    /// Faulted energy over baseline energy.
    pub fn energy_overhead(&self) -> f64 {
        self.energy / self.baseline_energy
    }

    /// Faulted mean flow over baseline mean flow.
    pub fn flow_overhead(&self) -> f64 {
        self.mean_flow / self.baseline_mean_flow
    }

    /// Faulted makespan over baseline makespan.
    pub fn makespan_stretch(&self) -> f64 {
        self.makespan / self.baseline_makespan
    }
}

/// Names of the swept policies, for documentation and assertions.
pub const POLICY_COUNT: usize = 3;

fn policy_at(idx: usize, model: PolyPower, budget: f64) -> Box<dyn OnlinePolicy> {
    match idx {
        0 => Box::new(SpendAll::new(model, budget)),
        1 => Box::new(FractionalSpend::new(model, budget, 0.5)),
        _ => Box::new(AdaptiveRate::new(model, budget, 10.0)),
    }
}

fn mean_flow(schedule: &pas_sim::Schedule, instance: &Instance) -> f64 {
    let completions = schedule.completion_times();
    let delivered = instance
        .jobs()
        .iter()
        .filter(|j| completions.contains_key(&j.id))
        .count();
    if delivered == 0 {
        return 0.0;
    }
    metrics::total_flow(schedule, instance) / delivered as f64
}

/// Run the sweep: `seeds` workloads per family, each policy once
/// fault-free and once per rate under a plan sampled for that rate.
pub fn fault_resilience(n: usize, rates: &[f64], seeds: u64) -> Vec<FaultPoint> {
    assert!(n >= 3, "need at least a few jobs");
    let model = PolyPower::CUBE;
    let mut points = Vec::new();
    for seed in 0..seeds {
        let workloads: Vec<(&'static str, Instance)> = vec![
            (
                "uniform",
                generators::uniform(n, n as f64 / 2.0, (0.5, 1.5), seed),
            ),
            (
                "clustered",
                generators::bursty(3, n / 3, n as f64 / 3.0, 0.5, (0.5, 1.5), seed),
            ),
            ("poisson", generators::poisson(n, 0.8, (0.5, 1.5), seed)),
        ];
        for (workload, instance) in workloads {
            // Generous budget: bursts inject extra work the budget must
            // absorb, and the point is degradation shape, not starvation.
            let budget = 2.5 * instance.total_work();
            let horizon = instance.last_release() + instance.total_work();
            let ids: Vec<u32> = instance.jobs().iter().map(|j| j.id).collect();
            for idx in 0..POLICY_COUNT {
                let mut baseline_policy = policy_at(idx, model, budget);
                let baseline = run_online_with_faults(
                    &instance,
                    &model,
                    baseline_policy.as_mut(),
                    &FaultPlan::none(),
                )
                .expect("fault-free run succeeds");
                let baseline_energy = baseline.energy;
                let baseline_makespan = metrics::makespan(&baseline.schedule);
                let baseline_mean_flow = mean_flow(&baseline.schedule, &instance);
                // SLO: twice the worst fault-free flow — a run that
                // doubles a job's response time has missed its deadline.
                let slo = 2.0 * metrics::max_flow(&baseline.schedule, &instance);
                for &rate in rates {
                    let plan = FaultModel::uniform_mix(rate)
                        .sample(
                            horizon,
                            &ids,
                            seed.wrapping_mul(0x9e37).wrapping_add(idx as u64),
                        )
                        .with_slo(slo);
                    let mut policy = policy_at(idx, model, budget);
                    let out = run_online_with_faults(&instance, &model, policy.as_mut(), &plan)
                        .expect("faulted run succeeds");
                    let flow_instance = out.effective.as_ref().unwrap_or(&instance);
                    points.push(FaultPoint {
                        workload,
                        policy: policy.name(),
                        rate,
                        seed,
                        baseline_energy,
                        baseline_makespan,
                        baseline_mean_flow,
                        energy: out.energy,
                        makespan: metrics::makespan(&out.schedule),
                        mean_flow: mean_flow(&out.schedule, flow_instance),
                        crashes: out.resilience.crashes,
                        downtime: out.resilience.downtime,
                        lost_work: out.resilience.lost_work,
                        wasted_energy: out.resilience.wasted_energy,
                        cancelled_jobs: out.resilience.cancelled_jobs,
                        burst_jobs: out.resilience.burst_jobs,
                        throttle_clamps: out.resilience.throttle_clamps,
                        max_recovery_latency: out.resilience.max_recovery_latency(),
                        deadline_misses: out.resilience.deadline_misses.unwrap_or(0),
                    });
                }
            }
        }
    }
    points
}

/// The acceptance-tier sweep.
pub fn faults_default() -> Vec<FaultPoint> {
    fault_resilience(60, &[0.02, 0.05, 0.1, 0.2, 0.4], 5)
}

/// The smoke-tier sweep: seconds-scale, exercised in CI.
pub fn faults_smoke() -> Vec<FaultPoint> {
    fault_resilience(12, &[0.05, 0.2], 2)
}

/// Render points as the `fault_resilience` CSV table.
pub fn faults_table(points: &[FaultPoint]) -> CsvTable {
    let mut table = CsvTable::new(
        "fault_resilience",
        &[
            "workload",
            "policy",
            "rate",
            "seed",
            "energy_overhead",
            "flow_overhead",
            "makespan_stretch",
            "crashes",
            "downtime",
            "lost_work",
            "wasted_energy",
            "cancelled_jobs",
            "burst_jobs",
            "throttle_clamps",
            "max_recovery_latency",
            "deadline_misses",
        ],
    );
    for p in points {
        table.push_row(vec![
            p.workload.to_string(),
            p.policy.clone(),
            format!("{}", p.rate),
            p.seed.to_string(),
            fmt(p.energy_overhead()),
            fmt(p.flow_overhead()),
            fmt(p.makespan_stretch()),
            p.crashes.to_string(),
            fmt(p.downtime),
            fmt(p.lost_work),
            fmt(p.wasted_energy),
            p.cancelled_jobs.to_string(),
            p.burst_jobs.to_string(),
            p.throttle_clamps.to_string(),
            fmt(p.max_recovery_latency),
            p.deadline_misses.to_string(),
        ]);
    }
    table
}

/// Render points as the `BENCH_faults.json` document — the resilience
/// path's trajectory record, sibling to the other `BENCH_*` files.
pub fn faults_bench_json(points: &[FaultPoint]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"bench\": \"fault_resilience\",\n");
    out.push_str(
        "  \"fault_model\": \"uniform_mix(rate): crash/cancel/throttle/burst at rate/4 each, seeded Poisson arrivals\",\n",
    );
    out.push_str(
        "  \"metric\": \"faulted-over-baseline overheads plus ResilienceReport counters\",\n  \"points\": [\n",
    );
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workload\": \"{}\", \"policy\": \"{}\", \"rate\": {}, \"seed\": {}, \"energy_overhead\": {:.6}, \"flow_overhead\": {:.6}, \"makespan_stretch\": {:.6}, \"crashes\": {}, \"downtime\": {:.6}, \"lost_work\": {:.6}, \"wasted_energy\": {:.6}, \"cancelled_jobs\": {}, \"burst_jobs\": {}, \"throttle_clamps\": {}, \"max_recovery_latency\": {:.6}, \"deadline_misses\": {}}}{}\n",
            p.workload,
            p.policy,
            p.rate,
            p.seed,
            p.energy_overhead(),
            p.flow_overhead(),
            p.makespan_stretch(),
            p.crashes,
            p.downtime,
            p.lost_work,
            p.wasted_energy,
            p.cancelled_jobs,
            p.burst_jobs,
            p.throttle_clamps,
            p.max_recovery_latency,
            p.deadline_misses,
            if i + 1 == points.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Produce the smoke-tier table (used by `exp-all`).
pub fn run() -> Vec<CsvTable> {
    vec![faults_table(&faults_smoke())]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_the_matrix_and_baselines_are_clean() {
        let points = fault_resilience(10, &[0.0, 0.3], 1);
        // 3 workloads × 3 policies × 2 rates × 1 seed.
        assert_eq!(points.len(), 18);
        for p in &points {
            assert!(p.baseline_energy > 0.0, "{p:?}");
            assert!(p.baseline_makespan > 0.0, "{p:?}");
            assert!(p.energy_overhead().is_finite(), "{p:?}");
            assert!(p.makespan_stretch() >= 0.0, "{p:?}");
            if p.rate == 0.0 {
                // Rate zero samples an empty plan: the faulted run IS
                // the baseline (SLO aside), so overheads are exactly 1.
                assert_eq!(p.crashes, 0, "{p:?}");
                assert!((p.energy_overhead() - 1.0).abs() < 1e-9, "{p:?}");
                assert!((p.makespan_stretch() - 1.0).abs() < 1e-9, "{p:?}");
            }
        }
        // At rate 0.3 over 9 runs, at least one fault should land.
        let hit = points
            .iter()
            .filter(|p| p.rate > 0.0)
            .any(|p| p.crashes + p.cancelled_jobs + p.burst_jobs + p.throttle_clamps > 0);
        assert!(hit, "no faults landed at rate 0.3");
    }

    #[test]
    fn json_and_table_agree_on_row_count() {
        let points = fault_resilience(8, &[0.2], 1);
        let table = faults_table(&points);
        assert_eq!(table.rows.len(), points.len());
        let json = faults_bench_json(&points);
        assert_eq!(
            json.matches("\"workload\"").count(),
            points.len(),
            "one JSON object per point"
        );
        assert!(json.ends_with("  ]\n}\n"));
    }

    #[test]
    fn plans_replay_identically_across_calls() {
        let a = fault_resilience(8, &[0.25], 2);
        let b = fault_resilience(8, &[0.25], 2);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.energy.to_bits(), y.energy.to_bits());
            assert_eq!(x.crashes, y.crashes);
            assert_eq!(x.deadline_misses, y.deadline_misses);
        }
    }
}
