//! E18: speed bounds (§6's "minimum and/or maximum speeds").
//!
//! Sweeps the server-problem deadline on the paper instance under a
//! bounded model and records the bounded-optimal energy against the
//! unbounded optimum. Shapes: the curves coincide while the bounds are
//! inactive; a maximum speed makes tight deadlines infeasible (empty
//! cells); a minimum speed floors the energy at `W·g(σ_min)` for lazy
//! deadlines — the regime where Lemma 4 (no idle time) genuinely fails.

use crate::harness::{fmt, CsvTable};
use pas_core::makespan::{bounded, incmerge};
use pas_power::{BoundedPower, PolyPower};
use pas_workload::Instance;

/// Produce the bounded-speed table.
pub fn run() -> Vec<CsvTable> {
    let instance =
        Instance::from_pairs(&[(0.0, 5.0), (5.0, 2.0), (6.0, 1.0)]).expect("paper instance");
    let model = PolyPower::CUBE;
    let bounds = BoundedPower::new(model, 0.75, 1.75);
    let mut table = CsvTable::new(
        "bounded_speed_server",
        &[
            "deadline",
            "unbounded_energy",
            "bounded_energy",
            "bounded_feasible",
            "min_clamped",
        ],
    );
    for k in 0..=24 {
        let t = 6.2 + 0.4 * k as f64;
        let unbounded = incmerge::server(&instance, &model, t)
            .expect("deadline after last release")
            .energy(&model);
        match bounded::server_bounded(&instance, &bounds, t) {
            Ok(sol) => table.push_row(vec![
                fmt(t),
                fmt(unbounded),
                fmt(sol.energy),
                "true".into(),
                sol.clamped_to_min.to_string(),
            ]),
            Err(_) => table.push_row(vec![
                fmt(t),
                fmt(unbounded),
                String::new(),
                "false".into(),
                String::new(),
            ]),
        }
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    #[test]
    fn regimes_appear_in_order() {
        let tables = super::run();
        let rows = &tables[0].rows;
        // Early (tight) deadlines: infeasible under the speed cap.
        assert_eq!(rows[0][3], "false", "{:?}", rows[0]);
        // Some middle row: feasible, not clamped, equal to unbounded.
        let exact = rows.iter().find(|r| r[3] == "true" && r[4] == "false");
        let exact = exact.expect("an unconstrained regime exists");
        let unb: f64 = exact[1].parse().unwrap();
        let bnd: f64 = exact[2].parse().unwrap();
        assert!((unb - bnd).abs() < 1e-6 * unb, "{exact:?}");
        // Late rows: clamped to the minimum speed, energy floored at
        // W·g(0.75) = 8·0.5625 = 4.5 > unbounded.
        let last = rows.last().unwrap();
        assert_eq!(last[4], "true", "{last:?}");
        let bnd_last: f64 = last[2].parse().unwrap();
        assert!((bnd_last - 4.5).abs() < 1e-9, "{last:?}");
        let unb_last: f64 = last[1].parse().unwrap();
        assert!(bnd_last > unb_last);
    }
}
