//! E12: empirical competitive ratios of AVR and Optimal Available.
//!
//! The paper's §2 quotes the analytic bounds — AVR at most
//! `2^{α−1}·α^α` (Yao et al.), OA at most `α^α` (Bansal–Kimbrel–Pruhs).
//! This experiment measures the ratios on random deadline workloads for
//! several α: the shape to check is `1 ≤ ratio ≪ bound`, with OA
//! consistently at or below AVR.

use crate::harness::{fmt, CsvTable};
use pas_core::deadline::{avr, oa, yds, DeadlineInstance};
use pas_power::PolyPower;
use pas_sim::metrics;

/// Produce the competitive-ratio table.
pub fn run() -> Vec<CsvTable> {
    let mut table = CsvTable::new(
        "deadline_competitive_ratios",
        &[
            "alpha",
            "seed",
            "avr_ratio",
            "oa_ratio",
            "avr_bound",
            "oa_bound",
        ],
    );
    for &alpha in &[1.5f64, 2.0, 3.0] {
        let model = PolyPower::new(alpha);
        let avr_bound = 2f64.powf(alpha - 1.0) * alpha.powf(alpha);
        let oa_bound = alpha.powf(alpha);
        for seed in 0..8u64 {
            let inst = DeadlineInstance::random(20, 18.0, (0.5, 6.0), (0.2, 2.0), seed);
            let opt = metrics::energy(&yds(&inst).expect("feasible").schedule, &model);
            let a = metrics::energy(&avr(&inst).expect("feasible"), &model);
            let o = metrics::energy(&oa(&inst).expect("feasible"), &model);
            table.push_row(vec![
                fmt(alpha),
                seed.to_string(),
                fmt(a / opt),
                fmt(o / opt),
                fmt(avr_bound),
                fmt(oa_bound),
            ]);
        }
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    #[test]
    fn ratios_between_one_and_bound() {
        let tables = super::run();
        for row in &tables[0].rows {
            let avr: f64 = row[2].parse().unwrap();
            let oa: f64 = row[3].parse().unwrap();
            let avr_bound: f64 = row[4].parse().unwrap();
            let oa_bound: f64 = row[5].parse().unwrap();
            assert!(avr >= 1.0 - 1e-6 && avr <= avr_bound, "{row:?}");
            assert!(oa >= 1.0 - 1e-6 && oa <= oa_bound, "{row:?}");
        }
    }
}
