//! E13: the §6 open problem, measured — online budgeted policies vs the
//! offline frontier.
//!
//! For each arrival pattern and each policy, the table records the
//! empirical competitive ratio (policy makespan over offline-optimal
//! makespan at the same budget). The shape: hedged policies stay within
//! small constants; spend-all collapses on multi-burst inputs (the exact
//! tension §6 describes); the clairvoyant constant-speed baseline is
//! near 1 on dense inputs but pays for idle gaps.

use crate::harness::{fmt, time_min, CsvTable};
use pas_core::online::{
    compare_online, AdaptiveRate, Bkp, ConstantSpeed, FractionalSpend, Qoa, SpendAll,
};
use pas_power::PolyPower;
use pas_sim::online::OnlinePolicy;
use pas_workload::{generators, Instance};

/// Produce the policy-ratio table.
pub fn run() -> Vec<CsvTable> {
    let model = PolyPower::CUBE;
    let mut table = CsvTable::new(
        "online_budget_ratios",
        &[
            "workload",
            "seed",
            "policy",
            "ratio",
            "energy_used",
            "budget",
        ],
    );
    for seed in 0..5u64 {
        let workloads: Vec<(&str, Instance)> = vec![
            ("poisson", generators::poisson(18, 0.7, (0.5, 1.5), seed)),
            (
                "bursty",
                generators::bursty(3, 6, 10.0, 0.5, (0.5, 1.5), seed),
            ),
        ];
        for (name, instance) in workloads {
            let budget = 1.5 * instance.total_work();
            let mut policies: Vec<Box<dyn OnlinePolicy>> = vec![
                Box::new(SpendAll::new(model, budget)),
                Box::new(FractionalSpend::new(model, budget, 0.3)),
                Box::new(FractionalSpend::new(model, budget, 0.6)),
                Box::new(AdaptiveRate::new(model, budget, 10.0)),
                // Budget is 1.5× total work, so qOA's per-work
                // allowance matching it is exactly 1.5.
                Box::new(Qoa::new(model, 1.5, 3.0, 8.0)),
                Box::new(Bkp::default()),
                Box::new(
                    ConstantSpeed::for_budget(&model, instance.total_work(), budget)
                        .expect("solvable"),
                ),
            ];
            for policy in policies.iter_mut() {
                let report = compare_online(&instance, &model, budget, policy.as_mut())
                    .expect("simulation runs");
                table.push_row(vec![
                    name.to_string(),
                    seed.to_string(),
                    policy.name(),
                    fmt(report.ratio),
                    fmt(report.energy),
                    fmt(budget),
                ]);
            }
        }
    }
    vec![table, scaling_table(&[2_000, 10_000, 20_000])]
}

/// The E13 scale sweep: one full online-vs-offline comparison per size
/// on a Poisson stream, wall-clocked. The sharded-arena ready store
/// keeps every policy decision `O(1)`, so these rows are sub-second
/// even at `n = 20000` — the scale the previous `O(n²)` engine could
/// not reach.
pub fn scaling_table(sizes: &[usize]) -> CsvTable {
    let model = PolyPower::CUBE;
    let mut table = CsvTable::new(
        "online_budget_scaling",
        &["n", "policy", "seconds", "ratio", "within_budget"],
    );
    for &n in sizes {
        let instance = generators::poisson(n, 0.8, (0.5, 1.5), 7);
        let budget = 1.5 * instance.total_work();
        let mut policies: Vec<Box<dyn OnlinePolicy>> = vec![
            Box::new(AdaptiveRate::new(model, budget, 10.0)),
            Box::new(FractionalSpend::new(model, budget, 0.5)),
            Box::new(Qoa::new(model, 1.5, 3.0, 8.0)),
            Box::new(Bkp::default()),
        ];
        for policy in policies.iter_mut() {
            let (report, secs) = time_min(1, || {
                compare_online(&instance, &model, budget, policy.as_mut()).expect("runs")
            });
            table.push_row(vec![
                n.to_string(),
                policy.name(),
                fmt(secs),
                fmt(report.ratio),
                report.within_budget.to_string(),
            ]);
        }
    }
    table
}

/// One rung of the policy ratio-vs-n ladder (`BENCH_policies.json`).
#[derive(Debug, Clone)]
pub struct PolicyPoint {
    /// Policy display name.
    pub policy: String,
    /// Instance size.
    pub n: usize,
    /// Empirical competitive ratio at this size.
    pub ratio: f64,
    /// Whether the policy stayed within the budget.
    pub within_budget: bool,
    /// Wall-clock for the online run + offline frontier, seconds.
    pub seconds: f64,
}

/// A policy's ratios in ladder (ascending-`n`) order.
fn ladder_of<'a>(points: &'a [PolicyPoint], policy: &str) -> Vec<&'a PolicyPoint> {
    let mut rungs: Vec<&PolicyPoint> = points.iter().filter(|p| p.policy == policy).collect();
    rungs.sort_by_key(|p| p.n);
    rungs
}

/// Policies whose ladder is *flat*: bounded (< 10) at every rung and
/// the final rung within a modest factor of the first. The tolerance
/// matches `tests/online_equivalence.rs`.
pub fn flat_policies(points: &[PolicyPoint]) -> Vec<String> {
    classify(points, |first, last, bounded| {
        bounded && last <= first * 1.35 + 0.05
    })
}

/// Policies whose ladder *grows*: the final rung at least doubles the
/// first (AdaptiveRate's fixed horizon), or every rung is already
/// saturated past 1000 (SpendAll's floor-speed crawl).
pub fn growing_policies(points: &[PolicyPoint]) -> Vec<String> {
    classify(points, |first, last, _| {
        last > 2.0 * first || first > 1_000.0
    })
}

fn classify(points: &[PolicyPoint], pred: impl Fn(f64, f64, bool) -> bool) -> Vec<String> {
    let mut names: Vec<String> = points.iter().map(|p| p.policy.clone()).collect();
    names.dedup();
    names.sort();
    names.dedup();
    names.retain(|name| {
        let rungs = ladder_of(points, name);
        match (rungs.first(), rungs.last()) {
            (Some(first), Some(last)) if rungs.len() >= 2 => {
                let bounded = rungs.iter().all(|p| p.ratio < 10.0);
                pred(first.ratio, last.ratio, bounded)
            }
            _ => false,
        }
    });
    names
}

/// The E13 policy ladder: every policy's empirical competitive ratio
/// at each size of an n-doubling Poisson sweep. The headline row pair:
/// the new local-signal policies (qOA, BKP) stay flat while the
/// global-energy-share policies degrade — AdaptiveRate's ratio grows
/// with `n` and SpendAll is saturated at the floor-speed crawl.
pub fn policies_ladder(sizes: &[usize]) -> Vec<PolicyPoint> {
    let model = PolyPower::CUBE;
    let mut points = Vec::new();
    for &n in sizes {
        let instance = generators::poisson(n, 0.8, (0.5, 1.5), 7);
        let budget = 1.5 * instance.total_work();
        let mut policies: Vec<Box<dyn OnlinePolicy>> = vec![
            Box::new(Qoa::new(model, 1.5, 3.0, 8.0)),
            Box::new(Bkp::default()),
            Box::new(AdaptiveRate::new(model, budget, 10.0)),
            Box::new(SpendAll::new(model, budget)),
        ];
        for policy in policies.iter_mut() {
            let (report, secs) = time_min(1, || {
                compare_online(&instance, &model, budget, policy.as_mut()).expect("runs")
            });
            points.push(PolicyPoint {
                policy: policy.name(),
                n,
                ratio: report.ratio,
                within_budget: report.within_budget,
                seconds: secs,
            });
        }
    }
    points
}

/// The acceptance ladder: n doubling from 2500 to 20000.
pub fn policies_default() -> Vec<PolicyPoint> {
    policies_ladder(&[2_500, 5_000, 10_000, 20_000])
}

/// The seconds-scale smoke ladder exercised in CI.
pub fn policies_smoke() -> Vec<PolicyPoint> {
    policies_ladder(&[500, 2_000])
}

/// Render ladder points as the `online_policy_ladder` CSV table.
pub fn policies_table(points: &[PolicyPoint]) -> CsvTable {
    let mut table = CsvTable::new(
        "online_policy_ladder",
        &["policy", "n", "ratio", "within_budget", "seconds"],
    );
    for p in points {
        table.push_row(vec![
            p.policy.clone(),
            p.n.to_string(),
            fmt(p.ratio),
            p.within_budget.to_string(),
            fmt(p.seconds),
        ]);
    }
    table
}

/// Serialize ladder points as `BENCH_policies.json`, including the
/// flat/growing classification CI asserts on.
pub fn policies_bench_json(points: &[PolicyPoint]) -> String {
    let quote_list = |names: &[String]| {
        names
            .iter()
            .map(|n| format!("\"{n}\""))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let mut out = String::new();
    out.push_str("{\n  \"bench\": \"online_policy_ladder\",\n");
    out.push_str(
        "  \"setup\": \"E13 extension: Poisson stream (rate 0.8, seed 7), budget 1.5x total work, PolyPower CUBE; each policy vs the offline frontier across an n-doubling ladder\",\n",
    );
    out.push_str(
        "  \"metric\": \"empirical competitive ratio (policy makespan / offline frontier makespan) per policy per n\",\n",
    );
    out.push_str(&format!(
        "  \"flat_policies\": [{}],\n",
        quote_list(&flat_policies(points))
    ));
    out.push_str(&format!(
        "  \"growing_policies\": [{}],\n  \"points\": [\n",
        quote_list(&growing_policies(points))
    ));
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"policy\": \"{}\", \"n\": {}, \"ratio\": {:.6}, \"within_budget\": {}, \"seconds\": {:.6}}}{}\n",
            p.policy,
            p.n,
            p.ratio,
            p.within_budget,
            p.seconds,
            if i + 1 == points.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn ratios_at_least_one() {
        let tables = super::run();
        for row in &tables[0].rows {
            let ratio: f64 = row[3].parse().unwrap();
            let energy: f64 = row[4].parse().unwrap();
            let budget: f64 = row[5].parse().unwrap();
            // A sub-1 ratio is only reachable by outspending the budget
            // the offline frontier was held to (BKP is uncapped).
            assert!(
                ratio >= 1.0 - 1e-6 || energy > budget,
                "{row:?}: sub-1 ratio without overspend"
            );
        }
    }

    #[test]
    fn policy_ladder_classifies_flat_and_growing() {
        let points = super::policies_ladder(&[250, 1_000]);
        // 2 sizes × 4 policies.
        assert_eq!(points.len(), 8);
        let flat = super::flat_policies(&points);
        let growing = super::growing_policies(&points);
        assert!(
            flat.iter().any(|n| n.starts_with("qoa")),
            "qoa should be flat: {points:?}"
        );
        assert!(
            flat.iter().any(|n| n.starts_with("bkp")),
            "bkp should be flat: {points:?}"
        );
        assert!(
            growing.iter().any(|n| n.starts_with("spend-all")),
            "spend-all should be saturated: {points:?}"
        );
        // No policy is both.
        for name in &flat {
            assert!(!growing.contains(name), "{name} classified both ways");
        }
        // The JSON carries the classification verbatim.
        let json = super::policies_bench_json(&points);
        assert!(json.contains("\"flat_policies\""));
        assert!(json.contains("\"online_policy_ladder\""));
    }

    #[test]
    fn scale_sweep_stays_within_budget() {
        // Small sizes here; the n=20000 rows run in the binary.
        let table = super::scaling_table(&[500, 2_000]);
        assert_eq!(table.rows.len(), 8);
        for row in &table.rows {
            let ratio: f64 = row[3].parse().unwrap();
            if row[1].starts_with("bkp") {
                // BKP is uncapped: any overspend shows as within_budget
                // false (and possibly a sub-1 ratio), never silently.
                assert!(ratio > 0.0, "{row:?}");
                if ratio < 1.0 - 1e-6 {
                    assert_eq!(row[4], "false", "{row:?}");
                }
            } else {
                assert!(ratio >= 1.0 - 1e-6, "{row:?}");
                assert_eq!(row[4], "true", "{row:?}");
            }
        }
    }
}
