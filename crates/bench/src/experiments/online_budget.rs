//! E13: the §6 open problem, measured — online budgeted policies vs the
//! offline frontier.
//!
//! For each arrival pattern and each policy, the table records the
//! empirical competitive ratio (policy makespan over offline-optimal
//! makespan at the same budget). The shape: hedged policies stay within
//! small constants; spend-all collapses on multi-burst inputs (the exact
//! tension §6 describes); the clairvoyant constant-speed baseline is
//! near 1 on dense inputs but pays for idle gaps.

use crate::harness::{fmt, time_min, CsvTable};
use pas_core::online::{compare_online, AdaptiveRate, ConstantSpeed, FractionalSpend, SpendAll};
use pas_power::PolyPower;
use pas_sim::online::OnlinePolicy;
use pas_workload::{generators, Instance};

/// Produce the policy-ratio table.
pub fn run() -> Vec<CsvTable> {
    let model = PolyPower::CUBE;
    let mut table = CsvTable::new(
        "online_budget_ratios",
        &[
            "workload",
            "seed",
            "policy",
            "ratio",
            "energy_used",
            "budget",
        ],
    );
    for seed in 0..5u64 {
        let workloads: Vec<(&str, Instance)> = vec![
            ("poisson", generators::poisson(18, 0.7, (0.5, 1.5), seed)),
            (
                "bursty",
                generators::bursty(3, 6, 10.0, 0.5, (0.5, 1.5), seed),
            ),
        ];
        for (name, instance) in workloads {
            let budget = 1.5 * instance.total_work();
            let mut policies: Vec<Box<dyn OnlinePolicy>> = vec![
                Box::new(SpendAll::new(model, budget)),
                Box::new(FractionalSpend::new(model, budget, 0.3)),
                Box::new(FractionalSpend::new(model, budget, 0.6)),
                Box::new(AdaptiveRate::new(model, budget, 10.0)),
                Box::new(
                    ConstantSpeed::for_budget(&model, instance.total_work(), budget)
                        .expect("solvable"),
                ),
            ];
            for policy in policies.iter_mut() {
                let report = compare_online(&instance, &model, budget, policy.as_mut())
                    .expect("simulation runs");
                table.push_row(vec![
                    name.to_string(),
                    seed.to_string(),
                    policy.name(),
                    fmt(report.ratio),
                    fmt(report.energy),
                    fmt(budget),
                ]);
            }
        }
    }
    vec![table, scaling_table(&[2_000, 10_000, 20_000])]
}

/// The E13 scale sweep: one full online-vs-offline comparison per size
/// on a Poisson stream, wall-clocked. The `ReadySet` engine makes every
/// policy decision `O(1)`, so these rows are sub-second even at
/// `n = 20000` — the scale the previous `O(n²)` engine could not reach.
pub fn scaling_table(sizes: &[usize]) -> CsvTable {
    let model = PolyPower::CUBE;
    let mut table = CsvTable::new(
        "online_budget_scaling",
        &["n", "policy", "seconds", "ratio", "within_budget"],
    );
    for &n in sizes {
        let instance = generators::poisson(n, 0.8, (0.5, 1.5), 7);
        let budget = 1.5 * instance.total_work();
        let mut policies: Vec<Box<dyn OnlinePolicy>> = vec![
            Box::new(AdaptiveRate::new(model, budget, 10.0)),
            Box::new(FractionalSpend::new(model, budget, 0.5)),
        ];
        for policy in policies.iter_mut() {
            let (report, secs) = time_min(1, || {
                compare_online(&instance, &model, budget, policy.as_mut()).expect("runs")
            });
            table.push_row(vec![
                n.to_string(),
                policy.name(),
                fmt(secs),
                fmt(report.ratio),
                report.within_budget.to_string(),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    #[test]
    fn ratios_at_least_one() {
        let tables = super::run();
        for row in &tables[0].rows {
            let ratio: f64 = row[3].parse().unwrap();
            assert!(ratio >= 1.0 - 1e-6, "{row:?}");
        }
    }

    #[test]
    fn scale_sweep_stays_within_budget() {
        // Small sizes here; the n=20000 rows run in the binary.
        let table = super::scaling_table(&[500, 2_000]);
        assert_eq!(table.rows.len(), 4);
        for row in &table.rows {
            let ratio: f64 = row[3].parse().unwrap();
            assert!(ratio >= 1.0 - 1e-6, "{row:?}");
            assert_eq!(row[4], "true", "{row:?}");
        }
    }
}
