//! E11: the Theorem-11 reduction at work.
//!
//! Two tables: decision agreement between the subset-sum oracle and the
//! scheduling-side exact solver on yes/no Partition families, and the
//! quality gap of the LPT / local-search heuristics against the exact
//! `L_α`-norm branch and bound (the §5 PTAS remark made quantitative:
//! the heuristic gap is what a PTAS would drive to `1+ε`).

use crate::harness::{fmt, CsvTable};
use pas_core::multi::partition;
use pas_workload::generators;
use rand::distributions::{Distribution, Uniform};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Produce the reduction and heuristic tables.
pub fn run() -> Vec<CsvTable> {
    let alpha = 3.0;

    let mut decisions = CsvTable::new(
        "partition_decisions",
        &["values", "subset_sum", "scheduling", "agree"],
    );
    // Yes-family.
    for seed in 0..6u64 {
        let values = generators::partition_yes_instance(4, 30, seed);
        let dp = partition::partition_witness(&values).is_some();
        let sched = partition::schedule_decides_partition(&values, alpha);
        decisions.push_row(vec![
            format!("{values:?}").replace(',', ";"),
            dp.to_string(),
            sched.to_string(),
            (dp == sched).to_string(),
        ]);
    }
    // Random (mostly-no) family.
    let mut rng = StdRng::seed_from_u64(99);
    let value_dist = Uniform::new_inclusive(1u64, 37);
    for _ in 0..6 {
        let values: Vec<u64> = (0..8).map(|_| value_dist.sample(&mut rng)).collect();
        let dp = partition::partition_witness(&values).is_some();
        let sched = partition::schedule_decides_partition(&values, alpha);
        decisions.push_row(vec![
            format!("{values:?}").replace(',', ";"),
            dp.to_string(),
            sched.to_string(),
            (dp == sched).to_string(),
        ]);
    }

    let mut quality = CsvTable::new(
        "partition_heuristic_quality",
        &[
            "n",
            "machines",
            "opt_norm",
            "lpt_norm",
            "lpt_over_opt",
            "local_search_norm",
            "ls_over_opt",
        ],
    );
    let mut rng = StdRng::seed_from_u64(7);
    let work_dist = Uniform::new(0.2f64, 5.0);
    for &(n, m) in &[(10usize, 2usize), (14, 2), (14, 3), (18, 3), (20, 4)] {
        let works: Vec<f64> = (0..n).map(|_| work_dist.sample(&mut rng)).collect();
        let (_, opt) = partition::min_norm_assignment(&works, m, alpha);
        let (lpt_labels, lpt) = partition::lpt_assignment(&works, m, alpha);
        let (_, ls) = partition::local_search(&works, m, alpha, lpt_labels);
        quality.push_row(vec![
            n.to_string(),
            m.to_string(),
            fmt(opt),
            fmt(lpt),
            fmt(lpt / opt),
            fmt(ls),
            fmt(ls / opt),
        ]);
    }

    vec![decisions, quality]
}

#[cfg(test)]
mod tests {
    #[test]
    fn decisions_always_agree() {
        let tables = super::run();
        for row in &tables[0].rows {
            assert_eq!(row[3], "true", "{row:?}");
        }
        // Heuristics never beat the exact optimum.
        for row in &tables[1].rows {
            let ratio: f64 = row[4].parse().unwrap();
            assert!(ratio >= 1.0 - 1e-9);
        }
    }
}
