//! E26: thread-scaling of the parallel fleet executor.
//!
//! One fixed scenario — the E25 fleet (cycling archetypes, heavy-tailed
//! Poisson traffic, round-robin dispatch) at a single host count — run
//! repeatedly under increasing worker counts via
//! [`pas_fleet::run_with`]. Two claims are on record:
//!
//! * **Perf**: `speedup_vs_1thread` = 1-worker wall divided by the best
//!   measured wall across the curve. On a multi-core runner the best
//!   wall comes from a multi-worker run and the ratio shows real
//!   scaling; on a single-core runner the 1-worker run itself is the
//!   floor, so the ratio is ≥ 1.0 by construction and the recorded
//!   `parallelism` field says why. Per-point phase breakdowns
//!   (dispatch/partition/execute/reduce) localize where the time went.
//! * **Correctness**: `digest_invariant` — every worker count produced
//!   the byte-identical fleet digest. Because the scenario is built
//!   with the exact E25 generators (same workload, horizon, archetypes,
//!   seed, dispatch), the digest also cross-checks against the matching
//!   `BENCH_fleet.json` point; CI asserts both.

use std::time::Instant;

use crate::harness::{fmt, CsvTable};
use pas_fleet::{run_with, FleetScenario};

use super::fleet::{archetype, fleet_workload};

/// One run of the fixed scenario at one worker count.
#[derive(Debug, Clone)]
pub struct FleetParPoint {
    /// Worker threads used by the execute phase.
    pub workers: usize,
    /// Number of hosts in the scenario.
    pub hosts: usize,
    /// Total jobs dispatched.
    pub jobs: usize,
    /// Wall time of the full run.
    pub wall_ms: f64,
    /// Phase 1 (event calendar + routing) wall time.
    pub dispatch_ms: f64,
    /// Grouped trace→tasks partition pass wall time.
    pub partition_ms: f64,
    /// Parallel per-host engine phase wall time.
    pub execute_ms: f64,
    /// Id-order aggregation + digest fold wall time.
    pub reduce_ms: f64,
    /// The fleet digest (must match across every worker count).
    pub digest: u64,
}

/// Run the fixed scenario once per worker count. The scenario is the
/// E25 round-robin configuration verbatim, so the digests line up with
/// `BENCH_fleet.json`.
pub fn fleet_par_sweep(
    hosts: usize,
    jobs_per_host: usize,
    seed: u64,
    workers: &[usize],
) -> Vec<FleetParPoint> {
    assert!(hosts > 0, "host count must be positive");
    let workload = fleet_workload(hosts, jobs_per_host, seed);
    let horizon = workload.last_release() + 50.0;
    let host_cfgs: Vec<_> = (0..hosts as u32).map(archetype).collect();
    let scenario = FleetScenario::new(host_cfgs, workload, horizon, seed);
    workers
        .iter()
        .map(|&w| {
            assert!(w > 0, "worker counts must be positive");
            let t = Instant::now();
            let out = run_with(&scenario, w).expect("fleet run succeeds");
            let wall_ms = t.elapsed().as_secs_f64() * 1e3;
            FleetParPoint {
                workers: w,
                hosts,
                jobs: scenario.workload.len(),
                wall_ms,
                dispatch_ms: out.timings.dispatch_ms,
                partition_ms: out.timings.partition_ms,
                execute_ms: out.timings.execute_ms,
                reduce_ms: out.timings.reduce_ms,
                digest: out.digest,
            }
        })
        .collect()
}

/// The acceptance-tier curve: the 1000-host / 20000-job E25 point under
/// 1, 2, 4, and 8 workers.
pub fn fleet_par_default() -> Vec<FleetParPoint> {
    fleet_par_sweep(1000, 20, 11, &[1, 2, 4, 8])
}

/// The smoke-tier curve: seconds-scale, exercised in CI. Matches the
/// E25 smoke point `{hosts: 16, dispatch: round_robin}` digest.
pub fn fleet_par_smoke() -> Vec<FleetParPoint> {
    fleet_par_sweep(16, 8, 11, &[1, 2, 3])
}

/// True when every point on the curve carries the same digest.
pub fn digest_invariant(points: &[FleetParPoint]) -> bool {
    points.windows(2).all(|w| w[0].digest == w[1].digest)
}

/// 1-worker wall divided by the best wall anywhere on the curve
/// (including the 1-worker run itself, so the ratio is ≥ 1.0 even on a
/// single-core runner).
pub fn speedup_vs_1thread(points: &[FleetParPoint]) -> f64 {
    let wall_1 = points
        .iter()
        .find(|p| p.workers == 1)
        .map(|p| p.wall_ms)
        .expect("curve includes a 1-worker point");
    let best = points
        .iter()
        .map(|p| p.wall_ms)
        .fold(f64::INFINITY, f64::min);
    wall_1 / best
}

/// Render points as the `fleet_par` CSV table.
pub fn fleet_par_table(points: &[FleetParPoint]) -> CsvTable {
    let mut table = CsvTable::new(
        "fleet_par",
        &[
            "workers",
            "hosts",
            "jobs",
            "wall_ms",
            "dispatch_ms",
            "partition_ms",
            "execute_ms",
            "reduce_ms",
            "digest",
        ],
    );
    for p in points {
        table.push_row(vec![
            p.workers.to_string(),
            p.hosts.to_string(),
            p.jobs.to_string(),
            fmt(p.wall_ms),
            fmt(p.dispatch_ms),
            fmt(p.partition_ms),
            fmt(p.execute_ms),
            fmt(p.reduce_ms),
            format!("{:016x}", p.digest),
        ]);
    }
    table
}

/// Render points as the `BENCH_fleet_par.json` document.
pub fn fleet_par_bench_json(points: &[FleetParPoint], seed: u64) -> String {
    let parallelism = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let mut out = String::new();
    out.push_str("{\n  \"bench\": \"fleet_par\",\n");
    out.push_str(
        "  \"metric\": \"wall time of one fixed fleet scenario (E25 round-robin config) per worker count; digests must be invariant\",\n",
    );
    if let Some(p) = points.first() {
        out.push_str(&format!(
            "  \"hosts\": {}, \"jobs\": {}, \"seed\": {}, \"dispatch\": \"round_robin\",\n",
            p.hosts, p.jobs, seed
        ));
    }
    out.push_str(&format!("  \"parallelism\": {parallelism},\n"));
    out.push_str(&format!(
        "  \"digest_invariant\": {},\n",
        digest_invariant(points)
    ));
    out.push_str(&format!(
        "  \"speedup_vs_1thread\": {:.3},\n  \"points\": [\n",
        speedup_vs_1thread(points)
    ));
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workers\": {}, \"wall_ms\": {:.3}, \"dispatch_ms\": {:.3}, \"partition_ms\": {:.3}, \"execute_ms\": {:.3}, \"reduce_ms\": {:.3}, \"digest\": \"{:016x}\"}}{}\n",
            p.workers,
            p.wall_ms,
            p.dispatch_ms,
            p.partition_ms,
            p.execute_ms,
            p.reduce_ms,
            p.digest,
            if i + 1 == points.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Produce the smoke-tier table (used by `exp-all`).
pub fn run_experiment() -> Vec<CsvTable> {
    vec![fleet_par_table(&fleet_par_smoke())]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_curve_is_digest_invariant_and_matches_e25() {
        let points = fleet_par_sweep(4, 3, 2, &[1, 2, 3]);
        assert_eq!(points.len(), 3);
        assert!(digest_invariant(&points));
        assert!(speedup_vs_1thread(&points) >= 1.0);
        // Same generators as E25: the digest must match the E25 point
        // for the identical (hosts, dispatch, jobs_per_host, seed).
        let e25 = super::super::fleet::fleet_scaling(&[4], 3, 2);
        let rr = e25
            .iter()
            .find(|p| p.dispatch == "round_robin")
            .expect("E25 covers round_robin");
        assert_eq!(points[0].digest, rr.digest, "E26 drifted from E25");
    }

    #[test]
    fn json_records_the_gates() {
        let points = fleet_par_sweep(3, 2, 1, &[1, 2]);
        let json = fleet_par_bench_json(&points, 1);
        assert!(json.contains("\"digest_invariant\": true"));
        assert!(json.contains("\"speedup_vs_1thread\""));
        assert!(json.contains("\"parallelism\""));
        assert_eq!(json.matches("\"workers\"").count(), points.len());
        assert!(json.ends_with("  ]\n}\n"));
        let table = fleet_par_table(&points);
        assert_eq!(table.rows.len(), points.len());
    }
}
