//! E7/E8: the flow↔energy tradeoff curve and Theorem-1 residual audit.
//!
//! E7 samples the curve for the hardness instance (the flow analog of
//! Figure 1, including the boundary-configuration window the paper's §4
//! discusses) and locates the configuration-change energies. E8 runs the
//! flow solver over random equal-work instances and reports worst-case
//! KKT residuals — the evidence that the solver's output profiles are
//! the Theorem-1 optima.

use crate::harness::{fmt, CsvTable};
use pas_core::flow::{curve, solver};
use pas_workload::{generators, Instance};

/// Produce the curve and residual tables.
pub fn run() -> Vec<CsvTable> {
    let instance = Instance::equal_work(&[0.0, 0.0, 1.0], 1.0).expect("hardness instance");

    let mut curve_table = CsvTable::new(
        "flow_energy_curve",
        &["energy", "flow", "u", "configuration"],
    );
    let energies: Vec<f64> = (0..=120).map(|k| 5.0 + 10.0 * k as f64 / 120.0).collect();
    for pt in curve::tradeoff_curve(&instance, 3.0, &energies, 1e-10).expect("solvable") {
        curve_table.push_row(vec![fmt(pt.energy), fmt(pt.flow), fmt(pt.u), pt.signature]);
    }

    let mut changes = CsvTable::new(
        "flow_configuration_changes",
        &["change_energy", "closed_form"],
    );
    let found = curve::configuration_changes(&instance, 3.0, 5.0, 20.0, 1e-6).expect("solvable");
    let (lo, hi) = pas_core::flow::hardness::measured_boundary_window();
    for (e, want) in found.iter().zip([lo, hi]) {
        changes.push_row(vec![fmt(*e), fmt(want)]);
    }

    let mut residuals = CsvTable::new(
        "flow_kkt_residuals",
        &["seed", "n", "budget", "max_residual", "configuration"],
    );
    for seed in 0..10u64 {
        let inst = generators::equal_work_poisson(14, 1.2, 1.0, seed);
        for &scale in &[0.5, 1.5, 4.0] {
            let budget = scale * inst.total_work();
            let sol = solver::laptop(&inst, 3.0, budget, 1e-10).expect("solvable");
            residuals.push_row(vec![
                seed.to_string(),
                inst.len().to_string(),
                fmt(budget),
                format!("{:e}", sol.kkt.max_residual),
                sol.kkt.signature(),
            ]);
        }
    }

    vec![curve_table, changes, residuals]
}

#[cfg(test)]
mod tests {
    #[test]
    fn flow_tables_build() {
        let tables = super::run();
        assert_eq!(tables.len(), 3);
        assert_eq!(tables[1].rows.len(), 2);
    }
}
