//! E24: the serving-layer throughput/latency benchmark.
//!
//! For each arrival pattern (Poisson, bursty, flood) the full
//! [`pas_sim::serve::Server`] loop — journal writes, watchdog timing,
//! admission gate, and the engine itself — is driven to completion and
//! timed. The table records **sustained jobs/sec** (jobs delivered over
//! serve-loop wall-clock) and the **p50/p99/max decision latency** from
//! [`pas_sim::ServeStats::decide_nanos`]. Each pattern runs fault-free
//! and again with a seeded E23 [`FaultPlan`] replayed on top, so the
//! numbers cover the crash/cancel/throttle/burst path too. The flood
//! pattern runs behind deadline-aware admission control — the overload
//! scenario the shedding gate exists for — and the row reports how many
//! jobs it shed.
//!
//! The shape to expect: decision latency is sub-microsecond (an O(1)
//! policy plus one journal line), throughput is decision-latency bound
//! and roughly flat across patterns, faults shave throughput by the
//! downtime they inject, and the flood row sheds most of its arrivals
//! while keeping p99 in the same band — overload degrades *capacity*,
//! not per-decision latency.

use crate::harness::{fmt, CsvTable};
use pas_core::online::SpendAll;
use pas_power::PolyPower;
use pas_sim::online::{AdmissionConfig, ShedPolicy};
use pas_sim::{FaultModel, FaultPlan, Journal, ServeConfig, Server, WatchdogConfig};
use pas_workload::{generators, Instance};
use std::time::Instant;

/// One timed serving run.
#[derive(Debug, Clone)]
pub struct ServePoint {
    /// Arrival pattern name.
    pub arrivals: &'static str,
    /// Jobs in the generated instance (bursts can add more).
    pub n: usize,
    /// Fault events in the injected plan (0 = fault-free run).
    pub fault_events: usize,
    /// Seed used for the workload and the fault plan.
    pub seed: u64,
    /// Jobs the run completed (admitted, not cancelled).
    pub delivered: usize,
    /// Jobs rejected or evicted by admission control.
    pub shed_jobs: usize,
    /// Serve-loop wall-clock, seconds.
    pub elapsed_secs: f64,
    /// Live policy consultations.
    pub decisions: u64,
    /// Median decision latency, nanoseconds.
    pub p50_decide_nanos: u64,
    /// 99th-percentile decision latency, nanoseconds.
    pub p99_decide_nanos: u64,
    /// Worst decision latency, nanoseconds.
    pub max_decide_nanos: u64,
    /// Watchdog budget overruns (expected 0 with the generous budget).
    pub watchdog_trips: u64,
    /// Energy the schedule metered.
    pub energy: f64,
}

impl ServePoint {
    /// Sustained throughput: delivered jobs over serve-loop wall-clock.
    pub fn jobs_per_sec(&self) -> f64 {
        if self.elapsed_secs > 0.0 {
            self.delivered as f64 / self.elapsed_secs
        } else {
            0.0
        }
    }
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn pattern_instance(pattern: &'static str, n: usize, seed: u64) -> Instance {
    match pattern {
        "poisson" => generators::poisson(n, 0.8, (0.5, 1.5), seed),
        "bursty" => generators::bursty(8, n.div_ceil(8), n as f64 / 4.0, 0.5, (0.5, 1.5), seed),
        "flood" => generators::flood(n, 1_000.0, (0.5, 1.5), seed),
        _ => unreachable!("unknown arrival pattern {pattern}"),
    }
}

/// The flood pattern's admission gate: deadline-aware shedding sized so
/// an `n`-job flood keeps only the prefix that can still meet a flow SLO
/// of ~10% of the backlog drain time at unit service rate.
fn flood_admission(instance: &Instance) -> AdmissionConfig {
    let slo = (0.1 * instance.total_work()).max(1.0);
    AdmissionConfig {
        capacity: instance.len(),
        shed: ShedPolicy::DeadlineAware {
            slo,
            service_rate: 1.0,
        },
    }
}

fn serve_point(
    pattern: &'static str,
    n: usize,
    fault_events_target: usize,
    seed: u64,
) -> ServePoint {
    let model = PolyPower::CUBE;
    let instance = pattern_instance(pattern, n, seed);
    let budget = 2.0 * instance.total_work();
    let horizon = instance.last_release() + instance.total_work();
    let plan = if fault_events_target == 0 {
        FaultPlan::none()
    } else {
        // Aim for a fixed number of events regardless of instance span
        // (the rates are per unit time) so the faulted rows stay
        // comparable across sizes.
        let ids: Vec<u32> = instance.jobs().iter().map(|j| j.id).collect();
        let rate = fault_events_target as f64 / horizon.max(1.0);
        FaultModel::uniform_mix(rate).sample(horizon, &ids, seed.wrapping_mul(0x9e37))
    };
    let config = ServeConfig {
        admission: (pattern == "flood").then(|| flood_admission(&instance)),
        snapshot_every: None,
        watchdog: Some(WatchdogConfig::default()),
        record_latency: true,
    };
    let mut policy = SpendAll::new(model, budget);
    let server = Server::new(&instance, &model, &plan, config, Journal::memory())
        .expect("serve setup succeeds");
    let start = Instant::now();
    let served = server.run(&mut policy).expect("serve run succeeds");
    let elapsed_secs = start.elapsed().as_secs_f64();
    let mut lat = served.stats.decide_nanos;
    lat.sort_unstable();
    ServePoint {
        arrivals: pattern,
        n,
        fault_events: plan.len(),
        seed,
        delivered: served.outcome.schedule.completion_times().len(),
        shed_jobs: served.outcome.resilience.shed_jobs,
        elapsed_secs,
        decisions: served.stats.decisions,
        p50_decide_nanos: percentile(&lat, 0.50),
        p99_decide_nanos: percentile(&lat, 0.99),
        max_decide_nanos: percentile(&lat, 1.0),
        watchdog_trips: served.stats.watchdog_trips,
        energy: served.outcome.energy,
    }
}

/// The three arrival patterns E24 sweeps.
pub const PATTERNS: [&str; 3] = ["poisson", "bursty", "flood"];

/// Run the sweep: every pattern, fault-free and with a seeded plan of
/// roughly `fault_events` events, at `n` jobs per instance.
pub fn serve_sweep(n: usize, fault_events: usize, seed: u64) -> Vec<ServePoint> {
    assert!(n >= 8, "need enough jobs to measure");
    let mut points = Vec::new();
    for pattern in PATTERNS {
        points.push(serve_point(pattern, n, 0, seed));
        points.push(serve_point(pattern, n, fault_events, seed));
    }
    points
}

/// The acceptance-tier sweep: a million jobs per pattern.
pub fn serve_default() -> Vec<ServePoint> {
    serve_sweep(1_000_000, 64, 1)
}

/// The smoke-tier sweep: seconds-scale, exercised in CI.
pub fn serve_smoke() -> Vec<ServePoint> {
    serve_sweep(4_000, 16, 1)
}

/// Render points as the `serve_throughput` CSV table.
pub fn serve_table(points: &[ServePoint]) -> CsvTable {
    let mut table = CsvTable::new(
        "serve_throughput",
        &[
            "arrivals",
            "n",
            "fault_events",
            "seed",
            "delivered",
            "shed_jobs",
            "elapsed_secs",
            "jobs_per_sec",
            "decisions",
            "p50_decide_nanos",
            "p99_decide_nanos",
            "max_decide_nanos",
            "watchdog_trips",
            "energy",
        ],
    );
    for p in points {
        table.push_row(vec![
            p.arrivals.to_string(),
            p.n.to_string(),
            p.fault_events.to_string(),
            p.seed.to_string(),
            p.delivered.to_string(),
            p.shed_jobs.to_string(),
            fmt(p.elapsed_secs),
            fmt(p.jobs_per_sec()),
            p.decisions.to_string(),
            p.p50_decide_nanos.to_string(),
            p.p99_decide_nanos.to_string(),
            p.max_decide_nanos.to_string(),
            p.watchdog_trips.to_string(),
            fmt(p.energy),
        ]);
    }
    table
}

/// Render points as the `BENCH_serve.json` document — the serving
/// layer's trajectory record, sibling to the other `BENCH_*` files.
pub fn serve_bench_json(points: &[ServePoint]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"bench\": \"serve_throughput\",\n");
    out.push_str(
        "  \"setup\": \"full Server loop (memory journal, watchdog, latency capture; flood rows behind deadline-aware admission), SpendAll policy, fault-free and seeded-FaultPlan runs\",\n",
    );
    out.push_str(
        "  \"metric\": \"sustained jobs/sec (delivered over wall-clock) and p50/p99/max decision latency in nanoseconds\",\n  \"points\": [\n",
    );
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"arrivals\": \"{}\", \"n\": {}, \"fault_events\": {}, \"seed\": {}, \"delivered\": {}, \"shed_jobs\": {}, \"elapsed_secs\": {:.6}, \"jobs_per_sec\": {:.1}, \"decisions\": {}, \"p50_decide_nanos\": {}, \"p99_decide_nanos\": {}, \"max_decide_nanos\": {}, \"watchdog_trips\": {}, \"energy\": {:.6}}}{}\n",
            p.arrivals,
            p.n,
            p.fault_events,
            p.seed,
            p.delivered,
            p.shed_jobs,
            p.elapsed_secs,
            p.jobs_per_sec(),
            p.decisions,
            p.p50_decide_nanos,
            p.p99_decide_nanos,
            p.max_decide_nanos,
            p.watchdog_trips,
            p.energy,
            if i + 1 == points.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Produce the smoke-tier table (used by `exp-all`).
pub fn run() -> Vec<CsvTable> {
    vec![serve_table(&serve_smoke())]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_patterns_and_delivers_work() {
        let points = serve_sweep(64, 8, 3);
        // 3 patterns × {fault-free, faulted}.
        assert_eq!(points.len(), 6);
        for p in &points {
            assert!(p.delivered > 0, "{p:?}");
            assert!(p.decisions > 0, "{p:?}");
            assert!(p.elapsed_secs > 0.0, "{p:?}");
            assert!(p.p50_decide_nanos <= p.p99_decide_nanos, "{p:?}");
            assert!(p.p99_decide_nanos <= p.max_decide_nanos, "{p:?}");
        }
        let fault_free: Vec<_> = points.iter().filter(|p| p.fault_events == 0).collect();
        assert_eq!(fault_free.len(), 3);
        // The flood rows run behind deadline-aware admission; with the
        // tight SLO most of a 64-job flood is shed.
        let flood = points
            .iter()
            .find(|p| p.arrivals == "flood" && p.fault_events == 0)
            .unwrap();
        assert!(flood.shed_jobs > 0, "{flood:?}");
        assert_eq!(flood.delivered + flood.shed_jobs, flood.n, "{flood:?}");
    }

    #[test]
    fn json_and_table_agree_on_row_count() {
        let points = serve_sweep(32, 4, 1);
        let table = serve_table(&points);
        assert_eq!(table.rows.len(), points.len());
        let json = serve_bench_json(&points);
        assert_eq!(json.matches("\"arrivals\"").count(), points.len());
        assert!(json.ends_with("  ]\n}\n"));
    }

    #[test]
    fn percentile_handles_edges() {
        assert_eq!(percentile(&[], 0.99), 0);
        assert_eq!(percentile(&[7], 0.5), 7);
        let v: Vec<u64> = (0..100).collect();
        assert_eq!(percentile(&v, 0.0), 0);
        assert_eq!(percentile(&v, 1.0), 99);
        assert_eq!(percentile(&v, 0.99), 98);
    }
}
