//! E4/E5: running-time scaling — IncMerge's linearity against the
//! quadratic/cubic baselines — plus E19: the deadline-stack (YDS)
//! timeline engine against the seed reference, and E20: the flow
//! block-decomposition solver against the damped fixed-point reference
//! (`BENCH_flow.json`).
//!
//! Reproduces two prose claims: §3's "linear time once the jobs are
//! sorted" (vs the §3.1 dynamic program) and §2's "our algorithm runs
//! faster" than the Uysal-Biyikoglu et al. quadratic server algorithm.
//! The table reports wall-clock seconds and the per-point growth factor;
//! the shape to check is IncMerge ≈ ×2 per doubling, MoveRight ≈ ×4,
//! DP ≈ ×8 (its feasibility scan makes the implementation cubic).
//!
//! E19 ([`yds_scaling`]) sweeps `yds()` (prefix-sum timeline engine)
//! against `yds_reference()` (the seed `O(n⁴)` loop) on one uniform
//! random family, recording seconds, the speedup, the YDS round count,
//! and the energy agreement; `exp-scaling --bench-json` renders it as
//! `BENCH_yds.json` so successive PRs accumulate a perf trajectory.

use crate::harness::{fmt, time_min, CsvTable};
use pas_core::deadline::{yds, yds_reference, DeadlineInstance};
use pas_core::flow::curve::tradeoff_curve;
use pas_core::flow::solver::{laptop_reference, solve_for_u, solve_for_u_reference};
use pas_core::makespan::{dp, incmerge, moveright, Frontier};
use pas_power::PolyPower;
use pas_sim::metrics;
use pas_workload::{generators, Instance};
use std::time::Instant;

/// Sweep sizes. DP is capped (cubic); MoveRight quadratic; IncMerge and
/// the frontier run the full range.
pub fn run() -> Vec<CsvTable> {
    let model = PolyPower::CUBE;
    let mut table = CsvTable::new(
        "scaling_makespan_solvers",
        &["n", "incmerge_s", "frontier_build_s", "moveright_s", "dp_s"],
    );
    for &n in &[64usize, 128, 256, 512, 1024, 2048] {
        let instance = generators::uniform(n, n as f64, (0.2, 2.0), 42);
        let budget = 2.0 * instance.total_work();
        let deadline = instance.last_release() + 0.1 * n as f64;

        let (_, t_inc) = time_min(5, || {
            incmerge::laptop(&instance, &model, budget).expect("solvable")
        });
        let (_, t_frontier) = time_min(5, || Frontier::build(&instance, &model));
        let (_, t_mr) = time_min(3, || {
            moveright::server_moveright(&instance, &model, deadline).expect("solvable")
        });
        let t_dp = if n <= 512 {
            let (_, t) = time_min(1, || {
                dp::laptop_dp(&instance, &model, budget).expect("solvable")
            });
            fmt(t)
        } else {
            "".to_string()
        };
        table.push_row(vec![
            n.to_string(),
            fmt(t_inc),
            fmt(t_frontier),
            fmt(t_mr),
            t_dp,
        ]);
    }
    vec![table]
}

/// One measured point of the YDS naive-vs-optimized sweep.
#[derive(Debug, Clone)]
pub struct YdsScalingPoint {
    /// Instance size.
    pub n: usize,
    /// Optimized `yds()` seconds (min over repeats).
    pub optimized_s: f64,
    /// Repeats behind `optimized_s`.
    pub optimized_repeats: usize,
    /// Seed `yds_reference()` seconds (`None` when skipped as too slow).
    pub reference_s: Option<f64>,
    /// Repeats behind `reference_s`.
    pub reference_repeats: Option<usize>,
    /// YDS rounds on this instance (both engines run the same loop).
    pub rounds: usize,
    /// Relative energy gap |opt − ref| / ref under σ³ (`None` when the
    /// reference was skipped).
    pub energy_rel_gap: Option<f64>,
}

impl YdsScalingPoint {
    /// reference / optimized, when both were measured.
    pub fn speedup(&self) -> Option<f64> {
        self.reference_s.map(|r| r / self.optimized_s)
    }
}

/// The E19 instance family, shared with the criterion bench
/// (`benches/bench_deadline.rs`) so both curves always describe the
/// same instances.
pub fn e19_instance(n: usize) -> DeadlineInstance {
    DeadlineInstance::random(n, n as f64, (0.5, 6.0), (0.2, 3.0), 42)
}

/// `e19_instance` as a string, recorded in `BENCH_yds.json`.
pub const E19_FAMILY: &str = "DeadlineInstance::random(n, n, (0.5, 6.0), (0.2, 3.0), 42)";

/// Default reference cap for routine E19 runs: past this the `O(n⁴)`
/// seed engine takes minutes per run.
pub const E19_REFERENCE_CAP: usize = 512;

/// E19: sweep the YDS engines over uniform random instances of the given
/// sizes, measuring the reference only up to `reference_cap` (it is
/// `O(n⁴)`; at n=2000 a single run is minutes). Both engines report the
/// minimum over the same kind of repeat loop (repeat counts recorded per
/// point) so the speedup column is apples-to-apples.
pub fn yds_scaling(sizes: &[usize], reference_cap: usize) -> Vec<YdsScalingPoint> {
    let model = PolyPower::CUBE;
    sizes
        .iter()
        .map(|&n| {
            let inst = e19_instance(n);
            let optimized_repeats = if n <= 512 { 5 } else { 2 };
            let (out, optimized_s) = time_min(optimized_repeats, || yds(&inst).expect("feasible"));
            let rounds = out.rounds.len();
            let (reference_s, reference_repeats, energy_rel_gap) = if n <= reference_cap {
                let repeats = if n <= 512 { 3 } else { 1 };
                let (ref_out, secs) = time_min(repeats, || yds_reference(&inst).expect("feasible"));
                let e_opt = metrics::energy(&out.schedule, &model);
                let e_ref = metrics::energy(&ref_out.schedule, &model);
                (
                    Some(secs),
                    Some(repeats),
                    Some((e_opt - e_ref).abs() / e_ref),
                )
            } else {
                (None, None, None)
            };
            YdsScalingPoint {
                n,
                optimized_s,
                optimized_repeats,
                reference_s,
                reference_repeats,
                rounds,
                energy_rel_gap,
            }
        })
        .collect()
}

/// The default E19 sweep (reference measured at every point, n=2000
/// included — the acceptance configuration; expect minutes of wall
/// clock).
pub fn yds_scaling_default() -> Vec<YdsScalingPoint> {
    yds_scaling(&[64, 128, 256, 512, 1024, 2000], 2000)
}

/// Render E19 points as the `scaling_yds` CSV table.
pub fn yds_table(points: &[YdsScalingPoint]) -> CsvTable {
    let mut table = CsvTable::new(
        "scaling_yds",
        &[
            "n",
            "optimized_s",
            "reference_s",
            "speedup",
            "rounds",
            "energy_rel_gap",
        ],
    );
    for p in points {
        table.push_row(vec![
            p.n.to_string(),
            fmt(p.optimized_s),
            p.reference_s.map(fmt).unwrap_or_default(),
            p.speedup().map(|s| format!("{s:.2}")).unwrap_or_default(),
            p.rounds.to_string(),
            p.energy_rel_gap
                .map(|g| format!("{g:.3e}"))
                .unwrap_or_default(),
        ]);
    }
    table
}

/// Render E19 points as the `BENCH_yds.json` document: a scaling curve
/// plus the headline n=2000 speedup, consumed by future PRs as the perf
/// trajectory baseline.
pub fn yds_bench_json(points: &[YdsScalingPoint]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"bench\": \"yds_timeline_engine\",\n");
    out.push_str(&format!("  \"instance_family\": \"{E19_FAMILY}\",\n"));
    out.push_str("  \"metric\": \"wall_seconds_min_over_repeats\",\n  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"n\": {}, \"optimized_s\": {:.6}, \"optimized_repeats\": {}, \"reference_s\": {}, \"reference_repeats\": {}, \"speedup\": {}, \"rounds\": {}, \"energy_rel_gap\": {}}}{}\n",
            p.n,
            p.optimized_s,
            p.optimized_repeats,
            p.reference_s
                .map(|r| format!("{r:.6}"))
                .unwrap_or_else(|| "null".to_string()),
            p.reference_repeats
                .map(|r| r.to_string())
                .unwrap_or_else(|| "null".to_string()),
            p.speedup()
                .map(|s| format!("{s:.2}"))
                .unwrap_or_else(|| "null".to_string()),
            p.rounds,
            p.energy_rel_gap
                .map(|g| format!("{g:.3e}"))
                .unwrap_or_else(|| "null".to_string()),
            if i + 1 == points.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// One measured point of the E20 flow naive-vs-block sweep.
#[derive(Debug, Clone)]
pub struct FlowScalingPoint {
    /// Instance size.
    pub n: usize,
    /// Block-decomposition `solve_for_u` seconds (min over repeats).
    pub solve_block_s: f64,
    /// Reference fixed-point `solve_for_u` seconds (`None` past the cap).
    pub solve_reference_s: Option<f64>,
    /// Relative energy gap between the engines at the probe `u`.
    pub solve_energy_rel_gap: Option<f64>,
    /// Energies in the tradeoff-curve sweep below.
    pub curve_points: usize,
    /// Warm-started workspace `tradeoff_curve` seconds for the sweep.
    pub curve_block_s: f64,
    /// Cold `laptop_reference` seconds over the energies it solved
    /// (`None` past cap).
    pub curve_reference_s: Option<f64>,
    /// How many of the energies `laptop_reference` solved.
    pub curve_reference_ok: Option<usize>,
    /// How many it failed (the damped fixed point stalls near some
    /// configuration-change energies — a weakness of the reference
    /// engine the bench records rather than hides).
    pub curve_reference_failed: Option<usize>,
    /// Per-curve-point block-vs-reference energy gap at the solved `u`
    /// (`None` past the cap; inner `None` where the reference stalled).
    pub curve_energy_rel_gaps: Option<Vec<Option<f64>>>,
}

impl FlowScalingPoint {
    /// reference / block for the single `solve_for_u`.
    pub fn solve_speedup(&self) -> Option<f64> {
        self.solve_reference_s.map(|r| r / self.solve_block_s)
    }

    /// Per-energy reference seconds / per-energy block seconds — robust
    /// to reference stalls, since each side is averaged over the points
    /// it actually solved.
    pub fn curve_speedup(&self) -> Option<f64> {
        let ok = self.curve_reference_ok.filter(|&k| k > 0)? as f64;
        let r = self.curve_reference_s?;
        Some((r / ok) / (self.curve_block_s / self.curve_points as f64))
    }

    /// Worst per-point engine disagreement over the sweep (`None` when
    /// the reference was capped out or solved no point at all — zero
    /// comparisons must not read as perfect agreement).
    pub fn curve_max_energy_rel_gap(&self) -> Option<f64> {
        self.curve_energy_rel_gaps
            .as_ref()?
            .iter()
            .flatten()
            .copied()
            .fold(None, |m: Option<f64>, g| Some(m.map_or(g, |m| m.max(g))))
    }
}

/// The E20 instance family: the E7/E8 tradeoff-curve workload (equal-work
/// jobs, Poisson releases at rate 1.5 — contact-heavy, so segment
/// resolution is exercised) generalized from the 3-job hardness witness
/// to `n` jobs. Shared with `benches/bench_flow.rs`.
pub fn e20_instance(n: usize) -> Instance {
    generators::equal_work_poisson(n, 1.5, 1.0, 42)
}

/// `e20_instance` as a string, recorded in `BENCH_flow.json`.
pub const E20_FAMILY: &str = "generators::equal_work_poisson(n, 1.5, 1.0, 42)";

/// Default reference cap: past this the fixed-point engine's curve sweep
/// takes tens of minutes (each cold laptop is ~50 bisection steps of an
/// `O(iters·n)` iteration).
pub const E20_REFERENCE_CAP: usize = 1_000;

/// The sweep's energy grid: `curve_points` energies spanning 0.5×W to
/// 4×W on the instance (W = total work).
fn e20_energies(instance: &Instance, curve_points: usize) -> Vec<f64> {
    let w = instance.total_work();
    (0..curve_points)
        .map(|k| w * (0.5 + 3.5 * k as f64 / (curve_points - 1).max(1) as f64))
        .collect()
}

/// E20: block-decomposition flow solver vs the damped fixed-point
/// reference — one `solve_for_u` probe and one `curve_points`-point
/// warm-started `tradeoff_curve` sweep per size, with the reference
/// measured (and the per-point engine agreement recorded) up to
/// `reference_cap`.
pub fn flow_scaling(
    sizes: &[usize],
    curve_points: usize,
    reference_cap: usize,
) -> Vec<FlowScalingPoint> {
    sizes
        .iter()
        .map(|&n| {
            let inst = e20_instance(n);
            let repeats = if n <= 1_000 { 5 } else { 2 };
            let (block_sol, solve_block_s) =
                time_min(repeats, || solve_for_u(&inst, 3.0, 1.0).expect("solvable"));
            let (solve_reference_s, solve_energy_rel_gap) = if n <= reference_cap {
                // One timed probe doubles as the does-it-converge check,
                // so a stalling reference costs a single attempt.
                let (probe, first_s) = time_min(1, || solve_for_u_reference(&inst, 3.0, 1.0));
                match probe {
                    Ok(ref_sol) => {
                        let secs = if n <= 500 {
                            let (_, more) = time_min(2, || {
                                solve_for_u_reference(&inst, 3.0, 1.0).expect("convergent")
                            });
                            first_s.min(more)
                        } else {
                            first_s
                        };
                        (
                            Some(secs),
                            Some((block_sol.energy - ref_sol.energy).abs() / ref_sol.energy),
                        )
                    }
                    Err(_) => (None, None),
                }
            } else {
                (None, None)
            };

            let energies = e20_energies(&inst, curve_points);
            let (curve, curve_block_s) = time_min(1, || {
                tradeoff_curve(&inst, 3.0, &energies, 1e-10).expect("solvable")
            });
            let (curve_reference_s, curve_reference_ok, curve_reference_failed, gaps) =
                if n <= reference_cap {
                    let mut secs = 0.0;
                    let mut ok = 0usize;
                    let mut failed = 0usize;
                    for &e in &energies {
                        let t = Instant::now();
                        match laptop_reference(&inst, 3.0, e, 1e-10) {
                            Ok(_) => {
                                secs += t.elapsed().as_secs_f64();
                                ok += 1;
                            }
                            Err(_) => failed += 1,
                        }
                    }
                    // Per-point engine agreement at each solved u; the
                    // block side is the curve point itself (tradeoff_curve
                    // already ran the block engine at exactly this u).
                    let gaps = curve
                        .iter()
                        .map(|pt| {
                            solve_for_u_reference(&inst, 3.0, pt.u)
                                .ok()
                                .map(|slow| (pt.energy - slow.energy).abs() / slow.energy)
                        })
                        .collect();
                    (Some(secs), Some(ok), Some(failed), Some(gaps))
                } else {
                    (None, None, None, None)
                };

            FlowScalingPoint {
                n,
                solve_block_s,
                solve_reference_s,
                solve_energy_rel_gap,
                curve_points,
                curve_block_s,
                curve_reference_s,
                curve_reference_ok,
                curve_reference_failed,
                curve_energy_rel_gaps: gaps,
            }
        })
        .collect()
}

/// The full E20 acceptance sweep: n through 10⁴, 120-point curves, the
/// reference measured through n = 1000 (expect ~20 minutes — the
/// reference curve alone is ~120 cold bisection solves of an
/// `O(iters·n)` engine; that cost is the point).
pub fn flow_scaling_default() -> Vec<FlowScalingPoint> {
    flow_scaling(&[100, 300, 1_000, 3_000, 10_000], 120, E20_REFERENCE_CAP)
}

/// The smoke-tier E20 sweep: seconds, not minutes; exercised in CI.
pub fn flow_scaling_smoke() -> Vec<FlowScalingPoint> {
    flow_scaling(&[64, 256], 24, 256)
}

/// Render E20 points as the `scaling_flow` CSV table.
pub fn flow_table(points: &[FlowScalingPoint]) -> CsvTable {
    let mut table = CsvTable::new(
        "scaling_flow",
        &[
            "n",
            "solve_block_s",
            "solve_reference_s",
            "solve_speedup",
            "curve_points",
            "curve_block_s",
            "curve_reference_s",
            "curve_reference_ok",
            "curve_reference_failed",
            "curve_speedup",
            "curve_max_energy_rel_gap",
        ],
    );
    for p in points {
        table.push_row(vec![
            p.n.to_string(),
            fmt(p.solve_block_s),
            p.solve_reference_s.map(fmt).unwrap_or_default(),
            p.solve_speedup()
                .map(|s| format!("{s:.2}"))
                .unwrap_or_default(),
            p.curve_points.to_string(),
            fmt(p.curve_block_s),
            p.curve_reference_s.map(fmt).unwrap_or_default(),
            p.curve_reference_ok
                .map(|k| k.to_string())
                .unwrap_or_default(),
            p.curve_reference_failed
                .map(|k| k.to_string())
                .unwrap_or_default(),
            p.curve_speedup()
                .map(|s| format!("{s:.2}"))
                .unwrap_or_default(),
            p.curve_max_energy_rel_gap()
                .map(|g| format!("{g:.3e}"))
                .unwrap_or_default(),
        ]);
    }
    table
}

/// Render E20 points as the `BENCH_flow.json` document — the flow path's
/// perf-trajectory record, sibling to `BENCH_yds.json`.
pub fn flow_bench_json(points: &[FlowScalingPoint]) -> String {
    let opt = |v: Option<f64>| {
        v.map(|x| format!("{x:.6}"))
            .unwrap_or_else(|| "null".to_string())
    };
    let mut out = String::new();
    out.push_str("{\n  \"bench\": \"flow_block_decomposition\",\n");
    out.push_str(&format!("  \"instance_family\": \"{E20_FAMILY}\",\n"));
    out.push_str("  \"metric\": \"wall_seconds_min_over_repeats\",\n  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        let gaps = p
            .curve_energy_rel_gaps
            .as_ref()
            .map(|g| {
                let inner: Vec<String> = g
                    .iter()
                    .map(|x| {
                        x.map(|x| format!("{x:.3e}"))
                            .unwrap_or_else(|| "null".to_string())
                    })
                    .collect();
                format!("[{}]", inner.join(", "))
            })
            .unwrap_or_else(|| "null".to_string());
        out.push_str(&format!(
            "    {{\"n\": {}, \"solve_block_s\": {:.6}, \"solve_reference_s\": {}, \"solve_speedup\": {}, \"solve_energy_rel_gap\": {}, \"curve_points\": {}, \"curve_block_s\": {:.6}, \"curve_reference_s\": {}, \"curve_reference_ok\": {}, \"curve_reference_failed\": {}, \"curve_speedup\": {}, \"curve_max_energy_rel_gap\": {}, \"curve_energy_rel_gaps\": {}}}{}\n",
            p.n,
            p.solve_block_s,
            opt(p.solve_reference_s),
            p.solve_speedup()
                .map(|s| format!("{s:.2}"))
                .unwrap_or_else(|| "null".to_string()),
            p.solve_energy_rel_gap
                .map(|g| format!("{g:.3e}"))
                .unwrap_or_else(|| "null".to_string()),
            p.curve_points,
            p.curve_block_s,
            opt(p.curve_reference_s),
            p.curve_reference_ok
                .map(|k| k.to_string())
                .unwrap_or_else(|| "null".to_string()),
            p.curve_reference_failed
                .map(|k| k.to_string())
                .unwrap_or_else(|| "null".to_string()),
            p.curve_speedup()
                .map(|s| format!("{s:.2}"))
                .unwrap_or_else(|| "null".to_string()),
            p.curve_max_energy_rel_gap()
                .map(|g| format!("{g:.3e}"))
                .unwrap_or_else(|| "null".to_string()),
            gaps,
            if i + 1 == points.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn flow_scaling_point_speedup_and_agreement() {
        let points = super::flow_scaling(&[32, 64], 8, 32);
        assert_eq!(points.len(), 2);
        let capped = &points[0];
        assert!(capped.solve_speedup().unwrap() > 0.0);
        assert!(capped.curve_speedup().unwrap() > 0.0);
        assert!(
            capped.curve_max_energy_rel_gap().unwrap() < 1e-9,
            "gap {:?}",
            capped.curve_max_energy_rel_gap()
        );
        assert_eq!(capped.curve_energy_rel_gaps.as_ref().unwrap().len(), 8);
        // Past the cap the reference columns go null.
        assert!(points[1].solve_reference_s.is_none());
        assert!(points[1].curve_reference_s.is_none());
        let table = super::flow_table(&points);
        assert_eq!(table.rows.len(), 2);
        let json = super::flow_bench_json(&points);
        assert!(json.contains("\"bench\": \"flow_block_decomposition\""));
        assert!(json.contains("\"curve_reference_s\": null"));
    }

    #[test]
    fn yds_scaling_point_speedup_and_agreement() {
        let points = super::yds_scaling(&[48, 96], 96);
        assert_eq!(points.len(), 2);
        for p in &points {
            assert!(p.optimized_s >= 0.0 && p.rounds > 0);
            assert!(p.speedup().unwrap() > 0.0);
            assert!(
                p.energy_rel_gap.unwrap() < 1e-9,
                "gap {:?}",
                p.energy_rel_gap
            );
        }
        let table = super::yds_table(&points);
        assert_eq!(table.rows.len(), 2);
        let json = super::yds_bench_json(&points);
        assert!(json.contains("\"bench\": \"yds_timeline_engine\""));
        assert!(json.contains("\"n\": 48"));
        // The reference cap turns missing measurements into nulls.
        let capped = super::yds_scaling(&[48, 96], 48);
        assert!(capped[1].reference_s.is_none());
        assert!(super::yds_bench_json(&capped).contains("\"reference_s\": null"));
    }

    #[test]
    fn scaling_smoke() {
        // Full run is for the binary; here make sure one small row works.
        let model = pas_power::PolyPower::CUBE;
        let instance = pas_workload::generators::uniform(64, 64.0, (0.2, 2.0), 42);
        let budget = 2.0 * instance.total_work();
        let a = pas_core::makespan::incmerge::laptop(&instance, &model, budget)
            .unwrap()
            .makespan();
        let b = pas_core::makespan::dp::laptop_dp(&instance, &model, budget)
            .unwrap()
            .makespan();
        assert!((a - b).abs() < 1e-6 * a);
    }
}
