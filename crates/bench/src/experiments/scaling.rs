//! E4/E5: running-time scaling — IncMerge's linearity against the
//! quadratic/cubic baselines — plus E19: the deadline-stack (YDS)
//! timeline engine against the seed reference.
//!
//! Reproduces two prose claims: §3's "linear time once the jobs are
//! sorted" (vs the §3.1 dynamic program) and §2's "our algorithm runs
//! faster" than the Uysal-Biyikoglu et al. quadratic server algorithm.
//! The table reports wall-clock seconds and the per-point growth factor;
//! the shape to check is IncMerge ≈ ×2 per doubling, MoveRight ≈ ×4,
//! DP ≈ ×8 (its feasibility scan makes the implementation cubic).
//!
//! E19 ([`yds_scaling`]) sweeps `yds()` (prefix-sum timeline engine)
//! against `yds_reference()` (the seed `O(n⁴)` loop) on one uniform
//! random family, recording seconds, the speedup, the YDS round count,
//! and the energy agreement; `exp-scaling --bench-json` renders it as
//! `BENCH_yds.json` so successive PRs accumulate a perf trajectory.

use crate::harness::{fmt, time_min, CsvTable};
use pas_core::deadline::{yds, yds_reference, DeadlineInstance};
use pas_core::makespan::{dp, incmerge, moveright, Frontier};
use pas_power::PolyPower;
use pas_sim::metrics;
use pas_workload::generators;

/// Sweep sizes. DP is capped (cubic); MoveRight quadratic; IncMerge and
/// the frontier run the full range.
pub fn run() -> Vec<CsvTable> {
    let model = PolyPower::CUBE;
    let mut table = CsvTable::new(
        "scaling_makespan_solvers",
        &["n", "incmerge_s", "frontier_build_s", "moveright_s", "dp_s"],
    );
    for &n in &[64usize, 128, 256, 512, 1024, 2048] {
        let instance = generators::uniform(n, n as f64, (0.2, 2.0), 42);
        let budget = 2.0 * instance.total_work();
        let deadline = instance.last_release() + 0.1 * n as f64;

        let (_, t_inc) = time_min(5, || {
            incmerge::laptop(&instance, &model, budget).expect("solvable")
        });
        let (_, t_frontier) = time_min(5, || Frontier::build(&instance, &model));
        let (_, t_mr) = time_min(3, || {
            moveright::server_moveright(&instance, &model, deadline).expect("solvable")
        });
        let t_dp = if n <= 512 {
            let (_, t) = time_min(1, || {
                dp::laptop_dp(&instance, &model, budget).expect("solvable")
            });
            fmt(t)
        } else {
            "".to_string()
        };
        table.push_row(vec![
            n.to_string(),
            fmt(t_inc),
            fmt(t_frontier),
            fmt(t_mr),
            t_dp,
        ]);
    }
    vec![table]
}

/// One measured point of the YDS naive-vs-optimized sweep.
#[derive(Debug, Clone)]
pub struct YdsScalingPoint {
    /// Instance size.
    pub n: usize,
    /// Optimized `yds()` seconds (min over repeats).
    pub optimized_s: f64,
    /// Repeats behind `optimized_s`.
    pub optimized_repeats: usize,
    /// Seed `yds_reference()` seconds (`None` when skipped as too slow).
    pub reference_s: Option<f64>,
    /// Repeats behind `reference_s`.
    pub reference_repeats: Option<usize>,
    /// YDS rounds on this instance (both engines run the same loop).
    pub rounds: usize,
    /// Relative energy gap |opt − ref| / ref under σ³ (`None` when the
    /// reference was skipped).
    pub energy_rel_gap: Option<f64>,
}

impl YdsScalingPoint {
    /// reference / optimized, when both were measured.
    pub fn speedup(&self) -> Option<f64> {
        self.reference_s.map(|r| r / self.optimized_s)
    }
}

/// The E19 instance family, shared with the criterion bench
/// (`benches/bench_deadline.rs`) so both curves always describe the
/// same instances.
pub fn e19_instance(n: usize) -> DeadlineInstance {
    DeadlineInstance::random(n, n as f64, (0.5, 6.0), (0.2, 3.0), 42)
}

/// `e19_instance` as a string, recorded in `BENCH_yds.json`.
pub const E19_FAMILY: &str = "DeadlineInstance::random(n, n, (0.5, 6.0), (0.2, 3.0), 42)";

/// Default reference cap for routine E19 runs: past this the `O(n⁴)`
/// seed engine takes minutes per run.
pub const E19_REFERENCE_CAP: usize = 512;

/// E19: sweep the YDS engines over uniform random instances of the given
/// sizes, measuring the reference only up to `reference_cap` (it is
/// `O(n⁴)`; at n=2000 a single run is minutes). Both engines report the
/// minimum over the same kind of repeat loop (repeat counts recorded per
/// point) so the speedup column is apples-to-apples.
pub fn yds_scaling(sizes: &[usize], reference_cap: usize) -> Vec<YdsScalingPoint> {
    let model = PolyPower::CUBE;
    sizes
        .iter()
        .map(|&n| {
            let inst = e19_instance(n);
            let optimized_repeats = if n <= 512 { 5 } else { 2 };
            let (out, optimized_s) = time_min(optimized_repeats, || yds(&inst).expect("feasible"));
            let rounds = out.rounds.len();
            let (reference_s, reference_repeats, energy_rel_gap) = if n <= reference_cap {
                let repeats = if n <= 512 { 3 } else { 1 };
                let (ref_out, secs) = time_min(repeats, || yds_reference(&inst).expect("feasible"));
                let e_opt = metrics::energy(&out.schedule, &model);
                let e_ref = metrics::energy(&ref_out.schedule, &model);
                (
                    Some(secs),
                    Some(repeats),
                    Some((e_opt - e_ref).abs() / e_ref),
                )
            } else {
                (None, None, None)
            };
            YdsScalingPoint {
                n,
                optimized_s,
                optimized_repeats,
                reference_s,
                reference_repeats,
                rounds,
                energy_rel_gap,
            }
        })
        .collect()
}

/// The default E19 sweep (reference measured at every point, n=2000
/// included — the acceptance configuration; expect minutes of wall
/// clock).
pub fn yds_scaling_default() -> Vec<YdsScalingPoint> {
    yds_scaling(&[64, 128, 256, 512, 1024, 2000], 2000)
}

/// Render E19 points as the `scaling_yds` CSV table.
pub fn yds_table(points: &[YdsScalingPoint]) -> CsvTable {
    let mut table = CsvTable::new(
        "scaling_yds",
        &[
            "n",
            "optimized_s",
            "reference_s",
            "speedup",
            "rounds",
            "energy_rel_gap",
        ],
    );
    for p in points {
        table.push_row(vec![
            p.n.to_string(),
            fmt(p.optimized_s),
            p.reference_s.map(fmt).unwrap_or_default(),
            p.speedup().map(|s| format!("{s:.2}")).unwrap_or_default(),
            p.rounds.to_string(),
            p.energy_rel_gap
                .map(|g| format!("{g:.3e}"))
                .unwrap_or_default(),
        ]);
    }
    table
}

/// Render E19 points as the `BENCH_yds.json` document: a scaling curve
/// plus the headline n=2000 speedup, consumed by future PRs as the perf
/// trajectory baseline.
pub fn yds_bench_json(points: &[YdsScalingPoint]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"bench\": \"yds_timeline_engine\",\n");
    out.push_str(&format!("  \"instance_family\": \"{E19_FAMILY}\",\n"));
    out.push_str("  \"metric\": \"wall_seconds_min_over_repeats\",\n  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"n\": {}, \"optimized_s\": {:.6}, \"optimized_repeats\": {}, \"reference_s\": {}, \"reference_repeats\": {}, \"speedup\": {}, \"rounds\": {}, \"energy_rel_gap\": {}}}{}\n",
            p.n,
            p.optimized_s,
            p.optimized_repeats,
            p.reference_s
                .map(|r| format!("{r:.6}"))
                .unwrap_or_else(|| "null".to_string()),
            p.reference_repeats
                .map(|r| r.to_string())
                .unwrap_or_else(|| "null".to_string()),
            p.speedup()
                .map(|s| format!("{s:.2}"))
                .unwrap_or_else(|| "null".to_string()),
            p.rounds,
            p.energy_rel_gap
                .map(|g| format!("{g:.3e}"))
                .unwrap_or_else(|| "null".to_string()),
            if i + 1 == points.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn yds_scaling_point_speedup_and_agreement() {
        let points = super::yds_scaling(&[48, 96], 96);
        assert_eq!(points.len(), 2);
        for p in &points {
            assert!(p.optimized_s >= 0.0 && p.rounds > 0);
            assert!(p.speedup().unwrap() > 0.0);
            assert!(
                p.energy_rel_gap.unwrap() < 1e-9,
                "gap {:?}",
                p.energy_rel_gap
            );
        }
        let table = super::yds_table(&points);
        assert_eq!(table.rows.len(), 2);
        let json = super::yds_bench_json(&points);
        assert!(json.contains("\"bench\": \"yds_timeline_engine\""));
        assert!(json.contains("\"n\": 48"));
        // The reference cap turns missing measurements into nulls.
        let capped = super::yds_scaling(&[48, 96], 48);
        assert!(capped[1].reference_s.is_none());
        assert!(super::yds_bench_json(&capped).contains("\"reference_s\": null"));
    }

    #[test]
    fn scaling_smoke() {
        // Full run is for the binary; here make sure one small row works.
        let model = pas_power::PolyPower::CUBE;
        let instance = pas_workload::generators::uniform(64, 64.0, (0.2, 2.0), 42);
        let budget = 2.0 * instance.total_work();
        let a = pas_core::makespan::incmerge::laptop(&instance, &model, budget)
            .unwrap()
            .makespan();
        let b = pas_core::makespan::dp::laptop_dp(&instance, &model, budget)
            .unwrap()
            .makespan();
        assert!((a - b).abs() < 1e-6 * a);
    }
}
