//! E4/E5: running-time scaling — IncMerge's linearity against the
//! quadratic/cubic baselines — plus E19: the deadline-stack (YDS)
//! timeline engine against the seed reference, and E20: the flow
//! block-decomposition solver against the damped fixed-point reference
//! (`BENCH_flow.json`).
//!
//! Reproduces two prose claims: §3's "linear time once the jobs are
//! sorted" (vs the §3.1 dynamic program) and §2's "our algorithm runs
//! faster" than the Uysal-Biyikoglu et al. quadratic server algorithm.
//! The table reports wall-clock seconds and the per-point growth factor;
//! the shape to check is IncMerge ≈ ×2 per doubling, MoveRight ≈ ×4,
//! DP ≈ ×8 (its feasibility scan makes the implementation cubic).
//!
//! E19 ([`yds_scaling`]) sweeps `yds()` (prefix-sum timeline engine)
//! against `yds_reference()` (the seed `O(n⁴)` loop) on one uniform
//! random family, recording seconds, the speedup, the YDS round count,
//! and the energy agreement; `exp-scaling --bench-json` renders it as
//! `BENCH_yds.json` so successive PRs accumulate a perf trajectory.
//!
//! E21 ([`multi_scaling`]) does the same for the §5 `L_α`-norm
//! partition solvers: the incremental branch and bound
//! (`min_norm_assignment`, sorted-loads state + seeded incumbent)
//! against the kept seed engine (`min_norm_assignment_reference`,
//! re-sort + re-scan per node), written as `BENCH_multi.json`. Both
//! engines are exponential in the worst case — that is Theorem 11 — so
//! unlike E19/E20 the instances are **named witnesses** (quantized-work
//! grids with recorded `(levels, seed)`), chosen so the reference
//! terminates where it is measured; points outside the reference's
//! reach record `null` reference columns exactly like the other paths'
//! caps.
//!
//! E22 ([`oa_scaling`]) covers the last deadline-stack engine: Optimal
//! Available on the kinetic tournament (`oa`, `O(log n)` amortized per
//! re-plan) against the kept per-event rank sweep (`oa_reference`,
//! `O(D log n)` per re-plan), written as `BENCH_oa.json`. Two families
//! per size — `uniform` (the E19 shape) and `clustered` (deadlines in
//! tight bands: near-tie certificates, the tournament's adversarial
//! case) — with per-point energy agreement recorded like E19/E20.

use crate::harness::{fmt, time_min, CsvTable};
use pas_core::deadline::{oa, oa_reference, yds, yds_reference, DeadlineInstance, DeadlineJob};
use pas_core::flow::curve::tradeoff_curve;
use pas_core::flow::solver::{laptop_reference, solve_for_u, solve_for_u_reference};
use pas_core::makespan::{dp, incmerge, moveright, Frontier};
use pas_power::PolyPower;
use pas_sim::metrics;
use pas_workload::{generators, Instance};
use std::time::Instant;

/// Sweep sizes. DP is capped (cubic); MoveRight quadratic; IncMerge and
/// the frontier run the full range.
pub fn run() -> Vec<CsvTable> {
    let model = PolyPower::CUBE;
    let mut table = CsvTable::new(
        "scaling_makespan_solvers",
        &["n", "incmerge_s", "frontier_build_s", "moveright_s", "dp_s"],
    );
    for &n in &[64usize, 128, 256, 512, 1024, 2048] {
        let instance = generators::uniform(n, n as f64, (0.2, 2.0), 42);
        let budget = 2.0 * instance.total_work();
        let deadline = instance.last_release() + 0.1 * n as f64;

        let (_, t_inc) = time_min(5, || {
            incmerge::laptop(&instance, &model, budget).expect("solvable")
        });
        let (_, t_frontier) = time_min(5, || Frontier::build(&instance, &model));
        let (_, t_mr) = time_min(3, || {
            moveright::server_moveright(&instance, &model, deadline).expect("solvable")
        });
        let t_dp = if n <= 512 {
            let (_, t) = time_min(1, || {
                dp::laptop_dp(&instance, &model, budget).expect("solvable")
            });
            fmt(t)
        } else {
            "".to_string()
        };
        table.push_row(vec![
            n.to_string(),
            fmt(t_inc),
            fmt(t_frontier),
            fmt(t_mr),
            t_dp,
        ]);
    }
    vec![table]
}

/// One measured point of the YDS naive-vs-optimized sweep.
#[derive(Debug, Clone)]
pub struct YdsScalingPoint {
    /// Instance size.
    pub n: usize,
    /// Optimized `yds()` seconds (min over repeats).
    pub optimized_s: f64,
    /// Repeats behind `optimized_s`.
    pub optimized_repeats: usize,
    /// Seed `yds_reference()` seconds (`None` when skipped as too slow).
    pub reference_s: Option<f64>,
    /// Repeats behind `reference_s`.
    pub reference_repeats: Option<usize>,
    /// YDS rounds on this instance (both engines run the same loop).
    pub rounds: usize,
    /// Relative energy gap |opt − ref| / ref under σ³ (`None` when the
    /// reference was skipped).
    pub energy_rel_gap: Option<f64>,
}

impl YdsScalingPoint {
    /// reference / optimized, when both were measured.
    pub fn speedup(&self) -> Option<f64> {
        self.reference_s.map(|r| r / self.optimized_s)
    }
}

/// The E19 instance family, shared with the criterion bench
/// (`benches/bench_deadline.rs`) so both curves always describe the
/// same instances.
pub fn e19_instance(n: usize) -> DeadlineInstance {
    DeadlineInstance::random(n, n as f64, (0.5, 6.0), (0.2, 3.0), 42)
}

/// `e19_instance` as a string, recorded in `BENCH_yds.json`.
pub const E19_FAMILY: &str = "DeadlineInstance::random(n, n, (0.5, 6.0), (0.2, 3.0), 42)";

/// Default reference cap for routine E19 runs: past this the `O(n⁴)`
/// seed engine takes minutes per run.
pub const E19_REFERENCE_CAP: usize = 512;

/// E19: sweep the YDS engines over uniform random instances of the given
/// sizes, measuring the reference only up to `reference_cap` (it is
/// `O(n⁴)`; at n=2000 a single run is minutes). Both engines report the
/// minimum over the same kind of repeat loop (repeat counts recorded per
/// point) so the speedup column is apples-to-apples.
pub fn yds_scaling(sizes: &[usize], reference_cap: usize) -> Vec<YdsScalingPoint> {
    let model = PolyPower::CUBE;
    sizes
        .iter()
        .map(|&n| {
            let inst = e19_instance(n);
            let optimized_repeats = if n <= 512 { 5 } else { 2 };
            let (out, optimized_s) = time_min(optimized_repeats, || yds(&inst).expect("feasible"));
            let rounds = out.rounds.len();
            let (reference_s, reference_repeats, energy_rel_gap) = if n <= reference_cap {
                let repeats = if n <= 512 { 3 } else { 1 };
                let (ref_out, secs) = time_min(repeats, || yds_reference(&inst).expect("feasible"));
                let e_opt = metrics::energy(&out.schedule, &model);
                let e_ref = metrics::energy(&ref_out.schedule, &model);
                (
                    Some(secs),
                    Some(repeats),
                    Some((e_opt - e_ref).abs() / e_ref),
                )
            } else {
                (None, None, None)
            };
            YdsScalingPoint {
                n,
                optimized_s,
                optimized_repeats,
                reference_s,
                reference_repeats,
                rounds,
                energy_rel_gap,
            }
        })
        .collect()
}

/// The default E19 sweep (reference measured at every point, n=2000
/// included — the acceptance configuration; expect minutes of wall
/// clock).
pub fn yds_scaling_default() -> Vec<YdsScalingPoint> {
    yds_scaling(&[64, 128, 256, 512, 1024, 2000], 2000)
}

/// Render E19 points as the `scaling_yds` CSV table.
pub fn yds_table(points: &[YdsScalingPoint]) -> CsvTable {
    let mut table = CsvTable::new(
        "scaling_yds",
        &[
            "n",
            "optimized_s",
            "reference_s",
            "speedup",
            "rounds",
            "energy_rel_gap",
        ],
    );
    for p in points {
        table.push_row(vec![
            p.n.to_string(),
            fmt(p.optimized_s),
            p.reference_s.map(fmt).unwrap_or_default(),
            p.speedup().map(|s| format!("{s:.2}")).unwrap_or_default(),
            p.rounds.to_string(),
            p.energy_rel_gap
                .map(|g| format!("{g:.3e}"))
                .unwrap_or_default(),
        ]);
    }
    table
}

/// Render E19 points as the `BENCH_yds.json` document: a scaling curve
/// plus the headline n=2000 speedup, consumed by future PRs as the perf
/// trajectory baseline.
pub fn yds_bench_json(points: &[YdsScalingPoint]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"bench\": \"yds_timeline_engine\",\n");
    out.push_str(&format!("  \"instance_family\": \"{E19_FAMILY}\",\n"));
    out.push_str("  \"metric\": \"wall_seconds_min_over_repeats\",\n  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"n\": {}, \"optimized_s\": {:.6}, \"optimized_repeats\": {}, \"reference_s\": {}, \"reference_repeats\": {}, \"speedup\": {}, \"rounds\": {}, \"energy_rel_gap\": {}}}{}\n",
            p.n,
            p.optimized_s,
            p.optimized_repeats,
            p.reference_s
                .map(|r| format!("{r:.6}"))
                .unwrap_or_else(|| "null".to_string()),
            p.reference_repeats
                .map(|r| r.to_string())
                .unwrap_or_else(|| "null".to_string()),
            p.speedup()
                .map(|s| format!("{s:.2}"))
                .unwrap_or_else(|| "null".to_string()),
            p.rounds,
            p.energy_rel_gap
                .map(|g| format!("{g:.3e}"))
                .unwrap_or_else(|| "null".to_string()),
            if i + 1 == points.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// One measured point of the E20 flow naive-vs-block sweep.
#[derive(Debug, Clone)]
pub struct FlowScalingPoint {
    /// Instance size.
    pub n: usize,
    /// Block-decomposition `solve_for_u` seconds (min over repeats).
    pub solve_block_s: f64,
    /// Reference fixed-point `solve_for_u` seconds (`None` past the cap).
    pub solve_reference_s: Option<f64>,
    /// Relative energy gap between the engines at the probe `u`.
    pub solve_energy_rel_gap: Option<f64>,
    /// Energies in the tradeoff-curve sweep below.
    pub curve_points: usize,
    /// Warm-started workspace `tradeoff_curve` seconds for the sweep.
    pub curve_block_s: f64,
    /// Cold `laptop_reference` seconds over the energies it solved
    /// (`None` past cap).
    pub curve_reference_s: Option<f64>,
    /// How many of the energies `laptop_reference` solved.
    pub curve_reference_ok: Option<usize>,
    /// How many it failed (the damped fixed point stalls near some
    /// configuration-change energies — a weakness of the reference
    /// engine the bench records rather than hides).
    pub curve_reference_failed: Option<usize>,
    /// Per-curve-point block-vs-reference energy gap at the solved `u`
    /// (`None` past the cap; inner `None` where the reference stalled).
    pub curve_energy_rel_gaps: Option<Vec<Option<f64>>>,
}

impl FlowScalingPoint {
    /// reference / block for the single `solve_for_u`.
    pub fn solve_speedup(&self) -> Option<f64> {
        self.solve_reference_s.map(|r| r / self.solve_block_s)
    }

    /// Per-energy reference seconds / per-energy block seconds — robust
    /// to reference stalls, since each side is averaged over the points
    /// it actually solved.
    pub fn curve_speedup(&self) -> Option<f64> {
        let ok = self.curve_reference_ok.filter(|&k| k > 0)? as f64;
        let r = self.curve_reference_s?;
        Some((r / ok) / (self.curve_block_s / self.curve_points as f64))
    }

    /// Worst per-point engine disagreement over the sweep (`None` when
    /// the reference was capped out or solved no point at all — zero
    /// comparisons must not read as perfect agreement).
    pub fn curve_max_energy_rel_gap(&self) -> Option<f64> {
        self.curve_energy_rel_gaps
            .as_ref()?
            .iter()
            .flatten()
            .copied()
            .fold(None, |m: Option<f64>, g| Some(m.map_or(g, |m| m.max(g))))
    }
}

/// The E20 instance family: the E7/E8 tradeoff-curve workload (equal-work
/// jobs, Poisson releases at rate 1.5 — contact-heavy, so segment
/// resolution is exercised) generalized from the 3-job hardness witness
/// to `n` jobs. Shared with `benches/bench_flow.rs`.
pub fn e20_instance(n: usize) -> Instance {
    generators::equal_work_poisson(n, 1.5, 1.0, 42)
}

/// `e20_instance` as a string, recorded in `BENCH_flow.json`.
pub const E20_FAMILY: &str = "generators::equal_work_poisson(n, 1.5, 1.0, 42)";

/// Default reference cap: past this the fixed-point engine's curve sweep
/// takes tens of minutes (each cold laptop is ~50 bisection steps of an
/// `O(iters·n)` iteration).
pub const E20_REFERENCE_CAP: usize = 1_000;

/// The sweep's energy grid: `curve_points` energies spanning 0.5×W to
/// 4×W on the instance (W = total work).
fn e20_energies(instance: &Instance, curve_points: usize) -> Vec<f64> {
    let w = instance.total_work();
    (0..curve_points)
        .map(|k| w * (0.5 + 3.5 * k as f64 / (curve_points - 1).max(1) as f64))
        .collect()
}

/// E20: block-decomposition flow solver vs the damped fixed-point
/// reference — one `solve_for_u` probe and one `curve_points`-point
/// warm-started `tradeoff_curve` sweep per size, with the reference
/// measured (and the per-point engine agreement recorded) up to
/// `reference_cap`.
pub fn flow_scaling(
    sizes: &[usize],
    curve_points: usize,
    reference_cap: usize,
) -> Vec<FlowScalingPoint> {
    sizes
        .iter()
        .map(|&n| {
            let inst = e20_instance(n);
            let repeats = if n <= 1_000 { 5 } else { 2 };
            let (block_sol, solve_block_s) =
                time_min(repeats, || solve_for_u(&inst, 3.0, 1.0).expect("solvable"));
            let (solve_reference_s, solve_energy_rel_gap) = if n <= reference_cap {
                // One timed probe doubles as the does-it-converge check,
                // so a stalling reference costs a single attempt.
                let (probe, first_s) = time_min(1, || solve_for_u_reference(&inst, 3.0, 1.0));
                match probe {
                    Ok(ref_sol) => {
                        let secs = if n <= 500 {
                            let (_, more) = time_min(2, || {
                                solve_for_u_reference(&inst, 3.0, 1.0).expect("convergent")
                            });
                            first_s.min(more)
                        } else {
                            first_s
                        };
                        (
                            Some(secs),
                            Some((block_sol.energy - ref_sol.energy).abs() / ref_sol.energy),
                        )
                    }
                    Err(_) => (None, None),
                }
            } else {
                (None, None)
            };

            let energies = e20_energies(&inst, curve_points);
            let (curve, curve_block_s) = time_min(1, || {
                tradeoff_curve(&inst, 3.0, &energies, 1e-10).expect("solvable")
            });
            let (curve_reference_s, curve_reference_ok, curve_reference_failed, gaps) =
                if n <= reference_cap {
                    let mut secs = 0.0;
                    let mut ok = 0usize;
                    let mut failed = 0usize;
                    for &e in &energies {
                        let t = Instant::now();
                        match laptop_reference(&inst, 3.0, e, 1e-10) {
                            Ok(_) => {
                                secs += t.elapsed().as_secs_f64();
                                ok += 1;
                            }
                            Err(_) => failed += 1,
                        }
                    }
                    // Per-point engine agreement at each solved u; the
                    // block side is the curve point itself (tradeoff_curve
                    // already ran the block engine at exactly this u).
                    let gaps = curve
                        .iter()
                        .map(|pt| {
                            solve_for_u_reference(&inst, 3.0, pt.u)
                                .ok()
                                .map(|slow| (pt.energy - slow.energy).abs() / slow.energy)
                        })
                        .collect();
                    (Some(secs), Some(ok), Some(failed), Some(gaps))
                } else {
                    (None, None, None, None)
                };

            FlowScalingPoint {
                n,
                solve_block_s,
                solve_reference_s,
                solve_energy_rel_gap,
                curve_points,
                curve_block_s,
                curve_reference_s,
                curve_reference_ok,
                curve_reference_failed,
                curve_energy_rel_gaps: gaps,
            }
        })
        .collect()
}

/// The full E20 acceptance sweep: n through 10⁴, 120-point curves, the
/// reference measured through n = 1000 (expect ~20 minutes — the
/// reference curve alone is ~120 cold bisection solves of an
/// `O(iters·n)` engine; that cost is the point).
pub fn flow_scaling_default() -> Vec<FlowScalingPoint> {
    flow_scaling(&[100, 300, 1_000, 3_000, 10_000], 120, E20_REFERENCE_CAP)
}

/// The smoke-tier E20 sweep: seconds, not minutes; exercised in CI.
pub fn flow_scaling_smoke() -> Vec<FlowScalingPoint> {
    flow_scaling(&[64, 256], 24, 256)
}

/// Render E20 points as the `scaling_flow` CSV table.
pub fn flow_table(points: &[FlowScalingPoint]) -> CsvTable {
    let mut table = CsvTable::new(
        "scaling_flow",
        &[
            "n",
            "solve_block_s",
            "solve_reference_s",
            "solve_speedup",
            "curve_points",
            "curve_block_s",
            "curve_reference_s",
            "curve_reference_ok",
            "curve_reference_failed",
            "curve_speedup",
            "curve_max_energy_rel_gap",
        ],
    );
    for p in points {
        table.push_row(vec![
            p.n.to_string(),
            fmt(p.solve_block_s),
            p.solve_reference_s.map(fmt).unwrap_or_default(),
            p.solve_speedup()
                .map(|s| format!("{s:.2}"))
                .unwrap_or_default(),
            p.curve_points.to_string(),
            fmt(p.curve_block_s),
            p.curve_reference_s.map(fmt).unwrap_or_default(),
            p.curve_reference_ok
                .map(|k| k.to_string())
                .unwrap_or_default(),
            p.curve_reference_failed
                .map(|k| k.to_string())
                .unwrap_or_default(),
            p.curve_speedup()
                .map(|s| format!("{s:.2}"))
                .unwrap_or_default(),
            p.curve_max_energy_rel_gap()
                .map(|g| format!("{g:.3e}"))
                .unwrap_or_default(),
        ]);
    }
    table
}

/// Render E20 points as the `BENCH_flow.json` document — the flow path's
/// perf-trajectory record, sibling to `BENCH_yds.json`.
pub fn flow_bench_json(points: &[FlowScalingPoint]) -> String {
    let opt = |v: Option<f64>| {
        v.map(|x| format!("{x:.6}"))
            .unwrap_or_else(|| "null".to_string())
    };
    let mut out = String::new();
    out.push_str("{\n  \"bench\": \"flow_block_decomposition\",\n");
    out.push_str(&format!("  \"instance_family\": \"{E20_FAMILY}\",\n"));
    out.push_str("  \"metric\": \"wall_seconds_min_over_repeats\",\n  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        let gaps = p
            .curve_energy_rel_gaps
            .as_ref()
            .map(|g| {
                let inner: Vec<String> = g
                    .iter()
                    .map(|x| {
                        x.map(|x| format!("{x:.3e}"))
                            .unwrap_or_else(|| "null".to_string())
                    })
                    .collect();
                format!("[{}]", inner.join(", "))
            })
            .unwrap_or_else(|| "null".to_string());
        out.push_str(&format!(
            "    {{\"n\": {}, \"solve_block_s\": {:.6}, \"solve_reference_s\": {}, \"solve_speedup\": {}, \"solve_energy_rel_gap\": {}, \"curve_points\": {}, \"curve_block_s\": {:.6}, \"curve_reference_s\": {}, \"curve_reference_ok\": {}, \"curve_reference_failed\": {}, \"curve_speedup\": {}, \"curve_max_energy_rel_gap\": {}, \"curve_energy_rel_gaps\": {}}}{}\n",
            p.n,
            p.solve_block_s,
            opt(p.solve_reference_s),
            p.solve_speedup()
                .map(|s| format!("{s:.2}"))
                .unwrap_or_else(|| "null".to_string()),
            p.solve_energy_rel_gap
                .map(|g| format!("{g:.3e}"))
                .unwrap_or_else(|| "null".to_string()),
            p.curve_points,
            p.curve_block_s,
            opt(p.curve_reference_s),
            p.curve_reference_ok
                .map(|k| k.to_string())
                .unwrap_or_else(|| "null".to_string()),
            p.curve_reference_failed
                .map(|k| k.to_string())
                .unwrap_or_else(|| "null".to_string()),
            p.curve_speedup()
                .map(|s| format!("{s:.2}"))
                .unwrap_or_else(|| "null".to_string()),
            p.curve_max_energy_rel_gap()
                .map(|g| format!("{g:.3e}"))
                .unwrap_or_else(|| "null".to_string()),
            gaps,
            if i + 1 == points.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// One configured instance of the E21 multiprocessor-partition sweep:
/// a quantized-work witness at `(n, m)`, with the reference engine
/// measured only where `measure_reference` says it terminates in
/// reasonable time (minutes, not hours — both engines are exponential
/// in the worst case).
#[derive(Debug, Clone, Copy)]
pub struct MultiPointSpec {
    /// Job count.
    pub n: usize,
    /// Processor count.
    pub m: usize,
    /// Distinct work values in the quantized grid.
    pub levels: u64,
    /// LCG seed of the witness instance.
    pub seed: u64,
    /// Wall-clock budget for the seed reference engine on this point:
    /// `0.0` skips the reference entirely; otherwise the run is
    /// abandoned (and recorded as **censored**) once the budget
    /// elapses. Censoring is how exact-solver benches stay honest about
    /// exponential engines: the reference provably needs *at least*
    /// this long, so the recorded speedup is a lower bound.
    pub reference_budget_s: f64,
}

/// One measured point of the E21 incremental-vs-reference sweep.
#[derive(Debug, Clone)]
pub struct MultiScalingPoint {
    /// The witness configuration.
    pub spec: MultiPointSpec,
    /// Incremental `min_norm_assignment` seconds (min over repeats).
    pub incremental_s: f64,
    /// Repeats behind `incremental_s`.
    pub incremental_repeats: usize,
    /// The optimal `L_α` norm the incremental engine found.
    pub incremental_norm: f64,
    /// Work-deque `min_norm_assignment_parallel` seconds (collapses to
    /// the sequential engine on single-core machines).
    pub parallel_s: f64,
    /// Seed `min_norm_assignment_reference` seconds: the measured wall
    /// time when it completed, the exhausted budget when censored,
    /// `None` when the reference was skipped (`reference_budget_s = 0`).
    pub reference_s: Option<f64>,
    /// Whether the reference run was abandoned at its budget. When
    /// true, `reference_s` (and therefore [`speedup`](Self::speedup))
    /// is a **lower bound**.
    pub reference_censored: bool,
    /// Relative norm gap |incremental − reference| / reference (only
    /// when the reference completed).
    pub norm_rel_gap: Option<f64>,
    /// Relative norm gap |parallel − incremental| / incremental.
    pub parallel_rel_gap: f64,
}

impl MultiScalingPoint {
    /// reference / incremental: the exact speedup when the reference
    /// completed, a lower bound when
    /// [`reference_censored`](Self::reference_censored) is set.
    pub fn speedup(&self) -> Option<f64> {
        self.reference_s.map(|r| r / self.incremental_s)
    }
}

/// The E21 instance family: works quantized to a `levels`-step grid
/// over `[0.5, 3.5]`, drawn by a fixed LCG from `seed`. Quantization
/// matters: duplicate work values are exactly where the incremental
/// engine's equal-load symmetry breaking bites, and grid sums keep the
/// Partition-style structure of Theorem 11.
pub fn multi_works(n: usize, levels: u64, seed: u64) -> Vec<f64> {
    let mut state = seed;
    let step = 3.0 / levels as f64;
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            0.5 + step * ((state >> 33) % levels) as f64
        })
        .collect()
}

/// `multi_works` as a string, recorded in `BENCH_multi.json`.
pub const E21_FAMILY: &str =
    "0.5 + (3.0/levels)*(lcg(seed)>>33 % levels), alpha=3, per-point (n, m, levels, seed)";

/// Run the seed reference under a wall-clock budget on a detached
/// thread. Returns `(Some((norm, seconds)), false)` when it completes
/// in time and `(None, true)` when censored.
///
/// A censored run's thread cannot be killed (std has no thread
/// cancellation) and keeps burning CPU until the process exits, so
/// sweeps must order censored-budget points **after** every
/// completion-expected reference — `exp-scaling` writes its JSON and
/// exits immediately, which reaps the leak.
fn run_reference_budgeted(
    works: &[f64],
    m: usize,
    alpha: f64,
    budget_s: f64,
) -> (Option<(f64, f64)>, bool) {
    use pas_core::multi::partition::min_norm_assignment_reference;
    use std::sync::mpsc;
    use std::time::Duration;
    let (tx, rx) = mpsc::channel();
    let works = works.to_vec();
    std::thread::spawn(move || {
        let t = Instant::now();
        let (_, norm) = min_norm_assignment_reference(&works, m, alpha);
        let _ = tx.send((norm, t.elapsed().as_secs_f64()));
    });
    match rx.recv_timeout(Duration::from_secs_f64(budget_s)) {
        Ok((norm, secs)) => (Some((norm, secs)), false),
        Err(_) => (None, true),
    }
}

/// E21: the incremental `L_α`-norm branch and bound vs the kept seed
/// reference on the given witness points.
///
/// Two passes: the fast engines are all timed first, then the
/// references run in spec order — so a censored reference's leaked
/// thread (see `run_reference_budgeted`) can never contend with a
/// fast-engine measurement. Put censored-budget specs last.
pub fn multi_scaling(specs: &[MultiPointSpec]) -> Vec<MultiScalingPoint> {
    use pas_core::multi::parallel::min_norm_assignment_parallel;
    use pas_core::multi::partition::min_norm_assignment;
    let alpha = 3.0;
    let mut points: Vec<MultiScalingPoint> = specs
        .iter()
        .map(|&spec| {
            let works = multi_works(spec.n, spec.levels, spec.seed);
            let incremental_repeats = 3;
            let ((_, inc_norm), incremental_s) = time_min(incremental_repeats, || {
                min_norm_assignment(&works, spec.m, alpha)
            });
            let ((_, par_norm), parallel_s) =
                time_min(1, || min_norm_assignment_parallel(&works, spec.m, alpha));
            MultiScalingPoint {
                spec,
                incremental_s,
                incremental_repeats,
                incremental_norm: inc_norm,
                parallel_s,
                reference_s: None,
                reference_censored: false,
                norm_rel_gap: None,
                parallel_rel_gap: (par_norm - inc_norm).abs() / inc_norm.max(1.0),
            }
        })
        .collect();
    for point in &mut points {
        let spec = point.spec;
        if spec.reference_budget_s <= 0.0 {
            continue;
        }
        let works = multi_works(spec.n, spec.levels, spec.seed);
        let (done, censored) =
            run_reference_budgeted(&works, spec.m, alpha, spec.reference_budget_s);
        point.reference_censored = censored;
        match done {
            Some((ref_norm, secs)) => {
                point.reference_s = Some(secs);
                point.norm_rel_gap = Some((point.incremental_norm - ref_norm).abs() / ref_norm);
            }
            None => {
                // Censored: the reference provably needed at least the
                // budget, so record the budget as the floor.
                point.reference_s = Some(spec.reference_budget_s);
            }
        }
    }
    points
}

/// The default E21 acceptance sweep: the m = 4 points complete on both
/// engines (probed: milliseconds-to-seconds for the reference); the
/// m = 8 points at n = 24/30 carry 10–15-minute censor budgets the
/// seed engine was probed to exceed — the incremental engine solves
/// those witnesses in well under a second, so even the censored floors
/// record 3–4 orders of magnitude of speedup; the n = 34/40 reach
/// points do not attempt the reference at all.
pub fn multi_scaling_default() -> Vec<MultiScalingPoint> {
    multi_scaling(&[
        MultiPointSpec {
            n: 16,
            m: 4,
            levels: 12,
            seed: 1,
            reference_budget_s: 600.0,
        },
        MultiPointSpec {
            n: 20,
            m: 4,
            levels: 12,
            seed: 1,
            reference_budget_s: 900.0,
        },
        MultiPointSpec {
            n: 24,
            m: 8,
            levels: 12,
            seed: 4,
            reference_budget_s: 900.0,
        },
        MultiPointSpec {
            n: 30,
            m: 8,
            levels: 4,
            seed: 10,
            reference_budget_s: 600.0,
        },
        MultiPointSpec {
            n: 30,
            m: 8,
            levels: 4,
            seed: 12,
            reference_budget_s: 600.0,
        },
        MultiPointSpec {
            n: 34,
            m: 8,
            levels: 12,
            seed: 5,
            reference_budget_s: 0.0,
        },
        MultiPointSpec {
            n: 40,
            m: 8,
            levels: 12,
            seed: 2,
            reference_budget_s: 0.0,
        },
    ])
}

/// The smoke-tier E21 sweep: seconds, not minutes; exercised in CI.
/// The reference budgets are generous relative to the expected
/// completion times, so censoring only triggers on pathological
/// machines (and is recorded as such rather than failing).
pub fn multi_scaling_smoke() -> Vec<MultiScalingPoint> {
    multi_scaling(&[
        MultiPointSpec {
            n: 12,
            m: 4,
            levels: 8,
            seed: 1,
            reference_budget_s: 60.0,
        },
        MultiPointSpec {
            n: 16,
            m: 4,
            levels: 12,
            seed: 1,
            reference_budget_s: 60.0,
        },
        MultiPointSpec {
            n: 20,
            m: 8,
            levels: 4,
            seed: 8,
            reference_budget_s: 0.0,
        },
    ])
}

/// Render E21 points as the `scaling_multi` CSV table.
pub fn multi_table(points: &[MultiScalingPoint]) -> CsvTable {
    let mut table = CsvTable::new(
        "scaling_multi",
        &[
            "n",
            "m",
            "levels",
            "seed",
            "incremental_s",
            "parallel_s",
            "reference_s",
            "reference_censored",
            "speedup",
            "norm_rel_gap",
            "parallel_rel_gap",
        ],
    );
    for p in points {
        table.push_row(vec![
            p.spec.n.to_string(),
            p.spec.m.to_string(),
            p.spec.levels.to_string(),
            p.spec.seed.to_string(),
            fmt(p.incremental_s),
            fmt(p.parallel_s),
            p.reference_s.map(fmt).unwrap_or_default(),
            p.reference_censored.to_string(),
            p.speedup()
                .map(|s| {
                    if p.reference_censored {
                        format!(">={s:.2}")
                    } else {
                        format!("{s:.2}")
                    }
                })
                .unwrap_or_default(),
            p.norm_rel_gap
                .map(|g| format!("{g:.3e}"))
                .unwrap_or_default(),
            format!("{:.3e}", p.parallel_rel_gap),
        ]);
    }
    table
}

/// Render E21 points as the `BENCH_multi.json` document — the
/// multiprocessor path's perf-trajectory record, sibling to
/// `BENCH_yds.json` and `BENCH_flow.json`.
pub fn multi_bench_json(points: &[MultiScalingPoint]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"bench\": \"multi_incremental_bb\",\n");
    out.push_str(&format!("  \"instance_family\": \"{E21_FAMILY}\",\n"));
    out.push_str(
        "  \"metric\": \"wall_seconds_min_over_repeats\",\n  \"censoring\": \"reference_censored=true means the seed engine was abandoned at its wall-clock budget; reference_s is then a floor and speedup a lower bound\",\n  \"points\": [\n",
    );
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"n\": {}, \"m\": {}, \"levels\": {}, \"seed\": {}, \"incremental_s\": {:.6}, \"incremental_repeats\": {}, \"parallel_s\": {:.6}, \"reference_s\": {}, \"reference_censored\": {}, \"speedup\": {}, \"norm_rel_gap\": {}, \"parallel_rel_gap\": {:.3e}}}{}\n",
            p.spec.n,
            p.spec.m,
            p.spec.levels,
            p.spec.seed,
            p.incremental_s,
            p.incremental_repeats,
            p.parallel_s,
            p.reference_s
                .map(|r| format!("{r:.6}"))
                .unwrap_or_else(|| "null".to_string()),
            p.reference_censored,
            p.speedup()
                .map(|s| format!("{s:.2}"))
                .unwrap_or_else(|| "null".to_string()),
            p.norm_rel_gap
                .map(|g| format!("{g:.3e}"))
                .unwrap_or_else(|| "null".to_string()),
            p.parallel_rel_gap,
            if i + 1 == points.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// One measured point of the E22 OA kinetic-vs-sweep sweep.
#[derive(Debug, Clone)]
pub struct OaScalingPoint {
    /// Instance size.
    pub n: usize,
    /// Which E22 family the instance came from (`uniform` /
    /// `clustered`).
    pub family: &'static str,
    /// Kinetic-tournament `oa()` seconds (min over repeats).
    pub kinetic_s: f64,
    /// Repeats behind `kinetic_s`.
    pub kinetic_repeats: usize,
    /// Per-event-sweep `oa_reference()` seconds (`None` past the cap).
    pub reference_s: Option<f64>,
    /// Repeats behind `reference_s`.
    pub reference_repeats: Option<usize>,
    /// Relative energy gap |kinetic − reference| / reference under σ³.
    pub energy_rel_gap: Option<f64>,
}

impl OaScalingPoint {
    /// reference / kinetic, when both were measured.
    pub fn speedup(&self) -> Option<f64> {
        self.reference_s.map(|r| r / self.kinetic_s)
    }
}

/// The E22 `uniform` family: same generator shape as E19, so the two
/// deadline-stack curves describe comparable instances. Shared with the
/// criterion bench (`benches/bench_deadline.rs`).
pub fn e22_uniform(n: usize) -> DeadlineInstance {
    DeadlineInstance::random(n, n as f64, (0.5, 6.0), (0.2, 3.0), 42)
}

/// The E22 `clustered` family: deadlines packed into `n/100 + 4` tight
/// bands (distinct values, `~0.05`-wide jitter), releases a short
/// window before them. Near-ties everywhere is the adversarial case
/// for the kinetic tournament's certificates — margins are small, so
/// revalidation pressure is maximal — while the per-event sweep still
/// pays for every live rank.
pub fn e22_clustered(n: usize) -> DeadlineInstance {
    use rand::distributions::{Distribution, Uniform};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let clusters = n / 100 + 4;
    let span = n as f64;
    let mut rng = StdRng::seed_from_u64(42);
    let cluster_of = Uniform::new(0usize, clusters);
    let jitter = Uniform::new_inclusive(0.0, 0.05);
    let work = Uniform::new_inclusive(0.2, 2.0);
    let release_back = Uniform::new_inclusive(0.5, 4.0);
    let jobs = (0..n)
        .map(|i| {
            let center = span * (cluster_of.sample(&mut rng) as f64 + 1.0) / clusters as f64;
            let d = center + jitter.sample(&mut rng);
            let r = (d - release_back.sample(&mut rng)).max(0.0);
            DeadlineJob::new(i as u32, r, d, work.sample(&mut rng))
        })
        .collect();
    DeadlineInstance::new(jobs).expect("clustered jobs are valid")
}

/// The E22 families as strings, recorded in `BENCH_oa.json`.
pub const E22_FAMILIES: [&str; 2] = [
    "uniform: DeadlineInstance::random(n, n, (0.5, 6.0), (0.2, 3.0), 42)",
    "clustered: n/100+4 bands, 0.05 jitter, release 0.5-4.0 before deadline, seed 42",
];

/// E22: the kinetic-tournament OA against the per-event-sweep
/// reference on both families, reference measured up to
/// `reference_cap`. Unlike the `O(n⁴)` YDS seed, the OA reference is
/// only `O(n · D log n)`, so the acceptance sweep measures it at every
/// point including n = 20000 (seconds, not minutes).
pub fn oa_scaling(sizes: &[usize], reference_cap: usize) -> Vec<OaScalingPoint> {
    let model = PolyPower::CUBE;
    let mut points = Vec::new();
    for &n in sizes {
        for (family, inst) in [("uniform", e22_uniform(n)), ("clustered", e22_clustered(n))] {
            let kinetic_repeats = if n <= 5_000 { 5 } else { 3 };
            let (fast, kinetic_s) = time_min(kinetic_repeats, || oa(&inst).expect("feasible"));
            let (reference_s, reference_repeats, energy_rel_gap) = if n <= reference_cap {
                let repeats = if n <= 5_000 { 3 } else { 2 };
                let (slow, secs) = time_min(repeats, || oa_reference(&inst).expect("feasible"));
                let e_fast = metrics::energy(&fast, &model);
                let e_slow = metrics::energy(&slow, &model);
                (
                    Some(secs),
                    Some(repeats),
                    Some((e_fast - e_slow).abs() / e_slow),
                )
            } else {
                (None, None, None)
            };
            points.push(OaScalingPoint {
                n,
                family,
                kinetic_s,
                kinetic_repeats,
                reference_s,
                reference_repeats,
                energy_rel_gap,
            });
        }
    }
    points
}

/// The default E22 sweep (reference measured at every point including
/// the n = 20000 acceptance configuration).
pub fn oa_scaling_default() -> Vec<OaScalingPoint> {
    oa_scaling(&[1_000, 5_000, 20_000], 20_000)
}

/// The smoke-tier E22 sweep: seconds-scale, exercised in CI.
pub fn oa_scaling_smoke() -> Vec<OaScalingPoint> {
    oa_scaling(&[256, 1_024], 1_024)
}

/// Render E22 points as the `scaling_oa` CSV table.
pub fn oa_table(points: &[OaScalingPoint]) -> CsvTable {
    let mut table = CsvTable::new(
        "scaling_oa",
        &[
            "n",
            "family",
            "kinetic_s",
            "reference_s",
            "speedup",
            "energy_rel_gap",
        ],
    );
    for p in points {
        table.push_row(vec![
            p.n.to_string(),
            p.family.to_string(),
            fmt(p.kinetic_s),
            p.reference_s.map(fmt).unwrap_or_default(),
            p.speedup().map(|s| format!("{s:.2}")).unwrap_or_default(),
            p.energy_rel_gap
                .map(|g| format!("{g:.3e}"))
                .unwrap_or_default(),
        ]);
    }
    table
}

/// Render E22 points as the `BENCH_oa.json` document — the OA path's
/// perf-trajectory record, sibling to the other `BENCH_*` files.
pub fn oa_bench_json(points: &[OaScalingPoint]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"bench\": \"oa_kinetic_tournament\",\n");
    out.push_str(&format!(
        "  \"instance_families\": [\"{}\", \"{}\"],\n",
        E22_FAMILIES[0], E22_FAMILIES[1]
    ));
    out.push_str("  \"metric\": \"wall_seconds_min_over_repeats\",\n  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"n\": {}, \"family\": \"{}\", \"kinetic_s\": {:.6}, \"kinetic_repeats\": {}, \"reference_s\": {}, \"reference_repeats\": {}, \"speedup\": {}, \"energy_rel_gap\": {}}}{}\n",
            p.n,
            p.family,
            p.kinetic_s,
            p.kinetic_repeats,
            p.reference_s
                .map(|r| format!("{r:.6}"))
                .unwrap_or_else(|| "null".to_string()),
            p.reference_repeats
                .map(|r| r.to_string())
                .unwrap_or_else(|| "null".to_string()),
            p.speedup()
                .map(|s| format!("{s:.2}"))
                .unwrap_or_else(|| "null".to_string()),
            p.energy_rel_gap
                .map(|g| format!("{g:.3e}"))
                .unwrap_or_else(|| "null".to_string()),
            if i + 1 == points.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn oa_scaling_point_speedup_and_agreement() {
        let points = super::oa_scaling(&[96, 192], 96);
        assert_eq!(points.len(), 4); // two families per size
        for p in &points[..2] {
            assert_eq!(p.n, 96);
            assert!(p.speedup().unwrap() > 0.0);
            assert!(
                p.energy_rel_gap.unwrap() < 1e-9,
                "{}: gap {:?}",
                p.family,
                p.energy_rel_gap
            );
        }
        // Past the cap the reference columns go null.
        assert!(points[2].reference_s.is_none());
        assert!(points[3].energy_rel_gap.is_none());
        let table = super::oa_table(&points);
        assert_eq!(table.rows.len(), 4);
        let json = super::oa_bench_json(&points);
        assert!(json.contains("\"bench\": \"oa_kinetic_tournament\""));
        assert!(json.contains("\"family\": \"clustered\""));
        assert!(json.contains("\"reference_s\": null"));
    }

    #[test]
    fn flow_scaling_point_speedup_and_agreement() {
        let points = super::flow_scaling(&[32, 64], 8, 32);
        assert_eq!(points.len(), 2);
        let capped = &points[0];
        assert!(capped.solve_speedup().unwrap() > 0.0);
        assert!(capped.curve_speedup().unwrap() > 0.0);
        assert!(
            capped.curve_max_energy_rel_gap().unwrap() < 1e-9,
            "gap {:?}",
            capped.curve_max_energy_rel_gap()
        );
        assert_eq!(capped.curve_energy_rel_gaps.as_ref().unwrap().len(), 8);
        // Past the cap the reference columns go null.
        assert!(points[1].solve_reference_s.is_none());
        assert!(points[1].curve_reference_s.is_none());
        let table = super::flow_table(&points);
        assert_eq!(table.rows.len(), 2);
        let json = super::flow_bench_json(&points);
        assert!(json.contains("\"bench\": \"flow_block_decomposition\""));
        assert!(json.contains("\"curve_reference_s\": null"));
    }

    #[test]
    fn yds_scaling_point_speedup_and_agreement() {
        let points = super::yds_scaling(&[48, 96], 96);
        assert_eq!(points.len(), 2);
        for p in &points {
            assert!(p.optimized_s >= 0.0 && p.rounds > 0);
            assert!(p.speedup().unwrap() > 0.0);
            assert!(
                p.energy_rel_gap.unwrap() < 1e-9,
                "gap {:?}",
                p.energy_rel_gap
            );
        }
        let table = super::yds_table(&points);
        assert_eq!(table.rows.len(), 2);
        let json = super::yds_bench_json(&points);
        assert!(json.contains("\"bench\": \"yds_timeline_engine\""));
        assert!(json.contains("\"n\": 48"));
        // The reference cap turns missing measurements into nulls.
        let capped = super::yds_scaling(&[48, 96], 48);
        assert!(capped[1].reference_s.is_none());
        assert!(super::yds_bench_json(&capped).contains("\"reference_s\": null"));
    }

    #[test]
    fn multi_scaling_point_speedup_and_agreement() {
        use super::MultiPointSpec;
        let points = super::multi_scaling(&[
            MultiPointSpec {
                n: 10,
                m: 3,
                levels: 6,
                seed: 1,
                reference_budget_s: 120.0,
            },
            MultiPointSpec {
                n: 12,
                m: 4,
                levels: 4,
                seed: 2,
                reference_budget_s: 0.0,
            },
        ]);
        assert_eq!(points.len(), 2);
        let measured = &points[0];
        assert!(measured.speedup().unwrap() > 0.0);
        // Tiny instance within a generous budget: either it completed
        // with exact agreement, or a pathological machine censored it
        // (recorded, not hidden).
        if measured.reference_censored {
            assert!(measured.norm_rel_gap.is_none());
            assert!((measured.reference_s.unwrap() - 120.0).abs() < 1e-9);
        } else {
            assert!(
                measured.norm_rel_gap.unwrap() < 1e-9,
                "gap {:?}",
                measured.norm_rel_gap
            );
        }
        assert!(measured.parallel_rel_gap < 1e-9);
        // Reference skipped -> null columns, not censored.
        assert!(points[1].reference_s.is_none());
        assert!(points[1].norm_rel_gap.is_none());
        assert!(!points[1].reference_censored);
        let table = super::multi_table(&points);
        assert_eq!(table.rows.len(), 2);
        let json = super::multi_bench_json(&points);
        assert!(json.contains("\"bench\": \"multi_incremental_bb\""));
        assert!(json.contains("\"reference_s\": null"));
        assert!(json.contains("\"reference_censored\": false"));
    }

    #[test]
    fn multi_scaling_censors_hopeless_references() {
        use super::MultiPointSpec;
        // A witness the seed engine cannot finish in 0.05s wall-clock
        // but does finish in a few seconds (probed ~3s): the point must
        // come back censored with the budget as the floor, and the
        // leaked reference thread dies shortly after instead of pinning
        // a core for the rest of the test run.
        let points = super::multi_scaling(&[MultiPointSpec {
            n: 20,
            m: 4,
            levels: 12,
            seed: 1,
            reference_budget_s: 0.05,
        }]);
        let p = &points[0];
        assert!(p.reference_censored, "expected censoring, got {p:?}");
        assert!((p.reference_s.unwrap() - 0.05).abs() < 1e-9);
        assert!(p.norm_rel_gap.is_none());
        assert!(super::multi_bench_json(&points).contains("\"reference_censored\": true"));
        assert!(super::multi_table(&points).rows[0][8].starts_with(">="));
    }

    #[test]
    fn scaling_smoke() {
        // Full run is for the binary; here make sure one small row works.
        let model = pas_power::PolyPower::CUBE;
        let instance = pas_workload::generators::uniform(64, 64.0, (0.2, 2.0), 42);
        let budget = 2.0 * instance.total_work();
        let a = pas_core::makespan::incmerge::laptop(&instance, &model, budget)
            .unwrap()
            .makespan();
        let b = pas_core::makespan::dp::laptop_dp(&instance, &model, budget)
            .unwrap()
            .makespan();
        assert!((a - b).abs() < 1e-6 * a);
    }
}
