//! E4/E5: running-time scaling — IncMerge's linearity against the
//! quadratic/cubic baselines.
//!
//! Reproduces two prose claims: §3's "linear time once the jobs are
//! sorted" (vs the §3.1 dynamic program) and §2's "our algorithm runs
//! faster" than the Uysal-Biyikoglu et al. quadratic server algorithm.
//! The table reports wall-clock seconds and the per-point growth factor;
//! the shape to check is IncMerge ≈ ×2 per doubling, MoveRight ≈ ×4,
//! DP ≈ ×8 (its feasibility scan makes the implementation cubic).

use crate::harness::{fmt, time_min, CsvTable};
use pas_core::makespan::{dp, incmerge, moveright, Frontier};
use pas_power::PolyPower;
use pas_workload::generators;

/// Sweep sizes. DP is capped (cubic); MoveRight quadratic; IncMerge and
/// the frontier run the full range.
pub fn run() -> Vec<CsvTable> {
    let model = PolyPower::CUBE;
    let mut table = CsvTable::new(
        "scaling_makespan_solvers",
        &[
            "n",
            "incmerge_s",
            "frontier_build_s",
            "moveright_s",
            "dp_s",
        ],
    );
    for &n in &[64usize, 128, 256, 512, 1024, 2048] {
        let instance = generators::uniform(n, n as f64, (0.2, 2.0), 42);
        let budget = 2.0 * instance.total_work();
        let deadline = instance.last_release() + 0.1 * n as f64;

        let (_, t_inc) = time_min(5, || {
            incmerge::laptop(&instance, &model, budget).expect("solvable")
        });
        let (_, t_frontier) = time_min(5, || Frontier::build(&instance, &model));
        let (_, t_mr) = time_min(3, || {
            moveright::server_moveright(&instance, &model, deadline).expect("solvable")
        });
        let t_dp = if n <= 512 {
            let (_, t) = time_min(1, || {
                dp::laptop_dp(&instance, &model, budget).expect("solvable")
            });
            fmt(t)
        } else {
            "".to_string()
        };
        table.push_row(vec![
            n.to_string(),
            fmt(t_inc),
            fmt(t_frontier),
            fmt(t_mr),
            t_dp,
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    #[test]
    fn scaling_smoke() {
        // Full run is for the binary; here make sure one small row works.
        let model = pas_power::PolyPower::CUBE;
        let instance = pas_workload::generators::uniform(64, 64.0, (0.2, 2.0), 42);
        let budget = 2.0 * instance.total_work();
        let a = pas_core::makespan::incmerge::laptop(&instance, &model, budget)
            .unwrap()
            .makespan();
        let b = pas_core::makespan::dp::laptop_dp(&instance, &model, budget)
            .unwrap()
            .makespan();
        assert!((a - b).abs() < 1e-6 * a);
    }
}
