//! E1–E3: regenerate the paper's Figures 1–3.
//!
//! Instance `r = [0, 5, 6]`, `w = [5, 2, 1]`, `power = speed³`; energies
//! sweep the figures' axis range `[6, 21]`. A companion table records
//! the breakpoints and the closed-form checkpoint values EXPERIMENTS.md
//! compares against the paper.

use crate::harness::{fmt, CsvTable};
use pas_core::makespan::Frontier;
use pas_power::PolyPower;
use pas_workload::Instance;

/// The §3.2 instance.
pub fn paper_instance() -> Instance {
    Instance::from_pairs(&[(0.0, 5.0), (5.0, 2.0), (6.0, 1.0)]).expect("static instance")
}

/// Produce the three figure series plus the checkpoint table.
pub fn run() -> Vec<CsvTable> {
    let instance = paper_instance();
    let model = PolyPower::CUBE;
    let frontier = Frontier::build(&instance, &model);

    let mut fig1 = CsvTable::new("fig1_energy_makespan", &["energy", "makespan"]);
    let mut fig2 = CsvTable::new("fig2_first_derivative", &["energy", "dM_dE"]);
    let mut fig3 = CsvTable::new("fig3_second_derivative", &["energy", "d2M_dE2"]);
    let steps = 600;
    for k in 0..=steps {
        let e = 6.0 + 15.0 * k as f64 / steps as f64;
        fig1.push_row(vec![
            fmt(e),
            fmt(frontier.makespan(&model, e).expect("valid E")),
        ]);
        fig2.push_row(vec![
            fmt(e),
            fmt(frontier.makespan_derivative(&model, e).expect("valid E")),
        ]);
        fig3.push_row(vec![
            fmt(e),
            fmt(frontier
                .makespan_second_derivative(&model, e)
                .expect("valid E")),
        ]);
    }

    let mut check = CsvTable::new("fig_checkpoints", &["quantity", "paper", "measured"]);
    let bp = frontier.breakpoints();
    check.push_row(vec!["breakpoint_high".into(), "17".into(), fmt(bp[0])]);
    check.push_row(vec!["breakpoint_low".into(), "8".into(), fmt(bp[1])]);
    let m6 = frontier.makespan(&model, 6.0).expect("valid");
    let m21 = frontier.makespan(&model, 21.0).expect("valid");
    check.push_row(vec![
        "makespan_at_E6".into(),
        "9.2376 (8*sqrt(8/6))".into(),
        fmt(m6),
    ]);
    check.push_row(vec![
        "makespan_at_E21".into(),
        "6.3536 (6+1/sqrt(8))".into(),
        fmt(m21),
    ]);
    check.push_row(vec![
        "dM_dE_at_8".into(),
        "-0.5".into(),
        fmt(frontier.makespan_derivative(&model, 8.0).expect("valid")),
    ]);
    check.push_row(vec![
        "dM_dE_at_17".into(),
        "-0.0625".into(),
        fmt(frontier.makespan_derivative(&model, 17.0).expect("valid")),
    ]);
    check.push_row(vec![
        "d2M_jump_at_8".into(),
        "0.09375 -> 0.25".into(),
        format!(
            "{} -> {}",
            fmt(frontier
                .makespan_second_derivative(&model, 8.0 - 1e-9)
                .expect("valid")),
            fmt(frontier
                .makespan_second_derivative(&model, 8.0 + 1e-9)
                .expect("valid"))
        ),
    ]);
    check.push_row(vec![
        "d2M_jump_at_17".into(),
        "0.0078125 -> 0.0234375".into(),
        format!(
            "{} -> {}",
            fmt(frontier
                .makespan_second_derivative(&model, 17.0 - 1e-9)
                .expect("valid")),
            fmt(frontier
                .makespan_second_derivative(&model, 17.0 + 1e-9)
                .expect("valid"))
        ),
    ]);

    vec![fig1, fig2, fig3, check]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_tables_have_expected_shape() {
        let tables = run();
        assert_eq!(tables.len(), 4);
        assert_eq!(tables[0].rows.len(), 601);
        assert_eq!(tables[3].rows.len(), 8);
        // Spot check a fig1 row: E=6 -> 9.2376.
        assert!(tables[0].rows[0][1].starts_with("9.2376"));
    }
}
