//! E17: maximum temperature of optimal-makespan schedules.
//!
//! The paper's §2 recounts Bansal–Kimbrel–Pruhs' thermal objective:
//! under Newton's law of cooling (`T' = a·P − b·T`), fast schedules run
//! hot. This experiment sweeps the energy budget on the paper instance
//! and records the peak temperature of the *makespan-optimal* schedule
//! for two cooling rates — quantifying the energy/heat coupling the
//! related work studies (no paper numbers exist; shape: monotone
//! increase, steeper for weak cooling).

use crate::harness::{fmt, CsvTable};
use pas_core::makespan;
use pas_power::PolyPower;
use pas_sim::metrics;
use pas_workload::Instance;

/// Produce the temperature table.
pub fn run() -> Vec<CsvTable> {
    let instance =
        Instance::from_pairs(&[(0.0, 5.0), (5.0, 2.0), (6.0, 1.0)]).expect("paper instance");
    let model = PolyPower::CUBE;
    let mut table = CsvTable::new(
        "temperature_vs_energy",
        &["energy", "makespan", "peak_temp_b05", "peak_temp_b2"],
    );
    for k in 0..=30 {
        let e = 6.0 + 0.5 * k as f64;
        let blocks = makespan::laptop(&instance, &model, e).expect("solvable");
        let schedule = blocks.to_schedule(&instance);
        table.push_row(vec![
            fmt(e),
            fmt(blocks.makespan()),
            fmt(metrics::max_temperature(&schedule, &model, 1.0, 0.5)),
            fmt(metrics::max_temperature(&schedule, &model, 1.0, 2.0)),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    #[test]
    fn peak_temperature_increases_with_budget() {
        let tables = super::run();
        let rows = &tables[0].rows;
        let first: f64 = rows[0][2].parse().unwrap();
        let last: f64 = rows[rows.len() - 1][2].parse().unwrap();
        assert!(last > first, "more energy should run hotter");
        // Strong cooling stays cooler than weak cooling, row by row.
        for row in rows {
            let weak: f64 = row[2].parse().unwrap();
            let strong: f64 = row[3].parse().unwrap();
            assert!(strong <= weak + 1e-9, "{row:?}");
        }
    }
}
