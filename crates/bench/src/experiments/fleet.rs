//! E25: the fleet-scaling sweep — host count × dispatch policy.
//!
//! A heterogeneous fleet (four cycling host archetypes: bare cubic,
//! ladder+qOA, idle+sleep+BKP, capped ladder) serves a heavy-tailed
//! workload of roughly `jobs_per_host` jobs per host. For each host
//! count the sweep records wall time of a full deterministic run plus
//! the fleet-level outcome: dynamic/static energy, flow, makespan,
//! sleeps, sheds, and the fleet digest. The shape to expect: wall time
//! grows roughly linearly in total job count (each host's engine run is
//! linear in its own queue, dispatch is an `O(hosts)` scan per
//! arrival), static energy grows with host count (more idle floors to
//! pay), and the digest is bit-stable across re-runs of the same sweep.
//!
//! The JSON document also embeds the single-host equivalence check —
//! a 1-host fleet re-run against the bare `pas_sim` engine at digest
//! level — so the perf record is self-certifying: a trajectory entry
//! with `"single_host_equivalence": false` is evidence of a correctness
//! regression, not a perf change.

use std::time::Instant;

use crate::harness::{fmt, CsvTable};
use pas_fleet::{run, DispatchPolicy, EnginePower, FleetScenario, HostConfig, HostPolicy};
use pas_power::{DiscreteSpeeds, HostPower, PolyPower, SleepConfig};
use pas_sim::journal::outcome_digest;
use pas_sim::run_online_with_faults;
use pas_workload::{generators, Instance};

/// One fleet run at one host count.
#[derive(Debug, Clone)]
pub struct FleetScalingPoint {
    /// Number of hosts.
    pub hosts: usize,
    /// Total jobs dispatched.
    pub jobs: usize,
    /// Dispatch policy name.
    pub dispatch: &'static str,
    /// Seed of the run.
    pub seed: u64,
    /// Wall time of the full run (dispatch + every host engine).
    pub wall_ms: f64,
    /// Phase 1 (event calendar + routing) wall time.
    pub dispatch_ms: f64,
    /// Grouped trace→tasks partition pass wall time.
    pub partition_ms: f64,
    /// Parallel per-host engine phase wall time.
    pub execute_ms: f64,
    /// Id-order aggregation + digest fold wall time.
    pub reduce_ms: f64,
    /// Engine-metered dynamic energy across the fleet.
    pub dynamic_energy: f64,
    /// Idle/sleep static energy across the fleet.
    pub static_energy: f64,
    /// Total flow across the fleet.
    pub total_flow: f64,
    /// Latest completion across hosts.
    pub makespan: f64,
    /// Jobs completed fleet-wide.
    pub completed_jobs: usize,
    /// Arrivals no host could take plus per-host admission sheds.
    pub shed_jobs: usize,
    /// Sleep transitions across hosts.
    pub sleep_transitions: usize,
    /// The fleet digest (bit-stable across re-runs).
    pub digest: u64,
}

/// The four cycling host archetypes: the heterogeneity axis of the
/// sweep (also reused verbatim by E26 so its digests cross-check
/// against this sweep's).
pub fn archetype(id: u32) -> HostConfig {
    let cube = PolyPower::CUBE;
    match id % 4 {
        0 => HostConfig::new(id, HostPower::dynamic_only(EnginePower::Poly(cube))),
        1 => {
            let ladder = DiscreteSpeeds::new(cube, vec![0.8, 1.8, 2.0]);
            let mut h = HostConfig::new(id, HostPower::with_idle(EnginePower::Ladder(ladder), 0.1));
            h.policy = HostPolicy::Qoa {
                allowance: 4.0,
                alpha: 3.0,
                q: 5.0,
            };
            h
        }
        2 => {
            let mut h = HostConfig::new(
                id,
                HostPower::with_idle(EnginePower::Poly(cube), 0.3).with_sleep(SleepConfig {
                    threshold: 2.0,
                    sleep_power: 0.05,
                    wake_energy: 1.0,
                }),
            );
            h.policy = HostPolicy::Bkp { factor: 1.3 };
            h
        }
        _ => {
            let ladder = DiscreteSpeeds::new(cube, vec![0.5, 1.0, 1.5, 2.5]);
            let mut h =
                HostConfig::new(id, HostPower::with_idle(EnginePower::Ladder(ladder), 0.05));
            h.speed_cap = Some(1.5);
            h.policy = HostPolicy::Fixed { speed: 1.2 };
            h
        }
    }
}

fn dispatch_name(d: DispatchPolicy) -> &'static str {
    match d {
        DispatchPolicy::RoundRobin => "round_robin",
        DispatchPolicy::LeastAssigned => "least_assigned",
        DispatchPolicy::WeightedFastest => "weighted_fastest",
    }
}

/// Build the sweep's workload for a given fleet size: heavy-tailed
/// (bounded-Pareto) works on Poisson arrivals, sized to roughly
/// `jobs_per_host` jobs per host over a fixed arrival window.
pub fn fleet_workload(hosts: usize, jobs_per_host: usize, seed: u64) -> Instance {
    let n = hosts * jobs_per_host;
    // Arrival window ~50 time units regardless of n, so bigger fleets
    // face proportionally denser traffic (the scaling stressor).
    generators::heavy_tailed(n, n as f64 / 50.0, 0.2, 8.0, 1.5, seed)
}

/// Run the sweep over `host_counts`, all three dispatch policies per
/// count.
pub fn fleet_scaling(
    host_counts: &[usize],
    jobs_per_host: usize,
    seed: u64,
) -> Vec<FleetScalingPoint> {
    let mut points = Vec::new();
    for &hosts in host_counts {
        assert!(hosts > 0, "host counts must be positive");
        let workload = fleet_workload(hosts, jobs_per_host, seed);
        let horizon = workload.last_release() + 50.0;
        for dispatch in [
            DispatchPolicy::RoundRobin,
            DispatchPolicy::LeastAssigned,
            DispatchPolicy::WeightedFastest,
        ] {
            let host_cfgs: Vec<HostConfig> = (0..hosts as u32).map(archetype).collect();
            let mut scenario = FleetScenario::new(host_cfgs, workload.clone(), horizon, seed);
            scenario.dispatch = dispatch;
            let t = Instant::now();
            let out = run(&scenario).expect("fleet run succeeds");
            let wall_ms = t.elapsed().as_secs_f64() * 1e3;
            points.push(FleetScalingPoint {
                hosts,
                jobs: workload.len(),
                dispatch: dispatch_name(dispatch),
                seed,
                wall_ms,
                dispatch_ms: out.timings.dispatch_ms,
                partition_ms: out.timings.partition_ms,
                execute_ms: out.timings.execute_ms,
                reduce_ms: out.timings.reduce_ms,
                dynamic_energy: out.dynamic_energy,
                static_energy: out.static_energy,
                total_flow: out.total_flow,
                makespan: out.makespan,
                completed_jobs: out.completed_jobs,
                shed_jobs: out.shed_jobs(),
                sleep_transitions: out.hosts.iter().map(|h| h.sleep_transitions).sum(),
                digest: out.digest,
            });
        }
    }
    points
}

/// The digest-level single-host equivalence check the JSON embeds: a
/// 1-host fleet (the ladder+qOA archetype, the hardest configuration)
/// must reproduce the bare engine bit-for-bit.
pub fn single_host_equivalence() -> bool {
    let workload = fleet_workload(1, 24, 7);
    let host = archetype(1);
    let mut cfgs = vec![host];
    cfgs[0].id = 0;
    let scenario = FleetScenario::new(cfgs, workload.clone(), workload.last_release() + 50.0, 7);
    let fleet = match run(&scenario) {
        Ok(out) => out,
        Err(_) => return false,
    };
    let cfg = &scenario.hosts[0];
    let ids: Vec<u32> = workload.jobs().iter().map(|j| j.id).collect();
    let plan = scenario.host_plan(cfg.id, &ids);
    let model = cfg.power.model();
    let mut policy = cfg.policy.build(model);
    match run_online_with_faults(&workload, model, policy.as_mut(), &plan) {
        Ok(bare) => fleet.hosts[0].digest == outcome_digest(&bare),
        Err(_) => false,
    }
}

/// The acceptance-tier sweep: host-count scaling through 1000+ hosts.
pub fn fleet_default() -> Vec<FleetScalingPoint> {
    fleet_scaling(&[10, 100, 400, 1000], 20, 11)
}

/// The smoke-tier sweep: seconds-scale, exercised in CI.
pub fn fleet_smoke() -> Vec<FleetScalingPoint> {
    fleet_scaling(&[4, 16], 8, 11)
}

/// Render points as the `fleet_scaling` CSV table.
pub fn fleet_table(points: &[FleetScalingPoint]) -> CsvTable {
    let mut table = CsvTable::new(
        "fleet_scaling",
        &[
            "hosts",
            "jobs",
            "dispatch",
            "seed",
            "wall_ms",
            "dispatch_ms",
            "partition_ms",
            "execute_ms",
            "reduce_ms",
            "dynamic_energy",
            "static_energy",
            "total_flow",
            "makespan",
            "completed_jobs",
            "shed_jobs",
            "sleep_transitions",
            "digest",
        ],
    );
    for p in points {
        table.push_row(vec![
            p.hosts.to_string(),
            p.jobs.to_string(),
            p.dispatch.to_string(),
            p.seed.to_string(),
            fmt(p.wall_ms),
            fmt(p.dispatch_ms),
            fmt(p.partition_ms),
            fmt(p.execute_ms),
            fmt(p.reduce_ms),
            fmt(p.dynamic_energy),
            fmt(p.static_energy),
            fmt(p.total_flow),
            fmt(p.makespan),
            p.completed_jobs.to_string(),
            p.shed_jobs.to_string(),
            p.sleep_transitions.to_string(),
            format!("{:016x}", p.digest),
        ]);
    }
    table
}

/// Render points as the `BENCH_fleet.json` document. `equivalence` is
/// the result of [`single_host_equivalence`], embedded so the perf
/// record certifies the fleet layer is still semantically transparent.
pub fn fleet_bench_json(points: &[FleetScalingPoint], equivalence: bool) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"bench\": \"fleet_scaling\",\n");
    out.push_str(
        "  \"fleet\": \"4 cycling host archetypes (cubic, ladder+qOA, idle+sleep+BKP, capped ladder) on heavy-tailed Poisson traffic\",\n",
    );
    out.push_str(
        "  \"metric\": \"wall time + fleet-level energy/flow/shed/sleep per host count and dispatch policy\",\n",
    );
    out.push_str(&format!(
        "  \"single_host_equivalence\": {equivalence},\n  \"points\": [\n"
    ));
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"hosts\": {}, \"jobs\": {}, \"dispatch\": \"{}\", \"seed\": {}, \"wall_ms\": {:.3}, \"dispatch_ms\": {:.3}, \"partition_ms\": {:.3}, \"execute_ms\": {:.3}, \"reduce_ms\": {:.3}, \"dynamic_energy\": {:.6}, \"static_energy\": {:.6}, \"total_flow\": {:.6}, \"makespan\": {:.6}, \"completed_jobs\": {}, \"shed_jobs\": {}, \"sleep_transitions\": {}, \"digest\": \"{:016x}\"}}{}\n",
            p.hosts,
            p.jobs,
            p.dispatch,
            p.seed,
            p.wall_ms,
            p.dispatch_ms,
            p.partition_ms,
            p.execute_ms,
            p.reduce_ms,
            p.dynamic_energy,
            p.static_energy,
            p.total_flow,
            p.makespan,
            p.completed_jobs,
            p.shed_jobs,
            p.sleep_transitions,
            p.digest,
            if i + 1 == points.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Produce the smoke-tier table (used by `exp-all`).
pub fn run_experiment() -> Vec<CsvTable> {
    vec![fleet_table(&fleet_smoke())]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_sweep_covers_the_matrix_and_is_deterministic() {
        let a = fleet_scaling(&[3, 6], 4, 2);
        let b = fleet_scaling(&[3, 6], 4, 2);
        // 2 host counts × 3 dispatch policies.
        assert_eq!(a.len(), 6);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.digest, y.digest, "{}x{}", x.hosts, x.dispatch);
            assert_eq!(x.dynamic_energy.to_bits(), y.dynamic_energy.to_bits());
        }
        for p in &a {
            assert!(p.dynamic_energy > 0.0, "{p:?}");
            assert!(p.static_energy > 0.0, "idle archetypes must charge, {p:?}");
            assert!(p.completed_jobs > 0, "{p:?}");
            assert!(p.makespan > 0.0, "{p:?}");
            let breakdown = p.dispatch_ms + p.partition_ms + p.execute_ms + p.reduce_ms;
            assert!(
                breakdown <= p.wall_ms + 1.0,
                "phase breakdown exceeds the wall it decomposes, {p:?}"
            );
        }
    }

    #[test]
    fn equivalence_gate_holds() {
        assert!(single_host_equivalence());
    }

    #[test]
    fn json_embeds_the_gate_and_one_object_per_point() {
        let points = fleet_scaling(&[2], 3, 1);
        let json = fleet_bench_json(&points, true);
        assert!(json.contains("\"single_host_equivalence\": true"));
        assert_eq!(json.matches("\"hosts\"").count(), points.len());
        assert!(json.ends_with("  ]\n}\n"));
        let table = fleet_table(&points);
        assert_eq!(table.rows.len(), points.len());
    }
}
