//! All experiments, one module per EXPERIMENTS.md entry.
//!
//! | Module | Experiments | Reproduces |
//! |--------|-------------|------------|
//! | [`figures`] | E1–E3 | paper Figures 1, 2, 3 |
//! | [`scaling`] | E4, E5, E19–E22 | §3 linear-time claim vs DP / MoveRight; the `BENCH_*` naive-vs-optimized sweeps (YDS, flow, multiproc, OA) |
//! | [`hardness`] | E6 | Theorem 8 witness (+ measured correction) |
//! | [`flowcurve`] | E7, E8 | §4 flow↔energy curve and Theorem-1 residuals |
//! | [`multiproc`] | E9, E10 | Theorem 10, multiprocessor makespan/flow |
//! | [`partition`] | E11 | Theorem 11 reduction, B&B vs heuristics |
//! | [`deadline_ratios`] | E12 | AVR / OA empirical competitive ratios |
//! | [`online_budget`] | E13 | §6 online policies vs offline frontier (plus the arena-engine scale sweep to n=20000 and the flat-vs-growing policy ladder, `BENCH_policies.json`) |
//! | [`discrete_levels`] | E14, E15 | §6 discrete speeds and switch overhead |
//! | [`precedence_dag`] | E16 | §2 precedence-constrained makespan heuristic vs bounds |
//! | [`temperature`] | E17 | §2 thermal objective (Bansal–Kimbrel–Pruhs model) |
//! | [`bounded_speed`] | E18 | §6 minimum/maximum speed regimes |
//! | [`faults`] | E23 | fault-rate × policy resilience sweep (`BENCH_faults.json`) |
//! | [`serve`] | E24 | serving-layer throughput / decision latency (`BENCH_serve.json`) |
//! | [`fleet`] | E25 | fleet-scaling sweep: host count × dispatch policy, heterogeneous power envelopes (`BENCH_fleet.json`) |
//! | [`fleet_par`] | E26 | thread-scaling of the parallel fleet executor: fixed scenario × worker count, digest-invariance gate (`BENCH_fleet_par.json`) |

pub mod bounded_speed;
pub mod deadline_ratios;
pub mod discrete_levels;
pub mod faults;
pub mod figures;
pub mod fleet;
pub mod fleet_par;
pub mod flowcurve;
pub mod hardness;
pub mod multiproc;
pub mod online_budget;
pub mod partition;
pub mod precedence_dag;
pub mod scaling;
pub mod serve;
pub mod temperature;

use crate::harness::CsvTable;

/// Run every experiment (used by `exp-all`).
pub fn run_all() -> Vec<CsvTable> {
    let mut tables = Vec::new();
    tables.extend(figures::run());
    tables.extend(scaling::run());
    tables.extend(hardness::run());
    tables.extend(flowcurve::run());
    tables.extend(multiproc::run());
    tables.extend(partition::run());
    tables.extend(deadline_ratios::run());
    tables.extend(online_budget::run());
    tables.extend(discrete_levels::run());
    tables.extend(precedence_dag::run());
    tables.extend(temperature::run());
    tables.extend(bounded_speed::run());
    tables.extend(faults::run());
    tables.extend(serve::run());
    tables.extend(fleet::run_experiment());
    tables.extend(fleet_par::run_experiment());
    tables
}
