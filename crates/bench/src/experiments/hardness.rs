//! E6: the Theorem-8 witness, measured.
//!
//! Three tables:
//! * `hardness_witness` — the solver's solution at the *verified* budget
//!   (inside the measured boundary window), its equation residuals, and
//!   the distance of σ2 from the degree-12 polynomial's root: the
//!   residuals shrink with the solver tolerance, the "arbitrarily good
//!   but never exact" phenomenon.
//! * `hardness_tolerance_sweep` — root distance vs solver tolerance.
//! * `hardness_paper_budget` — what actually happens at the paper's
//!   `E = 9` (the measured correction: optimum is the radical 3:2:1
//!   push configuration; the boundary critical point has larger flow).

use crate::harness::{fmt, CsvTable};
use pas_core::flow::hardness;

/// Produce the witness tables.
pub fn run() -> Vec<CsvTable> {
    let mut witness = CsvTable::new("hardness_witness", &["quantity", "value"]);
    let report = hardness::verify_witness(1e-12).expect("witness solvable");
    let (lo, hi) = hardness::measured_boundary_window();
    witness.push_row(vec!["verified_budget".into(), fmt(report.budget)]);
    witness.push_row(vec!["measured_window_lo".into(), fmt(lo)]);
    witness.push_row(vec!["measured_window_hi".into(), fmt(hi)]);
    witness.push_row(vec!["paper_window_lo".into(), "8.43 (paper approx)".into()]);
    witness.push_row(vec![
        "paper_window_hi".into(),
        "11.54 (paper approx)".into(),
    ]);
    witness.push_row(vec!["sigma1".into(), fmt(report.solution.speeds[0])]);
    witness.push_row(vec!["sigma2".into(), fmt(report.solution.speeds[1])]);
    witness.push_row(vec!["sigma3".into(), fmt(report.solution.speeds[2])]);
    witness.push_row(vec![
        "C2_minus_1".into(),
        fmt(report.solution.completions[1] - 1.0),
    ]);
    for (k, r) in report.equation_residuals.iter().enumerate() {
        witness.push_row(vec![format!("eq{}_residual", k + 1), fmt(*r)]);
    }
    witness.push_row(vec!["nearest_root".into(), fmt(report.nearest_root)]);
    witness.push_row(vec!["root_distance".into(), fmt(report.root_distance)]);

    let mut sweep = CsvTable::new(
        "hardness_tolerance_sweep",
        &["solver_tol", "root_distance", "flow"],
    );
    for &tol in &[1e-3, 1e-5, 1e-7, 1e-9, 1e-11, 1e-13] {
        let r = hardness::verify_witness(tol).expect("witness solvable");
        sweep.push_row(vec![
            format!("{tol:e}"),
            fmt(r.root_distance),
            fmt(r.solution.total_flow),
        ]);
    }

    let mut paper = CsvTable::new("hardness_paper_budget", &["quantity", "value"]);
    let pr = hardness::paper_budget_report(1e-12).expect("solvable");
    paper.push_row(vec!["budget".into(), fmt(hardness::PAPER_BUDGET)]);
    paper.push_row(vec!["optimal_signature".into(), pr.signature.clone()]);
    paper.push_row(vec![
        "cube_ratios".into(),
        format!(
            "{}:{}:{}",
            fmt(pr.cube_ratios[0]),
            fmt(pr.cube_ratios[1]),
            fmt(pr.cube_ratios[2])
        ),
    ]);
    paper.push_row(vec!["optimal_flow".into(), fmt(pr.optimal_flow)]);
    paper.push_row(vec![
        "boundary_critical_point_flow".into(),
        pr.boundary_flow.map(fmt).unwrap_or_default(),
    ]);

    vec![witness, sweep, paper]
}

#[cfg(test)]
mod tests {
    #[test]
    fn witness_tables_build() {
        let tables = super::run();
        assert_eq!(tables.len(), 3);
        assert!(tables[1].rows.len() == 6);
    }
}
