//! E16: precedence-constrained makespan (the §2 Pruhs–van Stee–
//! Uthaisombut setting, heuristic + lower bounds).
//!
//! For each DAG family and machine count: the uniform-speed
//! power-equality heuristic's makespan against the two energy-parametric
//! lower bounds. Shapes to check: chains are solved exactly (critical
//! path binds); independent sets sit within Graham's `2 − 1/m` of the
//! aggregate bound; layered DAGs fall in between.

use crate::harness::{fmt, CsvTable};
use pas_core::precedence::{lower_bounds, uniform_speed_schedule, DagInstance};
use pas_power::PolyPower;

/// Produce the precedence table.
pub fn run() -> Vec<CsvTable> {
    let model = PolyPower::CUBE;
    let mut table = CsvTable::new(
        "precedence_heuristic_vs_bounds",
        &[
            "dag",
            "n",
            "machines",
            "heuristic_makespan",
            "lb_aggregate",
            "lb_critical_path",
            "ratio_to_best_lb",
        ],
    );
    let cases: Vec<(String, DagInstance)> = vec![
        (
            "chain".into(),
            DagInstance::chain((1..=8).map(|k| 0.5 + 0.25 * k as f64).collect()).expect("valid"),
        ),
        (
            "independent".into(),
            DagInstance::independent((1..=12).map(|k| 0.3 + (k as f64 * 0.61) % 2.0).collect())
                .expect("valid"),
        ),
        (
            "layered_sparse".into(),
            DagInstance::random_layered(4, 4, 0.3, (0.5, 2.0), 7),
        ),
        (
            "layered_dense".into(),
            DagInstance::random_layered(4, 4, 0.9, (0.5, 2.0), 7),
        ),
    ];
    for (name, dag) in &cases {
        let budget = 2.0 * dag.total_work();
        for &m in &[1usize, 2, 4] {
            let sol = uniform_speed_schedule(dag, &model, m, budget).expect("solvable");
            dag.validate_precedence(&sol.schedule, 1e-9)
                .expect("heuristic respects precedence");
            let lb = lower_bounds(dag, &model, m, budget).expect("solvable");
            table.push_row(vec![
                name.clone(),
                dag.len().to_string(),
                m.to_string(),
                fmt(sol.makespan),
                fmt(lb.aggregate),
                fmt(lb.critical_path),
                fmt(sol.makespan / lb.best()),
            ]);
        }
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    #[test]
    fn ratios_are_sane() {
        let tables = super::run();
        for row in &tables[0].rows {
            let ratio: f64 = row[6].parse().unwrap();
            let m: f64 = row[2].parse().unwrap();
            assert!(ratio >= 1.0 - 1e-9, "{row:?}");
            // Uniform-speed Graham is within (2 - 1/m) of the same-speed
            // bound; against the stronger of the two LBs we allow the
            // same factor.
            assert!(ratio <= 2.0 - 1.0 / m + 1e-6, "{row:?}");
        }
    }
}
