//! E14/E15: discrete speed ladders and switching overhead (§6).
//!
//! E14 rounds the continuous optimum of a random instance onto uniform
//! ladders of increasing size and records the energy overhead — the
//! shape: overhead ≥ 1, monotonically shrinking toward 1 (quadratically
//! in the level spacing, by convexity). The Athlon-64 three-level table
//! from the paper's introduction is included. E15 sweeps the per-switch
//! stall δ and reports makespan inflation for the continuous and
//! emulated schedules.

use crate::harness::{fmt, CsvTable};
use pas_core::discrete::emulate;
use pas_core::makespan;
use pas_power::{DiscreteSpeeds, PolyPower};
use pas_sim::metrics;
use pas_workload::generators;

/// Produce the ladder-overhead and switch-overhead tables.
pub fn run() -> Vec<CsvTable> {
    let model = PolyPower::CUBE;
    let instance = generators::uniform(20, 20.0, (0.5, 2.0), 11);
    let budget = 2.0 * instance.total_work();
    let blocks = makespan::laptop(&instance, &model, budget).expect("solvable");
    let continuous = blocks.to_schedule(&instance);
    let max_speed = blocks
        .blocks()
        .iter()
        .map(|b| b.speed)
        .fold(0.0f64, f64::max);

    let mut levels = CsvTable::new(
        "discrete_level_overhead",
        &["levels", "energy_overhead", "switches", "timing_exact"],
    );
    for &k in &[2usize, 3, 4, 6, 8, 12, 16, 24, 32, 64, 128] {
        let ladder = DiscreteSpeeds::uniform(model, k, max_speed * 1.05);
        let report = emulate(&continuous, &ladder).expect("emulation runs");
        levels.push_row(vec![
            k.to_string(),
            fmt(report.overhead),
            report.switches.to_string(),
            report.timing_exact.to_string(),
        ]);
    }

    // The paper's Athlon 64 table, on an instance scaled to its range.
    let mut athlon = CsvTable::new(
        "discrete_athlon64",
        &["ladder", "energy_overhead", "timing_exact"],
    );
    let small = pas_workload::Instance::from_pairs(&[(0.0, 5.0), (5.0, 2.0), (6.0, 1.0)])
        .expect("paper instance");
    let paper_blocks = makespan::laptop(&small, &model, 14.0).expect("solvable");
    let ladder = DiscreteSpeeds::new(model, pas_power::discrete::ATHLON64_GHZ.to_vec());
    let report = emulate(&paper_blocks.to_schedule(&small), &ladder).expect("runs");
    athlon.push_row(vec![
        "athlon64 [0.8; 1.8; 2.0] GHz".into(),
        fmt(report.overhead),
        report.timing_exact.to_string(),
    ]);

    // E15: switch overhead sweep on continuous vs 4-level emulation.
    let mut switches = CsvTable::new(
        "switch_overhead_sweep",
        &[
            "delta",
            "continuous_makespan",
            "emulated_makespan",
            "continuous_switches",
            "emulated_switches",
        ],
    );
    let ladder4 = DiscreteSpeeds::uniform(model, 4, max_speed * 1.05);
    let emu = emulate(&continuous, &ladder4).expect("runs");
    for &delta in &[0.0, 0.01, 0.05, 0.1, 0.25] {
        switches.push_row(vec![
            fmt(delta),
            fmt(metrics::makespan_with_switch_overhead(
                &continuous,
                delta,
                1e-9,
            )),
            fmt(metrics::makespan_with_switch_overhead(
                &emu.schedule,
                delta,
                1e-9,
            )),
            metrics::switch_count(&continuous, 1e-9).to_string(),
            metrics::switch_count(&emu.schedule, 1e-9).to_string(),
        ]);
    }

    vec![levels, athlon, switches]
}

#[cfg(test)]
mod tests {
    #[test]
    fn overhead_monotone_toward_one() {
        // Convexity only guarantees monotone overhead along *nested*
        // ladders; uniform(k) ⊆ uniform(2k), so check the doubling
        // subsequence (k=3 vs k=4, say, can go either way by a hair).
        let tables = super::run();
        let mut prev = f64::INFINITY;
        let mut last = f64::INFINITY;
        for row in &tables[0].rows {
            let k: usize = row[0].parse().unwrap();
            let overhead: f64 = row[1].parse().unwrap();
            assert!(overhead >= 1.0 - 1e-9, "{row:?}");
            if k.is_power_of_two() {
                assert!(overhead <= prev + 1e-9, "{row:?}");
                prev = overhead;
            }
            last = overhead;
        }
        assert!(last < 1.01, "128 levels should be near-continuous: {last}");
    }
}
