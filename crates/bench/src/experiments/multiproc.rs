//! E9/E10: multiprocessor equal-work scheduling.
//!
//! E9 verifies Theorem 10 by brute force on small instances (cyclic
//! assignment never loses) and shows makespan scaling with the fleet
//! size. E10 does the same for total flow and records the shared-`u`
//! structure (Observation 2).

use crate::harness::{fmt, CsvTable};
use pas_core::multi::cyclic::all_assignments;
use pas_core::multi::{flow, makespan};
use pas_power::PolyPower;
use pas_workload::{generators, Instance};

/// Produce the multiprocessor tables.
pub fn run() -> Vec<CsvTable> {
    let model = PolyPower::CUBE;

    // E9a: brute-force optimality of the cyclic assignment.
    let mut brute = CsvTable::new(
        "multi_cyclic_vs_bruteforce",
        &["releases", "metric", "cyclic", "best_of_all", "gap"],
    );
    for releases in [
        vec![0.0, 0.0, 0.0, 0.0],
        vec![0.0, 0.5, 1.0, 1.5],
        vec![0.0, 0.1, 2.0, 2.1, 2.2],
    ] {
        let inst = Instance::equal_work(&releases, 1.0).expect("valid");
        let budget = 2.0 * inst.total_work();
        let cyc = makespan::laptop(&inst, &model, 2, budget, 1e-11).expect("solvable");
        let mut best = f64::INFINITY;
        for a in all_assignments(inst.len(), 2) {
            if let Ok(sol) = makespan::laptop_with_assignment(&inst, &model, &a, budget, 1e-11) {
                best = best.min(sol.makespan);
            }
        }
        brute.push_row(vec![
            format!("{releases:?}").replace(',', ";"),
            "makespan".into(),
            fmt(cyc.makespan),
            fmt(best),
            fmt(cyc.makespan - best),
        ]);
        let cyc_f = flow::laptop(&inst, 3.0, 2, budget, 1e-10).expect("solvable");
        let mut best_f = f64::INFINITY;
        for a in all_assignments(inst.len(), 2) {
            if let Ok(sol) = flow::laptop_with_assignment(&inst, 3.0, &a, budget, 1e-10) {
                best_f = best_f.min(sol.total_flow);
            }
        }
        brute.push_row(vec![
            format!("{releases:?}").replace(',', ";"),
            "total_flow".into(),
            fmt(cyc_f.total_flow),
            fmt(best_f),
            fmt(cyc_f.total_flow - best_f),
        ]);
    }

    // E9b/E10: fleet-size scaling on a bursty workload.
    let raw = generators::bursty(3, 8, 5.0, 1.0, (1.0, 1.0), 42);
    let releases: Vec<f64> = raw.jobs().iter().map(|j| j.release).collect();
    let inst = Instance::equal_work(&releases, 1.0).expect("valid");
    let budget = 40.0;
    let mut fleet = CsvTable::new(
        "multi_fleet_scaling",
        &["machines", "makespan", "total_flow", "shared_u"],
    );
    for m in [1usize, 2, 3, 4, 6, 8] {
        let mk = makespan::laptop(&inst, &model, m, budget, 1e-10).expect("solvable");
        let fl = flow::laptop(&inst, 3.0, m, budget, 1e-10).expect("solvable");
        fleet.push_row(vec![
            m.to_string(),
            fmt(mk.makespan),
            fmt(fl.total_flow),
            fmt(fl.u),
        ]);
    }

    vec![brute, fleet]
}

#[cfg(test)]
mod tests {
    #[test]
    fn cyclic_never_loses_in_tables() {
        let tables = super::run();
        for row in &tables[0].rows {
            let gap: f64 = row[4].parse().unwrap();
            assert!(gap < 1e-5, "cyclic lost: {row:?}");
        }
    }
}
