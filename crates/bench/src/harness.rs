//! Shared experiment utilities: CSV tables, timing, parallel sweeps.

use std::fmt::Write as _;
use std::path::Path;
use std::sync::Mutex;
use std::time::Instant;

/// A named CSV table produced by an experiment.
#[derive(Debug, Clone)]
pub struct CsvTable {
    /// File stem (e.g. `fig1_energy_makespan`).
    pub name: String,
    /// Column names.
    pub header: Vec<String>,
    /// Data rows (already formatted).
    pub rows: Vec<Vec<String>>,
}

impl CsvTable {
    /// Create an empty table.
    pub fn new(name: &str, header: &[&str]) -> Self {
        CsvTable {
            name: name.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row of formatted cells.
    pub fn push_row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.header.len());
        self.rows.push(cells);
    }

    /// Render as CSV text.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.header.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }

    /// Write to `dir/<name>.csv`.
    ///
    /// # Errors
    /// I/O errors from create/write.
    pub fn write_to(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join(format!("{}.csv", self.name)), self.to_csv())
    }

    /// Print to stdout with a `# name` banner.
    pub fn print(&self) {
        println!("# {}", self.name);
        print!("{}", self.to_csv());
    }
}

/// Format an f64 with enough digits for reproduction comparisons.
pub fn fmt(x: f64) -> String {
    format!("{x:.9}")
}

/// Wall-clock one closure, returning (result, seconds). Runs it
/// `repeats` times and reports the minimum (robust to scheduler noise).
pub fn time_min<T>(repeats: usize, mut f: impl FnMut() -> T) -> (T, f64) {
    assert!(repeats >= 1);
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..repeats {
        let t0 = Instant::now();
        let value = f();
        best = best.min(t0.elapsed().as_secs_f64());
        out = Some(value);
    }
    (out.expect("repeats >= 1"), best)
}

/// Run `tasks` across scoped threads (one per task, which is fine for
/// the handful of coarse sweep points the experiments use) and collect
/// results in input order.
pub fn parallel_sweep<T: Send, I: Send + Sync>(
    inputs: &[I],
    f: impl Fn(&I) -> T + Send + Sync,
) -> Vec<T> {
    let results: Mutex<Vec<Option<T>>> = Mutex::new((0..inputs.len()).map(|_| None).collect());
    std::thread::scope(|scope| {
        for (k, input) in inputs.iter().enumerate() {
            let results = &results;
            let f = &f;
            scope.spawn(move || {
                let value = f(input);
                results.lock().expect("sweep threads do not panic")[k] = Some(value);
            });
        }
    });
    results
        .into_inner()
        .expect("sweep threads do not panic")
        .into_iter()
        .map(|v| v.expect("every task completed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_rendering() {
        let mut t = CsvTable::new("demo", &["a", "b"]);
        t.push_row(vec!["1".into(), "2".into()]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }

    #[test]
    fn timing_returns_value() {
        let (v, secs) = time_min(3, || 41 + 1);
        assert_eq!(v, 42);
        assert!(secs >= 0.0);
    }

    #[test]
    fn sweep_preserves_order() {
        let inputs: Vec<u64> = (0..16).collect();
        let out = parallel_sweep(&inputs, |&x| x * x);
        assert_eq!(out, inputs.iter().map(|x| x * x).collect::<Vec<_>>());
    }
}
