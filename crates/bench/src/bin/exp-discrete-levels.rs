//! Print the `discrete_levels` experiment tables as CSV to stdout.
fn main() {
    for table in pas_bench::experiments::discrete_levels::run() {
        table.print();
        println!();
    }
}
