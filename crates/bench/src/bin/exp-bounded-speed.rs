//! Print the `bounded_speed` experiment tables as CSV to stdout.
fn main() {
    for table in pas_bench::experiments::bounded_speed::run() {
        table.print();
        println!();
    }
}
