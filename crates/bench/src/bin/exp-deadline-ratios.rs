//! Print the `deadline_ratios` experiment tables as CSV to stdout.
fn main() {
    for table in pas_bench::experiments::deadline_ratios::run() {
        table.print();
        println!();
    }
}
