//! Print the `figures` experiment tables as CSV to stdout.
fn main() {
    for table in pas_bench::experiments::figures::run() {
        table.print();
        println!();
    }
}
