//! Print the `flowcurve` experiment tables as CSV to stdout.
fn main() {
    for table in pas_bench::experiments::flowcurve::run() {
        table.print();
        println!();
    }
}
