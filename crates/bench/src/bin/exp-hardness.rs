//! Print the `hardness` experiment tables as CSV to stdout.
fn main() {
    for table in pas_bench::experiments::hardness::run() {
        table.print();
        println!();
    }
}
