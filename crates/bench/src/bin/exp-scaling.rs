//! Print the `scaling` experiment tables as CSV to stdout.
//!
//! Modes:
//! * no args — the E4/E5 makespan-solver sweep plus quick E19 (YDS),
//!   E20 (flow), E21 (multiproc partition), and E22 (OA) sweeps with
//!   the references capped so the run stays fast;
//! * `--bench-json [DIR]` — the acceptance sweeps written as per-path
//!   bench files `DIR/BENCH_yds.json`, `DIR/BENCH_flow.json`,
//!   `DIR/BENCH_multi.json`, `DIR/BENCH_oa.json`,
//!   `DIR/BENCH_faults.json`, `DIR/BENCH_serve.json`,
//!   `DIR/BENCH_policies.json`, `DIR/BENCH_fleet.json`, and
//!   `DIR/BENCH_fleet_par.json` (default `.`), the perf-trajectory
//!   records successive PRs compare against.
//!   Expect tens of minutes: the YDS reference is `O(n⁴)` through
//!   n=2000, the flow reference curve is ~120 cold bisection solves of
//!   an `O(iters·n)` engine at n=1000, and the multiproc reference is
//!   an exponential branch and bound measured through the n=30/m=8
//!   witness — that cost is the point. (The OA sweep is the cheap one:
//!   its reference is `O(n·D log n)`, measured through n=20000.);
//! * `--bench-json --smoke [DIR]` — the same files from a seconds-scale
//!   tier (small sizes, capped references), exercised in CI so the bench
//!   plumbing can never rot;
//! * `--only yds` / `--only flow` / `--only multi` / `--only oa` /
//!   `--only faults` / `--only serve` / `--only policies` /
//!   `--only fleet` / `--only fleet-par` — restrict either mode to one
//!   path (the other `BENCH_*.json` files are left untouched).
use pas_bench::experiments::{faults, fleet, fleet_par, online_budget, scaling, serve};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let only = args
        .iter()
        .position(|a| a == "--only")
        .and_then(|p| args.get(p + 1))
        .cloned();
    if let Some(o) = only.as_deref() {
        if ![
            "yds",
            "flow",
            "multi",
            "oa",
            "faults",
            "serve",
            "policies",
            "fleet",
            "fleet-par",
        ]
        .contains(&o)
        {
            eprintln!(
                "--only takes `yds`, `flow`, `multi`, `oa`, `faults`, `serve`, `policies`, `fleet`, or `fleet-par`, got `{o}`"
            );
            std::process::exit(2);
        }
    }
    let run_yds = only.as_deref().is_none_or(|o| o == "yds");
    let run_flow = only.as_deref().is_none_or(|o| o == "flow");
    let run_multi = only.as_deref().is_none_or(|o| o == "multi");
    let run_oa = only.as_deref().is_none_or(|o| o == "oa");
    let run_faults = only.as_deref().is_none_or(|o| o == "faults");
    let run_serve = only.as_deref().is_none_or(|o| o == "serve");
    let run_policies = only.as_deref().is_none_or(|o| o == "policies");
    let run_fleet = only.as_deref().is_none_or(|o| o == "fleet");
    let run_fleet_par = only.as_deref().is_none_or(|o| o == "fleet-par");

    if let Some(pos) = args.iter().position(|a| a == "--bench-json") {
        let dir = args
            .get(pos + 1)
            .map(String::as_str)
            .filter(|a| !a.starts_with("--"))
            .unwrap_or(".");
        if run_yds {
            let points = if smoke {
                scaling::yds_scaling(&[64, 128], 128)
            } else {
                scaling::yds_scaling_default()
            };
            scaling::yds_table(&points).print();
            let path = format!("{dir}/BENCH_yds.json");
            std::fs::write(&path, scaling::yds_bench_json(&points)).expect("write BENCH json");
            eprintln!("wrote {path}");
        }
        if run_flow {
            let points = if smoke {
                scaling::flow_scaling_smoke()
            } else {
                scaling::flow_scaling_default()
            };
            scaling::flow_table(&points).print();
            let path = format!("{dir}/BENCH_flow.json");
            std::fs::write(&path, scaling::flow_bench_json(&points)).expect("write BENCH json");
            eprintln!("wrote {path}");
        }
        if run_multi {
            let points = if smoke {
                scaling::multi_scaling_smoke()
            } else {
                scaling::multi_scaling_default()
            };
            scaling::multi_table(&points).print();
            let path = format!("{dir}/BENCH_multi.json");
            std::fs::write(&path, scaling::multi_bench_json(&points)).expect("write BENCH json");
            eprintln!("wrote {path}");
        }
        if run_oa {
            let points = if smoke {
                scaling::oa_scaling_smoke()
            } else {
                scaling::oa_scaling_default()
            };
            scaling::oa_table(&points).print();
            let path = format!("{dir}/BENCH_oa.json");
            std::fs::write(&path, scaling::oa_bench_json(&points)).expect("write BENCH json");
            eprintln!("wrote {path}");
        }
        if run_faults {
            let points = if smoke {
                faults::faults_smoke()
            } else {
                faults::faults_default()
            };
            faults::faults_table(&points).print();
            let path = format!("{dir}/BENCH_faults.json");
            std::fs::write(&path, faults::faults_bench_json(&points)).expect("write BENCH json");
            eprintln!("wrote {path}");
        }
        if run_serve {
            let points = if smoke {
                serve::serve_smoke()
            } else {
                serve::serve_default()
            };
            serve::serve_table(&points).print();
            let path = format!("{dir}/BENCH_serve.json");
            std::fs::write(&path, serve::serve_bench_json(&points)).expect("write BENCH json");
            eprintln!("wrote {path}");
        }
        if run_policies {
            let points = if smoke {
                online_budget::policies_smoke()
            } else {
                online_budget::policies_default()
            };
            online_budget::policies_table(&points).print();
            let path = format!("{dir}/BENCH_policies.json");
            std::fs::write(&path, online_budget::policies_bench_json(&points))
                .expect("write BENCH json");
            eprintln!("wrote {path}");
        }
        if run_fleet {
            let points = if smoke {
                fleet::fleet_smoke()
            } else {
                fleet::fleet_default()
            };
            let equivalence = fleet::single_host_equivalence();
            fleet::fleet_table(&points).print();
            let path = format!("{dir}/BENCH_fleet.json");
            std::fs::write(&path, fleet::fleet_bench_json(&points, equivalence))
                .expect("write BENCH json");
            eprintln!("wrote {path}");
        }
        if run_fleet_par {
            let (points, seed) = if smoke {
                (fleet_par::fleet_par_smoke(), 11)
            } else {
                (fleet_par::fleet_par_default(), 11)
            };
            fleet_par::fleet_par_table(&points).print();
            let path = format!("{dir}/BENCH_fleet_par.json");
            std::fs::write(&path, fleet_par::fleet_par_bench_json(&points, seed))
                .expect("write BENCH json");
            eprintln!("wrote {path}");
        }
        return;
    }
    for table in scaling::run() {
        table.print();
        println!();
    }
    if run_yds {
        let points = scaling::yds_scaling(&[64, 128, 256, 512, 1024], 512);
        scaling::yds_table(&points).print();
        println!();
    }
    if run_flow {
        let points = scaling::flow_scaling(&[64, 256, 1024], 40, 256);
        scaling::flow_table(&points).print();
        println!();
    }
    if run_multi {
        let points = scaling::multi_scaling_smoke();
        scaling::multi_table(&points).print();
        println!();
    }
    if run_oa {
        let points = scaling::oa_scaling(&[256, 1_024, 4_096], 4_096);
        scaling::oa_table(&points).print();
        println!();
    }
    if run_faults {
        let points = faults::faults_smoke();
        faults::faults_table(&points).print();
        println!();
    }
    if run_fleet {
        let points = fleet::fleet_smoke();
        fleet::fleet_table(&points).print();
        println!();
    }
    if run_fleet_par {
        let points = fleet_par::fleet_par_smoke();
        fleet_par::fleet_par_table(&points).print();
        println!();
    }
    if run_serve {
        let points = serve::serve_smoke();
        serve::serve_table(&points).print();
        println!();
    }
    if run_policies {
        let points = online_budget::policies_smoke();
        online_budget::policies_table(&points).print();
    }
}
