//! Print the `scaling` experiment tables as CSV to stdout.
fn main() {
    for table in pas_bench::experiments::scaling::run() {
        table.print();
        println!();
    }
}
