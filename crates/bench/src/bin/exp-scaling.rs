//! Print the `scaling` experiment tables as CSV to stdout.
//!
//! Modes:
//! * no args — the E4/E5 makespan-solver sweep plus a quick E19
//!   (YDS naive-vs-optimized) sweep with the `O(n⁴)` reference capped at
//!   n=512 so the run stays fast;
//! * `--bench-json [PATH]` — the full E19 acceptance sweep (reference
//!   measured through n=2000; expect several minutes) written as JSON to
//!   `PATH` (default `BENCH_yds.json`), the perf-trajectory record
//!   successive PRs compare against.
fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(pos) = args.iter().position(|a| a == "--bench-json") {
        let path = args
            .get(pos + 1)
            .map(String::as_str)
            .unwrap_or("BENCH_yds.json");
        let points = pas_bench::experiments::scaling::yds_scaling_default();
        pas_bench::experiments::scaling::yds_table(&points).print();
        let json = pas_bench::experiments::scaling::yds_bench_json(&points);
        std::fs::write(path, &json).expect("write BENCH json");
        eprintln!("wrote {path}");
        return;
    }
    for table in pas_bench::experiments::scaling::run() {
        table.print();
        println!();
    }
    let points = pas_bench::experiments::scaling::yds_scaling(&[64, 128, 256, 512, 1024], 512);
    pas_bench::experiments::scaling::yds_table(&points).print();
}
