//! Print the `temperature` experiment tables as CSV to stdout.
fn main() {
    for table in pas_bench::experiments::temperature::run() {
        table.print();
        println!();
    }
}
