//! Print the `multiproc` experiment tables as CSV to stdout.
fn main() {
    for table in pas_bench::experiments::multiproc::run() {
        table.print();
        println!();
    }
}
