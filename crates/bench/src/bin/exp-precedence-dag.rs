//! Print the `precedence_dag` experiment tables as CSV to stdout.
fn main() {
    for table in pas_bench::experiments::precedence_dag::run() {
        table.print();
        println!();
    }
}
