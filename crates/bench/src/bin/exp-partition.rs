//! Print the `partition` experiment tables as CSV to stdout.
fn main() {
    for table in pas_bench::experiments::partition::run() {
        table.print();
        println!();
    }
}
