//! Regenerate every experiment table under `results/`.
use std::path::Path;

fn main() {
    let dir = Path::new("results");
    let tables = pas_bench::experiments::run_all();
    for table in &tables {
        table.write_to(dir).expect("write CSV");
        println!(
            "wrote results/{}.csv ({} rows)",
            table.name,
            table.rows.len()
        );
    }
    println!("{} tables total", tables.len());
}
