//! Print the `online_budget` experiment tables as CSV to stdout.
fn main() {
    for table in pas_bench::experiments::online_budget::run() {
        table.print();
        println!();
    }
}
