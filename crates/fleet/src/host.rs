//! Host actors: per-machine engine configuration for the fleet.
//!
//! A host couples a power model (continuous `σ^α`, or a
//! [`DiscreteSpeeds`] frequency ladder, each optionally wrapped in a
//! [`HostPower`] idle/sleep envelope), an online policy, an optional
//! hard speed cap, an availability window, and optional admission
//! control. The fleet dispatcher routes arrivals *to* hosts; each host
//! then runs the ordinary `pas_sim` single-machine engine over its
//! assigned jobs — the fleet layer adds no second scheduler, so every
//! per-machine invariant (and its test suite) carries over verbatim.

use pas_core::online::{Bkp, Qoa};
use pas_power::{DiscreteSpeeds, HostPower, PolyPower, PowerError, PowerModel};
use pas_sim::online::{AdmissionConfig, Decision, OnlinePolicy, ReadyView};

/// The power models a fleet host can run: the closed-form polynomial
/// family, or a discrete frequency ladder over it (the two-level
/// emulation curve). An enum rather than a trait object so host
/// configurations stay `Clone + PartialEq`-comparable and serializable
/// by hand.
#[derive(Debug, Clone)]
pub enum EnginePower {
    /// Continuous `c·σ^α`.
    Poly(PolyPower),
    /// A [`DiscreteSpeeds`] ladder over a polynomial base.
    Ladder(DiscreteSpeeds<PolyPower>),
}

impl PowerModel for EnginePower {
    fn power(&self, speed: f64) -> f64 {
        match self {
            EnginePower::Poly(m) => m.power(speed),
            EnginePower::Ladder(m) => m.power(speed),
        }
    }
    fn name(&self) -> String {
        match self {
            EnginePower::Poly(m) => m.name(),
            EnginePower::Ladder(m) => m.name(),
        }
    }
    fn energy_per_work(&self, speed: f64) -> f64 {
        match self {
            EnginePower::Poly(m) => m.energy_per_work(speed),
            EnginePower::Ladder(m) => m.energy_per_work(speed),
        }
    }
    fn energy(&self, work: f64, speed: f64) -> f64 {
        match self {
            EnginePower::Poly(m) => m.energy(work, speed),
            EnginePower::Ladder(m) => m.energy(work, speed),
        }
    }
    fn speed_for_energy_per_work(&self, e: f64) -> Result<f64, PowerError> {
        match self {
            EnginePower::Poly(m) => m.speed_for_energy_per_work(e),
            EnginePower::Ladder(m) => m.speed_for_energy_per_work(e),
        }
    }
    fn power_derivative(&self, speed: f64) -> f64 {
        match self {
            EnginePower::Poly(m) => m.power_derivative(speed),
            EnginePower::Ladder(m) => m.power_derivative(speed),
        }
    }
    fn power_second_derivative(&self, speed: f64) -> f64 {
        match self {
            EnginePower::Poly(m) => m.power_second_derivative(speed),
            EnginePower::Ladder(m) => m.power_second_derivative(speed),
        }
    }
    fn speed_for_block(&self, work: f64, budget: f64) -> Result<f64, PowerError> {
        match self {
            EnginePower::Poly(m) => m.speed_for_block(work, budget),
            EnginePower::Ladder(m) => m.speed_for_block(work, budget),
        }
    }
}

impl EnginePower {
    /// A nominal "how fast is this host" rating for weighted dispatch:
    /// the ladder's top level, or `1.0` for the unbounded continuous
    /// family.
    pub fn speed_rating(&self) -> f64 {
        match self {
            EnginePower::Poly(_) => 1.0,
            EnginePower::Ladder(d) => d.max_speed(),
        }
    }
}

/// Run the earliest-admitted ready job at one fixed speed — the
/// simplest well-defined host policy, and the one whose fleet energy is
/// hand-computable (the 3-host golden oracle in
/// `tests/fleet_equivalence.rs` uses it).
#[derive(Debug, Clone)]
pub struct FixedSpeed {
    speed: f64,
}

impl FixedSpeed {
    /// Always run at `speed`.
    ///
    /// # Panics
    /// If `speed` is non-finite or non-positive.
    pub fn new(speed: f64) -> Self {
        assert!(
            speed.is_finite() && speed > 0.0,
            "fixed speed must be finite and positive: {speed}"
        );
        FixedSpeed { speed }
    }
}

impl OnlinePolicy for FixedSpeed {
    fn decide(&mut self, _now: f64, ready: &dyn ReadyView, _energy_spent: f64) -> Option<Decision> {
        let first = ready.first()?;
        Some(Decision {
            job: first.id,
            speed: self.speed,
            recheck_after: None,
        })
    }

    fn save_state(&self) -> Option<Vec<f64>> {
        Some(vec![]) // stateless: the speed is configuration, not state
    }

    fn load_state(&mut self, state: &[f64]) -> bool {
        state.is_empty()
    }

    fn name(&self) -> String {
        format!("fixed({})", self.speed)
    }
}

/// Which online policy a host runs, as configuration data (so host
/// configs stay cloneable and the replay path can rebuild a *fresh*
/// policy bit-identically for every run).
#[derive(Debug, Clone, PartialEq)]
pub enum HostPolicy {
    /// [`FixedSpeed`] at the given speed.
    Fixed {
        /// The constant speed.
        speed: f64,
    },
    /// `pas_core::online::Qoa` (budget-paced qOA).
    Qoa {
        /// Per-work energy allowance.
        allowance: f64,
        /// Power-law exponent the speed rule assumes.
        alpha: f64,
        /// Aggressiveness parameter (`q ≈ 2α − 1` in the literature).
        q: f64,
    },
    /// `pas_core::online::Bkp` (density-scaled, budget-free).
    Bkp {
        /// Density multiplier.
        factor: f64,
    },
}

impl HostPolicy {
    /// Instantiate a fresh policy instance for one engine run.
    pub fn build(&self, model: &EnginePower) -> Box<dyn OnlinePolicy> {
        match self {
            HostPolicy::Fixed { speed } => Box::new(FixedSpeed::new(*speed)),
            HostPolicy::Qoa {
                allowance,
                alpha,
                q,
            } => Box::new(Qoa::new(model.clone(), *allowance, *alpha, *q)),
            HostPolicy::Bkp { factor } => Box::new(Bkp::new(*factor)),
        }
    }
}

/// One host's full configuration.
#[derive(Debug, Clone)]
pub struct HostConfig {
    /// Unique host id (routing key; also the per-host fault-seed input).
    pub id: u32,
    /// Power envelope: dynamic model plus idle/sleep floors.
    pub power: HostPower<EnginePower>,
    /// The online policy this host runs.
    pub policy: HostPolicy,
    /// Hard per-host speed cap, enforced as a full-horizon throttle in
    /// the host's fault plan (clamps are counted in the resilience
    /// report, exactly like transient throttles).
    pub speed_cap: Option<f64>,
    /// When the host joins the fleet (0 = from the start).
    pub available_from: f64,
    /// Optional bounded admission queue (shedding is per-host and
    /// aggregates into the fleet totals).
    pub admission: Option<AdmissionConfig>,
}

impl HostConfig {
    /// A host with the given id and power envelope, a [`FixedSpeed`]
    /// policy at speed 1, no cap, available from t = 0, no admission
    /// bound. Adjust fields directly for anything fancier.
    pub fn new(id: u32, power: HostPower<EnginePower>) -> Self {
        HostConfig {
            id,
            power,
            policy: HostPolicy::Fixed { speed: 1.0 },
            speed_cap: None,
            available_from: 0.0,
            admission: None,
        }
    }

    /// The dispatch weight for [`crate::DispatchPolicy::WeightedFastest`]:
    /// the speed cap if set, else the model's nominal rating.
    pub fn speed_rating(&self) -> f64 {
        match self.speed_cap {
            Some(cap) => cap,
            None => self.power.model().speed_rating(),
        }
    }

    /// Estimated engine cost *per assigned job* for the parallel
    /// executor's LPT ordering: a slower host grinds longer over the
    /// same assignment, so cost scales inversely with the speed rating.
    /// Purely a scheduling heuristic — results never depend on it.
    pub fn cost_weight(&self) -> f64 {
        1.0 / self.speed_rating()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pas_power::discrete::ATHLON64_GHZ;

    #[test]
    fn engine_power_delegates_both_arms() {
        let poly = EnginePower::Poly(PolyPower::CUBE);
        assert_eq!(poly.power(2.0), 8.0);
        let ladder =
            EnginePower::Ladder(DiscreteSpeeds::new(PolyPower::CUBE, ATHLON64_GHZ.to_vec()));
        // At a ladder level the two agree; between levels the ladder is
        // dearer (convexity).
        assert_eq!(ladder.power(1.8), PolyPower::CUBE.power(1.8));
        assert!(ladder.power(1.2) > PolyPower::CUBE.power(1.2));
        assert!(ladder.name().starts_with("ladder3"));
        assert_eq!(ladder.speed_rating(), 2.0);
        assert_eq!(poly.speed_rating(), 1.0);
    }

    #[test]
    fn fixed_speed_policy_snapshot_contract() {
        let mut p = FixedSpeed::new(1.5);
        assert_eq!(p.save_state(), Some(vec![]));
        assert!(p.load_state(&[]));
        assert!(!p.load_state(&[1.0]));
        assert_eq!(p.name(), "fixed(1.5)");
    }

    #[test]
    #[should_panic(expected = "fixed speed must be finite and positive")]
    fn fixed_speed_rejects_zero() {
        let _ = FixedSpeed::new(0.0);
    }

    #[test]
    fn host_config_rating_prefers_cap() {
        let mut h = HostConfig::new(
            0,
            HostPower::dynamic_only(EnginePower::Poly(PolyPower::CUBE)),
        );
        assert_eq!(h.speed_rating(), 1.0);
        h.speed_cap = Some(0.7);
        assert_eq!(h.speed_rating(), 0.7);
    }

    #[test]
    fn cost_weight_is_inverse_rating() {
        let mut h = HostConfig::new(
            0,
            HostPower::dynamic_only(EnginePower::Poly(PolyPower::CUBE)),
        );
        assert_eq!(h.cost_weight(), 1.0);
        h.speed_cap = Some(0.5);
        assert_eq!(h.cost_weight(), 2.0, "capped-slow hosts cost more per job");
    }
}
