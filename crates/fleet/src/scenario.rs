//! Fleet scenarios: hosts + workload + scripted events + fault model.
//!
//! A [`FleetScenario`] is pure configuration — everything a run needs,
//! and nothing a run produces. The same scenario value drives
//! [`crate::run`] (live dispatch) and [`crate::replay`] (trace-driven),
//! which is what makes record→replay equivalence a meaningful test: the
//! two paths share all configuration and differ only in where routing
//! decisions come from.

use pas_sim::faults::{CrashSemantics, FaultEvent, FaultKind, FaultModel, FaultPlan};
use pas_workload::Instance;

use crate::event::{FleetEvent, FleetEventKind};
use crate::host::HostConfig;

/// How the dispatcher picks a host for an arriving job (among hosts
/// that are joined, not departed, and not currently down).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchPolicy {
    /// Cycle through eligible hosts in id order.
    RoundRobin,
    /// Least total work assigned so far; ties to the lowest id.
    LeastAssigned,
    /// Highest `speed_rating / (1 + assigned_work)` — a cheap stand-in
    /// for "fastest idle-most machine"; ties to the lowest id.
    WeightedFastest,
}

/// Validation failures for [`FleetScenario::validate`].
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// No hosts configured.
    NoHosts,
    /// Two hosts share an id.
    DuplicateHost {
        /// The repeated id.
        id: u32,
    },
    /// A scripted event names a host that does not exist.
    UnknownHost {
        /// The unknown id.
        id: u32,
    },
    /// A scripted event has a bad timestamp or duration.
    BadEvent {
        /// Explanation.
        reason: String,
    },
    /// The horizon is non-finite or non-positive.
    BadHorizon {
        /// The offending value.
        horizon: f64,
    },
    /// A host's cap or availability is malformed.
    BadHost {
        /// The host id.
        id: u32,
        /// Explanation.
        reason: String,
    },
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioError::NoHosts => write!(f, "scenario has no hosts"),
            ScenarioError::DuplicateHost { id } => write!(f, "duplicate host id {id}"),
            ScenarioError::UnknownHost { id } => write!(f, "event names unknown host {id}"),
            ScenarioError::BadEvent { reason } => write!(f, "bad event: {reason}"),
            ScenarioError::BadHorizon { horizon } => {
                write!(f, "horizon must be finite and positive, got {horizon}")
            }
            ScenarioError::BadHost { id, reason } => write!(f, "host {id}: {reason}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

/// A complete fleet scenario.
#[derive(Debug, Clone)]
pub struct FleetScenario {
    /// The hosts (ids must be unique; kept in the order given, routed
    /// in id order).
    pub hosts: Vec<HostConfig>,
    /// The fleet-level workload to dispatch.
    pub workload: Instance,
    /// Dispatch policy.
    pub dispatch: DispatchPolicy,
    /// Scripted events beyond workload arrivals (host failures,
    /// mid-run joins are derived from `available_from`, leaves).
    pub events: Vec<FleetEvent>,
    /// Optional background fault model, sampled once per host with
    /// [`FaultModel::for_host`] seeding.
    pub fault_model: Option<FaultModel>,
    /// Crash semantics for scripted host failures.
    pub crash_semantics: CrashSemantics,
    /// Accounting horizon: static power is charged over each host's
    /// on-window up to at least this time (extended per host if its
    /// schedule overruns).
    pub horizon: f64,
    /// Scenario seed: drives event-queue tie-breaking and per-host
    /// fault sampling.
    pub seed: u64,
    /// Optional per-job flow SLO forwarded into every host's fault
    /// plan (deadline misses then aggregate fleet-wide).
    pub slo: Option<f64>,
}

impl FleetScenario {
    /// A scenario with the given hosts/workload/horizon/seed and
    /// defaults everywhere else: round-robin dispatch, no scripted
    /// events, no background faults, checkpointed crash semantics, no
    /// SLO.
    pub fn new(hosts: Vec<HostConfig>, workload: Instance, horizon: f64, seed: u64) -> Self {
        FleetScenario {
            hosts,
            workload,
            dispatch: DispatchPolicy::RoundRobin,
            events: Vec::new(),
            fault_model: None,
            crash_semantics: CrashSemantics::Checkpointed,
            horizon,
            seed,
            slo: None,
        }
    }

    /// Check the configuration is internally consistent.
    ///
    /// # Errors
    /// [`ScenarioError`] naming the first problem found.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        if self.hosts.is_empty() {
            return Err(ScenarioError::NoHosts);
        }
        if !(self.horizon.is_finite() && self.horizon > 0.0) {
            return Err(ScenarioError::BadHorizon {
                horizon: self.horizon,
            });
        }
        let mut ids: Vec<u32> = self.hosts.iter().map(|h| h.id).collect();
        ids.sort_unstable();
        for w in ids.windows(2) {
            if w[0] == w[1] {
                return Err(ScenarioError::DuplicateHost { id: w[0] });
            }
        }
        for h in &self.hosts {
            if !(h.available_from.is_finite() && h.available_from >= 0.0) {
                return Err(ScenarioError::BadHost {
                    id: h.id,
                    reason: format!(
                        "available_from {} must be finite and >= 0",
                        h.available_from
                    ),
                });
            }
            if let Some(cap) = h.speed_cap {
                if !(cap.is_finite() && cap > 0.0) {
                    return Err(ScenarioError::BadHost {
                        id: h.id,
                        reason: format!("speed cap {cap} must be finite and positive"),
                    });
                }
            }
        }
        for ev in &self.events {
            if !(ev.at.is_finite() && ev.at >= 0.0) {
                return Err(ScenarioError::BadEvent {
                    reason: format!("time {} must be finite and >= 0", ev.at),
                });
            }
            let host = match &ev.kind {
                FleetEventKind::HostJoin { host }
                | FleetEventKind::HostLeave { host }
                | FleetEventKind::HostFail { host, .. } => *host,
                FleetEventKind::Arrival { .. } => {
                    return Err(ScenarioError::BadEvent {
                        reason: "arrivals come from the workload, not scripted events".into(),
                    })
                }
            };
            if ids.binary_search(&host).is_err() {
                return Err(ScenarioError::UnknownHost { id: host });
            }
            if let FleetEventKind::HostFail { duration, .. } = &ev.kind {
                if !(duration.is_finite() && *duration >= 0.0) {
                    return Err(ScenarioError::BadEvent {
                        reason: format!("fail duration {duration} must be finite and >= 0"),
                    });
                }
            }
        }
        Ok(())
    }

    /// The host with the given id, if configured.
    pub fn host(&self, id: u32) -> Option<&HostConfig> {
        self.hosts.iter().find(|h| h.id == id)
    }

    /// Assemble one host's [`FaultPlan`] from the scenario: scripted
    /// [`FleetEventKind::HostFail`] events become crashes (with the
    /// scenario's [`CrashSemantics`]), a configured speed cap becomes a
    /// full-horizon throttle at t = 0, and the background
    /// [`FaultModel`] (if any) contributes an independent stream seeded
    /// by [`FaultModel::for_host`] with `candidate_jobs` as its
    /// cancellation targets. The scenario SLO is attached.
    ///
    /// This is deliberately a pure function of
    /// `(scenario, host_id, candidate_jobs)` — the replay path calls it
    /// with the identical inputs and must get the identical plan.
    pub fn host_plan(&self, host_id: u32, candidate_jobs: &[u32]) -> FaultPlan {
        let mut scripted: Vec<FaultEvent> = Vec::new();
        for ev in &self.events {
            if let FleetEventKind::HostFail { host, duration } = &ev.kind {
                if *host == host_id {
                    scripted.push(FaultEvent {
                        at: ev.at,
                        kind: FaultKind::Crash {
                            duration: *duration,
                            semantics: self.crash_semantics,
                        },
                    });
                }
            }
        }
        let cap = self.host(host_id).and_then(|h| h.speed_cap);
        self.plan_from_parts(host_id, cap, &scripted, candidate_jobs, Vec::new())
    }

    /// [`Self::host_plan`] with the per-host scans hoisted out: the
    /// scripted crash list and speed cap arrive precomputed (the
    /// grouped partition pass gathers them in one sweep), and the event
    /// buffer is caller-owned so worker scratch can recycle it between
    /// hosts. Assembly order — scripted crashes, then the cap throttle,
    /// then sampled background faults — matches `host_plan` exactly;
    /// `FaultPlan::new` sorts stably by time, so order among time-ties
    /// is semantic and must not drift.
    pub(crate) fn plan_from_parts(
        &self,
        host_id: u32,
        speed_cap: Option<f64>,
        scripted: &[FaultEvent],
        candidate_jobs: &[u32],
        mut events: Vec<FaultEvent>,
    ) -> FaultPlan {
        events.clear();
        events.extend_from_slice(scripted);
        if let Some(cap) = speed_cap {
            events.push(FaultEvent {
                at: 0.0,
                kind: FaultKind::Throttle {
                    // Finite but beyond any schedule: FaultPlan requires
                    // finite durations.
                    duration: 1e300,
                    cap,
                },
            });
        }
        if let Some(model) = &self.fault_model {
            let sampled = model.sample(
                self.horizon,
                candidate_jobs,
                FaultModel::for_host(self.seed, host_id),
            );
            events.extend(sampled.into_events());
        }
        let plan = FaultPlan::new(events).expect("scenario-derived events are validated");
        match self.slo {
            Some(slo) => plan.with_slo(slo),
            None => plan,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::EnginePower;
    use pas_power::{HostPower, PolyPower};
    use pas_workload::Job;

    fn two_hosts() -> Vec<HostConfig> {
        (0..2)
            .map(|id| {
                HostConfig::new(
                    id,
                    HostPower::dynamic_only(EnginePower::Poly(PolyPower::CUBE)),
                )
            })
            .collect()
    }

    fn workload() -> Instance {
        Instance::new(vec![Job::new(0, 0.0, 2.0), Job::new(1, 1.0, 1.0)]).unwrap()
    }

    #[test]
    fn validates_clean_scenario() {
        let s = FleetScenario::new(two_hosts(), workload(), 10.0, 1);
        assert_eq!(s.validate(), Ok(()));
    }

    #[test]
    fn rejects_duplicate_and_unknown_hosts() {
        let mut hosts = two_hosts();
        hosts[1].id = 0;
        let s = FleetScenario::new(hosts, workload(), 10.0, 1);
        assert_eq!(s.validate(), Err(ScenarioError::DuplicateHost { id: 0 }));

        let mut s = FleetScenario::new(two_hosts(), workload(), 10.0, 1);
        s.events.push(FleetEvent {
            at: 1.0,
            kind: FleetEventKind::HostFail {
                host: 9,
                duration: 1.0,
            },
        });
        assert_eq!(s.validate(), Err(ScenarioError::UnknownHost { id: 9 }));
    }

    #[test]
    fn host_plan_merges_fail_cap_and_model() {
        let mut hosts = two_hosts();
        hosts[0].speed_cap = Some(0.5);
        let mut s = FleetScenario::new(hosts, workload(), 10.0, 1);
        s.events.push(FleetEvent {
            at: 2.0,
            kind: FleetEventKind::HostFail {
                host: 0,
                duration: 1.0,
            },
        });
        s.fault_model = Some(FaultModel::uniform_mix(0.2));
        s.slo = Some(4.0);
        let plan = s.host_plan(0, &[0, 1]);
        assert_eq!(plan.slo(), Some(4.0));
        assert!(plan
            .events()
            .iter()
            .any(|e| matches!(e.kind, FaultKind::Crash { .. }) && e.at == 2.0));
        assert!(plan
            .events()
            .iter()
            .any(|e| matches!(e.kind, FaultKind::Throttle { cap, .. } if cap == 0.5)));
        // Pure function: same inputs, same plan.
        assert_eq!(plan, s.host_plan(0, &[0, 1]));
        // Host 1 has no cap and no scripted fail; only sampled faults.
        let other = s.host_plan(1, &[0, 1]);
        assert!(!other
            .events()
            .iter()
            .any(|e| matches!(e.kind, FaultKind::Throttle { .. })
                && e.at == 0.0
                && matches!(e.kind, FaultKind::Throttle { cap, .. } if cap == 0.5)));
        assert_ne!(plan, other, "host streams must be decorrelated");
    }
}
