//! The fleet event calendar: a monotone queue with seeded tie-breaking.
//!
//! Discrete-event simulators live or die on event ordering. Time order
//! is forced by a min-heap keyed on the event timestamp (`total_cmp`,
//! so every finite pattern orders deterministically); the interesting
//! case is **ties**. Breaking them by insertion order silently bakes
//! scenario-construction order into results; breaking them by an
//! unseeded hash makes runs irreproducible. This queue instead mixes
//! the scenario seed with the event's insertion sequence number
//! (splitmix64 finalizer) into a tie key: same seed → same order,
//! bit-for-bit; different seed → an independent shuffle of every tie
//! group. The raw sequence number is the final disambiguator, so the
//! order is total even across a (vanishingly unlikely) tie-key
//! collision.
//!
//! Popping asserts the **monotone clock** invariant: simulated time
//! never goes backwards. Wall-clock time appears nowhere in this crate;
//! the simulated clock is advanced only by event timestamps.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use pas_workload::Job;

/// What happens at a point in simulated time.
#[derive(Debug, Clone, PartialEq)]
pub enum FleetEventKind {
    /// A job arrives at the fleet frontier and must be dispatched.
    /// `index` is the job's position in the scenario workload (the
    /// stable identity the trace records).
    Arrival {
        /// Position in the scenario workload's job list.
        index: usize,
        /// The job itself (redundant with `index`; carried so event
        /// handling never needs the workload in hand).
        job: Job,
    },
    /// A host comes online and becomes routable.
    HostJoin {
        /// Host id.
        host: u32,
    },
    /// A host leaves for good (planned decommission): no further
    /// arrivals are routed to it.
    HostLeave {
        /// Host id.
        host: u32,
    },
    /// A host crashes and is unroutable for `duration`; its engine sees
    /// a matching crash fault.
    HostFail {
        /// Host id.
        host: u32,
        /// Downtime length.
        duration: f64,
    },
}

impl FleetEventKind {
    /// Ordering class at equal timestamps: host state changes (join,
    /// leave, fail) process before arrivals, so an arrival at time `t`
    /// observes the fleet state *at* `t`. Without this, a job released
    /// exactly when its only host joins could be tie-broken ahead of
    /// the join and shed spuriously.
    fn class(&self) -> u8 {
        match self {
            FleetEventKind::HostJoin { .. }
            | FleetEventKind::HostLeave { .. }
            | FleetEventKind::HostFail { .. } => 0,
            FleetEventKind::Arrival { .. } => 1,
        }
    }
}

/// A timestamped [`FleetEventKind`].
#[derive(Debug, Clone, PartialEq)]
pub struct FleetEvent {
    /// When the event fires (finite, `>= 0`).
    pub at: f64,
    /// What fires.
    pub kind: FleetEventKind,
}

/// splitmix64 finalizer: the tie-key mix (same construction as
/// `FaultModel::for_host`, applied to `seed ⊕ seq`).
fn mix(seed: u64, seq: u64) -> u64 {
    let mut z = seed ^ seq.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

struct Queued {
    event: FleetEvent,
    tie: u64,
    seq: u64,
}

impl PartialEq for Queued {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl Eq for Queued {}

impl Ord for Queued {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse every component so the pop
        // order is (time asc, class asc, tie asc, seq asc).
        other
            .event
            .at
            .total_cmp(&self.event.at)
            .then_with(|| other.event.kind.class().cmp(&self.event.kind.class()))
            .then_with(|| other.tie.cmp(&self.tie))
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl PartialOrd for Queued {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The monotone event queue.
#[derive(Default)]
pub struct EventQueue {
    heap: BinaryHeap<Queued>,
    seed: u64,
    next_seq: u64,
    last_popped: f64,
}

impl EventQueue {
    /// An empty queue whose tie-breaking derives from `seed`.
    pub fn new(seed: u64) -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seed,
            next_seq: 0,
            last_popped: f64::NEG_INFINITY,
        }
    }

    /// Schedule an event.
    ///
    /// # Panics
    /// If the timestamp is non-finite or negative, or lies in the past
    /// of the simulated clock (an event handler tried to rewrite
    /// history).
    pub fn push(&mut self, event: FleetEvent) {
        assert!(
            event.at.is_finite() && event.at >= 0.0,
            "event time must be finite and >= 0, got {}",
            event.at
        );
        assert!(
            event.at >= self.last_popped,
            "cannot schedule at t={} before the simulated clock t={}",
            event.at,
            self.last_popped
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Queued {
            tie: mix(self.seed, seq),
            event,
            seq,
        });
    }

    /// Next event in (time, class, tie, seq) order, advancing the simulated
    /// clock. Returns `None` when the calendar is exhausted.
    pub fn pop(&mut self) -> Option<FleetEvent> {
        let q = self.heap.pop()?;
        debug_assert!(q.event.at >= self.last_popped, "monotone clock violated");
        self.last_popped = q.event.at;
        Some(q.event)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the calendar is exhausted.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The simulated clock: the timestamp of the last popped event
    /// (`-inf` before the first pop).
    pub fn now(&self) -> f64 {
        self.last_popped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at: f64, host: u32) -> FleetEvent {
        FleetEvent {
            at,
            kind: FleetEventKind::HostJoin { host },
        }
    }

    fn drain(q: &mut EventQueue) -> Vec<(f64, u32)> {
        let mut out = Vec::new();
        while let Some(e) = q.pop() {
            match e.kind {
                FleetEventKind::HostJoin { host } => out.push((e.at, host)),
                _ => unreachable!(),
            }
        }
        out
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new(1);
        for (t, h) in [(3.0, 0), (1.0, 1), (2.0, 2), (0.5, 3)] {
            q.push(ev(t, h));
        }
        let order = drain(&mut q);
        assert_eq!(order, vec![(0.5, 3), (1.0, 1), (2.0, 2), (3.0, 0)]);
    }

    #[test]
    fn same_seed_same_tie_order() {
        let runs: Vec<_> = (0..2)
            .map(|_| {
                let mut q = EventQueue::new(42);
                for h in 0..50u32 {
                    q.push(ev(1.0, h));
                }
                drain(&mut q)
            })
            .collect();
        assert_eq!(runs[0], runs[1]);
    }

    #[test]
    fn different_seed_shuffles_ties() {
        let order_for = |seed| {
            let mut q = EventQueue::new(seed);
            for h in 0..50u32 {
                q.push(ev(1.0, h));
            }
            drain(&mut q)
        };
        assert_ne!(order_for(1), order_for(2));
        // And the tie shuffle is not insertion order.
        let insertion: Vec<_> = (0..50u32).map(|h| (1.0, h)).collect();
        assert_ne!(order_for(1), insertion);
    }

    #[test]
    fn ties_do_not_leak_across_times() {
        // Tie-breaking must never override time order.
        let mut q = EventQueue::new(7);
        for h in 0..20u32 {
            q.push(ev(if h % 2 == 0 { 1.0 } else { 2.0 }, h));
        }
        let order = drain(&mut q);
        let times: Vec<f64> = order.iter().map(|&(t, _)| t).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        assert!(order[..10].iter().all(|&(_, h)| h % 2 == 0));
    }

    #[test]
    fn state_changes_precede_arrivals_at_equal_time() {
        use pas_workload::Job;
        // Whatever the seed, a join at t and an arrival at t must pop
        // join-first: the arrival observes the state *at* t.
        for seed in 0..32u64 {
            let mut q = EventQueue::new(seed);
            q.push(FleetEvent {
                at: 1.0,
                kind: FleetEventKind::Arrival {
                    index: 0,
                    job: Job::new(0, 1.0, 1.0),
                },
            });
            q.push(ev(1.0, 0));
            let first = q.pop().unwrap();
            assert!(
                matches!(first.kind, FleetEventKind::HostJoin { .. }),
                "seed {seed}: join must precede the tied arrival"
            );
        }
    }

    #[test]
    #[should_panic(expected = "before the simulated clock")]
    fn rejects_scheduling_into_the_past() {
        let mut q = EventQueue::new(0);
        q.push(ev(5.0, 0));
        let _ = q.pop();
        q.push(ev(4.0, 1));
    }

    #[test]
    #[should_panic(expected = "finite and >= 0")]
    fn rejects_nan_time() {
        EventQueue::new(0).push(ev(f64::NAN, 0));
    }
}
