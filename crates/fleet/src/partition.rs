//! The grouped partition pass: trace → per-host execution tasks.
//!
//! The old execute phase re-derived each host's inputs with per-host
//! scans — for every host, walk `scenario.events` for its leave time
//! and scripted crashes, and look its assignment up in a `BTreeMap` —
//! an `O(hosts × records)` shape that dominated phase 2 setup at fleet
//! scale. [`partition`] replaces all of it with **two linear sweeps**:
//! one over the scenario's scripted events and one over the trace,
//! binary-searching host id → slot per record. It also owns the trace
//! validation replay needs (arrival records must match the workload
//! bit-exactly, routed hosts must exist), so [`crate::run`] and
//! [`crate::replay`] share one partition path and can only diverge in
//! where the trace came from.
//!
//! Determinism notes, load-bearing:
//! * `leave_at` is the **first** `HostLeave` for the host in
//!   `scenario.events` *vector order* (the old `find_map`), not the
//!   earliest by time.
//! * Scripted crashes are collected in `scenario.events` vector order —
//!   `FaultPlan::new` sorts stably by time, so input order among
//!   time-ties is semantic.
//! * Fleet-shed counts accumulate in trace-record order, the same f64
//!   summation order the dispatch loop used.

use pas_sim::faults::{FaultEvent, FaultKind};

use crate::event::FleetEventKind;
use crate::scenario::FleetScenario;
use crate::sim::FleetError;
use crate::trace::EventTrace;

/// Everything phase 2 needs to run one host, gathered in one pass.
#[derive(Debug)]
pub(crate) struct HostTask {
    /// Host id.
    pub host: u32,
    /// Assigned workload indices, ascending.
    pub indices: Vec<usize>,
    /// The host's scripted leave time, if any (first in event order).
    pub leave_at: Option<f64>,
    /// Scripted crash events for this host, in scenario-event order.
    pub crashes: Vec<FaultEvent>,
    /// LPT cost estimate: assigned-job count × host cost weight. A
    /// scheduling heuristic only — results never depend on it.
    pub cost: f64,
}

/// The full phase-2 work list plus fleet-frontier shed accounting.
#[derive(Debug)]
pub(crate) struct Partition {
    /// One task per host, in ascending host-id order (slot `i` is the
    /// `i`-th smallest id — the reduction's canonical order).
    pub tasks: Vec<HostTask>,
    /// Arrivals no eligible host could take.
    pub shed_jobs: usize,
    /// Work of those arrivals.
    pub shed_work: f64,
}

/// Derive the phase-2 work list from a trace in two linear sweeps.
///
/// # Errors
/// [`FleetError::TraceMismatch`] when an arrival record does not match
/// the scenario workload bit-exactly or routes to an unknown host.
pub(crate) fn partition(
    scenario: &FleetScenario,
    trace: &EventTrace,
) -> Result<Partition, FleetError> {
    let mut ids: Vec<u32> = scenario.hosts.iter().map(|h| h.id).collect();
    ids.sort_unstable();
    let mut tasks: Vec<HostTask> = ids
        .iter()
        .map(|&host| HostTask {
            host,
            indices: Vec::new(),
            leave_at: None,
            crashes: Vec::new(),
            cost: 0.0,
        })
        .collect();

    // Sweep 1: scripted events → per-host leave/crash lists, observed
    // in the exact vector order host_plan's per-host scans used.
    for ev in &scenario.events {
        match ev.kind {
            FleetEventKind::HostLeave { host } => {
                if let Ok(slot) = ids.binary_search(&host) {
                    let task = &mut tasks[slot];
                    if task.leave_at.is_none() {
                        task.leave_at = Some(ev.at);
                    }
                }
            }
            FleetEventKind::HostFail { host, duration } => {
                if let Ok(slot) = ids.binary_search(&host) {
                    tasks[slot].crashes.push(FaultEvent {
                        at: ev.at,
                        kind: FaultKind::Crash {
                            duration,
                            semantics: scenario.crash_semantics,
                        },
                    });
                }
            }
            _ => {}
        }
    }

    // Sweep 2: trace arrivals → assignments + frontier-shed totals, in
    // record order.
    let mut shed_jobs = 0usize;
    let mut shed_work = 0.0f64;
    for rec in &trace.records {
        let Some(a) = rec.arrival() else { continue };
        if a.index >= scenario.workload.len() {
            return Err(FleetError::TraceMismatch {
                reason: format!("arrival index {} out of range", a.index),
            });
        }
        let job = scenario.workload.job(a.index);
        if job.id != a.job_id
            || job.release.to_bits() != a.release.to_bits()
            || job.work.to_bits() != a.work.to_bits()
        {
            return Err(FleetError::TraceMismatch {
                reason: format!("arrival {} does not match the scenario workload", a.index),
            });
        }
        match a.routed {
            Some(host) => match ids.binary_search(&host) {
                Ok(slot) => tasks[slot].indices.push(a.index),
                Err(_) => {
                    return Err(FleetError::TraceMismatch {
                        reason: format!("arrival {} routed to unknown host {host}", a.index),
                    })
                }
            },
            None => {
                shed_jobs += 1;
                shed_work += job.work;
            }
        }
    }

    for task in &mut tasks {
        // Dispatch pops arrivals in seed-tie-broken order; the engine
        // wants the workload's canonical index order (see sim.rs).
        task.indices.sort_unstable();
        let cfg = scenario.host(task.host).expect("validated host");
        task.cost = task.indices.len() as f64 * cfg.cost_weight();
    }

    Ok(Partition {
        tasks,
        shed_jobs,
        shed_work,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::FleetEvent;
    use crate::host::{EnginePower, HostConfig};
    use pas_power::{HostPower, PolyPower};
    use pas_workload::{Instance, Job};

    fn scenario() -> FleetScenario {
        let hosts = vec![
            HostConfig::new(
                5,
                HostPower::dynamic_only(EnginePower::Poly(PolyPower::CUBE)),
            ),
            HostConfig::new(
                2,
                HostPower::dynamic_only(EnginePower::Poly(PolyPower::CUBE)),
            ),
        ];
        let workload = Instance::new(vec![
            Job::new(0, 0.0, 1.0),
            Job::new(1, 0.5, 2.0),
            Job::new(2, 1.0, 4.0),
        ])
        .unwrap();
        FleetScenario::new(hosts, workload, 10.0, 1)
    }

    #[test]
    fn groups_events_and_arrivals_by_host() {
        let mut s = scenario();
        s.events.push(FleetEvent {
            at: 6.0,
            kind: FleetEventKind::HostLeave { host: 5 },
        });
        s.events.push(FleetEvent {
            at: 4.0,
            kind: FleetEventKind::HostLeave { host: 5 },
        });
        s.events.push(FleetEvent {
            at: 1.0,
            kind: FleetEventKind::HostFail {
                host: 2,
                duration: 0.5,
            },
        });
        let out = crate::run(&s).unwrap();
        let part = partition(&s, &out.trace).unwrap();
        assert_eq!(part.tasks.len(), 2);
        assert_eq!(part.tasks[0].host, 2, "slots are in ascending id order");
        assert_eq!(part.tasks[1].host, 5);
        // find_map semantics: first leave in *vector* order wins, even
        // though a later-listed leave has the earlier timestamp.
        assert_eq!(part.tasks[1].leave_at, Some(6.0));
        assert_eq!(part.tasks[0].leave_at, None);
        assert_eq!(part.tasks[0].crashes.len(), 1);
        assert!(part.tasks[1].crashes.is_empty());
        let assigned: usize = part.tasks.iter().map(|t| t.indices.len()).sum();
        assert_eq!(assigned + part.shed_jobs, 3);
        for t in &part.tasks {
            assert!(t.indices.windows(2).all(|w| w[0] < w[1]), "ascending");
        }
    }

    #[test]
    fn rejects_workload_mismatch_and_unknown_host() {
        let s = scenario();
        let out = crate::run(&s).unwrap();
        let mut wrong = s.clone();
        wrong.workload = Instance::new(vec![
            Job::new(0, 0.0, 9.0),
            Job::new(1, 0.5, 2.0),
            Job::new(2, 1.0, 4.0),
        ])
        .unwrap();
        assert!(matches!(
            partition(&wrong, &out.trace),
            Err(FleetError::TraceMismatch { .. })
        ));
        let mut bad_route = out.trace.clone();
        for rec in &mut bad_route.records {
            if let crate::trace::TraceRecord::Arrival { routed, .. } = rec {
                *routed = Some(99);
            }
        }
        assert!(matches!(
            partition(&s, &bad_route),
            Err(FleetError::TraceMismatch { .. })
        ));
    }

    #[test]
    fn cost_orders_by_assignment_and_weight() {
        let mut s = scenario();
        s.hosts[0].speed_cap = Some(0.5); // host 5: weight 2 per job
        let out = crate::run(&s).unwrap();
        let part = partition(&s, &out.trace).unwrap();
        for t in &part.tasks {
            let weight = if t.host == 5 { 2.0 } else { 1.0 };
            assert_eq!(t.cost, t.indices.len() as f64 * weight);
        }
    }
}
