//! Bit-exact serialized event traces: record once, replay identically.
//!
//! A [`EventTrace`] is the full record of a fleet run's phase-1 event
//! processing — every event in its popped (tie-broken) order, plus the
//! routing decision for every arrival. All `f64`s are serialized as
//! their 16-hex-digit IEEE-754 bit patterns
//! ([`pas_workload::io::f64_to_hex`]), so
//! `trace → serialize → parse → replay` reproduces the original fleet
//! digest **bit-identically** — the property `tests/fleet_equivalence.rs`
//! pins. The format is line-oriented and diff-friendly:
//!
//! ```text
//! fleettrace v1
//! seed 000000000000002a
//! ev 0000000000000000 join 0
//! ev 3ff0000000000000 arrival 0 17 3ff0000000000000 4000000000000000 host 0
//! ev 4000000000000000 fail 0 3fe0000000000000
//! ev 4008000000000000 arrival 1 18 4008000000000000 3ff0000000000000 host -
//! ```
//!
//! (`host -` marks an arrival no eligible host could take: fleet-shed.)

use pas_workload::io::{f64_from_hex, f64_to_hex};

/// One recorded event, in pop order.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceRecord {
    /// A workload arrival and where it was routed (`None` = shed).
    Arrival {
        /// Event time (= the job's release).
        at: f64,
        /// Index into the scenario workload.
        index: usize,
        /// The job's id.
        job_id: u32,
        /// Release time, bit-exact.
        release: f64,
        /// Work, bit-exact.
        work: f64,
        /// Chosen host, or `None` when no host was eligible.
        routed: Option<u32>,
    },
    /// A host joined.
    Join {
        /// Event time.
        at: f64,
        /// Host id.
        host: u32,
    },
    /// A host left permanently.
    Leave {
        /// Event time.
        at: f64,
        /// Host id.
        host: u32,
    },
    /// A host failed for `duration`.
    Fail {
        /// Event time.
        at: f64,
        /// Host id.
        host: u32,
        /// Downtime length.
        duration: f64,
    },
}

impl TraceRecord {
    /// The record's timestamp.
    pub fn at(&self) -> f64 {
        match self {
            TraceRecord::Arrival { at, .. }
            | TraceRecord::Join { at, .. }
            | TraceRecord::Leave { at, .. }
            | TraceRecord::Fail { at, .. } => *at,
        }
    }

    /// This record's payload as an arrival, if it is one. The grouped
    /// partition pass matches every record against this exactly once.
    pub fn arrival(&self) -> Option<ArrivalView> {
        match *self {
            TraceRecord::Arrival {
                at,
                index,
                job_id,
                release,
                work,
                routed,
            } => Some(ArrivalView {
                at,
                index,
                job_id,
                release,
                work,
                routed,
            }),
            _ => None,
        }
    }
}

/// Copied-out payload of a [`TraceRecord::Arrival`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrivalView {
    /// Event time (= the job's release).
    pub at: f64,
    /// Index into the scenario workload.
    pub index: usize,
    /// The job's id.
    pub job_id: u32,
    /// Release time, bit-exact.
    pub release: f64,
    /// Work, bit-exact.
    pub work: f64,
    /// Chosen host, or `None` when the arrival was fleet-shed.
    pub routed: Option<u32>,
}

/// A serialized fleet run: seed + events in pop order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EventTrace {
    /// The scenario seed the order was derived from.
    pub seed: u64,
    /// Events in the exact order phase 1 processed them.
    pub records: Vec<TraceRecord>,
}

/// Parse failures for [`EventTrace::parse`].
#[derive(Debug, Clone, PartialEq)]
pub struct TraceParseError {
    /// 1-based line number.
    pub line: usize,
    /// Explanation.
    pub reason: String,
}

impl std::fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for TraceParseError {}

fn err(line: usize, reason: impl Into<String>) -> TraceParseError {
    TraceParseError {
        line,
        reason: reason.into(),
    }
}

impl EventTrace {
    /// Serialize to the canonical line format (the digest currency: the
    /// fleet digest hashes exactly these bytes).
    pub fn serialize(&self) -> String {
        let mut out = String::from("fleettrace v1\n");
        out.push_str(&format!("seed {:016x}\n", self.seed));
        for r in &self.records {
            match r {
                TraceRecord::Arrival {
                    at,
                    index,
                    job_id,
                    release,
                    work,
                    routed,
                } => {
                    let host = match routed {
                        Some(h) => h.to_string(),
                        None => "-".to_string(),
                    };
                    out.push_str(&format!(
                        "ev {} arrival {} {} {} {} host {}\n",
                        f64_to_hex(*at),
                        index,
                        job_id,
                        f64_to_hex(*release),
                        f64_to_hex(*work),
                        host
                    ));
                }
                TraceRecord::Join { at, host } => {
                    out.push_str(&format!("ev {} join {}\n", f64_to_hex(*at), host));
                }
                TraceRecord::Leave { at, host } => {
                    out.push_str(&format!("ev {} leave {}\n", f64_to_hex(*at), host));
                }
                TraceRecord::Fail { at, host, duration } => {
                    out.push_str(&format!(
                        "ev {} fail {} {}\n",
                        f64_to_hex(*at),
                        host,
                        f64_to_hex(*duration)
                    ));
                }
            }
        }
        out
    }

    /// Parse a serialized trace.
    ///
    /// # Errors
    /// [`TraceParseError`] with the offending 1-based line.
    pub fn parse(text: &str) -> Result<EventTrace, TraceParseError> {
        let mut lines = text.lines().enumerate();
        let (_, header) = lines.next().ok_or_else(|| err(1, "empty trace"))?;
        if header.trim() != "fleettrace v1" {
            return Err(err(1, format!("bad header {header:?}")));
        }
        let (_, seed_line) = lines.next().ok_or_else(|| err(2, "missing seed line"))?;
        let seed = seed_line
            .trim()
            .strip_prefix("seed ")
            .and_then(|s| u64::from_str_radix(s.trim(), 16).ok())
            .ok_or_else(|| err(2, format!("bad seed line {seed_line:?}")))?;
        let mut records = Vec::new();
        for (idx, raw) in lines {
            let line_no = idx + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let tokens: Vec<&str> = line.split_whitespace().collect();
            let hex = |s: &str| f64_from_hex(s);
            let record = match tokens.as_slice() {
                ["ev", at, "arrival", index, job_id, release, work, "host", routed] => {
                    TraceRecord::Arrival {
                        at: hex(at).ok_or_else(|| err(line_no, "bad time"))?,
                        index: index.parse().map_err(|_| err(line_no, "bad index"))?,
                        job_id: job_id.parse().map_err(|_| err(line_no, "bad job id"))?,
                        release: hex(release).ok_or_else(|| err(line_no, "bad release"))?,
                        work: hex(work).ok_or_else(|| err(line_no, "bad work"))?,
                        routed: match *routed {
                            "-" => None,
                            h => Some(h.parse().map_err(|_| err(line_no, "bad host"))?),
                        },
                    }
                }
                ["ev", at, "join", host] => TraceRecord::Join {
                    at: hex(at).ok_or_else(|| err(line_no, "bad time"))?,
                    host: host.parse().map_err(|_| err(line_no, "bad host"))?,
                },
                ["ev", at, "leave", host] => TraceRecord::Leave {
                    at: hex(at).ok_or_else(|| err(line_no, "bad time"))?,
                    host: host.parse().map_err(|_| err(line_no, "bad host"))?,
                },
                ["ev", at, "fail", host, duration] => TraceRecord::Fail {
                    at: hex(at).ok_or_else(|| err(line_no, "bad time"))?,
                    host: host.parse().map_err(|_| err(line_no, "bad host"))?,
                    duration: hex(duration).ok_or_else(|| err(line_no, "bad duration"))?,
                },
                _ => return Err(err(line_no, format!("unrecognized record {line:?}"))),
            };
            records.push(record);
        }
        Ok(EventTrace { seed, records })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EventTrace {
        EventTrace {
            seed: 42,
            records: vec![
                TraceRecord::Join { at: 0.0, host: 0 },
                TraceRecord::Arrival {
                    at: 1.0,
                    index: 0,
                    job_id: 17,
                    release: 1.0,
                    work: 0.1 + 0.2, // not a short decimal: exercises bit-exactness
                    routed: Some(0),
                },
                TraceRecord::Fail {
                    at: 2.0,
                    host: 0,
                    duration: 0.5,
                },
                TraceRecord::Arrival {
                    at: 3.0,
                    index: 1,
                    job_id: 18,
                    release: 3.0,
                    work: 1.0,
                    routed: None,
                },
                TraceRecord::Leave { at: 4.0, host: 0 },
            ],
        }
    }

    #[test]
    fn round_trips_bit_exactly() {
        let t = sample();
        let text = t.serialize();
        let back = EventTrace::parse(&text).unwrap();
        assert_eq!(t, back);
        // And the serialization is a fixed point.
        assert_eq!(text, back.serialize());
    }

    #[test]
    fn rejects_malformed() {
        assert!(EventTrace::parse("").is_err());
        assert!(EventTrace::parse("wrong header\nseed 0\n").is_err());
        assert!(EventTrace::parse("fleettrace v1\nnope\n").is_err());
        let bad_record = "fleettrace v1\nseed 0000000000000000\nev xyz join 0\n";
        let e = EventTrace::parse(bad_record).unwrap_err();
        assert_eq!(e.line, 3);
        let unknown = "fleettrace v1\nseed 0000000000000000\nev 0000000000000000 reboot 0\n";
        assert!(EventTrace::parse(unknown).is_err());
    }

    #[test]
    fn tolerates_comments_and_blank_lines() {
        let text = format!(
            "fleettrace v1\nseed {:016x}\n\n# a comment\nev {} join 3\n",
            7u64,
            pas_workload::io::f64_to_hex(0.0)
        );
        let t = EventTrace::parse(&text).unwrap();
        assert_eq!(t.seed, 7);
        assert_eq!(t.records, vec![TraceRecord::Join { at: 0.0, host: 3 }]);
    }
}
