//! The fleet run: dispatch phase, parallel per-host engine phase,
//! deterministic reduction.
//!
//! A run is **three deterministic steps**:
//!
//! 1. **Dispatch** — the event calendar (workload arrivals, host
//!    joins/leaves/failures) is drained in monotone, seed-tie-broken
//!    order ([`crate::event::EventQueue`]); the dispatcher routes every
//!    arrival to an eligible host (joined, not departed, not down) per
//!    the scenario's [`DispatchPolicy`]. Every processed event and
//!    every routing decision is appended to an [`EventTrace`].
//! 2. **Partition** — one grouped pass (the crate-private `partition`
//!    module) turns the
//!    trace into per-host tasks: assigned indices, leave time, scripted
//!    crashes, and an LPT cost estimate. Both [`run`] and [`replay`]
//!    go through it, so replay validation and live runs share a path.
//! 3. **Execute + reduce** — host tasks are popped from a shared
//!    deque in descending estimated-cost order (LPT) by a pool of
//!    workers ([`run_with`] picks the count; [`default_workers`]
//!    honours `PAS_FLEET_THREADS`). Each worker owns a reusable
//!    scratch context — a pooled engine arena
//!    ([`pas_sim::online::EngineScratch`]), job/id buffers, the
//!    fault-event buffer, and idle-gap interval scratch — cleared, not
//!    reallocated, between hosts. Per-host results land in
//!    slot-indexed cells and the digest/aggregates are folded
//!    **afterward in fixed host-id order**, so the FNV-1a fleet
//!    digest, every per-host `outcome_digest`, and every f64 bit
//!    pattern are identical for every worker count, including 1.
//!
//! Each host runs the ordinary `pas_sim` single-machine online engine
//! over its assigned jobs under its own power model, policy, and fault
//! plan ([`FleetScenario::host_plan`] semantics), then static
//! idle/sleep energy is charged over the host's on-window gaps via
//! [`pas_power::HostPower::gap_energy`]. Phase 2 is a pure function of
//! `(scenario, task)` — no worker observes another's state — which is
//! why execution order cannot leak into results.
//!
//! [`replay`] skips phase 1 and takes routing from a recorded trace;
//! because the fleet digest hashes the serialized trace plus the
//! per-host outcome digests, record→replay reproduces the digest
//! bit-for-bit — under any worker count.
//!
//! A deliberate modelling note: hosts that were assigned **no** jobs
//! never spin up an engine, so background-fault arrival bursts on idle
//! hosts are not materialized (bursts are engine-injected load); their
//! crashes still subtract from the idle window, since a crashed host is
//! off, not idling.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use pas_sim::faults::FaultKind;
use pas_sim::journal::outcome_digest;
use pas_sim::metrics;
use pas_sim::online::{run_online_pooled, EngineScratch, OnlineOutcome, SimError};
use pas_workload::Job;

use crate::event::{EventQueue, FleetEvent, FleetEventKind};
use crate::partition::{partition, HostTask, Partition};
use crate::scenario::{DispatchPolicy, FleetScenario, ScenarioError};
use crate::trace::{EventTrace, TraceRecord};

/// Fleet-run failures.
#[derive(Debug)]
pub enum FleetError {
    /// The scenario failed validation.
    Scenario(ScenarioError),
    /// A host's engine run failed.
    Host {
        /// The host whose engine failed.
        host: u32,
        /// The underlying simulation error.
        error: SimError,
    },
    /// A replay trace does not match the scenario.
    TraceMismatch {
        /// Explanation.
        reason: String,
    },
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::Scenario(e) => write!(f, "invalid scenario: {e}"),
            FleetError::Host { host, error } => write!(f, "host {host}: {error}"),
            FleetError::TraceMismatch { reason } => write!(f, "trace mismatch: {reason}"),
        }
    }
}

impl std::error::Error for FleetError {}

impl From<ScenarioError> for FleetError {
    fn from(e: ScenarioError) -> Self {
        FleetError::Scenario(e)
    }
}

/// One host's share of a fleet run.
#[derive(Debug)]
pub struct HostReport {
    /// Host id.
    pub host: u32,
    /// Jobs routed to this host.
    pub jobs_assigned: usize,
    /// Engine-metered dynamic energy.
    pub dynamic_energy: f64,
    /// Idle/sleep static energy over the host's on-window.
    pub static_energy: f64,
    /// Number of idle gaps long enough to trigger a sleep transition.
    pub sleep_transitions: usize,
    /// Sum of job flows (`C_i − r_i`) against the host's effective
    /// instance.
    pub total_flow: f64,
    /// Completion time of the host's last slice (0 when idle all run).
    pub makespan: f64,
    /// `pas_sim::outcome_digest` of the engine outcome (0 when no
    /// engine ran).
    pub digest: u64,
    /// Jobs shed by this host's admission gate.
    pub shed_jobs: usize,
    /// Speed-cap / throttle clamps applied.
    pub throttle_clamps: usize,
    /// SLO misses charged to this host.
    pub deadline_misses: usize,
    /// The full engine outcome (`None` when the host ran nothing).
    pub outcome: Option<OnlineOutcome>,
}

/// Wall-clock time spent in each step of a fleet run, in milliseconds.
///
/// Measurement only: wall time is never an input to the simulation and
/// is excluded from the fleet digest.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseBreakdown {
    /// Phase 1: event-calendar drain + routing (0 for replays).
    pub dispatch_ms: f64,
    /// Grouped trace→tasks pass.
    pub partition_ms: f64,
    /// Parallel per-host engine runs (spawn to last join).
    pub execute_ms: f64,
    /// Id-order fold: aggregates + fleet digest.
    pub reduce_ms: f64,
}

impl PhaseBreakdown {
    /// Sum of all phases.
    pub fn total_ms(&self) -> f64 {
        self.dispatch_ms + self.partition_ms + self.execute_ms + self.reduce_ms
    }
}

/// Aggregated result of a fleet run.
#[derive(Debug)]
pub struct FleetOutcome {
    /// Per-host reports, in host-id order.
    pub hosts: Vec<HostReport>,
    /// The recorded (or replayed) event trace.
    pub trace: EventTrace,
    /// Arrivals no eligible host could take.
    pub fleet_shed_jobs: usize,
    /// Work of those arrivals.
    pub fleet_shed_work: f64,
    /// Total engine-metered dynamic energy.
    pub dynamic_energy: f64,
    /// Total idle/sleep static energy.
    pub static_energy: f64,
    /// Total flow across hosts.
    pub total_flow: f64,
    /// Latest completion across hosts.
    pub makespan: f64,
    /// Jobs completed (appearing in a host schedule) across the fleet.
    pub completed_jobs: usize,
    /// The fleet digest: FNV-1a over the serialized trace, the per-host
    /// outcome digests and static energies, and the aggregates. Two
    /// runs agree on this iff they agree on every event, routing
    /// decision, schedule bit, and energy bit — independent of worker
    /// count.
    pub digest: u64,
    /// Worker threads the execute phase actually used.
    pub workers: usize,
    /// Wall-clock breakdown of this run (not hashed).
    pub timings: PhaseBreakdown,
}

impl FleetOutcome {
    /// Dynamic + static energy.
    pub fn total_energy(&self) -> f64 {
        self.dynamic_energy + self.static_energy
    }

    /// Total jobs shed anywhere: unroutable at the fleet frontier plus
    /// per-host admission sheds.
    pub fn shed_jobs(&self) -> usize {
        self.fleet_shed_jobs + self.hosts.iter().map(|h| h.shed_jobs).sum::<usize>()
    }
}

/// FNV-1a 64-bit, the workspace digest idiom.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn bytes(&mut self, data: &[u8]) {
        for &b in data {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }
    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
}

/// Dispatch-phase state for one host.
struct HostState {
    id: u32,
    joined: bool,
    left: bool,
    down_until: f64,
    assigned_work: f64,
    rating: f64,
}

fn ms(since: Instant) -> f64 {
    since.elapsed().as_secs_f64() * 1e3
}

/// The worker count [`run`] and [`replay`] use: `PAS_FLEET_THREADS`
/// when set to a positive integer, else the machine's available
/// parallelism, else 1.
pub fn default_workers() -> usize {
    match std::env::var("PAS_FLEET_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
    {
        Some(n) if n >= 1 => n,
        _ => std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
    }
}

/// Run a scenario end to end (dispatch + partition + execute) with
/// [`default_workers`] workers.
///
/// # Errors
/// [`FleetError`] on an invalid scenario or a host engine failure.
pub fn run(scenario: &FleetScenario) -> Result<FleetOutcome, FleetError> {
    run_with(scenario, default_workers())
}

/// [`run`] with an explicit worker count. Any count ≥ 1 produces the
/// bit-identical [`FleetOutcome::digest`]; `workers == 1` executes
/// inline without spawning threads (the CI single-core path).
///
/// # Errors
/// As [`run`].
pub fn run_with(scenario: &FleetScenario, workers: usize) -> Result<FleetOutcome, FleetError> {
    scenario.validate()?;
    let t = Instant::now();
    let trace = dispatch(scenario);
    let dispatch_ms = ms(t);
    let t = Instant::now();
    let part = partition(scenario, &trace)?;
    let partition_ms = ms(t);
    execute(scenario, trace, part, workers, dispatch_ms, partition_ms)
}

/// Replay a recorded trace against the same scenario: phase 1 is taken
/// verbatim from the trace (routing included), phases 2–3 re-execute
/// with [`default_workers`] workers.
///
/// # Errors
/// [`FleetError::TraceMismatch`] when the trace's seed or arrival
/// records disagree with the scenario (bit-exact comparison);
/// otherwise as [`run`].
pub fn replay(scenario: &FleetScenario, trace: &EventTrace) -> Result<FleetOutcome, FleetError> {
    replay_with(scenario, trace, default_workers())
}

/// [`replay`] with an explicit worker count.
///
/// # Errors
/// As [`replay`].
pub fn replay_with(
    scenario: &FleetScenario,
    trace: &EventTrace,
    workers: usize,
) -> Result<FleetOutcome, FleetError> {
    scenario.validate()?;
    if trace.seed != scenario.seed {
        return Err(FleetError::TraceMismatch {
            reason: format!(
                "trace seed {:016x} != scenario seed {:016x}",
                trace.seed, scenario.seed
            ),
        });
    }
    let t = Instant::now();
    let part = partition(scenario, trace)?;
    let partition_ms = ms(t);
    execute(scenario, trace.clone(), part, workers, 0.0, partition_ms)
}

/// Phase 1: drain the calendar, route arrivals, record the trace.
/// Assignments and shed totals are *not* tracked here — the partition
/// pass re-derives both from the trace, so dispatch and replay cannot
/// disagree about them.
fn dispatch(scenario: &FleetScenario) -> EventTrace {
    let mut queue = EventQueue::new(scenario.seed);
    for h in &scenario.hosts {
        queue.push(FleetEvent {
            at: h.available_from,
            kind: FleetEventKind::HostJoin { host: h.id },
        });
    }
    for (index, job) in scenario.workload.jobs().iter().enumerate() {
        queue.push(FleetEvent {
            at: job.release,
            kind: FleetEventKind::Arrival { index, job: *job },
        });
    }
    for ev in &scenario.events {
        queue.push(ev.clone());
    }

    // Host states in id order (the canonical eligibility scan order).
    let mut states: Vec<HostState> = scenario
        .hosts
        .iter()
        .map(|h| HostState {
            id: h.id,
            joined: false,
            left: false,
            down_until: f64::NEG_INFINITY,
            assigned_work: 0.0,
            rating: h.speed_rating(),
        })
        .collect();
    states.sort_by_key(|s| s.id);

    let mut records = Vec::new();
    let mut rr = 0usize;

    while let Some(ev) = queue.pop() {
        match ev.kind {
            FleetEventKind::HostJoin { host } => {
                if let Some(s) = states.iter_mut().find(|s| s.id == host) {
                    s.joined = true;
                }
                records.push(TraceRecord::Join { at: ev.at, host });
            }
            FleetEventKind::HostLeave { host } => {
                if let Some(s) = states.iter_mut().find(|s| s.id == host) {
                    s.left = true;
                }
                records.push(TraceRecord::Leave { at: ev.at, host });
            }
            FleetEventKind::HostFail { host, duration } => {
                if let Some(s) = states.iter_mut().find(|s| s.id == host) {
                    s.down_until = s.down_until.max(ev.at + duration);
                }
                records.push(TraceRecord::Fail {
                    at: ev.at,
                    host,
                    duration,
                });
            }
            FleetEventKind::Arrival { index, job } => {
                let eligible: Vec<usize> = states
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| s.joined && !s.left && ev.at >= s.down_until)
                    .map(|(i, _)| i)
                    .collect();
                let chosen = if eligible.is_empty() {
                    None
                } else {
                    let pick = match scenario.dispatch {
                        DispatchPolicy::RoundRobin => {
                            let p = eligible[rr % eligible.len()];
                            rr += 1;
                            p
                        }
                        DispatchPolicy::LeastAssigned => *eligible
                            .iter()
                            .min_by(|&&a, &&b| {
                                states[a]
                                    .assigned_work
                                    .total_cmp(&states[b].assigned_work)
                                    .then(states[a].id.cmp(&states[b].id))
                            })
                            .expect("non-empty"),
                        DispatchPolicy::WeightedFastest => *eligible
                            .iter()
                            .max_by(|&&a, &&b| {
                                let score = |s: &HostState| s.rating / (1.0 + s.assigned_work);
                                score(&states[a])
                                    .total_cmp(&score(&states[b]))
                                    // On score ties prefer the lower id
                                    // (max_by keeps the later maximum).
                                    .then(states[b].id.cmp(&states[a].id))
                            })
                            .expect("non-empty"),
                    };
                    states[pick].assigned_work += job.work;
                    Some(states[pick].id)
                };
                records.push(TraceRecord::Arrival {
                    at: ev.at,
                    index,
                    job_id: job.id,
                    release: job.release,
                    work: job.work,
                    routed: chosen,
                });
            }
        }
    }

    EventTrace {
        seed: scenario.seed,
        records,
    }
}

/// Merge possibly-overlapping intervals (clipped to `[start, end]`)
/// in place and write the complement gaps into `gaps`.
fn idle_gaps_into(occupied: &mut Vec<(f64, f64)>, start: f64, end: f64, gaps: &mut Vec<f64>) {
    gaps.clear();
    if end <= start {
        return;
    }
    occupied.retain(|&(a, b)| b > start && a < end);
    for iv in occupied.iter_mut() {
        iv.0 = iv.0.max(start);
        iv.1 = iv.1.min(end);
    }
    // Stable sort: same tie order as the original allocating helper.
    occupied.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut cursor = start;
    for &(a, b) in occupied.iter() {
        if a > cursor {
            gaps.push(a - cursor);
        }
        cursor = cursor.max(b);
    }
    if end > cursor {
        gaps.push(end - cursor);
    }
}

/// Allocating wrapper over [`idle_gaps_into`], kept for the unit tests.
#[cfg(test)]
fn idle_gaps(mut occupied: Vec<(f64, f64)>, start: f64, end: f64) -> Vec<f64> {
    let mut gaps = Vec::new();
    idle_gaps_into(&mut occupied, start, end, &mut gaps);
    gaps
}

/// One worker's reusable buffers, cleared — not reallocated — between
/// hosts. The engine arena inside is recycled by `run_online_pooled`
/// and is observationally identical to a fresh one (pinned by
/// `pas_sim`'s recycle-equivalence tests), so pooling cannot perturb a
/// single bit of any outcome.
struct WorkerScratch {
    engine: EngineScratch,
    jobs: Vec<Job>,
    ids: Vec<u32>,
    fault_events: Vec<pas_sim::faults::FaultEvent>,
    occupied: Vec<(f64, f64)>,
    gaps: Vec<f64>,
}

impl WorkerScratch {
    fn new() -> Self {
        WorkerScratch {
            engine: EngineScratch::new(),
            jobs: Vec::new(),
            ids: Vec::new(),
            fault_events: Vec::new(),
            occupied: Vec::new(),
            gaps: Vec::new(),
        }
    }
}

/// Run one host task to a report. Pure in `(scenario, task)`; the
/// scratch only lends capacity.
fn run_host(
    scenario: &FleetScenario,
    task: &HostTask,
    scratch: &mut WorkerScratch,
) -> Result<HostReport, FleetError> {
    let cfg = scenario.host(task.host).expect("validated host");

    scratch.jobs.clear();
    scratch.ids.clear();
    for &i in &task.indices {
        let job = *scenario.workload.job(i);
        scratch.ids.push(job.id);
        scratch.jobs.push(job);
    }
    let plan = scenario.plan_from_parts(
        task.host,
        cfg.speed_cap,
        &task.crashes,
        &scratch.ids,
        std::mem::take(&mut scratch.fault_events),
    );

    let outcome = if scratch.jobs.is_empty() {
        None
    } else {
        let instance = pas_workload::Instance::new(std::mem::take(&mut scratch.jobs))
            .expect("assigned jobs form a valid instance");
        let model = cfg.power.model();
        let mut policy = cfg.policy.build(model);
        let result = run_online_pooled(
            &instance,
            model,
            policy.as_mut(),
            &plan,
            cfg.admission,
            &mut scratch.engine,
        );
        scratch.jobs = instance.into_jobs();
        match result {
            Ok(o) => Some(o),
            Err(error) => {
                scratch.fault_events = plan.into_events();
                return Err(FleetError::Host {
                    host: task.host,
                    error,
                });
            }
        }
    };

    // --- static energy over the on-window ---
    let sched_end = outcome
        .as_ref()
        .map(|o| metrics::makespan(&o.schedule))
        .unwrap_or(0.0);
    let window_start = cfg.available_from;
    let window_end = match task.leave_at {
        Some(t) => t.max(sched_end),
        None => scenario.horizon.max(sched_end),
    };
    scratch.occupied.clear();
    if let Some(o) = &outcome {
        for machine in o.schedule.machines() {
            for s in machine {
                scratch.occupied.push((s.start, s.end));
            }
        }
    }
    // A crashed host is off, not idling: downtime leaves the
    // static-power window.
    for ev in plan.events() {
        if let FaultKind::Crash { duration, .. } = ev.kind {
            scratch.occupied.push((ev.at, ev.at + duration));
        }
    }
    idle_gaps_into(
        &mut scratch.occupied,
        window_start,
        window_end,
        &mut scratch.gaps,
    );
    let mut static_energy = 0.0;
    let mut sleeps = 0usize;
    for &gap in &scratch.gaps {
        static_energy += cfg.power.gap_energy(gap);
        if cfg.power.sleeps_during(gap) {
            sleeps += 1;
        }
    }
    scratch.fault_events = plan.into_events();

    let (total_flow, digest) = match &outcome {
        Some(o) => {
            let flow = o
                .effective
                .as_ref()
                .map(|inst| metrics::total_flow(&o.schedule, inst))
                .unwrap_or(0.0);
            (flow, outcome_digest(o))
        }
        None => (0.0, 0),
    };

    Ok(HostReport {
        host: task.host,
        jobs_assigned: task.indices.len(),
        dynamic_energy: outcome.as_ref().map(|o| o.energy).unwrap_or(0.0),
        static_energy,
        sleep_transitions: sleeps,
        total_flow,
        makespan: sched_end,
        digest,
        shed_jobs: outcome
            .as_ref()
            .map(|o| o.resilience.shed_jobs)
            .unwrap_or(0),
        throttle_clamps: outcome
            .as_ref()
            .map(|o| o.resilience.throttle_clamps)
            .unwrap_or(0),
        deadline_misses: outcome
            .as_ref()
            .and_then(|o| o.resilience.deadline_misses)
            .unwrap_or(0),
        outcome,
    })
}

/// One worker: pop tasks off the shared cursor until the deque drains,
/// collecting `(slot, result)` pairs locally (scattered by the caller
/// after the join — keeps the whole pool `unsafe`-free).
#[allow(clippy::type_complexity)]
fn run_worker(
    scenario: &FleetScenario,
    tasks: &[HostTask],
    order: &[usize],
    cursor: &AtomicUsize,
) -> Vec<(usize, Result<HostReport, FleetError>)> {
    let mut scratch = WorkerScratch::new();
    let mut out = Vec::new();
    loop {
        let k = cursor.fetch_add(1, Ordering::Relaxed);
        let Some(&slot) = order.get(k) else { break };
        out.push((slot, run_host(scenario, &tasks[slot], &mut scratch)));
    }
    out
}

/// Phases 2–3: run every host's engine (in parallel), then fold
/// aggregates and the digest in fixed host-id order.
fn execute(
    scenario: &FleetScenario,
    trace: EventTrace,
    part: Partition,
    workers: usize,
    dispatch_ms: f64,
    partition_ms: f64,
) -> Result<FleetOutcome, FleetError> {
    let t_exec = Instant::now();
    let tasks = &part.tasks;
    let n = tasks.len();
    let workers = workers.max(1).min(n.max(1));

    // LPT: costliest host first; ties to the lower id so the pop order
    // itself is reproducible (results never depend on it, but a stable
    // order keeps perf runs comparable).
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        tasks[b]
            .cost
            .total_cmp(&tasks[a].cost)
            .then(tasks[a].host.cmp(&tasks[b].host))
    });

    let cursor = AtomicUsize::new(0);
    let buckets: Vec<Vec<(usize, Result<HostReport, FleetError>)>> = if workers == 1 {
        // Inline, no threads: the 1-core CI path is the same code the
        // pool runs, minus the spawn.
        vec![run_worker(scenario, tasks, &order, &cursor)]
    } else {
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| s.spawn(|| run_worker(scenario, tasks, &order, &cursor)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("fleet worker panicked"))
                .collect()
        })
    };

    // Scatter into id-order slots: each slot is written exactly once.
    let mut slots: Vec<Option<Result<HostReport, FleetError>>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    for bucket in buckets {
        for (slot, result) in bucket {
            debug_assert!(slots[slot].is_none(), "task executed twice");
            slots[slot] = Some(result);
        }
    }
    let execute_ms = ms(t_exec);

    let t_reduce = Instant::now();
    // Fold in host-id order. On failure surface the lowest-id erroring
    // host — exactly the error the old sequential first-failure-stops
    // loop reported, whatever order the pool actually ran in.
    let mut reports = Vec::with_capacity(n);
    for slot in slots {
        match slot.expect("every task executed") {
            Ok(report) => reports.push(report),
            Err(e) => return Err(e),
        }
    }

    let fleet_shed_jobs = part.shed_jobs;
    let fleet_shed_work = part.shed_work;
    let dynamic_energy: f64 = reports.iter().map(|r| r.dynamic_energy).sum();
    let static_energy: f64 = reports.iter().map(|r| r.static_energy).sum();
    let total_flow: f64 = reports.iter().map(|r| r.total_flow).sum();
    let makespan = reports.iter().map(|r| r.makespan).fold(0.0, f64::max);
    let completed_jobs = reports
        .iter()
        .map(|r| {
            r.outcome
                .as_ref()
                .map(|o| o.schedule.completion_times().len())
                .unwrap_or(0)
        })
        .sum();

    let mut fnv = Fnv::new();
    fnv.bytes(trace.serialize().as_bytes());
    for r in &reports {
        fnv.u64(u64::from(r.host));
        fnv.u64(r.digest);
        fnv.f64(r.static_energy);
        fnv.u64(r.sleep_transitions as u64);
    }
    fnv.u64(fleet_shed_jobs as u64);
    fnv.f64(fleet_shed_work);
    fnv.f64(dynamic_energy);
    fnv.f64(total_flow);
    let digest = fnv.0;
    let reduce_ms = ms(t_reduce);

    Ok(FleetOutcome {
        hosts: reports,
        trace,
        fleet_shed_jobs,
        fleet_shed_work,
        dynamic_energy,
        static_energy,
        total_flow,
        makespan,
        completed_jobs,
        digest,
        workers,
        timings: PhaseBreakdown {
            dispatch_ms,
            partition_ms,
            execute_ms,
            reduce_ms,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::{EnginePower, HostConfig};
    use pas_power::{HostPower, PolyPower};
    use pas_sim::faults::FaultModel;
    use pas_workload::Instance;

    fn hosts(n: u32) -> Vec<HostConfig> {
        (0..n)
            .map(|id| {
                HostConfig::new(
                    id,
                    HostPower::dynamic_only(EnginePower::Poly(PolyPower::CUBE)),
                )
            })
            .collect()
    }

    fn workload(n: usize) -> Instance {
        Instance::new(
            (0..n)
                .map(|i| Job::new(i as u32, i as f64 * 0.5, 1.0))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn round_robin_spreads_jobs() {
        let s = FleetScenario::new(hosts(3), workload(9), 20.0, 1);
        let out = run(&s).unwrap();
        assert_eq!(out.fleet_shed_jobs, 0);
        for h in &out.hosts {
            assert_eq!(h.jobs_assigned, 3, "round-robin must spread evenly");
        }
        assert_eq!(out.completed_jobs, 9);
        assert!(out.dynamic_energy > 0.0);
        assert_eq!(out.static_energy, 0.0, "dynamic-only hosts");
    }

    #[test]
    fn least_assigned_balances_work() {
        let mut s = FleetScenario::new(hosts(2), workload(8), 20.0, 3);
        s.dispatch = DispatchPolicy::LeastAssigned;
        let out = run(&s).unwrap();
        let a = out.hosts[0].jobs_assigned;
        let b = out.hosts[1].jobs_assigned;
        assert_eq!(a + b, 8);
        assert_eq!(a, 4);
        assert_eq!(b, 4);
    }

    #[test]
    fn no_eligible_host_sheds_at_the_frontier() {
        let mut hs = hosts(1);
        hs[0].available_from = 100.0; // joins long after the workload
        let s = FleetScenario::new(hs, workload(4), 200.0, 1);
        let out = run(&s).unwrap();
        assert_eq!(out.fleet_shed_jobs, 4);
        assert!((out.fleet_shed_work - 4.0).abs() < 1e-12);
        assert_eq!(out.completed_jobs, 0);
        assert_eq!(out.hosts[0].digest, 0);
    }

    #[test]
    fn idle_gap_helper_merges_and_clips() {
        // Window [0, 10], busy [2,4] and [3,5], down [8,12].
        let gaps = idle_gaps(vec![(2.0, 4.0), (3.0, 5.0), (8.0, 12.0)], 0.0, 10.0);
        assert_eq!(gaps, vec![2.0, 3.0]);
        assert!(idle_gaps(vec![], 5.0, 5.0).is_empty());
        assert_eq!(idle_gaps(vec![], 0.0, 7.0), vec![7.0]);
    }

    #[test]
    fn replay_rejects_mismatched_seed_and_workload() {
        let s = FleetScenario::new(hosts(2), workload(4), 20.0, 1);
        let out = run(&s).unwrap();
        let mut wrong_seed = s.clone();
        wrong_seed.seed = 2;
        assert!(matches!(
            replay(&wrong_seed, &out.trace),
            Err(FleetError::TraceMismatch { .. })
        ));
        let mut wrong_jobs = s.clone();
        wrong_jobs.workload =
            Instance::new(vec![Job::new(0, 0.0, 9.0), Job::new(1, 0.5, 1.0)]).unwrap();
        assert!(matches!(
            replay(&wrong_jobs, &out.trace),
            Err(FleetError::TraceMismatch { .. })
        ));
    }

    #[test]
    fn every_worker_count_agrees_bit_for_bit() {
        let mut s = FleetScenario::new(hosts(5), workload(40), 40.0, 7);
        s.fault_model = Some(FaultModel::uniform_mix(0.3));
        s.slo = Some(25.0);
        s.hosts[2].speed_cap = Some(0.8);
        s.events.push(FleetEvent {
            at: 3.0,
            kind: FleetEventKind::HostFail {
                host: 1,
                duration: 2.0,
            },
        });
        s.events.push(FleetEvent {
            at: 15.0,
            kind: FleetEventKind::HostLeave { host: 4 },
        });
        let base = run_with(&s, 1).unwrap();
        assert_eq!(base.workers, 1);
        for workers in [2, 3, 8] {
            let out = run_with(&s, workers).unwrap();
            assert_eq!(out.digest, base.digest, "workers={workers}");
            assert_eq!(out.trace, base.trace);
            for (a, b) in base.hosts.iter().zip(&out.hosts) {
                assert_eq!(a.host, b.host);
                assert_eq!(a.digest, b.digest);
                assert_eq!(a.static_energy.to_bits(), b.static_energy.to_bits());
                assert_eq!(a.total_flow.to_bits(), b.total_flow.to_bits());
            }
            let replayed = replay_with(&s, &base.trace, workers).unwrap();
            assert_eq!(replayed.digest, base.digest);
        }
    }

    #[test]
    fn default_workers_honours_env_contract() {
        // Can't mutate the environment safely in a threaded test
        // runner; assert the fallback floor instead.
        assert!(default_workers() >= 1);
    }

    #[test]
    fn timings_are_recorded_and_excluded_from_digest() {
        let s = FleetScenario::new(hosts(3), workload(12), 20.0, 1);
        let out = run_with(&s, 2).unwrap();
        assert!(out.timings.total_ms() >= 0.0);
        assert!(out.timings.execute_ms >= 0.0);
        let again = run_with(&s, 2).unwrap();
        // Wall times differ run to run; digests must not.
        assert_eq!(out.digest, again.digest);
    }
}
