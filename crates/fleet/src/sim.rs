//! The fleet run: dispatch phase, per-host engine phase, aggregation.
//!
//! A run is **two deterministic phases**:
//!
//! 1. **Dispatch** — the event calendar (workload arrivals, host
//!    joins/leaves/failures) is drained in monotone, seed-tie-broken
//!    order ([`crate::event::EventQueue`]); the dispatcher routes every
//!    arrival to an eligible host (joined, not departed, not down) per
//!    the scenario's [`DispatchPolicy`]. Every processed event and
//!    every routing decision is appended to an [`EventTrace`].
//! 2. **Execute** — each host, in id order, runs the ordinary
//!    `pas_sim` single-machine online engine over its assigned jobs
//!    under its own power model, policy, and fault plan
//!    ([`FleetScenario::host_plan`]), then static idle/sleep energy is
//!    charged over the host's on-window gaps via
//!    [`pas_power::HostPower::gap_energy`].
//!
//! [`replay`] skips phase 1 and takes routing from a recorded trace;
//! because phase 2 is a pure function of `(scenario, assignments)` and
//! the fleet digest hashes the serialized trace plus the per-host
//! outcome digests, record→replay reproduces the digest bit-for-bit.
//!
//! A deliberate modelling note: hosts that were assigned **no** jobs
//! never spin up an engine, so background-fault arrival bursts on idle
//! hosts are not materialized (bursts are engine-injected load); their
//! crashes still subtract from the idle window, since a crashed host is
//! off, not idling.

use std::collections::BTreeMap;

use pas_sim::faults::FaultKind;
use pas_sim::journal::outcome_digest;
use pas_sim::metrics;
use pas_sim::online::{run_online_gated, run_online_with_faults, OnlineOutcome, SimError};
use pas_workload::Job;

use crate::event::{EventQueue, FleetEvent, FleetEventKind};
use crate::scenario::{DispatchPolicy, FleetScenario, ScenarioError};
use crate::trace::{EventTrace, TraceRecord};

/// Fleet-run failures.
#[derive(Debug)]
pub enum FleetError {
    /// The scenario failed validation.
    Scenario(ScenarioError),
    /// A host's engine run failed.
    Host {
        /// The host whose engine failed.
        host: u32,
        /// The underlying simulation error.
        error: SimError,
    },
    /// A replay trace does not match the scenario.
    TraceMismatch {
        /// Explanation.
        reason: String,
    },
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::Scenario(e) => write!(f, "invalid scenario: {e}"),
            FleetError::Host { host, error } => write!(f, "host {host}: {error}"),
            FleetError::TraceMismatch { reason } => write!(f, "trace mismatch: {reason}"),
        }
    }
}

impl std::error::Error for FleetError {}

impl From<ScenarioError> for FleetError {
    fn from(e: ScenarioError) -> Self {
        FleetError::Scenario(e)
    }
}

/// One host's share of a fleet run.
#[derive(Debug)]
pub struct HostReport {
    /// Host id.
    pub host: u32,
    /// Jobs routed to this host.
    pub jobs_assigned: usize,
    /// Engine-metered dynamic energy.
    pub dynamic_energy: f64,
    /// Idle/sleep static energy over the host's on-window.
    pub static_energy: f64,
    /// Number of idle gaps long enough to trigger a sleep transition.
    pub sleep_transitions: usize,
    /// Sum of job flows (`C_i − r_i`) against the host's effective
    /// instance.
    pub total_flow: f64,
    /// Completion time of the host's last slice (0 when idle all run).
    pub makespan: f64,
    /// `pas_sim::outcome_digest` of the engine outcome (0 when no
    /// engine ran).
    pub digest: u64,
    /// Jobs shed by this host's admission gate.
    pub shed_jobs: usize,
    /// Speed-cap / throttle clamps applied.
    pub throttle_clamps: usize,
    /// SLO misses charged to this host.
    pub deadline_misses: usize,
    /// The full engine outcome (`None` when the host ran nothing).
    pub outcome: Option<OnlineOutcome>,
}

/// Aggregated result of a fleet run.
#[derive(Debug)]
pub struct FleetOutcome {
    /// Per-host reports, in host-id order.
    pub hosts: Vec<HostReport>,
    /// The recorded (or replayed) event trace.
    pub trace: EventTrace,
    /// Arrivals no eligible host could take.
    pub fleet_shed_jobs: usize,
    /// Work of those arrivals.
    pub fleet_shed_work: f64,
    /// Total engine-metered dynamic energy.
    pub dynamic_energy: f64,
    /// Total idle/sleep static energy.
    pub static_energy: f64,
    /// Total flow across hosts.
    pub total_flow: f64,
    /// Latest completion across hosts.
    pub makespan: f64,
    /// Jobs completed (appearing in a host schedule) across the fleet.
    pub completed_jobs: usize,
    /// The fleet digest: FNV-1a over the serialized trace, the per-host
    /// outcome digests and static energies, and the aggregates. Two
    /// runs agree on this iff they agree on every event, routing
    /// decision, schedule bit, and energy bit.
    pub digest: u64,
}

impl FleetOutcome {
    /// Dynamic + static energy.
    pub fn total_energy(&self) -> f64 {
        self.dynamic_energy + self.static_energy
    }

    /// Total jobs shed anywhere: unroutable at the fleet frontier plus
    /// per-host admission sheds.
    pub fn shed_jobs(&self) -> usize {
        self.fleet_shed_jobs + self.hosts.iter().map(|h| h.shed_jobs).sum::<usize>()
    }
}

/// FNV-1a 64-bit, the workspace digest idiom.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn bytes(&mut self, data: &[u8]) {
        for &b in data {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }
    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
}

/// Dispatch-phase state for one host.
struct HostState {
    id: u32,
    joined: bool,
    left: bool,
    down_until: f64,
    assigned: Vec<usize>,
    assigned_work: f64,
    rating: f64,
}

/// Run a scenario end to end (dispatch + execute).
///
/// # Errors
/// [`FleetError`] on an invalid scenario or a host engine failure.
pub fn run(scenario: &FleetScenario) -> Result<FleetOutcome, FleetError> {
    scenario.validate()?;
    let (trace, assignments, shed_jobs, shed_work) = dispatch(scenario);
    execute(scenario, trace, &assignments, shed_jobs, shed_work)
}

/// Replay a recorded trace against the same scenario: phase 1 is taken
/// verbatim from the trace (routing included), phase 2 re-executes.
///
/// # Errors
/// [`FleetError::TraceMismatch`] when the trace's seed or arrival
/// records disagree with the scenario (bit-exact comparison);
/// otherwise as [`run`].
pub fn replay(scenario: &FleetScenario, trace: &EventTrace) -> Result<FleetOutcome, FleetError> {
    scenario.validate()?;
    if trace.seed != scenario.seed {
        return Err(FleetError::TraceMismatch {
            reason: format!(
                "trace seed {:016x} != scenario seed {:016x}",
                trace.seed, scenario.seed
            ),
        });
    }
    let mut assignments: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
    for h in &scenario.hosts {
        assignments.insert(h.id, Vec::new());
    }
    let mut shed_jobs = 0usize;
    let mut shed_work = 0.0f64;
    for rec in &trace.records {
        if let TraceRecord::Arrival {
            index,
            job_id,
            release,
            work,
            routed,
            ..
        } = rec
        {
            if *index >= scenario.workload.len() {
                return Err(FleetError::TraceMismatch {
                    reason: format!("arrival index {index} out of range"),
                });
            }
            let job = scenario.workload.job(*index);
            if job.id != *job_id
                || job.release.to_bits() != release.to_bits()
                || job.work.to_bits() != work.to_bits()
            {
                return Err(FleetError::TraceMismatch {
                    reason: format!("arrival {index} does not match the scenario workload"),
                });
            }
            match routed {
                Some(host) => match assignments.get_mut(host) {
                    Some(list) => list.push(*index),
                    None => {
                        return Err(FleetError::TraceMismatch {
                            reason: format!("arrival {index} routed to unknown host {host}"),
                        })
                    }
                },
                None => {
                    shed_jobs += 1;
                    shed_work += job.work;
                }
            }
        }
    }
    execute(scenario, trace.clone(), &assignments, shed_jobs, shed_work)
}

/// Phase 1: drain the calendar, route arrivals, record the trace.
fn dispatch(scenario: &FleetScenario) -> (EventTrace, BTreeMap<u32, Vec<usize>>, usize, f64) {
    let mut queue = EventQueue::new(scenario.seed);
    for h in &scenario.hosts {
        queue.push(FleetEvent {
            at: h.available_from,
            kind: FleetEventKind::HostJoin { host: h.id },
        });
    }
    for (index, job) in scenario.workload.jobs().iter().enumerate() {
        queue.push(FleetEvent {
            at: job.release,
            kind: FleetEventKind::Arrival { index, job: *job },
        });
    }
    for ev in &scenario.events {
        queue.push(ev.clone());
    }

    // Host states in id order (the canonical eligibility scan order).
    let mut states: Vec<HostState> = scenario
        .hosts
        .iter()
        .map(|h| HostState {
            id: h.id,
            joined: false,
            left: false,
            down_until: f64::NEG_INFINITY,
            assigned: Vec::new(),
            assigned_work: 0.0,
            rating: h.speed_rating(),
        })
        .collect();
    states.sort_by_key(|s| s.id);

    let mut records = Vec::new();
    let mut rr = 0usize;
    let mut shed_jobs = 0usize;
    let mut shed_work = 0.0f64;

    while let Some(ev) = queue.pop() {
        match ev.kind {
            FleetEventKind::HostJoin { host } => {
                if let Some(s) = states.iter_mut().find(|s| s.id == host) {
                    s.joined = true;
                }
                records.push(TraceRecord::Join { at: ev.at, host });
            }
            FleetEventKind::HostLeave { host } => {
                if let Some(s) = states.iter_mut().find(|s| s.id == host) {
                    s.left = true;
                }
                records.push(TraceRecord::Leave { at: ev.at, host });
            }
            FleetEventKind::HostFail { host, duration } => {
                if let Some(s) = states.iter_mut().find(|s| s.id == host) {
                    s.down_until = s.down_until.max(ev.at + duration);
                }
                records.push(TraceRecord::Fail {
                    at: ev.at,
                    host,
                    duration,
                });
            }
            FleetEventKind::Arrival { index, job } => {
                let eligible: Vec<usize> = states
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| s.joined && !s.left && ev.at >= s.down_until)
                    .map(|(i, _)| i)
                    .collect();
                let chosen = if eligible.is_empty() {
                    None
                } else {
                    let pick = match scenario.dispatch {
                        DispatchPolicy::RoundRobin => {
                            let p = eligible[rr % eligible.len()];
                            rr += 1;
                            p
                        }
                        DispatchPolicy::LeastAssigned => *eligible
                            .iter()
                            .min_by(|&&a, &&b| {
                                states[a]
                                    .assigned_work
                                    .total_cmp(&states[b].assigned_work)
                                    .then(states[a].id.cmp(&states[b].id))
                            })
                            .expect("non-empty"),
                        DispatchPolicy::WeightedFastest => *eligible
                            .iter()
                            .max_by(|&&a, &&b| {
                                let score = |s: &HostState| s.rating / (1.0 + s.assigned_work);
                                score(&states[a])
                                    .total_cmp(&score(&states[b]))
                                    // On score ties prefer the lower id
                                    // (max_by keeps the later maximum).
                                    .then(states[b].id.cmp(&states[a].id))
                            })
                            .expect("non-empty"),
                    };
                    states[pick].assigned.push(index);
                    states[pick].assigned_work += job.work;
                    Some(states[pick].id)
                };
                if chosen.is_none() {
                    shed_jobs += 1;
                    shed_work += job.work;
                }
                records.push(TraceRecord::Arrival {
                    at: ev.at,
                    index,
                    job_id: job.id,
                    release: job.release,
                    work: job.work,
                    routed: chosen,
                });
            }
        }
    }

    let assignments: BTreeMap<u32, Vec<usize>> =
        states.into_iter().map(|s| (s.id, s.assigned)).collect();
    let trace = EventTrace {
        seed: scenario.seed,
        records,
    };
    (trace, assignments, shed_jobs, shed_work)
}

/// Merge possibly-overlapping intervals (already clipped) and return
/// the complement gaps within `[start, end]`.
fn idle_gaps(mut occupied: Vec<(f64, f64)>, start: f64, end: f64) -> Vec<f64> {
    if end <= start {
        return Vec::new();
    }
    occupied.retain(|&(a, b)| b > start && a < end);
    for iv in &mut occupied {
        iv.0 = iv.0.max(start);
        iv.1 = iv.1.min(end);
    }
    occupied.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut gaps = Vec::new();
    let mut cursor = start;
    for (a, b) in occupied {
        if a > cursor {
            gaps.push(a - cursor);
        }
        cursor = cursor.max(b);
    }
    if end > cursor {
        gaps.push(end - cursor);
    }
    gaps
}

/// Phase 2: run every host's engine, charge static power, aggregate.
fn execute(
    scenario: &FleetScenario,
    trace: EventTrace,
    assignments: &BTreeMap<u32, Vec<usize>>,
    fleet_shed_jobs: usize,
    fleet_shed_work: f64,
) -> Result<FleetOutcome, FleetError> {
    let mut reports = Vec::with_capacity(scenario.hosts.len());

    let mut ids: Vec<u32> = scenario.hosts.iter().map(|h| h.id).collect();
    ids.sort_unstable();

    for host_id in ids {
        let cfg = scenario.host(host_id).expect("validated host");
        let mut indices = assignments.get(&host_id).cloned().unwrap_or_default();
        // Dispatch appends in event-pop order, which shuffles
        // same-release ties by seed; the workload's canonical order is
        // by index (Instance::new stable-sorts by release, preserving
        // insertion order on ties), so sorting by index makes a
        // single-host fleet's sub-instance *identical* to the workload
        // — the bare-engine equivalence the harness pins.
        indices.sort_unstable();

        let jobs: Vec<Job> = indices.iter().map(|&i| *scenario.workload.job(i)).collect();
        let candidate_ids: Vec<u32> = jobs.iter().map(|j| j.id).collect();
        let plan = scenario.host_plan(host_id, &candidate_ids);

        let outcome = if jobs.is_empty() {
            None
        } else {
            let instance =
                pas_workload::Instance::new(jobs).expect("assigned jobs form a valid instance");
            let model = cfg.power.model();
            let mut policy = cfg.policy.build(model);
            let result = match cfg.admission {
                Some(adm) => run_online_gated(&instance, model, policy.as_mut(), &plan, adm),
                None => run_online_with_faults(&instance, model, policy.as_mut(), &plan),
            };
            Some(result.map_err(|error| FleetError::Host {
                host: host_id,
                error,
            })?)
        };

        // --- static energy over the on-window ---
        let sched_end = outcome
            .as_ref()
            .map(|o| metrics::makespan(&o.schedule))
            .unwrap_or(0.0);
        let leave_at = scenario.events.iter().find_map(|ev| match ev.kind {
            FleetEventKind::HostLeave { host } if host == host_id => Some(ev.at),
            _ => None,
        });
        let window_start = cfg.available_from;
        let window_end = match leave_at {
            Some(t) => t.max(sched_end),
            None => scenario.horizon.max(sched_end),
        };
        let mut occupied: Vec<(f64, f64)> = Vec::new();
        if let Some(o) = &outcome {
            for machine in o.schedule.machines() {
                for s in machine {
                    occupied.push((s.start, s.end));
                }
            }
        }
        // A crashed host is off, not idling: downtime leaves the
        // static-power window.
        for ev in plan.events() {
            if let FaultKind::Crash { duration, .. } = ev.kind {
                occupied.push((ev.at, ev.at + duration));
            }
        }
        let mut static_energy = 0.0;
        let mut sleeps = 0usize;
        for gap in idle_gaps(occupied, window_start, window_end) {
            static_energy += cfg.power.gap_energy(gap);
            if cfg.power.sleeps_during(gap) {
                sleeps += 1;
            }
        }

        let (total_flow, digest) = match &outcome {
            Some(o) => {
                let flow = o
                    .effective
                    .as_ref()
                    .map(|inst| metrics::total_flow(&o.schedule, inst))
                    .unwrap_or(0.0);
                (flow, outcome_digest(o))
            }
            None => (0.0, 0),
        };

        reports.push(HostReport {
            host: host_id,
            jobs_assigned: indices.len(),
            dynamic_energy: outcome.as_ref().map(|o| o.energy).unwrap_or(0.0),
            static_energy,
            sleep_transitions: sleeps,
            total_flow,
            makespan: sched_end,
            digest,
            shed_jobs: outcome
                .as_ref()
                .map(|o| o.resilience.shed_jobs)
                .unwrap_or(0),
            throttle_clamps: outcome
                .as_ref()
                .map(|o| o.resilience.throttle_clamps)
                .unwrap_or(0),
            deadline_misses: outcome
                .as_ref()
                .and_then(|o| o.resilience.deadline_misses)
                .unwrap_or(0),
            outcome,
        });
    }

    let dynamic_energy: f64 = reports.iter().map(|r| r.dynamic_energy).sum();
    let static_energy: f64 = reports.iter().map(|r| r.static_energy).sum();
    let total_flow: f64 = reports.iter().map(|r| r.total_flow).sum();
    let makespan = reports.iter().map(|r| r.makespan).fold(0.0, f64::max);
    let completed_jobs = reports
        .iter()
        .map(|r| {
            r.outcome
                .as_ref()
                .map(|o| o.schedule.completion_times().len())
                .unwrap_or(0)
        })
        .sum();

    let mut fnv = Fnv::new();
    fnv.bytes(trace.serialize().as_bytes());
    for r in &reports {
        fnv.u64(u64::from(r.host));
        fnv.u64(r.digest);
        fnv.f64(r.static_energy);
        fnv.u64(r.sleep_transitions as u64);
    }
    fnv.u64(fleet_shed_jobs as u64);
    fnv.f64(fleet_shed_work);
    fnv.f64(dynamic_energy);
    fnv.f64(total_flow);
    let digest = fnv.0;

    Ok(FleetOutcome {
        hosts: reports,
        trace,
        fleet_shed_jobs,
        fleet_shed_work,
        dynamic_energy,
        static_energy,
        total_flow,
        makespan,
        completed_jobs,
        digest,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::{EnginePower, HostConfig};
    use pas_power::{HostPower, PolyPower};
    use pas_workload::Instance;

    fn hosts(n: u32) -> Vec<HostConfig> {
        (0..n)
            .map(|id| {
                HostConfig::new(
                    id,
                    HostPower::dynamic_only(EnginePower::Poly(PolyPower::CUBE)),
                )
            })
            .collect()
    }

    fn workload(n: usize) -> Instance {
        Instance::new(
            (0..n)
                .map(|i| Job::new(i as u32, i as f64 * 0.5, 1.0))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn round_robin_spreads_jobs() {
        let s = FleetScenario::new(hosts(3), workload(9), 20.0, 1);
        let out = run(&s).unwrap();
        assert_eq!(out.fleet_shed_jobs, 0);
        for h in &out.hosts {
            assert_eq!(h.jobs_assigned, 3, "round-robin must spread evenly");
        }
        assert_eq!(out.completed_jobs, 9);
        assert!(out.dynamic_energy > 0.0);
        assert_eq!(out.static_energy, 0.0, "dynamic-only hosts");
    }

    #[test]
    fn least_assigned_balances_work() {
        let mut s = FleetScenario::new(hosts(2), workload(8), 20.0, 3);
        s.dispatch = DispatchPolicy::LeastAssigned;
        let out = run(&s).unwrap();
        let a = out.hosts[0].jobs_assigned;
        let b = out.hosts[1].jobs_assigned;
        assert_eq!(a + b, 8);
        assert_eq!(a, 4);
        assert_eq!(b, 4);
    }

    #[test]
    fn no_eligible_host_sheds_at_the_frontier() {
        let mut hs = hosts(1);
        hs[0].available_from = 100.0; // joins long after the workload
        let s = FleetScenario::new(hs, workload(4), 200.0, 1);
        let out = run(&s).unwrap();
        assert_eq!(out.fleet_shed_jobs, 4);
        assert!((out.fleet_shed_work - 4.0).abs() < 1e-12);
        assert_eq!(out.completed_jobs, 0);
        assert_eq!(out.hosts[0].digest, 0);
    }

    #[test]
    fn idle_gap_helper_merges_and_clips() {
        // Window [0, 10], busy [2,4] and [3,5], down [8,12].
        let gaps = idle_gaps(vec![(2.0, 4.0), (3.0, 5.0), (8.0, 12.0)], 0.0, 10.0);
        assert_eq!(gaps, vec![2.0, 3.0]);
        assert!(idle_gaps(vec![], 5.0, 5.0).is_empty());
        assert_eq!(idle_gaps(vec![], 0.0, 7.0), vec![7.0]);
    }

    #[test]
    fn replay_rejects_mismatched_seed_and_workload() {
        let s = FleetScenario::new(hosts(2), workload(4), 20.0, 1);
        let out = run(&s).unwrap();
        let mut wrong_seed = s.clone();
        wrong_seed.seed = 2;
        assert!(matches!(
            replay(&wrong_seed, &out.trace),
            Err(FleetError::TraceMismatch { .. })
        ));
        let mut wrong_jobs = s.clone();
        wrong_jobs.workload =
            Instance::new(vec![Job::new(0, 0.0, 9.0), Job::new(1, 0.5, 1.0)]).unwrap();
        assert!(matches!(
            replay(&wrong_jobs, &out.trace),
            Err(FleetError::TraceMismatch { .. })
        ));
    }
}
