//! # pas-fleet — deterministic discrete-event fleet simulation
//!
//! A fleet of heterogeneous hosts, each running the ordinary `pas_sim`
//! single-machine online engine behind a dispatcher, under host-level
//! power envelopes ([`pas_power::HostPower`]: idle floors, sleep
//! states) and per-host power models (continuous `σ^α` or
//! [`pas_power::DiscreteSpeeds`] ladders).
//!
//! The design splits a run into two deterministic phases (see
//! [`sim`]): an event-calendar **dispatch** phase with seeded
//! tie-breaking ([`event::EventQueue`]) that records every decision
//! into a bit-exact [`trace::EventTrace`], and an **execute** phase
//! that is a pure function of the resulting assignments. That split is
//! what the differential harness leans on:
//!
//! - same seed → bit-identical trace and fleet digest ([`run`]);
//! - a single-host fleet is bit-identical to the bare engine;
//! - `record → serialize → parse → [`replay`]` reproduces the digest;
//! - a hand-computable golden oracle pins idle/sleep energy accounting.
//!
//! Simulated time is advanced only by event timestamps — wall-clock
//! time appears nowhere in this crate.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod event;
pub mod host;
pub mod scenario;
pub mod sim;
pub mod trace;

pub use event::{EventQueue, FleetEvent, FleetEventKind};
pub use host::{EnginePower, FixedSpeed, HostConfig, HostPolicy};
pub use scenario::{DispatchPolicy, FleetScenario, ScenarioError};
pub use sim::{replay, run, FleetError, FleetOutcome, HostReport};
pub use trace::{EventTrace, TraceParseError, TraceRecord};
