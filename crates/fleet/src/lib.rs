//! # pas-fleet — deterministic discrete-event fleet simulation
//!
//! A fleet of heterogeneous hosts, each running the ordinary `pas_sim`
//! single-machine online engine behind a dispatcher, under host-level
//! power envelopes ([`pas_power::HostPower`]: idle floors, sleep
//! states) and per-host power models (continuous `σ^α` or
//! [`pas_power::DiscreteSpeeds`] ladders).
//!
//! The design splits a run into deterministic phases (see [`sim`]): an
//! event-calendar **dispatch** phase with seeded tie-breaking
//! ([`event::EventQueue`]) that records every decision into a bit-exact
//! [`trace::EventTrace`], a grouped **partition** pass that turns the
//! trace into per-host tasks, and an **execute** phase that is a pure
//! function of each `(scenario, task)` pair — and therefore runs on a
//! worker pool ([`run_with`]) with worker-local scratch, reduced in
//! fixed host-id order. That structure is what the differential
//! harness leans on:
//!
//! - same seed → bit-identical trace and fleet digest ([`run`]), for
//!   **every worker count including 1**;
//! - a single-host fleet is bit-identical to the bare engine;
//! - `record → serialize → parse → [`replay`]` reproduces the digest;
//! - a hand-computable golden oracle pins idle/sleep energy accounting.
//!
//! Simulated time is advanced only by event timestamps — wall-clock
//! time is *measured* (the [`PhaseBreakdown`] in every outcome) but is
//! never an input to the simulation and never enters a digest.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod event;
pub mod host;
mod partition;
pub mod scenario;
pub mod sim;
pub mod trace;

pub use event::{EventQueue, FleetEvent, FleetEventKind};
pub use host::{EnginePower, FixedSpeed, HostConfig, HostPolicy};
pub use scenario::{DispatchPolicy, FleetScenario, ScenarioError};
pub use sim::{
    default_workers, replay, replay_with, run, run_with, FleetError, FleetOutcome, HostReport,
    PhaseBreakdown,
};
pub use trace::{ArrivalView, EventTrace, TraceParseError, TraceRecord};
