//! Discrete speed sets: what real DVFS hardware offers.
//!
//! The paper's introduction quotes the AMD Athlon 64 data sheet (2000,
//! 1800, 800 MHz) and §6 lists discrete speeds as the most obvious gap
//! between the continuous model and real systems. [`DiscreteSpeeds`]
//! couples a finite speed list with an underlying continuous
//! [`PowerModel`]; the two-adjacent-level emulation in
//! `pas-core::discrete` uses it to round continuous-optimal schedules to
//! hardware-executable ones (a standard construction: by convexity, a
//! target speed is optimally emulated by time-slicing the two levels that
//! bracket it).

use crate::model::PowerModel;

/// A finite, strictly increasing set of legal speeds over a continuous
/// power curve.
#[derive(Debug, Clone)]
pub struct DiscreteSpeeds<M> {
    model: M,
    levels: Vec<f64>,
}

/// The AMD Athlon 64 frequency table from the paper's introduction,
/// normalized to GHz.
pub const ATHLON64_GHZ: [f64; 3] = [0.8, 1.8, 2.0];

impl<M: PowerModel> DiscreteSpeeds<M> {
    /// Build from a speed list (sorted and deduplicated automatically).
    ///
    /// # Panics
    /// If `levels` is empty or contains a non-finite or non-positive
    /// entry.
    pub fn new(model: M, mut levels: Vec<f64>) -> Self {
        assert!(!levels.is_empty(), "at least one speed level required");
        assert!(
            levels.iter().all(|s| s.is_finite() && *s > 0.0),
            "all speed levels must be finite and positive: {levels:?}"
        );
        levels.sort_by(|a, b| a.partial_cmp(b).expect("finite levels"));
        levels.dedup();
        DiscreteSpeeds { model, levels }
    }

    /// Evenly spaced levels `max/k, 2·max/k, …, max` — the synthetic
    /// ladders used by the §6 level-count experiments.
    pub fn uniform(model: M, k: usize, max: f64) -> Self {
        assert!(k >= 1, "need at least one level");
        let levels = (1..=k).map(|i| max * i as f64 / k as f64).collect();
        DiscreteSpeeds::new(model, levels)
    }

    /// The sorted speed levels.
    pub fn levels(&self) -> &[f64] {
        &self.levels
    }

    /// The continuous model the levels are drawn from.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Highest available speed.
    pub fn max_speed(&self) -> f64 {
        *self.levels.last().expect("non-empty")
    }

    /// Lowest available speed.
    pub fn min_speed(&self) -> f64 {
        self.levels[0]
    }

    /// The pair of adjacent levels bracketing `target`, as indices
    /// `(lo, hi)` into [`DiscreteSpeeds::levels`].
    ///
    /// * `target` below the lowest level brackets to `(0, 0)`;
    /// * above the highest to `(last, last)`;
    /// * exact hits return `(i, i)`.
    pub fn bracketing_levels(&self, target: f64) -> (usize, usize) {
        let n = self.levels.len();
        match self
            .levels
            .binary_search_by(|s| s.partial_cmp(&target).expect("finite"))
        {
            Ok(i) => (i, i),
            Err(0) => (0, 0),
            Err(i) if i == n => (n - 1, n - 1),
            Err(i) => (i - 1, i),
        }
    }

    /// Time split emulating constant speed `target` for `work` units:
    /// returns `(t_lo, t_hi)`, the durations to spend at the bracketing
    /// lower/upper levels so total time and total work both match the
    /// continuous execution. When `target` is outside the level range the
    /// nearest level is used alone and **total time changes** (the
    /// returned durations still complete the work).
    pub fn two_level_split(&self, work: f64, target: f64) -> TwoLevelSplit {
        let (i, j) = self.bracketing_levels(target);
        let (lo, hi) = (self.levels[i], self.levels[j]);
        if i == j {
            return TwoLevelSplit {
                lo_speed: lo,
                hi_speed: hi,
                lo_time: if (lo - target).abs() <= f64::EPSILON * target.abs() {
                    work / lo
                } else {
                    // Outside the ladder: run everything at the nearest level.
                    work / lo
                },
                hi_time: 0.0,
                exact: (lo - target).abs() <= 1e-12 * target.abs().max(1.0),
            };
        }
        // Solve t_lo + t_hi = work/target (same duration) and
        // lo·t_lo + hi·t_hi = work (same work).
        let duration = work / target;
        let hi_time = (work - lo * duration) / (hi - lo);
        let lo_time = duration - hi_time;
        TwoLevelSplit {
            lo_speed: lo,
            hi_speed: hi,
            lo_time,
            hi_time,
            exact: true,
        }
    }

    /// Energy of a [`TwoLevelSplit`] under the underlying model.
    pub fn split_energy(&self, split: &TwoLevelSplit) -> f64 {
        self.model.power(split.lo_speed) * split.lo_time
            + self.model.power(split.hi_speed) * split.hi_time
    }

    /// Largest ratio between adjacent levels, `max_i s_{i+1}/s_i` (`1.0`
    /// for a single-level ladder).
    ///
    /// This is the ladder's "coarseness": for an underlying
    /// [`crate::PolyPower`] with exponent `α`, the emulation curve of the
    /// [`PowerModel`] impl below is sandwiched as
    /// `model.power(σ) ≤ ladder.power(σ) ≤ r^α · model.power(σ)` with
    /// `r = max_adjacent_ratio()`, which is what the proptest bracketing
    /// family in `crates/power/tests` pins across every solver entry.
    pub fn max_adjacent_ratio(&self) -> f64 {
        self.levels
            .windows(2)
            .map(|w| w[1] / w[0])
            .fold(1.0, f64::max)
    }
}

/// The two-level emulation power curve, as a [`PowerModel`].
///
/// For a target speed inside the ladder range, the cheapest
/// hardware-executable emulation time-slices the two adjacent levels
/// bracketing it ([`DiscreteSpeeds::two_level_split`]); its average power
/// over the emulation window is exactly the **linear interpolation** of
/// the underlying model between those levels. Outside the ladder range
/// the curve falls back to the continuous model (the engine never asks
/// for such speeds once caps are applied, and the fallback keeps the
/// trait contract intact: `P(0)=0`, continuity, convexity).
///
/// Contract check: the curve is continuous (interpolation meets the
/// model at every level), increasing, and convex — chord slopes of a
/// convex function increase with the segment, and the boundary slopes
/// `P'(s_min)`/`P'(s_max)` bracket the first/last chord. It is only
/// *weakly* convex on the interior of each segment, but the quantity
/// every algorithm actually consults, `g(σ) = P(σ)/σ`, stays **strictly
/// increasing**: each chord `aσ + b` has `b < 0` (it lies above a convex
/// curve through the origin), so `g(σ) = a + b/σ` strictly increases.
impl<M: PowerModel> PowerModel for DiscreteSpeeds<M> {
    fn power(&self, speed: f64) -> f64 {
        let (lo, hi) = (self.min_speed(), self.max_speed());
        if !(lo..=hi).contains(&speed) {
            return self.model.power(speed);
        }
        let (i, j) = self.bracketing_levels(speed);
        if i == j {
            return self.model.power(self.levels[i]);
        }
        let (sl, sh) = (self.levels[i], self.levels[j]);
        let (pl, ph) = (self.model.power(sl), self.model.power(sh));
        pl + (ph - pl) * (speed - sl) / (sh - sl)
    }

    fn name(&self) -> String {
        format!("ladder{}[{}]", self.levels.len(), self.model.name())
    }
}

/// Result of emulating a continuous speed with two adjacent levels.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TwoLevelSplit {
    /// Lower level used.
    pub lo_speed: f64,
    /// Upper level used.
    pub hi_speed: f64,
    /// Time at the lower level.
    pub lo_time: f64,
    /// Time at the upper level.
    pub hi_time: f64,
    /// Whether duration and work both match the continuous target
    /// (false when the target fell outside the ladder).
    pub exact: bool,
}

impl TwoLevelSplit {
    /// Total duration of the emulation.
    pub fn duration(&self) -> f64 {
        self.lo_time + self.hi_time
    }

    /// Work completed by the emulation.
    pub fn work(&self) -> f64 {
        self.lo_speed * self.lo_time + self.hi_speed * self.hi_time
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::poly::PolyPower;

    fn athlon() -> DiscreteSpeeds<PolyPower> {
        DiscreteSpeeds::new(PolyPower::CUBE, ATHLON64_GHZ.to_vec())
    }

    #[test]
    fn levels_sorted_and_deduped() {
        let d = DiscreteSpeeds::new(PolyPower::CUBE, vec![2.0, 0.8, 1.8, 0.8]);
        assert_eq!(d.levels(), &[0.8, 1.8, 2.0]);
        assert_eq!(d.min_speed(), 0.8);
        assert_eq!(d.max_speed(), 2.0);
    }

    #[test]
    fn uniform_ladder() {
        let d = DiscreteSpeeds::uniform(PolyPower::CUBE, 4, 2.0);
        assert_eq!(d.levels(), &[0.5, 1.0, 1.5, 2.0]);
    }

    #[test]
    fn bracketing() {
        let d = athlon();
        assert_eq!(d.bracketing_levels(1.0), (0, 1));
        assert_eq!(d.bracketing_levels(1.9), (1, 2));
        assert_eq!(d.bracketing_levels(0.8), (0, 0));
        assert_eq!(d.bracketing_levels(0.1), (0, 0));
        assert_eq!(d.bracketing_levels(5.0), (2, 2));
    }

    #[test]
    fn split_preserves_work_and_duration() {
        let d = athlon();
        let split = d.two_level_split(3.0, 1.2); // between 0.8 and 1.8
        assert!(split.exact);
        assert!((split.work() - 3.0).abs() < 1e-12);
        assert!((split.duration() - 3.0 / 1.2).abs() < 1e-12);
        assert!(split.lo_time > 0.0 && split.hi_time > 0.0);
    }

    #[test]
    fn split_at_exact_level() {
        let d = athlon();
        let split = d.two_level_split(3.6, 1.8);
        assert!(split.exact);
        assert_eq!(split.hi_time, 0.0);
        assert!((split.lo_time - 2.0).abs() < 1e-12);
    }

    #[test]
    fn split_outside_ladder_is_marked_inexact() {
        let d = athlon();
        let split = d.two_level_split(1.0, 0.2); // below min level
        assert!(!split.exact);
        assert!((split.work() - 1.0).abs() < 1e-12);
        // Runs at 0.8, faster than requested 0.2 → shorter duration.
        assert!(split.duration() < 5.0);
    }

    #[test]
    fn split_energy_exceeds_continuous_energy() {
        // Convexity: emulating σ=1.2 with {0.8, 1.8} costs more energy
        // than running at 1.2 continuously (equal time, equal work).
        let d = athlon();
        let split = d.two_level_split(3.0, 1.2);
        let continuous = PolyPower::CUBE.energy(3.0, 1.2);
        assert!(d.split_energy(&split) > continuous);
    }

    #[test]
    #[should_panic(expected = "at least one speed level")]
    fn rejects_empty() {
        let _ = DiscreteSpeeds::new(PolyPower::CUBE, vec![]);
    }

    #[test]
    fn power_model_impl_matches_split_energy() {
        // g(σ)·work under the ladder model must equal the energy of the
        // explicit two-level emulation — same construction, two codepaths.
        let d = athlon();
        for &target in &[0.9, 1.2, 1.79, 1.95] {
            let split = d.two_level_split(3.0, target);
            let via_trait = d.energy(3.0, target);
            let via_split = d.split_energy(&split);
            assert!(
                (via_trait - via_split).abs() < 1e-12 * via_split,
                "target {target}: trait {via_trait} vs split {via_split}"
            );
        }
    }

    #[test]
    fn power_model_impl_is_continuous_at_levels_and_ends() {
        let d = athlon();
        for &s in d.levels() {
            assert!((d.power(s) - PolyPower::CUBE.power(s)).abs() < 1e-12);
            let eps = 1e-9;
            assert!((d.power(s - eps) - d.power(s)).abs() < 1e-6);
            assert!((d.power(s + eps) - d.power(s)).abs() < 1e-6);
        }
        // Outside the ladder: continuous-model fallback.
        assert_eq!(d.power(0.0), 0.0);
        assert_eq!(d.power(0.5), PolyPower::CUBE.power(0.5));
        assert_eq!(d.power(3.0), PolyPower::CUBE.power(3.0));
    }

    #[test]
    fn power_model_impl_sandwiched_by_adjacent_ratio() {
        let d = athlon();
        let r = d.max_adjacent_ratio();
        assert!((r - 1.8 / 0.8).abs() < 1e-12);
        let scale = r.powf(3.0);
        let mut s = 0.05;
        while s < 2.5 {
            let base = PolyPower::CUBE.power(s);
            let ladder = d.power(s);
            assert!(ladder >= base - 1e-12, "lower bound at {s}");
            assert!(ladder <= scale * base + 1e-12, "upper bound at {s}");
            s += 0.031;
        }
    }

    #[test]
    fn power_model_impl_g_strictly_increasing() {
        let d = athlon();
        let mut prev = 0.0;
        let mut s = 0.1;
        while s < 2.6 {
            let g = d.energy_per_work(s);
            assert!(g > prev, "g must strictly increase at {s}");
            prev = g;
            s += 0.017;
        }
    }

    #[test]
    fn power_model_impl_inverse_round_trips() {
        let d = athlon();
        for &e in &[0.1, 0.7, 1.5, 3.0] {
            let s = d.speed_for_energy_per_work(e).unwrap();
            assert!(
                (d.energy_per_work(s) - e).abs() < 1e-9 * e.max(1.0),
                "e={e}"
            );
        }
    }

    #[test]
    fn single_level_ladder_ratio_is_one() {
        let d = DiscreteSpeeds::new(PolyPower::CUBE, vec![1.5]);
        assert_eq!(d.max_adjacent_ratio(), 1.0);
        assert_eq!(d.power(1.5), PolyPower::CUBE.power(1.5));
    }
}
