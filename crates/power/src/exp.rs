//! Exponential power curves: the wireless-transmission shape.
//!
//! The paper's §2 highlights that Uysal-Biyikoglu, Prabhakar and El Gamal
//! studied minimum-energy *packet transmission* with "a totally different
//! power function" from DVFS, and that the algorithms only rely on
//! continuity and strict convexity. For an AWGN channel, transmitting at
//! rate `σ` requires power proportional to `2^σ − 1` (Shannon capacity
//! inverted), which is exactly this model with `base = 2`.

use crate::model::PowerModel;

/// `P(σ) = scale · (base^σ − 1)`, `base > 1`, `scale > 0`.
///
/// Strictly convex and strictly increasing with `P(0) = 0`, so it
/// satisfies the [`PowerModel`] contract; unlike [`crate::PolyPower`] its
/// energy-per-work function has no closed-form inverse, exercising the
/// trait's numeric fallback paths.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExpPower {
    base: f64,
    scale: f64,
}

impl ExpPower {
    /// Shannon-style transmit power `P(σ) = 2^σ − 1`.
    pub fn shannon() -> Self {
        ExpPower::new(2.0, 1.0)
    }

    /// Create `P(σ) = scale·(base^σ − 1)`.
    ///
    /// # Panics
    /// If `base <= 1` or `scale <= 0` (the curve would not be strictly
    /// convex increasing) or either is not finite.
    pub fn new(base: f64, scale: f64) -> Self {
        assert!(
            base.is_finite() && base > 1.0,
            "ExpPower requires base > 1 (got {base})"
        );
        assert!(
            scale.is_finite() && scale > 0.0,
            "ExpPower requires scale > 0 (got {scale})"
        );
        ExpPower { base, scale }
    }

    /// The exponent base.
    pub fn base(&self) -> f64 {
        self.base
    }

    /// The multiplicative scale.
    pub fn scale(&self) -> f64 {
        self.scale
    }
}

impl PowerModel for ExpPower {
    fn power(&self, speed: f64) -> f64 {
        if speed <= 0.0 {
            return 0.0;
        }
        // expm1 keeps precision for tiny speeds.
        self.scale * (speed * self.base.ln()).exp_m1()
    }

    fn name(&self) -> String {
        format!("{}*({}^sigma - 1)", self.scale, self.base)
    }

    fn power_derivative(&self, speed: f64) -> f64 {
        let ln_b = self.base.ln();
        self.scale * ln_b * (speed.max(0.0) * ln_b).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shannon_values() {
        let m = ExpPower::shannon();
        assert_eq!(m.power(0.0), 0.0);
        assert!((m.power(1.0) - 1.0).abs() < 1e-12); // 2^1 - 1
        assert!((m.power(3.0) - 7.0).abs() < 1e-12); // 2^3 - 1
    }

    #[test]
    fn energy_per_work_is_increasing() {
        let m = ExpPower::shannon();
        let mut prev = 0.0;
        for k in 1..100 {
            let s = k as f64 * 0.1;
            let g = m.energy_per_work(s);
            assert!(g > prev, "g not increasing at σ={s}");
            prev = g;
        }
    }

    #[test]
    fn numeric_inverse_round_trips() {
        let m = ExpPower::shannon();
        // g's range is (ln 2, ∞): only e > ln 2 ≈ 0.693 is reachable.
        for &e in &[0.7, 1.0, 5.0, 300.0] {
            let s = m.speed_for_energy_per_work(e).unwrap();
            assert!((m.energy_per_work(s) - e).abs() / e < 1e-9, "e={e}, s={s}");
        }
    }

    #[test]
    fn energy_per_work_has_positive_infimum() {
        // Unlike PolyPower, ExpPower's chord slope at the origin is
        // P'(0) = ln 2 > 0: work can never cost less than ln 2 per unit.
        let m = ExpPower::shannon();
        assert!(matches!(
            m.speed_for_energy_per_work(0.01),
            Err(crate::model::PowerError::Unreachable { .. })
        ));
        // Just above the infimum is reachable (at a tiny speed).
        let s = m.speed_for_energy_per_work(0.694).unwrap();
        assert!(s > 0.0 && s < 0.1, "σ = {s}");
    }

    #[test]
    fn derivative_matches_numeric() {
        let m = ExpPower::new(3.0, 2.0);
        let numeric = pas_numeric::diff::derivative(|s| m.power(s), 1.5, 1e-5);
        assert!((m.power_derivative(1.5) - numeric).abs() < 1e-6);
    }

    #[test]
    fn tiny_speed_precision() {
        // expm1 path: P(1e-12) ≈ 1e-12·ln2, not 0.
        let m = ExpPower::shannon();
        let p = m.power(1e-12);
        assert!(p > 0.0);
        assert!((p - 1e-12 * 2f64.ln()).abs() < 1e-24);
    }

    #[test]
    #[should_panic(expected = "base > 1")]
    fn rejects_degenerate_base() {
        let _ = ExpPower::new(1.0, 1.0);
    }

    #[test]
    fn is_strictly_convex_numerically() {
        let m = ExpPower::shannon();
        let slack = pas_numeric::diff::convexity_slack(|s| m.power(s), 0.0, 10.0, 300);
        assert!(slack >= 0.0, "convexity violated: slack={slack}");
    }
}
