//! Speed-range restrictions: `[σ_min, σ_max]` clamping.
//!
//! The paper's §6 suggests "imposing minimum and/or maximum speeds is one
//! way to partially incorporate [discrete speed settings] without going
//! all the way to the discrete case". [`BoundedPower`] wraps any inner
//! model with such a range; inverse queries report unreachability instead
//! of silently clamping so schedulers can react (e.g. declare an energy
//! budget infeasible).

use crate::model::{PowerError, PowerModel};

/// A [`PowerModel`] restricted to speeds in `[min_speed, max_speed]`
/// (plus the always-allowed idle speed 0).
#[derive(Debug, Clone)]
pub struct BoundedPower<M> {
    inner: M,
    min_speed: f64,
    max_speed: f64,
}

impl<M: PowerModel> BoundedPower<M> {
    /// Restrict `inner` to `[min_speed, max_speed]`.
    ///
    /// # Panics
    /// If `min_speed < 0`, `max_speed <= min_speed`, or either is not
    /// finite.
    pub fn new(inner: M, min_speed: f64, max_speed: f64) -> Self {
        assert!(
            min_speed >= 0.0 && min_speed.is_finite(),
            "min_speed must be finite and non-negative (got {min_speed})"
        );
        assert!(
            max_speed > min_speed && max_speed.is_finite(),
            "max_speed must exceed min_speed (got [{min_speed}, {max_speed}])"
        );
        BoundedPower {
            inner,
            min_speed,
            max_speed,
        }
    }

    /// The inner, unrestricted model.
    pub fn inner(&self) -> &M {
        &self.inner
    }

    /// Lower speed bound.
    pub fn min_speed(&self) -> f64 {
        self.min_speed
    }

    /// Upper speed bound.
    pub fn max_speed(&self) -> f64 {
        self.max_speed
    }

    /// Whether `speed` is a legal operating point (0 = idle is allowed).
    pub fn is_legal_speed(&self, speed: f64) -> bool {
        speed == 0.0 || (self.min_speed..=self.max_speed).contains(&speed)
    }

    /// Clamp a requested speed into the legal range (0 stays 0).
    pub fn clamp_speed(&self, speed: f64) -> f64 {
        if speed == 0.0 {
            0.0
        } else {
            speed.clamp(self.min_speed, self.max_speed)
        }
    }
}

impl<M: PowerModel> PowerModel for BoundedPower<M> {
    fn power(&self, speed: f64) -> f64 {
        self.inner.power(speed)
    }

    fn name(&self) -> String {
        format!(
            "{}|[{},{}]",
            self.inner.name(),
            self.min_speed,
            self.max_speed
        )
    }

    fn energy_per_work(&self, speed: f64) -> f64 {
        self.inner.energy_per_work(speed)
    }

    /// The inverse query respects the bounds: an `e` whose unbounded
    /// solution falls outside `[min, max]` is reported unreachable.
    fn speed_for_energy_per_work(&self, e: f64) -> Result<f64, PowerError> {
        let s = self.inner.speed_for_energy_per_work(e)?;
        if s == 0.0 && self.min_speed == 0.0 {
            return Ok(0.0);
        }
        if s < self.min_speed - 1e-12 || s > self.max_speed + 1e-12 {
            return Err(PowerError::Unreachable { energy_per_work: e });
        }
        Ok(s.clamp(self.min_speed, self.max_speed))
    }

    fn power_derivative(&self, speed: f64) -> f64 {
        self.inner.power_derivative(speed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::poly::PolyPower;

    fn bounded() -> BoundedPower<PolyPower> {
        BoundedPower::new(PolyPower::CUBE, 0.5, 2.0)
    }

    #[test]
    fn passthrough_power() {
        let m = bounded();
        assert_eq!(m.power(1.5), 1.5f64.powi(3));
        assert_eq!(m.energy(2.0, 2.0), 8.0);
    }

    #[test]
    fn inverse_within_range() {
        let m = bounded();
        // g(σ)=σ², e=1 -> σ=1 in range.
        assert!((m.speed_for_energy_per_work(1.0).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverse_out_of_range_is_unreachable() {
        let m = bounded();
        // e = 9 -> σ = 3 > max 2.
        assert!(matches!(
            m.speed_for_energy_per_work(9.0),
            Err(PowerError::Unreachable { .. })
        ));
        // e = 0.01 -> σ = 0.1 < min 0.5.
        assert!(m.speed_for_energy_per_work(0.01).is_err());
    }

    #[test]
    fn legality_and_clamping() {
        let m = bounded();
        assert!(m.is_legal_speed(0.0));
        assert!(m.is_legal_speed(0.5));
        assert!(m.is_legal_speed(2.0));
        assert!(!m.is_legal_speed(0.4));
        assert!(!m.is_legal_speed(2.1));
        assert_eq!(m.clamp_speed(3.0), 2.0);
        assert_eq!(m.clamp_speed(0.1), 0.5);
        assert_eq!(m.clamp_speed(0.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "max_speed must exceed min_speed")]
    fn rejects_inverted_bounds() {
        let _ = BoundedPower::new(PolyPower::CUBE, 2.0, 1.0);
    }
}
