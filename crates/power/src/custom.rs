//! User-supplied power curves from closures.
//!
//! The paper's algorithms need nothing beyond the convexity contract, so
//! downstream users should be able to bring their own measured curve
//! without defining a struct: [`CustomPower`] wraps any
//! `Fn(f64) -> f64`. The constructor runs the [`crate::audit`] checks on
//! a sample range so contract violations fail fast at build time rather
//! than as silent mis-schedules.

use crate::audit::audit_model;
use crate::model::{PowerError, PowerModel};

/// A [`PowerModel`] defined by a closure (plus an optional derivative).
pub struct CustomPower<F> {
    f: F,
    name: String,
}

impl<F: Fn(f64) -> f64 + Send + Sync> CustomPower<F> {
    /// Wrap `f` as a power model **without** auditing — for callers that
    /// have verified the contract themselves.
    pub fn new_unchecked(name: &str, f: F) -> Self {
        CustomPower {
            f,
            name: name.to_string(),
        }
    }

    /// Wrap `f`, auditing the [`PowerModel`] contract (`P(0)=0`, strictly
    /// increasing, strictly convex, invertible energy-per-work) over
    /// `(0, max_speed]`.
    ///
    /// # Errors
    /// [`PowerError::InvalidSpeed`] carrying the probe speed when the
    /// audit fails (the audit report is printed in the error message via
    /// the model name for diagnosis).
    pub fn new_audited(name: &str, f: F, max_speed: f64) -> Result<Self, PowerError> {
        let candidate = CustomPower {
            f,
            name: name.to_string(),
        };
        let report = audit_model(&candidate, max_speed, 256);
        if report.passes(1e-7) {
            Ok(candidate)
        } else {
            Err(PowerError::InvalidSpeed { speed: max_speed })
        }
    }
}

impl<F> std::fmt::Debug for CustomPower<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CustomPower({})", self.name)
    }
}

impl<F: Fn(f64) -> f64 + Send + Sync> PowerModel for CustomPower<F> {
    fn power(&self, speed: f64) -> f64 {
        if speed <= 0.0 {
            0.0
        } else {
            (self.f)(speed)
        }
    }

    fn name(&self) -> String {
        self.name.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quartic_custom_model_works_end_to_end() {
        let m = CustomPower::new_audited("sigma^4", |s: f64| s.powi(4), 10.0).unwrap();
        assert_eq!(m.power(2.0), 16.0);
        // g(σ) = σ³; inverse of 8 is 2 (via the numeric default).
        let s = m.speed_for_energy_per_work(8.0).unwrap();
        assert!((s - 2.0).abs() < 1e-9);
        assert_eq!(m.name(), "sigma^4");
    }

    #[test]
    fn audit_rejects_concave_closure() {
        let err = CustomPower::new_audited("sqrt", |s: f64| s.sqrt(), 10.0);
        assert!(err.is_err());
    }

    #[test]
    fn audit_rejects_static_power() {
        let err = CustomPower::new_audited("leaky", |s: f64| 1.0 + s * s, 10.0);
        assert!(err.is_err());
    }

    #[test]
    fn unchecked_skips_the_audit() {
        // Deliberately broken model constructs fine unchecked.
        let m = CustomPower::new_unchecked("bad", |s: f64| s.sqrt());
        assert!((m.power(4.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn mixed_polynomial_curve() {
        // P(σ) = σ² + σ⁴ — convex sum, passes, solves blocks.
        let m = CustomPower::new_audited("mixed", |s: f64| s * s + s.powi(4), 8.0).unwrap();
        let speed = m.speed_for_block(2.0, 10.0).unwrap();
        // Energy per work at that speed is 5: σ + σ³ = 5 -> σ ≈ 1.5159.
        assert!((m.energy_per_work(speed) - 5.0).abs() < 1e-8);
    }
}
