//! # pas-power
//!
//! Speed-to-power models for dynamic voltage scaling (DVFS).
//!
//! Bunde's SPAA 2006 paper assumes only that **power is a continuous,
//! strictly convex, strictly increasing function of processor speed with
//! `P(0) = 0`** — the canonical instance being `P(σ) = σ^α` for `α > 1`
//! (Yao, Demers, Shenker). All algorithms in `pas-core` are written
//! against the [`PowerModel`] trait so that:
//!
//! * the canonical polynomial model gets exact closed forms
//!   ([`PolyPower`]), which is what makes the makespan frontier (paper
//!   §3.2, Figures 1–3) exactly computable;
//! * the wireless-transmission power curves of Uysal-Biyikoglu et al.
//!   (paper §2) — a *totally different* power function — run through the
//!   identical algorithms ([`ExpPower`]), exactly as the paper notes that
//!   only convexity is required;
//! * real processors with discrete speed steps (the AMD Athlon 64 table
//!   quoted in the paper's introduction) are representable
//!   ([`DiscreteSpeeds`]) for the §6 "future work" experiments —
//!   including as a [`PowerModel`] in their own right via the two-level
//!   emulation curve;
//! * host-level static power (idle floors, sleep states) lives *outside*
//!   the trait in [`HostPower`], charged per idle gap by the fleet
//!   simulation layer, so the `P(0)=0` contract the solvers rely on
//!   stays intact.
//!
//! ## The key derived quantity: energy per unit work
//!
//! A job of work `w` run at constant speed `σ` takes time `w/σ` and burns
//! `P(σ)·w/σ` energy. The function `g(σ) = P(σ)/σ` ("energy per unit
//! work") is therefore what every scheduling decision actually consults.
//! Strict convexity of `P` with `P(0)=0` makes `g` strictly increasing,
//! which is the monotonicity every algorithm in the paper leans on (e.g.
//! "slowing a job before idle time saves energy", Lemma 4).

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod audit;
pub mod bounded;
pub mod custom;
pub mod discrete;
pub mod exp;
pub mod idle;
pub mod model;
pub mod poly;

pub use bounded::BoundedPower;
pub use custom::CustomPower;
pub use discrete::DiscreteSpeeds;
pub use exp::ExpPower;
pub use idle::{HostPower, SleepConfig};
pub use model::{PowerError, PowerModel};
pub use poly::PolyPower;
