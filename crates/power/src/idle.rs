//! Host-level static power: idle floors and sleep states.
//!
//! The paper's model (and the [`PowerModel`] contract) has `P(0) = 0`:
//! an idle processor is free. The §6 "future work" discussion and the
//! fleet-scale related work (PAPERS.md) both point out that real hosts
//! burn a static floor while powered on, and that deep sleep states
//! trade a wake-up energy cost for a lower floor.
//!
//! Folding an idle floor into [`PowerModel::power`] would break the
//! contract (continuity and `P(0)=0` are load-bearing for every solver),
//! so static power lives *outside* the trait: [`HostPower`] wraps a
//! dynamic model together with an idle floor and an optional
//! [`SleepConfig`], and the fleet simulator charges
//! [`HostPower::gap_energy`] for every idle gap in a host's schedule.
//! Solvers keep seeing only the dynamic model.

use crate::model::PowerModel;

/// Sleep-state parameters for a host.
///
/// The controller policy is the standard timeout race: a host that has
/// been idle for [`SleepConfig::threshold`] time units transitions to
/// sleep, drawing [`SleepConfig::sleep_power`] instead of the idle
/// floor, and pays [`SleepConfig::wake_energy`] once when the next job
/// forces it awake.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SleepConfig {
    /// Idle time after which the host enters the sleep state.
    pub threshold: f64,
    /// Static power drawn while asleep (must not exceed the idle floor).
    pub sleep_power: f64,
    /// One-shot energy cost of waking back up.
    pub wake_energy: f64,
}

impl SleepConfig {
    /// Validate the configuration against an idle floor.
    ///
    /// # Panics
    /// If any field is non-finite or negative, or `sleep_power` exceeds
    /// `idle_power` (sleeping would then never help and the accounting
    /// below would be misleading).
    fn validate(&self, idle_power: f64) {
        assert!(
            self.threshold.is_finite() && self.threshold >= 0.0,
            "sleep threshold must be finite and non-negative: {}",
            self.threshold
        );
        assert!(
            self.sleep_power.is_finite() && self.sleep_power >= 0.0,
            "sleep power must be finite and non-negative: {}",
            self.sleep_power
        );
        assert!(
            self.wake_energy.is_finite() && self.wake_energy >= 0.0,
            "wake energy must be finite and non-negative: {}",
            self.wake_energy
        );
        assert!(
            self.sleep_power <= idle_power,
            "sleep power {} must not exceed the idle floor {}",
            self.sleep_power,
            idle_power
        );
    }
}

/// A dynamic [`PowerModel`] plus host-level static power accounting.
///
/// `HostPower` deliberately does **not** implement [`PowerModel`]: the
/// static floor is charged per idle gap by the fleet layer, never seen
/// by the per-machine solvers (whose optimality arguments require
/// `P(0)=0`).
#[derive(Debug, Clone)]
pub struct HostPower<M> {
    model: M,
    idle_power: f64,
    sleep: Option<SleepConfig>,
}

impl<M: PowerModel> HostPower<M> {
    /// A host with no static power at all — gap energy is identically
    /// zero, matching the paper's pure-dynamic model.
    pub fn dynamic_only(model: M) -> Self {
        HostPower {
            model,
            idle_power: 0.0,
            sleep: None,
        }
    }

    /// A host drawing a constant `idle_power` floor whenever it is on
    /// but not executing work.
    ///
    /// # Panics
    /// If `idle_power` is non-finite or negative.
    pub fn with_idle(model: M, idle_power: f64) -> Self {
        assert!(
            idle_power.is_finite() && idle_power >= 0.0,
            "idle power must be finite and non-negative: {idle_power}"
        );
        HostPower {
            model,
            idle_power,
            sleep: None,
        }
    }

    /// Add a sleep state on top of the idle floor.
    ///
    /// # Panics
    /// If the configuration is invalid (see [`SleepConfig`]).
    pub fn with_sleep(mut self, sleep: SleepConfig) -> Self {
        sleep.validate(self.idle_power);
        self.sleep = Some(sleep);
        self
    }

    /// The dynamic model solvers should see.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// The idle floor in power units.
    pub fn idle_power(&self) -> f64 {
        self.idle_power
    }

    /// The sleep configuration, if any.
    pub fn sleep(&self) -> Option<&SleepConfig> {
        self.sleep.as_ref()
    }

    /// Whether an idle gap of length `gap` triggers a sleep transition.
    pub fn sleeps_during(&self, gap: f64) -> bool {
        match &self.sleep {
            Some(s) => gap >= s.threshold,
            None => false,
        }
    }

    /// Static energy charged for an idle gap of length `gap`.
    ///
    /// Without a sleep state this is `idle_power · gap`. With one, a gap
    /// at least as long as the threshold costs
    /// `idle_power · threshold + sleep_power · (gap − threshold) +
    /// wake_energy` (idle until the timeout fires, sleep for the rest,
    /// one wake-up at the end).
    ///
    /// Negative or zero gaps cost nothing.
    pub fn gap_energy(&self, gap: f64) -> f64 {
        if gap <= 0.0 {
            return 0.0;
        }
        match &self.sleep {
            Some(s) if gap >= s.threshold => {
                self.idle_power * s.threshold + s.sleep_power * (gap - s.threshold) + s.wake_energy
            }
            _ => self.idle_power * gap,
        }
    }

    /// The gap length beyond which sleeping is cheaper than idling, or
    /// `None` when it never is (no sleep state, or the wake cost can
    /// never be amortized because `sleep_power == idle_power`).
    ///
    /// Useful for hand-computing golden oracles: for gaps shorter than
    /// the break-even point a sleep transition *costs* energy relative
    /// to idling.
    pub fn sleep_break_even(&self) -> Option<f64> {
        let s = self.sleep.as_ref()?;
        let saving_rate = self.idle_power - s.sleep_power;
        if saving_rate <= 0.0 {
            return None;
        }
        Some(s.threshold + s.wake_energy / saving_rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::poly::PolyPower;

    fn sleepy() -> HostPower<PolyPower> {
        HostPower::with_idle(PolyPower::CUBE, 2.0).with_sleep(SleepConfig {
            threshold: 5.0,
            sleep_power: 0.5,
            wake_energy: 3.0,
        })
    }

    #[test]
    fn dynamic_only_charges_nothing() {
        let h = HostPower::dynamic_only(PolyPower::CUBE);
        assert_eq!(h.gap_energy(100.0), 0.0);
        assert!(!h.sleeps_during(1e9));
        assert_eq!(h.sleep_break_even(), None);
    }

    #[test]
    fn idle_floor_is_linear_in_gap() {
        let h = HostPower::with_idle(PolyPower::CUBE, 2.0);
        assert_eq!(h.gap_energy(3.0), 6.0);
        assert_eq!(h.gap_energy(0.0), 0.0);
        assert_eq!(h.gap_energy(-1.0), 0.0);
    }

    #[test]
    fn sleep_accounting_matches_hand_computation() {
        let h = sleepy();
        // Short gap: pure idle.
        assert_eq!(h.gap_energy(4.0), 8.0);
        assert!(!h.sleeps_during(4.0));
        // Long gap: 5 idle + 7 asleep + wake.
        // 2·5 + 0.5·7 + 3 = 16.5.
        assert!(h.sleeps_during(12.0));
        assert!((h.gap_energy(12.0) - 16.5).abs() < 1e-12);
    }

    #[test]
    fn break_even_point() {
        let h = sleepy();
        // threshold + wake/(idle - sleep) = 5 + 3/1.5 = 7.
        let be = h.sleep_break_even().unwrap();
        assert!((be - 7.0).abs() < 1e-12);
        // At the break-even gap, both accountings agree.
        assert!((h.gap_energy(be) - h.idle_power() * be).abs() < 1e-12);
        // Beyond it, sleeping is strictly cheaper.
        assert!(h.gap_energy(10.0) < h.idle_power() * 10.0);
    }

    #[test]
    #[should_panic(expected = "must not exceed the idle floor")]
    fn rejects_sleep_hotter_than_idle() {
        let _ = HostPower::with_idle(PolyPower::CUBE, 1.0).with_sleep(SleepConfig {
            threshold: 1.0,
            sleep_power: 2.0,
            wake_energy: 0.0,
        });
    }

    #[test]
    #[should_panic(expected = "idle power must be finite")]
    fn rejects_negative_idle() {
        let _ = HostPower::with_idle(PolyPower::CUBE, -1.0);
    }
}
