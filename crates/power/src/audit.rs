//! Numeric audits of the [`crate::PowerModel`] contract.
//!
//! The algorithms' correctness proofs assume `P(0)=0`, strict monotonicity
//! and strict convexity. For user-supplied models none of that can be
//! checked by the type system, so this module provides grid-based audits
//! that tests (and cautious callers) can run once per model.

use crate::model::PowerModel;
use pas_numeric::diff::convexity_slack;

/// Outcome of [`audit_model`].
#[derive(Debug, Clone, PartialEq)]
pub struct AuditReport {
    /// `P(0)` (contract: 0).
    pub power_at_zero: f64,
    /// Worst adjacent-sample monotonicity slack of `P` (contract: > 0).
    pub min_power_increase: f64,
    /// Worst midpoint-convexity slack of `P` (contract: ≥ 0, ideally > 0).
    pub convexity_slack: f64,
    /// Worst adjacent-sample monotonicity slack of `g(σ)=P(σ)/σ`
    /// (contract: > 0; this is the property the algorithms actually use).
    pub min_epw_increase: f64,
    /// Maximum relative round-trip error of
    /// `speed_for_energy_per_work(energy_per_work(σ))` over the grid.
    pub max_inverse_error: f64,
}

impl AuditReport {
    /// Whether every contract clause holds within `tol`.
    pub fn passes(&self, tol: f64) -> bool {
        self.power_at_zero.abs() <= tol
            && self.min_power_increase > -tol
            && self.convexity_slack >= -tol
            && self.min_epw_increase > -tol
            && self.max_inverse_error <= tol.max(1e-6)
    }
}

/// Audit `model` over the speed range `(0, max_speed]` with `samples`
/// grid points.
///
/// # Panics
/// If `max_speed <= 0` or `samples < 4`.
pub fn audit_model<M: PowerModel>(model: &M, max_speed: f64, samples: usize) -> AuditReport {
    assert!(max_speed > 0.0, "max_speed must be positive");
    assert!(samples >= 4, "need at least 4 samples");
    let step = max_speed / samples as f64;

    let mut min_power_increase = f64::INFINITY;
    let mut min_epw_increase = f64::INFINITY;
    let mut max_inverse_error: f64 = 0.0;
    let mut prev_p = model.power(step * 0.5);
    let mut prev_g = model.energy_per_work(step * 0.5);
    for k in 1..=samples {
        let s = step * (0.5 + k as f64);
        if s > max_speed {
            break;
        }
        let p = model.power(s);
        let g = model.energy_per_work(s);
        min_power_increase = min_power_increase.min(p - prev_p);
        min_epw_increase = min_epw_increase.min(g - prev_g);
        prev_p = p;
        prev_g = g;
        if let Ok(back) = model.speed_for_energy_per_work(g) {
            let err = (back - s).abs() / s.max(1e-12);
            max_inverse_error = max_inverse_error.max(err);
        } else {
            max_inverse_error = f64::INFINITY;
        }
    }

    AuditReport {
        power_at_zero: model.power(0.0),
        min_power_increase,
        convexity_slack: convexity_slack(|s| model.power(s), 0.0, max_speed, 4 * samples),
        min_epw_increase,
        max_inverse_error,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exp::ExpPower;
    use crate::model::PowerError;
    use crate::poly::PolyPower;

    #[test]
    fn poly_passes_audit() {
        for &alpha in &[1.2, 2.0, 3.0, 5.0] {
            let report = audit_model(&PolyPower::new(alpha), 10.0, 200);
            assert!(report.passes(1e-9), "alpha={alpha}: {report:?}");
        }
    }

    #[test]
    fn exp_passes_audit() {
        let report = audit_model(&ExpPower::shannon(), 20.0, 200);
        assert!(report.passes(1e-8), "{report:?}");
    }

    #[test]
    fn concave_model_fails_audit() {
        /// A deliberately broken (concave) model.
        #[derive(Debug)]
        struct Sqrt;
        impl PowerModel for Sqrt {
            fn power(&self, speed: f64) -> f64 {
                speed.max(0.0).sqrt()
            }
            fn speed_for_energy_per_work(&self, e: f64) -> Result<f64, PowerError> {
                // g(σ) = σ^{-1/2} is *decreasing*; expose that by failing.
                Err(PowerError::Unreachable { energy_per_work: e })
            }
        }
        let report = audit_model(&Sqrt, 10.0, 100);
        assert!(!report.passes(1e-9));
        assert!(report.convexity_slack < 0.0);
        assert!(report.min_epw_increase < 0.0);
    }

    #[test]
    fn static_power_fails_audit() {
        /// Idle power violates P(0)=0.
        #[derive(Debug)]
        struct Static;
        impl PowerModel for Static {
            fn power(&self, speed: f64) -> f64 {
                1.0 + speed * speed
            }
        }
        let report = audit_model(&Static, 10.0, 100);
        assert!(!report.passes(1e-9));
        assert!(report.power_at_zero > 0.5);
    }
}
