//! The [`PowerModel`] trait: the contract every speed-scaling algorithm
//! in this workspace is written against.

use pas_numeric::roots::{invert_monotone, RootError};

/// Errors surfaced by power-model queries.
#[derive(Debug, Clone, PartialEq)]
pub enum PowerError {
    /// A speed outside the model's valid domain was supplied.
    InvalidSpeed {
        /// The offending speed.
        speed: f64,
    },
    /// An inverse query (`speed_for_energy_per_work`) has no solution in
    /// the model's speed range.
    Unreachable {
        /// The requested energy-per-work value.
        energy_per_work: f64,
    },
    /// An underlying numeric inversion failed.
    Numeric(RootError),
}

impl std::fmt::Display for PowerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PowerError::InvalidSpeed { speed } => write!(f, "invalid speed {speed}"),
            PowerError::Unreachable { energy_per_work } => {
                write!(f, "energy-per-work {energy_per_work} unreachable")
            }
            PowerError::Numeric(e) => write!(f, "numeric inversion failed: {e}"),
        }
    }
}

impl std::error::Error for PowerError {}

impl From<RootError> for PowerError {
    fn from(e: RootError) -> Self {
        PowerError::Numeric(e)
    }
}

/// A speed→power curve satisfying the paper's assumptions.
///
/// # Contract
///
/// Implementations must guarantee, on their valid speed range:
///
/// 1. `power(0) = 0` (no static/idle power — the paper's model);
/// 2. `power` is continuous, strictly increasing, and **strictly convex**;
/// 3. consequently `energy_per_work(σ) = power(σ)/σ` is continuous and
///    strictly increasing on `σ > 0`, with
///    `energy_per_work(σ) → 0` as `σ → 0⁺` (superlinearity at the origin
///    is *not* required by the trait, but `PolyPower`/`ExpPower` have it
///    and several algorithms' optimality proofs use it).
///
/// The default methods implement everything an algorithm needs on top of
/// [`PowerModel::power`]; override them when closed forms exist (see
/// [`crate::PolyPower`]).
pub trait PowerModel: Send + Sync + std::fmt::Debug {
    /// Instantaneous power drawn at speed `σ >= 0`.
    fn power(&self, speed: f64) -> f64;

    /// Human-readable model name (for reports and CSV headers).
    fn name(&self) -> String {
        "power-model".to_string()
    }

    /// Energy consumed per unit of work when running at constant speed
    /// `σ > 0`: `g(σ) = P(σ)/σ`. Strictly increasing by the contract.
    fn energy_per_work(&self, speed: f64) -> f64 {
        if speed <= 0.0 {
            return 0.0;
        }
        self.power(speed) / speed
    }

    /// Energy to run `work` units at constant speed `σ > 0`.
    fn energy(&self, work: f64, speed: f64) -> f64 {
        work * self.energy_per_work(speed)
    }

    /// Inverse of [`PowerModel::energy_per_work`]: the speed at which one
    /// unit of work costs exactly `e` energy.
    ///
    /// The default implementation inverts numerically by expanding-bracket
    /// bisection (valid because `g` is strictly increasing); models with
    /// closed forms override it.
    ///
    /// # Errors
    /// [`PowerError::Unreachable`] when `e` lies outside `g`'s range (for
    /// bounded models) and [`PowerError::InvalidSpeed`] for `e < 0`.
    fn speed_for_energy_per_work(&self, e: f64) -> Result<f64, PowerError> {
        if e < 0.0 {
            return Err(PowerError::Unreachable { energy_per_work: e });
        }
        if e == 0.0 {
            return Ok(0.0);
        }
        invert_monotone(|s| self.energy_per_work(s), e, 1.0, 1e-14, 0.0).map_err(|err| {
            match err {
                // The expanding bracket ran off the end of g's range: the
                // requested energy-per-work simply cannot be achieved
                // (e.g. ExpPower has g(0⁺) = scale·ln(base) > 0, so
                // arbitrarily cheap work is impossible).
                RootError::BracketSearchFailed { .. } => {
                    PowerError::Unreachable { energy_per_work: e }
                }
                other => PowerError::Numeric(other),
            }
        })
    }

    /// Derivative `P'(σ)`; numeric central difference by default.
    fn power_derivative(&self, speed: f64) -> f64 {
        let h = (speed.abs() * 1e-6).max(1e-9);
        pas_numeric::diff::derivative(|s| self.power(s.max(0.0)), speed.max(h * 2.0), h)
    }

    /// Second derivative `P''(σ)`; numeric by default. Used by the
    /// makespan frontier's closed-form `d²M/dE²` (paper Figure 3):
    /// `M'' = P''(σ)·σ³ / (W·(P'(σ)·σ − P(σ))³)` on each segment.
    fn power_second_derivative(&self, speed: f64) -> f64 {
        let h = (speed.abs() * 1e-5).max(1e-6);
        pas_numeric::diff::second_derivative(|s| self.power(s.max(0.0)), speed.max(h * 3.0), h)
    }

    /// The speed a single block of `work` must run at to consume exactly
    /// `budget` energy (the "last block" solve at the heart of IncMerge).
    ///
    /// # Errors
    /// Propagates [`PowerError`] from the inverse query; `budget <= 0` or
    /// `work <= 0` yield [`PowerError::Unreachable`].
    fn speed_for_block(&self, work: f64, budget: f64) -> Result<f64, PowerError> {
        if work <= 0.0 || budget <= 0.0 {
            return Err(PowerError::Unreachable {
                energy_per_work: budget / work,
            });
        }
        self.speed_for_energy_per_work(budget / work)
    }
}

/// Blanket impl so `&M`, `Box<M>`, `Arc<M>` can be passed wherever a
/// model is expected.
impl<M: PowerModel + ?Sized> PowerModel for &M {
    fn power(&self, speed: f64) -> f64 {
        (**self).power(speed)
    }
    fn name(&self) -> String {
        (**self).name()
    }
    fn energy_per_work(&self, speed: f64) -> f64 {
        (**self).energy_per_work(speed)
    }
    fn energy(&self, work: f64, speed: f64) -> f64 {
        (**self).energy(work, speed)
    }
    fn speed_for_energy_per_work(&self, e: f64) -> Result<f64, PowerError> {
        (**self).speed_for_energy_per_work(e)
    }
    fn power_derivative(&self, speed: f64) -> f64 {
        (**self).power_derivative(speed)
    }
    fn power_second_derivative(&self, speed: f64) -> f64 {
        (**self).power_second_derivative(speed)
    }
    fn speed_for_block(&self, work: f64, budget: f64) -> Result<f64, PowerError> {
        (**self).speed_for_block(work, budget)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A quadratic model implemented *only* via `power`, to exercise every
    /// default method.
    #[derive(Debug)]
    struct Quadratic;

    impl PowerModel for Quadratic {
        fn power(&self, speed: f64) -> f64 {
            speed * speed
        }
    }

    #[test]
    fn default_energy_per_work() {
        let m = Quadratic;
        assert_eq!(m.energy_per_work(3.0), 3.0); // σ²/σ = σ
        assert_eq!(m.energy_per_work(0.0), 0.0);
        assert_eq!(m.energy(2.0, 3.0), 6.0);
    }

    #[test]
    fn default_inverse_round_trips() {
        let m = Quadratic;
        for &e in &[0.125, 1.0, 7.5, 4000.0] {
            let s = m.speed_for_energy_per_work(e).unwrap();
            assert!((m.energy_per_work(s) - e).abs() / e < 1e-10, "e={e} s={s}");
        }
    }

    #[test]
    fn inverse_rejects_negative() {
        assert!(Quadratic.speed_for_energy_per_work(-1.0).is_err());
        assert_eq!(Quadratic.speed_for_energy_per_work(0.0).unwrap(), 0.0);
    }

    #[test]
    fn block_speed_solves_budget() {
        let m = Quadratic;
        // work 4 at budget 8: energy per work 2 -> speed 2 (σ = e).
        let s = m.speed_for_block(4.0, 8.0).unwrap();
        assert!((s - 2.0).abs() < 1e-12);
        assert!(m.speed_for_block(0.0, 8.0).is_err());
        assert!(m.speed_for_block(4.0, 0.0).is_err());
    }

    #[test]
    fn default_derivative_is_accurate() {
        let m = Quadratic;
        // P'(σ) = 2σ.
        assert!((m.power_derivative(3.0) - 6.0).abs() < 1e-5);
    }

    #[test]
    fn reference_passthrough() {
        let m = Quadratic;
        let r: &dyn PowerModel = &m;
        assert_eq!(r.energy(2.0, 3.0), 6.0);
        assert_eq!((&r).power(2.0), 4.0);
    }
}
