//! The canonical polynomial power model `P(σ) = c·σ^α`.
//!
//! This is the model of Yao, Demers, Shenker (FOCS 1995) used throughout
//! the paper's examples: power equals speed to a constant exponent
//! `α > 1`, derived from CMOS switching-loss approximations (`α ≈ 3` for
//! voltage scaling, hence `power = speed³` in Figures 1–3).

use crate::model::{PowerError, PowerModel};

/// `P(σ) = coefficient · σ^alpha`, `alpha > 1`, `coefficient > 0`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolyPower {
    /// The exponent `α > 1`.
    alpha: f64,
    /// Multiplicative constant (default 1).
    coefficient: f64,
}

impl PolyPower {
    /// The `P(σ) = σ³` model used by the paper's running example.
    pub const CUBE: PolyPower = PolyPower {
        alpha: 3.0,
        coefficient: 1.0,
    };

    /// Create `P(σ) = σ^alpha`.
    ///
    /// # Panics
    /// If `alpha <= 1` (the power function would not be strictly convex)
    /// or `alpha` is not finite.
    pub fn new(alpha: f64) -> Self {
        Self::with_coefficient(alpha, 1.0)
    }

    /// Create `P(σ) = coefficient · σ^alpha`.
    ///
    /// # Panics
    /// If `alpha <= 1`, `coefficient <= 0`, or either is not finite.
    pub fn with_coefficient(alpha: f64, coefficient: f64) -> Self {
        assert!(
            alpha.is_finite() && alpha > 1.0,
            "PolyPower requires alpha > 1 (got {alpha}); the power function \
             must be strictly convex"
        );
        assert!(
            coefficient.is_finite() && coefficient > 0.0,
            "PolyPower requires a positive coefficient (got {coefficient})"
        );
        PolyPower { alpha, coefficient }
    }

    /// The exponent `α`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The multiplicative constant.
    pub fn coefficient(&self) -> f64 {
        self.coefficient
    }

    /// Exact closed-form inverse of `g(σ) = c·σ^{α-1}`:
    /// `σ = (e/c)^{1/(α-1)}`.
    #[inline]
    pub fn speed_for_energy_per_work_exact(&self, e: f64) -> f64 {
        (e / self.coefficient).powf(1.0 / (self.alpha - 1.0))
    }
}

impl Default for PolyPower {
    /// The paper's default: `P(σ) = σ³`.
    fn default() -> Self {
        PolyPower::CUBE
    }
}

impl PowerModel for PolyPower {
    fn power(&self, speed: f64) -> f64 {
        self.coefficient * speed.powf(self.alpha)
    }

    fn name(&self) -> String {
        if self.coefficient == 1.0 {
            format!("sigma^{}", self.alpha)
        } else {
            format!("{}*sigma^{}", self.coefficient, self.alpha)
        }
    }

    fn energy_per_work(&self, speed: f64) -> f64 {
        if speed <= 0.0 {
            return 0.0;
        }
        self.coefficient * speed.powf(self.alpha - 1.0)
    }

    fn speed_for_energy_per_work(&self, e: f64) -> Result<f64, PowerError> {
        if e < 0.0 {
            return Err(PowerError::Unreachable { energy_per_work: e });
        }
        Ok(self.speed_for_energy_per_work_exact(e))
    }

    fn power_derivative(&self, speed: f64) -> f64 {
        if speed <= 0.0 {
            return 0.0;
        }
        self.coefficient * self.alpha * speed.powf(self.alpha - 1.0)
    }

    fn power_second_derivative(&self, speed: f64) -> f64 {
        if speed <= 0.0 {
            return 0.0;
        }
        self.coefficient * self.alpha * (self.alpha - 1.0) * speed.powf(self.alpha - 2.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cube_matches_paper_example() {
        // Block of 2 work at speed 2 under σ³: energy = w·σ² = 8
        // (the {J2} block of the paper's Figure-1 instance at E ≥ 17).
        let m = PolyPower::CUBE;
        assert_eq!(m.energy(2.0, 2.0), 8.0);
        // Block of 5 work at speed 1: energy 5 (the {J1} block).
        assert_eq!(m.energy(5.0, 1.0), 5.0);
    }

    #[test]
    fn inverse_is_exact() {
        let m = PolyPower::new(3.0);
        // g(σ) = σ²; g⁻¹(9) = 3.
        assert_eq!(m.speed_for_energy_per_work(9.0).unwrap(), 3.0);
        // Round trip at awkward values.
        for &e in &[1e-6, 0.3, 1.0, 123.456, 1e9] {
            let s = m.speed_for_energy_per_work(e).unwrap();
            assert!((m.energy_per_work(s) - e).abs() / e < 1e-12);
        }
    }

    #[test]
    fn fractional_alpha() {
        let m = PolyPower::new(1.5);
        let s = m.speed_for_energy_per_work(2.0).unwrap();
        // g(σ) = σ^0.5 -> σ = 4.
        assert!((s - 4.0).abs() < 1e-12);
    }

    #[test]
    fn coefficient_scales_power() {
        let m = PolyPower::with_coefficient(2.0, 3.0);
        assert_eq!(m.power(2.0), 12.0);
        assert_eq!(m.energy_per_work(2.0), 6.0);
        let s = m.speed_for_energy_per_work(6.0).unwrap();
        assert!((s - 2.0).abs() < 1e-12);
    }

    #[test]
    fn derivative_closed_form() {
        let m = PolyPower::new(3.0);
        assert_eq!(m.power_derivative(2.0), 12.0);
        assert_eq!(m.power_derivative(0.0), 0.0);
        // P'' = 6σ for σ³.
        assert_eq!(m.power_second_derivative(2.0), 12.0);
        let numeric = pas_numeric::diff::second_derivative(|s| m.power(s), 2.0, 1e-4);
        assert!((m.power_second_derivative(2.0) - numeric).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "alpha > 1")]
    fn rejects_linear_power() {
        let _ = PolyPower::new(1.0);
    }

    #[test]
    #[should_panic(expected = "positive coefficient")]
    fn rejects_nonpositive_coefficient() {
        let _ = PolyPower::with_coefficient(3.0, 0.0);
    }

    #[test]
    fn zero_speed_draws_no_power() {
        let m = PolyPower::new(2.5);
        assert_eq!(m.power(0.0), 0.0);
        assert_eq!(m.energy_per_work(0.0), 0.0);
    }

    #[test]
    fn name_is_descriptive() {
        assert_eq!(PolyPower::CUBE.name(), "sigma^3");
        assert_eq!(PolyPower::with_coefficient(2.0, 0.5).name(), "0.5*sigma^2");
    }
}
