//! Multiprocessor power-aware scheduling (paper §5).
//!
//! The processors share one energy supply (a multi-core laptop, or a
//! server farm metered in aggregate). Two structural observations drive
//! the algorithms:
//!
//! 1. **Makespan**: in a non-dominated schedule every processor finishes
//!    at the same time (else slow the early finishers and save energy);
//! 2. **Total flow**: every processor's *last* job runs at the same
//!    speed (else average them).
//!
//! For **equal-work jobs**, Theorem 10 shows an optimal schedule exists
//! with jobs distributed in *cyclic order* (job `i` on processor
//! `i mod m`) for any symmetric non-decreasing metric — [`cyclic`]
//! implements the assignment and the brute-force enumerator the tests
//! use to confirm its optimality. [`makespan`] combines the cyclic
//! assignment with per-processor frontiers and equalized finish times;
//! [`flow`] combines it with per-processor Theorem-1 solves sharing a
//! global `u = σ_n^α`.
//!
//! For **unequal work**, Theorem 11 shows even two-processor makespan
//! with immediate releases is NP-hard, by reduction from Partition —
//! [`partition`] implements the reduction in both directions, exact
//! solvers (pseudo-polynomial subset-sum DP; `L_α`-norm branch and
//! bound), and the LPT / local-search heuristics that the §5 PTAS remark
//! (Alon et al.) motivates. The branch and bound is **incremental**:
//! its search state is a `pas_numeric::SortedLoads` (sorted load vector
//! with prefix sums), so the waterfill pruning bound is an `O(log m)`
//! query instead of a per-node re-sort — the seed engine survives as
//! `partition::min_norm_assignment_reference`, the equivalence oracle,
//! following the same engine-vs-reference convention as `yds_reference`
//! and `solve_for_u_reference` (see `BENCH_multi.json` for the measured
//! gap). [`parallel`] explores the same tree from a shared work deque
//! sized by `std::thread::available_parallelism`, and
//! [`makespan`]'s `laptop_immediate` turns the optimal assignment into
//! an executable immediate-release schedule.

pub mod cyclic;
pub mod flow;
pub mod makespan;
pub mod parallel;
pub mod partition;

pub use cyclic::cyclic_assignment;
