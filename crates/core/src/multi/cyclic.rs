//! Job-to-processor assignments: the Theorem-10 cyclic order and the
//! brute-force enumerator used to verify its optimality.

use pas_workload::Instance;

/// The Theorem-10 assignment: job `i` (in release-sorted order) runs on
/// processor `i mod m`. Returns, per processor, the sorted job positions
/// it receives (possibly empty for `m > n`).
///
/// # Panics
/// If `m == 0`.
pub fn cyclic_assignment(n: usize, m: usize) -> Vec<Vec<usize>> {
    assert!(m > 0, "need at least one processor");
    let mut out = vec![Vec::with_capacity(n / m + 1); m];
    for i in 0..n {
        out[i % m].push(i);
    }
    out
}

/// Convert a per-job processor labelling (`labels[i] = processor of job
/// i`) into per-processor position lists.
///
/// # Panics
/// If any label is `>= m`.
pub fn assignment_from_labels(labels: &[usize], m: usize) -> Vec<Vec<usize>> {
    let mut out = vec![Vec::new(); m];
    for (i, &p) in labels.iter().enumerate() {
        assert!(p < m, "label {p} out of range for {m} processors");
        out[p].push(i);
    }
    out
}

/// Enumerate every assignment of `n` jobs to `m` processors (`m^n`
/// labellings). Intended for the small-instance optimality tests of
/// Theorem 10; guarded against blowups.
///
/// # Panics
/// If `m^n` exceeds one million.
pub fn all_assignments(n: usize, m: usize) -> Vec<Vec<Vec<usize>>> {
    let total = (m as u64).checked_pow(n as u32).expect("overflow");
    assert!(
        total <= 1_000_000,
        "refusing to enumerate {total} assignments"
    );
    let mut out = Vec::with_capacity(total as usize);
    let mut labels = vec![0usize; n];
    loop {
        out.push(assignment_from_labels(&labels, m));
        // Increment the mixed-radix counter.
        let mut k = 0;
        loop {
            if k == n {
                return out;
            }
            labels[k] += 1;
            if labels[k] < m {
                break;
            }
            labels[k] = 0;
            k += 1;
        }
    }
}

/// Split `instance` into per-processor sub-instances along `assignment`
/// (position lists). Processors with no jobs yield `None`.
pub fn split_instance(instance: &Instance, assignment: &[Vec<usize>]) -> Vec<Option<Instance>> {
    assignment
        .iter()
        .map(|positions| {
            if positions.is_empty() {
                None
            } else {
                Some(
                    instance
                        .subset(positions)
                        .expect("positions are valid and non-empty"),
                )
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cyclic_round_robin() {
        let a = cyclic_assignment(7, 3);
        assert_eq!(a[0], vec![0, 3, 6]);
        assert_eq!(a[1], vec![1, 4]);
        assert_eq!(a[2], vec![2, 5]);
    }

    #[test]
    fn cyclic_more_processors_than_jobs() {
        let a = cyclic_assignment(2, 4);
        assert_eq!(a[0], vec![0]);
        assert_eq!(a[1], vec![1]);
        assert!(a[2].is_empty() && a[3].is_empty());
    }

    #[test]
    fn all_assignments_count() {
        assert_eq!(all_assignments(3, 2).len(), 8);
        assert_eq!(all_assignments(4, 3).len(), 81);
        // Every assignment covers all jobs exactly once.
        for a in all_assignments(3, 2) {
            let mut seen: Vec<usize> = a.concat();
            seen.sort_unstable();
            assert_eq!(seen, vec![0, 1, 2]);
        }
    }

    #[test]
    fn labels_round_trip() {
        let labels = [0usize, 1, 0, 2];
        let a = assignment_from_labels(&labels, 3);
        assert_eq!(a[0], vec![0, 2]);
        assert_eq!(a[1], vec![1]);
        assert_eq!(a[2], vec![3]);
    }

    #[test]
    fn split_preserves_jobs() {
        let inst = Instance::from_pairs(&[(0.0, 1.0), (1.0, 2.0), (2.0, 3.0)]).unwrap();
        let parts = split_instance(&inst, &cyclic_assignment(3, 2));
        let p0 = parts[0].as_ref().unwrap();
        let p1 = parts[1].as_ref().unwrap();
        assert_eq!(p0.len(), 2);
        assert_eq!(p1.len(), 1);
        assert_eq!(p0.total_work() + p1.total_work(), inst.total_work());
    }

    #[test]
    #[should_panic(expected = "refusing")]
    fn enumeration_guard() {
        let _ = all_assignments(30, 3);
    }
}
