//! Multiprocessor total flow for equal-work jobs: the arbitrarily-good
//! approximation of paper §5.
//!
//! Theorem 10 fixes the assignment (cyclic); the paper's Observation 2
//! says every processor's last job runs at the same speed in the
//! optimum, i.e. a single `u = σ_n^α` is shared by all processors. For a
//! trial `u`, each processor's schedule is its own uniprocessor
//! Theorem-1 solve ([`crate::flow::solver::solve_for_u`]); total energy
//! is strictly increasing in `u`, so the outer budget search is a
//! bracketed inversion, exactly as in the uniprocessor case.
//!
//! This module is the *equal-work* §5 flow path. Its unequal-work
//! makespan sibling — where the assignment itself is the hard part —
//! is [`crate::multi::partition`]'s incremental `L_α`-norm branch and
//! bound plus [`crate::multi::makespan::laptop_immediate`].

use crate::error::CoreError;
use crate::flow::solver::{resolve_inversion, FlowWorkspace};
use crate::multi::cyclic::{cyclic_assignment, split_instance};
use pas_numeric::compare::is_positive_finite;
use pas_numeric::roots::invert_monotone_fdf;
use pas_sim::{Schedule, Slice};
use pas_workload::Instance;

/// Result of a multiprocessor flow solve.
#[derive(Debug, Clone)]
pub struct MultiFlow {
    /// The executed multi-machine schedule.
    pub schedule: Schedule,
    /// Total flow across all jobs.
    pub total_flow: f64,
    /// Total energy across processors.
    pub energy: f64,
    /// The shared last-job speed parameter `u = σ_n^α`.
    pub u: f64,
    /// The per-processor job position lists used.
    pub assignment: Vec<Vec<usize>>,
}

/// Solve the equal-work multiprocessor flow laptop problem on `m`
/// processors with shared `budget`, to relative tolerance `tol`.
///
/// # Errors
/// [`CoreError::NotEqualWork`], [`CoreError::InvalidBudget`], or solver
/// errors from the per-processor Theorem-1 fixed points.
pub fn laptop(
    instance: &Instance,
    alpha: f64,
    m: usize,
    budget: f64,
    tol: f64,
) -> Result<MultiFlow, CoreError> {
    instance.validate()?;
    if !instance.is_equal_work(1e-9) {
        return Err(CoreError::NotEqualWork);
    }
    laptop_with_assignment(
        instance,
        alpha,
        &cyclic_assignment(instance.len(), m),
        budget,
        tol,
    )
}

/// [`laptop`] for an explicit assignment — the hook the Theorem-10
/// brute-force tests use.
///
/// # Errors
/// As [`laptop`] (equal work is still required: the per-processor solver
/// needs it).
pub fn laptop_with_assignment(
    instance: &Instance,
    alpha: f64,
    assignment: &[Vec<usize>],
    budget: f64,
    tol: f64,
) -> Result<MultiFlow, CoreError> {
    if !is_positive_finite(budget) {
        return Err(CoreError::InvalidBudget { budget });
    }
    if !instance.is_equal_work(1e-9) {
        return Err(CoreError::NotEqualWork);
    }
    let parts = split_instance(instance, assignment);
    // One workspace per non-empty processor, built once and shared by
    // every evaluation of the outer budget search (paper Observation 2:
    // all processors share the last-job parameter u).
    let workspaces = parts
        .iter()
        .map(|part| {
            part.as_ref()
                .map(|p| FlowWorkspace::new(p, alpha))
                .transpose()
        })
        .collect::<Result<Vec<_>, _>>()?;

    // Total energy is the sum of per-processor energies, each strictly
    // increasing in u with a closed-form derivative from its block
    // structure — so the outer inversion is derivative-seeded Newton,
    // and the first real solver error is captured rather than surfaced
    // as a bracket failure.
    let mut first_err: Option<CoreError> = None;
    let total_energy_fdf = |u: f64| -> (f64, f64) {
        if first_err.is_some() {
            return (f64::NAN, f64::NAN);
        }
        let mut e = 0.0;
        let mut de = 0.0;
        for ws in workspaces.iter().flatten() {
            match ws.energy_fdf(u) {
                Ok((we, wde)) => {
                    e += we;
                    de += wde;
                }
                Err(err) => {
                    first_err = Some(err);
                    return (f64::NAN, f64::NAN);
                }
            }
        }
        (e, de)
    };

    let guess = (budget / instance.total_work()).powf(alpha / (alpha - 1.0));
    let inverted = invert_monotone_fdf(
        total_energy_fdf,
        budget,
        guess,
        0.0,
        budget * tol.max(1e-13),
    );
    let u = resolve_inversion(inverted, first_err)?;

    let mut schedule = Schedule::with_machines(assignment.len());
    let mut flow = 0.0;
    let mut energy = 0.0;
    for (p, (part, ws)) in parts.iter().zip(&workspaces).enumerate() {
        let Some(inst) = part else { continue };
        let sol = ws.as_ref().expect("workspace exists for part").solve(u)?;
        flow += sol.total_flow;
        energy += sol.energy;
        for i in 0..inst.len() {
            schedule.push(
                p,
                Slice::new(
                    inst.job(i).id,
                    sol.starts[i],
                    sol.completions[i],
                    sol.speeds[i],
                ),
            );
        }
    }
    Ok(MultiFlow {
        schedule,
        total_flow: flow,
        energy,
        u,
        assignment: assignment.to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multi::cyclic::all_assignments;
    use pas_power::{PolyPower, PowerModel};
    use pas_sim::metrics;

    #[test]
    fn two_simultaneous_jobs_two_processors() {
        // Each processor one unit job from t=0; shared u forces equal
        // speeds; budget 8 -> each spends 4: σ² = 4, σ = 2, flow = 1.
        let inst = Instance::equal_work(&[0.0, 0.0], 1.0).unwrap();
        let sol = laptop(&inst, 3.0, 2, 8.0, 1e-11).unwrap();
        assert!((sol.total_flow - 1.0).abs() < 1e-6, "{}", sol.total_flow);
        assert!((sol.energy - 8.0).abs() < 1e-6);
        sol.schedule.validate(&inst, 1e-6).unwrap();
    }

    #[test]
    fn last_jobs_share_a_speed() {
        // Paper Observation 2.
        let inst = Instance::equal_work(&[0.0, 0.2, 0.4, 0.6, 3.0], 1.0).unwrap();
        let sol = laptop(&inst, 3.0, 2, 20.0, 1e-11).unwrap();
        let speeds = sol.schedule.job_speeds(1e-9);
        // Last job on each machine:
        let mut last_speeds = Vec::new();
        for lane in sol.schedule.machines() {
            if let Some(last) = lane.last() {
                last_speeds.push(speeds[&last.job].expect("single speed"));
            }
        }
        assert_eq!(last_speeds.len(), 2);
        assert!(
            (last_speeds[0] - last_speeds[1]).abs() < 1e-6,
            "{last_speeds:?}"
        );
        // And both equal u^{1/3}.
        assert!((last_speeds[0] - sol.u.powf(1.0 / 3.0)).abs() < 1e-6);
    }

    #[test]
    fn flow_decreases_with_budget_and_processors() {
        let inst = Instance::equal_work(&[0.0, 0.1, 0.2, 0.3, 0.4, 0.5], 1.0).unwrap();
        let mut prev = f64::INFINITY;
        for &e in &[3.0, 6.0, 12.0, 24.0] {
            let f = laptop(&inst, 3.0, 2, e, 1e-11).unwrap().total_flow;
            assert!(f < prev, "E={e}");
            prev = f;
        }
        let one = laptop(&inst, 3.0, 1, 12.0, 1e-11).unwrap().total_flow;
        let two = laptop(&inst, 3.0, 2, 12.0, 1e-11).unwrap().total_flow;
        let three = laptop(&inst, 3.0, 3, 12.0, 1e-11).unwrap().total_flow;
        assert!(two <= one + 1e-9);
        assert!(three <= two + 1e-9);
    }

    #[test]
    fn cyclic_is_optimal_among_all_assignments_for_flow() {
        // Theorem 10 applies to total flow (symmetric, non-decreasing).
        for releases in [vec![0.0, 0.0, 0.5, 1.0], vec![0.0, 0.4, 0.8, 1.2, 1.6]] {
            let inst = Instance::equal_work(&releases, 1.0).unwrap();
            let budget = 10.0;
            let cyc = laptop(&inst, 3.0, 2, budget, 1e-10).unwrap();
            let mut best = f64::INFINITY;
            for a in all_assignments(inst.len(), 2) {
                if let Ok(sol) = laptop_with_assignment(&inst, 3.0, &a, budget, 1e-10) {
                    best = best.min(sol.total_flow);
                }
            }
            assert!(
                cyc.total_flow <= best + 1e-5,
                "releases {releases:?}: cyclic {} vs best {best}",
                cyc.total_flow
            );
        }
    }

    #[test]
    fn single_processor_matches_uniprocessor_solver() {
        let inst = Instance::equal_work(&[0.0, 0.3, 2.0], 1.0).unwrap();
        let multi = laptop(&inst, 3.0, 1, 9.0, 1e-11).unwrap();
        let uni = crate::flow::solver::laptop(&inst, 3.0, 9.0, 1e-11).unwrap();
        assert!(
            (multi.total_flow - uni.total_flow).abs() < 1e-6,
            "{} vs {}",
            multi.total_flow,
            uni.total_flow
        );
    }

    #[test]
    fn schedule_energy_matches_reported_energy() {
        let inst = Instance::equal_work(&[0.0, 0.2, 0.7, 1.1], 1.5).unwrap();
        let sol = laptop(&inst, 3.0, 2, 25.0, 1e-11).unwrap();
        let measured = metrics::energy(&sol.schedule, &PolyPower::CUBE);
        assert!(
            (measured - sol.energy).abs() < 1e-6 * sol.energy,
            "{measured} vs {}",
            sol.energy
        );
        // Sanity on the model's numbers.
        assert!(PolyPower::CUBE.energy(1.0, 1.0) == 1.0);
    }

    #[test]
    fn rejects_unequal_work() {
        let uneq = Instance::from_pairs(&[(0.0, 1.0), (0.0, 2.0)]).unwrap();
        assert!(matches!(
            laptop(&uneq, 3.0, 2, 4.0, 1e-9),
            Err(CoreError::NotEqualWork)
        ));
    }

    #[test]
    fn weighted_flow_breaks_cyclic_optimality() {
        // Theorem 10 requires a *symmetric* metric; the paper names
        // weighted flow as the counterexample. Demonstrate it: with a
        // huge weight on job 2, swapping jobs 1 and 2 across processors
        // (a non-cyclic assignment) strictly beats cyclic under weighted
        // flow, while (by Theorem 10) it cannot beat it under plain flow.
        use std::collections::HashMap;
        // Three simultaneous unit jobs, two processors. Cyclic pairs
        // {0,2} and leaves {1} alone; under a shared u the *first of a
        // pair* runs at (2u)^{1/3} while a singleton's job runs at
        // u^{1/3} — so a heavily weighted job prefers to lead a pair.
        let inst = Instance::equal_work(&[0.0, 0.0, 0.0], 1.0).unwrap();
        let budget = 8.0;
        let cyclic = laptop(&inst, 3.0, 2, budget, 1e-10).unwrap();
        // Non-cyclic: job 1 leads the pair instead of sitting alone.
        let swapped =
            laptop_with_assignment(&inst, 3.0, &[vec![1, 2], vec![0]], budget, 1e-10).unwrap();
        let mut weights: HashMap<u32, f64> = HashMap::new();
        weights.insert(1, 100.0);
        let wf_cyc = metrics::weighted_flow(&cyclic.schedule, &inst, &weights);
        let wf_swp = metrics::weighted_flow(&swapped.schedule, &inst, &weights);
        // The asymmetric metric prefers the non-cyclic assignment...
        assert!(
            wf_swp < wf_cyc,
            "weighted flow: swapped {wf_swp} vs cyclic {wf_cyc}"
        );
        // ...while the symmetric one does not (Theorem 10).
        assert!(cyclic.total_flow <= swapped.total_flow + 1e-6);
    }
}
