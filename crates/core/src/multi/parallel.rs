//! Parallel branch and bound for the `L_α`-norm assignment problem.
//!
//! Theorem 11 makes exact multiprocessor makespan exponential, so the
//! exact solver's constant factor matters for the experiment sizes. This
//! module parallelizes [`crate::multi::partition::min_norm_assignment`]
//! across the first branching level with `std::thread` scoped threads:
//! each worker explores the subtree in which job 0 (heaviest) is pinned
//! to one processor, and all workers share the incumbent best norm
//! through a lock-free `AtomicU64` (f64 bits, monotone-decreasing via
//! `fetch_min`-style CAS) so pruning stays global.
//!
//! Determinism: the *norm* returned equals the sequential solver's
//! exactly (both find the true optimum); the labelling may differ among
//! norm-ties, so tests compare norms, not labels.

use std::sync::atomic::{AtomicU64, Ordering};
use std::thread;

/// Shared incumbent: best norm found so far, stored as f64 bits.
///
/// Monotone decreasing updates via CAS; loads are `Acquire` so a worker
/// that sees a better bound also sees it fully (the payload labels are
/// merged after join, so only the *bound* needs to be shared).
struct SharedBest(AtomicU64);

impl SharedBest {
    fn new() -> Self {
        SharedBest(AtomicU64::new(f64::INFINITY.to_bits()))
    }

    fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Acquire))
    }

    /// Lower the incumbent to `value` if it improves; returns whether it
    /// did. Standard CAS loop — `fetch_min` on the bit pattern is not
    /// order-preserving for floats, so compare as f64.
    fn offer(&self, value: f64) -> bool {
        let mut current = self.0.load(Ordering::Acquire);
        loop {
            if value >= f64::from_bits(current) {
                return false;
            }
            match self.0.compare_exchange_weak(
                current,
                value.to_bits(),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return true,
                Err(seen) => current = seen,
            }
        }
    }
}

/// Exact minimum of `Σ L_p^α` over assignments of `works` to `m`
/// processors — parallel version of
/// [`crate::multi::partition::min_norm_assignment`], same result.
///
/// Workers = one per first-level branch (at most `m`, with symmetry
/// breaking collapsing the empty processors to one branch).
///
/// # Panics
/// If `m == 0`.
pub fn min_norm_assignment_parallel(works: &[f64], m: usize, alpha: f64) -> (Vec<usize>, f64) {
    assert!(m > 0, "need at least one processor");
    let n = works.len();
    if n <= 1 || m == 1 {
        // Nothing to parallelize.
        return crate::multi::partition::min_norm_assignment(works, m, alpha);
    }
    // Sort jobs descending, as in the sequential solver.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| works[b].total_cmp(&works[a]));
    let sorted: Vec<f64> = order.iter().map(|&i| works[i]).collect();
    let suffix: Vec<f64> = {
        let mut s = vec![0.0; n + 1];
        for i in (0..n).rev() {
            s[i] = s[i + 1] + sorted[i];
        }
        s
    };

    let best = SharedBest::new();
    // By symmetry, job 0 (heaviest) can be pinned to processor 0: all
    // first-level branches are equivalent. Parallelize over the SECOND
    // job's processor — with every other processor still empty, only
    // "share with job 0" (processor 0) and "open a fresh processor"
    // (processor 1) are distinct.
    let branches: Vec<usize> = vec![0, 1];

    let results = thread::scope(|scope| {
        let handles: Vec<_> = branches
            .iter()
            .map(|&p1| {
                let sorted = &sorted;
                let suffix = &suffix;
                let best = &best;
                scope.spawn(move || {
                    let mut loads = vec![0.0f64; m];
                    let mut labels = vec![0usize; n];
                    loads[0] += sorted[0];
                    labels[0] = 0;
                    loads[p1] += sorted[1];
                    labels[1] = p1;
                    let mut local_best_labels = vec![0usize; n];
                    let mut local_best = f64::INFINITY;
                    explore(
                        2,
                        sorted,
                        suffix,
                        &mut loads,
                        &mut labels,
                        best,
                        &mut local_best,
                        &mut local_best_labels,
                        alpha,
                    );
                    (local_best, local_best_labels)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker does not panic"))
            .collect::<Vec<_>>()
    });

    let (norm, labels_sorted) = results
        .into_iter()
        .min_by(|a, b| a.0.total_cmp(&b.0))
        .expect("at least one branch");

    // Map labels back to original job order.
    let mut out = vec![0usize; n];
    for (pos, &orig) in order.iter().enumerate() {
        out[orig] = labels_sorted[pos];
    }
    (out, norm)
}

/// Sequential subtree exploration against the shared incumbent.
#[allow(clippy::too_many_arguments)] // recursion carries its whole state explicitly
fn explore(
    k: usize,
    sorted: &[f64],
    suffix: &[f64],
    loads: &mut [f64],
    labels: &mut [usize],
    shared: &SharedBest,
    local_best: &mut f64,
    local_best_labels: &mut [usize],
    alpha: f64,
) {
    if waterfill_bound(loads, suffix[k], alpha) >= shared.get() {
        return;
    }
    if k == sorted.len() {
        let norm: f64 = loads.iter().map(|l| l.powf(alpha)).sum();
        if norm < *local_best {
            *local_best = norm;
            local_best_labels.copy_from_slice(labels);
        }
        shared.offer(norm);
        return;
    }
    let mut tried_empty = false;
    for p in 0..loads.len() {
        if loads[p] == 0.0 {
            if tried_empty {
                continue;
            }
            tried_empty = true;
        }
        loads[p] += sorted[k];
        labels[k] = p;
        explore(
            k + 1,
            sorted,
            suffix,
            loads,
            labels,
            shared,
            local_best,
            local_best_labels,
            alpha,
        );
        loads[p] -= sorted[k];
    }
}

/// The same divisible-relaxation lower bound as the sequential solver.
fn waterfill_bound(loads: &[f64], rest: f64, alpha: f64) -> f64 {
    let mut ls = loads.to_vec();
    ls.sort_by(|a, b| a.total_cmp(b));
    let m = ls.len();
    let mut r = rest;
    let mut level = ls[0];
    let mut k = 1usize;
    while k < m && r > 0.0 {
        let need = (ls[k] - level) * k as f64;
        if need <= r {
            r -= need;
            level = ls[k];
            k += 1;
        } else {
            level += r / k as f64;
            r = 0.0;
        }
    }
    if r > 0.0 {
        level += r / m as f64;
    }
    ls.iter().map(|&l| l.max(level).powf(alpha)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multi::partition::min_norm_assignment;

    #[test]
    fn matches_sequential_optimum() {
        for (n, m) in [(8usize, 2usize), (10, 3), (12, 2), (14, 3)] {
            let works: Vec<f64> = (0..n).map(|k| 0.3 + (k as f64 * 0.61) % 2.7).collect();
            let (_, seq) = min_norm_assignment(&works, m, 3.0);
            let (labels, par) = min_norm_assignment_parallel(&works, m, 3.0);
            assert!(
                (seq - par).abs() < 1e-9 * seq,
                "n={n} m={m}: sequential {seq} vs parallel {par}"
            );
            // The returned labelling realizes the claimed norm.
            let mut loads = vec![0.0f64; m];
            for (w, &p) in works.iter().zip(&labels) {
                loads[p] += w;
            }
            let realized: f64 = loads.iter().map(|l| l.powi(3)).sum();
            assert!((realized - par).abs() < 1e-9 * par);
        }
    }

    #[test]
    fn trivial_cases_delegate() {
        let (labels, norm) = min_norm_assignment_parallel(&[2.0], 3, 3.0);
        assert_eq!(labels, vec![0]);
        assert!((norm - 8.0).abs() < 1e-12);
        let (_, norm1) = min_norm_assignment_parallel(&[1.0, 2.0, 3.0], 1, 2.0);
        assert!((norm1 - 36.0).abs() < 1e-12);
    }

    #[test]
    fn shared_best_orders_correctly() {
        let b = SharedBest::new();
        assert!(b.offer(10.0));
        assert!(!b.offer(11.0));
        assert!(b.offer(9.5));
        assert!((b.get() - 9.5).abs() < 1e-300);
    }

    #[test]
    fn equal_works_split_evenly() {
        let works = vec![1.0; 9];
        let (_, norm) = min_norm_assignment_parallel(&works, 3, 2.0);
        assert!((norm - 27.0).abs() < 1e-9); // 3 procs × 3² = 27
    }
}
