//! Parallel branch and bound for the `L_α`-norm assignment problem.
//!
//! Theorem 11 makes exact multiprocessor makespan exponential, so the
//! exact solver's constant factor matters for the experiment sizes. This
//! module parallelizes [`crate::multi::partition::min_norm_assignment`]
//! (the incremental engine — same `SearchCore`/`descend` search core,
//! same seeded incumbent) across subtrees:
//!
//! * the first few levels of the search tree are expanded breadth-first
//!   — with the same equal-load symmetry breaking the sequential engine
//!   uses — into a **shared work deque** of prefix assignments, until
//!   there are several tasks per worker (so one heavy subtree cannot
//!   serialize the run);
//! * the worker count respects [`std::thread::available_parallelism`]
//!   (capped by the task count) instead of spawning a thread per branch
//!   unconditionally;
//! * all workers share the incumbent best norm through a lock-free
//!   `AtomicU64` (f64 bits, monotone-decreasing CAS), seeded with the
//!   LPT + local-search upper bound, so pruning stays global from the
//!   first node.
//!
//! Determinism: the *norm* returned equals the sequential solver's
//! exactly (both find the true optimum); the labelling may differ among
//! norm-ties, so tests compare norms, not labels.

use crate::budget::{Budgeted, Degradation, SharedGate, SolveBudget};
use crate::multi::partition::{descend, Incumbent, SearchCore};
use pas_numeric::SortedLoads;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::thread;

/// Shared incumbent: best norm found so far, stored as f64 bits.
///
/// Monotone decreasing updates via CAS; loads are `Acquire` so a worker
/// that sees a better bound also sees it fully (the payload labels are
/// merged after join, so only the *bound* needs to be shared).
struct SharedBest(AtomicU64);

impl SharedBest {
    fn new(seed: f64) -> Self {
        SharedBest(AtomicU64::new(seed.to_bits()))
    }

    fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Acquire))
    }

    /// Lower the incumbent to `value` if it improves; returns whether it
    /// did. Standard CAS loop — `fetch_min` on the bit pattern is not
    /// order-preserving for floats, so compare as f64.
    fn offer(&self, value: f64) -> bool {
        let mut current = self.0.load(Ordering::Acquire);
        loop {
            if value >= f64::from_bits(current) {
                return false;
            }
            match self.0.compare_exchange_weak(
                current,
                value.to_bits(),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return true,
                Err(seen) => current = seen,
            }
        }
    }
}

/// A worker-side incumbent: prunes against the global atomic, keeps the
/// best labelling it found locally (labels are merged after join).
struct ParIncumbent<'a> {
    shared: &'a SharedBest,
    best: f64,
    labels: Vec<usize>,
}

impl Incumbent for ParIncumbent<'_> {
    fn prune_at(&self) -> f64 {
        self.shared.get()
    }

    fn offer(&mut self, norm: f64, labels: &[usize]) {
        if norm < self.best {
            self.best = norm;
            self.labels.copy_from_slice(labels);
        }
        self.shared.offer(norm);
    }
}

/// Exact minimum of `Σ L_p^α` over assignments of `works` to `m`
/// processors — parallel version of
/// [`crate::multi::partition::min_norm_assignment`], same result.
///
/// Worker count: [`std::thread::available_parallelism`], capped by the
/// number of frontier tasks. Use
/// [`min_norm_assignment_parallel_with`] to pin it explicitly.
///
/// # Panics
/// If `m == 0`.
pub fn min_norm_assignment_parallel(works: &[f64], m: usize, alpha: f64) -> (Vec<usize>, f64) {
    let workers = thread::available_parallelism().map_or(1, usize::from);
    min_norm_assignment_parallel_with(works, m, alpha, workers)
}

/// [`min_norm_assignment_parallel`] with an explicit worker count —
/// also the hook tests use to exercise the deque/atomic machinery on
/// single-core machines.
///
/// # Panics
/// If `m == 0` or `workers == 0`.
pub fn min_norm_assignment_parallel_with(
    works: &[f64],
    m: usize,
    alpha: f64,
    workers: usize,
) -> (Vec<usize>, f64) {
    min_norm_assignment_parallel_budgeted_with(works, m, alpha, &SolveBudget::UNLIMITED, workers)
        .into_value()
}

/// Budgeted parallel search with the worker count chosen from
/// [`std::thread::available_parallelism`]. See
/// [`min_norm_assignment_parallel_budgeted_with`].
///
/// # Panics
/// If `m == 0`.
pub fn min_norm_assignment_parallel_budgeted(
    works: &[f64],
    m: usize,
    alpha: f64,
    budget: &SolveBudget,
) -> Budgeted<(Vec<usize>, f64)> {
    let workers = thread::available_parallelism().map_or(1, usize::from);
    min_norm_assignment_parallel_budgeted_with(works, m, alpha, budget, workers)
}

/// Parallel version of
/// [`min_norm_assignment_budgeted`](crate::multi::partition::min_norm_assignment_budgeted):
/// workers share a stop flag and a batched node counter, so exhaustion
/// is detected within one batch (~64 nodes) per worker; every subtree a
/// worker abandons contributes its relaxation bound to the shared
/// certificate, keeping the degraded result's gap sound even though
/// the frontier is split across threads.
///
/// With an unlimited budget this is exactly
/// [`min_norm_assignment_parallel_with`].
///
/// # Panics
/// If `m == 0` or `workers == 0`.
pub fn min_norm_assignment_parallel_budgeted_with(
    works: &[f64],
    m: usize,
    alpha: f64,
    budget: &SolveBudget,
    workers: usize,
) -> Budgeted<(Vec<usize>, f64)> {
    assert!(m > 0, "need at least one processor");
    assert!(workers > 0, "need at least one worker");
    let n = works.len();
    if n <= 2 || m == 1 || workers == 1 {
        // Nothing to parallelize (n ≤ 2 has at most two distinct
        // branches after symmetry breaking).
        return crate::multi::partition::min_norm_assignment_budgeted(works, m, alpha, budget);
    }
    let core = SearchCore::new(works, m, alpha);
    let (seed_labels, seed_norm) = core.seed_incumbent();

    // Expand the top of the tree breadth-first into frontier tasks:
    // prefix label vectors, symmetry-broken exactly like the sequential
    // engine, until there are a few tasks per worker (or the tree is
    // exhausted, in which case the frontier IS the leaf set).
    let target = 4 * workers;
    let mut frontier: Vec<Vec<usize>> = vec![Vec::new()];
    let mut depth = 0usize;
    while depth < n && frontier.len() < target {
        let mut next = Vec::with_capacity(frontier.len() * m);
        for prefix in &frontier {
            let mut st = SortedLoads::new(m, alpha);
            for (k, &p) in prefix.iter().enumerate() {
                st.raise(p, st.load(p) + core.sorted[k]);
            }
            let mut prev = f64::NAN;
            let mut first = true;
            for pos in 0..m {
                let slot = st.slot_at(pos);
                let load = st.load(slot);
                if !first && load.total_cmp(&prev).is_eq() {
                    continue;
                }
                first = false;
                prev = load;
                let mut child = prefix.clone();
                child.push(slot);
                next.push(child);
            }
        }
        frontier = next;
        depth += 1;
    }

    let best = SharedBest::new(seed_norm);
    let gate = SharedGate::new(budget);
    let queue: Mutex<Vec<Vec<usize>>> = Mutex::new(frontier);
    let workers = workers.min(queue.lock().expect("unpoisoned").len().max(1));

    let results = thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let core = &core;
                let best = &best;
                let queue = &queue;
                let gate = &gate;
                scope.spawn(move || {
                    let mut inc = ParIncumbent {
                        shared: best,
                        best: f64::INFINITY,
                        labels: vec![0usize; n],
                    };
                    let mut labels = vec![0usize; n];
                    let mut scratch = vec![0usize; n * m];
                    let mut wgate = gate.worker();
                    loop {
                        let Some(prefix) = queue.lock().expect("unpoisoned").pop() else {
                            break;
                        };
                        // Rebuild the committed loads for this subtree.
                        // Even after exhaustion the queue is drained:
                        // `descend`'s first tick fails and the subtree's
                        // root bound joins the certificate, so no part
                        // of the tree escapes accounting.
                        let mut st = SortedLoads::new(m, alpha);
                        for (k, &p) in prefix.iter().enumerate() {
                            st.raise(p, st.load(p) + core.sorted[k]);
                            labels[k] = p;
                        }
                        descend(
                            core,
                            &mut st,
                            &mut labels,
                            prefix.len(),
                            &mut scratch,
                            &mut inc,
                            &mut wgate,
                        );
                    }
                    (inc.best, inc.labels)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker does not panic"))
            .collect::<Vec<_>>()
    });

    // Merge worker results with the heuristic seed: if no worker beat
    // the seed (it was already optimal), the seed labelling stands.
    let (norm, labels_sorted) = results
        .into_iter()
        .chain(std::iter::once((seed_norm, seed_labels)))
        .min_by(|a, b| a.0.total_cmp(&b.0))
        .expect("at least the seed");

    let value = (core.unsort_labels(&labels_sorted), norm);
    if gate.exhausted() {
        let lower_bound = norm.min(gate.min_abandoned());
        Budgeted::Degraded(Degradation {
            bound_gap: norm - lower_bound,
            lower_bound,
            value,
            nodes: gate.nodes(),
            elapsed: gate.elapsed(),
        })
    } else {
        Budgeted::Exact(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multi::partition::{min_norm_assignment, min_norm_assignment_reference};

    #[test]
    fn matches_sequential_optimum() {
        for (n, m) in [(8usize, 2usize), (10, 3), (12, 2), (14, 3), (15, 6)] {
            let works: Vec<f64> = (0..n).map(|k| 0.3 + (k as f64 * 0.61) % 2.7).collect();
            let (_, seq) = min_norm_assignment(&works, m, 3.0);
            let (_, reference) = min_norm_assignment_reference(&works, m, 3.0);
            // Pinned worker count so the deque/atomic path runs even on
            // single-core CI machines.
            let (labels, par) = super::min_norm_assignment_parallel_with(&works, m, 3.0, 3);
            assert!(
                (seq - par).abs() < 1e-9 * seq,
                "n={n} m={m}: sequential {seq} vs parallel {par}"
            );
            assert!(
                (reference - par).abs() < 1e-9 * reference,
                "n={n} m={m}: reference {reference} vs parallel {par}"
            );
            // The returned labelling realizes the claimed norm.
            let mut loads = vec![0.0f64; m];
            for (w, &p) in works.iter().zip(&labels) {
                loads[p] += w;
            }
            let realized: f64 = loads.iter().map(|l| l.powi(3)).sum();
            assert!((realized - par).abs() < 1e-9 * par);
        }
    }

    #[test]
    fn trivial_cases_delegate() {
        let (labels, norm) = min_norm_assignment_parallel(&[2.0], 3, 3.0);
        assert_eq!(labels, vec![0]);
        assert!((norm - 8.0).abs() < 1e-12);
        let (_, norm1) = min_norm_assignment_parallel(&[1.0, 2.0, 3.0], 1, 2.0);
        assert!((norm1 - 36.0).abs() < 1e-12);
    }

    #[test]
    fn shared_best_orders_correctly() {
        let b = SharedBest::new(f64::INFINITY);
        assert!(b.offer(10.0));
        assert!(!b.offer(11.0));
        assert!(b.offer(9.5));
        assert!((b.get() - 9.5).abs() < 1e-300);
    }

    #[test]
    fn equal_works_split_evenly() {
        let works = vec![1.0; 9];
        let (_, norm) = super::min_norm_assignment_parallel_with(&works, 3, 2.0, 4);
        assert!((norm - 27.0).abs() < 1e-9); // 3 procs × 3² = 27
    }

    #[test]
    fn budgeted_parallel_degrades_soundly() {
        let works: Vec<f64> = (0..16).map(|k| 0.3 + (k as f64 * 0.61) % 2.7).collect();
        let (m, alpha) = (4usize, 3.0);
        let (_, opt) = min_norm_assignment(&works, m, alpha);
        // Tiny node budget: must degrade, with a sound certificate.
        let out = super::min_norm_assignment_parallel_budgeted_with(
            &works,
            m,
            alpha,
            &SolveBudget::nodes(16),
            3,
        );
        let d = out.degradation().expect("16 nodes cannot finish n=16");
        assert!(d.bound_gap >= 0.0);
        assert!(d.lower_bound <= opt + 1e-9 * opt);
        assert!(d.value.1 >= opt - 1e-9 * opt);
        // Unlimited budget through the same entry: exact and equal to
        // the sequential optimum.
        let exact = super::min_norm_assignment_parallel_budgeted_with(
            &works,
            m,
            alpha,
            &SolveBudget::UNLIMITED,
            3,
        );
        assert!(!exact.is_degraded());
        assert!((exact.value().1 - opt).abs() < 1e-9 * opt);
    }

    #[test]
    fn more_processors_than_jobs() {
        let works = [2.0, 1.0, 0.5];
        let (labels, norm) = super::min_norm_assignment_parallel_with(&works, 8, 3.0, 2);
        // Optimal: every job alone.
        assert!((norm - (8.0 + 1.0 + 0.125)).abs() < 1e-9);
        let distinct: std::collections::HashSet<_> = labels.iter().collect();
        assert_eq!(distinct.len(), 3);
    }
}
