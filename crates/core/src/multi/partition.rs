//! Theorem 11: NP-hardness of multiprocessor makespan with unequal work,
//! by reduction from Partition — plus the exact solvers and heuristics
//! that make the reduction executable and the §5 PTAS remark concrete.
//!
//! With all jobs released at time 0, a processor's optimal schedule runs
//! its whole load `L_p` as one block from time 0 (Lemmas 2–5 collapse),
//! so at common finish time `T` its speed is `L_p/T` and — for
//! `P = σ^α` — its energy is `L_p^α·T^{1−α}`. Hence the minimum energy
//! for makespan `T` is `‖L‖_α^α · T^{1−α}`: **minimizing makespan under
//! an energy budget is exactly minimizing the `L_α` norm of the loads**,
//! which is the connection to Alon et al.'s load-balancing PTAS that the
//! paper points out. The reduction: a Partition instance with total `B`
//! has a perfect split iff two processors can reach makespan `B/2` with
//! energy budget `B` (all speeds 1), because
//! `Σ L_p^α ≥ 2·(B/2)^α` with equality only at `L_1 = L_2 = B/2`
//! (strict convexity).

use crate::budget::{BudgetGate, Budgeted, Degradation, SearchGate, SolveBudget};
use crate::error::CoreError;
use pas_numeric::SortedLoads;
use pas_power::PowerModel;
use pas_workload::{Instance, Job};

/// The scheduling instance produced by the Theorem-11 reduction.
#[derive(Debug, Clone)]
pub struct Reduction {
    /// Jobs: one per Partition value, all released at 0.
    pub instance: Instance,
    /// Two processors, as in the paper's proof.
    pub machines: usize,
    /// Makespan to ask about: `B/2`.
    pub makespan_target: f64,
    /// Energy budget: enough to run total work `B` at speed 1.
    pub energy_budget: f64,
}

/// Build the Theorem-11 reduction from a Partition multiset.
///
/// # Errors
/// [`CoreError::Instance`] if `values` is empty or contains zeros.
pub fn reduce<M: PowerModel>(values: &[u64], model: &M) -> Result<Reduction, CoreError> {
    let jobs: Vec<Job> = values
        .iter()
        .enumerate()
        .map(|(i, &v)| Job::new(i as u32, 0.0, v as f64))
        .collect();
    let instance = Instance::new(jobs)?;
    let b: f64 = values.iter().map(|&v| v as f64).sum();
    Ok(Reduction {
        instance,
        machines: 2,
        makespan_target: b / 2.0,
        energy_budget: b * model.energy_per_work(1.0),
    })
}

/// Exact Partition decision (and witness) via pseudo-polynomial
/// subset-sum DP. Returns the indices of one half when a perfect
/// partition exists.
pub fn partition_witness(values: &[u64]) -> Option<Vec<usize>> {
    let total: u64 = values.iter().sum();
    if !total.is_multiple_of(2) {
        return None;
    }
    let half = (total / 2) as usize;
    // reach[s] = index of the item that first reached sum s (usize::MAX
    // for "unreached"; items are processed once, so walking parents
    // terminates).
    const UNREACHED: usize = usize::MAX;
    let mut reach = vec![UNREACHED; half + 1];
    reach[0] = values.len(); // sentinel parent for sum 0
    for (idx, &v) in values.iter().enumerate() {
        let v = v as usize;
        if v > half {
            continue;
        }
        // Descend so each item is used at most once.
        for s in (v..=half).rev() {
            if reach[s] == UNREACHED && reach[s - v] != UNREACHED && reach[s - v] != idx {
                reach[s] = idx;
            }
        }
    }
    if reach[half] == UNREACHED {
        return None;
    }
    // Walk parents to reconstruct the chosen indices.
    let mut out = Vec::new();
    let mut s = half;
    while s > 0 {
        let idx = reach[s];
        out.push(idx);
        s -= values[idx] as usize;
    }
    out.reverse();
    Some(out)
}

/// Minimum makespan on `m` processors for jobs all released at 0 with
/// loads `works`, energy budget `budget`, under `P = σ^α`:
/// `T = (Σ L_p^α / E)^{1/(α−1)}` for the best assignment.
///
/// `assignment_loads` are the per-processor load sums.
pub fn makespan_for_loads(loads: &[f64], alpha: f64, budget: f64) -> f64 {
    let norm: f64 = loads.iter().map(|l| l.powf(alpha)).sum();
    (norm / budget).powf(1.0 / (alpha - 1.0))
}

/// Exact minimum of `Σ L_p^α` over all assignments of `works` to `m`
/// processors, by **incremental** branch and bound. Returns the per-job
/// processor labels and the optimal norm.
///
/// The search keeps its state in a [`SortedLoads`] (`pas-numeric`): the
/// per-processor loads stay sorted under `O(shift)` rotations per
/// push/pop, and the divisible-relaxation waterfill lower bound is a
/// lazy prefix refresh plus a binary search plus a single `powf` —
/// instead of the full re-sort and `m`-`powf` re-scan per node that
/// [`min_norm_assignment_reference`] (the seed engine, kept as the
/// equivalence oracle) pays. Three further structural savings:
///
/// * the incumbent is **seeded** with [`lpt_assignment`] refined by
///   [`local_search`], so pruning bites from the first node;
/// * symmetry breaking skips every processor whose load *equals* an
///   already-tried one (the seed engine only collapsed empty
///   processors), which also subsumes the `m > n` case;
/// * the last job goes straight to the least-loaded processor — by
///   convexity that placement is optimal for the leaf's parent.
///
/// Exponential worst case — this is the NP-hard side of Theorem 11 —
/// but the incremental state and seeded incumbent put `n ≈ 30–40`,
/// `m ≈ 4–8` within reach (see `BENCH_multi.json`), where the seed
/// engine handled `n ≤ ~24`. Callers with a latency obligation should
/// use [`min_norm_assignment_budgeted`], which this function *is* (with
/// an unlimited budget), so the two paths cannot diverge.
pub fn min_norm_assignment(works: &[f64], m: usize, alpha: f64) -> (Vec<usize>, f64) {
    min_norm_assignment_budgeted(works, m, alpha, &SolveBudget::UNLIMITED).into_value()
}

/// [`min_norm_assignment`] under a [`SolveBudget`]: on exhaustion the
/// best incumbent is returned as [`Budgeted::Degraded`] together with a
/// **certified** optimality gap (the true optimum provably lies in
/// `[lower_bound, value.1]`; the bound is the minimum over the
/// incumbent and every abandoned subtree's divisible-relaxation
/// waterfill, which never exceeds the subtree's true optimum).
///
/// Degradation edges: a zero budget returns the LPT + local-search seed
/// immediately (with the root relaxation as its bound); an unlimited
/// budget is **bit-identical** to [`min_norm_assignment`] — the gate
/// only counts nodes, it never touches the search's float state or
/// branch order.
///
/// # Panics
/// If `m == 0`.
pub fn min_norm_assignment_budgeted(
    works: &[f64],
    m: usize,
    alpha: f64,
    budget: &SolveBudget,
) -> Budgeted<(Vec<usize>, f64)> {
    assert!(m > 0, "need at least one processor");
    let n = works.len();
    if n == 0 {
        return Budgeted::Exact((Vec::new(), 0.0));
    }
    let core = SearchCore::new(works, m, alpha);
    let (seed_labels, seed_norm) = core.seed_incumbent();
    let mut inc = SeqIncumbent {
        best: seed_norm,
        labels: seed_labels,
    };
    let mut st = SortedLoads::new(m, alpha);
    let mut labels = vec![0usize; n];
    let mut scratch = vec![0usize; n * m];
    let mut gate = BudgetGate::new(budget);
    descend(
        &core,
        &mut st,
        &mut labels,
        0,
        &mut scratch,
        &mut inc,
        &mut gate,
    );
    let value = (core.unsort_labels(&inc.labels), inc.best);
    if gate.exhausted() {
        let lower_bound = inc.best.min(gate.min_abandoned());
        Budgeted::Degraded(Degradation {
            bound_gap: inc.best - lower_bound,
            lower_bound,
            value,
            nodes: gate.nodes(),
            elapsed: gate.elapsed(),
        })
    } else {
        Budgeted::Exact(value)
    }
}

/// Shared immutable state of one `L_α`-norm branch-and-bound run: the
/// jobs sorted descending, their suffix sums, and the mapping back to
/// the caller's job order. Used by both the sequential solver above and
/// the work-deque parallel solver
/// ([`crate::multi::parallel::min_norm_assignment_parallel`]).
pub(crate) struct SearchCore {
    /// Job works, descending (classic B&B ordering).
    pub(crate) sorted: Vec<f64>,
    /// `suffix[k]` = total work of jobs `k..`.
    pub(crate) suffix: Vec<f64>,
    /// `order[pos]` = original index of the job at sorted position `pos`.
    pub(crate) order: Vec<usize>,
    /// Processor count.
    pub(crate) m: usize,
    /// Norm exponent.
    pub(crate) alpha: f64,
}

impl SearchCore {
    pub(crate) fn new(works: &[f64], m: usize, alpha: f64) -> Self {
        let n = works.len();
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| works[b].total_cmp(&works[a]));
        let sorted: Vec<f64> = order.iter().map(|&i| works[i]).collect();
        let mut suffix = vec![0.0; n + 1];
        for i in (0..n).rev() {
            suffix[i] = suffix[i + 1] + sorted[i];
        }
        SearchCore {
            sorted,
            suffix,
            order,
            m,
            alpha,
        }
    }

    /// LPT + local search on the sorted works: the incumbent seed. The
    /// norm is recomputed fresh from the seed's loads (not the local
    /// search's running delta sum) so the pruning threshold is never
    /// below what the seed labelling actually realizes.
    pub(crate) fn seed_incumbent(&self) -> (Vec<usize>, f64) {
        let (lpt_labels, _) = lpt_assignment(&self.sorted, self.m, self.alpha);
        let (labels, _) = local_search(&self.sorted, self.m, self.alpha, lpt_labels);
        let mut loads = vec![0.0f64; self.m];
        for (i, &p) in labels.iter().enumerate() {
            loads[p] += self.sorted[i];
        }
        let norm = loads.iter().map(|l| l.powf(self.alpha)).sum();
        (labels, norm)
    }

    /// Map sorted-position labels back to the caller's job order.
    pub(crate) fn unsort_labels(&self, labels: &[usize]) -> Vec<usize> {
        let mut out = vec![0usize; labels.len()];
        for (pos, &orig) in self.order.iter().enumerate() {
            out[orig] = labels[pos];
        }
        out
    }
}

/// How a branch-and-bound run tracks its best-so-far: the sequential
/// solver keeps a plain local incumbent; parallel workers also publish
/// to a shared atomic so pruning stays global.
pub(crate) trait Incumbent {
    /// The norm to prune against (global best-so-far).
    fn prune_at(&self) -> f64;
    /// A complete labelling realizing `norm` was found.
    fn offer(&mut self, norm: f64, labels: &[usize]);
}

struct SeqIncumbent {
    best: f64,
    labels: Vec<usize>,
}

impl Incumbent for SeqIncumbent {
    fn prune_at(&self) -> f64 {
        self.best
    }

    fn offer(&mut self, norm: f64, labels: &[usize]) {
        if norm < self.best {
            self.best = norm;
            self.labels.copy_from_slice(labels);
        }
    }
}

/// Explore the subtree with jobs `k..` unassigned. `st` holds the loads
/// committed by jobs `..k` (already labelled in `labels[..k]`);
/// `scratch` is a preallocated `(n − k) · m` candidate buffer so the hot
/// path never allocates. The `gate` meters the budget: prune checks run
/// *first* (so the gate never alters which nodes an exact run visits),
/// then the gate ticks; on exhaustion the subtree's relaxation bound is
/// recorded so the caller can certify its incumbent's gap.
pub(crate) fn descend<I: Incumbent, G: SearchGate>(
    core: &SearchCore,
    st: &mut SortedLoads,
    labels: &mut [usize],
    k: usize,
    scratch: &mut [usize],
    inc: &mut I,
    gate: &mut G,
) {
    let bound = st.waterfill_bound(core.suffix[k]);
    if bound >= inc.prune_at() {
        return;
    }
    if !gate.tick() {
        gate.abandon(bound);
        return;
    }
    let n = core.sorted.len();
    if k == n {
        inc.offer(st.total_pow(), labels);
        return;
    }
    let w = core.sorted[k];
    if k + 1 == n {
        // Last job: the least-loaded processor minimizes the convex
        // increment (l + w)^α − l^α, so no branching is needed.
        let p = st.slot_at(0);
        let saved = st.raise(p, st.load(p) + w);
        labels[k] = p;
        inc.offer(st.total_pow(), labels);
        st.lower_to(p, saved);
        return;
    }
    // Snapshot the branch candidates before mutating: the first
    // processor of each equal-load run, in ascending load order.
    // Equal-load processors are interchangeable for the remaining
    // subproblem (it depends only on the load multiset), so trying one
    // per run preserves an optimal leaf; ascending order finds strong
    // incumbents early.
    let (cands, rest) = scratch.split_at_mut(core.m);
    let mut count = 0usize;
    let mut prev = f64::NAN;
    for pos in 0..core.m {
        let slot = st.slot_at(pos);
        let load = st.load(slot);
        if count > 0 && load.total_cmp(&prev).is_eq() {
            continue;
        }
        cands[count] = slot;
        count += 1;
        prev = load;
    }
    for &p in &cands[..count] {
        let saved = st.raise(p, st.load(p) + w);
        labels[k] = p;
        descend(core, st, labels, k + 1, rest, inc, gate);
        st.lower_to(p, saved);
    }
}

/// The seed branch and bound, kept verbatim as the equivalence oracle
/// for [`min_norm_assignment`] (the same engine-vs-reference convention
/// as `yds_reference` and `solve_for_u_reference`): re-sorts and
/// re-scans the loads at every node, collapses only *empty* processors
/// under symmetry breaking, and starts from an infinite incumbent.
///
/// Exponential worst case; fine for the `n ≤ ~24` instances the
/// original experiments used.
pub fn min_norm_assignment_reference(works: &[f64], m: usize, alpha: f64) -> (Vec<usize>, f64) {
    assert!(m > 0, "need at least one processor");
    let n = works.len();
    // Sort jobs descending (classic B&B ordering), remember positions.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| works[b].total_cmp(&works[a]));
    let sorted: Vec<f64> = order.iter().map(|&i| works[i]).collect();
    let suffix_work: Vec<f64> = {
        let mut s = vec![0.0; n + 1];
        for i in (0..n).rev() {
            s[i] = s[i + 1] + sorted[i];
        }
        s
    };

    let mut best_norm = f64::INFINITY;
    let mut best_labels = vec![0usize; n];
    let mut loads = vec![0.0f64; m];
    let mut labels = vec![0usize; n];

    // Lower bound: water-fill the remaining work (divisible relaxation)
    // onto the lowest committed loads — by convexity this is the least
    // possible final norm, so it never prunes the true optimum.
    fn bound(loads: &[f64], rest: f64, alpha: f64) -> f64 {
        let mut ls = loads.to_vec();
        ls.sort_by(|a, b| a.total_cmp(b));
        let m = ls.len();
        let mut r = rest;
        let mut level = ls[0];
        let mut k = 1usize; // processors currently at `level`
        while k < m && r > 0.0 {
            let need = (ls[k] - level) * k as f64;
            if need <= r {
                r -= need;
                level = ls[k];
                k += 1;
            } else {
                level += r / k as f64;
                r = 0.0;
            }
        }
        if r > 0.0 {
            level += r / m as f64;
        }
        ls.iter().map(|&l| l.max(level).powf(alpha)).sum()
    }

    #[allow(clippy::too_many_arguments)] // inner recursion carries its whole state explicitly
    fn recurse(
        k: usize,
        sorted: &[f64],
        suffix: &[f64],
        loads: &mut [f64],
        labels: &mut [usize],
        best_norm: &mut f64,
        best_labels: &mut [usize],
        alpha: f64,
    ) {
        if bound(loads, suffix[k], alpha) >= *best_norm {
            return;
        }
        if k == sorted.len() {
            let norm: f64 = loads.iter().map(|l| l.powf(alpha)).sum();
            if norm < *best_norm {
                *best_norm = norm;
                best_labels.copy_from_slice(labels);
            }
            return;
        }
        // Symmetry breaking: only try processors up to the first empty one.
        let mut tried_empty = false;
        for p in 0..loads.len() {
            if loads[p] == 0.0 {
                if tried_empty {
                    continue;
                }
                tried_empty = true;
            }
            loads[p] += sorted[k];
            labels[k] = p;
            recurse(
                k + 1,
                sorted,
                suffix,
                loads,
                labels,
                best_norm,
                best_labels,
                alpha,
            );
            loads[p] -= sorted[k];
        }
    }

    recurse(
        0,
        &sorted,
        &suffix_work,
        &mut loads,
        &mut labels,
        &mut best_norm,
        &mut best_labels,
        alpha,
    );

    // Map labels back to the original job order.
    let mut out = vec![0usize; n];
    for (pos, &orig) in order.iter().enumerate() {
        out[orig] = best_labels[pos];
    }
    (out, best_norm)
}

/// LPT-style greedy for the `L_α` norm: jobs descending, each to the
/// processor where it increases `Σ L^α` the least.
pub fn lpt_assignment(works: &[f64], m: usize, alpha: f64) -> (Vec<usize>, f64) {
    assert!(m > 0, "need at least one processor");
    let n = works.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| works[b].total_cmp(&works[a]));
    let mut loads = vec![0.0f64; m];
    let mut labels = vec![0usize; n];
    for &i in &order {
        let (p, _) = loads
            .iter()
            .enumerate()
            .map(|(p, &l)| (p, (l + works[i]).powf(alpha) - l.powf(alpha)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("m > 0");
        labels[i] = p;
        loads[p] += works[i];
    }
    let norm = loads.iter().map(|l| l.powf(alpha)).sum();
    (labels, norm)
}

/// Local search refinement: single-job moves and pairwise swaps until no
/// improvement. Returns the improved labels and norm.
pub fn local_search(
    works: &[f64],
    m: usize,
    alpha: f64,
    mut labels: Vec<usize>,
) -> (Vec<usize>, f64) {
    let n = works.len();
    let mut loads = vec![0.0f64; m];
    for i in 0..n {
        loads[labels[i]] += works[i];
    }
    let norm = |loads: &[f64]| -> f64 { loads.iter().map(|l| l.powf(alpha)).sum() };
    let mut current = norm(&loads);
    loop {
        let mut improved = false;
        // Single moves.
        for i in 0..n {
            let from = labels[i];
            for to in 0..m {
                if to == from {
                    continue;
                }
                let delta = (loads[to] + works[i]).powf(alpha) - loads[to].powf(alpha)
                    + (loads[from] - works[i]).powf(alpha)
                    - loads[from].powf(alpha);
                if delta < -1e-12 {
                    loads[from] -= works[i];
                    loads[to] += works[i];
                    labels[i] = to;
                    current += delta;
                    improved = true;
                }
            }
        }
        // Pairwise swaps.
        for i in 0..n {
            for j in (i + 1)..n {
                let (pi, pj) = (labels[i], labels[j]);
                if pi == pj {
                    continue;
                }
                let before = loads[pi].powf(alpha) + loads[pj].powf(alpha);
                let li = loads[pi] - works[i] + works[j];
                let lj = loads[pj] - works[j] + works[i];
                let after = li.powf(alpha) + lj.powf(alpha);
                if after < before - 1e-12 {
                    loads[pi] = li;
                    loads[pj] = lj;
                    labels.swap(i, j);
                    current += after - before;
                    improved = true;
                }
            }
        }
        if !improved {
            break;
        }
    }
    (labels, current)
}

/// Per-processor loads induced by a labelling, then
/// [`makespan_for_loads`] — the one-call version for callers holding an
/// assignment rather than loads.
///
/// # Panics
/// If a label is out of range for the implied processor count
/// (`max(labels) + 1`).
pub fn makespan_for_loads_from_assignment(
    works: &[f64],
    labels: &[usize],
    alpha: f64,
    budget: f64,
) -> f64 {
    let m = labels.iter().copied().max().map_or(1, |x| x + 1);
    let mut loads = vec![0.0f64; m];
    for (w, &p) in works.iter().zip(labels) {
        loads[p] += w;
    }
    makespan_for_loads(&loads, alpha, budget)
}

/// Decide the Theorem-11 question *by scheduling*: is there a 2-processor
/// schedule of the reduced instance with makespan ≤ `B/2` under energy
/// budget `B`? Uses the exact branch and bound.
pub fn schedule_decides_partition(values: &[u64], alpha: f64) -> bool {
    let works: Vec<f64> = values.iter().map(|&v| v as f64).collect();
    let b: f64 = works.iter().sum();
    let (_, norm) = min_norm_assignment(&works, 2, alpha);
    let t = makespan_for_loads_from_norm(norm, alpha, b);
    t <= b / 2.0 + 1e-9 * b.max(1.0)
}

fn makespan_for_loads_from_norm(norm: f64, alpha: f64, budget: f64) -> f64 {
    (norm / budget).powf(1.0 / (alpha - 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pas_power::PolyPower;
    use pas_workload::generators;

    #[test]
    fn reduction_fields() {
        let r = reduce(&[3, 1, 2, 2], &PolyPower::CUBE).unwrap();
        assert_eq!(r.machines, 2);
        assert_eq!(r.makespan_target, 4.0);
        assert_eq!(r.energy_budget, 8.0); // B·g(1) = 8·1
        assert!(r.instance.all_released_immediately(0.0));
    }

    #[test]
    fn partition_witness_yes_cases() {
        for values in [vec![1u64, 1], vec![3, 1, 2, 2], vec![5, 5, 4, 3, 2, 1]] {
            let w = partition_witness(&values).expect("partition exists");
            let half: u64 = w.iter().map(|&i| values[i]).sum();
            let total: u64 = values.iter().sum();
            assert_eq!(half * 2, total, "{values:?} -> {w:?}");
        }
    }

    #[test]
    fn partition_witness_no_cases() {
        assert!(partition_witness(&[1, 2]).is_none());
        assert!(partition_witness(&[1, 1, 1]).is_none()); // odd total
        assert!(partition_witness(&[2, 4, 8, 32]).is_none());
    }

    #[test]
    fn theorem11_equivalence_on_random_instances() {
        // Partition exists <=> optimal 2-proc makespan with budget B is
        // exactly B/2 (paper's proof, both directions).
        for seed in 0..10 {
            let values = generators::partition_yes_instance(4, 24, seed);
            assert!(partition_witness(&values).is_some());
            assert!(schedule_decides_partition(&values, 3.0), "{values:?}");
        }
        // No-instances: odd totals and spread sets.
        for values in [vec![1u64, 2], vec![2, 4, 8, 32], vec![7, 1, 1]] {
            let has_partition = partition_witness(&values).is_some();
            assert_eq!(
                schedule_decides_partition(&values, 3.0),
                has_partition,
                "{values:?}"
            );
        }
    }

    #[test]
    fn perfect_split_runs_at_speed_one() {
        // From a partition, each processor runs load B/2 over time B/2 at
        // speed 1 and total energy is exactly B (paper's forward
        // direction).
        let values = [3u64, 1, 2, 2];
        let witness = partition_witness(&values).expect("partitionable");
        let half: u64 = witness.iter().map(|&i| values[i]).sum();
        assert_eq!(half, 4);
        let b = 8.0;
        let loads = [4.0, 4.0];
        let t = makespan_for_loads(&loads, 3.0, b);
        assert!((t - 4.0).abs() < 1e-12);
    }

    #[test]
    fn min_norm_matches_bruteforce_small() {
        let works = [3.0, 2.8, 2.2, 1.7, 1.1, 0.9];
        // Brute force all 2^6 assignments.
        let mut best = f64::INFINITY;
        for mask in 0u32..64 {
            let mut l = [0.0f64; 2];
            for (i, w) in works.iter().enumerate() {
                l[(mask >> i & 1) as usize] += w;
            }
            best = best.min(l[0].powi(3) + l[1].powi(3));
        }
        for (label, (labels, norm)) in [
            ("incremental", min_norm_assignment(&works, 2, 3.0)),
            ("reference", min_norm_assignment_reference(&works, 2, 3.0)),
        ] {
            assert!((norm - best).abs() < 1e-9, "{label} {norm} vs brute {best}");
            assert_eq!(labels.len(), works.len());
        }
    }

    #[test]
    fn incremental_engine_matches_reference() {
        // Uniform, skewed, and duplicate-heavy families; m spanning 2..6
        // including m > n.
        let families: Vec<(&str, Vec<f64>)> = vec![
            (
                "uniform",
                (0..14).map(|k| 0.4 + (k as f64 * 0.67) % 2.3).collect(),
            ),
            (
                "skewed",
                (1..=12).map(|k| (k as f64).powi(2) * 0.1).collect(),
            ),
            (
                "duplicates",
                (0..15).map(|k| 1.0 + (k % 3) as f64 * 0.5).collect(),
            ),
            ("tiny", vec![2.5]),
            ("two", vec![1.0, 4.0]),
        ];
        for (name, works) in &families {
            for m in [1usize, 2, 3, 6] {
                for alpha in [2.0, 3.0] {
                    let (inc_labels, inc) = min_norm_assignment(works, m, alpha);
                    let (_, reference) = min_norm_assignment_reference(works, m, alpha);
                    assert!(
                        (inc - reference).abs() <= 1e-9 * reference.max(1.0),
                        "{name} m={m} alpha={alpha}: incremental {inc} vs reference {reference}"
                    );
                    // The incremental labelling realizes its claimed norm.
                    let mut loads = vec![0.0f64; m];
                    for (w, &p) in works.iter().zip(&inc_labels) {
                        loads[p] += w;
                    }
                    let realized: f64 = loads.iter().map(|l| l.powf(alpha)).sum();
                    assert!(
                        (realized - inc).abs() <= 1e-9 * inc.max(1.0),
                        "{name} m={m} alpha={alpha}: claimed {inc} vs realized {realized}"
                    );
                }
            }
        }
    }

    #[test]
    fn more_processors_than_jobs_spread_out() {
        let works = [3.0, 1.0];
        for engine in [min_norm_assignment, min_norm_assignment_reference] {
            let (labels, norm) = engine(&works, 5, 3.0);
            assert!((norm - 28.0).abs() < 1e-9, "each job alone: 27 + 1");
            assert_ne!(labels[0], labels[1]);
        }
    }

    #[test]
    fn empty_works() {
        let (labels, norm) = min_norm_assignment(&[], 3, 3.0);
        assert!(labels.is_empty());
        assert_eq!(norm, 0.0);
    }

    #[test]
    fn lpt_and_local_search_quality() {
        let works: Vec<f64> = (1..=14).map(|k| (k as f64).sqrt() * 1.3).collect();
        let m = 3;
        let alpha = 3.0;
        let (_, opt) = min_norm_assignment(&works, m, alpha);
        let (lpt_labels, lpt_norm) = lpt_assignment(&works, m, alpha);
        let (_, ls_norm) = local_search(&works, m, alpha, lpt_labels);
        assert!(lpt_norm >= opt - 1e-9);
        assert!(ls_norm >= opt - 1e-9);
        assert!(ls_norm <= lpt_norm + 1e-12, "local search never worse");
        // LPT is a good heuristic: within 10% on this instance family.
        assert!(lpt_norm <= 1.1 * opt, "lpt {lpt_norm} vs opt {opt}");
    }

    #[test]
    fn makespan_load_norm_identity() {
        // E(T) = ||L||_alpha^alpha T^{1-alpha} inverted.
        let loads = [6.0, 2.0];
        let alpha = 3.0;
        let budget = 10.0;
        let t = makespan_for_loads(&loads, alpha, budget);
        // Energy at that T: sum L^3 / T^2 == budget.
        let e = (loads[0].powi(3) + loads[1].powi(3)) / (t * t);
        assert!((e - budget).abs() < 1e-9);
        // Balanced loads give strictly smaller makespan.
        let t_bal = makespan_for_loads(&[4.0, 4.0], alpha, budget);
        assert!(t_bal < t);
    }

    #[test]
    fn unlimited_budget_is_exact_and_identical() {
        let works: Vec<f64> = (0..13).map(|k| 0.4 + (k as f64 * 0.53) % 1.9).collect();
        let (labels, norm) = min_norm_assignment(&works, 3, 3.0);
        let budgeted = min_norm_assignment_budgeted(&works, 3, 3.0, &SolveBudget::UNLIMITED);
        assert!(!budgeted.is_degraded());
        let (b_labels, b_norm) = budgeted.into_value();
        // Bit-identical, not merely close: same search, same floats.
        assert_eq!(norm.to_bits(), b_norm.to_bits());
        assert_eq!(labels, b_labels);
    }

    #[test]
    fn zero_node_budget_degrades_to_seed_with_certificate() {
        let works: Vec<f64> = (0..16).map(|k| 0.3 + (k as f64 * 0.71) % 2.1).collect();
        let m = 4;
        let alpha = 3.0;
        let out = min_norm_assignment_budgeted(&works, m, alpha, &SolveBudget::nodes(0));
        let d = out.degradation().expect("zero budget must degrade");
        let (labels, norm) = &d.value;
        // The incumbent is the heuristic seed and realizes its norm.
        let mut loads = vec![0.0f64; m];
        for (w, &p) in works.iter().zip(labels) {
            loads[p] += w;
        }
        let realized: f64 = loads.iter().map(|l| l.powf(alpha)).sum();
        assert!((realized - norm).abs() <= 1e-9 * norm.max(1.0));
        // Certificate sanity: gap ≥ 0 and the bound really is a lower
        // bound on the true optimum.
        assert!(d.bound_gap >= 0.0);
        let (_, opt) = min_norm_assignment(&works, m, alpha);
        assert!(
            d.lower_bound <= opt + 1e-9 * opt.max(1.0),
            "bound {} vs optimum {opt}",
            d.lower_bound
        );
        assert!(*norm >= opt - 1e-9 * opt.max(1.0));
    }

    #[test]
    fn small_node_budgets_keep_sound_certificates() {
        let works: Vec<f64> = (0..15).map(|k| 0.5 + (k as f64 * 0.37) % 1.7).collect();
        let m = 3;
        let alpha = 3.0;
        let (_, opt) = min_norm_assignment(&works, m, alpha);
        for nodes in [1u64, 10, 100, 1000] {
            let out = min_norm_assignment_budgeted(&works, m, alpha, &SolveBudget::nodes(nodes));
            let (labels, norm) = out.value().clone();
            assert_eq!(labels.len(), works.len());
            assert!(norm >= opt - 1e-9 * opt.max(1.0), "incumbent below optimum");
            if let Some(d) = out.degradation() {
                assert!(d.nodes <= nodes, "node accounting: {} > {nodes}", d.nodes);
                assert!(d.bound_gap >= 0.0);
                assert!(d.lower_bound <= opt + 1e-9 * opt.max(1.0));
                assert!((d.bound_gap - (norm - d.lower_bound)).abs() < 1e-12);
            } else {
                // Finished within budget: must be the true optimum.
                assert!((norm - opt).abs() <= 1e-9 * opt.max(1.0));
            }
        }
    }

    #[test]
    fn symmetry_breaking_does_not_lose_optimum() {
        // All-equal works: optimum = even split; B&B with symmetry
        // breaking must still find it.
        let works = [1.0f64; 6];
        let (_, norm) = min_norm_assignment(&works, 3, 2.0);
        assert!((norm - 3.0 * 4.0).abs() < 1e-9); // 3 procs × (2)²
    }
}
