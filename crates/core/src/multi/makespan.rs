//! Exact multiprocessor makespan for equal-work jobs (paper §5).
//!
//! Combines Theorem 10 (cyclic assignment is optimal) with the paper's
//! Observation 1 (all processors finish together in a non-dominated
//! schedule): for a trial common finish time `T`, each processor's
//! minimum energy is an exact per-processor server-problem query against
//! its [`Frontier`]; total energy is strictly decreasing in `T`, so the
//! unique `T` spending the budget is found by bracketed bisection —
//! exact up to floating-point tolerance (the per-piece algebra is closed
//! form; only the outer equalization is iterative).

use crate::error::CoreError;
use crate::makespan::frontier::Frontier;
use crate::multi::cyclic::{cyclic_assignment, split_instance};
use pas_numeric::compare::is_positive_finite;
use pas_numeric::roots::invert_monotone;
use pas_power::PowerModel;
use pas_sim::Schedule;
use pas_workload::Instance;

/// Result of a multiprocessor makespan solve.
#[derive(Debug, Clone)]
pub struct MultiMakespan {
    /// The executed multi-machine schedule.
    pub schedule: Schedule,
    /// The common finish time (= makespan).
    pub makespan: f64,
    /// Total energy across processors.
    pub energy: f64,
    /// The per-processor job position lists used.
    pub assignment: Vec<Vec<usize>>,
}

/// Solve the equal-work multiprocessor laptop problem on `m` processors
/// with shared `budget`, using the Theorem-10 cyclic assignment.
///
/// `tol` is the relative tolerance of the outer finish-time equalization.
///
/// # Errors
/// [`CoreError::NotEqualWork`] for unequal works (Theorem 10's premise);
/// [`CoreError::InvalidBudget`] for non-positive budgets.
pub fn laptop<M: PowerModel>(
    instance: &Instance,
    model: &M,
    m: usize,
    budget: f64,
    tol: f64,
) -> Result<MultiMakespan, CoreError> {
    instance.validate()?;
    if !instance.is_equal_work(1e-9) {
        return Err(CoreError::NotEqualWork);
    }
    laptop_with_assignment(
        instance,
        model,
        &cyclic_assignment(instance.len(), m),
        budget,
        tol,
    )
}

/// Solve the laptop problem for an explicit assignment (any works).
///
/// Used directly by the Theorem-10 brute-force optimality tests, which
/// compare the cyclic assignment against every other labelling.
///
/// # Errors
/// [`CoreError::InvalidBudget`]; numeric errors if the budget cannot be
/// bracketed.
pub fn laptop_with_assignment<M: PowerModel>(
    instance: &Instance,
    model: &M,
    assignment: &[Vec<usize>],
    budget: f64,
    tol: f64,
) -> Result<MultiMakespan, CoreError> {
    if !is_positive_finite(budget) {
        return Err(CoreError::InvalidBudget { budget });
    }
    let parts = split_instance(instance, assignment);
    let frontiers: Vec<Option<(Frontier, f64)>> = parts
        .iter()
        .map(|p| {
            p.as_ref()
                .map(|inst| (Frontier::build(inst, model), inst.last_release()))
        })
        .collect();
    // The common finish time must exceed every processor's last release.
    let t_min = frontiers
        .iter()
        .flatten()
        .map(|(_, last)| *last)
        .fold(0.0f64, f64::max);

    // Total energy as a function of x = T - t_min > 0 (decreasing).
    let total_energy = |x: f64| -> f64 {
        let t = t_min + x;
        let mut sum = 0.0;
        for f in frontiers.iter().flatten() {
            match f.0.energy_for_makespan(model, t) {
                Ok(e) => sum += e,
                Err(_) => return f64::INFINITY,
            }
        }
        sum
    };

    // Bracket and invert: energy decreasing in x, so flip the sign.
    let span = (instance.last_release() - instance.first_release()).max(1.0);
    let x = invert_monotone(
        |x| -total_energy(x),
        -budget,
        span,
        0.0,
        budget * tol.max(1e-13),
    )?;
    let t = t_min + x;

    // Materialize per-processor schedules at the common finish time.
    let mut schedule = Schedule::with_machines(assignment.len());
    let mut energy = 0.0;
    for (p, part) in parts.iter().enumerate() {
        let Some(inst) = part else { continue };
        let (frontier, _) = frontiers[p].as_ref().expect("built above");
        let e_p = frontier.energy_for_makespan(model, t)?;
        energy += e_p;
        let blocks = frontier.schedule(model, e_p)?;
        for slice in blocks.to_schedule(inst).machine(0) {
            schedule.push(p, *slice);
        }
    }
    Ok(MultiMakespan {
        makespan: t,
        energy,
        schedule,
        assignment: assignment.to_vec(),
    })
}

/// Solve the **unequal-work** multiprocessor laptop problem for jobs
/// all released at time 0, exactly — the constructive side of
/// Theorem 11.
///
/// With immediate releases, each processor optimally runs its whole
/// load as one constant-speed block (Lemmas 2–5), so minimizing
/// makespan under the shared budget is exactly minimizing the `L_α`
/// norm of the per-processor loads
/// ([`crate::multi::partition::makespan_for_loads`]). The assignment
/// comes from the incremental branch and bound
/// ([`crate::multi::partition::min_norm_assignment`]) — exponential
/// worst case, NP-hard by Theorem 11, practical to `n ≈ 30–40`.
///
/// Only valid for `P = σ^α` (the norm reduction needs it), matching
/// the paper's Theorem-11 statement.
///
/// # Errors
/// [`CoreError::NotImmediateRelease`] if any job releases after time 0;
/// [`CoreError::InvalidBudget`] for non-positive budgets;
/// [`CoreError::InvalidAlpha`] unless `α > 1`.
///
/// # Panics
/// If `m == 0` (as the underlying branch and bound does).
pub fn laptop_immediate(
    instance: &Instance,
    alpha: f64,
    m: usize,
    budget: f64,
) -> Result<MultiMakespan, CoreError> {
    instance.validate()?;
    if !instance.all_released_immediately(1e-12) {
        return Err(CoreError::NotImmediateRelease);
    }
    if !is_positive_finite(budget) {
        return Err(CoreError::InvalidBudget { budget });
    }
    if !(alpha > 1.0 && alpha.is_finite()) {
        return Err(CoreError::InvalidAlpha { alpha });
    }
    let works: Vec<f64> = instance.jobs().iter().map(|j| j.work).collect();
    let (labels, norm) = crate::multi::partition::min_norm_assignment(&works, m, alpha);
    let t = (norm / budget).powf(1.0 / (alpha - 1.0));

    let mut loads = vec![0.0f64; m];
    for (w, &p) in works.iter().zip(&labels) {
        loads[p] += w;
    }
    // Each processor runs its jobs back-to-back at the constant speed
    // L_p/T, all finishing exactly at the common makespan T.
    let mut schedule = Schedule::with_machines(m);
    let mut cursor = vec![0.0f64; m];
    let mut assignment = vec![Vec::new(); m];
    let mut energy = 0.0;
    for (pos, (job, &p)) in instance.jobs().iter().zip(&labels).enumerate() {
        let speed = loads[p] / t;
        let dur = job.work / speed;
        schedule.push(
            p,
            pas_sim::Slice::new(job.id, cursor[p], cursor[p] + dur, speed),
        );
        cursor[p] += dur;
        assignment[p].push(pos);
        energy += speed.powf(alpha) / speed * job.work;
    }
    Ok(MultiMakespan {
        makespan: t,
        energy,
        schedule,
        assignment,
    })
}

/// Solve the **server problem** on `m` processors: least total energy
/// finishing every job by `deadline`, cyclic assignment (equal work).
///
/// Unlike the laptop direction no outer search is needed — each
/// processor's server query is independent and exact.
///
/// # Errors
/// [`CoreError::NotEqualWork`]; [`CoreError::UnreachableTarget`] when
/// `deadline` is not after some processor's last release.
pub fn server<M: PowerModel>(
    instance: &Instance,
    model: &M,
    m: usize,
    deadline: f64,
) -> Result<MultiMakespan, CoreError> {
    instance.validate()?;
    if !instance.is_equal_work(1e-9) {
        return Err(CoreError::NotEqualWork);
    }
    let assignment = cyclic_assignment(instance.len(), m);
    let parts = split_instance(instance, &assignment);
    let mut schedule = Schedule::with_machines(m);
    let mut energy = 0.0;
    for (p, part) in parts.iter().enumerate() {
        let Some(inst) = part else { continue };
        let frontier = Frontier::build(inst, model);
        let e_p = frontier.energy_for_makespan(model, deadline)?;
        energy += e_p;
        let blocks = frontier.schedule(model, e_p)?;
        for slice in blocks.to_schedule(inst).machine(0) {
            schedule.push(p, *slice);
        }
    }
    Ok(MultiMakespan {
        makespan: deadline,
        energy,
        schedule,
        assignment,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multi::cyclic::all_assignments;
    use pas_power::PolyPower;
    use pas_sim::metrics;

    #[test]
    fn server_inverts_laptop() {
        let inst = Instance::equal_work(&[0.0, 0.5, 1.0, 4.0], 1.0).unwrap();
        let model = PolyPower::CUBE;
        for &e in &[4.0, 9.0, 20.0] {
            let lap = laptop(&inst, &model, 2, e, 1e-12).unwrap();
            let srv = server(&inst, &model, 2, lap.makespan).unwrap();
            assert!(
                (srv.energy - e).abs() < 1e-6 * e,
                "E={e}: round trip {}",
                srv.energy
            );
            srv.schedule.validate(&inst, 1e-6).unwrap();
        }
    }

    #[test]
    fn server_rejects_impossible_deadline() {
        let inst = Instance::equal_work(&[0.0, 5.0], 1.0).unwrap();
        // Deadline at the last release: the processor holding job 1
        // cannot finish.
        assert!(server(&inst, &PolyPower::CUBE, 2, 5.0).is_err());
        assert!(server(&inst, &PolyPower::CUBE, 2, 5.1).is_ok());
    }

    #[test]
    fn two_independent_processors_split_evenly() {
        // Two unit jobs at t=0 on two processors with budget 2:
        // each runs its job alone; equal finish forces equal speeds:
        // each spends 1, speed 1, makespan 1.
        let inst = Instance::equal_work(&[0.0, 0.0], 1.0).unwrap();
        let sol = laptop(&inst, &PolyPower::CUBE, 2, 2.0, 1e-12).unwrap();
        assert!((sol.makespan - 1.0).abs() < 1e-9, "{}", sol.makespan);
        assert!((sol.energy - 2.0).abs() < 1e-9);
        sol.schedule.validate(&inst, 1e-7).unwrap();
    }

    #[test]
    fn processors_finish_simultaneously() {
        // Paper Observation 1: all machines end at the common makespan.
        let inst = Instance::equal_work(&[0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 7.0], 1.0).unwrap();
        let sol = laptop(&inst, &PolyPower::CUBE, 3, 30.0, 1e-12).unwrap();
        sol.schedule.validate(&inst, 1e-7).unwrap();
        for lane in sol.schedule.machines() {
            if let Some(last) = lane.last() {
                assert!(
                    (last.end - sol.makespan).abs() < 1e-6,
                    "machine ends at {} vs makespan {}",
                    last.end,
                    sol.makespan
                );
            }
        }
        assert!((sol.energy - 30.0).abs() < 1e-6 * 30.0);
    }

    #[test]
    fn more_processors_never_hurt() {
        let inst = Instance::equal_work(&[0.0, 0.1, 0.2, 0.3, 0.4, 0.5], 1.0).unwrap();
        let model = PolyPower::CUBE;
        let mut prev = f64::INFINITY;
        for m in 1..=4 {
            let sol = laptop(&inst, &model, m, 12.0, 1e-12).unwrap();
            assert!(
                sol.makespan <= prev + 1e-9,
                "m={m}: {} > {prev}",
                sol.makespan
            );
            prev = sol.makespan;
        }
    }

    #[test]
    fn cyclic_is_optimal_among_all_assignments() {
        // Theorem 10, brute force: no labelling beats cyclic.
        let model = PolyPower::CUBE;
        for releases in [
            vec![0.0, 0.0, 0.0, 0.0],
            vec![0.0, 0.5, 1.0, 1.5],
            vec![0.0, 0.1, 3.0, 3.1, 3.2],
        ] {
            let inst = Instance::equal_work(&releases, 1.0).unwrap();
            let budget = 8.0;
            let cyc = laptop(&inst, &model, 2, budget, 1e-11).unwrap();
            let mut best = f64::INFINITY;
            for a in all_assignments(inst.len(), 2) {
                if let Ok(sol) = laptop_with_assignment(&inst, &model, &a, budget, 1e-11) {
                    best = best.min(sol.makespan);
                }
            }
            assert!(
                cyc.makespan <= best + 1e-6,
                "releases {releases:?}: cyclic {} vs best {best}",
                cyc.makespan
            );
        }
    }

    #[test]
    fn single_processor_matches_uniprocessor_incmerge() {
        let inst = Instance::equal_work(&[0.0, 1.0, 1.2, 5.0], 1.0).unwrap();
        let model = PolyPower::CUBE;
        let multi = laptop(&inst, &model, 1, 10.0, 1e-12).unwrap();
        let uni = crate::makespan::incmerge::laptop(&inst, &model, 10.0).unwrap();
        assert!(
            (multi.makespan - uni.makespan()).abs() < 1e-6,
            "{} vs {}",
            multi.makespan,
            uni.makespan()
        );
    }

    #[test]
    fn energy_budget_is_respected_exactly() {
        let inst = Instance::equal_work(&[0.0, 0.3, 0.6, 0.9], 2.0).unwrap();
        let model = PolyPower::new(2.0);
        for &e in &[1.0, 4.0, 16.0] {
            let sol = laptop(&inst, &model, 2, e, 1e-12).unwrap();
            let measured = metrics::energy(&sol.schedule, &model);
            assert!(
                (measured - e).abs() < 1e-6 * e,
                "E={e}: schedule energy {measured}"
            );
        }
    }

    #[test]
    fn laptop_immediate_realizes_the_norm_makespan() {
        use crate::multi::partition;
        let works = [3.0, 1.0, 2.0, 2.0, 1.5];
        let inst = pas_workload::generators::immediate(&works);
        let model = PolyPower::CUBE;
        for &budget in &[4.0, 10.0, 25.0] {
            let sol = laptop_immediate(&inst, 3.0, 2, budget).unwrap();
            sol.schedule.validate(&inst, 1e-7).unwrap();
            // Makespan matches the closed form on the optimal norm.
            let (_, norm) = partition::min_norm_assignment(&works, 2, 3.0);
            let loads: Vec<f64> = sol
                .assignment
                .iter()
                .map(|jobs| jobs.iter().map(|&pos| inst.jobs()[pos].work).sum())
                .collect();
            let t = partition::makespan_for_loads(&loads, 3.0, budget);
            assert!((sol.makespan - t).abs() < 1e-9 * t);
            let t_norm = (norm / budget).powf(0.5);
            assert!((sol.makespan - t_norm).abs() < 1e-9 * t_norm);
            // The budget is spent exactly.
            let spent = metrics::energy(&sol.schedule, &model);
            assert!((spent - budget).abs() < 1e-6 * budget, "spent {spent}");
            // Every processor finishes at the common makespan.
            for lane in sol.schedule.machines() {
                if let Some(last) = lane.last() {
                    assert!((last.end - sol.makespan).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn laptop_immediate_rejects_late_releases_and_bad_budget() {
        let late = Instance::from_pairs(&[(0.0, 1.0), (1.0, 2.0)]).unwrap();
        assert!(matches!(
            laptop_immediate(&late, 3.0, 2, 4.0),
            Err(CoreError::NotImmediateRelease)
        ));
        let now = pas_workload::generators::immediate(&[1.0, 2.0]);
        assert!(laptop_immediate(&now, 3.0, 2, 0.0).is_err());
        // α ≤ 1 breaks the T = (norm/E)^{1/(α−1)} closed form.
        for bad_alpha in [1.0, 0.5, f64::NAN] {
            assert!(matches!(
                laptop_immediate(&now, bad_alpha, 2, 4.0),
                Err(CoreError::InvalidAlpha { .. })
            ));
        }
    }

    #[test]
    fn rejects_unequal_work_and_bad_budget() {
        let uneq = Instance::from_pairs(&[(0.0, 1.0), (0.0, 2.0)]).unwrap();
        assert!(matches!(
            laptop(&uneq, &PolyPower::CUBE, 2, 4.0, 1e-9),
            Err(CoreError::NotEqualWork)
        ));
        let eq = Instance::equal_work(&[0.0, 0.0], 1.0).unwrap();
        assert!(laptop(&eq, &PolyPower::CUBE, 2, 0.0, 1e-9).is_err());
    }

    #[test]
    fn idle_processors_allowed() {
        // m > n: extra processors stay empty.
        let inst = Instance::equal_work(&[0.0, 1.0], 1.0).unwrap();
        let sol = laptop(&inst, &PolyPower::CUBE, 5, 4.0, 1e-12).unwrap();
        sol.schedule.validate(&inst, 1e-7).unwrap();
        let busy = sol
            .schedule
            .machines()
            .iter()
            .filter(|l| !l.is_empty())
            .count();
        assert_eq!(busy, 2);
    }
}
