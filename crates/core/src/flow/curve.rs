//! The flow ↔ energy tradeoff curve (the flow analog of Figure 1).
//!
//! §4 of the paper notes that the corresponding figure of
//! Pruhs–Uthaisombut–Woeginger *omits parts of the curve* where the
//! optimum finishes a job exactly at another's release — the boundary
//! configurations that Theorem 8 proves cannot be described exactly.
//! This module samples the curve numerically (which the approximation
//! algorithm can do arbitrarily well) and tags each sample with its
//! configuration signature so those boundary regions are visible in the
//! output.

use crate::error::CoreError;
use crate::flow::solver;
use pas_workload::Instance;

/// One sample of the flow↔energy curve.
#[derive(Debug, Clone)]
pub struct CurvePoint {
    /// Energy of the optimal schedule at this sample.
    pub energy: f64,
    /// Its total flow.
    pub flow: f64,
    /// The parameter `u = σ_n^α`.
    pub u: f64,
    /// Configuration signature (one `G`/`P`/`=` per job boundary).
    pub signature: String,
}

/// Sample the optimal flow at each energy in `energies`.
///
/// # Errors
/// Propagates solver errors (equal-work requirement, invalid budgets).
pub fn tradeoff_curve(
    instance: &Instance,
    alpha: f64,
    energies: &[f64],
    tol: f64,
) -> Result<Vec<CurvePoint>, CoreError> {
    energies
        .iter()
        .map(|&e| {
            let sol = solver::laptop(instance, alpha, e, tol)?;
            Ok(CurvePoint {
                energy: sol.energy,
                flow: sol.total_flow,
                u: sol.u,
                signature: sol.kkt.signature(),
            })
        })
        .collect()
}

/// The energies (within `[lo, hi]`, refined to `precision`) at which the
/// optimal configuration changes — the flow analog of the frontier
/// breakpoints. Found by bisection on the configuration signature.
///
/// # Errors
/// Propagates solver errors.
pub fn configuration_changes(
    instance: &Instance,
    alpha: f64,
    lo: f64,
    hi: f64,
    precision: f64,
) -> Result<Vec<f64>, CoreError> {
    let sig_at = |e: f64| -> Result<String, CoreError> {
        Ok(solver::laptop(instance, alpha, e, 1e-10)?.kkt.signature())
    };
    let mut changes = Vec::new();
    // Scan on a coarse grid, bisect each change.
    let grid = 64;
    let step = (hi - lo) / grid as f64;
    let mut prev_e = lo;
    let mut prev_sig = sig_at(lo)?;
    for k in 1..=grid {
        let e = lo + step * k as f64;
        let sig = sig_at(e)?;
        if sig != prev_sig {
            // Bisect to `precision`.
            let (mut a, mut b) = (prev_e, e);
            let sig_a = prev_sig.clone();
            while b - a > precision {
                let mid = 0.5 * (a + b);
                if sig_at(mid)? == sig_a {
                    a = mid;
                } else {
                    b = mid;
                }
            }
            changes.push(0.5 * (a + b));
        }
        prev_e = e;
        prev_sig = sig;
    }
    Ok(changes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curve_is_decreasing_and_convexish() {
        let inst = Instance::equal_work(&[0.0, 0.0, 1.0], 1.0).unwrap();
        let energies: Vec<f64> = (1..=40).map(|k| 0.5 * k as f64).collect();
        let pts = tradeoff_curve(&inst, 3.0, &energies, 1e-10).unwrap();
        for pair in pts.windows(2) {
            assert!(pair[1].flow < pair[0].flow, "flow not decreasing");
        }
        // Midpoint convexity on a few triples (the optimal tradeoff
        // curve of a convex program is convex).
        for k in (2..pts.len() - 2).step_by(3) {
            let (a, b, c) = (&pts[k - 1], &pts[k], &pts[k + 1]);
            // Equally spaced energies -> f(b) <= (f(a)+f(c))/2 + eps.
            assert!(
                b.flow <= 0.5 * (a.flow + c.flow) + 1e-7,
                "convexity violated near E={}",
                b.energy
            );
        }
    }

    #[test]
    fn hardness_instance_has_boundary_configuration_window() {
        // Measured window [≈10.32, ≈11.54] (the paper prints ≈[8.43,
        // 11.54]; see flow::hardness module docs for the discrepancy):
        // inside it the optimum finishes J2 exactly at time 1 ("P=").
        let inst = Instance::equal_work(&[0.0, 0.0, 1.0], 1.0).unwrap();
        let pts = tradeoff_curve(&inst, 3.0, &[10.5, 11.0, 11.4], 1e-11).unwrap();
        for p in &pts {
            assert_eq!(p.signature, "P=", "E={}: {}", p.energy, p.signature);
        }
        // Below the window: J2 pushes J3 (includes the paper's E=9).
        let low = tradeoff_curve(&inst, 3.0, &[5.0, 9.0], 1e-11).unwrap();
        assert_eq!(low[0].signature, "PP");
        assert_eq!(low[1].signature, "PP");
        // Above the window: a gap after J2.
        let high = tradeoff_curve(&inst, 3.0, &[20.0], 1e-11).unwrap();
        assert_eq!(high[0].signature, "PG");
    }

    #[test]
    fn configuration_change_energies_match_closed_forms() {
        // Closed-form window endpoints (flow::hardness):
        // E_lo = (1+2^{2/3}+3^{2/3})(2^{-1/3}+3^{-1/3})² ≈ 10.3216,
        // E_hi = (2^{2/3}+2)(1+2^{-1/3})² ≈ 11.5420.
        let inst = Instance::equal_work(&[0.0, 0.0, 1.0], 1.0).unwrap();
        let changes = configuration_changes(&inst, 3.0, 5.0, 20.0, 1e-4).unwrap();
        let (lo, hi) = crate::flow::hardness::measured_boundary_window();
        assert_eq!(changes.len(), 2, "{changes:?}");
        assert!((changes[0] - lo).abs() < 0.02, "{changes:?} vs {lo}");
        assert!((changes[1] - hi).abs() < 0.02, "{changes:?} vs {hi}");
    }
}
