//! The flow ↔ energy tradeoff curve (the flow analog of Figure 1).
//!
//! §4 of the paper notes that the corresponding figure of
//! Pruhs–Uthaisombut–Woeginger *omits parts of the curve* where the
//! optimum finishes a job exactly at another's release — the boundary
//! configurations that Theorem 8 proves cannot be described exactly.
//! This module samples the curve numerically (which the approximation
//! algorithm can do arbitrarily well) and tags each sample with its
//! configuration signature so those boundary regions are visible in the
//! output.
//!
//! Sweeps share one [`FlowWorkspace`] (instance validation and cascade
//! sums paid once) and visit energies in **monotone order**, threading
//! each solved point's `u` into the next `laptop` call as its Newton
//! seed: adjacent energies have adjacent `u`, so the warm-started search
//! converges in a couple of evaluations where a cold start pays a full
//! bracket expansion plus bisection. [`configuration_changes`] reuses
//! the same workspace (and the nearest endpoint's `u`) for every probe
//! of its signature bisection.

use crate::error::CoreError;
use crate::flow::solver::FlowWorkspace;
use pas_workload::Instance;

/// One sample of the flow↔energy curve.
#[derive(Debug, Clone)]
pub struct CurvePoint {
    /// Energy of the optimal schedule at this sample.
    pub energy: f64,
    /// Its total flow.
    pub flow: f64,
    /// The parameter `u = σ_n^α`.
    pub u: f64,
    /// Configuration signature (one `G`/`P`/`=` per job boundary).
    pub signature: String,
}

/// Sample the optimal flow at each energy in `energies`.
///
/// Energies are solved in ascending order (results are returned in the
/// caller's order) so each point warm-starts from its lower neighbour.
///
/// # Errors
/// Propagates solver errors (equal-work requirement, invalid budgets).
pub fn tradeoff_curve(
    instance: &Instance,
    alpha: f64,
    energies: &[f64],
    tol: f64,
) -> Result<Vec<CurvePoint>, CoreError> {
    let ws = FlowWorkspace::new(instance, alpha)?;
    let mut order: Vec<usize> = (0..energies.len()).collect();
    order.sort_by(|&i, &j| energies[i].total_cmp(&energies[j]));
    let mut points: Vec<Option<CurvePoint>> = vec![None; energies.len()];
    let mut seed = None;
    for &i in &order {
        let sol = ws.laptop(energies[i], tol, seed)?;
        seed = Some(sol.u);
        points[i] = Some(CurvePoint {
            energy: sol.energy,
            flow: sol.total_flow,
            u: sol.u,
            signature: sol.kkt.signature(),
        });
    }
    Ok(points.into_iter().map(|p| p.expect("all solved")).collect())
}

/// The energies (within `[lo, hi]`, refined to `precision`) at which the
/// optimal configuration changes — the flow analog of the frontier
/// breakpoints. Found by bisection on the configuration signature, every
/// probe warm-started from the nearest already-solved energy.
///
/// # Errors
/// Propagates solver errors.
pub fn configuration_changes(
    instance: &Instance,
    alpha: f64,
    lo: f64,
    hi: f64,
    precision: f64,
) -> Result<Vec<f64>, CoreError> {
    let ws = FlowWorkspace::new(instance, alpha)?;
    let sig_at = |e: f64, seed: Option<f64>| -> Result<(String, f64), CoreError> {
        let sol = ws.laptop(e, 1e-10, seed)?;
        Ok((sol.kkt.signature(), sol.u))
    };
    let mut changes = Vec::new();
    // Scan on a coarse grid, bisect each change.
    let grid = 64;
    let step = (hi - lo) / grid as f64;
    let mut prev_e = lo;
    let (mut prev_sig, mut prev_u) = sig_at(lo, None)?;
    for k in 1..=grid {
        let e = lo + step * k as f64;
        let (sig, u) = sig_at(e, Some(prev_u))?;
        if sig != prev_sig {
            // Bisect to `precision`, seeding each probe from the nearest
            // bracket endpoint's solution.
            let (mut a, mut b) = (prev_e, e);
            let (mut u_a, mut u_b) = (prev_u, u);
            let sig_a = prev_sig.clone();
            while b - a > precision {
                let mid = 0.5 * (a + b);
                let seed = if mid - a <= b - mid { u_a } else { u_b };
                let (sig_mid, u_mid) = sig_at(mid, Some(seed))?;
                if sig_mid == sig_a {
                    a = mid;
                    u_a = u_mid;
                } else {
                    b = mid;
                    u_b = u_mid;
                }
            }
            changes.push(0.5 * (a + b));
        }
        prev_e = e;
        prev_sig = sig;
        prev_u = u;
    }
    Ok(changes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curve_is_decreasing_and_convexish() {
        let inst = Instance::equal_work(&[0.0, 0.0, 1.0], 1.0).unwrap();
        let energies: Vec<f64> = (1..=40).map(|k| 0.5 * k as f64).collect();
        let pts = tradeoff_curve(&inst, 3.0, &energies, 1e-10).unwrap();
        for pair in pts.windows(2) {
            assert!(pair[1].flow < pair[0].flow, "flow not decreasing");
        }
        // Midpoint convexity on a few triples (the optimal tradeoff
        // curve of a convex program is convex).
        for k in (2..pts.len() - 2).step_by(3) {
            let (a, b, c) = (&pts[k - 1], &pts[k], &pts[k + 1]);
            // Equally spaced energies -> f(b) <= (f(a)+f(c))/2 + eps.
            assert!(
                b.flow <= 0.5 * (a.flow + c.flow) + 1e-7,
                "convexity violated near E={}",
                b.energy
            );
        }
    }

    #[test]
    fn unsorted_energies_return_in_caller_order() {
        let inst = Instance::equal_work(&[0.0, 0.0, 1.0], 1.0).unwrap();
        let energies = [12.0, 5.0, 20.0, 8.0];
        let pts = tradeoff_curve(&inst, 3.0, &energies, 1e-10).unwrap();
        for (pt, &e) in pts.iter().zip(&energies) {
            assert!((pt.energy - e).abs() < 1e-6 * e, "{} vs {e}", pt.energy);
        }
    }

    #[test]
    fn hardness_instance_has_boundary_configuration_window() {
        // Measured window [≈10.32, ≈11.54] (the paper prints ≈[8.43,
        // 11.54]; see flow::hardness module docs for the discrepancy):
        // inside it the optimum finishes J2 exactly at time 1 ("P=").
        let inst = Instance::equal_work(&[0.0, 0.0, 1.0], 1.0).unwrap();
        let pts = tradeoff_curve(&inst, 3.0, &[10.5, 11.0, 11.4], 1e-11).unwrap();
        for p in &pts {
            assert_eq!(p.signature, "P=", "E={}: {}", p.energy, p.signature);
        }
        // Below the window: J2 pushes J3 (includes the paper's E=9).
        let low = tradeoff_curve(&inst, 3.0, &[5.0, 9.0], 1e-11).unwrap();
        assert_eq!(low[0].signature, "PP");
        assert_eq!(low[1].signature, "PP");
        // Above the window: a gap after J2.
        let high = tradeoff_curve(&inst, 3.0, &[20.0], 1e-11).unwrap();
        assert_eq!(high[0].signature, "PG");
    }

    #[test]
    fn configuration_change_energies_match_closed_forms() {
        // Closed-form window endpoints (flow::hardness):
        // E_lo = (1+2^{2/3}+3^{2/3})(2^{-1/3}+3^{-1/3})² ≈ 10.3216,
        // E_hi = (2^{2/3}+2)(1+2^{-1/3})² ≈ 11.5420.
        let inst = Instance::equal_work(&[0.0, 0.0, 1.0], 1.0).unwrap();
        let changes = configuration_changes(&inst, 3.0, 5.0, 20.0, 1e-4).unwrap();
        let (lo, hi) = crate::flow::hardness::measured_boundary_window();
        assert_eq!(changes.len(), 2, "{changes:?}");
        assert!((changes[0] - lo).abs() < 0.02, "{changes:?} vs {lo}");
        assert!((changes[1] - hi).abs() < 0.02, "{changes:?} vs {hi}");
    }
}
