//! Uniprocessor power-aware **total flow** scheduling for equal-work jobs
//! (paper §4, building on Pruhs–Uthaisombut–Woeginger).
//!
//! Total flow is `Σ_i (C_i − r_i)`. For equal-work jobs the optimum runs
//! jobs in release (FIFO) order, and Theorem 1 pins down the optimal
//! speeds relative to the last job's speed `σ_n` (for `P = σ^α`):
//!
//! * `C_i < r_{i+1}` (a gap follows) → `σ_i = σ_n`;
//! * `C_i > r_{i+1}` (job `i` delays its successor) →
//!   `σ_i^α = σ_{i+1}^α + σ_n^α`;
//! * `C_i = r_{i+1}` (boundary) → `σ_n^α ≤ σ_i^α ≤ σ_{i+1}^α + σ_n^α`.
//!
//! These are the KKT conditions of a convex program, so a speed profile
//! satisfying them **is** optimal ([`kkt`] verifies them for any
//! solution). [`solver`] resolves the profile for a trial `u = σ_n^α`
//! *directly* by block decomposition (a forward contact sweep plus an
//! exact per-segment cascade solve — see [`solver::FlowWorkspace`]) and
//! inverts `u` against the energy budget (laptop) or the flow target
//! (server) with derivative-seeded Newton, the damped fixed-point
//! iteration surviving as [`solver::solve_for_u_reference`] — an
//! *arbitrarily-good approximation*, which Theorem 8 shows is the best
//! possible: [`hardness`] reproduces the paper's three-job witness whose
//! exact optimum requires roots of a degree-12 polynomial with
//! unsolvable Galois group. [`curve`] samples the flow↔energy tradeoff,
//! the flow analog of Figure 1, warm-starting each point from its
//! neighbour.

pub mod curve;
pub mod hardness;
pub mod kkt;
pub mod resilient;
pub mod solver;

pub use kkt::{KktReport, Relation};
pub use resilient::{
    laptop_resilient, solve_for_u_resilient, FallbackEvent, FallbackStage, ResilientSolve,
};
pub use solver::{
    laptop, server, solve_for_u, solve_for_u_reference, BusyBlock, FlowSensitivity, FlowSolution,
    FlowWorkspace,
};
