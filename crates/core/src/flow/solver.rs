//! The arbitrarily-good flow approximation for equal-work jobs.
//!
//! Strategy (following Pruhs–Uthaisombut–Woeginger as extended by the
//! paper): parameterize optimal schedules by `u = σ_n^α`, the α-th power
//! of the last job's speed. For fixed `u` the Theorem-1 relations
//! determine every other speed, except that which relation applies at a
//! boundary depends on the completion times, which depend on the speeds —
//! a fixed point. We resolve it by damped Gauss–Seidel iteration with the
//! three-case rule evaluated against the *current* start times, then
//! verify the result against Theorem 1 (see [`crate::flow::kkt`]).
//! Energy is strictly increasing in `u` and flow strictly decreasing, so
//! an outer expanding-bracket bisection solves both the laptop and the
//! server problem to any tolerance — which Theorem 8 shows is the best
//! achievable by any algorithm over `(+,−,×,÷,ᵏ√)`.

use crate::error::CoreError;
use crate::flow::kkt::{self, KktReport};
use pas_numeric::compare::is_positive_finite;
use pas_numeric::roots::invert_monotone;
use pas_numeric::NeumaierSum;
use pas_power::{PolyPower, PowerModel};
use pas_sim::{Schedule, Slice};
use pas_workload::Instance;

/// A solved flow schedule for one value of `u = σ_n^α`.
#[derive(Debug, Clone)]
pub struct FlowSolution {
    /// Per-job speeds (sorted job order).
    pub speeds: Vec<f64>,
    /// Per-job start times.
    pub starts: Vec<f64>,
    /// Per-job completion times.
    pub completions: Vec<f64>,
    /// Total flow `Σ (C_i − r_i)`.
    pub total_flow: f64,
    /// Total energy `Σ w·σ_i^{α−1}`.
    pub energy: f64,
    /// The parameter this solution was solved at.
    pub u: f64,
    /// Theorem-1 verification report.
    pub kkt: KktReport,
}

impl FlowSolution {
    /// Materialize as a [`Schedule`] (one slice per job, idle gaps where
    /// `C_i < r_{i+1}`).
    pub fn to_schedule(&self, instance: &Instance) -> Schedule {
        let slices = (0..instance.len())
            .map(|i| {
                Slice::new(
                    instance.job(i).id,
                    self.starts[i],
                    self.completions[i],
                    self.speeds[i],
                )
            })
            .collect();
        Schedule::from_slices(slices)
    }
}

/// Tolerance knobs for the fixed-point iteration.
const MAX_ITERATIONS: usize = 2_000;
const DAMPING_AFTER: usize = 200;
const SPEED_TOL: f64 = 1e-13;
/// Relative KKT residual accepted from the converged profile.
const KKT_TOL: f64 = 1e-6;

/// Solve the Theorem-1 fixed point for a given `u = σ_n^α > 0`.
///
/// # Errors
/// * [`CoreError::NotEqualWork`] — the §4 algorithm requires equal work;
/// * [`CoreError::InvalidBudget`] — `u <= 0`;
/// * [`CoreError::NotConverged`] / [`CoreError::VerificationFailed`] —
///   iteration failure (never observed on valid inputs; kept loud).
pub fn solve_for_u(instance: &Instance, alpha: f64, u: f64) -> Result<FlowSolution, CoreError> {
    if !instance.is_equal_work(1e-9) {
        return Err(CoreError::NotEqualWork);
    }
    if !is_positive_finite(u) {
        return Err(CoreError::InvalidBudget { budget: u });
    }
    let n = instance.len();
    let w = instance.work(0);
    let inv_alpha = 1.0 / alpha;
    let sigma_n = u.powf(inv_alpha);

    let mut speeds = vec![sigma_n; n];
    let mut starts = vec![0.0; n];

    let mut converged = false;
    for iteration in 0..MAX_ITERATIONS {
        // Forward pass: starts from current speeds.
        let mut t = f64::NEG_INFINITY;
        for i in 0..n {
            let s = instance.release(i).max(t);
            starts[i] = s;
            t = s + w / speeds[i];
        }
        // Backward Gauss–Seidel pass: three-case rule per boundary.
        let mut delta = 0.0f64;
        let mut new_last = sigma_n;
        for i in (0..n).rev() {
            let target = if i + 1 == n {
                sigma_n
            } else {
                let r_next = instance.release(i + 1);
                let c_slow = starts[i] + w / sigma_n;
                if c_slow < r_next {
                    // A gap follows even at the minimum speed: Gap case.
                    sigma_n
                } else {
                    let fast = (new_last.powf(alpha) + u).powf(inv_alpha);
                    let c_fast = starts[i] + w / fast;
                    if c_fast > r_next {
                        // Still pushing at the maximum speed: Push case.
                        fast
                    } else {
                        // Boundary: finish exactly at r_{i+1}, clamped
                        // into the Theorem-1 interval.
                        let exact = w / (r_next - starts[i]);
                        exact.clamp(sigma_n, fast)
                    }
                }
            };
            let blended = if iteration >= DAMPING_AFTER {
                // Geometric damping if the plain iteration is cycling.
                (speeds[i] * target).sqrt()
            } else {
                target
            };
            delta = delta.max((blended - speeds[i]).abs() / speeds[i].max(1e-300));
            speeds[i] = blended;
            new_last = blended;
        }
        if delta < SPEED_TOL {
            converged = true;
            break;
        }
    }
    if !converged {
        return Err(CoreError::NotConverged {
            solver: "flow fixed point",
            residual: f64::NAN,
        });
    }

    let report = kkt::verify(instance, &speeds, u, alpha, 1e-7)?;
    if report.max_residual > KKT_TOL {
        return Err(CoreError::VerificationFailed {
            reason: format!(
                "flow fixed point violates Theorem 1 (residual {})",
                report.max_residual
            ),
        });
    }

    // Final forward pass for definitive starts/completions.
    let (starts, completions) = kkt::simulate(instance, &speeds);
    let model = PolyPower::new(alpha);
    let mut flow = NeumaierSum::new();
    let mut energy = NeumaierSum::new();
    for i in 0..n {
        flow.add(completions[i] - instance.release(i));
        energy.add(model.energy(w, speeds[i]));
    }
    Ok(FlowSolution {
        total_flow: flow.total(),
        energy: energy.total(),
        speeds,
        starts,
        completions,
        u,
        kkt: report,
    })
}

/// Solve the **laptop problem** for total flow: minimize flow subject to
/// energy at most `budget`, to relative tolerance `tol` on the budget.
///
/// # Errors
/// Equal-work and budget validation as in [`solve_for_u`]; numeric
/// bracket errors if the budget is astronomically out of range.
pub fn laptop(
    instance: &Instance,
    alpha: f64,
    budget: f64,
    tol: f64,
) -> Result<FlowSolution, CoreError> {
    if !is_positive_finite(budget) {
        return Err(CoreError::InvalidBudget { budget });
    }
    if !instance.is_equal_work(1e-9) {
        return Err(CoreError::NotEqualWork);
    }
    // Initial guess: the constant-speed schedule spending the budget on
    // total work gives σ^{α-1} = E/W, u = σ^α.
    let guess = (budget / instance.total_work()).powf(alpha / (alpha - 1.0));
    let u = invert_monotone(
        |u| {
            solve_for_u(instance, alpha, u)
                .map(|s| s.energy)
                .unwrap_or(f64::NAN)
        },
        budget,
        guess,
        0.0,
        budget * tol.max(1e-13),
    )?;
    solve_for_u(instance, alpha, u)
}

/// Solve the **server problem** for total flow: minimize energy subject
/// to total flow at most `flow_target`, to relative tolerance `tol`.
///
/// # Errors
/// [`CoreError::UnreachableTarget`] when `flow_target` is below the
/// absolute lower bound `Σ w/σ → 0` is unreachable only at 0; practical
/// bracket failures surface as numeric errors.
pub fn server(
    instance: &Instance,
    alpha: f64,
    flow_target: f64,
    tol: f64,
) -> Result<FlowSolution, CoreError> {
    if !is_positive_finite(flow_target) {
        return Err(CoreError::UnreachableTarget {
            reason: format!("flow target {flow_target} must be positive"),
        });
    }
    if !instance.is_equal_work(1e-9) {
        return Err(CoreError::NotEqualWork);
    }
    // Flow decreases in u; invert -flow (increasing).
    let guess = 1.0;
    let u = invert_monotone(
        |u| {
            solve_for_u(instance, alpha, u)
                .map(|s| -s.total_flow)
                .unwrap_or(f64::NAN)
        },
        -flow_target,
        guess,
        0.0,
        flow_target * tol.max(1e-13),
    )?;
    solve_for_u(instance, alpha, u)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pas_workload::generators;

    #[test]
    fn single_job_all_budget() {
        let inst = Instance::equal_work(&[0.0], 1.0).unwrap();
        let sol = laptop(&inst, 3.0, 4.0, 1e-10).unwrap();
        // Energy w·σ² = 4 -> σ = 2, flow = 1/2.
        assert!((sol.speeds[0] - 2.0).abs() < 1e-6);
        assert!((sol.total_flow - 0.5).abs() < 1e-6);
    }

    #[test]
    fn well_separated_jobs_run_at_equal_speed() {
        // Gaps between all jobs: every job at σ_n (Gap configuration).
        let inst = Instance::equal_work(&[0.0, 100.0, 200.0], 1.0).unwrap();
        let sol = laptop(&inst, 3.0, 12.0, 1e-10).unwrap();
        for s in &sol.speeds {
            assert!((s - sol.speeds[2]).abs() < 1e-9, "{:?}", sol.speeds);
        }
        // Energy 3·σ² = 12 -> σ = 2.
        assert!((sol.speeds[0] - 2.0).abs() < 1e-6);
        assert_eq!(sol.kkt.signature(), "GG");
    }

    #[test]
    fn simultaneous_jobs_use_cascading_speeds() {
        // All jobs at t=0: pure Push configuration;
        // σ_i^α = (n - i)·u (1-indexed from the back).
        let inst = Instance::equal_work(&[0.0, 0.0, 0.0], 1.0).unwrap();
        let sol = solve_for_u(&inst, 3.0, 1.0).unwrap();
        assert_eq!(sol.kkt.signature(), "PP");
        let want = [3f64, 2.0, 1.0].map(|k| k.powf(1.0 / 3.0));
        for (got, want) in sol.speeds.iter().zip(want) {
            assert!((got - want).abs() < 1e-9, "{:?}", sol.speeds);
        }
    }

    #[test]
    fn laptop_hits_budget_and_verifies() {
        let inst = Instance::equal_work(&[0.0, 0.5, 0.9, 3.0, 3.1], 1.0).unwrap();
        for &e in &[2.0, 5.0, 10.0, 40.0] {
            let sol = laptop(&inst, 3.0, e, 1e-10).unwrap();
            assert!((sol.energy - e).abs() < 1e-6 * e, "E={e}: {}", sol.energy);
            assert!(sol.kkt.max_residual < 1e-6);
            // Schedule is structurally legal.
            sol.to_schedule(&inst).validate(&inst, 1e-6).unwrap();
        }
    }

    #[test]
    fn flow_decreases_with_budget() {
        let inst = Instance::equal_work(&[0.0, 1.0, 1.5, 4.0], 2.0).unwrap();
        let mut prev = f64::INFINITY;
        for &e in &[4.0, 8.0, 16.0, 32.0, 64.0] {
            let sol = laptop(&inst, 3.0, e, 1e-10).unwrap();
            assert!(sol.total_flow < prev, "E={e}");
            prev = sol.total_flow;
        }
    }

    #[test]
    fn server_round_trips_laptop() {
        let inst = Instance::equal_work(&[0.0, 0.4, 2.0], 1.0).unwrap();
        let lap = laptop(&inst, 3.0, 9.0, 1e-11).unwrap();
        let srv = server(&inst, 3.0, lap.total_flow, 1e-11).unwrap();
        assert!(
            (srv.energy - 9.0).abs() < 1e-4 * 9.0,
            "server energy {} for flow {}",
            srv.energy,
            lap.total_flow
        );
    }

    #[test]
    fn energy_is_monotone_in_u() {
        let inst = Instance::equal_work(&[0.0, 0.3, 0.5, 2.0], 1.0).unwrap();
        let mut prev = 0.0;
        for k in 1..30 {
            let u = 0.25 * k as f64;
            let e = solve_for_u(&inst, 3.0, u).unwrap().energy;
            assert!(e > prev, "u={u}: {e} !> {prev}");
            prev = e;
        }
    }

    #[test]
    fn random_instances_satisfy_theorem1() {
        for seed in 0..15 {
            let inst = generators::equal_work_poisson(12, 1.2, 1.0, seed);
            for &e in &[5.0, 20.0, 60.0] {
                let sol = laptop(&inst, 3.0, e, 1e-9).unwrap();
                assert!(
                    sol.kkt.max_residual < 1e-6,
                    "seed {seed} E={e}: residual {}",
                    sol.kkt.max_residual
                );
            }
        }
    }

    #[test]
    fn alpha_two_also_works() {
        let inst = Instance::equal_work(&[0.0, 0.2, 0.6], 1.0).unwrap();
        let sol = laptop(&inst, 2.0, 6.0, 1e-10).unwrap();
        assert!((sol.energy - 6.0).abs() < 1e-6 * 6.0);
        assert!(sol.kkt.max_residual < 1e-6);
    }

    #[test]
    fn rejects_unequal_work_and_bad_budget() {
        let uneq = Instance::from_pairs(&[(0.0, 1.0), (1.0, 2.0)]).unwrap();
        assert!(matches!(
            laptop(&uneq, 3.0, 5.0, 1e-9),
            Err(CoreError::NotEqualWork)
        ));
        let inst = Instance::equal_work(&[0.0, 1.0], 1.0).unwrap();
        assert!(laptop(&inst, 3.0, 0.0, 1e-9).is_err());
        assert!(server(&inst, 3.0, -1.0, 1e-9).is_err());
        assert!(solve_for_u(&inst, 3.0, 0.0).is_err());
    }

    #[test]
    fn flow_beats_makespan_style_constant_speed() {
        // The flow optimum should not exceed the flow of the best
        // constant-speed schedule with the same energy.
        let inst = Instance::equal_work(&[0.0, 0.1, 0.2, 5.0], 1.0).unwrap();
        let e = 16.0;
        let sol = laptop(&inst, 3.0, e, 1e-10).unwrap();
        // Constant speed σ with 4 unit jobs: energy 4σ² = 16 -> σ = 2.
        let constant = {
            let speeds = vec![2.0, 2.0, 2.0, 2.0];
            let (_, completions) = kkt::simulate(&inst, &speeds);
            completions
                .iter()
                .zip(inst.jobs())
                .map(|(c, j)| c - j.release)
                .sum::<f64>()
        };
        assert!(
            sol.total_flow <= constant + 1e-9,
            "optimal {} vs constant {constant}",
            sol.total_flow
        );
    }
}
