//! The arbitrarily-good flow approximation for equal-work jobs — solved
//! **directly** by block decomposition.
//!
//! Strategy (following Pruhs–Uthaisombut–Woeginger as extended by the
//! paper): parameterize optimal schedules by `u = σ_n^α`, the α-th power
//! of the last job's speed. For fixed `u` the Theorem-1 relations
//! determine every speed once the *configuration* (which of Gap / Push /
//! Boundary applies at each job boundary) is known. The key structural
//! fact is that the configuration is **block decomposable**: the
//! schedule splits at idle gaps and exact-contact boundaries into
//! maximal busy blocks, and inside a block the Push relation telescopes
//! into the closed-form cascade
//!
//! ```text
//! σ_i^α = v + (b − i)·u        (i in block [a..b], tail value v = σ_b^α)
//! ```
//!
//! so a block is described by two numbers: its first job's release (its
//! start) and its tail value `v`. A block either ends at a gap or at the
//! end of the instance (`v = u`), or in exact contact with the next
//! release (`v` pinned by the time equation `r_a + D(v) = r_{b+1}`,
//! clamped to the Theorem-1 interval `[u, σ_{b+1}^α + u]`).
//!
//! [`FlowWorkspace::decompose`] builds this structure **directly**
//! instead of iterating a fixed point, in two cooperating phases:
//!
//! 1. a **forward contact sweep** grows maximal contact segments under
//!    the merged tail-`u` cascade — the pointwise-fastest profile any
//!    valid configuration can reach — and detects, through a min-heap
//!    of binary-searched *violation thresholds* over the cached cascade
//!    sums, every boundary whose merged completion precedes the next
//!    release. Such a violation is **necessary** for a block to end
//!    there, so segments with no violations close as single tail-`u`
//!    blocks in `O(1)`;
//! 2. segments that do carry violations are closed by an exact
//!    **right-to-left DP over the violated candidates**
//!    (`FlowWorkspace::resolve_segment`): the unique Theorem-1 chain
//!    closes each block at the first candidate it can reach at a tail
//!    within the clamp of the already-resolved suffix. (A violation is
//!    only a *candidate* — the merged cascade can overspeed either side
//!    of a boundary, so neither the leftmost nor the rightmost violated
//!    boundary can simply be frozen; the DP is what makes the structure
//!    exact.)
//!
//! One `u`-evaluation is `O(n log n)` on violation-free workloads and
//! `O(n log n + Σ per-segment candidate scans)` in general — versus
//! `O(iters·n)` with `iters` up to thousands for the damped Gauss–Seidel
//! iteration the module used previously, which is preserved as
//! [`solve_for_u_reference`] and held to `1e-9` agreement by the
//! `flow_equivalence` property tests.
//!
//! Two more wins layer on top:
//!
//! * **cached sweep state** — the cascade prefix sums
//!   `H[m] = Σ_{k≤m} k^{-1/α}` depend only on `α`, so a
//!   [`FlowWorkspace`] computes them once and shares them across every
//!   `u`-evaluation of an outer search or curve sweep;
//! * **warm-started outer inversion** — energy is strictly increasing
//!   and flow strictly decreasing in `u`, and both derivatives fall out
//!   of the block structure in closed form
//!   ([`FlowWorkspace::solve_with_sensitivity`]), so the laptop and
//!   server problems invert their targets with seeded, derivative-driven
//!   bracketed Newton ([`pas_numeric::roots::invert_monotone_fdf`])
//!   whose search loop evaluates only the scalar it needs (no
//!   verification or packaging) — a handful of `O(n)` evaluations
//!   instead of cold ~50-step bisection over full solves. Theorem 8
//!   shows this arbitrarily-good approximation is the best achievable by
//!   any algorithm over `(+,−,×,÷,ᵏ√)`.
//!
//! Every solution, from either engine, is verified against the
//! Theorem-1 relations (see [`crate::flow::kkt`]) before being
//! returned: a profile satisfying them is a KKT point of the convex
//! flow program and therefore globally optimal for its energy level.

use crate::error::CoreError;
use crate::flow::kkt::{self, KktReport};
use pas_numeric::compare::is_positive_finite;
use pas_numeric::roots::{invert_monotone, invert_monotone_fdf, newton_bisect, RootError};
use pas_numeric::NeumaierSum;
use pas_power::{PolyPower, PowerModel};
use pas_sim::{Schedule, Slice};
use pas_workload::Instance;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A solved flow schedule for one value of `u = σ_n^α`.
#[derive(Debug, Clone)]
pub struct FlowSolution {
    /// Per-job speeds (sorted job order).
    pub speeds: Vec<f64>,
    /// Per-job start times.
    pub starts: Vec<f64>,
    /// Per-job completion times.
    pub completions: Vec<f64>,
    /// Total flow `Σ (C_i − r_i)`.
    pub total_flow: f64,
    /// Total energy `Σ w·σ_i^{α−1}`.
    pub energy: f64,
    /// The parameter this solution was solved at.
    pub u: f64,
    /// Theorem-1 verification report.
    pub kkt: KktReport,
}

impl FlowSolution {
    /// Materialize as a [`Schedule`] (one slice per job, idle gaps where
    /// `C_i < r_{i+1}`).
    pub fn to_schedule(&self, instance: &Instance) -> Schedule {
        let slices = (0..instance.len())
            .map(|i| {
                Slice::new(
                    instance.job(i).id,
                    self.starts[i],
                    self.completions[i],
                    self.speeds[i],
                )
            })
            .collect();
        Schedule::from_slices(slices)
    }
}

/// One maximal busy block of the Theorem-1 structure at a given `u`.
///
/// Jobs `first..=last` run back-to-back from `start` with the cascade
/// `σ_i^α = tail + (last − i)·u`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BusyBlock {
    /// Sorted index of the first job in the block.
    pub first: usize,
    /// Sorted index of the last job in the block (inclusive).
    pub last: usize,
    /// Block start time (= release of job `first`).
    pub start: f64,
    /// Tail value `v = σ_last^α`; `u` itself unless the block is pinned.
    pub tail: f64,
    /// Whether the block ends in exact contact with the next release
    /// (`true`: `tail` solves the time equation; `false`: the block ends
    /// at a gap or at the end of the instance and `tail == u`).
    pub pinned: bool,
}

impl BusyBlock {
    /// Number of jobs in the block.
    pub fn len(&self) -> usize {
        self.last - self.first + 1
    }

    /// Always false (blocks hold at least one job).
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Closed-form sensitivities of a block solution with respect to `u`,
/// used to Newton-accelerate the outer laptop/server inversions.
#[derive(Debug, Clone, Copy)]
pub struct FlowSensitivity {
    /// `dE/du` — strictly positive away from configuration changes.
    pub denergy_du: f64,
    /// `dF/du` — strictly negative away from configuration changes.
    pub dflow_du: f64,
}

/// Relative KKT residual accepted from a solved profile.
const KKT_TOL: f64 = 1e-6;
/// Time tolerance classifying the three-way completion/release split.
const TIME_TOL: f64 = 1e-7;

/// Reusable solver state for one `(instance, α)` pair: validation is done
/// once, and the `u`-independent cascade sums `H[m] = Σ_{k≤m} k^{-1/α}`
/// are cached across every `u`-evaluation, so outer searches and curve
/// sweeps pay `O(n)` setup once instead of per evaluation.
#[derive(Debug)]
pub struct FlowWorkspace<'a> {
    instance: &'a Instance,
    alpha: f64,
    inv_alpha: f64,
    work: f64,
    /// `harmonic[m] = Σ_{k=1}^{m} k^{-1/α}` (compensated), length `n+1`.
    ///
    /// The duration of an `m`-job tail-`u` cascade is
    /// `w·u^{-1/α}·harmonic[m]`, which makes every completion inside the
    /// active block an O(1) lookup.
    harmonic: Vec<f64>,
}

impl<'a> FlowWorkspace<'a> {
    /// Validate the instance (equal work, paper §4) and precompute the
    /// cascade sums.
    ///
    /// # Errors
    /// [`CoreError::NotEqualWork`] — the §4 algorithm requires equal
    /// work.
    pub fn new(instance: &'a Instance, alpha: f64) -> Result<Self, CoreError> {
        instance.validate()?;
        if !instance.is_equal_work(1e-9) {
            return Err(CoreError::NotEqualWork);
        }
        let inv_alpha = 1.0 / alpha;
        let mut harmonic = Vec::with_capacity(instance.len() + 1);
        harmonic.push(0.0);
        let mut acc = NeumaierSum::new();
        for k in 1..=instance.len() {
            acc.add((k as f64).powf(-inv_alpha));
            harmonic.push(acc.total());
        }
        Ok(FlowWorkspace {
            instance,
            alpha,
            inv_alpha,
            work: instance.work(0),
            harmonic,
        })
    }

    /// The instance this workspace solves.
    pub fn instance(&self) -> &Instance {
        self.instance
    }

    /// Partition the schedule into maximal busy blocks for `u = σ_n^α`.
    ///
    /// Two cooperating mechanisms:
    ///
    /// 1. **Forward contact sweep.** Jobs are appended to the open
    ///    *segment* (a maximal contact run) while the merged tail-`u`
    ///    cascade of the whole segment overruns the next release. The
    ///    merged cascade is the pointwise-fastest profile any valid
    ///    configuration of the segment can reach (`σ_i^α ≤ σ_{i+1}^α + u`
    ///    telescopes from the tail), which yields two certificates:
    ///    a boundary whose merged completion strictly precedes the next
    ///    release is the *only* kind that can end a block inside the
    ///    segment (violation = **necessary** condition for closure), and
    ///    a segment with *no* violated boundaries that reaches a merged
    ///    gap is exactly one tail-`u` block.
    /// 2. **Deferred segment resolution.** Violated boundaries are
    ///    detected by a min-heap of violation thresholds (exact: the
    ///    segment start never moves while it is open, and each boundary's
    ///    merged completion decreases monotonically as the segment grows,
    ///    so the first crossing is a binary search over the cached
    ///    cascade sums). They are *candidates only* — a violation may be
    ///    an artifact of the merged cascade overspeeding either side —
    ///    so the segment's true structure is resolved by
    ///    `Self::resolve_segment`, a right-to-left DP over the
    ///    candidates, when the segment closes. A merged gap is likewise
    ///    only necessary once candidates exist (resolution slows the
    ///    cascade and can push the segment past the release that looked
    ///    gapped), so it is certified against the resolved completion
    ///    before the segment is committed.
    ///
    /// # Errors
    /// [`CoreError::InvalidBudget`] — `u <= 0`; numeric errors from a
    /// degenerate pinned-tail solve (never observed on valid inputs).
    pub fn decompose(&self, u: f64) -> Result<Vec<BusyBlock>, CoreError> {
        if !is_positive_finite(u) {
            return Err(CoreError::InvalidBudget { budget: u });
        }
        let inst = self.instance;
        let n = inst.len();
        // Duration scale of the tail-u cascade: an m-job merged segment
        // takes c·harmonic[m] time.
        let c = self.work * u.powf(-self.inv_alpha);

        let mut blocks: Vec<BusyBlock> = Vec::new();
        // Open segment: jobs a..=j-1 starting at s (= release(a)).
        let mut a = 0usize;
        let mut s = inst.release(0);
        // (threshold last-index, boundary) min-heap, drained into
        // `pending` once the segment's last index reaches the threshold.
        let mut heap: BinaryHeap<Reverse<(usize, usize)>> = BinaryHeap::new();
        // Violated boundaries of the open segment, in detection order.
        let mut pending: Vec<usize> = Vec::new();
        // Segment length below which gap certification is skipped —
        // doubled after each failed attempt. Splitting at certified gaps
        // only *bounds* the final resolution (the DP handles interior
        // gaps itself), so backing off is safe: a dense overloaded run
        // shows a merged gap at almost every join while its true
        // completion never gaps, and certifying each one would re-resolve
        // the segment O(n) times.
        let mut certify_len = 0usize;

        for j in 1..n {
            let c_last = s + c * self.harmonic[j - a];
            let r_j = inst.release(j);
            if c_last <= r_j {
                // Merged gap — necessary for a true gap, not sufficient
                // once closure candidates exist (resolution only slows
                // the cascade). With no candidates the segment is one
                // tail-u block and the gap is exact; otherwise resolve
                // and certify against the true completion.
                if pending.is_empty() {
                    blocks.push(BusyBlock {
                        first: a,
                        last: j - 1,
                        start: s,
                        tail: u,
                        pinned: false,
                    });
                    a = j;
                    s = r_j;
                    heap.clear();
                    certify_len = 0;
                    continue;
                }
                if j - a >= certify_len {
                    let (resolved, end) = self.resolve_segment(u, c, a, j - 1, &pending)?;
                    if end <= r_j {
                        blocks.extend(resolved);
                        a = j;
                        s = r_j;
                        heap.clear();
                        pending.clear();
                        certify_len = 0;
                        continue;
                    }
                    // Not a real gap: keep growing, and don't retry until
                    // the segment doubles.
                    certify_len = 2 * (j - a);
                }
            }
            // Contact: job j joins the segment; every merged speed steps
            // up by u and every merged completion moves earlier.
            if let Some(thr) = self.violation_threshold(j - 1, a, s, c, j) {
                heap.push(Reverse((thr, j - 1)));
            }
            while let Some(&Reverse((thr, e))) = heap.peek() {
                if thr > j {
                    break;
                }
                heap.pop();
                pending.push(e);
            }
        }
        if pending.is_empty() {
            blocks.push(BusyBlock {
                first: a,
                last: n - 1,
                start: s,
                tail: u,
                pinned: false,
            });
        } else {
            let (resolved, _) = self.resolve_segment(u, c, a, n - 1, &pending)?;
            blocks.extend(resolved);
        }
        Ok(blocks)
    }

    /// Smallest last-index `l >= from` at which boundary `e` of the
    /// active block `[a.., start s]` is violated (its completion lands
    /// strictly before `release(e+1)`), or `None` if it never is.
    ///
    /// `C_e(l) = s + c·(H[l−a+1] − H[l−e])` strictly decreases as the
    /// block grows, so the first crossing is found by binary search.
    fn violation_threshold(
        &self,
        e: usize,
        a: usize,
        s: f64,
        c: f64,
        from: usize,
    ) -> Option<usize> {
        let rhs = self.instance.release(e + 1) - s;
        if rhs <= 0.0 {
            return None; // completions never move before the block start
        }
        let n = self.instance.len();
        let violated = |l: usize| c * (self.harmonic[l - a + 1] - self.harmonic[l - e]) < rhs;
        if violated(from) {
            return Some(from);
        }
        if !violated(n - 1) {
            return None;
        }
        let (mut lo, mut hi) = (from, n - 1); // !violated(lo), violated(hi)
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            if violated(mid) {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        Some(hi)
    }

    /// Solve the pinned-tail time equation for an `m`-job block:
    /// `w·Σ_{k<m} (v + k·u)^{-1/α} = duration`, for `v ≥ u`. `v_hi` seeds
    /// the upper bracket (the merged-cascade tail for top-level splits)
    /// and is expanded geometrically when a recursive re-pin needs a tail
    /// beyond it. Monotone in `v`, solved by safeguarded Newton.
    fn pin_tail(&self, m: usize, duration: f64, u: f64, v_hi: f64) -> Result<f64, CoreError> {
        let fdf = |v: f64| {
            let mut d = NeumaierSum::new();
            let mut dd = NeumaierSum::new();
            for k in 0..m {
                let x = v + k as f64 * u;
                let p = x.powf(-self.inv_alpha);
                d.add(p);
                dd.add(p / x);
            }
            (
                self.work * d.total() - duration,
                -self.work * self.inv_alpha * dd.total(),
            )
        };
        // Duration decreases in v; f(u) ≤ 0 means the tail-u block
        // already fits (degenerate pin, collapses to a gap tail).
        if fdf(u).0 <= 0.0 {
            return Ok(u);
        }
        let mut hi = v_hi.max(2.0 * u);
        let mut expansions = 0usize;
        while fdf(hi).0 >= 0.0 {
            hi *= 2.0;
            expansions += 1;
            if expansions > 1_000 || !hi.is_finite() {
                return Err(CoreError::Numeric(RootError::BracketSearchFailed {
                    limit: hi,
                }));
            }
        }
        match newton_bisect(fdf, u, hi, 1e-15 * hi, 1e-12 * duration.abs().max(1.0)) {
            Ok(v) => Ok(v),
            Err(RootError::MaxIterations { best }) => Ok(best),
            Err(e) => Err(e.into()),
        }
    }

    /// Duration of the `m`-job block `[t..t+m-1]` under the cascade with
    /// tail value `v`: `w·Σ_{k=0}^{m-1} (v + k·u)^{-1/α}`.
    fn block_duration(&self, m: usize, v: f64, u: f64) -> f64 {
        let mut d = NeumaierSum::new();
        for k in 0..m {
            d.add((v + k as f64 * u).powf(-self.inv_alpha));
        }
        self.work * d.total()
    }

    /// Resolve the closed segment `jobs a..=m` (a maximal contact run
    /// whose last block has tail `u`) into its exact Theorem-1 blocks,
    /// returning them with the completion time of job `m`.
    ///
    /// `pending` holds every boundary violated under the segment's
    /// merged tail-`u` cascade. Because that cascade is pointwise
    /// fastest, every true block end inside the segment is among them —
    /// but not conversely: a violation can be an artifact of the merged
    /// cascade overspeeding the *left* side (the true structure pins an
    /// earlier boundary, delaying this job's start past its release) or
    /// the *right* side (a later pin slows the cascade feeding it). The
    /// exact structure is the unique chain
    ///
    /// ```text
    /// b(t) = min{ e ≥ t : block [t..e] fits in [r_t, r_{e+1}]
    ///                      at some tail v ≤ FS(e+1) + u }
    /// ```
    ///
    /// where `FS(e+1)` is the α-power speed of the first job of the
    /// resolved suffix starting at `e+1` — the Theorem-1 clamp. A fitting
    /// boundary cannot be Push (even the clamp's maximal cascade would
    /// finish it by the next release), and a non-fitting one cannot end
    /// a block, so the first fit is the unique closure. The suffix
    /// dependence makes the recursion right-to-left: a DP over candidate
    /// starts (`a` and each violated boundary + 1), each scanning
    /// candidates left-to-right with one `O(block)` duration evaluation
    /// per probe — `O(|pending|²)` probes worst case, with `pending`
    /// empty for the vast majority of segments (handled by the caller
    /// without entering this function at all).
    fn resolve_segment(
        &self,
        u: f64,
        c: f64,
        a: usize,
        m: usize,
        pending: &[usize],
    ) -> Result<(Vec<BusyBlock>, f64), CoreError> {
        let inst = self.instance;
        // Candidate block ends: violated boundaries inside the segment,
        // plus the segment end itself.
        let mut cands: Vec<usize> = pending.iter().copied().filter(|&e| e < m).collect();
        cands.sort_unstable();
        cands.dedup();
        cands.push(m);
        // DP over candidate starts, right-to-left. sol[i]: the resolved
        // first block of the suffix starting at cands[i-1]+1 (i > 0) or
        // `a` (i == 0): (block end index into cands, tail, pinned).
        let starts: Vec<usize> = std::iter::once(a)
            .chain(cands.iter().filter(|&&e| e < m).map(|&e| e + 1))
            .collect();
        let mut sol: Vec<(usize, f64, bool)> = vec![(0, 0.0, false); starts.len()];
        // first_speed[i]: FS(starts[i]) of the resolved suffix.
        let mut first_speed: Vec<f64> = vec![0.0; starts.len()];
        for i in (0..starts.len()).rev() {
            let t = starts[i];
            let r_t = inst.release(t);
            let lo = cands.partition_point(|&e| e < t);
            let mut chosen: Option<(usize, f64, bool)> = None;
            for (ci, &e) in cands.iter().enumerate().skip(lo) {
                let jobs = e - t + 1;
                if e == m {
                    // Segment end: the last block always closes tail-u.
                    chosen = Some((ci, u, false));
                    break;
                }
                let avail = inst.release(e + 1) - r_t;
                if avail <= 0.0 {
                    continue; // simultaneous release: can never close here
                }
                if c * self.harmonic[jobs] <= avail {
                    // Fits at tail u: an interior gap (or exact contact).
                    chosen = Some((ci, u, false));
                    break;
                }
                // The suffix from e+1 starts at cands index ci+1 ⟺
                // starts index ci+1 (starts[k] == cands[k-1] + 1).
                let clamp = first_speed[ci + 1] + u;
                // O(1) reject: even with every job at the clamp cascade's
                // fastest position the block overruns r_{e+1}.
                let fastest = clamp + (jobs - 1) as f64 * u;
                if jobs as f64 * self.work * fastest.powf(-self.inv_alpha) > avail {
                    continue;
                }
                if self.block_duration(jobs, clamp, u) <= avail {
                    let v = self.pin_tail(jobs, avail, u, clamp)?;
                    chosen = Some((ci, v, true));
                    break;
                }
            }
            // cands.last() == m always fits, so `chosen` is set.
            let (ci, v, pinned) = chosen.expect("segment end always fits");
            sol[i] = (ci, v, pinned);
            first_speed[i] = v + (cands[ci] - t) as f64 * u;
        }
        // Walk the chain from `a`, emitting blocks in schedule order.
        let mut blocks = Vec::new();
        let mut i = 0usize;
        loop {
            let t = starts[i];
            let (ci, v, pinned) = sol[i];
            let e = cands[ci];
            blocks.push(BusyBlock {
                first: t,
                last: e,
                start: inst.release(t),
                tail: v,
                pinned,
            });
            if e == m {
                break;
            }
            i = ci + 1;
        }
        // The chain's last block always ends at m with tail u.
        let last = blocks.last().expect("chain emits at least one block");
        let end = last.start + c * self.harmonic[last.len()];
        Ok((blocks, end))
    }

    /// Solve the Theorem-1 profile for `u = σ_n^α > 0` directly from the
    /// block decomposition.
    ///
    /// # Errors
    /// As [`solve_for_u`].
    pub fn solve(&self, u: f64) -> Result<FlowSolution, CoreError> {
        self.solve_with_kkt_tol(u, KKT_TOL)
    }

    /// [`FlowWorkspace::solve`] with a caller-chosen Theorem-1 residual
    /// acceptance bar — the degradation ladder's "relaxed verification"
    /// rung (`crate::flow::resilient`). The profile construction is
    /// identical; only the final verification threshold moves.
    pub(crate) fn solve_with_kkt_tol(
        &self,
        u: f64,
        kkt_tol: f64,
    ) -> Result<FlowSolution, CoreError> {
        let blocks = self.decompose(u)?;
        let speeds = self.block_speeds(&blocks, u);
        finish_solution_tol(self.instance, self.alpha, u, speeds, kkt_tol)
    }

    /// [`FlowWorkspace::solve`] plus the closed-form `dE/du` and `dF/du`
    /// of the block structure (treating the configuration as locally
    /// constant, which it is away from configuration-change energies).
    ///
    /// For a tail-`u` block `v' = 1`; for a pinned block the time
    /// equation forces `v' = −Σ k·q_k / Σ q_k` with
    /// `q_k = (v+ku)^{-1/α-1}`. Then per block
    /// `dE/du = w·(α−1)/α · Σ_k (v+ku)^{-1/α}·(v'+k)` and
    /// `dF/du = −w/α · Σ_k (k+1)·(v+ku)^{-1/α-1}·(v'+k)`.
    ///
    /// # Errors
    /// As [`solve_for_u`].
    pub fn solve_with_sensitivity(
        &self,
        u: f64,
    ) -> Result<(FlowSolution, FlowSensitivity), CoreError> {
        let blocks = self.decompose(u)?;
        let (_, denergy_du) = self.accumulate_energy(&blocks, u);
        let (_, dflow_du) = self.accumulate_flow(&blocks, u);
        let speeds = self.block_speeds(&blocks, u);
        let solution = finish_solution(self.instance, self.alpha, u, speeds)?;
        Ok((
            solution,
            FlowSensitivity {
                denergy_du,
                dflow_du,
            },
        ))
    }

    /// `dv/du` of a block's tail value: `1` for tail-`u` blocks; for a
    /// pinned block the (u-independent) time equation forces
    /// `v' = −Σ k·q_k / Σ q_k` with `q_k = (v+ku)^{-1/α-1}`.
    fn block_vprime(&self, b: &BusyBlock, u: f64) -> f64 {
        if !b.pinned {
            return 1.0;
        }
        let mut q = NeumaierSum::new();
        let mut kq = NeumaierSum::new();
        for k in 0..b.len() {
            let x = b.tail + k as f64 * u;
            let qk = x.powf(-self.inv_alpha) / x;
            q.add(qk);
            kq.add(k as f64 * qk);
        }
        -kq.total() / q.total()
    }

    /// `(E, dE/du)` of a decomposed profile:
    /// `E = w·Σ x^{(α−1)/α}` and `dE/du = w·(α−1)/α · Σ x^{-1/α}·(v'+k)`
    /// over cascade values `x = v + k·u` — one `powf` per job, no
    /// verification or packaging, which is what makes it the search-loop
    /// evaluation behind [`FlowWorkspace::laptop`].
    fn accumulate_energy(&self, blocks: &[BusyBlock], u: f64) -> (f64, f64) {
        let mut energy = NeumaierSum::new();
        let mut denergy = NeumaierSum::new();
        for b in blocks {
            let vprime = self.block_vprime(b, u);
            for k in 0..b.len() {
                let x = b.tail + k as f64 * u;
                let p = x.powf(-self.inv_alpha);
                energy.add(self.work * x * p);
                denergy.add((1.0 - self.inv_alpha) * self.work * p * (vprime + k as f64));
            }
        }
        (energy.total(), denergy.total())
    }

    /// `(F, dF/du)` of a decomposed profile: completions accumulate
    /// along each block's contact chain (`1/σ = x^{-1/α}`), and
    /// `dF/du = −w/α · Σ (k+1)·x^{-1/α-1}·(v'+k)`. One `powf` per job,
    /// the server-problem counterpart of
    /// [`FlowWorkspace::accumulate_energy`].
    fn accumulate_flow(&self, blocks: &[BusyBlock], u: f64) -> (f64, f64) {
        let inst = self.instance;
        let mut flow = NeumaierSum::new();
        let mut dflow = NeumaierSum::new();
        for b in blocks {
            let vprime = self.block_vprime(b, u);
            let mut t = b.start;
            for i in b.first..=b.last {
                let k = b.last - i;
                let x = b.tail + k as f64 * u;
                let p = x.powf(-self.inv_alpha);
                t += self.work * p;
                flow.add(t - inst.release(i));
                dflow.add(
                    -self.inv_alpha * self.work * (k + 1) as f64 * (p / x) * (vprime + k as f64),
                );
            }
        }
        (flow.total(), dflow.total())
    }

    /// `(E, dE/du)` at `u` — [`FlowWorkspace::accumulate_energy`] over a
    /// fresh decomposition. Shared with `multi::flow`, whose outer budget
    /// search sums it across processors.
    pub(crate) fn energy_fdf(&self, u: f64) -> Result<(f64, f64), CoreError> {
        let blocks = self.decompose(u)?;
        Ok(self.accumulate_energy(&blocks, u))
    }

    /// `(F, dF/du)` at `u` over a fresh decomposition.
    fn flow_fdf(&self, u: f64) -> Result<(f64, f64), CoreError> {
        let blocks = self.decompose(u)?;
        Ok(self.accumulate_flow(&blocks, u))
    }

    /// Expand a block list into per-job speeds.
    fn block_speeds(&self, blocks: &[BusyBlock], u: f64) -> Vec<f64> {
        let mut speeds = vec![0.0; self.instance.len()];
        for b in blocks {
            for (i, speed) in speeds.iter_mut().enumerate().take(b.last + 1).skip(b.first) {
                *speed = (b.tail + (b.last - i) as f64 * u).powf(self.inv_alpha);
            }
        }
        speeds
    }

    /// Solve the **laptop problem**: minimize flow subject to energy at
    /// most `budget`, to relative tolerance `tol` on the budget. `seed`
    /// warm-starts the `u`-search (e.g. with the previous point of a
    /// curve sweep); `None` falls back to the constant-speed energy
    /// guess.
    ///
    /// # Errors
    /// [`CoreError::InvalidBudget`]; the first solver error encountered
    /// by the search, or a numeric bracket error if the budget is
    /// astronomically out of range.
    pub fn laptop(
        &self,
        budget: f64,
        tol: f64,
        seed: Option<f64>,
    ) -> Result<FlowSolution, CoreError> {
        if !is_positive_finite(budget) {
            return Err(CoreError::InvalidBudget { budget });
        }
        // Constant-speed guess: spending the budget on total work gives
        // σ^{α-1} = E/W, u = σ^α.
        let guess = seed.filter(|s| is_positive_finite(*s)).unwrap_or_else(|| {
            (budget / self.instance.total_work()).powf(self.alpha / (self.alpha - 1.0))
        });
        let mut first_err: Option<CoreError> = None;
        let inverted = invert_monotone_fdf(
            |u| {
                if first_err.is_some() {
                    return (f64::NAN, f64::NAN);
                }
                match self.energy_fdf(u) {
                    Ok(fdf) => fdf,
                    Err(e) => {
                        first_err = Some(e);
                        (f64::NAN, f64::NAN)
                    }
                }
            },
            budget,
            guess,
            0.0,
            budget * tol.max(1e-13),
        );
        let u = resolve_inversion(inverted, first_err)?;
        self.solve(u)
    }

    /// Solve the **server problem**: minimize energy subject to total
    /// flow at most `flow_target`, to relative tolerance `tol`. `seed`
    /// warm-starts the `u`-search; `None` derives the guess from the
    /// constant-speed schedule meeting `flow_target`.
    ///
    /// # Errors
    /// [`CoreError::UnreachableTarget`] for non-positive targets; search
    /// errors as in [`FlowWorkspace::laptop`].
    pub fn server(
        &self,
        flow_target: f64,
        tol: f64,
        seed: Option<f64>,
    ) -> Result<FlowSolution, CoreError> {
        if !is_positive_finite(flow_target) {
            return Err(CoreError::UnreachableTarget {
                reason: format!("flow target {flow_target} must be positive"),
            });
        }
        let guess = seed
            .filter(|s| is_positive_finite(*s))
            .unwrap_or_else(|| self.server_guess(flow_target));
        // Flow decreases in u; invert -flow (increasing).
        let mut first_err: Option<CoreError> = None;
        let inverted = invert_monotone_fdf(
            |u| {
                if first_err.is_some() {
                    return (f64::NAN, f64::NAN);
                }
                match self.flow_fdf(u) {
                    Ok((f, df)) => (-f, -df),
                    Err(e) => {
                        first_err = Some(e);
                        (f64::NAN, f64::NAN)
                    }
                }
            },
            -flow_target,
            guess,
            0.0,
            flow_target * tol.max(1e-13),
        );
        let u = resolve_inversion(inverted, first_err)?;
        self.solve(u)
    }

    /// Flow-derived initial `u`: the constant speed σ whose FIFO schedule
    /// meets `flow_target`, raised to α. Each probe is an O(n) simulate,
    /// so a loose inversion here saves several full solver evaluations of
    /// bracket expansion in the outer search.
    fn server_guess(&self, flow_target: f64) -> f64 {
        let inst = self.instance;
        let constant_flow = |sigma: f64| {
            let mut t = f64::NEG_INFINITY;
            let mut flow = NeumaierSum::new();
            for i in 0..inst.len() {
                let c = inst.release(i).max(t) + self.work / sigma;
                flow.add(c - inst.release(i));
                t = c;
            }
            -flow.total()
        };
        // Non-interfering lower bound on the scale: n jobs of flow w/σ.
        let scale = inst.total_work() / flow_target;
        match invert_monotone(constant_flow, -flow_target, scale, 0.0, 0.05 * flow_target) {
            Ok(sigma) => sigma.powf(self.alpha),
            Err(_) => 1.0,
        }
    }
}

/// Verify a speed profile, simulate it, and package a [`FlowSolution`] —
/// the shared tail of both engines, so they are compared on identical
/// accounting.
fn finish_solution(
    instance: &Instance,
    alpha: f64,
    u: f64,
    speeds: Vec<f64>,
) -> Result<FlowSolution, CoreError> {
    finish_solution_tol(instance, alpha, u, speeds, KKT_TOL)
}

/// [`finish_solution`] with an explicit residual acceptance threshold —
/// the degradation ladder relaxes it (to ~1e-3) before falling back to
/// the reference engine, trading certified optimality for availability.
fn finish_solution_tol(
    instance: &Instance,
    alpha: f64,
    u: f64,
    speeds: Vec<f64>,
    kkt_tol: f64,
) -> Result<FlowSolution, CoreError> {
    let report = kkt::verify(instance, &speeds, u, alpha, TIME_TOL)?;
    if report.max_residual > kkt_tol {
        return Err(CoreError::VerificationFailed {
            reason: format!(
                "flow profile violates Theorem 1 (residual {})",
                report.max_residual
            ),
        });
    }
    let (starts, completions) = kkt::simulate(instance, &speeds);
    let model = PolyPower::new(alpha);
    let w = instance.work(0);
    let mut flow = NeumaierSum::new();
    let mut energy = NeumaierSum::new();
    for i in 0..instance.len() {
        flow.add(completions[i] - instance.release(i));
        energy.add(model.energy(w, speeds[i]));
    }
    Ok(FlowSolution {
        total_flow: flow.total(),
        energy: energy.total(),
        speeds,
        starts,
        completions,
        u,
        kkt: report,
    })
}

/// Unwrap an outer inversion: a captured solver error takes precedence
/// over the (derived) numeric bracket failure it caused.
pub(crate) fn resolve_inversion(
    inverted: Result<f64, RootError>,
    first_err: Option<CoreError>,
) -> Result<f64, CoreError> {
    match inverted {
        Ok(u) => Ok(u),
        Err(root_err) => Err(first_err.unwrap_or(CoreError::Numeric(root_err))),
    }
}

/// Solve the Theorem-1 profile for a given `u = σ_n^α > 0` by direct
/// block decomposition (one `O(n log n)` sweep; see the module docs).
///
/// Callers evaluating many `u` on the same instance should hold a
/// [`FlowWorkspace`] instead, which caches the `u`-independent sweep
/// state.
///
/// # Errors
/// * [`CoreError::NotEqualWork`] — the §4 algorithm requires equal work;
/// * [`CoreError::InvalidBudget`] — `u <= 0`;
/// * [`CoreError::VerificationFailed`] — the profile failed Theorem-1
///   verification (always a bug, surfaced loudly).
pub fn solve_for_u(instance: &Instance, alpha: f64, u: f64) -> Result<FlowSolution, CoreError> {
    FlowWorkspace::new(instance, alpha)?.solve(u)
}

/// Tolerance knobs for the reference fixed-point iteration.
const MAX_ITERATIONS: usize = 2_000;
const DAMPING_AFTER: usize = 200;
/// Relative per-sweep speed delta accepted as converged. Slow
/// contraction modes put the distance to the fixed point at 10–100×
/// the per-sweep delta, so holding the oracle's *energy* inside the
/// 1e-9 agreement bar needs the delta well under 1e-9 — while the
/// historical 1e-13 sat below the iteration's floating-point noise
/// floor at benchmark sizes and made it spuriously fail.
const SPEED_TOL: f64 = 1e-12;

/// Iteration cap for the reference fixed point. Gauss–Seidel information
/// crosses roughly one boundary per sweep, so the historical 2,000-sweep
/// cap silently starves instances past n ≈ 1000; the cap scales with n
/// so the oracle stays usable at benchmark sizes.
fn iteration_cap(n: usize) -> usize {
    MAX_ITERATIONS.max(6 * n)
}

/// The pre-block-decomposition engine: resolve the Theorem-1 fixed point
/// for `u = σ_n^α` by damped Gauss–Seidel iteration (up to 2,000 `O(n)`
/// sweeps), kept verbatim as the equivalence oracle for [`solve_for_u`]
/// — the same role `yds_reference()` plays for the deadline stack.
///
/// # Errors
/// As [`solve_for_u`], plus [`CoreError::NotConverged`] (reporting the
/// last relative speed delta) when the iteration stalls.
pub fn solve_for_u_reference(
    instance: &Instance,
    alpha: f64,
    u: f64,
) -> Result<FlowSolution, CoreError> {
    solve_for_u_reference_with(instance, alpha, u, PLATEAU_TOL, KKT_TOL)
}

/// Plateau acceptance threshold for the reference fixed point (see the
/// comment at its use site). The degradation ladder widens it (to
/// ~1e-4) on its last-resort rung.
const PLATEAU_TOL: f64 = 1e-8;

/// [`solve_for_u_reference`] with caller-chosen plateau and Theorem-1
/// residual thresholds — the degradation ladder's relaxed-reference
/// rung. The iteration itself is unchanged; only the two acceptance
/// bars move.
pub(crate) fn solve_for_u_reference_with(
    instance: &Instance,
    alpha: f64,
    u: f64,
    plateau_tol: f64,
    kkt_tol: f64,
) -> Result<FlowSolution, CoreError> {
    if !instance.is_equal_work(1e-9) {
        return Err(CoreError::NotEqualWork);
    }
    if !is_positive_finite(u) {
        return Err(CoreError::InvalidBudget { budget: u });
    }
    let n = instance.len();
    let w = instance.work(0);
    let inv_alpha = 1.0 / alpha;
    let sigma_n = u.powf(inv_alpha);

    // One forward-starts + backward-three-case-rule sweep, optionally
    // damped, recording per-job increments when `deltas` is given.
    // Returns the largest relative speed change.
    let sweep = |speeds: &mut [f64],
                 starts: &mut [f64],
                 damped: bool,
                 mut deltas: Option<&mut [f64]>|
     -> f64 {
        // Forward pass: starts from current speeds.
        let mut t = f64::NEG_INFINITY;
        for i in 0..n {
            let s = instance.release(i).max(t);
            starts[i] = s;
            t = s + w / speeds[i];
        }
        // Backward Gauss–Seidel pass: three-case rule per boundary.
        let mut delta = 0.0f64;
        let mut new_last = sigma_n;
        for i in (0..n).rev() {
            let target = if i + 1 == n {
                sigma_n
            } else {
                let r_next = instance.release(i + 1);
                let c_slow = starts[i] + w / sigma_n;
                if c_slow < r_next {
                    // A gap follows even at the minimum speed: Gap case.
                    sigma_n
                } else {
                    let fast = (new_last.powf(alpha) + u).powf(inv_alpha);
                    let c_fast = starts[i] + w / fast;
                    if c_fast > r_next {
                        // Still pushing at the maximum speed: Push case.
                        fast
                    } else {
                        // Boundary: finish exactly at r_{i+1}, clamped
                        // into the Theorem-1 interval.
                        let exact = w / (r_next - starts[i]);
                        exact.clamp(sigma_n, fast)
                    }
                }
            };
            let blended = if damped {
                // Geometric damping if the plain iteration is cycling.
                (speeds[i] * target).sqrt()
            } else {
                target
            };
            delta = delta.max((blended - speeds[i]).abs() / speeds[i].max(1e-300));
            if let Some(d) = deltas.as_deref_mut() {
                d[i] = blended - speeds[i];
            }
            speeds[i] = blended;
            new_last = blended;
        }
        delta
    };

    let mut speeds = vec![sigma_n; n];
    let mut starts = vec![0.0; n];

    let mut converged = false;
    let mut last_delta = f64::INFINITY;
    for iteration in 0..iteration_cap(n) {
        last_delta = sweep(&mut speeds, &mut starts, iteration >= DAMPING_AFTER, None);
        if last_delta < SPEED_TOL {
            converged = true;
            break;
        }
    }
    // Near a configuration-change u the damped iteration settles into a
    // two-cycle whose amplitude tracks the tangency distance, not
    // SPEED_TOL — a genuine noise floor. A quiet plateau is accepted as
    // converged-at-noise-floor (the Theorem-1 verification in
    // finish_solution stays the arbiter of validity), while a loud stall
    // — a real non-convergence, like the pre-PR-2 divergences — keeps
    // erroring with the actual last delta.
    if !converged && last_delta >= plateau_tol {
        return Err(CoreError::NotConverged {
            solver: "flow fixed point",
            residual: last_delta,
        });
    }
    // Aitken Δ² finish: long pinned blocks carry a slow contraction mode
    // (error up to ~10⁴× the per-sweep delta, far beyond any reachable
    // SPEED_TOL), so estimate the dominant ratio ρ from two more *damped*
    // sweeps — the convergent sequence; an undamped probe can jump a
    // branch and diverge wildly — and extrapolate the remaining
    // geometric tail in one step, repeated for a few rounds since one
    // extrapolation of a noisy ρ only removes part of the tail. Each
    // candidate is adopted only if it *measures* better — smaller
    // Theorem-1 residual — than the best so far, so a mis-estimated ρ
    // can never make the oracle worse than the plain damped iterate.
    let residual = |sp: &[f64]| {
        kkt::verify(instance, sp, u, alpha, TIME_TOL)
            .map(|r| r.max_residual)
            .unwrap_or(f64::INFINITY)
    };
    let norm = |d: &[f64]| d.iter().fold(0.0f64, |m, x| m.max(x.abs()));
    let mut d1 = vec![0.0; n];
    let mut d2 = vec![0.0; n];
    let mut best = speeds.clone();
    let mut best_residual = residual(&speeds);
    for _round in 0..3 {
        sweep(&mut speeds, &mut starts, true, Some(&mut d1));
        sweep(&mut speeds, &mut starts, true, Some(&mut d2));
        // The probe sweeps themselves are candidates (undamped steps at
        // a two-cycle drift at the cycle amplitude, so they may also be
        // worse — they only ever enter through the residual test).
        let plain = residual(&speeds);
        if plain < best_residual {
            best_residual = plain;
            best = speeds.clone();
        }
        let (n1, n2) = (norm(&d1), norm(&d2));
        if !(n2 > 0.0 && n2 < n1) {
            break;
        }
        let factor = (n2 / n1) / (1.0 - n2 / n1);
        let extrapolated: Vec<f64> = speeds
            .iter()
            .zip(&d2)
            .map(|(s, d)| s + d * factor)
            .collect();
        let r = residual(&extrapolated);
        if r < best_residual {
            best_residual = r;
            best = extrapolated.clone();
            speeds = extrapolated;
        } else {
            break;
        }
    }
    finish_solution_tol(instance, alpha, u, best, kkt_tol)
}

/// Solve the **laptop problem** for total flow: minimize flow subject to
/// energy at most `budget`, to relative tolerance `tol` on the budget.
///
/// One-shot wrapper over [`FlowWorkspace::laptop`]; sweeps should hold
/// the workspace themselves (see [`crate::flow::curve`]).
///
/// # Errors
/// Equal-work and budget validation as in [`solve_for_u`]; the first
/// real solver error met by the search, or numeric bracket errors if the
/// budget is astronomically out of range.
pub fn laptop(
    instance: &Instance,
    alpha: f64,
    budget: f64,
    tol: f64,
) -> Result<FlowSolution, CoreError> {
    FlowWorkspace::new(instance, alpha)?.laptop(budget, tol, None)
}

/// Solve the **server problem** for total flow: minimize energy subject
/// to total flow at most `flow_target`, to relative tolerance `tol`.
///
/// One-shot wrapper over [`FlowWorkspace::server`].
///
/// # Errors
/// [`CoreError::UnreachableTarget`] for non-positive targets; search
/// errors as in [`laptop`].
pub fn server(
    instance: &Instance,
    alpha: f64,
    flow_target: f64,
    tol: f64,
) -> Result<FlowSolution, CoreError> {
    FlowWorkspace::new(instance, alpha)?.server(flow_target, tol, None)
}

/// [`laptop`] driven by the reference fixed-point engine and cold
/// bisection — the pre-optimization outer path, kept for the
/// `flow_equivalence` tests and the `BENCH_flow.json` scaling record.
///
/// # Errors
/// As [`laptop`].
pub fn laptop_reference(
    instance: &Instance,
    alpha: f64,
    budget: f64,
    tol: f64,
) -> Result<FlowSolution, CoreError> {
    if !is_positive_finite(budget) {
        return Err(CoreError::InvalidBudget { budget });
    }
    if !instance.is_equal_work(1e-9) {
        return Err(CoreError::NotEqualWork);
    }
    let guess = (budget / instance.total_work()).powf(alpha / (alpha - 1.0));
    let mut first_err: Option<CoreError> = None;
    let inverted = invert_monotone(
        |u| {
            if first_err.is_some() {
                return f64::NAN;
            }
            match solve_for_u_reference(instance, alpha, u) {
                Ok(s) => s.energy,
                Err(e) => {
                    first_err = Some(e);
                    f64::NAN
                }
            }
        },
        budget,
        guess,
        0.0,
        budget * tol.max(1e-13),
    );
    let u = resolve_inversion(inverted, first_err)?;
    solve_for_u_reference(instance, alpha, u)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pas_workload::generators;

    #[test]
    fn single_job_all_budget() {
        let inst = Instance::equal_work(&[0.0], 1.0).unwrap();
        let sol = laptop(&inst, 3.0, 4.0, 1e-10).unwrap();
        // Energy w·σ² = 4 -> σ = 2, flow = 1/2.
        assert!((sol.speeds[0] - 2.0).abs() < 1e-6);
        assert!((sol.total_flow - 0.5).abs() < 1e-6);
    }

    #[test]
    fn well_separated_jobs_run_at_equal_speed() {
        // Gaps between all jobs: every job at σ_n (Gap configuration).
        let inst = Instance::equal_work(&[0.0, 100.0, 200.0], 1.0).unwrap();
        let sol = laptop(&inst, 3.0, 12.0, 1e-10).unwrap();
        for s in &sol.speeds {
            assert!((s - sol.speeds[2]).abs() < 1e-9, "{:?}", sol.speeds);
        }
        // Energy 3·σ² = 12 -> σ = 2.
        assert!((sol.speeds[0] - 2.0).abs() < 1e-6);
        assert_eq!(sol.kkt.signature(), "GG");
    }

    #[test]
    fn simultaneous_jobs_use_cascading_speeds() {
        // All jobs at t=0: pure Push configuration;
        // σ_i^α = (n - i)·u (1-indexed from the back).
        let inst = Instance::equal_work(&[0.0, 0.0, 0.0], 1.0).unwrap();
        let sol = solve_for_u(&inst, 3.0, 1.0).unwrap();
        assert_eq!(sol.kkt.signature(), "PP");
        let want = [3f64, 2.0, 1.0].map(|k| k.powf(1.0 / 3.0));
        for (got, want) in sol.speeds.iter().zip(want) {
            assert!((got - want).abs() < 1e-9, "{:?}", sol.speeds);
        }
    }

    #[test]
    fn decompose_reports_blocks_and_pins() {
        // Hardness witness inside its boundary window: jobs 0,1 form a
        // pinned block completing exactly at r_2 = 1, job 2 is the tail.
        let inst = Instance::equal_work(&[0.0, 0.0, 1.0], 1.0).unwrap();
        let ws = FlowWorkspace::new(&inst, 3.0).unwrap();
        let sol = ws.laptop(11.0, 1e-12, None).unwrap();
        let blocks = ws.decompose(sol.u).unwrap();
        assert_eq!(blocks.len(), 2, "{blocks:?}");
        assert_eq!((blocks[0].first, blocks[0].last), (0, 1));
        assert!(blocks[0].pinned);
        assert_eq!(blocks[0].len(), 2);
        assert!(!blocks[0].is_empty());
        // Pinned block completes exactly at the next release.
        assert!((sol.completions[1] - 1.0).abs() < 1e-9);
        assert!(!blocks[1].pinned);
        assert!((blocks[1].tail - sol.u).abs() < 1e-12);
        // Far apart: every block is a tail-u singleton.
        let sparse = Instance::equal_work(&[0.0, 50.0, 100.0], 1.0).unwrap();
        let wss = FlowWorkspace::new(&sparse, 3.0).unwrap();
        let blocks = wss.decompose(2.0).unwrap();
        assert_eq!(blocks.len(), 3);
        assert!(blocks.iter().all(|b| !b.pinned && b.tail == 2.0));
    }

    #[test]
    fn sensitivity_matches_finite_differences() {
        let inst = Instance::equal_work(&[0.0, 0.2, 0.5, 0.9, 4.0], 1.0).unwrap();
        let ws = FlowWorkspace::new(&inst, 3.0).unwrap();
        for &u in &[0.4, 1.0, 3.0] {
            let (_, sens) = ws.solve_with_sensitivity(u).unwrap();
            let h = 1e-6 * u;
            let up = ws.solve(u + h).unwrap();
            let dn = ws.solve(u - h).unwrap();
            let de = (up.energy - dn.energy) / (2.0 * h);
            let df = (up.total_flow - dn.total_flow) / (2.0 * h);
            assert!(
                (sens.denergy_du - de).abs() < 1e-4 * de.abs().max(1.0),
                "u={u}: dE/du {} vs FD {de}",
                sens.denergy_du
            );
            assert!(
                (sens.dflow_du - df).abs() < 1e-4 * df.abs().max(1.0),
                "u={u}: dF/du {} vs FD {df}",
                sens.dflow_du
            );
            assert!(sens.denergy_du > 0.0);
            assert!(sens.dflow_du < 0.0);
        }
    }

    #[test]
    fn laptop_hits_budget_and_verifies() {
        let inst = Instance::equal_work(&[0.0, 0.5, 0.9, 3.0, 3.1], 1.0).unwrap();
        for &e in &[2.0, 5.0, 10.0, 40.0] {
            let sol = laptop(&inst, 3.0, e, 1e-10).unwrap();
            assert!((sol.energy - e).abs() < 1e-6 * e, "E={e}: {}", sol.energy);
            assert!(sol.kkt.max_residual < 1e-6);
            // Schedule is structurally legal.
            sol.to_schedule(&inst).validate(&inst, 1e-6).unwrap();
        }
    }

    #[test]
    fn warm_seed_reproduces_cold_solution() {
        let inst = generators::equal_work_poisson(40, 1.0, 1.0, 7);
        let ws = FlowWorkspace::new(&inst, 3.0).unwrap();
        let cold = ws.laptop(30.0, 1e-11, None).unwrap();
        // Seed from a neighbouring budget's solution.
        let neighbour = ws.laptop(33.0, 1e-11, None).unwrap();
        let warm = ws.laptop(30.0, 1e-11, Some(neighbour.u)).unwrap();
        assert!(
            (warm.energy - cold.energy).abs() < 1e-8 * cold.energy,
            "warm {} vs cold {}",
            warm.energy,
            cold.energy
        );
        assert!((warm.u - cold.u).abs() < 1e-7 * cold.u);
        // A degenerate seed falls back to the cold guess.
        let fallback = ws.laptop(30.0, 1e-11, Some(f64::NAN)).unwrap();
        assert!((fallback.energy - cold.energy).abs() < 1e-8 * cold.energy);
    }

    #[test]
    fn flow_decreases_with_budget() {
        let inst = Instance::equal_work(&[0.0, 1.0, 1.5, 4.0], 2.0).unwrap();
        let mut prev = f64::INFINITY;
        for &e in &[4.0, 8.0, 16.0, 32.0, 64.0] {
            let sol = laptop(&inst, 3.0, e, 1e-10).unwrap();
            assert!(sol.total_flow < prev, "E={e}");
            prev = sol.total_flow;
        }
    }

    #[test]
    fn server_round_trips_laptop() {
        let inst = Instance::equal_work(&[0.0, 0.4, 2.0], 1.0).unwrap();
        let lap = laptop(&inst, 3.0, 9.0, 1e-11).unwrap();
        let srv = server(&inst, 3.0, lap.total_flow, 1e-11).unwrap();
        assert!(
            (srv.energy - 9.0).abs() < 1e-4 * 9.0,
            "server energy {} for flow {}",
            srv.energy,
            lap.total_flow
        );
    }

    #[test]
    fn energy_is_monotone_in_u() {
        let inst = Instance::equal_work(&[0.0, 0.3, 0.5, 2.0], 1.0).unwrap();
        let ws = FlowWorkspace::new(&inst, 3.0).unwrap();
        let mut prev = 0.0;
        for k in 1..30 {
            let u = 0.25 * k as f64;
            let e = ws.solve(u).unwrap().energy;
            assert!(e > prev, "u={u}: {e} !> {prev}");
            prev = e;
        }
    }

    #[test]
    fn random_instances_satisfy_theorem1() {
        for seed in 0..15 {
            let inst = generators::equal_work_poisson(12, 1.2, 1.0, seed);
            for &e in &[5.0, 20.0, 60.0] {
                let sol = laptop(&inst, 3.0, e, 1e-9).unwrap();
                assert!(
                    sol.kkt.max_residual < 1e-6,
                    "seed {seed} E={e}: residual {}",
                    sol.kkt.max_residual
                );
            }
        }
    }

    #[test]
    fn alpha_two_also_works() {
        let inst = Instance::equal_work(&[0.0, 0.2, 0.6], 1.0).unwrap();
        let sol = laptop(&inst, 2.0, 6.0, 1e-10).unwrap();
        assert!((sol.energy - 6.0).abs() < 1e-6 * 6.0);
        assert!(sol.kkt.max_residual < 1e-6);
    }

    #[test]
    fn rejects_unequal_work_and_bad_budget() {
        let uneq = Instance::from_pairs(&[(0.0, 1.0), (1.0, 2.0)]).unwrap();
        assert!(matches!(
            laptop(&uneq, 3.0, 5.0, 1e-9),
            Err(CoreError::NotEqualWork)
        ));
        assert!(matches!(
            solve_for_u_reference(&uneq, 3.0, 1.0),
            Err(CoreError::NotEqualWork)
        ));
        let inst = Instance::equal_work(&[0.0, 1.0], 1.0).unwrap();
        assert!(laptop(&inst, 3.0, 0.0, 1e-9).is_err());
        assert!(laptop_reference(&inst, 3.0, 0.0, 1e-9).is_err());
        assert!(server(&inst, 3.0, -1.0, 1e-9).is_err());
        assert!(solve_for_u(&inst, 3.0, 0.0).is_err());
        assert!(solve_for_u_reference(&inst, 3.0, 0.0).is_err());
    }

    #[test]
    fn reference_engine_agrees_with_block_engine() {
        // The full family sweep lives in tests/flow_equivalence.rs; this
        // is the in-crate smoke version.
        let inst = generators::equal_work_poisson(20, 1.5, 1.0, 3);
        for &u in &[0.3, 1.0, 4.0] {
            let fast = solve_for_u(&inst, 3.0, u).unwrap();
            let slow = solve_for_u_reference(&inst, 3.0, u).unwrap();
            assert!(
                (fast.energy - slow.energy).abs() < 1e-9 * slow.energy,
                "u={u}: {} vs {}",
                fast.energy,
                slow.energy
            );
            assert!(
                (fast.total_flow - slow.total_flow).abs() < 1e-9 * slow.total_flow,
                "u={u}: {} vs {}",
                fast.total_flow,
                slow.total_flow
            );
        }
    }

    #[test]
    fn laptop_reference_matches_laptop() {
        let inst = generators::equal_work_poisson(15, 1.0, 1.0, 11);
        for &e in &[6.0, 18.0] {
            let fast = laptop(&inst, 3.0, e, 1e-10).unwrap();
            let slow = laptop_reference(&inst, 3.0, e, 1e-10).unwrap();
            assert!((fast.energy - slow.energy).abs() < 1e-8 * e);
            assert!(
                (fast.total_flow - slow.total_flow).abs() < 1e-7 * slow.total_flow,
                "{} vs {}",
                fast.total_flow,
                slow.total_flow
            );
        }
    }

    #[test]
    fn errors_propagate_as_core_errors_not_bracket_noise() {
        // An unreachable target must surface as a numeric error (no
        // solver failure happened), while a solver failure inside the
        // search must surface as itself. Drive the latter through the
        // public API with an invalid u via solve(), and the former via a
        // flow target below any achievable flow.
        let inst = Instance::equal_work(&[0.0, 0.1], 1.0).unwrap();
        let err = server(&inst, 3.0, 1e-280, 1e-9).unwrap_err();
        assert!(
            matches!(err, CoreError::Numeric(_)),
            "unreachable target should be a numeric bracket error, got {err:?}"
        );
    }

    #[test]
    fn flow_beats_makespan_style_constant_speed() {
        // The flow optimum should not exceed the flow of the best
        // constant-speed schedule with the same energy.
        let inst = Instance::equal_work(&[0.0, 0.1, 0.2, 5.0], 1.0).unwrap();
        let e = 16.0;
        let sol = laptop(&inst, 3.0, e, 1e-10).unwrap();
        // Constant speed σ with 4 unit jobs: energy 4σ² = 16 -> σ = 2.
        let constant = {
            let speeds = vec![2.0, 2.0, 2.0, 2.0];
            let (_, completions) = kkt::simulate(&inst, &speeds);
            completions
                .iter()
                .zip(inst.jobs())
                .map(|(c, j)| c - j.release)
                .sum::<f64>()
        };
        assert!(
            sol.total_flow <= constant + 1e-9,
            "optimal {} vs constant {constant}",
            sol.total_flow
        );
    }
}
