//! The Theorem-8 impossibility witness — with a measured correction.
//!
//! **Theorem 8 (paper §4).** With `power = speed³` there is no exact
//! algorithm minimizing total flow for a given energy budget using
//! `+, −, ×, ÷` and k-th roots, even for equal-work jobs on a
//! uniprocessor.
//!
//! The witness: jobs `J1, J2` released at time 0 and `J3` at time 1, all
//! of unit work. When the optimum finishes `J2` exactly at time 1 (the
//! boundary case of Theorem 1), the speeds satisfy
//!
//! ```text
//! (1)  σ1² + σ2² + σ3² = E        (energy)
//! (2)  1/σ1 + 1/σ2     = 1        (J2 completes at t = 1)
//! (3)  σ1³ = σ2³ + σ3³            (Theorem 1, push case at J1)
//! ```
//!
//! Eliminating `σ1` (via (2)) and `σ3` (via (3)) gives a degree-12
//! polynomial in `σ2` — implemented for any budget by
//! [`boundary_polynomial`]; at the paper's budget `E = 9` it reproduces
//! the paper's printed coefficients *exactly* (asserted in tests). The
//! paper reports (via GAP) that its Galois group is not solvable, hence
//! no radical expression for `σ2` — the group-theoretic step is cited,
//! not recomputed (DESIGN.md §7).
//!
//! ## Reproduction deviation (recorded in EXPERIMENTS.md, E6)
//!
//! The paper states the boundary configuration is optimal for budgets in
//! `≈[8.43, 11.54]` and instantiates the argument at `E = 9`. Our
//! measurements — the Theorem-1 KKT solver *and* an independent direct
//! numerical minimization — both find the boundary window to be
//! `≈[10.3216, 11.5420]`:
//!
//! * the lower end is where the pure-push configuration's `C2` reaches 1:
//!   `E_lo = (1 + 2^{2/3} + 3^{2/3})·(2^{-1/3} + 3^{-1/3})² ≈ 10.3216`;
//! * the upper end is where `σ2` meets `σ3` (gap transition):
//!   `E_hi = (2^{2/3} + 2)·(1 + 2^{-1/3})² ≈ 11.5420`.
//!
//! At `E = 9 < E_lo` the optimum is the all-push configuration with
//! `σ1³ : σ2³ : σ3³ = 3 : 2 : 1` — expressible in radicals. The paper's
//! polynomial at `E = 9` describes the critical point of the
//! `C2 = 1`-*constrained* problem, which is not the global optimum there.
//! Theorem 8's argument goes through verbatim at any budget inside the
//! measured window (the default here is `E = 11`), where our solver's
//! `σ2` converges to a root of [`boundary_polynomial`]`(11)`.

use crate::error::CoreError;
use crate::flow::solver::{self, FlowSolution};
use pas_numeric::Polynomial;
use pas_workload::Instance;

/// The paper's witness instance: unit-work jobs at times 0, 0, 1.
pub fn witness_instance() -> Instance {
    Instance::equal_work(&[0.0, 0.0, 1.0], 1.0).expect("static witness is valid")
}

/// The budget the paper instantiates Theorem 8 at.
pub const PAPER_BUDGET: f64 = 9.0;

/// A budget inside the *measured* boundary window (see module docs),
/// where the hardness argument applies to the actual optimum.
pub const VERIFIED_BUDGET: f64 = 11.0;

/// The measured boundary-configuration window `(E_lo, E_hi)`:
/// `E_lo = (1+2^{2/3}+3^{2/3})(2^{-1/3}+3^{-1/3})²`,
/// `E_hi = (2^{2/3}+2)(1+2^{-1/3})²`.
pub fn measured_boundary_window() -> (f64, f64) {
    let c = |x: f64, p: f64| x.powf(p);
    let lo = (1.0 + c(2.0, 2.0 / 3.0) + c(3.0, 2.0 / 3.0))
        * (c(2.0, -1.0 / 3.0) + c(3.0, -1.0 / 3.0)).powi(2);
    let hi = (c(2.0, 2.0 / 3.0) + 2.0) * (1.0 + c(2.0, -1.0 / 3.0)).powi(2);
    (lo, hi)
}

/// The degree-12 polynomial in `σ2` from the proof of Theorem 8, exactly
/// as printed in the paper (descending coefficients):
///
/// ```text
/// 2σ₂¹² − 12σ₂¹¹ + 6σ₂¹⁰ + 108σ₂⁹ − 159σ₂⁸ − 738σ₂⁷ + 2415σ₂⁶
///   − 1026σ₂⁵ − 5940σ₂⁴ + 12150σ₂³ − 10449σ₂² + 4374σ₂ − 729 = 0
/// ```
///
/// Identical to [`boundary_polynomial`]`(9.0)` (asserted in tests).
pub fn witness_polynomial() -> Polynomial {
    Polynomial::from_descending(vec![
        2.0, -12.0, 6.0, 108.0, -159.0, -738.0, 2415.0, -1026.0, -5940.0, 12150.0, -10449.0,
        4374.0, -729.0,
    ])
}

/// Eliminate `σ1` and `σ3` from the boundary system (1)–(3) at budget
/// `e`, producing the degree-12 polynomial in `s = σ2`:
///
/// ```text
/// s⁶·(1 − (s−1)³)²  −  (e·(s−1)² − s²·(1 + (s−1)²))³
/// ```
///
/// (both sides of `(σ1³−σ2³)² = (e−σ1²−σ2²)³` cleared by `(s−1)⁶` after
/// substituting `σ1 = s/(s−1)`).
pub fn boundary_polynomial(e: f64) -> Polynomial {
    let s = Polynomial::new(vec![0.0, 1.0]);
    let sm1 = Polynomial::new(vec![-1.0, 1.0]);
    let sm1_2 = sm1.mul(&sm1);
    let sm1_3 = sm1_2.mul(&sm1);
    let s2 = s.mul(&s);
    let s6 = s2.mul(&s2).mul(&s2);
    // LHS: s^6 (1 - (s-1)^3)^2
    let one_minus = Polynomial::constant(1.0).add(&sm1_3.scale(-1.0));
    let lhs = s6.mul(&one_minus.mul(&one_minus));
    // RHS: (e (s-1)^2 - s^2 (1 + (s-1)^2))^3
    let inner = sm1_2
        .scale(e)
        .add(&s2.mul(&Polynomial::constant(1.0).add(&sm1_2)).scale(-1.0));
    let rhs = inner.mul(&inner).mul(&inner);
    lhs.add(&rhs.scale(-1.0))
}

/// Everything the witness verification produces.
#[derive(Debug, Clone)]
pub struct WitnessReport {
    /// The budget the report was computed at.
    pub budget: f64,
    /// The approximate optimal solution at that budget.
    pub solution: FlowSolution,
    /// `|p_E(σ2)|` — residual of [`boundary_polynomial`] at the solver's σ2.
    pub polynomial_residual: f64,
    /// Residuals of equations (1), (2), (3).
    pub equation_residuals: [f64; 3],
    /// The polynomial root nearest the solver's σ2.
    pub nearest_root: f64,
    /// `|σ2 − nearest_root|`.
    pub root_distance: f64,
}

/// Solve the witness instance at `budget` and check the boundary system:
/// equations (1)–(3) and membership of `σ2` among the roots of
/// [`boundary_polynomial`]`(budget)`.
///
/// Meaningful for budgets inside [`measured_boundary_window`] (e.g.
/// [`VERIFIED_BUDGET`]); at the paper's `E = 9` the optimum is *not* in
/// the boundary configuration (see module docs) and the residuals are
/// large — [`paper_budget_report`] documents that case instead.
///
/// # Errors
/// Propagates flow-solver errors.
pub fn verify_witness_at(budget: f64, tol: f64) -> Result<WitnessReport, CoreError> {
    let instance = witness_instance();
    let solution = solver::laptop(&instance, 3.0, budget, tol)?;
    let [s1, s2, s3] = [solution.speeds[0], solution.speeds[1], solution.speeds[2]];

    let eq1 = (s1 * s1 + s2 * s2 + s3 * s3 - budget).abs();
    let eq2 = (1.0 / s1 + 1.0 / s2 - 1.0).abs();
    let eq3 = (s1.powi(3) - s2.powi(3) - s3.powi(3)).abs();

    let poly = boundary_polynomial(budget);
    let polynomial_residual = poly.eval(s2).abs();
    let roots = poly.real_roots_in(1.0, 3.0, 4_000, 1e-13);
    let (nearest_root, root_distance) = roots
        .iter()
        .map(|&r| (r, (r - s2).abs()))
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .unwrap_or((f64::NAN, f64::INFINITY));

    Ok(WitnessReport {
        budget,
        solution,
        polynomial_residual,
        equation_residuals: [eq1, eq2, eq3],
        nearest_root,
        root_distance,
    })
}

/// [`verify_witness_at`] at the [`VERIFIED_BUDGET`].
///
/// # Errors
/// Propagates flow-solver errors.
pub fn verify_witness(tol: f64) -> Result<WitnessReport, CoreError> {
    verify_witness_at(VERIFIED_BUDGET, tol)
}

/// What actually happens at the paper's budget `E = 9`.
#[derive(Debug, Clone)]
pub struct PaperBudgetReport {
    /// The optimum at `E = 9`.
    pub solution: FlowSolution,
    /// Configuration signature (measured: `"PP"`, not the boundary `"P="`).
    pub signature: String,
    /// `σ_i³ / σ_3³` — measured `[3, 2, 1]`, i.e. radical-expressible.
    pub cube_ratios: [f64; 3],
    /// Flow of the (non-optimal) boundary critical point at `E = 9`,
    /// reconstructed from the paper polynomial's root near 1.96.
    pub boundary_flow: Option<f64>,
    /// Flow of the true optimum (strictly smaller).
    pub optimal_flow: f64,
}

/// Reproduce the discrepancy at the paper's budget: the optimum at
/// `E = 9` is the all-push configuration with cube ratios `3:2:1`, and
/// the boundary critical point described by the paper's polynomial has
/// strictly larger flow.
///
/// # Errors
/// Propagates flow-solver errors.
pub fn paper_budget_report(tol: f64) -> Result<PaperBudgetReport, CoreError> {
    let instance = witness_instance();
    let solution = solver::laptop(&instance, 3.0, PAPER_BUDGET, tol)?;
    let u = solution.speeds[2].powi(3);
    let cube_ratios = [
        solution.speeds[0].powi(3) / u,
        solution.speeds[1].powi(3) / u,
        1.0,
    ];
    let signature = solution.kkt.signature();
    let optimal_flow = solution.total_flow;

    // Reconstruct the boundary critical point from the paper polynomial:
    // σ2 is its root in (1.9, 2); σ1 = σ2/(σ2−1); σ3³ = σ1³ − σ2³.
    let boundary_flow = witness_polynomial()
        .real_roots_in(1.9, 2.0, 2_000, 1e-13)
        .first()
        .map(|&s2| {
            let s1 = s2 / (s2 - 1.0);
            let s3 = (s1.powi(3) - s2.powi(3)).powf(1.0 / 3.0);
            // C1 = 1/σ1, C2 = 1, C3 = 1 + 1/σ3; releases 0, 0, 1.
            (1.0 / s1) + 1.0 + (1.0 / s3)
        });

    Ok(PaperBudgetReport {
        solution,
        signature,
        cube_ratios,
        boundary_flow,
        optimal_flow,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn polynomial_matches_paper_constant_term() {
        let p = witness_polynomial();
        assert_eq!(p.degree(), Some(12));
        assert_eq!(p.eval(0.0), -729.0);
        assert_eq!(p.coeffs()[12], 2.0);
    }

    #[test]
    fn elimination_at_9_reproduces_paper_polynomial_exactly() {
        let ours = boundary_polynomial(9.0);
        let paper = witness_polynomial();
        assert_eq!(ours.degree(), paper.degree());
        for (a, b) in ours.coeffs().iter().zip(paper.coeffs()) {
            assert_eq!(a, b, "coefficient mismatch: {ours} vs {paper}");
        }
    }

    #[test]
    fn measured_window_values() {
        let (lo, hi) = measured_boundary_window();
        assert!((lo - 10.3216).abs() < 1e-3, "lo = {lo}");
        assert!((hi - 11.5420).abs() < 1e-3, "hi = {hi}");
    }

    #[test]
    fn boundary_case_holds_inside_measured_window() {
        let report = verify_witness(1e-12).unwrap();
        let c2 = report.solution.completions[1];
        assert!((c2 - 1.0).abs() < 1e-8, "C2 = {c2}");
        assert_eq!(report.solution.kkt.signature(), "P=");
    }

    #[test]
    fn equations_hold_at_verified_budget() {
        let report = verify_witness(1e-12).unwrap();
        for (k, r) in report.equation_residuals.iter().enumerate() {
            assert!(*r < 1e-6, "equation {} residual {r}", k + 1);
        }
    }

    #[test]
    fn sigma2_is_a_root_of_the_degree12_polynomial() {
        let report = verify_witness(1e-12).unwrap();
        let p = boundary_polynomial(VERIFIED_BUDGET);
        let (_, dp) = p.eval_with_derivative(report.solution.speeds[1]);
        let normalized = report.polynomial_residual / dp.abs().max(1.0);
        assert!(
            normalized < 1e-7,
            "normalized residual {normalized} (raw {})",
            report.polynomial_residual
        );
        assert!(
            report.root_distance < 1e-7,
            "σ2 = {} vs nearest root {}",
            report.solution.speeds[1],
            report.nearest_root
        );
    }

    #[test]
    fn residual_shrinks_with_tolerance() {
        let loose = verify_witness(1e-4).unwrap();
        let tight = verify_witness(1e-12).unwrap();
        assert!(
            tight.root_distance <= loose.root_distance + 1e-12,
            "tight {} vs loose {}",
            tight.root_distance,
            loose.root_distance
        );
    }

    #[test]
    fn verified_budget_energy_spent_exactly() {
        let report = verify_witness(1e-12).unwrap();
        assert!((report.solution.energy - VERIFIED_BUDGET).abs() < 1e-6);
    }

    #[test]
    fn paper_budget_optimum_is_push_with_radical_speeds() {
        let report = paper_budget_report(1e-12).unwrap();
        assert_eq!(report.signature, "PP");
        // σ1³:σ2³:σ3³ = 3:2:1 — expressible in radicals.
        assert!(
            (report.cube_ratios[0] - 3.0).abs() < 1e-6,
            "{:?}",
            report.cube_ratios
        );
        assert!(
            (report.cube_ratios[1] - 2.0).abs() < 1e-6,
            "{:?}",
            report.cube_ratios
        );
        // The boundary critical point exists but has strictly larger flow.
        let boundary = report.boundary_flow.expect("root near 1.96 exists");
        assert!(
            boundary > report.optimal_flow + 0.1,
            "boundary {boundary} vs optimal {}",
            report.optimal_flow
        );
    }

    #[test]
    fn sturm_chain_certifies_root_inventory() {
        // Certified count: the scan-based root isolation in the window
        // (1, 3) finds every real root the Sturm chain says exists, for
        // both the paper polynomial and the verified-budget elimination.
        for poly in [witness_polynomial(), boundary_polynomial(VERIFIED_BUDGET)] {
            let chain = pas_numeric::SturmChain::new(&poly);
            let certified = chain.count_roots(1.0 + 1e-9, 3.0);
            let found = poly.real_roots_in(1.0, 3.0, 8_000, 1e-13).len();
            assert_eq!(certified, found, "scan missed roots of {poly}");
            assert!(certified >= 1, "no roots in the physical window");
        }
    }

    #[test]
    fn paper_polynomial_root_matches_constrained_system() {
        // The paper's polynomial root near 1.96 satisfies (1)-(3) at E=9.
        let roots = witness_polynomial().real_roots_in(1.9, 2.0, 2_000, 1e-13);
        assert!(!roots.is_empty());
        let s2 = roots[0];
        let s1 = s2 / (s2 - 1.0);
        let s3cubed = s1.powi(3) - s2.powi(3);
        assert!(s3cubed > 0.0);
        let s3 = s3cubed.powf(1.0 / 3.0);
        assert!((s1 * s1 + s2 * s2 + s3 * s3 - 9.0).abs() < 1e-9);
        assert!((1.0 / s1 + 1.0 / s2 - 1.0).abs() < 1e-12);
    }
}
