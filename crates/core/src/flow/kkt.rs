//! Theorem-1 relations as verifiable predicates.
//!
//! Every flow solution produced by [`crate::flow::solver`] is checked
//! against these relations before being returned, so an optimality bug
//! cannot hide: a speed profile that satisfies the relations is a KKT
//! point of the (convex) flow-minimization program and therefore globally
//! optimal for its energy level.

use crate::error::CoreError;
use pas_numeric::compare::is_positive_finite;
use pas_workload::Instance;

/// The three-way case split of Theorem 1 at each job boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// `C_i < r_{i+1}`: the machine idles after job `i`; `σ_i = σ_n`.
    Gap,
    /// `C_i > r_{i+1}`: job `i` delays job `i+1`;
    /// `σ_i^α = σ_{i+1}^α + σ_n^α`.
    Push,
    /// `C_i = r_{i+1}`: the boundary case;
    /// `σ_n^α ≤ σ_i^α ≤ σ_{i+1}^α + σ_n^α`.
    Boundary,
}

impl Relation {
    /// Single-character code used in configuration signatures
    /// (`G`, `P`, `=`).
    pub fn code(&self) -> char {
        match self {
            Relation::Gap => 'G',
            Relation::Push => 'P',
            Relation::Boundary => '=',
        }
    }
}

/// Outcome of verifying a speed profile against Theorem 1.
#[derive(Debug, Clone)]
pub struct KktReport {
    /// Per-boundary relation (length `n-1`).
    pub relations: Vec<Relation>,
    /// Worst normalized violation of the applicable speed identity.
    pub max_residual: f64,
    /// Completion times implied by the speeds (FIFO execution).
    pub completions: Vec<f64>,
}

impl KktReport {
    /// Configuration signature, e.g. `"PG="` — used to detect
    /// configuration changes along the flow↔energy curve.
    pub fn signature(&self) -> String {
        self.relations.iter().map(Relation::code).collect()
    }
}

/// Forward-simulate FIFO execution of `speeds` and return start and
/// completion times.
pub fn simulate(instance: &Instance, speeds: &[f64]) -> (Vec<f64>, Vec<f64>) {
    let n = instance.len();
    let mut starts = Vec::with_capacity(n);
    let mut completions = Vec::with_capacity(n);
    let mut t = f64::NEG_INFINITY;
    for (i, &speed) in speeds.iter().enumerate().take(n) {
        let s = instance.release(i).max(t);
        let c = s + instance.work(i) / speed;
        starts.push(s);
        completions.push(c);
        t = c;
    }
    (starts, completions)
}

/// Verify the Theorem-1 relations for `speeds` with `u = σ_n^α`.
///
/// `time_tol` classifies the three-way completion/release comparison;
/// residuals of the applicable identities are normalized by `u`.
///
/// # Errors
/// [`CoreError::NotEqualWork`] — the theorem is stated for equal-work
/// jobs only; [`CoreError::VerificationFailed`] on malformed input
/// (speed count mismatch or non-positive speeds).
pub fn verify(
    instance: &Instance,
    speeds: &[f64],
    u: f64,
    alpha: f64,
    time_tol: f64,
) -> Result<KktReport, CoreError> {
    if !instance.is_equal_work(1e-9) {
        return Err(CoreError::NotEqualWork);
    }
    let n = instance.len();
    if speeds.len() != n {
        return Err(CoreError::VerificationFailed {
            reason: format!("{} speeds for {n} jobs", speeds.len()),
        });
    }
    if !speeds.iter().all(|s| is_positive_finite(*s)) {
        return Err(CoreError::VerificationFailed {
            reason: "non-positive speed".to_string(),
        });
    }

    let (_, completions) = simulate(instance, speeds);
    let pow = |s: f64| s.powf(alpha);
    let mut relations = Vec::with_capacity(n.saturating_sub(1));
    let mut max_residual = 0.0f64;

    // σ_n^α = u.
    max_residual = max_residual.max((pow(speeds[n - 1]) - u).abs() / u);

    for i in 0..n.saturating_sub(1) {
        let c = completions[i];
        let r_next = instance.release(i + 1);
        let rel = if c < r_next - time_tol {
            Relation::Gap
        } else if c > r_next + time_tol {
            Relation::Push
        } else {
            Relation::Boundary
        };
        let si = pow(speeds[i]);
        let s_next = pow(speeds[i + 1]);
        let residual = match rel {
            Relation::Gap => (si - u).abs() / u,
            Relation::Push => (si - (s_next + u)).abs() / u,
            Relation::Boundary => {
                // Inside [u, σ_{i+1}^α + u] up to tolerance.
                let below = (u - si).max(0.0);
                let above = (si - (s_next + u)).max(0.0);
                below.max(above) / u
            }
        };
        max_residual = max_residual.max(residual);
        relations.push(rel);
    }

    Ok(KktReport {
        relations,
        max_residual,
        completions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gap_configuration_verifies() {
        // Two unit jobs far apart: both run at σ_n; gap between them.
        let inst = Instance::equal_work(&[0.0, 100.0], 1.0).unwrap();
        let u = 8.0; // σ_n = 2 under α = 3
        let report = verify(&inst, &[2.0, 2.0], u, 3.0, 1e-9).unwrap();
        assert_eq!(report.relations, vec![Relation::Gap]);
        assert!(report.max_residual < 1e-12);
        assert_eq!(report.signature(), "G");
    }

    #[test]
    fn push_configuration_verifies() {
        // Two unit jobs both at t=0: job 0 pushes job 1.
        // σ_1^α = u; σ_0^α = 2u. With u = 1, α = 3: speeds (2^{1/3}, 1).
        let inst = Instance::equal_work(&[0.0, 0.0], 1.0).unwrap();
        let s0 = 2f64.powf(1.0 / 3.0);
        let report = verify(&inst, &[s0, 1.0], 1.0, 3.0, 1e-9).unwrap();
        assert_eq!(report.relations, vec![Relation::Push]);
        assert!(report.max_residual < 1e-12);
    }

    #[test]
    fn boundary_accepts_interval_of_speeds() {
        // Job 0 finishes exactly at r_1 = 1 (unit work, speed 1). Any
        // σ_0^α in [u, σ_1^α + u] is allowed; σ_0 = 1 with u = 0.8,
        // σ_1^α = u: interval [0.8, 1.6] contains 1.
        let inst = Instance::equal_work(&[0.0, 1.0], 1.0).unwrap();
        let u = 0.8f64;
        let report = verify(&inst, &[1.0, u.powf(1.0 / 3.0)], u, 3.0, 1e-9).unwrap();
        assert_eq!(report.relations, vec![Relation::Boundary]);
        assert!(report.max_residual < 1e-12, "{}", report.max_residual);
    }

    #[test]
    fn wrong_speeds_produce_residual() {
        let inst = Instance::equal_work(&[0.0, 0.0], 1.0).unwrap();
        // Push configuration but σ_0 = σ_1 = 1 with u = 1: residual 1.
        let report = verify(&inst, &[1.0, 1.0], 1.0, 3.0, 1e-9).unwrap();
        assert_eq!(report.relations, vec![Relation::Push]);
        assert!(report.max_residual > 0.5);
    }

    #[test]
    fn rejects_unequal_work() {
        let inst = Instance::from_pairs(&[(0.0, 1.0), (1.0, 2.0)]).unwrap();
        assert!(matches!(
            verify(&inst, &[1.0, 1.0], 1.0, 3.0, 1e-9),
            Err(CoreError::NotEqualWork)
        ));
    }

    #[test]
    fn rejects_malformed_speeds() {
        let inst = Instance::equal_work(&[0.0, 1.0], 1.0).unwrap();
        assert!(verify(&inst, &[1.0], 1.0, 3.0, 1e-9).is_err());
        assert!(verify(&inst, &[1.0, -1.0], 1.0, 3.0, 1e-9).is_err());
    }

    #[test]
    fn simulate_inserts_idle_gaps() {
        let inst = Instance::equal_work(&[0.0, 10.0], 1.0).unwrap();
        let (starts, completions) = simulate(&inst, &[1.0, 1.0]);
        assert_eq!(starts, vec![0.0, 10.0]);
        assert_eq!(completions, vec![1.0, 11.0]);
    }
}
