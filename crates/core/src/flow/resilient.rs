//! Graceful degradation for the flow solvers: a retry → fallback →
//! error escalation ladder.
//!
//! The direct block-decomposition engine can (rarely, near
//! configuration-change energies) fail its own Theorem-1 verification
//! or report `NotConverged`; in a serving context "give me a slightly
//! less certified answer" beats "give me an error". The ladder encodes
//! that policy explicitly, and — crucially — **audits** it: every rung
//! that fails is recorded as a [`FallbackEvent`] in the returned
//! [`ResilientSolve`], so a caller (or the resilience bench) can tell a
//! pristine answer from one that leaned on a relaxed acceptance bar.
//!
//! Rungs for [`solve_for_u_resilient`]:
//!
//! 1. [`solve_for_u`] — direct engine,
//!    standard `1e-6` Theorem-1 residual bar;
//! 2. direct engine with the residual bar relaxed to
//!    [`RELAXED_KKT_TOL`];
//! 3. [`solve_for_u_reference`] —
//!    the damped fixed-point oracle, standard tolerances;
//! 4. reference engine with plateau acceptance widened to
//!    [`RELAXED_PLATEAU_TOL`] and the relaxed residual bar — the last
//!    rung before error.
//!
//! [`laptop_resilient`] applies the same shape to the outer
//! energy-budget search: standard search → 100× relaxed search
//! tolerance → reference outer search → error.
//!
//! Input errors (`NotEqualWork`, `InvalidBudget`, …) are **not**
//! retried — a bad question does not get better by asking a sloppier
//! solver — and surface immediately. When every rung fails, the *first*
//! rung's error is returned (it describes the un-degraded failure).

use crate::error::CoreError;
use crate::flow::solver::{
    laptop, laptop_reference, solve_for_u, solve_for_u_reference, solve_for_u_reference_with,
    FlowSolution, FlowWorkspace,
};
use pas_workload::Instance;

/// Theorem-1 residual bar used by the relaxed rungs (standard is 1e-6).
pub const RELAXED_KKT_TOL: f64 = 1e-3;

/// Plateau acceptance used by the last-resort reference rung (standard
/// is 1e-8).
pub const RELAXED_PLATEAU_TOL: f64 = 1e-4;

/// The rung of the degradation ladder at which a failure occurred.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FallbackStage {
    /// Direct block-decomposition engine at standard tolerances.
    Direct,
    /// Direct engine with the Theorem-1 residual bar relaxed.
    RelaxedVerification,
    /// Outer search re-run at a widened search tolerance
    /// ([`laptop_resilient`] ladder only).
    RelaxedTolerance,
    /// Reference fixed-point engine at standard tolerances.
    ReferenceFixedPoint,
    /// Reference engine with plateau and residual bars relaxed — the
    /// rung below this is an error.
    ReferenceRelaxed,
}

impl std::fmt::Display for FallbackStage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            FallbackStage::Direct => "direct",
            FallbackStage::RelaxedVerification => "relaxed-verification",
            FallbackStage::RelaxedTolerance => "relaxed-tolerance",
            FallbackStage::ReferenceFixedPoint => "reference-fixed-point",
            FallbackStage::ReferenceRelaxed => "reference-relaxed",
        };
        f.write_str(name)
    }
}

/// One audited degradation: the rung that failed and why, pushing the
/// ladder down to the next rung.
#[derive(Debug, Clone, PartialEq)]
pub struct FallbackEvent {
    /// The rung that failed.
    pub stage: FallbackStage,
    /// Its error.
    pub error: CoreError,
}

/// A solution plus the audit trail of every rung that failed before it
/// was produced. Empty `fallbacks` means the pristine path succeeded.
#[derive(Debug, Clone)]
pub struct ResilientSolve {
    /// The solution (from the first rung that succeeded).
    pub solution: FlowSolution,
    /// Rungs that failed before `solution` was produced, in order.
    pub fallbacks: Vec<FallbackEvent>,
}

impl ResilientSolve {
    /// Whether any degradation occurred (i.e. the solution did not come
    /// from the standard path at standard tolerances).
    pub fn degraded(&self) -> bool {
        !self.fallbacks.is_empty()
    }
}

/// Whether an error is worth escalating past: solver-side failures are;
/// input errors are not (no rung can fix a malformed question).
fn retryable(e: &CoreError) -> bool {
    matches!(
        e,
        CoreError::NotConverged { .. }
            | CoreError::VerificationFailed { .. }
            | CoreError::Numeric(_)
    )
}

/// One rung of a ladder: a labelled deferred solve attempt.
type Rung<'a, T> = (
    FallbackStage,
    Box<dyn FnOnce() -> Result<T, CoreError> + 'a>,
);

/// Run `rungs` in order. First success wins (carrying the audit trail);
/// a non-retryable error aborts immediately; if every rung fails, the
/// first rung's error is returned.
fn escalate<T>(rungs: Vec<Rung<'_, T>>) -> Result<(T, Vec<FallbackEvent>), CoreError> {
    let mut fallbacks: Vec<FallbackEvent> = Vec::new();
    for (stage, run) in rungs {
        match run() {
            Ok(v) => return Ok((v, fallbacks)),
            Err(e) if retryable(&e) => fallbacks.push(FallbackEvent { stage, error: e }),
            Err(e) => return Err(e),
        }
    }
    Err(fallbacks
        .into_iter()
        .next()
        .map(|f| f.error)
        .expect("ladder has at least one rung"))
}

/// [`solve_for_u`] behind the degradation
/// ladder described in the module docs.
///
/// # Errors
/// Input errors immediately; otherwise only if every rung fails, in
/// which case the first (un-degraded) rung's error is returned.
pub fn solve_for_u_resilient(
    instance: &Instance,
    alpha: f64,
    u: f64,
) -> Result<ResilientSolve, CoreError> {
    let (solution, fallbacks) = escalate(vec![
        (
            FallbackStage::Direct,
            Box::new(move || solve_for_u(instance, alpha, u)) as _,
        ),
        (
            FallbackStage::RelaxedVerification,
            Box::new(move || {
                FlowWorkspace::new(instance, alpha)?.solve_with_kkt_tol(u, RELAXED_KKT_TOL)
            }) as _,
        ),
        (
            FallbackStage::ReferenceFixedPoint,
            Box::new(move || solve_for_u_reference(instance, alpha, u)) as _,
        ),
        (
            FallbackStage::ReferenceRelaxed,
            Box::new(move || {
                solve_for_u_reference_with(instance, alpha, u, RELAXED_PLATEAU_TOL, RELAXED_KKT_TOL)
            }) as _,
        ),
    ])?;
    Ok(ResilientSolve {
        solution,
        fallbacks,
    })
}

/// [`laptop`] behind the degradation ladder:
/// standard search → search tolerance relaxed 100× (capped at 1%) →
/// reference outer search → error.
///
/// # Errors
/// As [`solve_for_u_resilient`].
pub fn laptop_resilient(
    instance: &Instance,
    alpha: f64,
    budget: f64,
    tol: f64,
) -> Result<ResilientSolve, CoreError> {
    let relaxed_tol = (tol * 100.0).min(1e-2);
    let (solution, fallbacks) = escalate(vec![
        (
            FallbackStage::Direct,
            Box::new(move || laptop(instance, alpha, budget, tol)) as _,
        ),
        (
            FallbackStage::RelaxedTolerance,
            Box::new(move || laptop(instance, alpha, budget, relaxed_tol)) as _,
        ),
        (
            FallbackStage::ReferenceFixedPoint,
            Box::new(move || laptop_reference(instance, alpha, budget, tol)) as _,
        ),
    ])?;
    Ok(ResilientSolve {
        solution,
        fallbacks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pristine_path_records_no_fallbacks() {
        let inst = Instance::equal_work(&[0.0, 0.7, 1.9, 3.0], 1.0).unwrap();
        let direct = solve_for_u(&inst, 3.0, 2.0).unwrap();
        let res = solve_for_u_resilient(&inst, 3.0, 2.0).unwrap();
        assert!(!res.degraded());
        assert_eq!(res.solution.total_flow, direct.total_flow);
        assert_eq!(res.solution.energy, direct.energy);

        let lap = laptop(&inst, 3.0, 20.0, 1e-10).unwrap();
        let res = laptop_resilient(&inst, 3.0, 20.0, 1e-10).unwrap();
        assert!(!res.degraded());
        assert!((res.solution.total_flow - lap.total_flow).abs() < 1e-12);
    }

    #[test]
    fn input_errors_are_not_retried() {
        // Unequal work: a malformed question for the §4 solver — must
        // surface as-is, not be laundered through relaxed rungs.
        let uneq = Instance::from_pairs(&[(0.0, 1.0), (1.0, 2.0)]).unwrap();
        let err = solve_for_u_resilient(&uneq, 3.0, 1.0).unwrap_err();
        assert!(matches!(err, CoreError::NotEqualWork));
        let eq = Instance::equal_work(&[0.0, 1.0], 1.0).unwrap();
        let err = solve_for_u_resilient(&eq, 3.0, -1.0).unwrap_err();
        assert!(matches!(err, CoreError::InvalidBudget { .. }));
        let err = laptop_resilient(&eq, 3.0, -5.0, 1e-10).unwrap_err();
        assert!(matches!(err, CoreError::InvalidBudget { .. }));
    }

    #[test]
    fn escalation_records_every_failed_rung() {
        // Exercise the ladder machinery itself with synthetic rungs.
        let not_conv = || CoreError::NotConverged {
            solver: "synthetic",
            residual: 1.0,
        };
        // Second rung succeeds: one fallback recorded.
        let (v, fb) = escalate::<i32>(vec![
            (FallbackStage::Direct, Box::new(move || Err(not_conv()))),
            (FallbackStage::RelaxedVerification, Box::new(|| Ok(7))),
        ])
        .unwrap();
        assert_eq!(v, 7);
        assert_eq!(fb.len(), 1);
        assert_eq!(fb[0].stage, FallbackStage::Direct);

        // All rungs fail: the FIRST error is returned.
        let err = escalate::<i32>(vec![
            (FallbackStage::Direct, Box::new(move || Err(not_conv()))),
            (
                FallbackStage::ReferenceFixedPoint,
                Box::new(|| {
                    Err(CoreError::VerificationFailed {
                        reason: "later".into(),
                    })
                }),
            ),
        ])
        .unwrap_err();
        assert!(matches!(err, CoreError::NotConverged { .. }));

        // A non-retryable error aborts mid-ladder.
        let err = escalate::<i32>(vec![
            (FallbackStage::Direct, Box::new(move || Err(not_conv()))),
            (
                FallbackStage::ReferenceFixedPoint,
                Box::new(|| Err(CoreError::NotEqualWork)),
            ),
            (FallbackStage::ReferenceRelaxed, Box::new(|| Ok(9))),
        ])
        .unwrap_err();
        assert!(matches!(err, CoreError::NotEqualWork));
    }

    #[test]
    fn relaxed_rungs_accept_what_strict_rejects() {
        // The relaxed-verification rung is the strict engine with a
        // wider acceptance bar, so anything the strict engine accepts it
        // accepts too, with identical output.
        let inst = Instance::equal_work(&[0.0, 0.5, 1.0, 2.5], 1.0).unwrap();
        let ws = FlowWorkspace::new(&inst, 3.0).unwrap();
        let strict = ws.solve(1.7).unwrap();
        let relaxed = ws.solve_with_kkt_tol(1.7, RELAXED_KKT_TOL).unwrap();
        assert_eq!(strict.speeds, relaxed.speeds);
        // And the relaxed reference rung matches the standard reference
        // on well-posed inputs.
        let std_ref = solve_for_u_reference(&inst, 3.0, 1.7).unwrap();
        let rel_ref =
            solve_for_u_reference_with(&inst, 3.0, 1.7, RELAXED_PLATEAU_TOL, RELAXED_KKT_TOL)
                .unwrap();
        assert!((std_ref.total_flow - rel_ref.total_flow).abs() < 1e-9);
    }

    #[test]
    fn stage_display_names() {
        assert_eq!(FallbackStage::Direct.to_string(), "direct");
        assert_eq!(
            FallbackStage::ReferenceRelaxed.to_string(),
            "reference-relaxed"
        );
    }
}
