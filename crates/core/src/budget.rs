//! Solve budgets and certified graceful degradation.
//!
//! Theorem 11 makes the exact multiprocessor assignment NP-hard, so any
//! caller with a latency obligation (the fleet simulator, the serving
//! engine) needs the branch and bound to be *interruptible*: stop at a
//! wall-clock or node budget and hand back the best incumbent **with a
//! certified bound gap**, rather than either running unbounded or
//! returning an unqualified heuristic.
//!
//! The contract of [`Budgeted`]:
//!
//! * [`Budgeted::Exact`] — the search ran to completion; the value is
//!   the true optimum (bit-identical to the unbudgeted entry point —
//!   the gate only adds an integer counter to the search, never a
//!   float).
//! * [`Budgeted::Degraded`] — the budget ran out. The value is the best
//!   incumbent found; [`Degradation::lower_bound`] is a *sound* lower
//!   bound on the true optimum (min over the incumbent and every
//!   abandoned subtree's waterfill relaxation), so
//!   `optimum ∈ [lower_bound, value]` and
//!   [`Degradation::bound_gap`]` = value − lower_bound ≥ 0` certifies
//!   how far from optimal the answer can possibly be.
//!
//! A zero budget degrades immediately to the seeded heuristic incumbent
//! (LPT + local search) with the root relaxation as the bound — i.e.
//! the ladder bottoms out at "heuristic with a certificate", never at a
//! panic or a hang.

use std::time::{Duration, Instant};

/// Resource limits for an exact search.
///
/// `None` in a field means that resource is unlimited. The default is
/// [`SolveBudget::UNLIMITED`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SolveBudget {
    /// Wall-clock limit. Checked at node granularity (every ~2048
    /// nodes), so the search returns within the budget plus a few
    /// thousand node expansions — well inside 2× for budgets above a
    /// millisecond.
    pub wall: Option<Duration>,
    /// Search-node limit (deterministic, unlike wall time).
    pub nodes: Option<u64>,
}

impl SolveBudget {
    /// No limits: the search runs to proven optimality.
    pub const UNLIMITED: SolveBudget = SolveBudget {
        wall: None,
        nodes: None,
    };

    /// Limit wall-clock time only.
    pub fn wall(limit: Duration) -> Self {
        SolveBudget {
            wall: Some(limit),
            nodes: None,
        }
    }

    /// Limit explored search nodes only (deterministic).
    pub fn nodes(limit: u64) -> Self {
        SolveBudget {
            wall: None,
            nodes: Some(limit),
        }
    }

    /// Whether neither limit is set.
    pub fn is_unlimited(&self) -> bool {
        self.wall.is_none() && self.nodes.is_none()
    }
}

/// What a budget exhaustion cost: the incumbent, its certificate, and
/// the effort spent.
#[derive(Debug, Clone, PartialEq)]
pub struct Degradation<T> {
    /// Best incumbent found before the budget ran out.
    pub value: T,
    /// Sound lower bound on the true optimum (never above the
    /// incumbent's objective).
    pub lower_bound: f64,
    /// Certified optimality gap: incumbent objective − `lower_bound`,
    /// always ≥ 0. Zero means the incumbent is optimal even though the
    /// search could not finish proving it.
    pub bound_gap: f64,
    /// Search nodes expanded.
    pub nodes: u64,
    /// Wall-clock time spent.
    pub elapsed: Duration,
}

/// Result of a budgeted search: exact, or degraded-with-certificate.
#[derive(Debug, Clone, PartialEq)]
pub enum Budgeted<T> {
    /// The search completed; this is the proven optimum.
    Exact(T),
    /// The budget ran out; best incumbent plus certified gap.
    Degraded(Degradation<T>),
}

impl<T> Budgeted<T> {
    /// The payload, discarding the exact/degraded distinction.
    pub fn into_value(self) -> T {
        match self {
            Budgeted::Exact(v) => v,
            Budgeted::Degraded(d) => d.value,
        }
    }

    /// Borrow the payload.
    pub fn value(&self) -> &T {
        match self {
            Budgeted::Exact(v) => v,
            Budgeted::Degraded(d) => &d.value,
        }
    }

    /// Whether the budget ran out before optimality was proven.
    pub fn is_degraded(&self) -> bool {
        matches!(self, Budgeted::Degraded(_))
    }

    /// The degradation certificate, when degraded.
    pub fn degradation(&self) -> Option<&Degradation<T>> {
        match self {
            Budgeted::Degraded(d) => Some(d),
            Budgeted::Exact(_) => None,
        }
    }
}

/// How a branch-and-bound run consumes its budget. Implemented by the
/// sequential [`BudgetGate`] and the per-worker view of a
/// [`SharedGate`]; threaded through `descend` so both solvers share one
/// search body.
pub(crate) trait SearchGate {
    /// Account one search node. `false` means the budget is exhausted:
    /// the caller must stop descending and report the subtree it is
    /// abandoning via [`SearchGate::abandon`].
    fn tick(&mut self) -> bool;

    /// Record the relaxation bound of a subtree abandoned because of
    /// exhaustion (NOT because of pruning). The minimum over these,
    /// combined with the incumbent, is the certified lower bound.
    fn abandon(&mut self, bound: f64);
}

/// How often ticks consult the wall clock (`Instant::now` is ~20ns but
/// nodes are ~100ns; every node would be a measurable tax).
const WALL_CHECK_PERIOD: u64 = 2048;

/// Sequential budget gate: counts nodes, polls the wall clock
/// periodically, tracks the min abandoned bound.
#[derive(Debug)]
pub(crate) struct BudgetGate {
    node_limit: Option<u64>,
    deadline: Option<Instant>,
    start: Instant,
    nodes: u64,
    exhausted: bool,
    min_abandoned: f64,
}

impl BudgetGate {
    pub(crate) fn new(budget: &SolveBudget) -> Self {
        let start = Instant::now();
        BudgetGate {
            node_limit: budget.nodes,
            deadline: budget.wall.map(|w| start + w),
            start,
            nodes: 0,
            exhausted: false,
            min_abandoned: f64::INFINITY,
        }
    }

    pub(crate) fn nodes(&self) -> u64 {
        self.nodes
    }

    pub(crate) fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    pub(crate) fn exhausted(&self) -> bool {
        self.exhausted
    }

    /// `min(incumbent, min abandoned bound)` is the certified lower
    /// bound; this is the abandoned half.
    pub(crate) fn min_abandoned(&self) -> f64 {
        self.min_abandoned
    }
}

impl SearchGate for BudgetGate {
    fn tick(&mut self) -> bool {
        if self.exhausted {
            return false;
        }
        if let Some(limit) = self.node_limit {
            if self.nodes >= limit {
                self.exhausted = true;
                return false;
            }
        }
        self.nodes += 1;
        if let Some(deadline) = self.deadline {
            // First node and then every WALL_CHECK_PERIOD nodes.
            if self.nodes % WALL_CHECK_PERIOD == 1 && Instant::now() >= deadline {
                self.exhausted = true;
                return false;
            }
        }
        true
    }

    fn abandon(&mut self, bound: f64) {
        if bound < self.min_abandoned {
            self.min_abandoned = bound;
        }
    }
}

/// Shared budget state for the parallel solver: a stop flag, a global
/// node counter (batched), and the min abandoned bound as f64 bits.
#[derive(Debug)]
pub(crate) struct SharedGate {
    stop: std::sync::atomic::AtomicBool,
    nodes: std::sync::atomic::AtomicU64,
    abandoned_bits: std::sync::atomic::AtomicU64,
    node_limit: Option<u64>,
    deadline: Option<Instant>,
    start: Instant,
}

impl SharedGate {
    pub(crate) fn new(budget: &SolveBudget) -> Self {
        let start = Instant::now();
        SharedGate {
            stop: std::sync::atomic::AtomicBool::new(false),
            nodes: std::sync::atomic::AtomicU64::new(0),
            abandoned_bits: std::sync::atomic::AtomicU64::new(f64::INFINITY.to_bits()),
            node_limit: budget.nodes,
            deadline: budget.wall.map(|w| start + w),
            start,
        }
    }

    pub(crate) fn nodes(&self) -> u64 {
        self.nodes.load(std::sync::atomic::Ordering::Relaxed)
    }

    pub(crate) fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    pub(crate) fn min_abandoned(&self) -> f64 {
        f64::from_bits(
            self.abandoned_bits
                .load(std::sync::atomic::Ordering::Relaxed),
        )
    }

    /// Whether any worker abandoned work — i.e. the result is degraded.
    pub(crate) fn exhausted(&self) -> bool {
        self.min_abandoned() < f64::INFINITY
    }

    fn record_abandoned(&self, bound: f64) {
        use std::sync::atomic::Ordering::Relaxed;
        let mut cur = self.abandoned_bits.load(Relaxed);
        while bound < f64::from_bits(cur) {
            match self
                .abandoned_bits
                .compare_exchange_weak(cur, bound.to_bits(), Relaxed, Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// A worker's view: batches node accounting so the hot path is a
    /// local increment plus one relaxed load.
    pub(crate) fn worker(&self) -> WorkerGate<'_> {
        WorkerGate {
            shared: self,
            pending: 0,
        }
    }
}

/// Per-worker handle onto a [`SharedGate`] (flushes its node batch on
/// drop).
#[derive(Debug)]
pub(crate) struct WorkerGate<'a> {
    shared: &'a SharedGate,
    pending: u64,
}

/// Worker-local batch size for the shared node counter.
const BATCH: u64 = 64;

impl SearchGate for WorkerGate<'_> {
    fn tick(&mut self) -> bool {
        use std::sync::atomic::Ordering::Relaxed;
        if self.shared.stop.load(Relaxed) {
            return false;
        }
        self.pending += 1;
        if self.pending >= BATCH {
            let total = self.shared.nodes.fetch_add(self.pending, Relaxed) + self.pending;
            self.pending = 0;
            if let Some(limit) = self.shared.node_limit {
                if total > limit {
                    self.shared.stop.store(true, Relaxed);
                    return false;
                }
            }
            if let Some(deadline) = self.shared.deadline {
                if Instant::now() >= deadline {
                    self.shared.stop.store(true, Relaxed);
                    return false;
                }
            }
        }
        true
    }

    fn abandon(&mut self, bound: f64) {
        self.shared.record_abandoned(bound);
    }
}

impl Drop for WorkerGate<'_> {
    fn drop(&mut self) {
        if self.pending > 0 {
            self.shared
                .nodes
                .fetch_add(self.pending, std::sync::atomic::Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_gate_never_exhausts() {
        let mut g = BudgetGate::new(&SolveBudget::UNLIMITED);
        for _ in 0..100_000 {
            assert!(g.tick());
        }
        assert!(!g.exhausted());
        assert_eq!(g.nodes(), 100_000);
        assert_eq!(g.min_abandoned(), f64::INFINITY);
    }

    #[test]
    fn node_limit_is_exact_and_sticky() {
        let mut g = BudgetGate::new(&SolveBudget::nodes(5));
        for _ in 0..5 {
            assert!(g.tick());
        }
        assert!(!g.tick());
        assert!(!g.tick(), "exhaustion is sticky");
        assert!(g.exhausted());
        assert_eq!(g.nodes(), 5);
        g.abandon(3.0);
        g.abandon(7.0);
        assert_eq!(g.min_abandoned(), 3.0);
    }

    #[test]
    fn zero_wall_budget_exhausts_on_first_tick() {
        let mut g = BudgetGate::new(&SolveBudget::wall(Duration::ZERO));
        assert!(!g.tick());
        assert!(g.exhausted());
    }

    #[test]
    fn shared_gate_batches_and_stops() {
        let shared = SharedGate::new(&SolveBudget::nodes(BATCH));
        let mut w = shared.worker();
        let mut ticks = 0u64;
        while w.tick() {
            ticks += 1;
            assert!(ticks <= 2 * BATCH, "stop flag must bite within a batch");
        }
        w.abandon(42.0);
        drop(w);
        // A second worker sees the stop immediately.
        assert!(!shared.worker().tick());
        assert!(shared.exhausted());
        assert_eq!(shared.min_abandoned(), 42.0);
        assert!(shared.nodes() >= BATCH);
    }

    #[test]
    fn budgeted_accessors() {
        let e: Budgeted<i32> = Budgeted::Exact(7);
        assert!(!e.is_degraded());
        assert_eq!(*e.value(), 7);
        assert_eq!(e.into_value(), 7);
        let d: Budgeted<i32> = Budgeted::Degraded(Degradation {
            value: 9,
            lower_bound: 4.0,
            bound_gap: 5.0,
            nodes: 17,
            elapsed: Duration::from_millis(3),
        });
        assert!(d.is_degraded());
        assert_eq!(d.degradation().unwrap().nodes, 17);
        assert_eq!(d.into_value(), 9);
    }

    #[test]
    fn budget_constructors() {
        assert!(SolveBudget::UNLIMITED.is_unlimited());
        assert!(!SolveBudget::nodes(1).is_unlimited());
        assert!(!SolveBudget::wall(Duration::from_secs(1)).is_unlimited());
        assert_eq!(SolveBudget::default(), SolveBudget::UNLIMITED);
    }
}
