//! Discrete speed levels and switching overhead (paper §6).
//!
//! Real DVFS hardware offers a finite speed menu (the paper's intro
//! quotes the AMD Athlon 64's three frequencies) and stalls briefly on
//! each voltage change. §6 proposes studying both effects; this module
//! makes them measurable:
//!
//! * [`emulate`] rounds a continuous-optimal schedule onto a
//!   [`DiscreteSpeeds`] ladder by the classic two-adjacent-level
//!   construction: each job's slice is replaced by a slow piece then a
//!   fast piece at the bracketing levels, preserving both its time
//!   window and its work, so the schedule stays feasible and *only the
//!   energy* changes (upward, by convexity). Targets outside the ladder
//!   fall back to the nearest level and may stretch the timeline —
//!   reported, not hidden.
//! * [`DiscreteReport`] carries the energy overhead and the switch count,
//!   feeding the §6 overhead model
//!   ([`pas_sim::metrics::makespan_with_switch_overhead`]).

use crate::error::CoreError;
use pas_power::{DiscreteSpeeds, PowerModel};
use pas_sim::{metrics, Schedule, Slice};

/// Result of rounding a schedule onto a discrete speed ladder.
#[derive(Debug, Clone)]
pub struct DiscreteReport {
    /// The emulated schedule (at most two slices per original slice).
    pub schedule: Schedule,
    /// Energy of the emulated schedule.
    pub energy: f64,
    /// Energy of the continuous original (same model).
    pub continuous_energy: f64,
    /// `energy / continuous_energy` (≥ 1 when `timing_exact`).
    pub overhead: f64,
    /// Whether every target speed was inside the ladder (timing
    /// preserved exactly).
    pub timing_exact: bool,
    /// Speed switches in the emulated schedule.
    pub switches: usize,
    /// Makespan of the emulated schedule.
    pub makespan: f64,
}

/// Emulate `schedule` on the `ladder`, per-slice two-level splitting.
///
/// Slices whose target lies inside the ladder keep their exact window;
/// targets outside run at the nearest level, and later slices are pushed
/// right as needed (never left, so release times stay respected).
///
/// # Errors
/// [`CoreError::VerificationFailed`] if the input schedule has unsorted
/// lanes (cannot happen for `Schedule`-built values).
pub fn emulate<M: PowerModel>(
    schedule: &Schedule,
    ladder: &DiscreteSpeeds<M>,
) -> Result<DiscreteReport, CoreError> {
    let model = ladder.model();
    let mut out = Schedule::with_machines(schedule.machine_count());
    let mut timing_exact = true;

    for (m, lane) in schedule.machines().iter().enumerate() {
        let mut cursor = 0.0f64;
        for s in lane {
            let start = s.start.max(cursor);
            if start > s.start + 1e-9 {
                timing_exact = false;
            }
            let split = ladder.two_level_split(s.work(), s.speed);
            if !split.exact {
                timing_exact = false;
            }
            let mut t = start;
            // Slow piece first, then fast: within a job the order is
            // irrelevant for feasibility (the window is preserved), but
            // slow-first keeps intermediate completions latest, which is
            // the safe direction for any downstream consumer.
            if split.lo_time > 1e-15 {
                out.push(m, Slice::new(s.job, t, t + split.lo_time, split.lo_speed));
                t += split.lo_time;
            }
            if split.hi_time > 1e-15 {
                out.push(m, Slice::new(s.job, t, t + split.hi_time, split.hi_speed));
                t += split.hi_time;
            }
            cursor = t;
        }
    }
    out.coalesce(1e-12);

    let energy = metrics::energy(&out, model);
    let continuous_energy = metrics::energy(schedule, model);
    Ok(DiscreteReport {
        overhead: energy / continuous_energy,
        energy,
        continuous_energy,
        timing_exact,
        switches: metrics::switch_count(&out, 1e-9),
        makespan: metrics::makespan(&out),
        schedule: out,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::makespan::incmerge;
    use pas_power::PolyPower;
    use pas_workload::Instance;

    fn paper_instance() -> Instance {
        Instance::from_pairs(&[(0.0, 5.0), (5.0, 2.0), (6.0, 1.0)]).unwrap()
    }

    fn continuous_schedule(budget: f64) -> (Instance, Schedule) {
        let inst = paper_instance();
        let blocks = incmerge::laptop(&inst, &PolyPower::CUBE, budget).unwrap();
        let sched = blocks.to_schedule(&inst);
        (inst, sched)
    }

    #[test]
    fn emulation_preserves_feasibility_and_work() {
        let (inst, sched) = continuous_schedule(18.0);
        // Ladder covering the speed range [1, √8].
        let ladder = DiscreteSpeeds::uniform(PolyPower::CUBE, 8, 4.0);
        let report = emulate(&sched, &ladder).unwrap();
        assert!(report.timing_exact);
        report.schedule.validate(&inst, 1e-6).unwrap();
        // Makespan unchanged when timing is exact.
        assert!((report.makespan - metrics::makespan(&sched)).abs() < 1e-9);
    }

    #[test]
    fn energy_overhead_at_least_one_and_shrinks_with_levels() {
        let (_, sched) = continuous_schedule(18.0);
        let mut prev = f64::INFINITY;
        for k in [2usize, 4, 8, 16, 64, 256] {
            let ladder = DiscreteSpeeds::uniform(PolyPower::CUBE, k, 4.0);
            let report = emulate(&sched, &ladder).unwrap();
            assert!(
                report.overhead >= 1.0 - 1e-12,
                "k={k}: overhead {} < 1",
                report.overhead
            );
            assert!(
                report.overhead <= prev + 1e-9,
                "k={k}: overhead {} grew from {prev}",
                report.overhead
            );
            prev = report.overhead;
        }
        // Fine ladders converge to the continuous energy.
        assert!(prev < 1.001, "256 levels still {prev} overhead");
    }

    #[test]
    fn exact_level_hit_has_no_overhead() {
        // Budget 17 gives speeds 1, 2, 2 on the paper instance — all on
        // an integer ladder.
        let (_, sched) = continuous_schedule(17.0);
        let ladder = DiscreteSpeeds::new(PolyPower::CUBE, vec![1.0, 2.0, 3.0]);
        let report = emulate(&sched, &ladder).unwrap();
        assert!((report.overhead - 1.0).abs() < 1e-9, "{}", report.overhead);
        assert!(report.timing_exact);
    }

    #[test]
    fn ladder_too_slow_stretches_makespan() {
        // Max level 1.5 but the continuous optimum needs speed 2 and √8.
        let (inst, sched) = continuous_schedule(18.0);
        let ladder = DiscreteSpeeds::new(PolyPower::CUBE, vec![0.5, 1.0, 1.5]);
        let report = emulate(&sched, &ladder).unwrap();
        assert!(!report.timing_exact);
        assert!(report.makespan > metrics::makespan(&sched) + 0.1);
        // Work still completes: validation passes (releases respected
        // because slices only moved right).
        report.schedule.validate(&inst, 1e-6).unwrap();
    }

    #[test]
    fn athlon_ladder_on_athlon_scale_instance() {
        // Speeds within [0.8, 2.0] GHz: scale the paper instance budget
        // so the optimum fits the Athlon ladder.
        let inst = paper_instance();
        let blocks = incmerge::laptop(&inst, &PolyPower::CUBE, 14.0).unwrap();
        let speeds: Vec<f64> = blocks.blocks().iter().map(|b| b.speed).collect();
        assert!(
            speeds.iter().all(|&s| (0.8..=2.0).contains(&s)),
            "{speeds:?}"
        );
        let ladder =
            DiscreteSpeeds::new(PolyPower::CUBE, pas_power::discrete::ATHLON64_GHZ.to_vec());
        let report = emulate(&blocks.to_schedule(&inst), &ladder).unwrap();
        assert!(report.timing_exact);
        report.schedule.validate(&inst, 1e-6).unwrap();
        assert!(report.overhead >= 1.0);
    }

    #[test]
    fn switch_overhead_model_composes() {
        let (_, sched) = continuous_schedule(18.0);
        let ladder = DiscreteSpeeds::uniform(PolyPower::CUBE, 4, 4.0);
        let report = emulate(&sched, &ladder).unwrap();
        // Two-level emulation at most doubles slices: switches bounded.
        assert!(report.switches <= 2 * sched.machine(0).len());
        let inflated = metrics::makespan_with_switch_overhead(&report.schedule, 0.05, 1e-9);
        assert!(inflated >= report.makespan);
        assert!((inflated - report.makespan - 0.05 * report.switches as f64).abs() < 1e-9);
    }
}
