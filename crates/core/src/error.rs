//! Unified error type for the scheduling algorithms.

use pas_numeric::roots::RootError;
use pas_power::PowerError;
use pas_workload::InstanceError;

/// Errors surfaced by `pas-core` solvers.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// The energy budget is non-positive or otherwise unusable.
    InvalidBudget {
        /// The offending budget.
        budget: f64,
    },
    /// A power-law exponent outside `α > 1` (the `P = σ^α` algorithms
    /// need strict convexity; at `α ≤ 1` their closed forms divide by
    /// `α − 1` or invert monotonicity).
    InvalidAlpha {
        /// The offending exponent.
        alpha: f64,
    },
    /// A requested schedule-quality target cannot be met (e.g. a makespan
    /// at or below the last release time, which no finite speed achieves).
    UnreachableTarget {
        /// Description of the violated bound.
        reason: String,
    },
    /// The algorithm requires equal-work jobs (paper §4, §5) but the
    /// instance has unequal works.
    NotEqualWork,
    /// The algorithm requires all jobs released immediately (Theorem 11
    /// special case) but the instance has positive releases.
    NotImmediateRelease,
    /// An iterative solver failed to converge to tolerance.
    NotConverged {
        /// Which solver.
        solver: &'static str,
        /// Residual at give-up time.
        residual: f64,
    },
    /// A produced solution failed its own verification (KKT residuals,
    /// schedule validation) — always a bug, surfaced loudly.
    VerificationFailed {
        /// What failed.
        reason: String,
    },
    /// Underlying power-model error.
    Power(PowerError),
    /// Underlying numeric error.
    Numeric(RootError),
    /// Underlying instance-construction error.
    Instance(InstanceError),
    /// Underlying deadline-instance validation error.
    Deadline(crate::deadline::DeadlineError),
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::InvalidBudget { budget } => {
                write!(f, "invalid energy budget {budget} (must be positive)")
            }
            CoreError::InvalidAlpha { alpha } => {
                write!(f, "invalid power-law exponent {alpha} (must be > 1)")
            }
            CoreError::UnreachableTarget { reason } => {
                write!(f, "unreachable target: {reason}")
            }
            CoreError::NotEqualWork => {
                write!(f, "algorithm requires equal-work jobs (paper sections 4-5)")
            }
            CoreError::NotImmediateRelease => {
                write!(f, "algorithm requires all releases at time 0")
            }
            CoreError::NotConverged { solver, residual } => {
                write!(f, "{solver} did not converge (residual {residual})")
            }
            CoreError::VerificationFailed { reason } => {
                write!(f, "solution verification failed: {reason}")
            }
            CoreError::Power(e) => write!(f, "power model: {e}"),
            CoreError::Numeric(e) => write!(f, "numeric: {e}"),
            CoreError::Instance(e) => write!(f, "instance: {e}"),
            CoreError::Deadline(e) => write!(f, "deadline instance: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Power(e) => Some(e),
            CoreError::Numeric(e) => Some(e),
            CoreError::Instance(e) => Some(e),
            CoreError::Deadline(e) => Some(e),
            _ => None,
        }
    }
}

/// Solver errors compose with `?` into the simulation layer: the
/// `SimError` wraps the `CoreError` as its message *and* keeps it as the
/// [`source`](std::error::Error::source), so fault-path code crossing the
/// `pas-core`/`pas-sim` boundary never flattens the chain. (The impl
/// lives here rather than in `pas-sim` because `pas-sim` is upstream of
/// this crate.)
impl From<CoreError> for pas_sim::SimError {
    fn from(e: CoreError) -> Self {
        pas_sim::SimError::solver(e)
    }
}

impl From<PowerError> for CoreError {
    fn from(e: PowerError) -> Self {
        CoreError::Power(e)
    }
}

impl From<RootError> for CoreError {
    fn from(e: RootError) -> Self {
        CoreError::Numeric(e)
    }
}

impl From<InstanceError> for CoreError {
    fn from(e: InstanceError) -> Self {
        CoreError::Instance(e)
    }
}

impl From<crate::deadline::DeadlineError> for CoreError {
    fn from(e: crate::deadline::DeadlineError) -> Self {
        CoreError::Deadline(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let msgs = [
            CoreError::InvalidBudget { budget: -1.0 }.to_string(),
            CoreError::NotEqualWork.to_string(),
            CoreError::NotConverged {
                solver: "flow",
                residual: 0.5,
            }
            .to_string(),
        ];
        assert!(msgs[0].contains("-1"));
        assert!(msgs[1].contains("equal-work"));
        assert!(msgs[2].contains("flow"));
    }

    #[test]
    fn conversions() {
        let p: CoreError = PowerError::Unreachable {
            energy_per_work: 1.0,
        }
        .into();
        assert!(matches!(p, CoreError::Power(_)));
        let n: CoreError = RootError::InvalidBracket { lo: 1.0, hi: 0.0 }.into();
        assert!(matches!(n, CoreError::Numeric(_)));
        let i: CoreError = InstanceError::Empty.into();
        assert!(matches!(i, CoreError::Instance(_)));
    }
}
