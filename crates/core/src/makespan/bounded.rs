//! Makespan scheduling with minimum/maximum speeds (paper §6).
//!
//! §6 suggests "imposing minimum and/or maximum speeds is one way to
//! partially incorporate [real hardware] without going all the way to
//! the discrete case". The structure of the bounded optimum follows from
//! the unbounded one by clamping:
//!
//! * a block whose exact-fit speed exceeds `σ_max` is *infeasible* — its
//!   work provably cannot fit its window at any legal speed;
//! * a block whose optimal speed falls below `σ_min` runs at `σ_min`
//!   with idle time after (and, if it was a merged block, possibly
//!   between) its jobs. Each such job then costs exactly `w·g(σ_min)`,
//!   the per-job minimum under the constraint, so the clamped schedule
//!   is optimal;
//! * in-range blocks are untouched (their windows are independent of
//!   the clamped blocks: clamping only creates idle time, never delays).
//!
//! Unlike the unbounded optimum, bounded schedules may contain **idle
//! time** before the last job — Lemma 4 of the paper genuinely fails
//! once a minimum speed exists, which is why these functions return a
//! [`Schedule`] rather than a [`BlockSchedule`](crate::makespan::blocks::BlockSchedule).

use crate::error::CoreError;
use crate::makespan::incmerge;
use pas_numeric::compare::is_positive_finite;
use pas_numeric::roots::invert_monotone;
use pas_power::{BoundedPower, PowerModel};
use pas_sim::{metrics, Schedule, Slice};
use pas_workload::Instance;

/// Result of a bounded-speed solve.
#[derive(Debug, Clone)]
pub struct BoundedSolution {
    /// The schedule (may contain idle gaps — see module docs).
    pub schedule: Schedule,
    /// Its makespan.
    pub makespan: f64,
    /// Its energy.
    pub energy: f64,
    /// Whether any block was clamped up to the minimum speed.
    pub clamped_to_min: bool,
}

/// Server problem with speed bounds: minimum energy to finish all jobs
/// by `deadline`, with every running speed in
/// `[bounded.min_speed(), bounded.max_speed()]`.
///
/// # Errors
/// [`CoreError::UnreachableTarget`] when some block needs more than the
/// maximum speed (the deadline is genuinely impossible), or when the
/// deadline is not after the last release.
pub fn server_bounded<M: PowerModel>(
    instance: &Instance,
    bounded: &BoundedPower<M>,
    deadline: f64,
) -> Result<BoundedSolution, CoreError> {
    let unbounded = incmerge::server(instance, bounded.inner(), deadline)?;
    let (lo, hi) = (bounded.min_speed(), bounded.max_speed());

    let mut schedule = Schedule::single();
    let mut clamped_to_min = false;
    for block in unbounded.blocks() {
        if block.speed > hi * (1.0 + 1e-12) {
            return Err(CoreError::UnreachableTarget {
                reason: format!(
                    "jobs {}..={} need speed {} > max {hi} to meet {deadline}",
                    block.first, block.last, block.speed
                ),
            });
        }
        let speed = if block.speed < lo {
            clamped_to_min = true;
            lo
        } else {
            block.speed
        };
        // Run the block's jobs at `speed`, as early as releases allow
        // (idle appears when the clamped speed finishes jobs before the
        // next release).
        let mut t = block.start;
        for i in block.first..=block.last {
            let start = t.max(instance.release(i));
            let end = start + instance.work(i) / speed;
            schedule.push(0, Slice::new(instance.job(i).id, start, end, speed));
            t = end;
        }
    }
    schedule.coalesce(1e-12);
    let makespan = metrics::makespan(&schedule);
    let energy = metrics::energy(&schedule, bounded.inner());
    Ok(BoundedSolution {
        makespan,
        energy,
        clamped_to_min,
        schedule,
    })
}

/// Laptop problem with speed bounds: best makespan under `budget`.
///
/// The reachable energy range is
/// `[W·g(σ_min), energy of the all-max-speed schedule]`; budgets above
/// the top simply leave energy unused (the all-max schedule is already
/// the fastest legal one), budgets below the bottom are infeasible.
///
/// # Errors
/// [`CoreError::InvalidBudget`] for non-positive budgets;
/// [`CoreError::UnreachableTarget`] when even running everything at the
/// minimum speed exceeds the budget.
pub fn laptop_bounded<M: PowerModel>(
    instance: &Instance,
    bounded: &BoundedPower<M>,
    budget: f64,
) -> Result<BoundedSolution, CoreError> {
    if !is_positive_finite(budget) {
        return Err(CoreError::InvalidBudget { budget });
    }
    let model = bounded.inner();
    let floor_energy = model.energy(instance.total_work(), bounded.min_speed());
    if budget < floor_energy * (1.0 - 1e-12) {
        return Err(CoreError::UnreachableTarget {
            reason: format!("budget {budget} below the minimum-speed floor {floor_energy}"),
        });
    }

    // Fastest legal schedule: everything at max speed, asap.
    let fastest = fastest_legal(instance, bounded);
    let fastest_energy = metrics::energy(&fastest, model);
    if budget >= fastest_energy {
        let makespan = metrics::makespan(&fastest);
        return Ok(BoundedSolution {
            makespan,
            energy: fastest_energy,
            clamped_to_min: false,
            schedule: fastest,
        });
    }

    // Otherwise invert energy(T), decreasing in T, over
    // T ∈ (fastest makespan, ∞).
    let t_min = metrics::makespan(&fastest);
    let energy_at = |x: f64| -> f64 {
        server_bounded(instance, bounded, t_min + x)
            .map(|s| s.energy)
            .unwrap_or(f64::INFINITY)
    };
    let span = (instance.last_release() - instance.first_release()).max(1.0);
    let x = invert_monotone(|x| -energy_at(x), -budget, span, 0.0, budget * 1e-12)?;
    server_bounded(instance, bounded, t_min + x)
}

/// Everything at `σ_max`, started as early as releases allow.
fn fastest_legal<M: PowerModel>(instance: &Instance, bounded: &BoundedPower<M>) -> Schedule {
    let hi = bounded.max_speed();
    let mut schedule = Schedule::single();
    let mut t = 0.0f64;
    for i in 0..instance.len() {
        let start = t.max(instance.release(i));
        let end = start + instance.work(i) / hi;
        schedule.push(0, Slice::new(instance.job(i).id, start, end, hi));
        t = end;
    }
    schedule.coalesce(1e-12);
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;
    use pas_power::PolyPower;

    fn paper_instance() -> Instance {
        Instance::from_pairs(&[(0.0, 5.0), (5.0, 2.0), (6.0, 1.0)]).unwrap()
    }

    #[test]
    fn wide_bounds_reduce_to_unbounded() {
        let inst = paper_instance();
        let bounded = BoundedPower::new(PolyPower::CUBE, 1e-6, 1e6);
        let sol = server_bounded(&inst, &bounded, 6.5).unwrap();
        assert!((sol.energy - 17.0).abs() < 1e-9, "{}", sol.energy);
        assert!(!sol.clamped_to_min);
        sol.schedule.validate(&inst, 1e-7).unwrap();
    }

    #[test]
    fn max_speed_makes_tight_deadlines_infeasible() {
        let inst = paper_instance();
        // Deadline 6.5 needs speed 2 on the last blocks; cap at 1.5.
        let bounded = BoundedPower::new(PolyPower::CUBE, 0.1, 1.5);
        assert!(matches!(
            server_bounded(&inst, &bounded, 6.5),
            Err(CoreError::UnreachableTarget { .. })
        ));
        // A lazy deadline is fine.
        let sol = server_bounded(&inst, &bounded, 20.0).unwrap();
        sol.schedule.validate(&inst, 1e-7).unwrap();
    }

    #[test]
    fn min_speed_forces_idle_and_extra_energy() {
        let inst = paper_instance();
        let unbounded_model = PolyPower::CUBE;
        // Deadline 20: unbounded speeds would be well below 1.
        let unbounded = incmerge::server(&inst, &unbounded_model, 20.0).unwrap();
        assert!(unbounded.blocks().iter().all(|b| b.speed < 1.0));
        let bounded = BoundedPower::new(unbounded_model, 1.0, 10.0);
        let sol = server_bounded(&inst, &bounded, 20.0).unwrap();
        assert!(sol.clamped_to_min);
        // Every slice at the min speed.
        for s in sol.schedule.machine(0) {
            assert!((s.speed - 1.0).abs() < 1e-12);
        }
        // Energy is the per-job floor — more than the unbounded optimum.
        assert!((sol.energy - 8.0).abs() < 1e-9, "{}", sol.energy); // W·g(1) = 8
        assert!(sol.energy > unbounded.energy(&unbounded_model));
        // Finishes before the deadline (idle at the end is implicit).
        assert!(sol.makespan < 20.0);
        sol.schedule.validate(&inst, 1e-7).unwrap();
    }

    #[test]
    fn laptop_bounded_budget_regimes() {
        let inst = paper_instance();
        let bounded = BoundedPower::new(PolyPower::CUBE, 0.5, 2.0);
        // Floor: W·g(0.5) = 8·0.25 = 2. Below -> infeasible.
        assert!(matches!(
            laptop_bounded(&inst, &bounded, 1.0),
            Err(CoreError::UnreachableTarget { .. })
        ));
        // Ceiling: everything at speed 2 = the fastest legal schedule.
        let fast = laptop_bounded(&inst, &bounded, 1000.0).unwrap();
        for s in fast.schedule.machine(0) {
            assert!((s.speed - 2.0).abs() < 1e-12);
        }
        // Mid-range: spends the budget and lands between the extremes.
        let mid = laptop_bounded(&inst, &bounded, 10.0).unwrap();
        assert!((mid.energy - 10.0).abs() < 1e-6 * 10.0, "{}", mid.energy);
        assert!(mid.makespan > fast.makespan);
        mid.schedule.validate(&inst, 1e-6).unwrap();
    }

    #[test]
    fn bounded_laptop_matches_unbounded_when_inactive() {
        let inst = paper_instance();
        let bounded = BoundedPower::new(PolyPower::CUBE, 0.1, 100.0);
        let budget = 12.0;
        let sol = laptop_bounded(&inst, &bounded, budget).unwrap();
        let unbounded = incmerge::laptop(&inst, &PolyPower::CUBE, budget).unwrap();
        assert!(
            (sol.makespan - unbounded.makespan()).abs() < 1e-6,
            "{} vs {}",
            sol.makespan,
            unbounded.makespan()
        );
    }

    #[test]
    fn clamped_block_respects_internal_releases() {
        // A merged block clamped upward must not start later jobs before
        // their releases: jobs at 0 and 0.5 merged under a lazy deadline.
        let inst = Instance::from_pairs(&[(0.0, 0.1), (0.5, 0.1)]).unwrap();
        let bounded = BoundedPower::new(PolyPower::CUBE, 2.0, 10.0);
        let sol = server_bounded(&inst, &bounded, 100.0).unwrap();
        sol.schedule.validate(&inst, 1e-9).unwrap();
        // Job 1 starts at its release, not at job 0's (early) finish.
        let starts = sol.schedule.start_times();
        assert!(starts[&1] >= 0.5 - 1e-12);
    }
}
