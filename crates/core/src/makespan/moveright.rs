//! Quadratic server-problem baseline in the style of
//! Uysal-Biyikoglu–Prabhakar–El Gamal (paper §2).
//!
//! Their wireless-transmission algorithm solves the server version of
//! makespan (all packets sent by a deadline with least energy) in
//! quadratic time by repeatedly evening out transmission rates. The
//! equivalent structure here: start with every job as its own exact-fit
//! block and repeatedly *pool adjacent violators* — merge any adjacent
//! pair where the earlier block is faster — rescanning from the start
//! after each merge. The fixpoint is the unique non-decreasing-speed
//! partition, the same schedule `IncMerge`'s sentinel variant finds in
//! linear time; the naive rescan is what makes this baseline `O(n²)`.
//!
//! The paper's claim being reproduced (experiment E5): *"our algorithm
//! runs faster and also finds all non-dominated schedules rather than
//! just solving the server problem."*

use crate::error::CoreError;
use crate::makespan::blocks::{Block, BlockSchedule};
use pas_power::PowerModel;
use pas_workload::Instance;

/// Solve the server problem (min energy, makespan ≤ `deadline`) by
/// quadratic pool-adjacent-violators.
///
/// # Errors
/// [`CoreError::UnreachableTarget`] when `deadline` is not strictly after
/// the last release. (`model` is unused beyond the trait bound — the
/// partition is model-independent; it is kept in the signature so the
/// baseline has the same shape as its replacements.)
pub fn server_moveright<M: PowerModel>(
    instance: &Instance,
    _model: &M,
    deadline: f64,
) -> Result<BlockSchedule, CoreError> {
    if !pas_numeric::compare::strictly_exceeds(deadline, instance.last_release()) {
        return Err(CoreError::UnreachableTarget {
            reason: format!(
                "deadline {deadline} is not after the last release {}",
                instance.last_release()
            ),
        });
    }
    let n = instance.len();
    // Segment list: (first, last, work, start, window_end).
    #[derive(Clone, Copy)]
    struct Seg {
        first: usize,
        last: usize,
        work: f64,
        start: f64,
        window_end: f64,
    }
    let speed_of = |s: &Seg| {
        let d = s.window_end - s.start;
        if d <= 0.0 {
            f64::INFINITY
        } else {
            s.work / d
        }
    };
    let mut segs: Vec<Seg> = (0..n)
        .map(|k| Seg {
            first: k,
            last: k,
            work: instance.work(k),
            start: instance.release(k),
            window_end: if k + 1 < n {
                instance.release(k + 1)
            } else {
                deadline
            },
        })
        .collect();

    // Naive PAVA: scan from the left for a violating pair, merge it, and
    // restart. Each merge is O(n) (Vec::remove) and there are at most
    // n-1 merges with an O(n) scan before each: O(n²) total.
    loop {
        let mut merged = false;
        for k in 0..segs.len().saturating_sub(1) {
            if speed_of(&segs[k]) > speed_of(&segs[k + 1]) {
                let right = segs.remove(k + 1);
                let left = &mut segs[k];
                left.last = right.last;
                left.work += right.work;
                left.window_end = right.window_end;
                merged = true;
                break;
            }
        }
        if !merged {
            break;
        }
    }

    let blocks = segs
        .iter()
        .map(|s| Block {
            first: s.first,
            last: s.last,
            work: s.work,
            start: s.start,
            speed: speed_of(s),
        })
        .collect();
    Ok(BlockSchedule::new(blocks))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::makespan::incmerge;
    use pas_power::PolyPower;
    use pas_workload::generators;

    fn paper_instance() -> Instance {
        Instance::from_pairs(&[(0.0, 5.0), (5.0, 2.0), (6.0, 1.0)]).unwrap()
    }

    #[test]
    fn agrees_with_incmerge_server_on_paper_instance() {
        let inst = paper_instance();
        let model = PolyPower::CUBE;
        for &t in &[6.1, 6.5, 7.0, 8.0, 9.0, 20.0] {
            let mr = server_moveright(&inst, &model, t).unwrap();
            let im = incmerge::server(&inst, &model, t).unwrap();
            assert!(
                (mr.energy(&model) - im.energy(&model)).abs() < 1e-9 * im.energy(&model).max(1.0),
                "T={t}"
            );
            assert_eq!(mr.blocks().len(), im.blocks().len(), "T={t}");
            mr.verify_structure(&inst, 1e-9).unwrap();
        }
    }

    #[test]
    fn agrees_on_random_instances() {
        let model = PolyPower::new(2.2);
        for seed in 0..20 {
            let inst = generators::uniform(40, 60.0, (0.3, 2.0), seed);
            let t = inst.last_release() + 5.0;
            let mr = server_moveright(&inst, &model, t).unwrap();
            let im = incmerge::server(&inst, &model, t).unwrap();
            let (a, b) = (mr.energy(&model), im.energy(&model));
            assert!((a - b).abs() < 1e-7 * b.max(1.0), "seed {seed}: {a} vs {b}");
            assert!((mr.makespan() - t).abs() < 1e-9);
        }
    }

    #[test]
    fn handles_simultaneous_releases() {
        let model = PolyPower::CUBE;
        let inst = Instance::from_pairs(&[(0.0, 1.0), (0.0, 1.0), (0.0, 1.0)]).unwrap();
        let sol = server_moveright(&inst, &model, 3.0).unwrap();
        // One block of work 3 over 3 time units at speed 1: energy 3.
        assert_eq!(sol.blocks().len(), 1);
        assert!((sol.energy(&model) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_impossible_deadline() {
        assert!(server_moveright(&paper_instance(), &PolyPower::CUBE, 6.0).is_err());
    }

    #[test]
    fn min_energy_is_monotone_in_deadline() {
        let inst = paper_instance();
        let model = PolyPower::CUBE;
        let mut prev = f64::INFINITY;
        for k in 1..40 {
            let t = 6.0 + 0.25 * k as f64;
            let e = server_moveright(&inst, &model, t).unwrap().energy(&model);
            assert!(e < prev, "T={t}: {e} !< {prev}");
            prev = e;
        }
    }
}
