//! Blocks: the structural unit of optimal makespan schedules.
//!
//! A *block* (paper §3.1) is a maximal substring of jobs, run
//! back-to-back, in which every job except the last finishes after its
//! successor's release. In the optimum each block runs at a single speed
//! (Lemma 5), starts at the release of its first job, and — except for
//! the final block — ends exactly at the release of the job after it
//! (Lemma 4: no idle time).

use crate::error::CoreError;
use pas_numeric::NeumaierSum;
use pas_power::PowerModel;
use pas_sim::{Schedule, Slice};
use pas_workload::Instance;

/// One block of a block-structured schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Block {
    /// Sorted index of the first job in the block.
    pub first: usize,
    /// Sorted index of the last job in the block (inclusive).
    pub last: usize,
    /// Total work of jobs `first..=last`.
    pub work: f64,
    /// Block start time (= release of job `first`).
    pub start: f64,
    /// The single speed the block runs at.
    pub speed: f64,
}

impl Block {
    /// Duration of the block at its speed.
    pub fn duration(&self) -> f64 {
        self.work / self.speed
    }

    /// Completion time of the block.
    pub fn end(&self) -> f64 {
        self.start + self.duration()
    }

    /// Energy the block consumes under `model`.
    pub fn energy<M: PowerModel>(&self, model: &M) -> f64 {
        model.energy(self.work, self.speed)
    }
}

/// A complete block-structured uniprocessor schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockSchedule {
    blocks: Vec<Block>,
}

impl BlockSchedule {
    /// Wrap a block list (assumed contiguous over `0..n` and time-sorted;
    /// debug-asserted).
    pub fn new(blocks: Vec<Block>) -> Self {
        debug_assert!(!blocks.is_empty());
        debug_assert!(blocks[0].first == 0);
        debug_assert!(blocks
            .windows(2)
            .all(|p| p[1].first == p[0].last + 1 && p[1].start >= p[0].start));
        BlockSchedule { blocks }
    }

    /// The blocks, in time order.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Completion time of the final block = the schedule's makespan.
    pub fn makespan(&self) -> f64 {
        self.blocks.last().expect("non-empty").end()
    }

    /// Total energy under `model`, compensated.
    pub fn energy<M: PowerModel>(&self, model: &M) -> f64 {
        let mut acc = NeumaierSum::new();
        for b in &self.blocks {
            acc.add(b.energy(model));
        }
        acc.total()
    }

    /// Per-job speeds (job `i`'s block speed), indexed by sorted position.
    pub fn job_speeds(&self, n: usize) -> Vec<f64> {
        let mut speeds = vec![0.0; n];
        for b in &self.blocks {
            for s in speeds.iter_mut().take(b.last + 1).skip(b.first) {
                *s = b.speed;
            }
        }
        speeds
    }

    /// Materialize into a [`Schedule`] (one slice per job), ready for
    /// validation and metrics.
    pub fn to_schedule(&self, instance: &Instance) -> Schedule {
        let mut slices = Vec::with_capacity(instance.len());
        for b in &self.blocks {
            let mut t = b.start;
            for i in b.first..=b.last {
                let d = instance.work(i) / b.speed;
                slices.push(Slice::new(instance.job(i).id, t, t + d, b.speed));
                t += d;
            }
        }
        Schedule::from_slices(slices)
    }

    /// Check the five structural properties of Lemma 7 (single speed per
    /// job and per block are implied by the representation):
    ///
    /// 1. jobs in release order — by construction;
    /// 2. no idle between first release and completion: each block after
    ///    the first starts exactly where its predecessor ends;
    /// 3. non-decreasing block speeds;
    /// 4. each non-final block ends exactly at the release of the next
    ///    block's first job;
    /// 5. all release times respected inside blocks.
    ///
    /// # Errors
    /// [`CoreError::VerificationFailed`] naming the violated property.
    pub fn verify_structure(&self, instance: &Instance, tol: f64) -> Result<(), CoreError> {
        let fail = |reason: String| Err(CoreError::VerificationFailed { reason });
        for (k, b) in self.blocks.iter().enumerate() {
            if (b.start - instance.release(b.first)).abs() > tol {
                return fail(format!(
                    "block {k} starts at {} but its first job releases at {}",
                    b.start,
                    instance.release(b.first)
                ));
            }
            if k + 1 < self.blocks.len() {
                let next = &self.blocks[k + 1];
                if (b.end() - next.start).abs() > tol {
                    return fail(format!(
                        "idle gap between block {k} (ends {}) and block {} (starts {})",
                        b.end(),
                        k + 1,
                        next.start
                    ));
                }
                if b.speed > next.speed + tol * next.speed.abs().max(1.0) {
                    return fail(format!(
                        "block speeds decrease: {} then {}",
                        b.speed, next.speed
                    ));
                }
            }
            // Releases respected within the block.
            let mut t = b.start;
            for i in b.first..=b.last {
                if t < instance.release(i) - tol {
                    return fail(format!(
                        "job {i} starts at {t} before release {}",
                        instance.release(i)
                    ));
                }
                t += instance.work(i) / b.speed;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pas_power::PolyPower;

    fn paper_instance() -> Instance {
        Instance::from_pairs(&[(0.0, 5.0), (5.0, 2.0), (6.0, 1.0)]).unwrap()
    }

    /// The E=21 configuration of Figure 1: blocks {1},{2},{3} at speeds
    /// 1, 2, √8.
    fn paper_blocks() -> BlockSchedule {
        BlockSchedule::new(vec![
            Block {
                first: 0,
                last: 0,
                work: 5.0,
                start: 0.0,
                speed: 1.0,
            },
            Block {
                first: 1,
                last: 1,
                work: 2.0,
                start: 5.0,
                speed: 2.0,
            },
            Block {
                first: 2,
                last: 2,
                work: 1.0,
                start: 6.0,
                speed: 8f64.sqrt(),
            },
        ])
    }

    #[test]
    fn makespan_and_energy() {
        let bs = paper_blocks();
        assert!((bs.makespan() - (6.0 + 1.0 / 8f64.sqrt())).abs() < 1e-12);
        assert!((bs.energy(&PolyPower::CUBE) - 21.0).abs() < 1e-9);
    }

    #[test]
    fn structure_verifies() {
        let bs = paper_blocks();
        bs.verify_structure(&paper_instance(), 1e-9).unwrap();
    }

    #[test]
    fn to_schedule_validates() {
        let inst = paper_instance();
        let sched = paper_blocks().to_schedule(&inst);
        sched.validate(&inst, 1e-9).unwrap();
        sched.validate_nonpreemptive(&inst, 1e-9).unwrap();
    }

    #[test]
    fn job_speeds_expand_blocks() {
        let bs = paper_blocks();
        let speeds = bs.job_speeds(3);
        assert_eq!(speeds[0], 1.0);
        assert_eq!(speeds[1], 2.0);
        assert!((speeds[2] - 8f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn verify_catches_decreasing_speeds() {
        let bad = BlockSchedule::new(vec![
            Block {
                first: 0,
                last: 0,
                work: 5.0,
                start: 0.0,
                speed: 3.0,
            },
            Block {
                first: 1,
                last: 2,
                work: 3.0,
                start: 5.0,
                speed: 1.0,
            },
        ]);
        // Note: block 0 at speed 3 ends at 5/3 < 5 -> idle gap violation
        // fires first; craft exact-fit instead.
        let inst = Instance::from_pairs(&[(0.0, 15.0), (5.0, 2.0), (6.0, 1.0)]).unwrap();
        let bad2 = BlockSchedule::new(vec![
            Block {
                first: 0,
                last: 0,
                work: 15.0,
                start: 0.0,
                speed: 3.0,
            },
            Block {
                first: 1,
                last: 2,
                work: 3.0,
                start: 5.0,
                speed: 1.0,
            },
        ]);
        assert!(bad2.verify_structure(&inst, 1e-9).is_err());
        let inst5 = Instance::from_pairs(&[(0.0, 5.0), (5.0, 2.0), (6.0, 1.0)]).unwrap();
        assert!(bad.verify_structure(&inst5, 1e-9).is_err());
    }

    #[test]
    fn verify_catches_idle_gap() {
        let inst = paper_instance();
        let gap = BlockSchedule::new(vec![
            Block {
                first: 0,
                last: 0,
                work: 5.0,
                start: 0.0,
                speed: 2.0, // ends at 2.5, gap until 5
            },
            Block {
                first: 1,
                last: 2,
                work: 3.0,
                start: 5.0,
                speed: 3.0,
            },
        ]);
        let err = gap.verify_structure(&inst, 1e-9).unwrap_err();
        assert!(matches!(err, CoreError::VerificationFailed { .. }));
    }

    #[test]
    fn verify_catches_internal_release_violation() {
        // One block containing a job released mid-block, run too fast.
        let inst = paper_instance();
        let bad = BlockSchedule::new(vec![Block {
            first: 0,
            last: 2,
            work: 8.0,
            start: 0.0,
            speed: 4.0, // J2 (released at 5) would start at 1.25
        }]);
        assert!(bad.verify_structure(&inst, 1e-9).is_err());
    }
}
