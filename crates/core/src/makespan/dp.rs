//! The block-partition dynamic program sketched in §3.1 of the paper.
//!
//! "Using the first four properties, an O(n²)-time dynamic programming
//! algorithm can find the best way to divide the jobs into blocks."
//! This module implements that baseline: `O(n²)` states (prefix × block
//! start) with an `O(n)` feasibility scan per candidate block, i.e.
//! `O(n³)` worst case as implemented. It exists (a) as an independent
//! oracle for `IncMerge` in tests, and (b) as the slow comparator in the
//! scaling experiment (E4 in EXPERIMENTS.md).
//!
//! Formulation: every non-final block `(i, j)` is *exact-fit* — it starts
//! at `r_i` and ends at `r_{j+1}` (Lemma 4, no idle) — so its energy is
//! fixed. `prefix_cost[j]` is the least energy scheduling jobs `0..j` as
//! exact-fit blocks with the last one ending at `r_j`. The final block
//! `(i, n-1)` takes whatever budget remains; its speed is capped by the
//! internal release times (a legal schedule may not start a job before
//! its release), which can leave budget unspent for some splits — those
//! splits are simply dominated.

use crate::error::CoreError;
use crate::makespan::blocks::{Block, BlockSchedule};
use pas_numeric::compare::is_positive_finite;
use pas_power::PowerModel;
use pas_workload::Instance;

/// Solve the laptop problem by dynamic programming over block partitions.
///
/// Produces the same schedule value as
/// [`incmerge::laptop`](crate::makespan::incmerge::laptop) (asserted by
/// the cross tests), two asymptotic classes slower.
///
/// # Errors
/// [`CoreError::InvalidBudget`] for non-positive budgets.
pub fn laptop_dp<M: PowerModel>(
    instance: &Instance,
    model: &M,
    budget: f64,
) -> Result<BlockSchedule, CoreError> {
    if !is_positive_finite(budget) {
        return Err(CoreError::InvalidBudget { budget });
    }
    let n = instance.len();

    // prefix_cost[j]: least energy to run jobs 0..j (exclusive) as
    // exact-fit blocks, the last ending exactly at r_j. Only defined when
    // the boundary j starts a block, i.e. we will start a new block at
    // job j. prefix_cost[0] = 0 (empty prefix).
    let mut prefix_cost = vec![f64::INFINITY; n];
    let mut prefix_split = vec![usize::MAX; n]; // block start chosen for boundary j
    prefix_cost[0] = 0.0;

    for j in 1..n {
        // Candidate: last prefix block is (i, j-1), ending at r_j.
        for i in (0..j).rev() {
            if prefix_cost[i].is_infinite() {
                continue;
            }
            let Some(speed) = exact_fit_speed(instance, i, j) else {
                continue; // zero-width window: infinite speed, dominated
            };
            if !block_is_legal(instance, i, j, speed) {
                continue;
            }
            let cost = prefix_cost[i] + model.energy(instance.work_range(i, j), speed);
            if cost < prefix_cost[j] {
                prefix_cost[j] = cost;
                prefix_split[j] = i;
            }
        }
    }

    // Final block (i, n-1): spend the remaining budget, capped by the
    // fastest legal speed for that block.
    let mut best: Option<(f64, usize, f64)> = None; // (makespan, split i, speed)
    for (i, &cost) in prefix_cost.iter().enumerate() {
        if cost.is_infinite() {
            continue;
        }
        let rem = budget - cost;
        if rem <= 0.0 {
            continue;
        }
        let work = instance.work_range(i, n);
        let Ok(mut speed) = model.speed_for_block(work, rem) else {
            continue;
        };
        if let Some(cap) = max_legal_speed(instance, i, n) {
            speed = speed.min(cap);
        }
        let makespan = instance.release(i) + work / speed;
        if best.is_none_or(|(m, _, _)| makespan < m) {
            best = Some((makespan, i, speed));
        }
    }

    let (_, split, speed) = best.ok_or(CoreError::UnreachableTarget {
        reason: "no feasible block partition within budget".to_string(),
    })?;

    // Reconstruct blocks by walking the split chain.
    let mut boundaries = vec![split];
    let mut b = split;
    while b != 0 {
        b = prefix_split[b];
        boundaries.push(b);
    }
    boundaries.reverse(); // block starts in increasing order
    let mut blocks = Vec::with_capacity(boundaries.len());
    for (k, &start_idx) in boundaries.iter().enumerate() {
        let end_idx = boundaries.get(k + 1).copied().unwrap_or(n);
        let blk_speed = if end_idx == n {
            speed
        } else {
            exact_fit_speed(instance, start_idx, end_idx).expect("legal split")
        };
        blocks.push(Block {
            first: start_idx,
            last: end_idx - 1,
            work: instance.work_range(start_idx, end_idx),
            start: instance.release(start_idx),
            speed: blk_speed,
        });
    }
    Ok(BlockSchedule::new(blocks))
}

/// Exact-fit speed of block `i..j` (jobs `i..=j-1`), `None` when the
/// window `[r_i, r_j)` is empty.
fn exact_fit_speed(instance: &Instance, i: usize, j: usize) -> Option<f64> {
    let d = instance.release(j) - instance.release(i);
    if d <= 0.0 {
        None
    } else {
        Some(instance.work_range(i, j) / d)
    }
}

/// A block `i..j` at `speed` is legal when every internal job starts at
/// or after its release.
fn block_is_legal(instance: &Instance, i: usize, j: usize, speed: f64) -> bool {
    let mut t = instance.release(i);
    for l in i..j {
        if t < instance.release(l) - 1e-9 {
            return false;
        }
        t += instance.work(l) / speed;
    }
    true
}

/// Fastest legal speed of block `i..j` (release constraints only),
/// `None` when unconstrained (all inner releases at the block start).
fn max_legal_speed(instance: &Instance, i: usize, j: usize) -> Option<f64> {
    let start = instance.release(i);
    let mut cap: Option<f64> = None;
    for l in (i + 1)..j {
        let lead = instance.release(l) - start;
        if lead > 0.0 {
            // Work before job l must take at least `lead` time.
            let c = instance.work_range(i, l) / lead;
            cap = Some(cap.map_or(c, |v: f64| v.min(c)));
        }
    }
    cap
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::makespan::incmerge;
    use pas_power::PolyPower;
    use pas_workload::generators;

    fn paper_instance() -> Instance {
        Instance::from_pairs(&[(0.0, 5.0), (5.0, 2.0), (6.0, 1.0)]).unwrap()
    }

    #[test]
    fn matches_closed_form_on_paper_instance() {
        let inst = paper_instance();
        let model = PolyPower::CUBE;
        for &e in &[6.0, 8.0, 12.0, 17.0, 21.0] {
            let dp = laptop_dp(&inst, &model, e).unwrap();
            let im = incmerge::laptop(&inst, &model, e).unwrap();
            assert!(
                (dp.makespan() - im.makespan()).abs() < 1e-9,
                "E={e}: dp {} vs incmerge {}",
                dp.makespan(),
                im.makespan()
            );
            dp.to_schedule(&inst).validate(&inst, 1e-7).unwrap();
        }
    }

    #[test]
    fn agrees_with_incmerge_on_random_instances() {
        let model = PolyPower::new(2.0);
        for seed in 0..25 {
            let inst = generators::uniform(12, 20.0, (0.2, 4.0), seed);
            for &e in &[1.0, 5.0, 20.0, 80.0] {
                let dp = laptop_dp(&inst, &model, e).unwrap().makespan();
                let im = incmerge::laptop(&inst, &model, e).unwrap().makespan();
                assert!(
                    (dp - im).abs() < 1e-6 * dp.max(1.0),
                    "seed {seed} E={e}: dp {dp} vs incmerge {im}"
                );
            }
        }
    }

    #[test]
    fn agrees_on_simultaneous_releases() {
        let model = PolyPower::CUBE;
        let inst = Instance::from_pairs(&[(0.0, 1.0), (0.0, 2.0), (3.0, 1.0)]).unwrap();
        for &e in &[0.5, 2.0, 10.0, 50.0] {
            let dp = laptop_dp(&inst, &model, e).unwrap().makespan();
            let im = incmerge::laptop(&inst, &model, e).unwrap().makespan();
            assert!((dp - im).abs() < 1e-7 * dp.max(1.0), "E={e}");
        }
    }

    #[test]
    fn rejects_bad_budget() {
        assert!(laptop_dp(&paper_instance(), &PolyPower::CUBE, 0.0).is_err());
        assert!(laptop_dp(&paper_instance(), &PolyPower::CUBE, -5.0).is_err());
    }

    #[test]
    fn single_job_dp() {
        let inst = Instance::from_pairs(&[(1.0, 2.0)]).unwrap();
        let model = PolyPower::CUBE;
        let dp = laptop_dp(&inst, &model, 8.0).unwrap();
        // w·σ² = 8 -> σ = 2 -> M = 1 + 1 = 2.
        assert!((dp.makespan() - 2.0).abs() < 1e-12);
    }
}
