//! All non-dominated schedules: the energy ↔ makespan frontier (§3.2).
//!
//! A slight modification of `IncMerge` enumerates every optimal
//! *configuration* (way of breaking jobs into blocks): start from an
//! effectively infinite budget — where the final job is its own block —
//! and lower the budget. Only the final block's speed depends on the
//! budget; when it has slowed to its predecessor's speed the two merge,
//! and that merge energy is a *breakpoint*. Between breakpoints the curve
//! has the closed form
//!
//! ```text
//! M(E) = s_L + W_L / g⁻¹((E − Σ)/W_L)
//! ```
//!
//! where `s_L, W_L` are the final block's start and work, `Σ` the energy
//! of the earlier (budget-independent) blocks, and `g(σ) = P(σ)/σ`. The
//! curve is continuous and C¹ — the first derivative
//! `dM/dE = −1/(P'(σ)σ − P(σ))` matches across breakpoints because the
//! merging blocks run at equal speeds there — while the second
//! derivative `d²M/dE² = P''(σ)·σ³/(W_L·(P'(σ)σ − P(σ))³)` jumps
//! (Figures 1–3 of the paper).
//!
//! Because earlier blocks never re-merge among themselves, configuration
//! `k`'s fixed blocks are a *prefix* of configuration 0's, so the whole
//! frontier is stored in `O(n)` space.

use crate::error::CoreError;
use crate::makespan::blocks::{Block, BlockSchedule};
use pas_power::PowerModel;
use pas_workload::Instance;

/// One configuration of the frontier: valid for budgets in
/// `[energy_min, energy_max)`.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontierSegment {
    /// Budget at which the final block merges with its predecessor
    /// (0 for the single-block configuration).
    pub energy_min: f64,
    /// Upper end of the validity range (`inf` for the fastest
    /// configuration).
    pub energy_max: f64,
    /// Number of budget-independent blocks preceding the final block.
    pub prefix_blocks: usize,
    /// Total energy of those prefix blocks.
    pub prefix_energy: f64,
    /// Start time of the final block.
    pub last_start: f64,
    /// Work of the final block.
    pub last_work: f64,
    /// Makespan at `energy_min` (the slow end of this configuration);
    /// `inf` for the single-block configuration's limit.
    pub makespan_at_min: f64,
}

/// The complete set of non-dominated schedules of one instance under one
/// power model.
///
/// Build once with [`Frontier::build`]; query makespan/energy/derivatives
/// at any budget in `O(log n)`.
#[derive(Debug, Clone)]
pub struct Frontier {
    /// Blocks of the fastest configuration; the final entry's speed field
    /// is meaningless (budget-driven) and stored as `NAN`.
    base_blocks: Vec<Block>,
    /// Segments ordered from highest energy (index 0) to lowest.
    segments: Vec<FrontierSegment>,
}

impl Frontier {
    /// Enumerate all configurations of `instance` under `model`.
    ///
    /// `O(n)` time and space after the instance's release sort.
    pub fn build<M: PowerModel>(instance: &Instance, model: &M) -> Frontier {
        let n = instance.len();
        // Phase 1 of IncMerge: exact-fit blocks for jobs 0..n-1.
        #[derive(Clone, Copy)]
        struct Seg {
            first: usize,
            last: usize,
            work: f64,
            start: f64,
            window_end: f64,
        }
        let speed_of = |s: &Seg| {
            let d = s.window_end - s.start;
            if d <= 0.0 {
                f64::INFINITY
            } else {
                s.work / d
            }
        };
        let mut stack: Vec<Seg> = Vec::with_capacity(n);
        for k in 0..n.saturating_sub(1) {
            stack.push(Seg {
                first: k,
                last: k,
                work: instance.work(k),
                start: instance.release(k),
                window_end: instance.release(k + 1),
            });
            while stack.len() >= 2 {
                let top = stack[stack.len() - 1];
                let prev = stack[stack.len() - 2];
                if speed_of(&top) < speed_of(&prev) {
                    stack.pop();
                    stack.pop();
                    stack.push(Seg {
                        first: prev.first,
                        last: top.last,
                        work: prev.work + top.work,
                        start: prev.start,
                        window_end: top.window_end,
                    });
                } else {
                    break;
                }
            }
        }

        // The fastest configuration: stacked exact-fit blocks + {n-1}.
        let mut base_blocks: Vec<Block> = stack
            .iter()
            .map(|s| Block {
                first: s.first,
                last: s.last,
                work: s.work,
                start: s.start,
                speed: speed_of(s),
            })
            .collect();
        base_blocks.push(Block {
            first: n - 1,
            last: n - 1,
            work: instance.work(n - 1),
            start: instance.release(n - 1),
            speed: f64::NAN,
        });

        // Prefix energies of the fixed blocks (prefix_energy[k] = energy
        // of blocks 0..k).
        let mut prefix_energy = Vec::with_capacity(base_blocks.len());
        let mut acc = 0.0;
        prefix_energy.push(0.0);
        for b in &base_blocks[..base_blocks.len() - 1] {
            acc += model.energy(b.work, b.speed);
            prefix_energy.push(acc);
        }

        // Enumerate configurations from fastest to slowest.
        let mut segments = Vec::with_capacity(base_blocks.len());
        let mut energy_max = f64::INFINITY;
        let mut last_start = base_blocks[base_blocks.len() - 1].start;
        let mut last_work = base_blocks[base_blocks.len() - 1].work;
        for k in (0..base_blocks.len()).rev() {
            // Configuration with `k` fixed prefix blocks.
            let sigma = prefix_energy[k];
            let (energy_min, makespan_at_min) = if k == 0 {
                (0.0, f64::INFINITY)
            } else {
                let pred = &base_blocks[k - 1];
                let merge_energy = sigma + model.energy(last_work, pred.speed);
                let mk = if pred.speed.is_finite() && pred.speed > 0.0 {
                    last_start + last_work / pred.speed
                } else {
                    last_start
                };
                (merge_energy, mk)
            };
            segments.push(FrontierSegment {
                energy_min,
                energy_max,
                prefix_blocks: k,
                prefix_energy: sigma,
                last_start,
                last_work,
                makespan_at_min,
            });
            energy_max = energy_min;
            if k > 0 {
                // Merge the predecessor into the final block.
                let pred = &base_blocks[k - 1];
                last_start = pred.start;
                last_work += pred.work;
            }
        }
        // The descending-k loop already pushed the highest-energy
        // configuration first.
        Frontier {
            base_blocks,
            segments,
        }
    }

    /// The configurations, fastest (highest-energy) first.
    pub fn segments(&self) -> &[FrontierSegment] {
        &self.segments
    }

    /// The budgets at which the optimal configuration changes, in
    /// decreasing order (the paper's instance yields `[17, 8]`).
    /// Infinite entries (produced by zero-length release gaps whose
    /// exact-fit blocks have infinite speed) are filtered out.
    pub fn breakpoints(&self) -> Vec<f64> {
        self.segments
            .iter()
            .map(|s| s.energy_min)
            .filter(|e| e.is_finite() && *e > 0.0)
            .collect()
    }

    /// The segment covering budget `e`.
    ///
    /// # Errors
    /// [`CoreError::InvalidBudget`] for non-positive `e`.
    pub fn segment_for_energy(&self, e: f64) -> Result<&FrontierSegment, CoreError> {
        if !pas_numeric::compare::is_positive_finite(e) {
            return Err(CoreError::InvalidBudget { budget: e });
        }
        // Segments ordered by decreasing energy: find the first whose
        // energy_min is <= e.
        let idx = self.segments.partition_point(|s| s.energy_min > e);
        Ok(&self.segments[idx.min(self.segments.len() - 1)])
    }

    /// Optimal makespan for budget `e` (the laptop problem, via the
    /// frontier's closed form).
    ///
    /// # Errors
    /// [`CoreError::InvalidBudget`], or a power-model error when the
    /// final-block speed solve fails.
    pub fn makespan<M: PowerModel>(&self, model: &M, e: f64) -> Result<f64, CoreError> {
        let seg = self.segment_for_energy(e)?;
        let speed = model.speed_for_block(seg.last_work, e - seg.prefix_energy)?;
        Ok(seg.last_start + seg.last_work / speed)
    }

    /// The optimal schedule for budget `e`, reconstructed from the
    /// segment's prefix blocks plus the budget-driven final block.
    ///
    /// # Errors
    /// Same as [`Frontier::makespan`].
    pub fn schedule<M: PowerModel>(&self, model: &M, e: f64) -> Result<BlockSchedule, CoreError> {
        let seg = self.segment_for_energy(e)?;
        let speed = model.speed_for_block(seg.last_work, e - seg.prefix_energy)?;
        let mut blocks: Vec<Block> = self.base_blocks[..seg.prefix_blocks].to_vec();
        let last = self.base_blocks.last().expect("non-empty");
        blocks.push(Block {
            first: self.base_blocks[seg.prefix_blocks].first,
            last: last.last,
            work: seg.last_work,
            start: seg.last_start,
            speed,
        });
        Ok(BlockSchedule::new(blocks))
    }

    /// Minimal energy achieving makespan `t` (the server problem, exact
    /// per-piece closed form `E = Σ + W·g(W/(t − s_L))`).
    ///
    /// # Errors
    /// [`CoreError::UnreachableTarget`] when `t` is at or below the final
    /// job's release time.
    pub fn energy_for_makespan<M: PowerModel>(&self, model: &M, t: f64) -> Result<f64, CoreError> {
        // Find the first (fastest) segment whose slow-end makespan reaches t.
        let seg = self
            .segments
            .iter()
            .find(|s| t <= s.makespan_at_min)
            .unwrap_or_else(|| self.segments.last().expect("non-empty"));
        if t <= seg.last_start {
            return Err(CoreError::UnreachableTarget {
                reason: format!(
                    "makespan {t} not achievable: final block cannot start before {}",
                    seg.last_start
                ),
            });
        }
        let speed = seg.last_work / (t - seg.last_start);
        Ok(seg.prefix_energy + model.energy(seg.last_work, speed))
    }

    /// Closed-form first derivative `dM/dE = −1/(P'(σ)σ − P(σ))` at
    /// budget `e` (continuous across breakpoints — paper Figure 2).
    ///
    /// # Errors
    /// Same as [`Frontier::makespan`].
    pub fn makespan_derivative<M: PowerModel>(&self, model: &M, e: f64) -> Result<f64, CoreError> {
        let seg = self.segment_for_energy(e)?;
        let sigma = model.speed_for_block(seg.last_work, e - seg.prefix_energy)?;
        let denom = model.power_derivative(sigma) * sigma - model.power(sigma);
        Ok(-1.0 / denom)
    }

    /// Closed-form second derivative
    /// `d²M/dE² = P''(σ)·σ³ / (W·(P'(σ)σ − P(σ))³)` at budget `e`
    /// (discontinuous at breakpoints — paper Figure 3).
    ///
    /// # Errors
    /// Same as [`Frontier::makespan`].
    pub fn makespan_second_derivative<M: PowerModel>(
        &self,
        model: &M,
        e: f64,
    ) -> Result<f64, CoreError> {
        let seg = self.segment_for_energy(e)?;
        let sigma = model.speed_for_block(seg.last_work, e - seg.prefix_energy)?;
        let denom = model.power_derivative(sigma) * sigma - model.power(sigma);
        Ok(model.power_second_derivative(sigma) * sigma.powi(3) / (seg.last_work * denom.powi(3)))
    }

    /// Sample `(energy, makespan)` at `points` energies evenly spaced in
    /// `[lo, hi]`, with every interior breakpoint inserted exactly —
    /// ready-to-plot data for Figure-1-style curves that never smooths a
    /// configuration change away.
    ///
    /// # Errors
    /// [`CoreError::InvalidBudget`] when `lo <= 0` or `lo >= hi`.
    pub fn sample<M: PowerModel>(
        &self,
        model: &M,
        lo: f64,
        hi: f64,
        points: usize,
    ) -> Result<Vec<(f64, f64)>, CoreError> {
        if !(lo.is_finite() && lo > 0.0 && hi.is_finite() && hi > lo) || points < 2 {
            return Err(CoreError::InvalidBudget { budget: lo });
        }
        let mut energies: Vec<f64> = (0..points)
            .map(|k| lo + (hi - lo) * k as f64 / (points - 1) as f64)
            .collect();
        energies.extend(
            self.breakpoints()
                .into_iter()
                .filter(|e| *e > lo && *e < hi),
        );
        energies.sort_by(|a, b| a.total_cmp(b));
        energies.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
        energies
            .into_iter()
            .map(|e| Ok((e, self.makespan(model, e)?)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::makespan::incmerge;
    use pas_power::PolyPower;

    fn paper_instance() -> Instance {
        Instance::from_pairs(&[(0.0, 5.0), (5.0, 2.0), (6.0, 1.0)]).unwrap()
    }

    #[test]
    fn breakpoints_are_8_and_17() {
        let f = Frontier::build(&paper_instance(), &PolyPower::CUBE);
        let bp = f.breakpoints();
        assert_eq!(bp.len(), 2, "{bp:?}");
        assert!((bp[0] - 17.0).abs() < 1e-9, "{bp:?}");
        assert!((bp[1] - 8.0).abs() < 1e-9, "{bp:?}");
    }

    #[test]
    fn makespan_matches_incmerge_everywhere() {
        let inst = paper_instance();
        let model = PolyPower::CUBE;
        let f = Frontier::build(&inst, &model);
        for k in 1..200 {
            let e = 0.25 * k as f64;
            let via_frontier = f.makespan(&model, e).unwrap();
            let via_incmerge = incmerge::laptop(&inst, &model, e).unwrap().makespan();
            assert!(
                (via_frontier - via_incmerge).abs() < 1e-9,
                "E={e}: frontier {via_frontier} vs incmerge {via_incmerge}"
            );
        }
    }

    #[test]
    fn figure1_endpoint_values() {
        let f = Frontier::build(&paper_instance(), &PolyPower::CUBE);
        let model = PolyPower::CUBE;
        // M(6) = 8√(8/6), M(8) = 8, M(17) = 6.5, M(21) = 6 + 8^{-1/2}.
        assert!((f.makespan(&model, 6.0).unwrap() - 8.0 * (8.0f64 / 6.0).sqrt()).abs() < 1e-9);
        assert!((f.makespan(&model, 8.0).unwrap() - 8.0).abs() < 1e-9);
        assert!((f.makespan(&model, 17.0).unwrap() - 6.5).abs() < 1e-9);
        assert!((f.makespan(&model, 21.0).unwrap() - (6.0 + 8f64.powf(-0.5))).abs() < 1e-9);
    }

    #[test]
    fn figure2_first_derivative_continuous_at_breakpoints() {
        let f = Frontier::build(&paper_instance(), &PolyPower::CUBE);
        let model = PolyPower::CUBE;
        // Exact values: M'(8) = -1/2, M'(17) = -1/16.
        assert!((f.makespan_derivative(&model, 8.0).unwrap() + 0.5).abs() < 1e-9);
        assert!((f.makespan_derivative(&model, 17.0).unwrap() + 1.0 / 16.0).abs() < 1e-9);
        // Continuity: left and right of each breakpoint agree to O(h).
        for &bp in &[8.0, 17.0] {
            let h = 1e-7;
            let l = f.makespan_derivative(&model, bp - h).unwrap();
            let r = f.makespan_derivative(&model, bp + h).unwrap();
            assert!((l - r).abs() < 1e-5, "at {bp}: {l} vs {r}");
        }
    }

    #[test]
    fn figure3_second_derivative_jumps_at_breakpoints() {
        let f = Frontier::build(&paper_instance(), &PolyPower::CUBE);
        let model = PolyPower::CUBE;
        let h = 1e-9;
        // At E=8: 3/32 from the left, 1/4 from the right.
        let l8 = f.makespan_second_derivative(&model, 8.0 - h).unwrap();
        let r8 = f.makespan_second_derivative(&model, 8.0 + h).unwrap();
        assert!((l8 - 3.0 / 32.0).abs() < 1e-6, "{l8}");
        assert!((r8 - 0.25).abs() < 1e-6, "{r8}");
        // At E=17: 9√3/(4·12^{5/2}) from the left, 3/128 from the right.
        let l17 = f.makespan_second_derivative(&model, 17.0 - h).unwrap();
        let r17 = f.makespan_second_derivative(&model, 17.0 + h).unwrap();
        let want_l17 = 9.0 * 3f64.sqrt() / (4.0 * 12f64.powf(2.5));
        assert!((l17 - want_l17).abs() < 1e-6, "{l17} vs {want_l17}");
        assert!((r17 - 3.0 / 128.0).abs() < 1e-6, "{r17}");
    }

    #[test]
    fn derivatives_match_numeric_differentiation() {
        let inst = paper_instance();
        let model = PolyPower::CUBE;
        let f = Frontier::build(&inst, &model);
        // Away from breakpoints, Richardson central differences of M(E)
        // must agree with the closed forms.
        for &e in &[6.5, 10.0, 14.0, 19.0, 30.0] {
            let m = |x: f64| f.makespan(&model, x).unwrap();
            let d_closed = f.makespan_derivative(&model, e).unwrap();
            let d_numeric = pas_numeric::diff::derivative(m, e, 1e-4);
            assert!(
                (d_closed - d_numeric).abs() < 1e-6,
                "E={e}: {d_closed} vs {d_numeric}"
            );
            let d2_closed = f.makespan_second_derivative(&model, e).unwrap();
            let d2_numeric = pas_numeric::diff::second_derivative(m, e, 1e-3);
            assert!(
                (d2_closed - d2_numeric).abs() < 1e-4,
                "E={e}: {d2_closed} vs {d2_numeric}"
            );
        }
    }

    #[test]
    fn server_query_inverts_laptop_query() {
        let inst = paper_instance();
        let model = PolyPower::CUBE;
        let f = Frontier::build(&inst, &model);
        for &e in &[6.0, 8.0, 11.0, 17.0, 25.0] {
            let t = f.makespan(&model, e).unwrap();
            let back = f.energy_for_makespan(&model, t).unwrap();
            assert!((back - e).abs() < 1e-7 * e, "E={e} -> T={t} -> {back}");
        }
    }

    #[test]
    fn schedule_reconstruction_is_optimal_and_valid() {
        let inst = paper_instance();
        let model = PolyPower::CUBE;
        let f = Frontier::build(&inst, &model);
        for &e in &[6.0, 12.0, 18.0] {
            let bs = f.schedule(&model, e).unwrap();
            bs.verify_structure(&inst, 1e-9).unwrap();
            assert!((bs.energy(&model) - e).abs() < 1e-7 * e);
            let im = incmerge::laptop(&inst, &model, e).unwrap();
            assert!((bs.makespan() - im.makespan()).abs() < 1e-9);
        }
    }

    #[test]
    fn unreachable_makespan_is_rejected() {
        let inst = paper_instance();
        let model = PolyPower::CUBE;
        let f = Frontier::build(&inst, &model);
        // Makespan 6.0 = release of the last job: impossible.
        assert!(f.energy_for_makespan(&model, 6.0).is_err());
        assert!(f.energy_for_makespan(&model, 5.0).is_err());
        // Just above is fine (huge energy).
        assert!(f.energy_for_makespan(&model, 6.0001).unwrap() > 1000.0);
    }

    #[test]
    fn single_job_frontier() {
        let inst = Instance::from_pairs(&[(2.0, 4.0)]).unwrap();
        let model = PolyPower::CUBE;
        let f = Frontier::build(&inst, &model);
        assert_eq!(f.segments().len(), 1);
        assert!(f.breakpoints().is_empty());
        // w·σ² = 16 -> σ = 2 -> M = 4.
        assert!((f.makespan(&model, 16.0).unwrap() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn invalid_budget_rejected() {
        let f = Frontier::build(&paper_instance(), &PolyPower::CUBE);
        assert!(f.makespan(&PolyPower::CUBE, 0.0).is_err());
        assert!(f.makespan(&PolyPower::CUBE, -1.0).is_err());
    }

    #[test]
    fn sample_includes_breakpoints_exactly() {
        let model = PolyPower::CUBE;
        let f = Frontier::build(&paper_instance(), &model);
        let pts = f.sample(&model, 6.0, 21.0, 10).unwrap();
        // 10 grid points + 2 interior breakpoints (8 and 17).
        assert_eq!(pts.len(), 12);
        assert!(pts.iter().any(|(e, _)| (*e - 8.0).abs() < 1e-12));
        assert!(pts.iter().any(|(e, _)| (*e - 17.0).abs() < 1e-12));
        // Sorted and strictly decreasing makespans.
        for w in pts.windows(2) {
            assert!(w[0].0 < w[1].0);
            assert!(w[0].1 > w[1].1);
        }
        assert!(f.sample(&model, 0.0, 21.0, 10).is_err());
        assert!(f.sample(&model, 5.0, 5.0, 10).is_err());
    }

    #[test]
    fn frontier_matches_incmerge_on_random_instances() {
        use pas_workload::generators;
        let model = PolyPower::new(2.5);
        for seed in 0..10 {
            let inst = generators::uniform(30, 50.0, (0.5, 3.0), seed);
            let f = Frontier::build(&inst, &model);
            for k in 1..=20 {
                let e = 2.0 * k as f64;
                let a = f.makespan(&model, e).unwrap();
                let b = incmerge::laptop(&inst, &model, e).unwrap().makespan();
                assert!(
                    (a - b).abs() < 1e-6 * a.max(1.0),
                    "seed {seed} E={e}: {a} vs {b}"
                );
            }
        }
    }
}
