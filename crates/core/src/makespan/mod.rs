//! Uniprocessor power-aware **makespan** scheduling (paper §3).
//!
//! The laptop problem — "what is the best makespan achievable with energy
//! budget `E`?" — is solved exactly by [`incmerge::laptop`] in linear time
//! after release-sorting (the paper's `IncMerge`). The structure theorem
//! behind it (Lemmas 2–7): the optimum runs jobs in release order with no
//! idle time, partitioned into *blocks* that each run at one speed, block
//! speeds non-decreasing over time, and those five properties pin down a
//! unique schedule per budget.
//!
//! [`frontier::Frontier`] enumerates **all** non-dominated schedules
//! (§3.2): as the budget falls, only the final block slows until it
//! matches its predecessor's speed, at which point they merge — so the
//! energy↔makespan tradeoff is a piecewise-smooth curve with at most `n`
//! configurations (Figures 1–3 of the paper).
//!
//! Baselines kept for comparison and cross-checking:
//! * [`dp`] — the `O(n²)`-state dynamic program sketched in §3.1;
//! * [`moveright`] — a quadratic pool-adjacent-violators server-problem
//!   solver in the style of Uysal-Biyikoglu–Prabhakar–El Gamal (§2), the
//!   algorithm `IncMerge` improves on.

pub mod blocks;
pub mod bounded;
pub mod dp;
pub mod exact;
pub mod frontier;
pub mod incmerge;
pub mod moveright;

pub use blocks::{Block, BlockSchedule};
pub use frontier::{Frontier, FrontierSegment};
pub use incmerge::{laptop, server};
