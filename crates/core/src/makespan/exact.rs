//! Symbolic (exact-rational) `IncMerge`: the paper's §4 closing remark,
//! executed.
//!
//! *"Only an exact algorithm such as IncMerge can give closed-form
//! solutions suitable for symbolic computation, however."* — for
//! rational releases/works and integer `α`, everything IncMerge touches
//! except the budget-driven final speed is rational: exact-fit block
//! speeds `W/(r_{j+1} − r_i)`, block energies `W·σ^{α−1}`, the server
//! problem's total energy, and the frontier **breakpoints**
//! `Σ_prefix + W_last·σ_pred^{α−1}`. This module runs the algorithm over
//! [`Rational`] and returns those closed forms exactly — on the paper's
//! instance the breakpoints come out as the *integers* 17 and 8, not
//! floats near them.

use crate::error::CoreError;
use pas_numeric::rational::Rational;

/// A job with exact rational release and work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExactJob {
    /// Release time.
    pub release: Rational,
    /// Work requirement (positive).
    pub work: Rational,
}

/// An exact block of the symbolic solution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExactBlock {
    /// First job index (sorted order).
    pub first: usize,
    /// Last job index (inclusive).
    pub last: usize,
    /// Total work.
    pub work: Rational,
    /// Block start (= first job's release).
    pub start: Rational,
    /// Exact-fit speed (`None` for the budget-driven final block of the
    /// frontier construction).
    pub speed: Option<Rational>,
}

/// Validate and sort exact jobs by release.
///
/// # Errors
/// [`CoreError::VerificationFailed`] on empty input, non-positive work
/// or negative release.
fn prepare(jobs: &[ExactJob]) -> Result<Vec<ExactJob>, CoreError> {
    if jobs.is_empty() {
        return Err(CoreError::VerificationFailed {
            reason: "exact instance needs at least one job".to_string(),
        });
    }
    for j in jobs {
        if !j.work.is_positive() || j.release < Rational::ZERO {
            return Err(CoreError::VerificationFailed {
                reason: format!("invalid exact job {j:?}"),
            });
        }
    }
    let mut sorted = jobs.to_vec();
    sorted.sort_by_key(|j| j.release);
    Ok(sorted)
}

/// Exact-fit speed of a window, `None` when the window is empty
/// (infinite speed — the caller treats it as "merge immediately").
fn exact_fit_speed(work: Rational, start: Rational, end: Rational) -> Option<Rational> {
    let d = end.checked_sub(&start).expect("rational range");
    if d.is_positive() {
        Some(work / d)
    } else {
        None
    }
}

/// Energy of `work` at `speed` under `P = σ^α`: `W·σ^{α−1}` — exact.
fn energy(work: Rational, speed: Rational, alpha: u32) -> Rational {
    work * speed.checked_pow(alpha - 1).expect("rational power")
}

/// Solve the **server problem symbolically**: the unique optimal block
/// partition finishing exactly at `deadline` under `P = σ^α`, with the
/// exact rational speeds and the exact total energy.
///
/// # Errors
/// [`CoreError::UnreachableTarget`] when `deadline` is not after the
/// last release; [`CoreError::VerificationFailed`] for invalid jobs.
pub fn server_exact(
    jobs: &[ExactJob],
    alpha: u32,
    deadline: Rational,
) -> Result<(Vec<ExactBlock>, Rational), CoreError> {
    assert!(alpha >= 2, "integer alpha must be at least 2");
    let jobs = prepare(jobs)?;
    let n = jobs.len();
    if deadline <= jobs[n - 1].release {
        return Err(CoreError::UnreachableTarget {
            reason: format!(
                "deadline {deadline} is not after the last release {}",
                jobs[n - 1].release
            ),
        });
    }
    // IncMerge with the deadline as a sentinel release — the f64 version
    // in `incmerge::server`, transcribed over Rational. Infinite-speed
    // (zero-window) segments are represented with `speed: None` and
    // always merge.
    #[derive(Clone)]
    struct Seg {
        first: usize,
        last: usize,
        work: Rational,
        start: Rational,
        window_end: Rational,
    }
    let speed_of = |s: &Seg| exact_fit_speed(s.work, s.start, s.window_end);
    let mut stack: Vec<Seg> = Vec::with_capacity(n);
    for (k, job) in jobs.iter().enumerate() {
        stack.push(Seg {
            first: k,
            last: k,
            work: job.work,
            start: job.release,
            window_end: if k + 1 < n {
                jobs[k + 1].release
            } else {
                deadline
            },
        });
        while stack.len() >= 2 {
            let top_speed = speed_of(&stack[stack.len() - 1]);
            let prev_speed = speed_of(&stack[stack.len() - 2]);
            let must_merge = match (top_speed, prev_speed) {
                (_, None) => true,        // predecessor infinite: absorb
                (None, Some(_)) => false, // top infinite: it is faster
                (Some(t), Some(p)) => t < p,
            };
            if must_merge {
                let top = stack.pop().expect("len >= 2");
                let prev = stack.pop().expect("len >= 1");
                stack.push(Seg {
                    first: prev.first,
                    last: top.last,
                    work: prev.work + top.work,
                    start: prev.start,
                    window_end: top.window_end,
                });
            } else {
                break;
            }
        }
    }
    let mut total = Rational::ZERO;
    let mut blocks = Vec::with_capacity(stack.len());
    for s in &stack {
        let speed = speed_of(s).ok_or_else(|| CoreError::VerificationFailed {
            reason: "zero-length window survived merging".to_string(),
        })?;
        total = total + energy(s.work, speed, alpha);
        blocks.push(ExactBlock {
            first: s.first,
            last: s.last,
            work: s.work,
            start: s.start,
            speed: Some(speed),
        });
    }
    Ok((blocks, total))
}

/// Compute the frontier **breakpoints symbolically**: the exact energies
/// at which the optimal configuration changes, in decreasing order.
///
/// Runs the frontier construction of
/// [`Frontier::build`](crate::makespan::frontier::Frontier::build) over
/// rational arithmetic: breakpoint `k` is
/// `Σ_{prefix} W_b·σ_b^{α−1} + W_last·σ_pred^{α−1}` — all rational.
///
/// # Errors
/// [`CoreError::VerificationFailed`] for invalid jobs.
pub fn breakpoints_exact(jobs: &[ExactJob], alpha: u32) -> Result<Vec<Rational>, CoreError> {
    assert!(alpha >= 2, "integer alpha must be at least 2");
    let jobs = prepare(jobs)?;
    let n = jobs.len();
    // Phase 1: exact-fit blocks for jobs 0..n-1 (f64 frontier, transcribed).
    #[derive(Clone)]
    struct Seg {
        work: Rational,
        start: Rational,
        window_end: Rational,
    }
    let speed_of = |s: &Seg| exact_fit_speed(s.work, s.start, s.window_end);
    let mut stack: Vec<Seg> = Vec::with_capacity(n);
    for k in 0..n - 1 {
        stack.push(Seg {
            work: jobs[k].work,
            start: jobs[k].release,
            window_end: jobs[k + 1].release,
        });
        while stack.len() >= 2 {
            let top_speed = speed_of(&stack[stack.len() - 1]);
            let prev_speed = speed_of(&stack[stack.len() - 2]);
            let must_merge = match (top_speed, prev_speed) {
                (_, None) => true,
                (None, Some(_)) => false,
                (Some(t), Some(p)) => t < p,
            };
            if must_merge {
                let top = stack.pop().expect("len >= 2");
                let prev = stack.pop().expect("len >= 1");
                stack.push(Seg {
                    work: prev.work + top.work,
                    start: prev.start,
                    window_end: top.window_end,
                });
            } else {
                break;
            }
        }
    }
    // Walk configurations from fastest to slowest, collecting the merge
    // energies of blocks with finite predecessor speed.
    let prefix_energies: Vec<Rational> = {
        let mut acc = Rational::ZERO;
        let mut out = vec![Rational::ZERO];
        for s in &stack {
            if let Some(speed) = speed_of(s) {
                acc = acc + energy(s.work, speed, alpha);
            }
            out.push(acc);
        }
        out
    };
    let mut breakpoints = Vec::new();
    let mut last_work = jobs[n - 1].work;
    for k in (1..=stack.len()).rev() {
        let pred = &stack[k - 1];
        if let Some(pred_speed) = speed_of(pred) {
            let merge_energy = prefix_energies[k] + energy(last_work, pred_speed, alpha);
            breakpoints.push(merge_energy);
        }
        last_work = last_work + pred.work;
    }
    Ok(breakpoints)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i128, d: i128) -> Rational {
        Rational::new(n, d)
    }

    fn paper_jobs() -> Vec<ExactJob> {
        vec![
            ExactJob {
                release: r(0, 1),
                work: r(5, 1),
            },
            ExactJob {
                release: r(5, 1),
                work: r(2, 1),
            },
            ExactJob {
                release: r(6, 1),
                work: r(1, 1),
            },
        ]
    }

    #[test]
    fn breakpoints_are_exactly_the_integers_17_and_8() {
        // The paper's "configuration changes occur at energy 8 and 17",
        // now as exact integers rather than floats near them.
        let bp = breakpoints_exact(&paper_jobs(), 3).unwrap();
        assert_eq!(bp, vec![Rational::from_int(17), Rational::from_int(8)]);
    }

    #[test]
    fn server_at_thirteen_halves_gives_exactly_17() {
        // Deadline 13/2 = the E=17 configuration endpoint: blocks at
        // speeds 1, 2, 2 — total energy exactly 17.
        let (blocks, total) = server_exact(&paper_jobs(), 3, r(13, 2)).unwrap();
        assert_eq!(total, Rational::from_int(17));
        let speeds: Vec<Rational> = blocks.iter().map(|b| b.speed.unwrap()).collect();
        assert_eq!(speeds, vec![r(1, 1), r(2, 1), r(2, 1)]);
    }

    #[test]
    fn server_matches_float_solver() {
        use crate::makespan::incmerge;
        use pas_power::PolyPower;
        use pas_workload::Instance;
        let jobs = paper_jobs();
        let inst = Instance::from_pairs(&[(0.0, 5.0), (5.0, 2.0), (6.0, 1.0)]).unwrap();
        for (dn, dd) in [(7i128, 1i128), (8, 1), (15, 2), (20, 1)] {
            let (_, exact) = server_exact(&jobs, 3, r(dn, dd)).unwrap();
            let float = incmerge::server(&inst, &PolyPower::CUBE, dn as f64 / dd as f64)
                .unwrap()
                .energy(&PolyPower::CUBE);
            assert!(
                (exact.to_f64() - float).abs() < 1e-9 * float.max(1.0),
                "deadline {dn}/{dd}: exact {exact} vs float {float}"
            );
        }
    }

    #[test]
    fn breakpoints_match_float_frontier_on_rational_instances() {
        use crate::makespan::frontier::Frontier;
        use pas_power::PolyPower;
        use pas_workload::Instance;
        // A second instance with awkward fractions.
        let jobs = vec![
            ExactJob {
                release: r(0, 1),
                work: r(7, 2),
            },
            ExactJob {
                release: r(3, 1),
                work: r(5, 3),
            },
            ExactJob {
                release: r(9, 2),
                work: r(1, 1),
            },
            ExactJob {
                release: r(6, 1),
                work: r(2, 1),
            },
        ];
        let inst =
            Instance::from_pairs(&[(0.0, 3.5), (3.0, 5.0 / 3.0), (4.5, 1.0), (6.0, 2.0)]).unwrap();
        let exact = breakpoints_exact(&jobs, 3).unwrap();
        let float = Frontier::build(&inst, &PolyPower::new(3.0)).breakpoints();
        assert_eq!(exact.len(), float.len());
        for (e, f) in exact.iter().zip(&float) {
            assert!(
                (e.to_f64() - f).abs() < 1e-9 * f.max(1.0),
                "exact {e} vs float {f}"
            );
        }
    }

    #[test]
    fn simultaneous_releases_merge_exactly() {
        let jobs = vec![
            ExactJob {
                release: r(0, 1),
                work: r(1, 1),
            },
            ExactJob {
                release: r(0, 1),
                work: r(2, 1),
            },
        ];
        let (blocks, total) = server_exact(&jobs, 3, r(3, 1)).unwrap();
        // One block, 3 work over 3 time at speed 1: energy exactly 3.
        assert_eq!(blocks.len(), 1);
        assert_eq!(total, Rational::from_int(3));
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(server_exact(&[], 3, r(1, 1)).is_err());
        let jobs = paper_jobs();
        assert!(server_exact(&jobs, 3, r(6, 1)).is_err()); // at last release
        let bad = vec![ExactJob {
            release: r(0, 1),
            work: r(0, 1),
        }];
        assert!(server_exact(&bad, 3, r(1, 1)).is_err());
    }

    #[test]
    fn alpha_two_works() {
        // α = 2: energies are W·σ — still rational.
        let (_, total) = server_exact(&paper_jobs(), 2, r(13, 2)).unwrap();
        // blocks (5 @ 1), (2 @ 2), (1 @ 2): 5 + 4 + 2 = 11.
        assert_eq!(total, Rational::from_int(11));
    }
}
