//! `IncMerge`: the paper's linear-time algorithm for the uniprocessor
//! makespan laptop problem (§3.1), plus the server-problem variant.
//!
//! The algorithm maintains a tentative list of blocks. Jobs are added in
//! release order, each starting as its own block; while the last block
//! runs *slower* than its predecessor the two are merged. Non-final
//! blocks have their speed forced by exact fit — block `(i, j)` runs at
//! `W_{i..j} / (r_{j+1} − r_i)` because optimal schedules are never idle
//! (Lemma 4) — while the final block's speed is chosen to spend exactly
//! the remaining energy budget. Each job ceases to be the head of a block
//! at most once, so the whole run is `O(n)` after sorting.

use crate::error::CoreError;
use crate::makespan::blocks::{Block, BlockSchedule};
use pas_numeric::compare::is_positive_finite;
use pas_power::PowerModel;
use pas_workload::Instance;

/// Working segment on the merge stack.
#[derive(Debug, Clone, Copy)]
struct Seg {
    first: usize,
    last: usize,
    work: f64,
    start: f64,
    /// Exact-fit end for non-final segments: the release of job
    /// `last + 1` (or the server deadline). Unused for the energy-driven
    /// final segment of the laptop problem.
    window_end: f64,
}

impl Seg {
    /// Exact-fit speed (`inf` when the window is empty — simultaneous
    /// releases; such a segment merges immediately).
    fn exact_fit_speed(&self) -> f64 {
        let d = self.window_end - self.start;
        if d <= 0.0 {
            f64::INFINITY
        } else {
            self.work / d
        }
    }
}

/// Running total of stacked segment energies that stays NaN-free when
/// zero-width windows produce infinite exact-fit energies: infinities are
/// counted, not summed, so `inf - inf` never happens.
#[derive(Debug, Default)]
struct EnergyLedger {
    finite: f64,
    infinite: usize,
}

impl EnergyLedger {
    fn add(&mut self, e: f64) {
        if e.is_finite() {
            self.finite += e;
        } else {
            self.infinite += 1;
        }
    }

    fn remove(&mut self, e: f64) {
        if e.is_finite() {
            self.finite -= e;
        } else {
            self.infinite -= 1;
        }
    }

    fn total(&self) -> f64 {
        if self.infinite > 0 {
            f64::INFINITY
        } else {
            self.finite
        }
    }
}

/// Solve the **laptop problem**: minimize makespan subject to total
/// energy at most `budget` (the optimum always uses the whole budget).
///
/// Runs in `O(n)` after the instance's release sort. The result satisfies
/// the five structural properties of Lemma 7 and is therefore *the*
/// optimal schedule.
///
/// # Errors
/// [`CoreError::InvalidBudget`] for non-positive budgets and
/// [`CoreError::Power`] if the model cannot realize the final block's
/// energy rate (e.g. a [`pas_power::BoundedPower`] out of range).
pub fn laptop<M: PowerModel>(
    instance: &Instance,
    model: &M,
    budget: f64,
) -> Result<BlockSchedule, CoreError> {
    if !is_positive_finite(budget) {
        return Err(CoreError::InvalidBudget { budget });
    }
    let n = instance.len();
    let mut stack: Vec<Seg> = Vec::with_capacity(n);
    // Running total of the exact-fit energies of all stacked segments
    // (final phase subtracts the top as needed).
    let mut ledger = EnergyLedger::default();

    // Phase 1: jobs 0..n-1 with exact-fit windows.
    for k in 0..n.saturating_sub(1) {
        let seg = Seg {
            first: k,
            last: k,
            work: instance.work(k),
            start: instance.release(k),
            window_end: instance.release(k + 1),
        };
        ledger.add(model.energy(seg.work, seg.exact_fit_speed()));
        stack.push(seg);
        merge_exact_fit(&mut stack, &mut ledger, model);
    }

    // Phase 2: the final job; speed balanced against the energy budget.
    let mut fin = Seg {
        first: n - 1,
        last: n - 1,
        work: instance.work(n - 1),
        start: instance.release(n - 1),
        window_end: f64::NAN, // energy-driven, no exact-fit window
    };
    loop {
        let rem = budget - ledger.total();
        let speed = if rem > 0.0 {
            Some(model.speed_for_block(fin.work, rem)?)
        } else {
            None // over budget: must absorb the predecessor
        };
        let pred_speed = stack.last().map(Seg::exact_fit_speed);
        let must_merge = match (speed, pred_speed) {
            (_, None) => false,
            (None, Some(_)) => true,
            (Some(s), Some(p)) => s < p,
        };
        if must_merge {
            let pred = stack.pop().expect("pred exists");
            ledger.remove(model.energy(pred.work, pred.exact_fit_speed()));
            fin = Seg {
                first: pred.first,
                last: fin.last,
                work: pred.work + fin.work,
                start: pred.start,
                window_end: f64::NAN,
            };
        } else {
            let speed = speed.expect("no predecessor left implies rem > 0");
            let mut blocks: Vec<Block> = stack
                .iter()
                .map(|s| Block {
                    first: s.first,
                    last: s.last,
                    work: s.work,
                    start: s.start,
                    speed: s.exact_fit_speed(),
                })
                .collect();
            blocks.push(Block {
                first: fin.first,
                last: fin.last,
                work: fin.work,
                start: fin.start,
                speed,
            });
            return Ok(BlockSchedule::new(blocks));
        }
    }
}

/// Solve the **server problem**: minimize energy subject to completing
/// all jobs by `deadline`.
///
/// Implemented as `IncMerge` with the deadline acting as a sentinel
/// release after the last job, making *every* block exact-fit. Linear
/// time; compare with the quadratic
/// [`moveright`](crate::makespan::moveright) baseline.
///
/// # Errors
/// [`CoreError::UnreachableTarget`] when `deadline` is not strictly after
/// the last release (no finite speed can help).
pub fn server<M: PowerModel>(
    instance: &Instance,
    model: &M,
    deadline: f64,
) -> Result<BlockSchedule, CoreError> {
    if !pas_numeric::compare::strictly_exceeds(deadline, instance.last_release()) {
        return Err(CoreError::UnreachableTarget {
            reason: format!(
                "deadline {deadline} is not after the last release {}",
                instance.last_release()
            ),
        });
    }
    let n = instance.len();
    let mut stack: Vec<Seg> = Vec::with_capacity(n);
    let mut ledger = EnergyLedger::default();
    for k in 0..n {
        let seg = Seg {
            first: k,
            last: k,
            work: instance.work(k),
            start: instance.release(k),
            window_end: if k + 1 < n {
                instance.release(k + 1)
            } else {
                deadline
            },
        };
        ledger.add(model.energy(seg.work, seg.exact_fit_speed()));
        stack.push(seg);
        merge_exact_fit(&mut stack, &mut ledger, model);
    }
    let blocks = stack
        .iter()
        .map(|s| Block {
            first: s.first,
            last: s.last,
            work: s.work,
            start: s.start,
            speed: s.exact_fit_speed(),
        })
        .collect();
    Ok(BlockSchedule::new(blocks))
}

/// Merge the top of the stack leftward while it is slower than its
/// predecessor (both exact-fit).
fn merge_exact_fit<M: PowerModel>(stack: &mut Vec<Seg>, ledger: &mut EnergyLedger, model: &M) {
    while stack.len() >= 2 {
        let top = stack[stack.len() - 1];
        let prev = stack[stack.len() - 2];
        if top.exact_fit_speed() < prev.exact_fit_speed() {
            stack.pop();
            stack.pop();
            ledger.remove(model.energy(top.work, top.exact_fit_speed()));
            ledger.remove(model.energy(prev.work, prev.exact_fit_speed()));
            let merged = Seg {
                first: prev.first,
                last: top.last,
                work: prev.work + top.work,
                start: prev.start,
                window_end: top.window_end,
            };
            ledger.add(model.energy(merged.work, merged.exact_fit_speed()));
            stack.push(merged);
        } else {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pas_power::PolyPower;

    fn paper_instance() -> Instance {
        Instance::from_pairs(&[(0.0, 5.0), (5.0, 2.0), (6.0, 1.0)]).unwrap()
    }

    /// Closed-form makespan of the paper's instance (DESIGN.md §5):
    /// three configurations split at E = 8 and E = 17.
    fn paper_makespan(e: f64) -> f64 {
        if e >= 17.0 {
            6.0 + (e - 13.0).powf(-0.5)
        } else if e >= 8.0 {
            5.0 + 3.0 * 3f64.sqrt() * (e - 5.0).powf(-0.5)
        } else {
            8f64.powf(1.5) * e.powf(-0.5)
        }
    }

    #[test]
    fn matches_paper_closed_form_across_configurations() {
        let inst = paper_instance();
        let model = PolyPower::CUBE;
        for &e in &[6.0, 7.0, 8.0, 9.5, 12.0, 16.0, 17.0, 18.5, 21.0, 100.0] {
            let sol = laptop(&inst, &model, e).unwrap();
            let want = paper_makespan(e);
            assert!(
                (sol.makespan() - want).abs() < 1e-9,
                "E={e}: got {} want {want}",
                sol.makespan()
            );
            // The optimum uses the entire budget.
            assert!((sol.energy(&model) - e).abs() < 1e-7 * e);
            sol.verify_structure(&inst, 1e-9).unwrap();
            sol.to_schedule(&inst).validate(&inst, 1e-7).unwrap();
        }
    }

    #[test]
    fn configurations_match_paper_breakpoints() {
        let inst = paper_instance();
        let model = PolyPower::CUBE;
        // E > 17: three blocks.
        assert_eq!(laptop(&inst, &model, 18.0).unwrap().blocks().len(), 3);
        // 8 < E < 17: two blocks ({J1}, {J2,J3}).
        let mid = laptop(&inst, &model, 12.0).unwrap();
        assert_eq!(mid.blocks().len(), 2);
        assert_eq!(mid.blocks()[1].first, 1);
        // E < 8: one block.
        assert_eq!(laptop(&inst, &model, 6.0).unwrap().blocks().len(), 1);
    }

    #[test]
    fn single_job() {
        let inst = Instance::from_pairs(&[(2.0, 4.0)]).unwrap();
        let model = PolyPower::CUBE;
        let sol = laptop(&inst, &model, 16.0).unwrap();
        // w·σ² = 16 -> σ = 2; makespan 2 + 4/2 = 4.
        assert_eq!(sol.blocks().len(), 1);
        assert!((sol.blocks()[0].speed - 2.0).abs() < 1e-12);
        assert!((sol.makespan() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn simultaneous_releases_merge() {
        let inst = Instance::from_pairs(&[(0.0, 1.0), (0.0, 2.0), (0.0, 3.0)]).unwrap();
        let model = PolyPower::CUBE;
        let sol = laptop(&inst, &model, 6.0).unwrap();
        // All jobs in one block: work 6, energy 6 -> σ = 1, makespan 6.
        assert_eq!(sol.blocks().len(), 1);
        assert!((sol.makespan() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_budget() {
        let inst = paper_instance();
        assert!(matches!(
            laptop(&inst, &PolyPower::CUBE, 0.0),
            Err(CoreError::InvalidBudget { .. })
        ));
        assert!(laptop(&inst, &PolyPower::CUBE, -3.0).is_err());
        assert!(laptop(&inst, &PolyPower::CUBE, f64::INFINITY).is_err());
    }

    #[test]
    fn tiny_budget_gives_single_slow_block() {
        let inst = paper_instance();
        let model = PolyPower::CUBE;
        let sol = laptop(&inst, &model, 1e-6).unwrap();
        assert_eq!(sol.blocks().len(), 1);
        // Single block: M = 8^{3/2}·E^{-1/2}.
        assert!((sol.makespan() - paper_makespan(1e-6)).abs() < 1e-3);
    }

    #[test]
    fn makespan_decreases_with_budget() {
        let inst = paper_instance();
        let model = PolyPower::CUBE;
        let mut prev = f64::INFINITY;
        for k in 1..60 {
            let e = 0.5 * k as f64;
            let m = laptop(&inst, &model, e).unwrap().makespan();
            assert!(m < prev, "E={e}: {m} !< {prev}");
            prev = m;
        }
    }

    #[test]
    fn server_exact_fit() {
        let inst = paper_instance();
        let model = PolyPower::CUBE;
        // Deadline 6.5 = the E=17 breakpoint: energy must be 17.
        let sol = server(&inst, &model, 6.5).unwrap();
        assert!((sol.makespan() - 6.5).abs() < 1e-12);
        assert!((sol.energy(&model) - 17.0).abs() < 1e-9);
        sol.verify_structure(&inst, 1e-9).unwrap();
    }

    #[test]
    fn server_laptop_duality() {
        // server(laptop(E).makespan) spends exactly E, and vice versa.
        let inst = paper_instance();
        let model = PolyPower::CUBE;
        for &e in &[6.5, 9.0, 14.0, 19.0, 30.0] {
            let lap = laptop(&inst, &model, e).unwrap();
            let srv = server(&inst, &model, lap.makespan()).unwrap();
            assert!(
                (srv.energy(&model) - e).abs() < 1e-7 * e,
                "E={e}: round trip gave {}",
                srv.energy(&model)
            );
        }
    }

    #[test]
    fn server_rejects_impossible_deadline() {
        let inst = paper_instance();
        assert!(matches!(
            server(&inst, &PolyPower::CUBE, 6.0),
            Err(CoreError::UnreachableTarget { .. })
        ));
        assert!(server(&inst, &PolyPower::CUBE, 5.0).is_err());
    }

    #[test]
    fn works_with_general_convex_power() {
        // ExpPower (wireless): same algorithm, numeric inverse path.
        let inst = paper_instance();
        let model = pas_power::ExpPower::shannon();
        let sol = laptop(&inst, &model, 30.0).unwrap();
        sol.verify_structure(&inst, 1e-9).unwrap();
        assert!((sol.energy(&model) - 30.0).abs() < 1e-6);
        // More energy, better makespan.
        let faster = laptop(&inst, &model, 60.0).unwrap();
        assert!(faster.makespan() < sol.makespan());
    }

    #[test]
    fn staircase_merges_into_one_block_under_tight_budget() {
        let inst = pas_workload::generators::staircase(12, 1.0);
        let model = PolyPower::CUBE;
        let sol = laptop(&inst, &model, 1e-4).unwrap();
        assert_eq!(sol.blocks().len(), 1);
        sol.verify_structure(&inst, 1e-9).unwrap();
    }
}
