//! The Yao–Demers–Shenker optimal offline algorithm (YDS).
//!
//! Repeatedly find the **critical interval** — the `[t1, t2]` (release to
//! deadline) maximizing `density = W / available`, where `W` sums the
//! work of jobs whose windows lie inside and `available` discounts time
//! already claimed by earlier critical intervals — run its jobs there at
//! the density speed under EDF, block the interval, and recur on the
//! rest. Instead of the textbook "contract the timeline" step, blocked
//! time is kept explicit (an [`IntervalSet`] of holes), which keeps all
//! coordinates in original time.
//!
//! Optimality (Yao et al. 1995): the resulting speed profile is the
//! unique minimum-energy feasible profile for *every* convex power
//! function simultaneously — which is why the algorithm needs no
//! [`PowerModel`](pas_power::PowerModel) argument.
//!
//! # Two implementations, one contract
//!
//! * [`yds`] — the optimized engine on the `pas-numeric`
//!   [`timeline`](pas_numeric::timeline) substrate. Each round
//!   coordinate-compresses the remaining releases/deadlines
//!   (`O(n log n)`), precomputes the *free-time* coordinate
//!   `F(x) = x − blocked_measure(−∞, x]` at every event via the interval
//!   set's prefix table (`O(n log n)`), then finds the max-density window
//!   with one descending sweep over release ranks that maintains
//!   per-deadline-rank work sums — `O(1)` per (release, deadline)
//!   candidate instead of the naive `O(n)` re-sum, and `O(R·D)` per round
//!   overall (`R`, `D` = distinct remaining releases/deadlines). EDF
//!   inside the chosen window runs on a deadline-keyed [`BinaryHeap`]
//!   with a release pointer: `O(k log k)` for a `k`-job round. With `K`
//!   rounds the whole solve is `O(K·(R·D + n log n))` against the seed's
//!   `O(K·n³)` — the per-candidate work drops from `O(n)` to `O(1)`.
//!   Measured on uniform random instances (`BENCH_yds.json`): 207×
//!   faster at `n = 1024`, 284× at `n = 2000` (1.23 s vs 347.9 s); the
//!   remaining superquadratic term is the `K·R·D` sweep, which the
//!   Li–Yao–Yao `O(n² log n)` structure would amortize away (ROADMAP
//!   open item).
//! * [`yds_reference`] — the seed implementation, kept verbatim as the
//!   oracle: `O(n²)` candidate pairs per round, each re-summing contained
//!   work with an `O(n)` filter, plus an `O(n)`-scan EDF. Property tests
//!   (`tests/yds_equivalence.rs`) hold the two to the same energy within
//!   `1e-9` and the same feasibility across every instance family.

use crate::deadline::job::{DeadlineInstance, DeadlineJob};
use crate::error::CoreError;
use pas_numeric::timeline::{IntervalSet, TimeKey};
use pas_sim::{Schedule, Slice};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One round of the YDS loop.
#[derive(Debug, Clone)]
pub struct YdsRound {
    /// Critical interval start (a release time).
    pub t1: f64,
    /// Critical interval end (a deadline).
    pub t2: f64,
    /// The density = execution speed of this round's jobs.
    pub density: f64,
    /// Ids of the jobs scheduled this round.
    pub jobs: Vec<u32>,
}

/// The full YDS result.
#[derive(Debug, Clone)]
pub struct YdsOutcome {
    /// The executed (preemptive, single-machine) schedule.
    pub schedule: Schedule,
    /// The critical intervals, in selection order (densities
    /// non-increasing).
    pub rounds: Vec<YdsRound>,
}

/// Tolerance for time containment/measure comparisons.
const EPS: f64 = 1e-9;

/// Run YDS on `instance` (optimized timeline engine).
///
/// # Errors
/// [`CoreError::VerificationFailed`] if the internal invariants break
/// (cannot happen for valid instances; kept loud rather than silent).
pub fn yds(instance: &DeadlineInstance) -> Result<YdsOutcome, CoreError> {
    instance.validate()?;
    let mut remaining: Vec<DeadlineJob> = instance.jobs().to_vec();
    let mut blocked = IntervalSet::new();
    let mut rounds = Vec::new();
    let mut slices: Vec<Slice> = Vec::new();

    while !remaining.is_empty() {
        let critical = critical_interval(&remaining, &blocked)?;
        let Critical {
            density, t1, t2, ..
        } = critical;

        // Extract the contained jobs and schedule them by EDF at the
        // density speed inside the available windows of [t1, t2]. The
        // mask comes from the sweep itself, so the extracted set is
        // *exactly* the set whose work the selected density accounts
        // for — an independent tolerance predicate here (exact or
        // EPS-shifted) can disagree with the sweep on sub-EPS-separated
        // event times and either under-speed the round or strand a job
        // in a sub-EPS sliver.
        let mut contained = Vec::new();
        let mut rest = Vec::new();
        for (job, inside) in remaining.into_iter().zip(&critical.contained) {
            if *inside {
                contained.push(job);
            } else {
                rest.push(job);
            }
        }
        remaining = rest;
        let windows = blocked.gaps_between(t1, t2, EPS);
        let round_slices = edf_into_windows(&contained, &windows, density)?;
        slices.extend_from_slice(&round_slices);
        rounds.push(YdsRound {
            t1,
            t2,
            density,
            jobs: contained.iter().map(|j| j.id).collect(),
        });
        blocked.insert(t1, t2, EPS);
    }

    let mut schedule = Schedule::from_slices(slices);
    schedule.coalesce(1e-9);
    instance.validate_schedule(&schedule, 1e-6)?;
    Ok(YdsOutcome { schedule, rounds })
}

/// The selected critical interval plus the per-job containment mask the
/// sweep counted (parallel to the `remaining` slice it was given).
struct Critical {
    density: f64,
    t1: f64,
    t2: f64,
    contained: Vec<bool>,
}

/// Which end of an EPS-chain of event times represents the cluster.
#[derive(Clone, Copy, PartialEq)]
enum ClusterRep {
    /// Largest member — for releases, so windows start *tight*.
    Max,
    /// Smallest member — for deadlines, so windows end *tight*.
    Min,
}

/// Sorted cluster representatives: after sorting, an event time joins
/// the current cluster while it stays within `EPS` of the cluster's
/// *representative* (the anchor, not its immediate predecessor — so a
/// long chain of sub-EPS steps splits once it drifts `> EPS` from the
/// anchor, keeping cluster diameter bounded by `EPS`). Tight
/// representatives (cluster max for releases, min for deadlines) make
/// the engine select the same window the reference's argmax does: among
/// sub-EPS-equivalent windows holding the same work, the reference's
/// strictly-greater density comparison always keeps the narrowest one.
fn clustered(times: impl Iterator<Item = f64>, rep: ClusterRep) -> Vec<f64> {
    let mut times: Vec<f64> = times.collect();
    times.sort_by(f64::total_cmp);
    match rep {
        ClusterRep::Min => times.dedup_by(|a, b| *a - *b <= EPS),
        ClusterRep::Max => {
            // Keep the last member of each chain: dedup backwards.
            times.reverse();
            times.dedup_by(|a, b| *b - *a <= EPS);
            times.reverse();
        }
    }
    times
}

/// Rank of the cluster containing `t` (every queried `t` is a member of
/// some cluster by construction).
fn cluster_rank(reps: &[f64], t: f64, rep: ClusterRep) -> usize {
    match rep {
        // Representative is the cluster min: last rep at or below `t`.
        ClusterRep::Min => reps.partition_point(|&r| r <= t) - 1,
        // Representative is the cluster max: first rep at or above `t`.
        ClusterRep::Max => reps.partition_point(|&r| r < t),
    }
}

/// Find the max-density `(release, deadline)` window of `remaining`
/// against the blocked set, in `O(R·D)` after `O(n log n)` setup.
///
/// Event times are EPS-clustered (see [`clustered`]) so that jobs whose
/// windows differ by less than the tolerance share coordinates, exactly
/// as the reference's `± EPS` filter treats them. The sweep walks
/// release ranks *descending*, folding each release's jobs into a
/// per-deadline-rank work table, so the inner ascending deadline scan
/// reads off `W(t1, t2)` as a running sum. Availability comes from the
/// precomputed free-time coordinate `F`: for any pair,
/// `avail = F(t2) − F(t1)`.
fn critical_interval(
    remaining: &[DeadlineJob],
    blocked: &IntervalSet,
) -> Result<Critical, CoreError> {
    let releases = clustered(remaining.iter().map(|j| j.release), ClusterRep::Max);
    let deadlines = clustered(remaining.iter().map(|j| j.deadline), ClusterRep::Min);
    let r_rank: Vec<usize> = remaining
        .iter()
        .map(|j| cluster_rank(&releases, j.release, ClusterRep::Max))
        .collect();
    let d_rank: Vec<usize> = remaining
        .iter()
        .map(|j| cluster_rank(&deadlines, j.deadline, ClusterRep::Min))
        .collect();
    let free_at = |t: f64| t - blocked.coverage_up_to(t);
    let free_r: Vec<f64> = releases.iter().map(|&t| free_at(t)).collect();
    let free_d: Vec<f64> = deadlines.iter().map(|&t| free_at(t)).collect();

    // Job indices sorted by release rank descending, consumed as the
    // sweep passes their rank.
    let mut by_release: Vec<usize> = (0..remaining.len()).collect();
    by_release.sort_by(|&a, &b| r_rank[b].cmp(&r_rank[a]));
    let mut next = 0usize;

    let mut work_at = vec![0.0f64; deadlines.len()];
    let mut best: Option<(f64, usize, usize)> = None; // (density, ri, di)
    for ri in (0..releases.len()).rev() {
        let t1 = releases[ri];
        while next < by_release.len() && r_rank[by_release[next]] >= ri {
            let k = by_release[next];
            work_at[d_rank[k]] += remaining[k].work;
            next += 1;
        }
        let f1 = free_r[ri];
        let mut work = 0.0f64;
        for di in 0..deadlines.len() {
            work += work_at[di];
            let t2 = deadlines[di];
            if t2 <= t1 + EPS || work <= 0.0 {
                continue;
            }
            let avail = free_d[di] - f1;
            if avail <= EPS {
                return Err(CoreError::VerificationFailed {
                    reason: format!(
                        "YDS: window [{t1}, {t2}] has work {work} but no available time"
                    ),
                });
            }
            let density = work / avail;
            if best.is_none_or(|(d, ..)| density > d) {
                best = Some((density, ri, di));
            }
        }
    }
    let Some((density, ri, di)) = best else {
        return Err(CoreError::VerificationFailed {
            reason: "YDS: no candidate interval found".to_string(),
        });
    };
    let contained = (0..remaining.len())
        .map(|k| r_rank[k] >= ri && d_rank[k] <= di)
        .collect();
    Ok(Critical {
        density,
        t1: releases[ri],
        t2: deadlines[di],
        contained,
    })
}

/// Preemptive EDF of `jobs` at constant `speed` inside `windows`, on a
/// deadline-keyed binary heap with a release-event pointer:
/// `O(k log k)` for `k` jobs instead of the seed's `O(k)` ready-scan per
/// slice. Slices may split at release events even without preemption;
/// [`Schedule::coalesce`] re-merges them, so the executed schedule
/// matches the reference scan exactly.
fn edf_into_windows(
    jobs: &[DeadlineJob],
    windows: &[(f64, f64)],
    speed: f64,
) -> Result<Vec<Slice>, CoreError> {
    let mut order: Vec<usize> = (0..jobs.len()).collect();
    order.sort_by(|&a, &b| jobs[a].release.total_cmp(&jobs[b].release));
    let mut remaining: Vec<f64> = jobs.iter().map(|j| j.work).collect();
    let mut heap: BinaryHeap<Reverse<TimeKey>> = BinaryHeap::with_capacity(jobs.len());
    let mut next = 0usize; // pointer into `order`
    let mut slices = Vec::new();

    for &(a, b) in windows {
        let mut t = a;
        while t < b - EPS {
            while next < order.len() && jobs[order[next]].release <= t + EPS {
                let k = order[next];
                heap.push(Reverse(TimeKey::new(jobs[k].deadline, k)));
                next += 1;
            }
            let Some(&Reverse(top)) = heap.peek() else {
                // Idle: jump to the next release inside this window.
                match order.get(next) {
                    Some(&k) if jobs[k].release < b => t = jobs[k].release,
                    _ => break,
                }
                continue;
            };
            let k = top.index();
            let next_release = order
                .get(next)
                .map_or(f64::INFINITY, |&k2| jobs[k2].release);
            let until = (t + remaining[k] / speed).min(b).min(next_release.max(t));
            if until <= t + EPS {
                // Numerical corner: force progress.
                remaining[k] = 0.0;
                heap.pop();
                continue;
            }
            slices.push(Slice::new(jobs[k].id, t, until, speed));
            remaining[k] -= speed * (until - t);
            if remaining[k] <= EPS {
                remaining[k] = 0.0;
                heap.pop();
            }
            t = until;
        }
    }
    if let Some(k) = remaining.iter().position(|&r| r > 1e-6) {
        return Err(CoreError::VerificationFailed {
            reason: format!(
                "YDS EDF: job {} has {} work left in its critical interval",
                jobs[k].id, remaining[k]
            ),
        });
    }
    Ok(slices)
}

/// Run YDS on `instance` — the seed `O(n⁴)` implementation, kept as the
/// oracle for the optimized engine (see the module docs).
///
/// # Errors
/// [`CoreError::VerificationFailed`] if the internal invariants break
/// (cannot happen for valid instances; kept loud rather than silent).
pub fn yds_reference(instance: &DeadlineInstance) -> Result<YdsOutcome, CoreError> {
    instance.validate()?;
    let mut remaining: Vec<DeadlineJob> = instance.jobs().to_vec();
    let mut blocked: Vec<(f64, f64)> = Vec::new();
    let mut rounds = Vec::new();
    let mut slices: Vec<Slice> = Vec::new();

    while !remaining.is_empty() {
        // Candidate interval endpoints.
        let mut releases: Vec<f64> = remaining.iter().map(|j| j.release).collect();
        let mut deadlines: Vec<f64> = remaining.iter().map(|j| j.deadline).collect();
        releases.sort_by(f64::total_cmp);
        releases.dedup();
        deadlines.sort_by(f64::total_cmp);
        deadlines.dedup();

        let mut best: Option<(f64, f64, f64, f64)> = None; // (density, t1, t2, work)
        for &t1 in &releases {
            for &t2 in deadlines.iter().filter(|&&d| d > t1 + EPS) {
                let work: f64 = remaining
                    .iter()
                    .filter(|j| j.release >= t1 - EPS && j.deadline <= t2 + EPS)
                    .map(|j| j.work)
                    .sum();
                if work <= 0.0 {
                    continue;
                }
                let avail = (t2 - t1) - blocked_measure(&blocked, t1, t2);
                if avail <= EPS {
                    return Err(CoreError::VerificationFailed {
                        reason: format!(
                            "YDS: window [{t1}, {t2}] has work {work} but no available time"
                        ),
                    });
                }
                let density = work / avail;
                if best.is_none_or(|(d, ..)| density > d) {
                    best = Some((density, t1, t2, work));
                }
            }
        }
        let Some((density, t1, t2, _)) = best else {
            return Err(CoreError::VerificationFailed {
                reason: "YDS: no candidate interval found".to_string(),
            });
        };

        // Extract the contained jobs and schedule them by EDF at the
        // density speed inside the available windows of [t1, t2].
        let (contained, rest): (Vec<_>, Vec<_>) = remaining
            .into_iter()
            .partition(|j| j.release >= t1 - EPS && j.deadline <= t2 + EPS);
        remaining = rest;
        let windows = available_windows(&blocked, t1, t2);
        let round_slices = edf_into_windows_scan(&contained, &windows, density)?;
        slices.extend_from_slice(&round_slices);
        rounds.push(YdsRound {
            t1,
            t2,
            density,
            jobs: contained.iter().map(|j| j.id).collect(),
        });
        block_interval(&mut blocked, t1, t2);
    }

    let mut schedule = Schedule::from_slices(slices);
    schedule.coalesce(1e-9);
    instance.validate_schedule(&schedule, 1e-6)?;
    Ok(YdsOutcome { schedule, rounds })
}

/// Total blocked measure within `[t1, t2]` (reference path).
fn blocked_measure(blocked: &[(f64, f64)], t1: f64, t2: f64) -> f64 {
    blocked
        .iter()
        .map(|&(a, b)| (b.min(t2) - a.max(t1)).max(0.0))
        .sum()
}

/// The maximal free sub-intervals of `[t1, t2]` (reference path).
fn available_windows(blocked: &[(f64, f64)], t1: f64, t2: f64) -> Vec<(f64, f64)> {
    let mut windows = Vec::new();
    let mut cursor = t1;
    for &(a, b) in blocked {
        // blocked is kept sorted and disjoint.
        if b <= t1 || a >= t2 {
            continue;
        }
        if a > cursor {
            windows.push((cursor, a.min(t2)));
        }
        cursor = cursor.max(b);
        if cursor >= t2 {
            break;
        }
    }
    if cursor < t2 {
        windows.push((cursor, t2));
    }
    windows.retain(|&(a, b)| b - a > EPS);
    windows
}

/// Merge `[t1, t2]` into the sorted disjoint blocked list (reference
/// path).
fn block_interval(blocked: &mut Vec<(f64, f64)>, t1: f64, t2: f64) {
    blocked.push((t1, t2));
    blocked.sort_by(|x, y| x.0.total_cmp(&y.0));
    let mut merged: Vec<(f64, f64)> = Vec::with_capacity(blocked.len());
    for &(a, b) in blocked.iter() {
        if let Some(last) = merged.last_mut() {
            if a <= last.1 + EPS {
                last.1 = last.1.max(b);
                continue;
            }
        }
        merged.push((a, b));
    }
    *blocked = merged;
}

/// Preemptive EDF of `jobs` at constant `speed` inside `windows` —
/// the seed `O(n)`-ready-scan-per-slice version (reference path).
fn edf_into_windows_scan(
    jobs: &[DeadlineJob],
    windows: &[(f64, f64)],
    speed: f64,
) -> Result<Vec<Slice>, CoreError> {
    let mut remaining: Vec<f64> = jobs.iter().map(|j| j.work).collect();
    let mut slices = Vec::new();
    for &(a, b) in windows {
        let mut t = a;
        while t < b - EPS {
            // Ready: released, unfinished; earliest deadline first.
            let next = jobs
                .iter()
                .enumerate()
                .filter(|(k, j)| remaining[*k] > EPS && j.release <= t + EPS)
                .min_by(|x, y| x.1.deadline.total_cmp(&y.1.deadline));
            match next {
                None => {
                    // Jump to the next release inside this window.
                    let upcoming = jobs
                        .iter()
                        .enumerate()
                        .filter(|(k, j)| remaining[*k] > EPS && j.release > t)
                        .map(|(_, j)| j.release)
                        .fold(f64::INFINITY, f64::min);
                    if upcoming >= b {
                        break;
                    }
                    t = upcoming;
                }
                Some((k, job)) => {
                    let finish_in = remaining[k] / speed;
                    let until = (t + finish_in).min(b);
                    // Preempt when a shorter-deadline job is released.
                    let preempt_at = jobs
                        .iter()
                        .enumerate()
                        .filter(|(k2, j2)| {
                            remaining[*k2] > EPS
                                && j2.release > t
                                && j2.release < until
                                && j2.deadline < job.deadline
                        })
                        .map(|(_, j2)| j2.release)
                        .fold(f64::INFINITY, f64::min);
                    let until = until.min(preempt_at);
                    if until <= t + EPS {
                        // Numerical corner: force progress.
                        remaining[k] = 0.0;
                        continue;
                    }
                    slices.push(Slice::new(job.id, t, until, speed));
                    remaining[k] -= speed * (until - t);
                    t = until;
                }
            }
        }
    }
    if let Some(k) = remaining.iter().position(|&r| r > 1e-6) {
        return Err(CoreError::VerificationFailed {
            reason: format!(
                "YDS EDF: job {} has {} work left in its critical interval",
                jobs[k].id, remaining[k]
            ),
        });
    }
    Ok(slices)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pas_power::{PolyPower, PowerModel};
    use pas_sim::metrics;

    fn energy(outcome: &YdsOutcome, alpha: f64) -> f64 {
        metrics::energy(&outcome.schedule, &PolyPower::new(alpha))
    }

    #[test]
    fn single_job_runs_at_its_density() {
        let inst = DeadlineInstance::new(vec![DeadlineJob::new(0, 1.0, 5.0, 8.0)]).unwrap();
        let out = yds(&inst).unwrap();
        assert_eq!(out.rounds.len(), 1);
        assert!((out.rounds[0].density - 2.0).abs() < 1e-12);
        // Energy under σ³: P(2)·4s = 8·4 = 32.
        assert!((energy(&out, 3.0) - 32.0).abs() < 1e-9);
    }

    #[test]
    fn nested_windows_hand_computed() {
        // Outer job [0, 10] w=2; inner job [4, 6] w=4 (density 2).
        // Critical interval: [4,6] at speed 2. Outer then has 8 units of
        // free time ([0,4] ∪ [6,10]) for 2 work: speed 0.25.
        let inst = DeadlineInstance::new(vec![
            DeadlineJob::new(0, 0.0, 10.0, 2.0),
            DeadlineJob::new(1, 4.0, 6.0, 4.0),
        ])
        .unwrap();
        let out = yds(&inst).unwrap();
        assert_eq!(out.rounds.len(), 2);
        assert!((out.rounds[0].density - 2.0).abs() < 1e-12);
        assert!((out.rounds[1].density - 0.25).abs() < 1e-12);
        // The outer job is split around the hole.
        let speeds = out.schedule.job_speeds(1e-9);
        assert_eq!(speeds[&0], Some(0.25));
        assert_eq!(speeds[&1], Some(2.0));
    }

    #[test]
    fn round_densities_are_non_increasing() {
        for seed in 0..10 {
            let inst = DeadlineInstance::random(20, 20.0, (0.5, 6.0), (0.2, 3.0), seed);
            let out = yds(&inst).unwrap();
            for pair in out.rounds.windows(2) {
                assert!(
                    pair[0].density >= pair[1].density - 1e-9,
                    "seed {seed}: densities increased"
                );
            }
        }
    }

    #[test]
    fn respects_energy_lower_bound_certificates() {
        // Two Jensen-style lower bounds every feasible schedule obeys:
        // (a) per job, its average speed is at least its density, so
        //     OPT >= Σ w_i·g(density_i);
        // (b) per candidate interval, the contained work must run inside
        //     it, so OPT >= W·g(W/length).
        for seed in 0..10 {
            let inst = DeadlineInstance::random(15, 12.0, (0.5, 5.0), (0.2, 2.0), seed);
            let out = yds(&inst).unwrap();
            let model = PolyPower::CUBE;
            let yds_energy = energy(&out, 3.0);
            let per_job_bound: f64 = inst
                .jobs()
                .iter()
                .map(|j| model.energy(j.work, j.density()))
                .sum();
            assert!(
                yds_energy >= per_job_bound - 1e-6,
                "seed {seed}: YDS {yds_energy} below bound {per_job_bound}"
            );
            for a in inst.jobs() {
                for b in inst.jobs() {
                    if b.deadline > a.release {
                        let w: f64 = inst
                            .jobs()
                            .iter()
                            .filter(|j| j.release >= a.release && j.deadline <= b.deadline)
                            .map(|j| j.work)
                            .sum();
                        if w > 0.0 {
                            let bound = model.energy(w, w / (b.deadline - a.release));
                            assert!(
                                yds_energy >= bound - 1e-6,
                                "seed {seed}: YDS {yds_energy} below bound {bound}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn schedules_validate_and_meet_deadlines() {
        for seed in 0..20 {
            let inst = DeadlineInstance::random(25, 30.0, (0.5, 8.0), (0.1, 2.5), seed);
            let out = yds(&inst).unwrap();
            inst.validate_schedule(&out.schedule, 1e-6).unwrap();
        }
    }

    #[test]
    fn disjoint_jobs_each_at_own_density() {
        let inst = DeadlineInstance::new(vec![
            DeadlineJob::new(0, 0.0, 1.0, 3.0),
            DeadlineJob::new(1, 5.0, 7.0, 1.0),
        ])
        .unwrap();
        let out = yds(&inst).unwrap();
        let speeds = out.schedule.job_speeds(1e-9);
        assert_eq!(speeds[&0], Some(3.0));
        assert_eq!(speeds[&1], Some(0.5));
    }

    #[test]
    fn identical_windows_pool() {
        // Three jobs sharing [0, 3]: one round at speed (sum work)/3.
        let inst = DeadlineInstance::new(vec![
            DeadlineJob::new(0, 0.0, 3.0, 1.0),
            DeadlineJob::new(1, 0.0, 3.0, 2.0),
            DeadlineJob::new(2, 0.0, 3.0, 3.0),
        ])
        .unwrap();
        let out = yds(&inst).unwrap();
        assert_eq!(out.rounds.len(), 1);
        assert!((out.rounds[0].density - 2.0).abs() < 1e-12);
    }

    #[test]
    fn reference_matches_on_the_hand_computed_cases() {
        for inst in [
            DeadlineInstance::new(vec![DeadlineJob::new(0, 1.0, 5.0, 8.0)]).unwrap(),
            DeadlineInstance::new(vec![
                DeadlineJob::new(0, 0.0, 10.0, 2.0),
                DeadlineJob::new(1, 4.0, 6.0, 4.0),
            ])
            .unwrap(),
            DeadlineInstance::new(vec![
                DeadlineJob::new(0, 0.0, 1.0, 3.0),
                DeadlineJob::new(1, 5.0, 7.0, 1.0),
            ])
            .unwrap(),
        ] {
            let fast = yds(&inst).unwrap();
            let slow = yds_reference(&inst).unwrap();
            assert_eq!(fast.rounds.len(), slow.rounds.len());
            let e_fast = energy(&fast, 3.0);
            let e_slow = energy(&slow, 3.0);
            assert!(
                (e_fast - e_slow).abs() <= 1e-9 * e_slow.max(1.0),
                "fast {e_fast} vs reference {e_slow}"
            );
        }
    }

    #[test]
    fn sub_eps_event_separation_matches_reference() {
        // Event times closer than the engine's EPS must cluster: a
        // sliver job whose deadline is 1e-10 past the main one may not
        // strand in a sub-EPS window (which hard-errors), and a job
        // released 5e-10 early must have its work counted by the round
        // that extracts it.
        for jobs in [
            vec![
                DeadlineJob::new(0, 0.0, 1.0, 1.0),
                DeadlineJob::new(1, 0.0, 1.0 + 1e-10, 1e-12),
            ],
            vec![
                DeadlineJob::new(0, 1.0, 2.0, 1.0),
                DeadlineJob::new(1, 1.0 - 5e-10, 2.0, 1e-12),
            ],
        ] {
            let inst = DeadlineInstance::new(jobs).unwrap();
            let fast = yds(&inst).expect("optimized engine handles sub-EPS separation");
            let slow = yds_reference(&inst).unwrap();
            let e_fast = energy(&fast, 3.0);
            let e_slow = energy(&slow, 3.0);
            assert!(
                (e_fast - e_slow).abs() <= 1e-9 * e_slow.max(1.0),
                "fast {e_fast} vs reference {e_slow}"
            );
        }
    }

    #[test]
    fn optimized_and_reference_agree_on_random_instances() {
        for seed in 0..10 {
            let inst = DeadlineInstance::random(18, 18.0, (0.5, 6.0), (0.2, 3.0), seed);
            let fast = yds(&inst).unwrap();
            let slow = yds_reference(&inst).unwrap();
            let e_fast = energy(&fast, 3.0);
            let e_slow = energy(&slow, 3.0);
            assert!(
                (e_fast - e_slow).abs() <= 1e-9 * e_slow.max(1.0),
                "seed {seed}: fast {e_fast} vs reference {e_slow}"
            );
        }
    }
}
