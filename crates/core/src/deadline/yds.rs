//! The Yao–Demers–Shenker optimal offline algorithm (YDS).
//!
//! Repeatedly find the **critical interval** — the `[t1, t2]` (release to
//! deadline) maximizing `density = W / available`, where `W` sums the
//! work of jobs whose windows lie inside and `available` discounts time
//! already claimed by earlier critical intervals — run its jobs there at
//! the density speed under EDF, block the interval, and recur on the
//! rest. Instead of the textbook "contract the timeline" step, blocked
//! time is kept explicit (a sorted list of holes), which keeps all
//! coordinates in original time.
//!
//! Optimality (Yao et al. 1995): the resulting speed profile is the
//! unique minimum-energy feasible profile for *every* convex power
//! function simultaneously — which is why the algorithm needs no
//! [`PowerModel`](pas_power::PowerModel) argument.

use crate::deadline::job::{DeadlineInstance, DeadlineJob};
use crate::error::CoreError;
use pas_sim::{Schedule, Slice};

/// One round of the YDS loop.
#[derive(Debug, Clone)]
pub struct YdsRound {
    /// Critical interval start (a release time).
    pub t1: f64,
    /// Critical interval end (a deadline).
    pub t2: f64,
    /// The density = execution speed of this round's jobs.
    pub density: f64,
    /// Ids of the jobs scheduled this round.
    pub jobs: Vec<u32>,
}

/// The full YDS result.
#[derive(Debug, Clone)]
pub struct YdsOutcome {
    /// The executed (preemptive, single-machine) schedule.
    pub schedule: Schedule,
    /// The critical intervals, in selection order (densities
    /// non-increasing).
    pub rounds: Vec<YdsRound>,
}

/// Tolerance for time containment/measure comparisons.
const EPS: f64 = 1e-9;

/// Run YDS on `instance`.
///
/// # Errors
/// [`CoreError::VerificationFailed`] if the internal invariants break
/// (cannot happen for valid instances; kept loud rather than silent).
pub fn yds(instance: &DeadlineInstance) -> Result<YdsOutcome, CoreError> {
    let mut remaining: Vec<DeadlineJob> = instance.jobs().to_vec();
    let mut blocked: Vec<(f64, f64)> = Vec::new();
    let mut rounds = Vec::new();
    let mut slices: Vec<Slice> = Vec::new();

    while !remaining.is_empty() {
        // Candidate interval endpoints.
        let mut releases: Vec<f64> = remaining.iter().map(|j| j.release).collect();
        let mut deadlines: Vec<f64> = remaining.iter().map(|j| j.deadline).collect();
        releases.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        releases.dedup();
        deadlines.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        deadlines.dedup();

        let mut best: Option<(f64, f64, f64, f64)> = None; // (density, t1, t2, work)
        for &t1 in &releases {
            for &t2 in deadlines.iter().filter(|&&d| d > t1 + EPS) {
                let work: f64 = remaining
                    .iter()
                    .filter(|j| j.release >= t1 - EPS && j.deadline <= t2 + EPS)
                    .map(|j| j.work)
                    .sum();
                if work <= 0.0 {
                    continue;
                }
                let avail = (t2 - t1) - blocked_measure(&blocked, t1, t2);
                if avail <= EPS {
                    return Err(CoreError::VerificationFailed {
                        reason: format!(
                            "YDS: window [{t1}, {t2}] has work {work} but no available time"
                        ),
                    });
                }
                let density = work / avail;
                if best.is_none_or(|(d, ..)| density > d) {
                    best = Some((density, t1, t2, work));
                }
            }
        }
        let Some((density, t1, t2, _)) = best else {
            return Err(CoreError::VerificationFailed {
                reason: "YDS: no candidate interval found".to_string(),
            });
        };

        // Extract the contained jobs and schedule them by EDF at the
        // density speed inside the available windows of [t1, t2].
        let (contained, rest): (Vec<_>, Vec<_>) = remaining
            .into_iter()
            .partition(|j| j.release >= t1 - EPS && j.deadline <= t2 + EPS);
        remaining = rest;
        let windows = available_windows(&blocked, t1, t2);
        let round_slices = edf_into_windows(&contained, &windows, density)?;
        slices.extend_from_slice(&round_slices);
        rounds.push(YdsRound {
            t1,
            t2,
            density,
            jobs: contained.iter().map(|j| j.id).collect(),
        });
        block_interval(&mut blocked, t1, t2);
    }

    let mut schedule = Schedule::from_slices(slices);
    schedule.coalesce(1e-9);
    instance.validate_schedule(&schedule, 1e-6)?;
    Ok(YdsOutcome { schedule, rounds })
}

/// Total blocked measure within `[t1, t2]`.
fn blocked_measure(blocked: &[(f64, f64)], t1: f64, t2: f64) -> f64 {
    blocked
        .iter()
        .map(|&(a, b)| (b.min(t2) - a.max(t1)).max(0.0))
        .sum()
}

/// The maximal free sub-intervals of `[t1, t2]`.
fn available_windows(blocked: &[(f64, f64)], t1: f64, t2: f64) -> Vec<(f64, f64)> {
    let mut windows = Vec::new();
    let mut cursor = t1;
    for &(a, b) in blocked {
        // blocked is kept sorted and disjoint.
        if b <= t1 || a >= t2 {
            continue;
        }
        if a > cursor {
            windows.push((cursor, a.min(t2)));
        }
        cursor = cursor.max(b);
        if cursor >= t2 {
            break;
        }
    }
    if cursor < t2 {
        windows.push((cursor, t2));
    }
    windows.retain(|&(a, b)| b - a > EPS);
    windows
}

/// Merge `[t1, t2]` into the sorted disjoint blocked list.
fn block_interval(blocked: &mut Vec<(f64, f64)>, t1: f64, t2: f64) {
    blocked.push((t1, t2));
    blocked.sort_by(|x, y| x.0.partial_cmp(&y.0).expect("finite"));
    let mut merged: Vec<(f64, f64)> = Vec::with_capacity(blocked.len());
    for &(a, b) in blocked.iter() {
        if let Some(last) = merged.last_mut() {
            if a <= last.1 + EPS {
                last.1 = last.1.max(b);
                continue;
            }
        }
        merged.push((a, b));
    }
    *blocked = merged;
}

/// Preemptive EDF of `jobs` at constant `speed` inside `windows`.
fn edf_into_windows(
    jobs: &[DeadlineJob],
    windows: &[(f64, f64)],
    speed: f64,
) -> Result<Vec<Slice>, CoreError> {
    let mut remaining: Vec<f64> = jobs.iter().map(|j| j.work).collect();
    let mut slices = Vec::new();
    for &(a, b) in windows {
        let mut t = a;
        while t < b - EPS {
            // Ready: released, unfinished; earliest deadline first.
            let next = jobs
                .iter()
                .enumerate()
                .filter(|(k, j)| remaining[*k] > EPS && j.release <= t + EPS)
                .min_by(|x, y| {
                    x.1.deadline
                        .partial_cmp(&y.1.deadline)
                        .expect("finite deadlines")
                });
            match next {
                None => {
                    // Jump to the next release inside this window.
                    let upcoming = jobs
                        .iter()
                        .enumerate()
                        .filter(|(k, j)| remaining[*k] > EPS && j.release > t)
                        .map(|(_, j)| j.release)
                        .fold(f64::INFINITY, f64::min);
                    if upcoming >= b {
                        break;
                    }
                    t = upcoming;
                }
                Some((k, job)) => {
                    let finish_in = remaining[k] / speed;
                    let until = (t + finish_in).min(b);
                    // Preempt when a shorter-deadline job is released.
                    let preempt_at = jobs
                        .iter()
                        .enumerate()
                        .filter(|(k2, j2)| {
                            remaining[*k2] > EPS
                                && j2.release > t
                                && j2.release < until
                                && j2.deadline < job.deadline
                        })
                        .map(|(_, j2)| j2.release)
                        .fold(f64::INFINITY, f64::min);
                    let until = until.min(preempt_at);
                    if until <= t + EPS {
                        // Numerical corner: force progress.
                        remaining[k] = 0.0;
                        continue;
                    }
                    slices.push(Slice::new(job.id, t, until, speed));
                    remaining[k] -= speed * (until - t);
                    t = until;
                }
            }
        }
    }
    if let Some(k) = remaining.iter().position(|&r| r > 1e-6) {
        return Err(CoreError::VerificationFailed {
            reason: format!(
                "YDS EDF: job {} has {} work left in its critical interval",
                jobs[k].id, remaining[k]
            ),
        });
    }
    Ok(slices)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pas_power::{PolyPower, PowerModel};
    use pas_sim::metrics;

    fn energy(outcome: &YdsOutcome, alpha: f64) -> f64 {
        metrics::energy(&outcome.schedule, &PolyPower::new(alpha))
    }

    #[test]
    fn single_job_runs_at_its_density() {
        let inst =
            DeadlineInstance::new(vec![DeadlineJob::new(0, 1.0, 5.0, 8.0)]).unwrap();
        let out = yds(&inst).unwrap();
        assert_eq!(out.rounds.len(), 1);
        assert!((out.rounds[0].density - 2.0).abs() < 1e-12);
        // Energy under σ³: P(2)·4s = 8·4 = 32.
        assert!((energy(&out, 3.0) - 32.0).abs() < 1e-9);
    }

    #[test]
    fn nested_windows_hand_computed() {
        // Outer job [0, 10] w=2; inner job [4, 6] w=4 (density 2).
        // Critical interval: [4,6] at speed 2. Outer then has 8 units of
        // free time ([0,4] ∪ [6,10]) for 2 work: speed 0.25.
        let inst = DeadlineInstance::new(vec![
            DeadlineJob::new(0, 0.0, 10.0, 2.0),
            DeadlineJob::new(1, 4.0, 6.0, 4.0),
        ])
        .unwrap();
        let out = yds(&inst).unwrap();
        assert_eq!(out.rounds.len(), 2);
        assert!((out.rounds[0].density - 2.0).abs() < 1e-12);
        assert!((out.rounds[1].density - 0.25).abs() < 1e-12);
        // The outer job is split around the hole.
        let speeds = out.schedule.job_speeds(1e-9);
        assert_eq!(speeds[&0], Some(0.25));
        assert_eq!(speeds[&1], Some(2.0));
    }

    #[test]
    fn round_densities_are_non_increasing() {
        for seed in 0..10 {
            let inst = DeadlineInstance::random(20, 20.0, (0.5, 6.0), (0.2, 3.0), seed);
            let out = yds(&inst).unwrap();
            for pair in out.rounds.windows(2) {
                assert!(
                    pair[0].density >= pair[1].density - 1e-9,
                    "seed {seed}: densities increased"
                );
            }
        }
    }

    #[test]
    fn respects_energy_lower_bound_certificates() {
        // Two Jensen-style lower bounds every feasible schedule obeys:
        // (a) per job, its average speed is at least its density, so
        //     OPT >= Σ w_i·g(density_i);
        // (b) per candidate interval, the contained work must run inside
        //     it, so OPT >= W·g(W/length).
        for seed in 0..10 {
            let inst = DeadlineInstance::random(15, 12.0, (0.5, 5.0), (0.2, 2.0), seed);
            let out = yds(&inst).unwrap();
            let model = PolyPower::CUBE;
            let yds_energy = energy(&out, 3.0);
            let per_job_bound: f64 = inst
                .jobs()
                .iter()
                .map(|j| model.energy(j.work, j.density()))
                .sum();
            assert!(
                yds_energy >= per_job_bound - 1e-6,
                "seed {seed}: YDS {yds_energy} below bound {per_job_bound}"
            );
            for a in inst.jobs() {
                for b in inst.jobs() {
                    if b.deadline > a.release {
                        let w: f64 = inst
                            .jobs()
                            .iter()
                            .filter(|j| j.release >= a.release && j.deadline <= b.deadline)
                            .map(|j| j.work)
                            .sum();
                        if w > 0.0 {
                            let bound =
                                model.energy(w, w / (b.deadline - a.release));
                            assert!(
                                yds_energy >= bound - 1e-6,
                                "seed {seed}: YDS {yds_energy} below bound {bound}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn schedules_validate_and_meet_deadlines() {
        for seed in 0..20 {
            let inst = DeadlineInstance::random(25, 30.0, (0.5, 8.0), (0.1, 2.5), seed);
            let out = yds(&inst).unwrap();
            inst.validate_schedule(&out.schedule, 1e-6).unwrap();
        }
    }

    #[test]
    fn disjoint_jobs_each_at_own_density() {
        let inst = DeadlineInstance::new(vec![
            DeadlineJob::new(0, 0.0, 1.0, 3.0),
            DeadlineJob::new(1, 5.0, 7.0, 1.0),
        ])
        .unwrap();
        let out = yds(&inst).unwrap();
        let speeds = out.schedule.job_speeds(1e-9);
        assert_eq!(speeds[&0], Some(3.0));
        assert_eq!(speeds[&1], Some(0.5));
    }

    #[test]
    fn identical_windows_pool() {
        // Three jobs sharing [0, 3]: one round at speed (sum work)/3.
        let inst = DeadlineInstance::new(vec![
            DeadlineJob::new(0, 0.0, 3.0, 1.0),
            DeadlineJob::new(1, 0.0, 3.0, 2.0),
            DeadlineJob::new(2, 0.0, 3.0, 3.0),
        ])
        .unwrap();
        let out = yds(&inst).unwrap();
        assert_eq!(out.rounds.len(), 1);
        assert!((out.rounds[0].density - 2.0).abs() < 1e-12);
    }
}
