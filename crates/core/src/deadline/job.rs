//! Jobs with deadlines and their instances.

use crate::error::CoreError;
use pas_sim::Schedule;
use rand::distributions::{Distribution, Uniform};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

/// A job in the Yao–Demers–Shenker model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeadlineJob {
    /// Caller-facing identifier.
    pub id: u32,
    /// Release time.
    pub release: f64,
    /// Deadline (`> release`).
    pub deadline: f64,
    /// Work requirement (`> 0`).
    pub work: f64,
}

impl DeadlineJob {
    /// Construct a deadline job.
    pub fn new(id: u32, release: f64, deadline: f64, work: f64) -> Self {
        DeadlineJob {
            id,
            release,
            deadline,
            work,
        }
    }

    /// The job's *density*: work per unit of window.
    pub fn density(&self) -> f64 {
        self.work / (self.deadline - self.release)
    }

    fn is_valid(&self) -> bool {
        self.release.is_finite()
            && self.release >= 0.0
            && self.deadline.is_finite()
            && self.deadline > self.release
            && self.work.is_finite()
            && self.work > 0.0
    }
}

/// Validation failures when building a [`DeadlineInstance`] — the typed
/// mirror of `pas_workload::InstanceError` for the YDS model, so callers
/// can branch on the failure kind instead of parsing a
/// `VerificationFailed` message.
#[derive(Debug, Clone, PartialEq)]
pub enum DeadlineError {
    /// The job list was empty.
    Empty,
    /// A job had a NaN/±inf field, non-positive work, or a deadline at
    /// or before its release.
    InvalidJob {
        /// Index (in the caller's order) of the offending job.
        index: usize,
        /// The offending job.
        job: DeadlineJob,
    },
    /// Two jobs share the same `id`.
    DuplicateId {
        /// The duplicated identifier.
        id: u32,
    },
}

impl std::fmt::Display for DeadlineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeadlineError::Empty => write!(f, "deadline instance has no jobs"),
            DeadlineError::InvalidJob { index, job } => write!(
                f,
                "deadline job #{index} is invalid (needs finite times, \
                 deadline > release, work > 0): {job:?}"
            ),
            DeadlineError::DuplicateId { id } => write!(f, "duplicate deadline job id {id}"),
        }
    }
}

impl std::error::Error for DeadlineError {}

/// A validated deadline-scheduling instance, sorted by release time.
#[derive(Debug, Clone, PartialEq)]
pub struct DeadlineInstance {
    jobs: Vec<DeadlineJob>,
}

impl DeadlineInstance {
    /// Build an instance (sorts by release; validates each job and id
    /// uniqueness).
    ///
    /// # Errors
    /// [`CoreError::Deadline`] naming the offending job (with the
    /// [`DeadlineError`] as its `source()`).
    pub fn new(mut jobs: Vec<DeadlineJob>) -> Result<Self, CoreError> {
        if jobs.is_empty() {
            return Err(DeadlineError::Empty.into());
        }
        for (index, j) in jobs.iter().enumerate() {
            if !j.is_valid() {
                return Err(DeadlineError::InvalidJob { index, job: *j }.into());
            }
        }
        let mut ids: Vec<u32> = jobs.iter().map(|j| j.id).collect();
        ids.sort_unstable();
        for pair in ids.windows(2) {
            if pair[0] == pair[1] {
                return Err(DeadlineError::DuplicateId { id: pair[0] }.into());
            }
        }
        jobs.sort_by(|a, b| a.release.total_cmp(&b.release));
        Ok(DeadlineInstance { jobs })
    }

    /// Re-check the construction invariants (the typed validation gate
    /// the deadline solver entry points call; see
    /// `pas_workload::Instance::validate` for the rationale).
    ///
    /// # Errors
    /// As [`DeadlineInstance::new`].
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.jobs.is_empty() {
            return Err(DeadlineError::Empty.into());
        }
        for (index, j) in self.jobs.iter().enumerate() {
            if !j.is_valid() {
                return Err(DeadlineError::InvalidJob { index, job: *j }.into());
            }
        }
        let mut ids: Vec<u32> = self.jobs.iter().map(|j| j.id).collect();
        ids.sort_unstable();
        for pair in ids.windows(2) {
            if pair[0] == pair[1] {
                return Err(DeadlineError::DuplicateId { id: pair[0] }.into());
            }
        }
        Ok(())
    }

    /// The jobs, sorted by release time.
    pub fn jobs(&self) -> &[DeadlineJob] {
        &self.jobs
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Always false (construction rejects empty).
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Seeded random instance: releases uniform in `[0, span)`, window
    /// lengths uniform in `window_range`, works uniform in `work_range`.
    ///
    /// # Panics
    /// On degenerate ranges.
    pub fn random(
        n: usize,
        span: f64,
        window_range: (f64, f64),
        work_range: (f64, f64),
        seed: u64,
    ) -> Self {
        assert!(n > 0 && span >= 0.0);
        assert!(window_range.0 > 0.0 && window_range.1 >= window_range.0);
        assert!(work_range.0 > 0.0 && work_range.1 >= work_range.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let rel = Uniform::new_inclusive(0.0, span.max(f64::MIN_POSITIVE));
        let win = Uniform::new_inclusive(window_range.0, window_range.1);
        let wrk = Uniform::new_inclusive(work_range.0, work_range.1);
        let jobs = (0..n)
            .map(|i| {
                let r = rel.sample(&mut rng);
                DeadlineJob::new(i as u32, r, r + win.sample(&mut rng), wrk.sample(&mut rng))
            })
            .collect();
        DeadlineInstance::new(jobs).expect("generated jobs are valid")
    }

    /// Validate an executed schedule against this instance: every job's
    /// slices lie within its `[release, deadline]` window (tolerance
    /// `tol`) and complete its work.
    ///
    /// # Errors
    /// [`CoreError::VerificationFailed`] naming the violation.
    pub fn validate_schedule(&self, schedule: &Schedule, tol: f64) -> Result<(), CoreError> {
        let mut done: HashMap<u32, f64> = HashMap::new();
        let by_id: HashMap<u32, &DeadlineJob> = self.jobs.iter().map(|j| (j.id, j)).collect();
        for lane in schedule.machines() {
            for s in lane {
                let Some(job) = by_id.get(&s.job) else {
                    return Err(CoreError::VerificationFailed {
                        reason: format!("unknown job {}", s.job),
                    });
                };
                if s.start < job.release - tol {
                    return Err(CoreError::VerificationFailed {
                        reason: format!("job {} starts before release", s.job),
                    });
                }
                if s.end > job.deadline + tol {
                    return Err(CoreError::VerificationFailed {
                        reason: format!(
                            "job {} misses deadline: runs to {} > {}",
                            s.job, s.end, job.deadline
                        ),
                    });
                }
                *done.entry(s.job).or_insert(0.0) += s.work();
            }
        }
        for j in &self.jobs {
            let got = done.get(&j.id).copied().unwrap_or(0.0);
            if (got - j.work).abs() > tol * j.work.max(1.0) {
                return Err(CoreError::VerificationFailed {
                    reason: format!("job {} work {got} != {}", j.id, j.work),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pas_sim::Slice;

    #[test]
    fn construction_and_sorting() {
        let inst = DeadlineInstance::new(vec![
            DeadlineJob::new(1, 5.0, 8.0, 1.0),
            DeadlineJob::new(0, 0.0, 2.0, 1.0),
        ])
        .unwrap();
        assert_eq!(inst.jobs()[0].id, 0);
        assert_eq!(inst.len(), 2);
    }

    #[test]
    fn rejects_invalid() {
        assert!(DeadlineInstance::new(vec![]).is_err());
        assert!(DeadlineInstance::new(vec![DeadlineJob::new(0, 2.0, 1.0, 1.0)]).is_err());
        assert!(DeadlineInstance::new(vec![DeadlineJob::new(0, 0.0, 1.0, 0.0)]).is_err());
        assert!(DeadlineInstance::new(vec![
            DeadlineJob::new(0, 0.0, 1.0, 1.0),
            DeadlineJob::new(0, 0.0, 2.0, 1.0),
        ])
        .is_err());
    }

    #[test]
    fn density() {
        assert_eq!(DeadlineJob::new(0, 1.0, 3.0, 4.0).density(), 2.0);
    }

    #[test]
    fn random_is_reproducible_and_valid() {
        let a = DeadlineInstance::random(30, 10.0, (1.0, 4.0), (0.5, 2.0), 7);
        let b = DeadlineInstance::random(30, 10.0, (1.0, 4.0), (0.5, 2.0), 7);
        assert_eq!(a, b);
        for j in a.jobs() {
            assert!(j.deadline > j.release);
        }
    }

    #[test]
    fn schedule_validation() {
        let inst = DeadlineInstance::new(vec![DeadlineJob::new(0, 0.0, 2.0, 2.0)]).unwrap();
        let good = Schedule::from_slices(vec![Slice::new(0, 0.0, 2.0, 1.0)]);
        inst.validate_schedule(&good, 1e-9).unwrap();
        let late = Schedule::from_slices(vec![Slice::new(0, 1.0, 3.0, 1.0)]);
        assert!(inst.validate_schedule(&late, 1e-9).is_err());
        let short = Schedule::from_slices(vec![Slice::new(0, 0.0, 1.0, 1.0)]);
        assert!(inst.validate_schedule(&short, 1e-9).is_err());
    }
}
