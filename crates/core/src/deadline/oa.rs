//! OA — the Optimal Available online heuristic.
//!
//! At every moment, run at the speed the *optimal offline schedule of the
//! currently known, unfinished work* would use — equivalently
//!
//! ```text
//! s(t) = max over deadlines d of  W_remaining(deadline ≤ d) / (d − t)
//! ```
//!
//! dispatching EDF. Between events (arrivals and completions) the
//! maximizing ratio stays constant — the critical group's remaining work
//! shrinks at exactly rate `s` — so an event-driven simulation is exact.
//! Proposed by Yao, Demers, Shenker; Bansal, Kimbrel and Pruhs proved it
//! `α^α`-competitive (the paper's §2 recounts both results).
//!
//! # Complexity
//!
//! [`oa`] keeps the remaining work of released, unfinished jobs in a
//! [`KineticTournament`] keyed by deadline rank: each leaf's key is the
//! linear-fractional function `t ↦ prefix(d)/(d − t)`, and
//! certificate-based lazy revalidation makes each re-plan (a weight
//! update plus one argmax) `O(log n)` amortized, for `O(n log n)`
//! overall. [`oa_reference`] keeps the previous engine — a [`Fenwick`]
//! accumulator re-scanned over every live deadline rank per event,
//! `O(D log n)` per re-plan and `O(n · D log n)` overall — as the
//! equivalence oracle (`tests/oa_equivalence.rs`); E22
//! (`exp-scaling --only oa --bench-json`) records the measured
//! naive-vs-kinetic curve to `BENCH_oa.json`.

use crate::deadline::job::DeadlineInstance;
use crate::error::CoreError;
use pas_numeric::kinetic::KineticTournament;
use pas_numeric::timeline::{EventAxis, Fenwick, TimeKey};
use pas_sim::{Schedule, Slice};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Run Optimal Available on `instance` (kinetic-tournament engine).
///
/// # Errors
/// [`CoreError::VerificationFailed`] on internal invariant violations
/// (never for valid instances).
pub fn oa(instance: &DeadlineInstance) -> Result<Schedule, CoreError> {
    instance.validate()?;
    let jobs = instance.jobs();
    let n = jobs.len();
    let deadlines = EventAxis::new(jobs.iter().map(|j| j.deadline));
    let rank: Vec<usize> = jobs
        .iter()
        .map(|j| {
            deadlines
                .rank_of(j.deadline)
                .expect("every deadline is on the axis")
        })
        .collect();
    // Remaining work of released, unfinished jobs, keyed by deadline
    // rank; the tournament maintains argmax_d prefix(d)/(d − t).
    let mut tournament = KineticTournament::new(deadlines.times(), jobs[0].release);
    // Released, unfinished jobs, earliest deadline on top.
    let mut heap: BinaryHeap<Reverse<TimeKey>> = BinaryHeap::with_capacity(n);

    let mut remaining: Vec<f64> = jobs.iter().map(|j| j.work).collect();
    let mut slices = Vec::new();
    let mut t = jobs[0].release;
    let mut next = 0usize; // arrival pointer (jobs are release-sorted)
    let mut done = 0usize;
    let mut guard = 10_000 * (n + 1);

    while done < n {
        guard -= 1;
        if guard == 0 {
            return Err(CoreError::VerificationFailed {
                reason: "OA: event budget exhausted".to_string(),
            });
        }
        tournament.advance_to(t);
        while next < n && jobs[next].release <= t + 1e-12 {
            heap.push(Reverse(TimeKey::new(jobs[next].deadline, next)));
            tournament.add(rank[next], remaining[next]);
            next += 1;
        }
        let next_release = jobs.get(next).map_or(f64::INFINITY, |j| j.release);

        let Some(&Reverse(top)) = heap.peek() else {
            if !next_release.is_finite() {
                return Err(CoreError::VerificationFailed {
                    reason: "OA: stalled with jobs remaining".to_string(),
                });
            }
            t = next_release;
            continue;
        };
        let k = top.index();

        // OA speed: one kinetic argmax instead of a rank sweep. The
        // scan starts at the EDF job's deadline rank: every earlier
        // deadline has only finished jobs (prefix exactly zero in real
        // arithmetic), and excluding them keeps accumulated float noise
        // at drained ranks from being amplified by a tiny `d − t`.
        let speed = tournament.argmax_from(rank[k]).map_or(0.0, |c| c.ratio);
        if speed <= 0.0 {
            return Err(CoreError::VerificationFailed {
                reason: format!("OA: zero speed at t={t}"),
            });
        }

        // EDF job at that speed until completion or next arrival.
        let until = (t + remaining[k] / speed).min(next_release);
        if until > t + 1e-12 {
            // Clamp to the job's remaining work: `speed · Δt` can
            // overshoot by an ulp at completion, and feeding the excess
            // into the accumulator as a negative residue would drift it.
            let executed = (speed * (until - t)).min(remaining[k]);
            slices.push(Slice::new(jobs[k].id, t, until, speed));
            remaining[k] -= executed;
            tournament.add(rank[k], -executed);
        }
        if remaining[k] <= 1e-9 * jobs[k].work {
            tournament.add(rank[k], -remaining[k]);
            remaining[k] = 0.0;
            heap.pop();
            done += 1;
        }
        t = until.max(t + 1e-12);
    }

    let mut schedule = Schedule::from_slices(slices);
    schedule.coalesce(1e-9);
    instance.validate_schedule(&schedule, 1e-6)?;
    Ok(schedule)
}

/// Run Optimal Available with the previous per-event sweep engine: the
/// [`Fenwick`] work accumulator re-scanned over every live deadline rank
/// at each event (`O(D log n)` per re-plan).
///
/// Kept as the equivalence oracle for [`oa`]
/// (`tests/oa_equivalence.rs`) and as the baseline E22 measures
/// (`BENCH_oa.json`). Two deliberate departures from verbatim
/// preservation, both shared with [`oa`] because an oracle that injects
/// noise events cannot certify anything:
///
/// * the completion clamp (`executed ≤ remaining`) — without it the
///   accumulator keeps `~1e-15` residues at *passed* deadlines;
/// * the sweep starts at the EDF deadline rank — earlier prefixes are
///   exactly zero in real arithmetic, but any tree of float sums holds
///   `~1e-15` association noise there, and an event landing within
///   `~1e-15` of a drained deadline (which OA does systematically — the
///   critical group completes exactly at its deadline) would amplify
///   that residue into a garbage speed via `residue / (d − t)`.
///
/// Everything else is the pre-kinetic engine unchanged.
///
/// # Errors
/// [`CoreError::VerificationFailed`] on internal invariant violations
/// (never for valid instances).
pub fn oa_reference(instance: &DeadlineInstance) -> Result<Schedule, CoreError> {
    instance.validate()?;
    let jobs = instance.jobs();
    let n = jobs.len();
    let deadlines = EventAxis::new(jobs.iter().map(|j| j.deadline));
    let rank: Vec<usize> = jobs
        .iter()
        .map(|j| {
            deadlines
                .rank_of(j.deadline)
                .expect("every deadline is on the axis")
        })
        .collect();
    // Remaining work of released, unfinished jobs, keyed by deadline
    // rank; prefix_sum(d + 1) = W_remaining(deadline ≤ time(d)).
    let mut released_work = Fenwick::new(deadlines.len());
    // Released, unfinished jobs, earliest deadline on top.
    let mut heap: BinaryHeap<Reverse<TimeKey>> = BinaryHeap::with_capacity(n);

    let mut remaining: Vec<f64> = jobs.iter().map(|j| j.work).collect();
    let mut slices = Vec::new();
    let mut t = jobs[0].release;
    let mut next = 0usize; // arrival pointer (jobs are release-sorted)
    let mut done = 0usize;
    let mut guard = 10_000 * (n + 1);

    while done < n {
        guard -= 1;
        if guard == 0 {
            return Err(CoreError::VerificationFailed {
                reason: "OA: event budget exhausted".to_string(),
            });
        }
        while next < n && jobs[next].release <= t + 1e-12 {
            heap.push(Reverse(TimeKey::new(jobs[next].deadline, next)));
            released_work.add(rank[next], remaining[next]);
            next += 1;
        }
        let next_release = jobs.get(next).map_or(f64::INFINITY, |j| j.release);

        let Some(&Reverse(top)) = heap.peek() else {
            if !next_release.is_finite() {
                return Err(CoreError::VerificationFailed {
                    reason: "OA: stalled with jobs remaining".to_string(),
                });
            }
            t = next_release;
            continue;
        };
        let k = top.index();

        // OA speed: the max over deadlines of remaining-work density,
        // one prefix-sum query per candidate deadline. Like `oa`, the
        // scan starts no earlier than the EDF deadline rank so float
        // residue at drained ranks cannot masquerade as density.
        let mut speed = 0.0f64;
        for di in deadlines.rank_below(t).max(rank[k])..deadlines.len() {
            let d = deadlines.time(di);
            if d > t {
                speed = speed.max(released_work.prefix_sum(di + 1) / (d - t));
            }
        }
        if speed <= 0.0 {
            return Err(CoreError::VerificationFailed {
                reason: format!("OA: zero speed at t={t}"),
            });
        }

        // EDF job at that speed until completion or next arrival.
        let until = (t + remaining[k] / speed).min(next_release);
        if until > t + 1e-12 {
            // Shared overrun clamp — see the function docs.
            let executed = (speed * (until - t)).min(remaining[k]);
            slices.push(Slice::new(jobs[k].id, t, until, speed));
            remaining[k] -= executed;
            released_work.add(rank[k], -executed);
        }
        if remaining[k] <= 1e-9 * jobs[k].work {
            released_work.add(rank[k], -remaining[k]);
            remaining[k] = 0.0;
            heap.pop();
            done += 1;
        }
        t = until.max(t + 1e-12);
    }

    let mut schedule = Schedule::from_slices(slices);
    schedule.coalesce(1e-9);
    instance.validate_schedule(&schedule, 1e-6)?;
    Ok(schedule)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deadline::job::DeadlineJob;
    use crate::deadline::yds::yds;
    use pas_power::PolyPower;
    use pas_sim::metrics;

    #[test]
    fn single_job_is_optimal() {
        let inst = DeadlineInstance::new(vec![DeadlineJob::new(0, 0.0, 4.0, 8.0)]).unwrap();
        let o = oa(&inst).unwrap();
        let y = yds(&inst).unwrap();
        let model = PolyPower::CUBE;
        assert!((metrics::energy(&o, &model) - metrics::energy(&y.schedule, &model)).abs() < 1e-9);
    }

    #[test]
    fn oa_equals_yds_when_everything_known_up_front() {
        // All jobs released at 0: OA plans once, optimally.
        let inst = DeadlineInstance::new(vec![
            DeadlineJob::new(0, 0.0, 2.0, 1.0),
            DeadlineJob::new(1, 0.0, 4.0, 1.0),
            DeadlineJob::new(2, 0.0, 8.0, 2.0),
        ])
        .unwrap();
        let model = PolyPower::CUBE;
        let o = metrics::energy(&oa(&inst).unwrap(), &model);
        let y = metrics::energy(&yds(&inst).unwrap().schedule, &model);
        assert!((o - y).abs() < 1e-6, "OA {o} vs YDS {y}");
    }

    #[test]
    fn meets_deadlines_on_random_instances() {
        for seed in 0..20 {
            let inst = DeadlineInstance::random(25, 25.0, (0.5, 6.0), (0.2, 2.0), seed);
            let sched = oa(&inst).unwrap();
            inst.validate_schedule(&sched, 1e-6).unwrap();
        }
    }

    #[test]
    fn reference_engine_meets_deadlines_too() {
        for seed in 0..10 {
            let inst = DeadlineInstance::random(25, 25.0, (0.5, 6.0), (0.2, 2.0), seed);
            let sched = oa_reference(&inst).unwrap();
            inst.validate_schedule(&sched, 1e-6).unwrap();
        }
    }

    #[test]
    fn competitive_ratio_within_alpha_alpha() {
        // OA <= α^α · OPT (Bansal–Kimbrel–Pruhs). α = 3: 27.
        let model = PolyPower::CUBE;
        for seed in 0..15 {
            let inst = DeadlineInstance::random(20, 15.0, (0.5, 5.0), (0.2, 2.0), seed);
            let o = metrics::energy(&oa(&inst).unwrap(), &model);
            let y = metrics::energy(&yds(&inst).unwrap().schedule, &model);
            let ratio = o / y;
            assert!(ratio >= 1.0 - 1e-6, "seed {seed}: OA beat OPT? {ratio}");
            assert!(ratio <= 27.0, "seed {seed}: ratio {ratio} above α^α");
        }
    }

    #[test]
    fn oa_no_worse_than_avr_on_surprise_arrivals() {
        // Not a theorem, but on the classic bad case for AVR (a late
        // urgent job stacked on a long lazy one) OA adapts better.
        let inst = DeadlineInstance::new(vec![
            DeadlineJob::new(0, 0.0, 10.0, 1.0),
            DeadlineJob::new(1, 9.0, 10.0, 2.0),
        ])
        .unwrap();
        let model = PolyPower::CUBE;
        let o = metrics::energy(&oa(&inst).unwrap(), &model);
        let a = metrics::energy(&crate::deadline::avr::avr(&inst).unwrap(), &model);
        assert!(o <= a + 1e-9, "OA {o} vs AVR {a}");
    }
}
