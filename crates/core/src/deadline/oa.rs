//! OA — the Optimal Available online heuristic.
//!
//! At every moment, run at the speed the *optimal offline schedule of the
//! currently known, unfinished work* would use — equivalently
//!
//! ```text
//! s(t) = max over deadlines d of  W_remaining(deadline ≤ d) / (d − t)
//! ```
//!
//! dispatching EDF. Between events (arrivals and completions) the
//! maximizing ratio stays constant — the critical group's remaining work
//! shrinks at exactly rate `s` — so an event-driven simulation is exact.
//! Proposed by Yao, Demers, Shenker; Bansal, Kimbrel and Pruhs proved it
//! `α^α`-competitive (the paper's §2 recounts both results).
//!
//! # Complexity
//!
//! Remaining work of released, unfinished jobs lives in a [`Fenwick`]
//! accumulator keyed by deadline rank on the shared [`EventAxis`], so
//! each event re-plans with `O(D log n)` prefix-sum queries (one per
//! candidate deadline) instead of the seed's `O(D · n)` filter-and-sum,
//! and the EDF pick comes from a deadline-keyed [`BinaryHeap`] instead of
//! an `O(n)` ready-scan: `O(n · D log n)` overall, against the seed's
//! `O(n² · D)`.

use crate::deadline::job::DeadlineInstance;
use crate::error::CoreError;
use pas_numeric::timeline::{EventAxis, Fenwick, TimeKey};
use pas_sim::{Schedule, Slice};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Run Optimal Available on `instance`.
///
/// # Errors
/// [`CoreError::VerificationFailed`] on internal invariant violations
/// (never for valid instances).
pub fn oa(instance: &DeadlineInstance) -> Result<Schedule, CoreError> {
    let jobs = instance.jobs();
    let n = jobs.len();
    let deadlines = EventAxis::new(jobs.iter().map(|j| j.deadline));
    let rank: Vec<usize> = jobs
        .iter()
        .map(|j| {
            deadlines
                .rank_of(j.deadline)
                .expect("every deadline is on the axis")
        })
        .collect();
    // Remaining work of released, unfinished jobs, keyed by deadline
    // rank; prefix_sum(d + 1) = W_remaining(deadline ≤ time(d)).
    let mut released_work = Fenwick::new(deadlines.len());
    // Released, unfinished jobs, earliest deadline on top.
    let mut heap: BinaryHeap<Reverse<TimeKey>> = BinaryHeap::with_capacity(n);

    let mut remaining: Vec<f64> = jobs.iter().map(|j| j.work).collect();
    let mut slices = Vec::new();
    let mut t = jobs[0].release;
    let mut next = 0usize; // arrival pointer (jobs are release-sorted)
    let mut done = 0usize;
    let mut guard = 10_000 * (n + 1);

    while done < n {
        guard -= 1;
        if guard == 0 {
            return Err(CoreError::VerificationFailed {
                reason: "OA: event budget exhausted".to_string(),
            });
        }
        while next < n && jobs[next].release <= t + 1e-12 {
            heap.push(Reverse(TimeKey::new(jobs[next].deadline, next)));
            released_work.add(rank[next], remaining[next]);
            next += 1;
        }
        let next_release = jobs.get(next).map_or(f64::INFINITY, |j| j.release);

        let Some(&Reverse(top)) = heap.peek() else {
            if !next_release.is_finite() {
                return Err(CoreError::VerificationFailed {
                    reason: "OA: stalled with jobs remaining".to_string(),
                });
            }
            t = next_release;
            continue;
        };
        let k = top.index();

        // OA speed: the max over deadlines of remaining-work density,
        // one prefix-sum query per candidate deadline.
        let mut speed = 0.0f64;
        for di in deadlines.rank_below(t)..deadlines.len() {
            let d = deadlines.time(di);
            if d > t {
                speed = speed.max(released_work.prefix_sum(di + 1) / (d - t));
            }
        }
        if speed <= 0.0 {
            return Err(CoreError::VerificationFailed {
                reason: format!("OA: zero speed at t={t}"),
            });
        }

        // EDF job at that speed until completion or next arrival.
        let until = (t + remaining[k] / speed).min(next_release);
        if until > t + 1e-12 {
            let executed = speed * (until - t);
            slices.push(Slice::new(jobs[k].id, t, until, speed));
            remaining[k] -= executed;
            released_work.add(rank[k], -executed);
        }
        if remaining[k] <= 1e-9 * jobs[k].work {
            released_work.add(rank[k], -remaining[k]);
            remaining[k] = 0.0;
            heap.pop();
            done += 1;
        }
        t = until.max(t + 1e-12);
    }

    let mut schedule = Schedule::from_slices(slices);
    schedule.coalesce(1e-9);
    instance.validate_schedule(&schedule, 1e-6)?;
    Ok(schedule)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deadline::job::DeadlineJob;
    use crate::deadline::yds::yds;
    use pas_power::PolyPower;
    use pas_sim::metrics;

    #[test]
    fn single_job_is_optimal() {
        let inst = DeadlineInstance::new(vec![DeadlineJob::new(0, 0.0, 4.0, 8.0)]).unwrap();
        let o = oa(&inst).unwrap();
        let y = yds(&inst).unwrap();
        let model = PolyPower::CUBE;
        assert!((metrics::energy(&o, &model) - metrics::energy(&y.schedule, &model)).abs() < 1e-9);
    }

    #[test]
    fn oa_equals_yds_when_everything_known_up_front() {
        // All jobs released at 0: OA plans once, optimally.
        let inst = DeadlineInstance::new(vec![
            DeadlineJob::new(0, 0.0, 2.0, 1.0),
            DeadlineJob::new(1, 0.0, 4.0, 1.0),
            DeadlineJob::new(2, 0.0, 8.0, 2.0),
        ])
        .unwrap();
        let model = PolyPower::CUBE;
        let o = metrics::energy(&oa(&inst).unwrap(), &model);
        let y = metrics::energy(&yds(&inst).unwrap().schedule, &model);
        assert!((o - y).abs() < 1e-6, "OA {o} vs YDS {y}");
    }

    #[test]
    fn meets_deadlines_on_random_instances() {
        for seed in 0..20 {
            let inst = DeadlineInstance::random(25, 25.0, (0.5, 6.0), (0.2, 2.0), seed);
            let sched = oa(&inst).unwrap();
            inst.validate_schedule(&sched, 1e-6).unwrap();
        }
    }

    #[test]
    fn competitive_ratio_within_alpha_alpha() {
        // OA <= α^α · OPT (Bansal–Kimbrel–Pruhs). α = 3: 27.
        let model = PolyPower::CUBE;
        for seed in 0..15 {
            let inst = DeadlineInstance::random(20, 15.0, (0.5, 5.0), (0.2, 2.0), seed);
            let o = metrics::energy(&oa(&inst).unwrap(), &model);
            let y = metrics::energy(&yds(&inst).unwrap().schedule, &model);
            let ratio = o / y;
            assert!(ratio >= 1.0 - 1e-6, "seed {seed}: OA beat OPT? {ratio}");
            assert!(ratio <= 27.0, "seed {seed}: ratio {ratio} above α^α");
        }
    }

    #[test]
    fn oa_no_worse_than_avr_on_surprise_arrivals() {
        // Not a theorem, but on the classic bad case for AVR (a late
        // urgent job stacked on a long lazy one) OA adapts better.
        let inst = DeadlineInstance::new(vec![
            DeadlineJob::new(0, 0.0, 10.0, 1.0),
            DeadlineJob::new(1, 9.0, 10.0, 2.0),
        ])
        .unwrap();
        let model = PolyPower::CUBE;
        let o = metrics::energy(&oa(&inst).unwrap(), &model);
        let a = metrics::energy(&crate::deadline::avr::avr(&inst).unwrap(), &model);
        assert!(o <= a + 1e-9, "OA {o} vs AVR {a}");
    }
}
