//! AVR — the Average Rate online heuristic of Yao, Demers, Shenker.
//!
//! At any moment the processor speed is the **sum of the densities**
//! (`w/(d−r)`) of the jobs whose windows contain the moment; jobs are
//! dispatched EDF. The speed profile needs no future knowledge, making
//! AVR online. Yao et al. proved it `2^{α−1}·α^α`-competitive against
//! the optimal (YDS) energy; experiment E12 measures the empirical
//! ratio, which is far smaller on non-adversarial inputs.
//!
//! # Complexity
//!
//! The speed profile is piecewise constant with breakpoints only at
//! releases and deadlines, so it is materialized once on the shared
//! [`EventAxis`]: a density difference array at event ranks, prefix-summed
//! into per-segment speeds (`O(n log n)`). Dispatch then walks the
//! segments with a deadline-keyed [`BinaryHeap`] of released, unfinished
//! jobs — `O(n log n)` overall, replacing the seed's `O(n)` profile
//! evaluation × `O(n)` ready-scan per event (`O(n²)`–`O(n³)`).

use crate::deadline::job::DeadlineInstance;
use crate::error::CoreError;
use pas_numeric::kinetic::KineticTournament;
use pas_numeric::timeline::{EventAxis, TimeKey};
use pas_sim::{Schedule, Slice};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// The AVR profile's **density-step maximum**: the segment start time
/// and speed of the profile's peak, answered by the kinetic rank tree's
/// max-prefix aggregate
/// ([`KineticTournament::peak_prefix`]) over signed density deltas —
/// the same structure [`oa`](crate::deadline::oa::oa) re-plans on.
///
/// This is the piece of the kinetic structure that fits AVR: the speed
/// profile is a *sum* of active densities, not a max of prefix/(d − t)
/// ratios, so the tournament's certificate machinery has nothing to
/// race — but its prefix tree answers "where is the profile highest"
/// (the peak the bounded-speed regimes of §6 care about) in `O(log n)`
/// after `O(n log n)` loading. Ties prefer the earliest segment.
pub fn profile_peak(instance: &DeadlineInstance) -> (f64, f64) {
    let jobs = instance.jobs();
    let axis = EventAxis::new(jobs.iter().flat_map(|j| [j.release, j.deadline]));
    // Any finite start time works: the peak query is time-independent.
    let mut deltas = KineticTournament::new(axis.times(), axis.time(0));
    for j in jobs {
        deltas.add(
            axis.rank_of(j.release).expect("release is an event"),
            j.density(),
        );
        deltas.add(
            axis.rank_of(j.deadline).expect("deadline is an event"),
            -j.density(),
        );
    }
    let (rank, peak) = deltas.peak_prefix();
    (axis.time(rank), peak)
}

/// Run AVR on `instance`, producing the executed schedule.
///
/// # Errors
/// [`CoreError::VerificationFailed`] if the produced schedule fails
/// validation (would indicate an implementation bug — AVR is always
/// feasible).
pub fn avr(instance: &DeadlineInstance) -> Result<Schedule, CoreError> {
    instance.validate()?;
    let jobs = instance.jobs();
    let n = jobs.len();
    // The AVR profile: density enters at the release rank, leaves at the
    // deadline rank; segment speeds are the running prefix.
    let axis = EventAxis::new(jobs.iter().flat_map(|j| [j.release, j.deadline]));
    let mut delta = vec![0.0f64; axis.len()];
    for j in jobs {
        delta[axis.rank_of(j.release).expect("release is an event")] += j.density();
        delta[axis.rank_of(j.deadline).expect("deadline is an event")] -= j.density();
    }
    // seg_speed[i] = profile speed on [time(i), time(i+1)).
    let mut seg_speed = delta;
    let mut running = 0.0f64;
    for s in seg_speed.iter_mut() {
        running += *s;
        *s = running;
    }

    // Jobs are release-sorted (instance invariant); dispatch EDF over the
    // segments with a deadline-keyed heap.
    let mut remaining: Vec<f64> = jobs.iter().map(|j| j.work).collect();
    let mut heap: BinaryHeap<Reverse<TimeKey>> = BinaryHeap::with_capacity(n);
    let mut next = 0usize;
    let mut slices = Vec::new();
    for (i, &speed) in seg_speed
        .iter()
        .enumerate()
        .take(axis.len().saturating_sub(1))
    {
        let (start, end) = (axis.time(i), axis.time(i + 1));
        let mut t = start;
        while next < n && jobs[next].release <= t + 1e-12 {
            heap.push(Reverse(TimeKey::new(jobs[next].deadline, next)));
            next += 1;
        }
        while t < end - 1e-12 {
            let Some(&Reverse(top)) = heap.peek() else {
                break; // idle until the next event
            };
            let k = top.index();
            if speed <= 0.0 {
                return Err(CoreError::VerificationFailed {
                    reason: format!("AVR: zero speed at t={t} with ready work"),
                });
            }
            let until = (t + remaining[k] / speed).min(end);
            if until <= t + 1e-12 {
                // Numerical corner (leftover below time resolution):
                // force progress.
                remaining[k] = 0.0;
                heap.pop();
                continue;
            }
            slices.push(Slice::new(jobs[k].id, t, until, speed));
            remaining[k] -= speed * (until - t);
            if remaining[k] <= 1e-9 * jobs[k].work {
                remaining[k] = 0.0;
                heap.pop();
            }
            t = until;
        }
    }
    if let Some(k) = remaining.iter().position(|&r| r > 1e-12) {
        return Err(CoreError::VerificationFailed {
            reason: format!("AVR: job {} stalled with work remaining", jobs[k].id),
        });
    }
    let mut schedule = Schedule::from_slices(slices);
    schedule.coalesce(1e-9);
    instance.validate_schedule(&schedule, 1e-6)?;
    Ok(schedule)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deadline::job::DeadlineJob;
    use crate::deadline::yds::yds;
    use pas_power::PolyPower;
    use pas_sim::metrics;

    #[test]
    fn single_job_equals_yds() {
        let inst = DeadlineInstance::new(vec![DeadlineJob::new(0, 0.0, 4.0, 8.0)]).unwrap();
        let a = avr(&inst).unwrap();
        let y = yds(&inst).unwrap();
        let model = PolyPower::CUBE;
        assert!((metrics::energy(&a, &model) - metrics::energy(&y.schedule, &model)).abs() < 1e-9);
    }

    #[test]
    fn overlapping_windows_stack_densities() {
        // Two identical jobs [0,2] w=1 (density 0.5 each): AVR speed 1.
        let inst = DeadlineInstance::new(vec![
            DeadlineJob::new(0, 0.0, 2.0, 1.0),
            DeadlineJob::new(1, 0.0, 2.0, 1.0),
        ])
        .unwrap();
        let sched = avr(&inst).unwrap();
        for s in sched.machine(0) {
            assert!((s.speed - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn meets_deadlines_on_random_instances() {
        for seed in 0..20 {
            let inst = DeadlineInstance::random(25, 25.0, (0.5, 6.0), (0.2, 2.0), seed);
            let sched = avr(&inst).unwrap();
            inst.validate_schedule(&sched, 1e-6).unwrap();
        }
    }

    #[test]
    fn competitive_ratio_within_theory_bound() {
        // AVR <= 2^{α-1}·α^α · OPT (Yao et al.). For α = 3: 4·27 = 108.
        let model = PolyPower::CUBE;
        let bound = 2f64.powi(2) * 27.0;
        for seed in 0..15 {
            let inst = DeadlineInstance::random(20, 15.0, (0.5, 5.0), (0.2, 2.0), seed);
            let a = metrics::energy(&avr(&inst).unwrap(), &model);
            let y = metrics::energy(&yds(&inst).unwrap().schedule, &model);
            let ratio = a / y;
            assert!(ratio >= 1.0 - 1e-9, "seed {seed}: AVR beat OPT? {ratio}");
            assert!(ratio <= bound, "seed {seed}: ratio {ratio} above bound");
        }
    }

    #[test]
    fn profile_peak_matches_materialized_profile() {
        for seed in 0..10 {
            let inst = DeadlineInstance::random(30, 20.0, (0.5, 6.0), (0.2, 2.0), seed);
            let (at, peak) = profile_peak(&inst);
            // Materialize the profile the way `avr` does and compare.
            let axis = pas_numeric::timeline::EventAxis::new(
                inst.jobs().iter().flat_map(|j| [j.release, j.deadline]),
            );
            let mut delta = vec![0.0f64; axis.len()];
            for j in inst.jobs() {
                delta[axis.rank_of(j.release).unwrap()] += j.density();
                delta[axis.rank_of(j.deadline).unwrap()] -= j.density();
            }
            let mut running = 0.0f64;
            let mut best = (0usize, f64::NEG_INFINITY);
            for (i, d) in delta.iter().enumerate() {
                running += d;
                if running > best.1 {
                    best = (i, running);
                }
            }
            assert!(
                (peak - best.1).abs() < 1e-9,
                "seed {seed}: {peak} vs {}",
                best.1
            );
            assert!(
                (at - axis.time(best.0)).abs() < 1e-12,
                "seed {seed}: peak at {at} vs {}",
                axis.time(best.0)
            );
        }
    }

    #[test]
    fn avr_at_least_yds_energy() {
        for seed in 20..30 {
            let inst = DeadlineInstance::random(12, 10.0, (1.0, 4.0), (0.5, 1.5), seed);
            let model = PolyPower::new(2.0);
            let a = metrics::energy(&avr(&inst).unwrap(), &model);
            let y = metrics::energy(&yds(&inst).unwrap().schedule, &model);
            assert!(a >= y - 1e-6, "seed {seed}: {a} < {y}");
        }
    }
}
