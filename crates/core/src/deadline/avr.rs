//! AVR — the Average Rate online heuristic of Yao, Demers, Shenker.
//!
//! At any moment the processor speed is the **sum of the densities**
//! (`w/(d−r)`) of the jobs whose windows contain the moment; jobs are
//! dispatched EDF. The speed profile needs no future knowledge, making
//! AVR online. Yao et al. proved it `2^{α−1}·α^α`-competitive against
//! the optimal (YDS) energy; experiment E12 measures the empirical
//! ratio, which is far smaller on non-adversarial inputs.

use crate::deadline::job::DeadlineInstance;
use crate::error::CoreError;
use pas_sim::{Schedule, Slice};

/// Run AVR on `instance`, producing the executed schedule.
///
/// # Errors
/// [`CoreError::VerificationFailed`] if the produced schedule fails
/// validation (would indicate an implementation bug — AVR is always
/// feasible).
pub fn avr(instance: &DeadlineInstance) -> Result<Schedule, CoreError> {
    let jobs = instance.jobs();
    let n = jobs.len();
    // Event times: releases and deadlines.
    let mut events: Vec<f64> = jobs
        .iter()
        .flat_map(|j| [j.release, j.deadline])
        .collect();
    events.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    events.dedup_by(|a, b| (*a - *b).abs() <= 1e-12);

    let profile_speed = |t: f64| -> f64 {
        jobs.iter()
            .filter(|j| j.release <= t + 1e-12 && t < j.deadline - 1e-12)
            .map(|j| j.density())
            .sum()
    };

    let mut remaining: Vec<f64> = jobs.iter().map(|j| j.work).collect();
    let mut slices = Vec::new();
    let mut t = jobs[0].release;
    let mut done = 0usize;
    let mut guard = 10_000 * (n + 1);
    while done < n {
        guard -= 1;
        if guard == 0 {
            return Err(CoreError::VerificationFailed {
                reason: "AVR: event budget exhausted".to_string(),
            });
        }
        // Earliest-deadline ready job.
        let ready = jobs
            .iter()
            .enumerate()
            .filter(|(k, j)| remaining[*k] > 1e-12 && j.release <= t + 1e-12)
            .min_by(|x, y| x.1.deadline.partial_cmp(&y.1.deadline).expect("finite"));
        let next_event = events
            .iter()
            .copied()
            .find(|&e| e > t + 1e-12)
            .unwrap_or(f64::INFINITY);
        match ready {
            None => {
                if !next_event.is_finite() {
                    return Err(CoreError::VerificationFailed {
                        reason: "AVR: stalled with jobs remaining".to_string(),
                    });
                }
                t = next_event;
            }
            Some((k, job)) => {
                let speed = profile_speed(t);
                if speed <= 0.0 {
                    return Err(CoreError::VerificationFailed {
                        reason: format!("AVR: zero speed at t={t} with ready work"),
                    });
                }
                let until = (t + remaining[k] / speed).min(next_event);
                if until > t + 1e-12 {
                    slices.push(Slice::new(job.id, t, until, speed));
                    remaining[k] -= speed * (until - t);
                }
                if remaining[k] <= 1e-9 * job.work {
                    remaining[k] = 0.0;
                    done += 1;
                }
                t = until.max(t + 1e-12);
            }
        }
    }
    let mut schedule = Schedule::from_slices(slices);
    schedule.coalesce(1e-9);
    instance.validate_schedule(&schedule, 1e-6)?;
    Ok(schedule)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deadline::job::DeadlineJob;
    use crate::deadline::yds::yds;
    use pas_power::PolyPower;
    use pas_sim::metrics;

    #[test]
    fn single_job_equals_yds() {
        let inst =
            DeadlineInstance::new(vec![DeadlineJob::new(0, 0.0, 4.0, 8.0)]).unwrap();
        let a = avr(&inst).unwrap();
        let y = yds(&inst).unwrap();
        let model = PolyPower::CUBE;
        assert!(
            (metrics::energy(&a, &model) - metrics::energy(&y.schedule, &model)).abs() < 1e-9
        );
    }

    #[test]
    fn overlapping_windows_stack_densities() {
        // Two identical jobs [0,2] w=1 (density 0.5 each): AVR speed 1.
        let inst = DeadlineInstance::new(vec![
            DeadlineJob::new(0, 0.0, 2.0, 1.0),
            DeadlineJob::new(1, 0.0, 2.0, 1.0),
        ])
        .unwrap();
        let sched = avr(&inst).unwrap();
        for s in sched.machine(0) {
            assert!((s.speed - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn meets_deadlines_on_random_instances() {
        for seed in 0..20 {
            let inst = DeadlineInstance::random(25, 25.0, (0.5, 6.0), (0.2, 2.0), seed);
            let sched = avr(&inst).unwrap();
            inst.validate_schedule(&sched, 1e-6).unwrap();
        }
    }

    #[test]
    fn competitive_ratio_within_theory_bound() {
        // AVR <= 2^{α-1}·α^α · OPT (Yao et al.). For α = 3: 4·27 = 108.
        let model = PolyPower::CUBE;
        let bound = 2f64.powi(2) * 27.0;
        for seed in 0..15 {
            let inst = DeadlineInstance::random(20, 15.0, (0.5, 5.0), (0.2, 2.0), seed);
            let a = metrics::energy(&avr(&inst).unwrap(), &model);
            let y = metrics::energy(&yds(&inst).unwrap().schedule, &model);
            let ratio = a / y;
            assert!(ratio >= 1.0 - 1e-9, "seed {seed}: AVR beat OPT? {ratio}");
            assert!(ratio <= bound, "seed {seed}: ratio {ratio} above bound");
        }
    }

    #[test]
    fn avr_at_least_yds_energy() {
        for seed in 20..30 {
            let inst = DeadlineInstance::random(12, 10.0, (1.0, 4.0), (0.5, 1.5), seed);
            let model = PolyPower::new(2.0);
            let a = metrics::energy(&avr(&inst).unwrap(), &model);
            let y = metrics::energy(&yds(&inst).unwrap().schedule, &model);
            assert!(a >= y - 1e-6, "seed {seed}: {a} < {y}");
        }
    }
}
