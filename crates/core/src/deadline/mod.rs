//! Deadline-based speed scaling: the Yao–Demers–Shenker model (paper §2).
//!
//! The problem that started power-aware scheduling (FOCS 1995): each job
//! has a release time, a **deadline**, and a work requirement; find the
//! minimum-energy speed profile that meets every deadline. The paper
//! builds directly on this line of work, so the workspace includes it as
//! a substrate and baseline:
//!
//! * [`mod@yds`] — the optimal offline algorithm: repeatedly schedule the
//!   maximum-*density* interval (work over available time) at constant
//!   speed and remove it from the timeline;
//! * [`mod@avr`] — the online **Average Rate** heuristic: the processor runs
//!   at the sum of the densities of the active jobs
//!   (`2^{α−1}·α^α`-competitive, Yao et al.);
//! * [`mod@oa`] — the online **Optimal Available** heuristic: re-plan
//!   optimally for the known jobs at every arrival
//!   (`α^α`-competitive, Bansal–Kimbrel–Pruhs).
//!
//! Experiment E12 measures the empirical competitive ratios against the
//! analytic bounds.
//!
//! All three schedulers run on the shared
//! [`timeline`](pas_numeric::timeline) substrate (compressed event axis,
//! Fenwick work accumulator, sorted-disjoint interval set), and OA
//! re-plans on the [`kinetic`](pas_numeric::kinetic) tournament; see
//! each module's complexity notes. [`yds_reference`] keeps the seed
//! `O(n⁴)` implementation and [`oa_reference`] the per-event rank sweep
//! as cross-checking oracles; E19 and E22 (`exp-scaling --bench-json`)
//! record the naive-vs-optimized scaling curves to `BENCH_yds.json` and
//! `BENCH_oa.json`. See `DESIGN.md` at the repo root for the full
//! paper-to-code map.

pub mod avr;
pub mod job;
pub mod oa;
pub mod yds;

pub use avr::{avr, profile_peak};
pub use job::{DeadlineError, DeadlineInstance, DeadlineJob};
pub use oa::{oa, oa_reference};
pub use yds::{yds, yds_reference, YdsOutcome, YdsRound};
