//! Deadline-based speed scaling: the Yao–Demers–Shenker model (paper §2).
//!
//! The problem that started power-aware scheduling (FOCS 1995): each job
//! has a release time, a **deadline**, and a work requirement; find the
//! minimum-energy speed profile that meets every deadline. The paper
//! builds directly on this line of work, so the workspace includes it as
//! a substrate and baseline:
//!
//! * [`mod@yds`] — the optimal offline algorithm: repeatedly schedule the
//!   maximum-*density* interval (work over available time) at constant
//!   speed and remove it from the timeline;
//! * [`mod@avr`] — the online **Average Rate** heuristic: the processor runs
//!   at the sum of the densities of the active jobs
//!   (`2^{α−1}·α^α`-competitive, Yao et al.);
//! * [`mod@oa`] — the online **Optimal Available** heuristic: re-plan
//!   optimally for the known jobs at every arrival
//!   (`α^α`-competitive, Bansal–Kimbrel–Pruhs).
//!
//! Experiment E12 measures the empirical competitive ratios against the
//! analytic bounds.
//!
//! All three schedulers run on the shared
//! [`timeline`](pas_numeric::timeline) substrate (compressed event axis,
//! Fenwick work accumulator, sorted-disjoint interval set); see each
//! module's complexity notes. [`yds_reference`] keeps the seed `O(n⁴)`
//! implementation as the cross-checking oracle, and E19
//! (`exp-scaling --bench-json`) records the naive-vs-optimized scaling
//! curve to `BENCH_yds.json`.

pub mod avr;
pub mod job;
pub mod oa;
pub mod yds;

pub use avr::avr;
pub use job::{DeadlineInstance, DeadlineJob};
pub use oa::oa;
pub use yds::{yds, yds_reference, YdsOutcome, YdsRound};
