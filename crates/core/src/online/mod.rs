//! Online power-aware scheduling with an energy budget (paper §6).
//!
//! §6 names this the most important open problem: *"If the algorithm
//! cannot know when the last job has arrived, it must balance the need
//! to run quickly to minimize makespan if no other jobs arrive against
//! the need to conserve energy in case more jobs do arrive."* No
//! algorithms with guarantees are known; this module provides the
//! experimental apparatus the question calls for — a family of natural
//! policies and a harness measuring their empirical competitive ratio
//! against the offline frontier (experiment E13).
//!
//! Policies (all implement [`pas_sim::OnlinePolicy`]):
//!
//! * [`SpendAll`] — run the entire backlog as one block spending all
//!   remaining energy (optimal if nothing else arrives; ruinous when the
//!   adversary keeps arriving);
//! * [`FractionalSpend`] — hedge by committing only a `β` fraction of
//!   the remaining energy to the current backlog;
//! * [`ConstantSpeed`] — clairvoyant baseline: the single speed that an
//!   oracle knowing the total work would pick to spend the budget;
//! * [`Qoa`] — qOA-style queue-length scaling: speed
//!   `(1 + 1/q)·len^{1/α}`, the deadline-free analogue of running at
//!   `(1 + 1/q)×` the Optimal Available speed on the live prefix. The
//!   signal is *local* (current queue length), so the committed speed is
//!   self-similar in the instance size and the empirical E13 ratio stays
//!   flat as `n` doubles — where the global-energy-share policies grow;
//! * [`Bkp`] — BKP-style windowed max-density estimation: speed is a
//!   constant times the highest arrived-work density over the engine's
//!   deadline-band windows (§6-adjacent related work:
//!   Bansal–Kimbrel–Pruhs). Pure density policy, deliberately uncapped
//!   by the budget — the harness reports any overspend honestly.

use crate::error::CoreError;
use crate::makespan::frontier::Frontier;
use pas_power::{PolyPower, PowerModel};
use pas_sim::online::{run_online, Decision, OnlinePolicy, ReadyView};
use pas_sim::{metrics, Schedule};
use pas_workload::Instance;

/// Floor speed used when a policy's energy heuristic degenerates (e.g.
/// remaining energy rounds to zero): keeps runs terminating, at the cost
/// of blowing past the budget — which the harness then reports honestly.
const MIN_SPEED: f64 = 1e-6;

/// Run the whole backlog as one block spending all remaining energy.
#[derive(Debug, Clone)]
pub struct SpendAll<M> {
    model: M,
    budget: f64,
}

impl<M: PowerModel> SpendAll<M> {
    /// Create with the session energy budget.
    pub fn new(model: M, budget: f64) -> Self {
        SpendAll { model, budget }
    }
}

impl<M: PowerModel> OnlinePolicy for SpendAll<M> {
    fn decide(&mut self, _now: f64, ready: &dyn ReadyView, energy_spent: f64) -> Option<Decision> {
        let first = ready.first()?;
        let backlog = ready.backlog();
        let remaining_energy = (self.budget - energy_spent).max(0.0);
        let speed = self
            .model
            .speed_for_block(backlog, remaining_energy)
            .unwrap_or(MIN_SPEED)
            .max(MIN_SPEED);
        Some(Decision {
            job: first.id,
            speed,
            recheck_after: None,
        })
    }

    // Stateless: every decision derives from the ready-view aggregates,
    // so a serving-layer snapshot needs nothing from the policy.
    fn save_state(&self) -> Option<Vec<f64>> {
        Some(vec![])
    }

    fn load_state(&mut self, _state: &[f64]) -> bool {
        true
    }

    fn name(&self) -> String {
        "spend-all".to_string()
    }
}

/// Commit only a `beta` fraction of the remaining energy to the current
/// backlog (hedging against future arrivals).
#[derive(Debug, Clone)]
pub struct FractionalSpend<M> {
    model: M,
    budget: f64,
    beta: f64,
}

impl<M: PowerModel> FractionalSpend<M> {
    /// Create with budget and hedge fraction `beta ∈ (0, 1]`.
    ///
    /// # Panics
    /// If `beta` is outside `(0, 1]`.
    pub fn new(model: M, budget: f64, beta: f64) -> Self {
        assert!(beta > 0.0 && beta <= 1.0, "beta must be in (0, 1]");
        FractionalSpend {
            model,
            budget,
            beta,
        }
    }
}

impl<M: PowerModel> OnlinePolicy for FractionalSpend<M> {
    fn decide(&mut self, _now: f64, ready: &dyn ReadyView, energy_spent: f64) -> Option<Decision> {
        let first = ready.first()?;
        let backlog = ready.backlog();
        let committed = self.beta * (self.budget - energy_spent).max(0.0);
        let speed = self
            .model
            .speed_for_block(backlog, committed)
            .unwrap_or(MIN_SPEED)
            .max(MIN_SPEED);
        Some(Decision {
            job: first.id,
            speed,
            recheck_after: None,
        })
    }

    // Stateless (see SpendAll).
    fn save_state(&self) -> Option<Vec<f64>> {
        Some(vec![])
    }

    fn load_state(&mut self, _state: &[f64]) -> bool {
        true
    }

    fn name(&self) -> String {
        format!("fractional-spend({})", self.beta)
    }
}

/// Rate-adaptive hedging: estimates the arrival rate of work from what
/// it has seen so far and reserves energy for the extrapolated future.
///
/// At each decision, with `t` elapsed since the first arrival and `W_seen`
/// work observed, the policy extrapolates `Ŵ = W_seen·(1 + horizon/t)`
/// future-inclusive work and commits only `backlog/Ŵ` of the remaining
/// energy to the current backlog. Early on it hedges hard (like a small
/// `β`); once arrivals stop materializing the denominator stops growing
/// and it converges to spend-all — addressing exactly the balance §6
/// describes, with no oracle knowledge.
#[derive(Debug, Clone)]
pub struct AdaptiveRate<M> {
    model: M,
    budget: f64,
    /// How far ahead (in time units) to extrapolate the observed rate.
    horizon: f64,
}

impl<M: PowerModel> AdaptiveRate<M> {
    /// Create with the session budget and an extrapolation `horizon > 0`.
    ///
    /// # Panics
    /// If `horizon` is not positive.
    pub fn new(model: M, budget: f64, horizon: f64) -> Self {
        assert!(horizon > 0.0, "horizon must be positive");
        AdaptiveRate {
            model,
            budget,
            horizon,
        }
    }
}

impl<M: PowerModel> OnlinePolicy for AdaptiveRate<M> {
    fn decide(&mut self, now: f64, ready: &dyn ReadyView, energy_spent: f64) -> Option<Decision> {
        // The engine's ready store maintains the arrival history the old
        // implementation tracked with its own HashSet sweep — this
        // decide is O(1).
        let first = ready.first()?;
        let backlog = ready.backlog();
        let seen_work = ready.seen_work();
        let elapsed = (now - ready.first_arrival().unwrap_or(now)).max(1e-9);
        // Extrapolated total outstanding work if arrivals continue at the
        // observed average rate for `horizon` more time.
        let projected = seen_work * (1.0 + self.horizon / elapsed) - (seen_work - backlog);
        let share = (backlog / projected.max(backlog)).clamp(0.0, 1.0);
        let committed = share * (self.budget - energy_spent).max(0.0);
        let speed = self
            .model
            .speed_for_block(backlog, committed)
            .unwrap_or(MIN_SPEED)
            .max(MIN_SPEED);
        Some(Decision {
            job: first.id,
            speed,
            // Re-check periodically so the estimate refreshes even
            // without arrivals.
            recheck_after: Some(self.horizon / 8.0),
        })
    }

    // Stateless: the rate estimate reads ready-view aggregates only.
    fn save_state(&self) -> Option<Vec<f64>> {
        Some(vec![])
    }

    fn load_state(&mut self, _state: &[f64]) -> bool {
        true
    }

    fn name(&self) -> String {
        format!("adaptive-rate(h={})", self.horizon)
    }
}

/// Clairvoyant single-speed baseline: knows the instance's total work in
/// advance and runs everything at `g⁻¹(E/W)`.
#[derive(Debug, Clone)]
pub struct ConstantSpeed {
    speed: f64,
}

impl ConstantSpeed {
    /// The oracle speed for `budget` over `total_work` under `model`.
    ///
    /// # Errors
    /// Propagates the power-model inverse failure.
    pub fn for_budget<M: PowerModel>(
        model: &M,
        total_work: f64,
        budget: f64,
    ) -> Result<Self, CoreError> {
        Ok(ConstantSpeed {
            speed: model.speed_for_block(total_work, budget)?,
        })
    }
}

impl OnlinePolicy for ConstantSpeed {
    fn decide(&mut self, _now: f64, ready: &dyn ReadyView, _spent: f64) -> Option<Decision> {
        ready.first().map(|p| Decision {
            job: p.id,
            speed: self.speed,
            recheck_after: None,
        })
    }

    // Stateless (the speed is configuration, not mutable state).
    fn save_state(&self) -> Option<Vec<f64>> {
        Some(vec![])
    }

    fn load_state(&mut self, _state: &[f64]) -> bool {
        true
    }

    fn name(&self) -> String {
        format!("constant({})", self.speed)
    }
}

/// qOA-style policy: speed scales with the *current queue length*, and
/// energy is paced per unit of **seen work** — no global-budget share
/// anywhere in the rule.
///
/// With `len` live jobs, the desired speed is `(1 + 1/q)·len^{1/α}` —
/// the deadline-free analogue of the qOA algorithm's "run at
/// `(1 + 1/q)×` the Optimal Available speed", where for equal-density
/// backlogs the OA speed on the live prefix is `len^{1/α}`. The budget
/// guard is equally local: with an energy `allowance` per unit of
/// work, the policy maintains the invariant
/// `energy_spent ≤ allowance · seen_work`, capping the speed at the
/// block speed that spends the *accrued* headroom on the current
/// backlog. Both signals are self-similar in the instance size —
/// doubling `n` doubles time, not per-decision queue length or accrual
/// rate — so the empirical E13 ratio stays flat where the
/// global-energy-share policies ([`SpendAll`], [`AdaptiveRate`])
/// overspend early, crawl at the floor speed, and grow with `n`.
///
/// Callers with a session budget `E` for expected total work `W` pass
/// `allowance = E / W` — the same per-work density [`ConstantSpeed`]'s
/// oracle receives; unlike it, qOA never sees `W` itself. The
/// invariant gives `energy_spent ≤ allowance · W = E` at every point,
/// so the policy is within-budget by construction.
#[derive(Debug, Clone)]
pub struct Qoa<M> {
    model: M,
    allowance: f64,
    alpha: f64,
    q: f64,
}

impl<M: PowerModel> Qoa<M> {
    /// Create with the per-work energy `allowance > 0`, power-law
    /// exponent `alpha > 1`, and aggressiveness parameter `q > 0` (the
    /// paper's qOA uses `q ≈ 2α − 1`; larger `q` means closer to plain
    /// OA).
    ///
    /// # Panics
    /// If `allowance ≤ 0`, `alpha ≤ 1`, or `q ≤ 0`.
    pub fn new(model: M, allowance: f64, alpha: f64, q: f64) -> Self {
        assert!(
            allowance > 0.0 && allowance.is_finite(),
            "allowance must be positive"
        );
        assert!(alpha > 1.0, "alpha must exceed 1");
        assert!(q > 0.0, "q must be positive");
        Qoa {
            model,
            allowance,
            alpha,
            q,
        }
    }
}

impl<M: PowerModel> OnlinePolicy for Qoa<M> {
    fn decide(&mut self, _now: f64, ready: &dyn ReadyView, energy_spent: f64) -> Option<Decision> {
        let first = ready.first()?;
        let backlog = ready.backlog();
        // Queue-length OA speed on the live prefix, scaled by (1 + 1/q).
        let oa = (ready.len() as f64).powf(1.0 / self.alpha);
        let wanted = (1.0 + 1.0 / self.q) * oa;
        // Pacing guard: spend at most `allowance` per unit of work seen
        // so far. The headroom accrues with arrivals, so a burst can
        // only spend what the work it brought has earned.
        let headroom = (self.allowance * ready.seen_work() - energy_spent).max(0.0);
        let cap = self
            .model
            .speed_for_block(backlog, headroom)
            .unwrap_or(MIN_SPEED);
        Some(Decision {
            job: first.id,
            speed: wanted.min(cap).max(MIN_SPEED),
            recheck_after: None,
        })
    }

    // Stateless: queue length and accrued headroom are re-read from
    // the view each time.
    fn save_state(&self) -> Option<Vec<f64>> {
        Some(vec![])
    }

    fn load_state(&mut self, _state: &[f64]) -> bool {
        true
    }

    fn name(&self) -> String {
        format!("qoa(a={},q={},e={})", self.alpha, self.q, self.allowance)
    }
}

/// BKP-style policy: speed follows the maximum *arrived-work density*
/// over a family of trailing windows, estimated from the engine's
/// deadline-band ledger.
///
/// Bansal–Kimbrel–Pruhs's online algorithm runs at `e·max_density` over
/// critical intervals; without deadlines the analogous intensity signal
/// is the densest window of arrived work ending at the current band.
/// Candidates considered:
///
/// * every band-suffix window — arrived work over the last `j` bands
///   divided by `j·width`;
/// * the global average — total seen work over elapsed time;
/// * the instantaneous backlog over one band width (covers the first
///   decision and single-band floods, where window densities are zero
///   or stale).
///
/// The committed speed is `factor × max_density`. Like its namesake the
/// policy is *pure density* — it carries no budget cap, and runs that
/// overspend are reported honestly (`within_budget = false`).
#[derive(Debug, Clone)]
pub struct Bkp {
    factor: f64,
}

impl Bkp {
    /// Create with density multiplier `factor > 0` (BKP uses constants
    /// near `e`; the empirically flat default here is ~1.3).
    ///
    /// # Panics
    /// If `factor ≤ 0`.
    pub fn new(factor: f64) -> Self {
        assert!(factor > 0.0, "factor must be positive");
        Bkp { factor }
    }
}

impl Default for Bkp {
    fn default() -> Self {
        Bkp::new(1.3)
    }
}

impl OnlinePolicy for Bkp {
    fn decide(&mut self, now: f64, ready: &dyn ReadyView, _spent: f64) -> Option<Decision> {
        let first = ready.first()?;
        let width = ready.band_width().max(1e-12);
        // Current band: the last one with any arrivals recorded.
        let bands = ready.band_count();
        let cur = (0..bands)
            .rev()
            .find(|&b| ready.band_arrived(b) > 0.0)
            .unwrap_or(0);
        let mut density: f64 = 0.0;
        // Band-suffix windows ending at the current band.
        let mut acc = 0.0;
        for j in 1..=cur + 1 {
            acc += ready.band_arrived(cur + 1 - j);
            density = density.max(acc / (j as f64 * width));
        }
        // Global average density since the first arrival.
        if let Some(t0) = ready.first_arrival() {
            let elapsed = now - t0;
            if elapsed > 0.0 {
                density = density.max(ready.seen_work() / elapsed);
            }
        }
        // Instantaneous backlog over one band width: covers the first
        // decision (elapsed == 0, windows possibly stale).
        density = density.max(ready.backlog() / width);
        Some(Decision {
            job: first.id,
            speed: (self.factor * density).max(MIN_SPEED),
            recheck_after: None,
        })
    }

    // Stateless: densities are re-derived from the band ledger.
    fn save_state(&self) -> Option<Vec<f64>> {
        Some(vec![])
    }

    fn load_state(&mut self, _state: &[f64]) -> bool {
        true
    }

    fn name(&self) -> String {
        format!("bkp({})", self.factor)
    }
}

/// §4-informed re-planning policy with the serving layer's budget
/// plumbing: each time the backlog changes it re-plans through the
/// [`flow::resilient`](crate::flow::resilient) escalation ladder
/// (retry → relaxed → reference → error, every rung bounded), commits
/// the planned head speed, and caches the plan so steady-state
/// decisions are O(1). Backlogs larger than `plan_cap` — or ones the
/// ladder cannot plan (unequal remaining work, ladder exhaustion) —
/// fall back to the one-block [`SpendAll`]-style speed, so a decision
/// can *degrade* but never stall: the same contract as
/// [`SolveBudget`](crate::budget::SolveBudget)'s
/// degraded-with-certificate results, applied to the online loop.
///
/// Unlike the other policies this one carries real mutable state (the
/// cached plan and the degradation counters), so it implements
/// [`save_state`](OnlinePolicy::save_state) /
/// [`load_state`](OnlinePolicy::load_state) non-trivially and is the
/// stateful test subject for serving-layer snapshot restores.
#[derive(Debug, Clone)]
pub struct FlowReplanner {
    alpha: f64,
    budget: f64,
    /// Largest backlog the ladder is asked to plan exactly; bigger
    /// backlogs use the block fallback (bounded per-decision cost).
    plan_cap: usize,
    /// Cached plan: (ready count, backlog at plan time, planned speed).
    cached: Option<(usize, f64, f64)>,
    /// Decisions that fell back to the block speed.
    fallbacks: u64,
    /// Plans that succeeded only on a degraded ladder rung.
    degraded_plans: u64,
}

impl FlowReplanner {
    /// Create with power-law exponent `alpha > 1`, session energy
    /// `budget`, and the exact-planning cap `plan_cap ≥ 1`.
    ///
    /// # Panics
    /// If `alpha ≤ 1` or `plan_cap == 0`.
    pub fn new(alpha: f64, budget: f64, plan_cap: usize) -> Self {
        assert!(alpha > 1.0, "alpha must exceed 1");
        assert!(plan_cap > 0, "plan_cap must be positive");
        FlowReplanner {
            alpha,
            budget,
            plan_cap,
            cached: None,
            fallbacks: 0,
            degraded_plans: 0,
        }
    }

    /// Decisions that used the block fallback instead of a ladder plan.
    pub fn fallbacks(&self) -> u64 {
        self.fallbacks
    }

    /// Plans produced by a degraded (non-pristine) ladder rung.
    pub fn degraded_plans(&self) -> u64 {
        self.degraded_plans
    }

    /// The one-block fallback speed for the current backlog.
    fn block_speed(&self, backlog: f64, committed: f64) -> f64 {
        PolyPower::new(self.alpha)
            .speed_for_block(backlog, committed)
            .unwrap_or(MIN_SPEED)
            .max(MIN_SPEED)
    }

    /// Plan the backlog through the resilient ladder; `None` when the
    /// backlog is unplannable (too big, unequal works, ladder
    /// exhausted) and the caller must fall back.
    fn plan(&mut self, ready: &dyn ReadyView, committed: f64) -> Option<f64> {
        if ready.len() > self.plan_cap {
            return None;
        }
        // All backlog jobs are available *now*: plan them as an
        // immediate-release §4 instance over their remaining work.
        let jobs: Vec<pas_workload::Job> = ready
            .jobs()
            .iter()
            .map(|p| pas_workload::Job::new(p.id, 0.0, p.remaining))
            .collect();
        let inst = Instance::new(jobs).ok()?;
        let solve =
            crate::flow::resilient::laptop_resilient(&inst, self.alpha, committed, 1e-6).ok()?;
        if solve.degraded() {
            self.degraded_plans += 1;
        }
        // The plan's head job is the earliest-released ready job
        // (immediate release keeps admission order), matching the
        // `ready.first()` the decision runs.
        solve.solution.speeds.first().copied()
    }
}

impl OnlinePolicy for FlowReplanner {
    fn decide(&mut self, _now: f64, ready: &dyn ReadyView, energy_spent: f64) -> Option<Decision> {
        let first = ready.first()?;
        let backlog = ready.backlog();
        let committed = (self.budget - energy_spent).max(0.0);
        let speed = match self.cached {
            Some((len, cached_backlog, speed))
                if len == ready.len() && cached_backlog.to_bits() == backlog.to_bits() =>
            {
                speed
            }
            _ => {
                let speed = match self.plan(ready, committed) {
                    Some(planned) => planned.max(MIN_SPEED),
                    None => {
                        self.fallbacks += 1;
                        self.block_speed(backlog, committed)
                    }
                };
                self.cached = Some((ready.len(), backlog, speed));
                speed
            }
        };
        Some(Decision {
            job: first.id,
            speed,
            recheck_after: None,
        })
    }

    fn save_state(&self) -> Option<Vec<f64>> {
        let mut state = vec![self.fallbacks as f64, self.degraded_plans as f64];
        if let Some((len, backlog, speed)) = self.cached {
            state.push(1.0);
            state.push(len as f64);
            state.push(backlog);
            state.push(speed);
        } else {
            state.push(0.0);
        }
        Some(state)
    }

    fn load_state(&mut self, state: &[f64]) -> bool {
        match state {
            [fallbacks, degraded, flag] if *flag == 0.0 => {
                self.fallbacks = *fallbacks as u64;
                self.degraded_plans = *degraded as u64;
                self.cached = None;
                true
            }
            [fallbacks, degraded, flag, len, backlog, speed] if *flag == 1.0 => {
                self.fallbacks = *fallbacks as u64;
                self.degraded_plans = *degraded as u64;
                self.cached = Some((*len as usize, *backlog, *speed));
                true
            }
            _ => false,
        }
    }

    fn name(&self) -> String {
        format!("flow-replanner(a={},cap={})", self.alpha, self.plan_cap)
    }
}

/// Outcome of one online-vs-offline comparison.
#[derive(Debug, Clone)]
pub struct OnlineReport {
    /// The executed schedule.
    pub schedule: Schedule,
    /// Makespan achieved by the policy.
    pub makespan: f64,
    /// Energy the policy actually consumed.
    pub energy: f64,
    /// Offline-optimal makespan at the *budget* (what the policy was
    /// allowed to spend).
    pub offline_makespan: f64,
    /// `makespan / offline_makespan` — the empirical competitive ratio.
    pub ratio: f64,
    /// Whether the policy stayed within its budget (tolerance 0.1%).
    pub within_budget: bool,
}

/// Execute `policy` on `instance` and compare against the offline
/// frontier at `budget` (experiment E13's inner loop).
///
/// # Errors
/// Simulation errors ([`CoreError::VerificationFailed`] wrapping them)
/// and frontier errors.
pub fn compare_online<M: PowerModel>(
    instance: &Instance,
    model: &M,
    budget: f64,
    policy: &mut dyn OnlinePolicy,
) -> Result<OnlineReport, CoreError> {
    let outcome =
        run_online(instance, model, policy).map_err(|e| CoreError::VerificationFailed {
            reason: format!("online simulation failed: {e}"),
        })?;
    outcome
        .schedule
        .validate(instance, 1e-6)
        .map_err(|e| CoreError::VerificationFailed {
            reason: format!("online schedule invalid: {e}"),
        })?;
    let makespan = metrics::makespan(&outcome.schedule);
    let frontier = Frontier::build(instance, model);
    let offline_makespan = frontier.makespan(model, budget)?;
    Ok(OnlineReport {
        makespan,
        energy: outcome.energy,
        offline_makespan,
        ratio: makespan / offline_makespan,
        within_budget: outcome.energy <= budget * 1.001,
        schedule: outcome.schedule,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pas_power::PolyPower;
    use pas_workload::generators;

    fn paper_instance() -> Instance {
        Instance::from_pairs(&[(0.0, 5.0), (5.0, 2.0), (6.0, 1.0)]).unwrap()
    }

    #[test]
    fn spend_all_is_optimal_on_single_job() {
        // One job, nothing else arrives: spending everything is exactly
        // the offline optimum.
        let inst = Instance::from_pairs(&[(0.0, 4.0)]).unwrap();
        let model = PolyPower::CUBE;
        let mut policy = SpendAll::new(model, 16.0);
        let report = compare_online(&inst, &model, 16.0, &mut policy).unwrap();
        assert!((report.ratio - 1.0).abs() < 1e-6, "ratio {}", report.ratio);
        assert!(report.within_budget);
    }

    #[test]
    fn spend_all_overcommits_on_staggered_arrivals() {
        // The §6 tension: spend-all races ahead, later arrivals starve.
        let inst = paper_instance();
        let model = PolyPower::CUBE;
        let budget = 12.0;
        let mut policy = SpendAll::new(model, budget);
        let report = compare_online(&inst, &model, budget, &mut policy).unwrap();
        assert!(report.ratio >= 1.0 - 1e-9);
        // It finishes (floor speed) but pays in makespan.
        assert!(report.makespan.is_finite());
    }

    #[test]
    fn fractional_spend_stays_within_budget() {
        let model = PolyPower::CUBE;
        for seed in 0..5 {
            let inst = generators::poisson(12, 0.8, (0.5, 2.0), seed);
            let budget = 2.0 * inst.total_work();
            let mut policy = FractionalSpend::new(model, budget, 0.5);
            let report = compare_online(&inst, &model, budget, &mut policy).unwrap();
            assert!(report.within_budget, "seed {seed}: {}", report.energy);
            assert!(report.ratio >= 1.0 - 1e-9, "seed {seed}");
        }
    }

    #[test]
    fn ratios_are_sane_across_policies() {
        let inst = paper_instance();
        let model = PolyPower::CUBE;
        let budget = 17.0;
        // Hedged and clairvoyant policies stay within a small constant
        // of offline OPT on this instance.
        let mut hedged = FractionalSpend::new(model, budget, 0.6);
        let mut constant = ConstantSpeed::for_budget(&model, inst.total_work(), budget).unwrap();
        for policy in [&mut hedged as &mut dyn OnlinePolicy, &mut constant] {
            let report = compare_online(&inst, &model, budget, policy).unwrap();
            assert!(
                report.ratio >= 1.0 - 1e-9 && report.ratio < 10.0,
                "{}: ratio {}",
                policy.name(),
                report.ratio
            );
        }
        // Spend-all is the §6 cautionary tale: it empties the budget on
        // the first job and crawls afterward — the ratio explodes, which
        // is exactly the tension the paper describes.
        let mut spend_all = SpendAll::new(model, budget);
        let report = compare_online(&inst, &model, budget, &mut spend_all).unwrap();
        assert!(report.ratio > 10.0, "spend-all ratio {}", report.ratio);
        assert!(report.ratio.is_finite());
    }

    #[test]
    fn constant_speed_may_beat_budget_or_overshoot() {
        // The clairvoyant constant speed spends exactly the budget if it
        // never idles; with idle gaps it underspends.
        let inst = Instance::from_pairs(&[(0.0, 1.0), (100.0, 1.0)]).unwrap();
        let model = PolyPower::CUBE;
        let budget = 8.0;
        let mut policy = ConstantSpeed::for_budget(&model, 2.0, budget).unwrap();
        let report = compare_online(&inst, &model, budget, &mut policy).unwrap();
        assert!(report.within_budget);
        assert!(report.energy <= budget + 1e-9);
    }

    #[test]
    fn beta_one_equals_spend_all() {
        let inst = paper_instance();
        let model = PolyPower::CUBE;
        let budget = 15.0;
        let mut a = SpendAll::new(model, budget);
        let mut b = FractionalSpend::new(model, budget, 1.0);
        let ra = compare_online(&inst, &model, budget, &mut a).unwrap();
        let rb = compare_online(&inst, &model, budget, &mut b).unwrap();
        assert!((ra.makespan - rb.makespan).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "beta must be in")]
    fn rejects_bad_beta() {
        let _ = FractionalSpend::new(PolyPower::CUBE, 1.0, 0.0);
    }

    #[test]
    fn adaptive_rate_budgets_and_competes() {
        let model = PolyPower::CUBE;
        for seed in 0..5 {
            let inst = generators::poisson(15, 0.8, (0.5, 1.5), seed);
            let budget = 1.5 * inst.total_work();
            let mut policy = AdaptiveRate::new(model, budget, 10.0);
            let report = compare_online(&inst, &model, budget, &mut policy).unwrap();
            assert!(
                report.within_budget,
                "seed {seed}: energy {}",
                report.energy
            );
            assert!(
                report.ratio >= 1.0 - 1e-9 && report.ratio < 50.0,
                "seed {seed}: ratio {}",
                report.ratio
            );
        }
    }

    #[test]
    fn adaptive_rate_converges_to_spend_all_when_arrivals_stop() {
        // Single job: after the (empty) history, backlog == projection
        // quickly, so the ratio approaches the offline optimum.
        let inst = Instance::from_pairs(&[(0.0, 4.0)]).unwrap();
        let model = PolyPower::CUBE;
        let budget = 16.0;
        let mut policy = AdaptiveRate::new(model, budget, 2.0);
        let report = compare_online(&inst, &model, budget, &mut policy).unwrap();
        // Not exactly 1 (early hedging wastes some energy) but close.
        assert!(report.ratio < 2.5, "ratio {}", report.ratio);
    }

    #[test]
    fn adaptive_beats_spend_all_on_bursty_arrivals() {
        let model = PolyPower::CUBE;
        let inst = generators::bursty(3, 5, 15.0, 0.5, (0.5, 1.5), 3);
        let budget = 1.5 * inst.total_work();
        let mut adaptive = AdaptiveRate::new(model, budget, 15.0);
        let mut greedy = SpendAll::new(model, budget);
        let ra = compare_online(&inst, &model, budget, &mut adaptive).unwrap();
        let rg = compare_online(&inst, &model, budget, &mut greedy).unwrap();
        assert!(
            ra.ratio < rg.ratio,
            "adaptive {} should beat spend-all {}",
            ra.ratio,
            rg.ratio
        );
    }

    #[test]
    #[should_panic(expected = "horizon must be positive")]
    fn rejects_bad_horizon() {
        let _ = AdaptiveRate::new(PolyPower::CUBE, 1.0, 0.0);
    }

    #[test]
    fn flow_replanner_plans_equal_work_instances_without_fallback() {
        // Equal works at time 0: every backlog is plannable, so the
        // ladder handles all decisions (no block fallbacks) and the run
        // stays near the *makespan*-optimal frontier — not exactly on
        // it, because the §4 plan minimizes total flow, which fronts
        // more speed than the makespan optimum.
        let inst = Instance::from_pairs(&[(0.0, 2.0), (0.0, 2.0), (0.0, 2.0)]).unwrap();
        let model = PolyPower::CUBE;
        let budget = 24.0;
        let mut policy = FlowReplanner::new(3.0, budget, 64);
        let report = compare_online(&inst, &model, budget, &mut policy).unwrap();
        assert!(report.within_budget);
        assert!(report.ratio < 1.1, "ratio {}", report.ratio);
        assert_eq!(policy.fallbacks(), 0);
    }

    #[test]
    fn flow_replanner_falls_back_on_unequal_backlogs() {
        // Unequal works: `laptop_resilient` rejects with NotEqualWork
        // (non-retryable), so every fresh plan is a block fallback —
        // degraded, never stalled.
        let inst = paper_instance();
        let model = PolyPower::CUBE;
        let budget = 12.0;
        let mut policy = FlowReplanner::new(3.0, budget, 64);
        let report = compare_online(&inst, &model, budget, &mut policy).unwrap();
        assert!(report.ratio.is_finite());
        assert!(policy.fallbacks() > 0);
    }

    #[test]
    fn flow_replanner_plan_cap_bounds_exact_planning() {
        let inst = Instance::from_pairs(&[(0.0, 1.0), (0.0, 1.0), (0.0, 1.0)]).unwrap();
        let model = PolyPower::CUBE;
        let mut policy = FlowReplanner::new(3.0, 8.0, 1);
        let _ = compare_online(&inst, &model, 8.0, &mut policy).unwrap();
        // With cap 1 the 3-job backlog can never be planned exactly.
        assert!(policy.fallbacks() > 0);
    }

    #[test]
    fn flow_replanner_state_round_trips() {
        let inst = paper_instance();
        let model = PolyPower::CUBE;
        let mut policy = FlowReplanner::new(3.0, 12.0, 64);
        let _ = compare_online(&inst, &model, 12.0, &mut policy).unwrap();
        let state = policy.save_state().expect("replanner is snapshot-capable");
        let mut fresh = FlowReplanner::new(3.0, 12.0, 64);
        assert!(fresh.load_state(&state));
        assert_eq!(fresh.fallbacks(), policy.fallbacks());
        assert_eq!(fresh.degraded_plans(), policy.degraded_plans());
        assert_eq!(fresh.cached, policy.cached);
        // A malformed vector is rejected, not silently accepted.
        assert!(!fresh.load_state(&[1.0]));
    }

    #[test]
    #[should_panic(expected = "alpha must exceed 1")]
    fn flow_replanner_rejects_bad_alpha() {
        let _ = FlowReplanner::new(1.0, 1.0, 4);
    }

    #[test]
    fn qoa_stays_within_budget_and_competes() {
        let model = PolyPower::CUBE;
        for seed in 0..5 {
            let inst = generators::poisson(15, 0.8, (0.5, 1.5), seed);
            let budget = 1.5 * inst.total_work();
            // Per-work allowance 1.5 paces spending to exactly `budget`
            // over the whole instance.
            let mut policy = Qoa::new(model, 1.5, 3.0, 8.0);
            let report = compare_online(&inst, &model, budget, &mut policy).unwrap();
            assert!(
                report.within_budget,
                "seed {seed}: energy {} > budget {budget}",
                report.energy
            );
            assert!(
                report.ratio >= 1.0 - 1e-9 && report.ratio < 50.0,
                "seed {seed}: ratio {}",
                report.ratio
            );
        }
    }

    #[test]
    fn qoa_beats_spend_all_on_staggered_arrivals() {
        // The §6 tension again: spend-all empties the budget on the
        // first job; qOA's queue-length speed leaves energy for later
        // arrivals and lands a far smaller ratio.
        let inst = paper_instance();
        let model = PolyPower::CUBE;
        let budget = 17.0;
        let mut qoa = Qoa::new(model, budget / inst.total_work(), 3.0, 8.0);
        let mut greedy = SpendAll::new(model, budget);
        let rq = compare_online(&inst, &model, budget, &mut qoa).unwrap();
        let rg = compare_online(&inst, &model, budget, &mut greedy).unwrap();
        assert!(
            rq.ratio < rg.ratio,
            "qoa {} should beat spend-all {}",
            rq.ratio,
            rg.ratio
        );
        assert!(rq.within_budget);
    }

    #[test]
    #[should_panic(expected = "q must be positive")]
    fn qoa_rejects_bad_q() {
        let _ = Qoa::new(PolyPower::CUBE, 1.0, 3.0, 0.0);
    }

    #[test]
    fn bkp_tracks_density_and_finishes() {
        let model = PolyPower::CUBE;
        for seed in 0..5 {
            let inst = generators::poisson(15, 0.8, (0.5, 1.5), seed);
            let budget = 1.5 * inst.total_work();
            let mut policy = Bkp::default();
            let report = compare_online(&inst, &model, budget, &mut policy).unwrap();
            assert!(
                report.ratio > 0.0 && report.ratio < 50.0,
                "seed {seed}: ratio {}",
                report.ratio
            );
            // A sub-1 ratio is only reachable by outspending the budget
            // the offline optimum was held to — the harness must say so.
            if report.ratio < 1.0 - 1e-9 {
                assert!(!report.within_budget, "seed {seed}: silent overspend");
            }
        }
    }

    #[test]
    fn bkp_single_job_uses_backlog_density() {
        // First decision: no elapsed time, one band — the backlog/width
        // candidate must produce a sane finite speed, not the floor.
        let inst = Instance::from_pairs(&[(0.0, 4.0)]).unwrap();
        let model = PolyPower::CUBE;
        let mut policy = Bkp::default();
        let report = compare_online(&inst, &model, 64.0, &mut policy).unwrap();
        assert!(report.makespan.is_finite());
        // Density 4.0/width with factor 1.3 ⇒ speed well above MIN_SPEED,
        // so the run finishes quickly rather than crawling.
        assert!(report.makespan < 10.0, "makespan {}", report.makespan);
    }

    #[test]
    #[should_panic(expected = "factor must be positive")]
    fn bkp_rejects_bad_factor() {
        let _ = Bkp::new(0.0);
    }
}
