//! Online power-aware scheduling with an energy budget (paper §6).
//!
//! §6 names this the most important open problem: *"If the algorithm
//! cannot know when the last job has arrived, it must balance the need
//! to run quickly to minimize makespan if no other jobs arrive against
//! the need to conserve energy in case more jobs do arrive."* No
//! algorithms with guarantees are known; this module provides the
//! experimental apparatus the question calls for — a family of natural
//! policies and a harness measuring their empirical competitive ratio
//! against the offline frontier (experiment E13).
//!
//! Policies (all implement [`pas_sim::OnlinePolicy`]):
//!
//! * [`SpendAll`] — run the entire backlog as one block spending all
//!   remaining energy (optimal if nothing else arrives; ruinous when the
//!   adversary keeps arriving);
//! * [`FractionalSpend`] — hedge by committing only a `β` fraction of
//!   the remaining energy to the current backlog;
//! * [`ConstantSpeed`] — clairvoyant baseline: the single speed that an
//!   oracle knowing the total work would pick to spend the budget.

use crate::error::CoreError;
use crate::makespan::frontier::Frontier;
use pas_power::PowerModel;
use pas_sim::online::{run_online, Decision, OnlinePolicy, ReadySet};
use pas_sim::{metrics, Schedule};
use pas_workload::Instance;

/// Floor speed used when a policy's energy heuristic degenerates (e.g.
/// remaining energy rounds to zero): keeps runs terminating, at the cost
/// of blowing past the budget — which the harness then reports honestly.
const MIN_SPEED: f64 = 1e-6;

/// Run the whole backlog as one block spending all remaining energy.
#[derive(Debug, Clone)]
pub struct SpendAll<M> {
    model: M,
    budget: f64,
}

impl<M: PowerModel> SpendAll<M> {
    /// Create with the session energy budget.
    pub fn new(model: M, budget: f64) -> Self {
        SpendAll { model, budget }
    }
}

impl<M: PowerModel> OnlinePolicy for SpendAll<M> {
    fn decide(&mut self, _now: f64, ready: &ReadySet, energy_spent: f64) -> Option<Decision> {
        let first = ready.first()?;
        let backlog = ready.backlog();
        let remaining_energy = (self.budget - energy_spent).max(0.0);
        let speed = self
            .model
            .speed_for_block(backlog, remaining_energy)
            .unwrap_or(MIN_SPEED)
            .max(MIN_SPEED);
        Some(Decision {
            job: first.id,
            speed,
            recheck_after: None,
        })
    }

    fn name(&self) -> String {
        "spend-all".to_string()
    }
}

/// Commit only a `beta` fraction of the remaining energy to the current
/// backlog (hedging against future arrivals).
#[derive(Debug, Clone)]
pub struct FractionalSpend<M> {
    model: M,
    budget: f64,
    beta: f64,
}

impl<M: PowerModel> FractionalSpend<M> {
    /// Create with budget and hedge fraction `beta ∈ (0, 1]`.
    ///
    /// # Panics
    /// If `beta` is outside `(0, 1]`.
    pub fn new(model: M, budget: f64, beta: f64) -> Self {
        assert!(beta > 0.0 && beta <= 1.0, "beta must be in (0, 1]");
        FractionalSpend {
            model,
            budget,
            beta,
        }
    }
}

impl<M: PowerModel> OnlinePolicy for FractionalSpend<M> {
    fn decide(&mut self, _now: f64, ready: &ReadySet, energy_spent: f64) -> Option<Decision> {
        let first = ready.first()?;
        let backlog = ready.backlog();
        let committed = self.beta * (self.budget - energy_spent).max(0.0);
        let speed = self
            .model
            .speed_for_block(backlog, committed)
            .unwrap_or(MIN_SPEED)
            .max(MIN_SPEED);
        Some(Decision {
            job: first.id,
            speed,
            recheck_after: None,
        })
    }

    fn name(&self) -> String {
        format!("fractional-spend({})", self.beta)
    }
}

/// Rate-adaptive hedging: estimates the arrival rate of work from what
/// it has seen so far and reserves energy for the extrapolated future.
///
/// At each decision, with `t` elapsed since the first arrival and `W_seen`
/// work observed, the policy extrapolates `Ŵ = W_seen·(1 + horizon/t)`
/// future-inclusive work and commits only `backlog/Ŵ` of the remaining
/// energy to the current backlog. Early on it hedges hard (like a small
/// `β`); once arrivals stop materializing the denominator stops growing
/// and it converges to spend-all — addressing exactly the balance §6
/// describes, with no oracle knowledge.
#[derive(Debug, Clone)]
pub struct AdaptiveRate<M> {
    model: M,
    budget: f64,
    /// How far ahead (in time units) to extrapolate the observed rate.
    horizon: f64,
}

impl<M: PowerModel> AdaptiveRate<M> {
    /// Create with the session budget and an extrapolation `horizon > 0`.
    ///
    /// # Panics
    /// If `horizon` is not positive.
    pub fn new(model: M, budget: f64, horizon: f64) -> Self {
        assert!(horizon > 0.0, "horizon must be positive");
        AdaptiveRate {
            model,
            budget,
            horizon,
        }
    }
}

impl<M: PowerModel> OnlinePolicy for AdaptiveRate<M> {
    fn decide(&mut self, now: f64, ready: &ReadySet, energy_spent: f64) -> Option<Decision> {
        // The engine's ReadySet maintains the arrival history the old
        // implementation tracked with its own HashSet sweep — this
        // decide is O(1).
        let first = ready.first()?;
        let backlog = ready.backlog();
        let seen_work = ready.seen_work();
        let elapsed = (now - ready.first_arrival().unwrap_or(now)).max(1e-9);
        // Extrapolated total outstanding work if arrivals continue at the
        // observed average rate for `horizon` more time.
        let projected = seen_work * (1.0 + self.horizon / elapsed) - (seen_work - backlog);
        let share = (backlog / projected.max(backlog)).clamp(0.0, 1.0);
        let committed = share * (self.budget - energy_spent).max(0.0);
        let speed = self
            .model
            .speed_for_block(backlog, committed)
            .unwrap_or(MIN_SPEED)
            .max(MIN_SPEED);
        Some(Decision {
            job: first.id,
            speed,
            // Re-check periodically so the estimate refreshes even
            // without arrivals.
            recheck_after: Some(self.horizon / 8.0),
        })
    }

    fn name(&self) -> String {
        format!("adaptive-rate(h={})", self.horizon)
    }
}

/// Clairvoyant single-speed baseline: knows the instance's total work in
/// advance and runs everything at `g⁻¹(E/W)`.
#[derive(Debug, Clone)]
pub struct ConstantSpeed {
    speed: f64,
}

impl ConstantSpeed {
    /// The oracle speed for `budget` over `total_work` under `model`.
    ///
    /// # Errors
    /// Propagates the power-model inverse failure.
    pub fn for_budget<M: PowerModel>(
        model: &M,
        total_work: f64,
        budget: f64,
    ) -> Result<Self, CoreError> {
        Ok(ConstantSpeed {
            speed: model.speed_for_block(total_work, budget)?,
        })
    }
}

impl OnlinePolicy for ConstantSpeed {
    fn decide(&mut self, _now: f64, ready: &ReadySet, _spent: f64) -> Option<Decision> {
        ready.first().map(|p| Decision {
            job: p.id,
            speed: self.speed,
            recheck_after: None,
        })
    }

    fn name(&self) -> String {
        format!("constant({})", self.speed)
    }
}

/// Outcome of one online-vs-offline comparison.
#[derive(Debug, Clone)]
pub struct OnlineReport {
    /// The executed schedule.
    pub schedule: Schedule,
    /// Makespan achieved by the policy.
    pub makespan: f64,
    /// Energy the policy actually consumed.
    pub energy: f64,
    /// Offline-optimal makespan at the *budget* (what the policy was
    /// allowed to spend).
    pub offline_makespan: f64,
    /// `makespan / offline_makespan` — the empirical competitive ratio.
    pub ratio: f64,
    /// Whether the policy stayed within its budget (tolerance 0.1%).
    pub within_budget: bool,
}

/// Execute `policy` on `instance` and compare against the offline
/// frontier at `budget` (experiment E13's inner loop).
///
/// # Errors
/// Simulation errors ([`CoreError::VerificationFailed`] wrapping them)
/// and frontier errors.
pub fn compare_online<M: PowerModel>(
    instance: &Instance,
    model: &M,
    budget: f64,
    policy: &mut dyn OnlinePolicy,
) -> Result<OnlineReport, CoreError> {
    let outcome =
        run_online(instance, model, policy).map_err(|e| CoreError::VerificationFailed {
            reason: format!("online simulation failed: {e}"),
        })?;
    outcome
        .schedule
        .validate(instance, 1e-6)
        .map_err(|e| CoreError::VerificationFailed {
            reason: format!("online schedule invalid: {e}"),
        })?;
    let makespan = metrics::makespan(&outcome.schedule);
    let frontier = Frontier::build(instance, model);
    let offline_makespan = frontier.makespan(model, budget)?;
    Ok(OnlineReport {
        makespan,
        energy: outcome.energy,
        offline_makespan,
        ratio: makespan / offline_makespan,
        within_budget: outcome.energy <= budget * 1.001,
        schedule: outcome.schedule,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pas_power::PolyPower;
    use pas_workload::generators;

    fn paper_instance() -> Instance {
        Instance::from_pairs(&[(0.0, 5.0), (5.0, 2.0), (6.0, 1.0)]).unwrap()
    }

    #[test]
    fn spend_all_is_optimal_on_single_job() {
        // One job, nothing else arrives: spending everything is exactly
        // the offline optimum.
        let inst = Instance::from_pairs(&[(0.0, 4.0)]).unwrap();
        let model = PolyPower::CUBE;
        let mut policy = SpendAll::new(model, 16.0);
        let report = compare_online(&inst, &model, 16.0, &mut policy).unwrap();
        assert!((report.ratio - 1.0).abs() < 1e-6, "ratio {}", report.ratio);
        assert!(report.within_budget);
    }

    #[test]
    fn spend_all_overcommits_on_staggered_arrivals() {
        // The §6 tension: spend-all races ahead, later arrivals starve.
        let inst = paper_instance();
        let model = PolyPower::CUBE;
        let budget = 12.0;
        let mut policy = SpendAll::new(model, budget);
        let report = compare_online(&inst, &model, budget, &mut policy).unwrap();
        assert!(report.ratio >= 1.0 - 1e-9);
        // It finishes (floor speed) but pays in makespan.
        assert!(report.makespan.is_finite());
    }

    #[test]
    fn fractional_spend_stays_within_budget() {
        let model = PolyPower::CUBE;
        for seed in 0..5 {
            let inst = generators::poisson(12, 0.8, (0.5, 2.0), seed);
            let budget = 2.0 * inst.total_work();
            let mut policy = FractionalSpend::new(model, budget, 0.5);
            let report = compare_online(&inst, &model, budget, &mut policy).unwrap();
            assert!(report.within_budget, "seed {seed}: {}", report.energy);
            assert!(report.ratio >= 1.0 - 1e-9, "seed {seed}");
        }
    }

    #[test]
    fn ratios_are_sane_across_policies() {
        let inst = paper_instance();
        let model = PolyPower::CUBE;
        let budget = 17.0;
        // Hedged and clairvoyant policies stay within a small constant
        // of offline OPT on this instance.
        let mut hedged = FractionalSpend::new(model, budget, 0.6);
        let mut constant = ConstantSpeed::for_budget(&model, inst.total_work(), budget).unwrap();
        for policy in [&mut hedged as &mut dyn OnlinePolicy, &mut constant] {
            let report = compare_online(&inst, &model, budget, policy).unwrap();
            assert!(
                report.ratio >= 1.0 - 1e-9 && report.ratio < 10.0,
                "{}: ratio {}",
                policy.name(),
                report.ratio
            );
        }
        // Spend-all is the §6 cautionary tale: it empties the budget on
        // the first job and crawls afterward — the ratio explodes, which
        // is exactly the tension the paper describes.
        let mut spend_all = SpendAll::new(model, budget);
        let report = compare_online(&inst, &model, budget, &mut spend_all).unwrap();
        assert!(report.ratio > 10.0, "spend-all ratio {}", report.ratio);
        assert!(report.ratio.is_finite());
    }

    #[test]
    fn constant_speed_may_beat_budget_or_overshoot() {
        // The clairvoyant constant speed spends exactly the budget if it
        // never idles; with idle gaps it underspends.
        let inst = Instance::from_pairs(&[(0.0, 1.0), (100.0, 1.0)]).unwrap();
        let model = PolyPower::CUBE;
        let budget = 8.0;
        let mut policy = ConstantSpeed::for_budget(&model, 2.0, budget).unwrap();
        let report = compare_online(&inst, &model, budget, &mut policy).unwrap();
        assert!(report.within_budget);
        assert!(report.energy <= budget + 1e-9);
    }

    #[test]
    fn beta_one_equals_spend_all() {
        let inst = paper_instance();
        let model = PolyPower::CUBE;
        let budget = 15.0;
        let mut a = SpendAll::new(model, budget);
        let mut b = FractionalSpend::new(model, budget, 1.0);
        let ra = compare_online(&inst, &model, budget, &mut a).unwrap();
        let rb = compare_online(&inst, &model, budget, &mut b).unwrap();
        assert!((ra.makespan - rb.makespan).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "beta must be in")]
    fn rejects_bad_beta() {
        let _ = FractionalSpend::new(PolyPower::CUBE, 1.0, 0.0);
    }

    #[test]
    fn adaptive_rate_budgets_and_competes() {
        let model = PolyPower::CUBE;
        for seed in 0..5 {
            let inst = generators::poisson(15, 0.8, (0.5, 1.5), seed);
            let budget = 1.5 * inst.total_work();
            let mut policy = AdaptiveRate::new(model, budget, 10.0);
            let report = compare_online(&inst, &model, budget, &mut policy).unwrap();
            assert!(
                report.within_budget,
                "seed {seed}: energy {}",
                report.energy
            );
            assert!(
                report.ratio >= 1.0 - 1e-9 && report.ratio < 50.0,
                "seed {seed}: ratio {}",
                report.ratio
            );
        }
    }

    #[test]
    fn adaptive_rate_converges_to_spend_all_when_arrivals_stop() {
        // Single job: after the (empty) history, backlog == projection
        // quickly, so the ratio approaches the offline optimum.
        let inst = Instance::from_pairs(&[(0.0, 4.0)]).unwrap();
        let model = PolyPower::CUBE;
        let budget = 16.0;
        let mut policy = AdaptiveRate::new(model, budget, 2.0);
        let report = compare_online(&inst, &model, budget, &mut policy).unwrap();
        // Not exactly 1 (early hedging wastes some energy) but close.
        assert!(report.ratio < 2.5, "ratio {}", report.ratio);
    }

    #[test]
    fn adaptive_beats_spend_all_on_bursty_arrivals() {
        let model = PolyPower::CUBE;
        let inst = generators::bursty(3, 5, 15.0, 0.5, (0.5, 1.5), 3);
        let budget = 1.5 * inst.total_work();
        let mut adaptive = AdaptiveRate::new(model, budget, 15.0);
        let mut greedy = SpendAll::new(model, budget);
        let ra = compare_online(&inst, &model, budget, &mut adaptive).unwrap();
        let rg = compare_online(&inst, &model, budget, &mut greedy).unwrap();
        assert!(
            ra.ratio < rg.ratio,
            "adaptive {} should beat spend-all {}",
            ra.ratio,
            rg.ratio
        );
    }

    #[test]
    #[should_panic(expected = "horizon must be positive")]
    fn rejects_bad_horizon() {
        let _ = AdaptiveRate::new(PolyPower::CUBE, 1.0, 0.0);
    }
}
