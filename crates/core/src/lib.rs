//! # pas-core
//!
//! The algorithms of **Bunde, "Power-aware scheduling for makespan and
//! flow", SPAA 2006** — plus the baselines and related-work substrates
//! the paper builds on.
//!
//! Power-aware scheduling treats processor speed as a decision variable:
//! running job `J_i` (work `w_i`, release `r_i`) at speed `σ` takes
//! `w_i/σ` time and consumes `P(σ)·w_i/σ` energy for a strictly convex
//! power curve `P`. Energy and schedule quality pull in opposite
//! directions, so the object of study is the set of **non-dominated
//! schedules**; fixing energy gives the *laptop problem*, fixing quality
//! the *server problem*.
//!
//! | Module | Paper section | Contents |
//! |--------|---------------|----------|
//! | [`makespan`] | §3 | `IncMerge` (laptop, linear time), the full energy↔makespan frontier with closed-form derivatives (Figures 1–3), O(n²)-style DP and quadratic MoveRight baselines, server problem |
//! | [`flow`] | §4 | Theorem-1 (KKT) relations, the arbitrarily-good flow approximation for equal-work jobs, the flow↔energy curve, and the Theorem-8 degree-12 impossibility witness |
//! | [`multi`] | §5 | Cyclic assignment (Theorem 10), exact equal-work multiprocessor makespan, equal-work multiprocessor flow approximation, the Partition reduction of Theorem 11 with exact solvers and `L_α`-norm heuristics |
//! | [`deadline`] | §2 (related work) | Yao–Demers–Shenker optimal offline deadline scheduling (YDS) and the online AVR / Optimal Available algorithms |
//! | [`precedence`] | §2 (related work) | Pruhs–van Stee–Uthaisombut-style precedence-constrained makespan: DAGs, power-equality uniform-speed heuristic, energy-parametric lower bounds |
//! | [`online`] | §6 (future work) | Budgeted online policies for makespan/flow and the empirical competitive-ratio harness |
//! | [`discrete`] | §6 (future work) | Two-adjacent-level emulation on discrete speed sets and switch-overhead accounting |
//!
//! Everything is generic over [`pas_power::PowerModel`] except where the
//! paper itself specializes (Theorem 1 and Theorem 8 are stated for
//! `P = σ^α`; the flow solver follows suit and says so in its types).

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod deadline;
pub mod discrete;
pub mod error;
pub mod flow;
pub mod makespan;
pub mod multi;
pub mod online;
pub mod precedence;

pub use error::CoreError;
