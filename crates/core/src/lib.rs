//! # pas-core
//!
//! The algorithms of **Bunde, "Power-aware scheduling for makespan and
//! flow", SPAA 2006** — plus the baselines and related-work substrates
//! the paper builds on.
//!
//! Power-aware scheduling treats processor speed as a decision variable:
//! running job `J_i` (work `w_i`, release `r_i`) at speed `σ` takes
//! `w_i/σ` time and consumes `P(σ)·w_i/σ` energy for a strictly convex
//! power curve `P`. Energy and schedule quality pull in opposite
//! directions, so the object of study is the set of **non-dominated
//! schedules**; fixing energy gives the *laptop problem*, fixing quality
//! the *server problem*.
//!
//! | Module | Paper section | Contents |
//! |--------|---------------|----------|
//! | [`makespan`] | §3 | `IncMerge` (laptop, linear time), the full energy↔makespan frontier with closed-form derivatives (Figures 1–3), O(n²)-style DP and quadratic MoveRight baselines, server problem |
//! | [`flow`] | §4 | Theorem-1 (KKT) relations, the arbitrarily-good flow approximation for equal-work jobs, the flow↔energy curve, and the Theorem-8 degree-12 impossibility witness |
//! | [`multi`] | §5 | Cyclic assignment (Theorem 10), exact equal-work multiprocessor makespan, equal-work multiprocessor flow approximation, the Partition reduction of Theorem 11 with exact solvers and `L_α`-norm heuristics |
//! | [`deadline`] | §2 (related work) | Yao–Demers–Shenker optimal offline deadline scheduling (YDS) and the online AVR / Optimal Available algorithms |
//! | [`precedence`] | §2 (related work) | Pruhs–van Stee–Uthaisombut-style precedence-constrained makespan: DAGs, power-equality uniform-speed heuristic, energy-parametric lower bounds |
//! | [`online`] | §6 (future work) | Budgeted online policies for makespan/flow and the empirical competitive-ratio harness |
//! | [`discrete`] | §6 (future work) | Two-adjacent-level emulation on discrete speed sets and switch-overhead accounting |
//!
//! Everything is generic over [`pas_power::PowerModel`] except where the
//! paper itself specializes (Theorem 1 and Theorem 8 are stated for
//! `P = σ^α`; the flow solver follows suit and says so in its types).
//!
//! `DESIGN.md` at the repository root carries the full architecture
//! diagram, the theorem-by-theorem paper-to-code map, and the
//! engine-vs-reference convention that keeps the four fast engines
//! (YDS, flow, partition, OA) honest against their kept references.
//!
//! # Quick start
//!
//! The paper's §3.2 running example (`r = [0, 5, 6]`, `w = [5, 2, 1]`,
//! `P = σ³`, Figures 1–3), end to end — the same flow as
//! `examples/quickstart.rs`, doc-tested so it can never rot:
//!
//! ```rust
//! use pas_core::makespan::{self, Frontier};
//! use pas_power::PolyPower;
//! use pas_sim::metrics;
//! use pas_workload::Instance;
//!
//! let instance = Instance::from_pairs(&[(0.0, 5.0), (5.0, 2.0), (6.0, 1.0)]).unwrap();
//! let model = PolyPower::CUBE;
//!
//! // Laptop problem: fix energy, minimize makespan (linear time).
//! let solution = makespan::laptop(&instance, &model, 21.0).unwrap();
//! assert!((solution.makespan() - (6.0 + 1.0 / 8f64.sqrt())).abs() < 1e-9);
//!
//! // The full non-dominated frontier: configurations change at E = 17 and 8,
//! // and the energy→makespan derivative is closed-form (M'(8) = -1/2).
//! let frontier = Frontier::build(&instance, &model);
//! let breakpoints = frontier.breakpoints();
//! assert_eq!(breakpoints.len(), 2);
//! assert!((breakpoints[0] - 17.0).abs() < 1e-6 || (breakpoints[0] - 8.0).abs() < 1e-6);
//! assert!((frontier.makespan_derivative(&model, 8.0).unwrap() + 0.5).abs() < 1e-9);
//!
//! // Server problem: fix makespan, minimize energy (the inverse query).
//! let energy = frontier.energy_for_makespan(&model, 6.5).unwrap();
//! assert!((energy - 17.0).abs() < 1e-9);
//!
//! // Schedules are first-class and validated.
//! let schedule = solution.to_schedule(&instance);
//! schedule.validate(&instance, 1e-7).unwrap();
//! assert!((metrics::energy(&schedule, &model) - 21.0).abs() < 1e-7);
//!
//! // §5 multiprocessor: minimizing makespan at immediate releases is the
//! // L_α-norm assignment problem (Theorem 11) — here an even split.
//! let (labels, norm) = pas_core::multi::partition::min_norm_assignment(
//!     &[3.0, 1.0, 2.0, 2.0], 2, 3.0);
//! assert!((norm - 2.0 * 4.0_f64.powi(3)).abs() < 1e-9);
//! assert_eq!(labels.len(), 4);
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod budget;
pub mod deadline;
pub mod discrete;
pub mod error;
pub mod flow;
pub mod makespan;
pub mod multi;
pub mod online;
pub mod precedence;

pub use budget::{Budgeted, Degradation, SolveBudget};
pub use error::CoreError;
