//! Precedence-constrained power-aware makespan (paper §2 related work).
//!
//! Pruhs, van Stee and Uthaisombut study the laptop problem for jobs
//! with **precedence constraints**, all released immediately, on `m`
//! speed-scaled machines sharing an energy budget. Their key structural
//! fact — the *power equality* — says the total power drawn is constant
//! over time in an optimal schedule; they binary-search that level and
//! reduce to scheduling on related fixed-speed machines, obtaining an
//! `O(log^{1+2/α} m)`-approximation. The paper reproduced here cites
//! this line and notes the technique breaks once jobs have release
//! dates.
//!
//! This module implements the executable core of that related work:
//!
//! * [`DagInstance`] — works + precedence DAG, with validation, topo
//!   order, critical-path and load statistics;
//! * [`lower_bounds`] — two energy-parametric lower bounds every
//!   schedule obeys (aggregate work spread over `m` machines; the
//!   critical path granted the *whole* budget);
//! * [`uniform_speed_schedule`] — the power-equality heuristic in its
//!   simplest defensible form: all machines at one common speed `σ`
//!   (total power `m·P(σ)` is then constant while all run), jobs placed
//!   by Graham list scheduling in topological order, `σ` chosen to spend
//!   the budget exactly on the realized busy time. Graham's bound makes
//!   it a `(2 − 1/m)`-approximation *in time* against the same-speed
//!   optimum; the experiment table (E16) records measured ratios to the
//!   lower bounds.

use crate::error::CoreError;
use pas_numeric::compare::is_positive_finite;
use pas_power::PowerModel;
use pas_sim::{metrics, Schedule, Slice};

/// A precedence-constrained instance: all jobs released at time 0.
#[derive(Debug, Clone)]
pub struct DagInstance {
    works: Vec<f64>,
    /// Edges `u -> v`: `v` may start only after `u` completes.
    edges: Vec<(usize, usize)>,
    /// Adjacency (successors) derived from `edges`.
    succ: Vec<Vec<usize>>,
    /// Predecessor counts.
    pred_count: Vec<usize>,
    topo: Vec<usize>,
}

impl DagInstance {
    /// Build and validate: positive works, in-range edge endpoints, no
    /// self-loops, acyclic.
    ///
    /// # Errors
    /// [`CoreError::VerificationFailed`] describing the violation.
    pub fn new(works: Vec<f64>, edges: Vec<(usize, usize)>) -> Result<Self, CoreError> {
        let n = works.len();
        if n == 0 {
            return Err(CoreError::VerificationFailed {
                reason: "DAG instance needs at least one job".to_string(),
            });
        }
        if let Some(w) = works.iter().find(|w| !is_positive_finite(**w)) {
            return Err(CoreError::VerificationFailed {
                reason: format!("invalid work {w}"),
            });
        }
        let mut succ = vec![Vec::new(); n];
        let mut pred_count = vec![0usize; n];
        for &(u, v) in &edges {
            if u >= n || v >= n || u == v {
                return Err(CoreError::VerificationFailed {
                    reason: format!("invalid edge ({u}, {v}) for {n} jobs"),
                });
            }
            succ[u].push(v);
            pred_count[v] += 1;
        }
        // Kahn's algorithm for the topological order / cycle detection.
        let mut topo = Vec::with_capacity(n);
        let mut ready: Vec<usize> = (0..n).filter(|&v| pred_count[v] == 0).collect();
        let mut remaining = pred_count.clone();
        while let Some(v) = ready.pop() {
            topo.push(v);
            for &w in &succ[v] {
                remaining[w] -= 1;
                if remaining[w] == 0 {
                    ready.push(w);
                }
            }
        }
        if topo.len() != n {
            return Err(CoreError::VerificationFailed {
                reason: "precedence graph has a cycle".to_string(),
            });
        }
        Ok(DagInstance {
            works,
            edges,
            succ,
            pred_count,
            topo,
        })
    }

    /// A chain `0 -> 1 -> … -> n-1`.
    ///
    /// # Errors
    /// As [`DagInstance::new`].
    pub fn chain(works: Vec<f64>) -> Result<Self, CoreError> {
        let edges = (1..works.len()).map(|v| (v - 1, v)).collect();
        DagInstance::new(works, edges)
    }

    /// An independent set (no edges) — reduces to the Theorem-11 world.
    ///
    /// # Errors
    /// As [`DagInstance::new`].
    pub fn independent(works: Vec<f64>) -> Result<Self, CoreError> {
        DagInstance::new(works, Vec::new())
    }

    /// A seeded random layered DAG: `layers` layers of `width` jobs,
    /// each job depending on each job of the previous layer with
    /// probability `edge_prob`; works uniform in `work_range`.
    ///
    /// # Panics
    /// On degenerate parameters (`layers`/`width` zero, bad range or
    /// probability).
    pub fn random_layered(
        layers: usize,
        width: usize,
        edge_prob: f64,
        work_range: (f64, f64),
        seed: u64,
    ) -> Self {
        use rand::distributions::{Distribution, Uniform};
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        assert!(layers > 0 && width > 0, "need positive dimensions");
        assert!((0.0..=1.0).contains(&edge_prob), "probability in [0,1]");
        assert!(
            work_range.0 > 0.0 && work_range.1 >= work_range.0,
            "work range must be positive and ordered"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let wrk = Uniform::new_inclusive(work_range.0, work_range.1);
        let n = layers * width;
        let works: Vec<f64> = (0..n).map(|_| wrk.sample(&mut rng)).collect();
        let mut edges = Vec::new();
        for layer in 1..layers {
            for v in 0..width {
                for u in 0..width {
                    if rng.gen_bool(edge_prob) {
                        edges.push(((layer - 1) * width + u, layer * width + v));
                    }
                }
            }
        }
        DagInstance::new(works, edges).expect("layered construction is acyclic")
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.works.len()
    }

    /// Always false (construction rejects empty).
    pub fn is_empty(&self) -> bool {
        self.works.is_empty()
    }

    /// Job works.
    pub fn works(&self) -> &[f64] {
        &self.works
    }

    /// The precedence edges.
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// A topological order of the jobs.
    pub fn topological_order(&self) -> &[usize] {
        &self.topo
    }

    /// Total work.
    pub fn total_work(&self) -> f64 {
        self.works.iter().sum()
    }

    /// Work of the heaviest chain (critical path in work units).
    pub fn critical_path_work(&self) -> f64 {
        let mut longest = vec![0.0f64; self.len()];
        for &v in self.topo.iter().rev() {
            let tail = self.succ[v]
                .iter()
                .map(|&w| longest[w])
                .fold(0.0f64, f64::max);
            longest[v] = self.works[v] + tail;
        }
        (0..self.len())
            .filter(|&v| self.pred_count[v] == 0)
            .map(|v| longest[v])
            .fold(0.0, f64::max)
    }

    /// Check a schedule respects the precedence edges (each successor
    /// starts no earlier than every predecessor's completion).
    ///
    /// # Errors
    /// [`CoreError::VerificationFailed`] naming the violated edge.
    pub fn validate_precedence(&self, schedule: &Schedule, tol: f64) -> Result<(), CoreError> {
        let starts = schedule.start_times();
        let completions = schedule.completion_times();
        for &(u, v) in &self.edges {
            let (cu, sv) = (
                completions.get(&(u as u32)).copied().unwrap_or(0.0),
                starts.get(&(v as u32)).copied().unwrap_or(0.0),
            );
            if sv < cu - tol {
                return Err(CoreError::VerificationFailed {
                    reason: format!("edge {u}->{v} violated: start {sv} < completion {cu}"),
                });
            }
        }
        Ok(())
    }
}

/// The two energy-parametric makespan lower bounds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LowerBounds {
    /// Aggregate bound: all `m` machines fully busy at a common speed
    /// spending the budget: `T ≥ W/(m·g⁻¹(E/W))`.
    pub aggregate: f64,
    /// Critical-path bound: the heaviest chain runs sequentially; even
    /// granting it the entire budget, `T ≥ C/g⁻¹(E/C)`.
    pub critical_path: f64,
}

impl LowerBounds {
    /// The binding bound.
    pub fn best(&self) -> f64 {
        self.aggregate.max(self.critical_path)
    }
}

/// Compute [`LowerBounds`] for `instance` on `m` machines with `budget`.
///
/// # Errors
/// [`CoreError::InvalidBudget`]; power-model errors from the speed
/// solves.
pub fn lower_bounds<M: PowerModel>(
    instance: &DagInstance,
    model: &M,
    m: usize,
    budget: f64,
) -> Result<LowerBounds, CoreError> {
    if !is_positive_finite(budget) {
        return Err(CoreError::InvalidBudget { budget });
    }
    let w = instance.total_work();
    let c = instance.critical_path_work();
    let sigma_w = model.speed_for_block(w, budget)?;
    let sigma_c = model.speed_for_block(c, budget)?;
    Ok(LowerBounds {
        aggregate: w / (m as f64 * sigma_w),
        critical_path: c / sigma_c,
    })
}

/// Result of the uniform-speed power-equality heuristic.
#[derive(Debug, Clone)]
pub struct DagSchedule {
    /// The executed schedule (`m` machines).
    pub schedule: Schedule,
    /// Its makespan.
    pub makespan: f64,
    /// The common machine speed chosen.
    pub speed: f64,
    /// Energy consumed (equals the budget by construction, to the
    /// solver tolerance).
    pub energy: f64,
}

/// Graham list scheduling at unit speed, topological order. Returns per
/// job `(machine, start, end)` in unit-speed time.
fn graham_unit_speed(instance: &DagInstance, m: usize) -> Vec<(usize, f64, f64)> {
    let n = instance.len();
    let mut placement = vec![(0usize, 0.0f64, 0.0f64); n];
    let mut machine_free = vec![0.0f64; m];
    for &v in instance.topological_order() {
        // Earliest start: all predecessors done.
        let pred_done = instance
            .edges
            .iter()
            .filter(|&&(_, t)| t == v)
            .map(|&(s, _)| placement[s].2)
            .fold(0.0f64, f64::max);
        // Greedy: machine that lets the job start (and hence finish)
        // earliest.
        let (best_machine, start) = machine_free
            .iter()
            .enumerate()
            .map(|(k, &free)| (k, free.max(pred_done)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("m > 0");
        let end = start + instance.works[v];
        placement[v] = (best_machine, start, end);
        machine_free[best_machine] = end;
    }
    placement
}

/// The uniform-speed heuristic: Graham list scheduling at unit speed,
/// then one common speed `σ` chosen so the realized busy time spends
/// `budget` exactly (`Σ P(σ)·(w_v/σ) = W·g(σ) = E` — independent of the
/// placement, so no iteration is needed).
///
/// # Errors
/// [`CoreError::InvalidBudget`]; power-model errors.
///
/// # Panics
/// If `m == 0`.
pub fn uniform_speed_schedule<M: PowerModel>(
    instance: &DagInstance,
    model: &M,
    m: usize,
    budget: f64,
) -> Result<DagSchedule, CoreError> {
    assert!(m > 0, "need at least one machine");
    if !is_positive_finite(budget) {
        return Err(CoreError::InvalidBudget { budget });
    }
    // Busy time is W/σ regardless of placement; energy = W·g(σ).
    let sigma = model.speed_for_block(instance.total_work(), budget)?;
    let placement = graham_unit_speed(instance, m);

    let mut schedule = Schedule::with_machines(m);
    for (v, &(machine, start, end)) in placement.iter().enumerate() {
        schedule.push(
            machine,
            Slice::new(v as u32, start / sigma, end / sigma, sigma),
        );
    }
    let makespan = metrics::makespan(&schedule);
    let energy = metrics::energy(&schedule, model);
    Ok(DagSchedule {
        makespan,
        speed: sigma,
        energy,
        schedule,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pas_power::PolyPower;

    fn diamond() -> DagInstance {
        //      0
        //    /   \
        //   1     2
        //    \   /
        //      3
        DagInstance::new(
            vec![1.0, 2.0, 3.0, 1.0],
            vec![(0, 1), (0, 2), (1, 3), (2, 3)],
        )
        .unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(DagInstance::new(vec![], vec![]).is_err());
        assert!(DagInstance::new(vec![1.0], vec![(0, 0)]).is_err()); // self loop
        assert!(DagInstance::new(vec![1.0, 1.0], vec![(0, 5)]).is_err()); // range
        assert!(DagInstance::new(vec![1.0, 1.0], vec![(0, 1), (1, 0)]).is_err()); // cycle
        assert!(DagInstance::new(vec![1.0, -1.0], vec![]).is_err()); // work
    }

    #[test]
    fn topological_order_respects_edges() {
        let dag = diamond();
        let pos: Vec<usize> = {
            let mut p = vec![0; 4];
            for (k, &v) in dag.topological_order().iter().enumerate() {
                p[v] = k;
            }
            p
        };
        for &(u, v) in dag.edges() {
            assert!(pos[u] < pos[v], "edge ({u},{v}) out of order");
        }
    }

    #[test]
    fn critical_path_of_diamond() {
        // 0 -> 2 -> 3: 1 + 3 + 1 = 5.
        assert_eq!(diamond().critical_path_work(), 5.0);
        let chain = DagInstance::chain(vec![1.0, 2.0, 3.0]).unwrap();
        assert_eq!(chain.critical_path_work(), 6.0);
        let ind = DagInstance::independent(vec![4.0, 2.0]).unwrap();
        assert_eq!(ind.critical_path_work(), 4.0);
    }

    #[test]
    fn uniform_schedule_valid_and_on_budget() {
        let dag = diamond();
        let model = PolyPower::CUBE;
        for m in 1..=3 {
            let sol = uniform_speed_schedule(&dag, &model, m, 14.0).unwrap();
            dag.validate_precedence(&sol.schedule, 1e-9).unwrap();
            assert!(
                (sol.energy - 14.0).abs() < 1e-9 * 14.0,
                "m={m}: energy {}",
                sol.energy
            );
        }
    }

    #[test]
    fn heuristic_beats_neither_lower_bound() {
        let dag = diamond();
        let model = PolyPower::CUBE;
        for &(m, e) in &[(1usize, 7.0f64), (2, 7.0), (2, 20.0), (3, 20.0)] {
            let lb = lower_bounds(&dag, &model, m, e).unwrap();
            let sol = uniform_speed_schedule(&dag, &model, m, e).unwrap();
            assert!(
                sol.makespan >= lb.best() - 1e-9,
                "m={m} E={e}: makespan {} below LB {}",
                sol.makespan,
                lb.best()
            );
        }
    }

    #[test]
    fn single_machine_is_exact() {
        // One machine: the heuristic is the single-block optimum (the
        // DAG collapses to a topological sequence).
        let dag = diamond();
        let model = PolyPower::CUBE;
        let e = 14.0;
        let sol = uniform_speed_schedule(&dag, &model, 1, e).unwrap();
        let lb = lower_bounds(&dag, &model, 1, e).unwrap();
        assert!((sol.makespan - lb.aggregate).abs() < 1e-9);
    }

    #[test]
    fn chain_is_exact_on_any_machine_count() {
        // A chain cannot parallelize: the critical-path bound is tight
        // and the heuristic matches it.
        let chain = DagInstance::chain(vec![1.0, 2.0, 1.5]).unwrap();
        let model = PolyPower::CUBE;
        let e = 9.0;
        for m in 1..=4 {
            let sol = uniform_speed_schedule(&chain, &model, m, e).unwrap();
            let lb = lower_bounds(&chain, &model, m, e).unwrap();
            assert!(
                (sol.makespan - lb.critical_path).abs() < 1e-9,
                "m={m}: {} vs {}",
                sol.makespan,
                lb.critical_path
            );
        }
    }

    #[test]
    fn independent_jobs_graham_ratio() {
        // Graham's (2 - 1/m) bound in time at the chosen speed: compare
        // with the aggregate bound (same speed family).
        let works: Vec<f64> = (1..=9).map(|k| 0.5 + (k as f64 * 0.37) % 2.0).collect();
        let dag = DagInstance::independent(works).unwrap();
        let model = PolyPower::CUBE;
        let m = 3;
        let e = 25.0;
        let sol = uniform_speed_schedule(&dag, &model, m, e).unwrap();
        let lb = lower_bounds(&dag, &model, m, e).unwrap();
        let ratio = sol.makespan / lb.best();
        assert!(ratio >= 1.0 - 1e-9);
        assert!(
            ratio <= 2.0 - 1.0 / m as f64 + 1e-9,
            "ratio {ratio} above Graham bound"
        );
    }

    #[test]
    fn precedence_validation_catches_violations() {
        let dag = DagInstance::chain(vec![1.0, 1.0]).unwrap();
        // Both jobs at t=0 in parallel: violates 0 -> 1.
        let mut bad = Schedule::with_machines(2);
        bad.push(0, Slice::new(0, 0.0, 1.0, 1.0));
        bad.push(1, Slice::new(1, 0.0, 1.0, 1.0));
        assert!(dag.validate_precedence(&bad, 1e-9).is_err());
    }

    #[test]
    fn more_energy_never_hurts() {
        let dag = diamond();
        let model = PolyPower::CUBE;
        let mut prev = f64::INFINITY;
        for &e in &[5.0, 10.0, 20.0, 40.0] {
            let sol = uniform_speed_schedule(&dag, &model, 2, e).unwrap();
            assert!(sol.makespan < prev);
            prev = sol.makespan;
        }
    }
}
