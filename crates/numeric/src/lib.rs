//! # pas-numeric
//!
//! Numerical substrate for the `power-aware-scheduling` workspace.
//!
//! The algorithms in Bunde's *Power-aware scheduling for makespan and flow*
//! (SPAA 2006) need a small, well-tested numerical toolkit:
//!
//! * **Root finding** ([`roots`]) — safeguarded bisection and a
//!   Newton–bisection hybrid. The makespan frontier for general convex
//!   power functions, the flow solver's outer binary search, and the
//!   multiprocessor energy-equalization all reduce to inverting monotone
//!   scalar functions.
//! * **Polynomials** ([`poly`]) — dense univariate polynomials with exact
//!   (rational-coefficient-friendly) Horner evaluation, derivatives, and
//!   root isolation. Theorem 8 of the paper exhibits a degree-12 integer
//!   polynomial whose Galois group is unsolvable; we reproduce that
//!   polynomial and verify numerically that our flow solver converges to
//!   one of its real roots.
//! * **Compensated summation** ([`sum`]) — Neumaier summation so energy
//!   totals over many schedule slices do not drift.
//! * **Numeric differentiation** ([`diff`]) — Richardson-extrapolated
//!   central differences, used to cross-check the closed-form first and
//!   second derivatives of the makespan/energy tradeoff (Figures 2 and 3
//!   of the paper).
//! * **Scalar minimization** ([`minimize`]) — golden-section search.
//! * **Sturm chains** ([`sturm`]) — certified real-root counting, used
//!   to prove the Theorem-8 root inventory complete.
//! * **Comparisons** ([`compare`]) — absolute/relative tolerance helpers.
//! * **Timeline engine** ([`timeline`]) — coordinate-compressed event
//!   axis, Fenwick prefix-sum accumulator, and a sorted-disjoint interval
//!   set. The shared substrate for the deadline stack's critical-interval
//!   queries (YDS/AVR/OA, paper §2) and any other sweep over job windows.
//! * **Kinetic tournament** ([`kinetic`]) — a certificate-based
//!   segment-tree tournament maintaining `argmax_d prefix(d)/(d − t)`
//!   under weight updates and monotone time advance, the `O(log n)`
//!   amortized re-planning core of Optimal Available (`deadline::oa` in
//!   `pas-core`); its max-prefix aggregate doubles as AVR's
//!   density-step maximum.
//! * **Sorted loads** ([`loads`]) — an incrementally sorted load vector
//!   with prefix sums and an `O(log m)` waterfill lower bound, the
//!   search-state core of the §5 `L_α`-norm branch and bound
//!   (`multi::partition` in `pas-core`).
//!
//! The toolkit deliberately restricts itself to field operations and root
//! extraction plus iteration: Theorem 8 shows exact flow optimization is
//! impossible with those operations, and keeping the substrate minimal
//! keeps that distinction honest.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod compare;
pub mod diff;
pub mod kinetic;
pub mod loads;
pub mod minimize;
pub mod poly;
pub mod rational;
pub mod roots;
pub mod sturm;
pub mod sum;
pub mod timeline;

pub use compare::{approx_eq, approx_eq_abs, approx_eq_rel};
pub use kinetic::{Critical, KineticTournament};
pub use loads::SortedLoads;
pub use poly::Polynomial;
pub use rational::Rational;
pub use roots::{bisect, find_decreasing_root, invert_monotone, newton_bisect, Bracket, RootError};
pub use sturm::SturmChain;
pub use sum::NeumaierSum;
pub use timeline::{EventAxis, Fenwick, IntervalSet, TimeKey};
