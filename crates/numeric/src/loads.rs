//! Incremental sorted load vectors with `O(log m)` waterfill bounds.
//!
//! The §5 multiprocessor partition solvers (`pas-core`'s
//! `multi::partition` / `multi::parallel`) run a branch and bound over
//! per-processor load sums whose pruning bound is a *divisible
//! relaxation*: water-fill the remaining work onto the lowest loads and
//! take the resulting `Σ L_p^α`. Recomputing that bound naively is a
//! sort plus `m` calls to `powf` at **every search node** — the dominant
//! cost of the whole search. [`SortedLoads`] maintains the loads sorted
//! with prefix sums of both the loads and their `α`-th powers, so a
//! push/pop moves one slot by rotation (`O(shift)` swaps, one `powf`)
//! and the waterfill bound becomes a binary search over the prefix
//! table plus a single `powf` for the water level.
//!
//! Exactness: pops restore the *caller-saved* previous `(load, pow)`
//! pair bit-for-bit (no `+w` then `-w` rounding walk), and the prefix
//! tables are lazily rebuilt from the current loads rather than patched
//! with deltas, so no floating-point drift accumulates over a long
//! search — the same discipline the timeline engine's
//! [`Fenwick`](crate::timeline::Fenwick) users apply at their call
//! sites.

/// A multiset of `m` non-negative loads under point raises/lowers, kept
/// sorted with lazily-refreshed prefix sums of loads and `load^α`.
///
/// Slots are identified by stable ids `0..m` (processor numbers); the
/// sorted order is maintained internally. All comparisons use
/// `f64::total_cmp`.
#[derive(Debug, Clone)]
pub struct SortedLoads {
    alpha: f64,
    /// Load per slot id.
    loads: Vec<f64>,
    /// `loads[s]^alpha` per slot id, updated in lockstep.
    pows: Vec<f64>,
    /// Slot ids in ascending load order.
    order: Vec<usize>,
    /// Inverse of `order`: position of each slot id.
    pos: Vec<usize>,
    /// `pref_load[i]` = sum of the `i` smallest loads (valid up to
    /// `valid`). Length `m + 1`.
    pref_load: Vec<f64>,
    /// `pref_pow[i]` = sum of the `i` smallest loads' `α`-powers.
    pref_pow: Vec<f64>,
    /// Prefix entries `0..=valid` are current.
    valid: usize,
}

impl SortedLoads {
    /// `m` zero loads under exponent `alpha`.
    ///
    /// # Panics
    /// If `m == 0` or `alpha` is not finite.
    pub fn new(m: usize, alpha: f64) -> Self {
        assert!(m > 0, "need at least one slot");
        assert!(alpha.is_finite(), "alpha must be finite");
        SortedLoads {
            alpha,
            loads: vec![0.0; m],
            pows: vec![0.0; m],
            order: (0..m).collect(),
            pos: (0..m).collect(),
            pref_load: vec![0.0; m + 1],
            pref_pow: vec![0.0; m + 1],
            valid: m,
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.loads.len()
    }

    /// Whether there are no slots (never true — `new` rejects `m = 0`).
    pub fn is_empty(&self) -> bool {
        self.loads.is_empty()
    }

    /// The exponent the power sums use.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Current load of a slot.
    pub fn load(&self, slot: usize) -> f64 {
        self.loads[slot]
    }

    /// Current `load^α` of a slot.
    pub fn pow(&self, slot: usize) -> f64 {
        self.pows[slot]
    }

    /// The slot id at ascending-load position `p`.
    pub fn slot_at(&self, p: usize) -> usize {
        self.order[p]
    }

    /// `Σ load^α` over all slots — the `L_α` norm (to the `α`) of the
    /// vector. Refreshes the prefix tables.
    pub fn total_pow(&mut self) -> f64 {
        self.refresh();
        self.pref_pow[self.loads.len()]
    }

    /// Raise `slot` to `new_load` (≥ its current load), updating the
    /// sorted order by rotation. One `powf`.
    ///
    /// Returns the previous `(load, pow)` pair; hand it back to
    /// [`lower_to`](SortedLoads::lower_to) to undo this raise exactly.
    pub fn raise(&mut self, slot: usize, new_load: f64) -> (f64, f64) {
        let prev = (self.loads[slot], self.pows[slot]);
        debug_assert!(new_load.total_cmp(&prev.0).is_ge(), "raise must not lower");
        self.loads[slot] = new_load;
        self.pows[slot] = new_load.powf(self.alpha);
        let mut p = self.pos[slot];
        self.valid = self.valid.min(p);
        while p + 1 < self.order.len() && self.loads[self.order[p + 1]].total_cmp(&new_load).is_lt()
        {
            self.swap_positions(p, p + 1);
            p += 1;
        }
        prev
    }

    /// Undo a [`raise`](SortedLoads::raise): restore the saved
    /// `(load, pow)` pair bit-for-bit and rotate the slot back left.
    pub fn lower_to(&mut self, slot: usize, saved: (f64, f64)) {
        debug_assert!(
            saved.0.total_cmp(&self.loads[slot]).is_le(),
            "lower_to must not raise"
        );
        self.loads[slot] = saved.0;
        self.pows[slot] = saved.1;
        let mut p = self.pos[slot];
        while p > 0 && self.loads[self.order[p - 1]].total_cmp(&saved.0).is_gt() {
            self.swap_positions(p - 1, p);
            p -= 1;
        }
        self.valid = self.valid.min(p);
    }

    fn swap_positions(&mut self, a: usize, b: usize) {
        self.order.swap(a, b);
        self.pos[self.order[a]] = a;
        self.pos[self.order[b]] = b;
    }

    /// Rebuild stale prefix entries from the current loads (no delta
    /// patching — each refresh is exact for the current state).
    fn refresh(&mut self) {
        let m = self.loads.len();
        for i in self.valid..m {
            let s = self.order[i];
            self.pref_load[i + 1] = self.pref_load[i] + self.loads[s];
            self.pref_pow[i + 1] = self.pref_pow[i] + self.pows[s];
        }
        self.valid = m;
    }

    /// The divisible-relaxation lower bound: water-fill `rest ≥ 0` onto
    /// the lowest loads and return the resulting `Σ max(load, level)^α`.
    ///
    /// By convexity of `x^α` (`α > 1`) this is the least `Σ L^α` any
    /// completion distributing `rest` across the slots can reach, so a
    /// branch and bound may prune when it meets the incumbent. Cost: a
    /// lazy prefix refresh plus `O(log m)` binary search plus one `powf`.
    pub fn waterfill_bound(&mut self, rest: f64) -> f64 {
        let m = self.loads.len();
        self.refresh();
        if rest <= 0.0 {
            return self.pref_pow[m];
        }
        // Smallest k in 1..m with k·ls[k] − pref_load[k] ≥ rest, i.e.
        // raising the k lowest slots to the k-th sorted load absorbs all
        // of `rest`; if none, the water covers every slot (k = m). The
        // filled quantity Σ_{i<k}(ls[k] − ls[i]) is nondecreasing in k,
        // so a plain binary search finds the partition point.
        let mut a = 1usize;
        let mut b = m;
        while a < b {
            let mid = a + (b - a) / 2;
            let filled = mid as f64 * self.loads[self.order[mid]] - self.pref_load[mid];
            if filled >= rest {
                b = mid;
            } else {
                a = mid + 1;
            }
        }
        let k = a;
        let level = (self.pref_load[k] + rest) / k as f64;
        k as f64 * level.powf(self.alpha) + (self.pref_pow[m] - self.pref_pow[k])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The naive bound the incremental one must reproduce: sort, scan,
    /// `powf` everything.
    fn naive_waterfill(loads: &[f64], rest: f64, alpha: f64) -> f64 {
        let mut ls = loads.to_vec();
        ls.sort_by(f64::total_cmp);
        let m = ls.len();
        let mut r = rest;
        let mut level = ls[0];
        let mut k = 1usize;
        while k < m && r > 0.0 {
            let need = (ls[k] - level) * k as f64;
            if need <= r {
                r -= need;
                level = ls[k];
                k += 1;
            } else {
                level += r / k as f64;
                r = 0.0;
            }
        }
        if r > 0.0 {
            level += r / m as f64;
        }
        ls.iter().map(|&l| l.max(level).powf(alpha)).sum()
    }

    #[test]
    fn raises_keep_sorted_order_and_sums() {
        let mut s = SortedLoads::new(4, 3.0);
        s.raise(2, 5.0);
        s.raise(0, 2.0);
        s.raise(1, 7.0);
        assert_eq!(s.slot_at(0), 3); // still empty
        assert_eq!(s.slot_at(1), 0);
        assert_eq!(s.slot_at(2), 2);
        assert_eq!(s.slot_at(3), 1);
        let expect = 8.0 + 125.0 + 343.0;
        assert!((s.total_pow() - expect).abs() < 1e-12);
    }

    #[test]
    fn lower_to_restores_bit_for_bit() {
        let mut s = SortedLoads::new(3, 2.5);
        s.raise(0, 1.1);
        s.raise(1, 0.3);
        let snapshot = s.clone();
        let saved = s.raise(1, 0.3 + 2.7);
        s.waterfill_bound(1.0); // force refresh churn
        s.lower_to(1, saved);
        for slot in 0..3 {
            assert_eq!(s.load(slot).to_bits(), snapshot.loads[slot].to_bits());
            assert_eq!(s.pow(slot).to_bits(), snapshot.pows[slot].to_bits());
        }
        assert_eq!(s.order, snapshot.order);
    }

    #[test]
    fn waterfill_matches_naive_on_random_walks() {
        let mut state = 0x9e3779b9u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for &m in &[1usize, 2, 3, 5, 8, 13] {
            let alpha = 2.0 + 2.0 * next();
            let mut s = SortedLoads::new(m, alpha);
            let mut undo: Vec<(usize, (f64, f64))> = Vec::new();
            for step in 0..400 {
                if !undo.is_empty() && (step % 7 == 3 || undo.len() > 3 * m) {
                    let (slot, saved) = undo.pop().unwrap();
                    s.lower_to(slot, saved);
                } else {
                    let slot = (next() * m as f64) as usize % m;
                    let saved = s.raise(slot, s.load(slot) + next() * 2.0);
                    undo.push((slot, saved));
                }
                let rest = next() * 5.0;
                let loads: Vec<f64> = (0..m).map(|p| s.load(p)).collect();
                let fast = s.waterfill_bound(rest);
                let slow = naive_waterfill(&loads, rest, alpha);
                assert!(
                    (fast - slow).abs() <= 1e-9 * slow.max(1.0),
                    "m={m} step={step}: incremental {fast} vs naive {slow}"
                );
            }
        }
    }

    #[test]
    fn bound_with_zero_rest_is_the_norm() {
        let mut s = SortedLoads::new(3, 3.0);
        s.raise(0, 2.0);
        s.raise(1, 1.0);
        assert!((s.waterfill_bound(0.0) - 9.0).abs() < 1e-12);
        assert!((s.waterfill_bound(-1.0) - 9.0).abs() < 1e-12);
    }

    #[test]
    fn single_slot_bound() {
        let mut s = SortedLoads::new(1, 3.0);
        s.raise(0, 2.0);
        assert!((s.waterfill_bound(1.0) - 27.0).abs() < 1e-12);
    }
}
