//! Safeguarded scalar root finding and monotone-function inversion.
//!
//! Everything the scheduling algorithms invert is a *monotone* scalar map
//! (energy as a function of speed, energy as a function of a makespan
//! target, energy as a function of the Lagrangian parameter `u = σ_n^α`
//! in the flow solver), so bracketing methods are both sufficient and
//! robust. Newton acceleration is used when a derivative is available but
//! always constrained to the bracket.

/// Errors produced by the root finders.
#[derive(Debug, Clone, PartialEq)]
pub enum RootError {
    /// The supplied bracket does not enclose a sign change.
    NoSignChange {
        /// Left endpoint of the failed bracket.
        lo: f64,
        /// Right endpoint of the failed bracket.
        hi: f64,
        /// `f(lo)`.
        flo: f64,
        /// `f(hi)`.
        fhi: f64,
    },
    /// The bracket endpoints are invalid (NaN, or `lo >= hi`).
    InvalidBracket {
        /// Left endpoint.
        lo: f64,
        /// Right endpoint.
        hi: f64,
    },
    /// Automatic bracket expansion failed to find a sign change.
    BracketSearchFailed {
        /// Last expansion bound tried.
        limit: f64,
    },
    /// The iteration budget was exhausted before reaching tolerance.
    MaxIterations {
        /// Best estimate at give-up time.
        best: f64,
    },
}

impl std::fmt::Display for RootError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RootError::NoSignChange { lo, hi, flo, fhi } => write!(
                f,
                "no sign change on [{lo}, {hi}]: f(lo)={flo}, f(hi)={fhi}"
            ),
            RootError::InvalidBracket { lo, hi } => {
                write!(f, "invalid bracket [{lo}, {hi}]")
            }
            RootError::BracketSearchFailed { limit } => {
                write!(f, "bracket expansion failed (reached {limit})")
            }
            RootError::MaxIterations { best } => {
                write!(f, "iteration budget exhausted (best estimate {best})")
            }
        }
    }
}

impl std::error::Error for RootError {}

/// A sign-changing bracket `[lo, hi]` with cached endpoint values.
#[derive(Debug, Clone, Copy)]
pub struct Bracket {
    /// Left endpoint.
    pub lo: f64,
    /// Right endpoint.
    pub hi: f64,
    /// `f(lo)`.
    pub flo: f64,
    /// `f(hi)`.
    pub fhi: f64,
}

impl Bracket {
    /// Validate and build a bracket for `f`, evaluating the endpoints.
    pub fn new(f: &mut impl FnMut(f64) -> f64, lo: f64, hi: f64) -> Result<Self, RootError> {
        if !(lo.is_finite() && hi.is_finite() && lo < hi) {
            return Err(RootError::InvalidBracket { lo, hi });
        }
        let flo = f(lo);
        let fhi = f(hi);
        if flo == 0.0 || fhi == 0.0 || (flo < 0.0) != (fhi < 0.0) {
            Ok(Bracket { lo, hi, flo, fhi })
        } else {
            Err(RootError::NoSignChange { lo, hi, flo, fhi })
        }
    }
}

/// Default iteration budget for the bracketing methods. 200 bisections
/// reduce any finite bracket below f64 resolution; the budget exists to
/// catch pathological callbacks (NaN plateaus).
const MAX_ITER: usize = 200;

/// Find a root of `f` in `[lo, hi]` by bisection.
///
/// Requires a sign change over the bracket. Converges to
/// `|hi - lo| <= xtol` or `|f| <= ftol`, whichever happens first.
///
/// # Errors
/// [`RootError::NoSignChange`] / [`RootError::InvalidBracket`] when the
/// bracket is unusable.
pub fn bisect(
    mut f: impl FnMut(f64) -> f64,
    lo: f64,
    hi: f64,
    xtol: f64,
    ftol: f64,
) -> Result<f64, RootError> {
    let b = Bracket::new(&mut f, lo, hi)?;
    if b.flo == 0.0 {
        return Ok(b.lo);
    }
    if b.fhi == 0.0 {
        return Ok(b.hi);
    }
    let (mut lo, mut hi, mut flo) = (b.lo, b.hi, b.flo);
    for _ in 0..MAX_ITER {
        let mid = 0.5 * (lo + hi);
        let fmid = f(mid);
        if fmid == 0.0 || (hi - lo) <= xtol || fmid.abs() <= ftol {
            return Ok(mid);
        }
        if (fmid < 0.0) == (flo < 0.0) {
            lo = mid;
            flo = fmid;
        } else {
            hi = mid;
        }
    }
    Ok(0.5 * (lo + hi))
}

/// Newton's method safeguarded by a bisection bracket.
///
/// `fdf` returns `(f(x), f'(x))`. Newton steps that leave the current
/// bracket, or that shrink it too slowly, are replaced by bisection, so the
/// method inherits bisection's guaranteed convergence while usually
/// converging quadratically.
///
/// # Errors
/// Same bracket errors as [`bisect`].
pub fn newton_bisect(
    mut fdf: impl FnMut(f64) -> (f64, f64),
    lo: f64,
    hi: f64,
    xtol: f64,
    ftol: f64,
) -> Result<f64, RootError> {
    let mut f_only = |x: f64| fdf(x).0;
    let b = Bracket::new(&mut f_only, lo, hi)?;
    if b.flo == 0.0 {
        return Ok(b.lo);
    }
    if b.fhi == 0.0 {
        return Ok(b.hi);
    }
    let (mut lo, mut hi, mut flo) = (b.lo, b.hi, b.flo);
    let mut x = 0.5 * (lo + hi);
    // `rtsafe`-style safeguard (Numerical Recipes): demand each Newton step
    // at least halve the previous step, otherwise bisect. This keeps the
    // enclosing interval shrinking geometrically even at multiple roots,
    // where raw Newton converges only linearly.
    let mut dx_old = hi - lo;
    for _ in 0..MAX_ITER {
        let (fx, dfx) = fdf(x);
        if fx == 0.0 || fx.abs() <= ftol || (hi - lo) <= xtol {
            return Ok(x);
        }
        // Shrink the bracket around the root.
        if (fx < 0.0) == (flo < 0.0) {
            lo = x;
            flo = fx;
        } else {
            hi = x;
        }
        let newton = if dfx != 0.0 { x - fx / dfx } else { f64::NAN };
        let newton_step = (newton - x).abs();
        if newton.is_finite() && newton > lo && newton < hi && 2.0 * newton_step <= dx_old {
            dx_old = newton_step;
            x = newton;
        } else {
            dx_old = 0.5 * (hi - lo);
            x = lo + dx_old;
        }
    }
    Err(RootError::MaxIterations { best: x })
}

/// Invert a *strictly increasing* function: find `x` with `f(x) = target`.
///
/// The search starts from `guess > 0` and expands a bracket geometrically
/// in both directions (so the caller needs no a-priori bounds — useful for
/// speed solves where the scale of the answer is instance dependent).
/// Intended for positive domains (speeds, energies, Lagrange multipliers);
/// the lower expansion halves toward zero and never crosses it.
///
/// # Errors
/// [`RootError::BracketSearchFailed`] if no bracket is found within ~2000
/// doublings/halvings (i.e. the target is outside the function's range).
pub fn invert_monotone(
    mut f: impl FnMut(f64) -> f64,
    target: f64,
    guess: f64,
    xtol: f64,
    ftol: f64,
) -> Result<f64, RootError> {
    let mut g = |x: f64| f(x) - target;
    let guess = if guess > 0.0 && guess.is_finite() {
        guess
    } else {
        1.0
    };
    let g0 = g(guess);
    if g0 == 0.0 {
        return Ok(guess);
    }
    if g0 < 0.0 {
        // Need larger x: expand upward.
        let mut lo = guess;
        let mut hi = guess * 2.0;
        for _ in 0..2000 {
            if g(hi) >= 0.0 {
                return bisect(g, lo, hi, xtol, ftol);
            }
            lo = hi;
            hi *= 2.0;
            if !hi.is_finite() {
                break;
            }
        }
        Err(RootError::BracketSearchFailed { limit: hi })
    } else {
        // Need smaller x: contract downward (stay positive).
        let mut hi = guess;
        let mut lo = guess * 0.5;
        for _ in 0..2000 {
            if g(lo) <= 0.0 {
                return bisect(g, lo, hi, xtol, ftol);
            }
            hi = lo;
            lo *= 0.5;
            if lo <= f64::MIN_POSITIVE {
                break;
            }
        }
        Err(RootError::BracketSearchFailed { limit: lo })
    }
}

/// Invert a *strictly increasing* function with a derivative: find `x`
/// with `f(x) = target`, where `fdf` returns `(f(x), f'(x))`.
///
/// This is the seed-aware fast path behind [`invert_monotone`]: the
/// first bracket step is sized from the seed's *Newton step* (twice it,
/// so a locally-accurate derivative brackets the root in one probe) and
/// grown geometrically from there, and the enclosed root is polished by
/// safeguarded Newton ([`newton_bisect`]) instead of pure bisection. A
/// caller with a cheap analytic derivative (the flow solver's `dE/du`,
/// which falls out of its block decomposition in closed form) and a warm
/// seed from an adjacent solve converges in a handful of evaluations
/// where blind doubling plus bisection pays ~50 — the seed's quality,
/// not the answer's scale, sets the cost.
///
/// Unlike [`invert_monotone`], a non-finite `f` value aborts the search
/// immediately: the intended callers evaluate `f` by running a solver
/// whose first failure should surface as-is rather than be retried at
/// ever more extreme arguments.
///
/// # Errors
/// [`RootError::BracketSearchFailed`] when no sign change is found (the
/// target is outside the function's range, or `f` returned NaN);
/// bracket/iteration errors from [`newton_bisect`].
pub fn invert_monotone_fdf(
    mut fdf: impl FnMut(f64) -> (f64, f64),
    target: f64,
    guess: f64,
    xtol: f64,
    ftol: f64,
) -> Result<f64, RootError> {
    let mut gdg = move |x: f64| {
        let (fx, dfx) = fdf(x);
        (fx - target, dfx)
    };
    let guess = if guess > 0.0 && guess.is_finite() {
        guess
    } else {
        1.0
    };
    let (g0, dg0) = gdg(guess);
    if g0 == 0.0 {
        return Ok(guess);
    }
    if g0.is_nan() {
        return Err(RootError::BracketSearchFailed { limit: guess });
    }
    // Twice the Newton step from the seed: brackets in one probe whenever
    // the derivative is locally accurate (warm seeds), with a doubling
    // fallback scale when it is unusable.
    let mut step = if dg0.is_finite() && dg0 > 0.0 {
        (2.0 * g0.abs() / dg0).min(guess * 1e9)
    } else {
        guess
    }
    .max(guess * 1e-12);
    if g0 < 0.0 {
        // Need larger x: expand upward.
        let (mut lo, mut glo, mut dglo) = (guess, g0, dg0);
        for _ in 0..2000 {
            let hi = lo + step;
            if !hi.is_finite() {
                return Err(RootError::BracketSearchFailed { limit: hi });
            }
            let (ghi, dghi) = gdg(hi);
            if ghi.is_nan() {
                return Err(RootError::BracketSearchFailed { limit: hi });
            }
            if ghi >= 0.0 {
                return newton_polish(&mut gdg, (lo, glo, dglo), (hi, ghi, dghi), xtol, ftol);
            }
            (lo, glo, dglo) = (hi, ghi, dghi);
            step *= 4.0;
        }
        Err(RootError::BracketSearchFailed { limit: lo })
    } else {
        // Need smaller x: contract downward (stay positive).
        let (mut hi, mut ghi, mut dghi) = (guess, g0, dg0);
        for _ in 0..2000 {
            let lo = if hi - step > 0.0 { hi - step } else { hi * 0.5 };
            let (glo, dglo) = gdg(lo);
            if glo.is_nan() {
                return Err(RootError::BracketSearchFailed { limit: lo });
            }
            if glo <= 0.0 {
                return newton_polish(&mut gdg, (lo, glo, dglo), (hi, ghi, dghi), xtol, ftol);
            }
            (hi, ghi, dghi) = (lo, glo, dglo);
            step *= 4.0;
            if lo <= f64::MIN_POSITIVE {
                break;
            }
        }
        Err(RootError::BracketSearchFailed { limit: hi })
    }
}

/// [`newton_bisect`] for a caller that has already evaluated both
/// endpoints (value *and* derivative): no re-evaluation, and the first
/// Newton step launches from the endpoint with the smaller residual
/// rather than the bracket midpoint — on the warm-seeded inversions this
/// saves three evaluations per solve, which is most of the work when the
/// seed lands within a few percent of the root.
fn newton_polish(
    gdg: &mut impl FnMut(f64) -> (f64, f64),
    (lo0, glo, dglo): (f64, f64, f64),
    (hi0, ghi, dghi): (f64, f64, f64),
    xtol: f64,
    ftol: f64,
) -> Result<f64, RootError> {
    if glo == 0.0 {
        return Ok(lo0);
    }
    if ghi == 0.0 {
        return Ok(hi0);
    }
    if (glo < 0.0) == (ghi < 0.0) {
        return Err(RootError::NoSignChange {
            lo: lo0,
            hi: hi0,
            flo: glo,
            fhi: ghi,
        });
    }
    let (mut lo, mut hi, mut flo) = (lo0, hi0, glo);
    let (mut x, mut fx, mut dfx) = if glo.abs() <= ghi.abs() {
        (lo0, glo, dglo)
    } else {
        (hi0, ghi, dghi)
    };
    let mut dx_old = hi - lo;
    for _ in 0..MAX_ITER {
        if fx == 0.0 || fx.abs() <= ftol || (hi - lo) <= xtol {
            return Ok(x);
        }
        if (fx < 0.0) == (flo < 0.0) {
            lo = x;
            flo = fx;
        } else {
            hi = x;
        }
        let newton = if dfx != 0.0 { x - fx / dfx } else { f64::NAN };
        let newton_step = (newton - x).abs();
        x = if newton.is_finite() && newton > lo && newton < hi && 2.0 * newton_step <= dx_old {
            dx_old = newton_step;
            newton
        } else {
            dx_old = 0.5 * (hi - lo);
            lo + dx_old
        };
        (fx, dfx) = gdg(x);
        if fx.is_nan() {
            return Err(RootError::BracketSearchFailed { limit: x });
        }
    }
    Err(RootError::MaxIterations { best: x })
}

/// Find `x` with `f(x) = target` for a *strictly decreasing* `f` on a
/// positive domain, expanding brackets automatically.
///
/// This is [`invert_monotone`] composed with a sign flip; provided because
/// energy-as-a-function-of-makespan (the server problem) and
/// energy-as-a-function-of-deadline curves are decreasing and inverting
/// them with the right orientation avoids error-prone negations at call
/// sites.
pub fn find_decreasing_root(
    mut f: impl FnMut(f64) -> f64,
    target: f64,
    guess: f64,
    xtol: f64,
    ftol: f64,
) -> Result<f64, RootError> {
    invert_monotone(move |x| -f(x), -target, guess, xtol, ftol)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bisect_finds_sqrt2() {
        let r = bisect(|x| x * x - 2.0, 0.0, 2.0, 1e-14, 0.0).unwrap();
        assert!((r - std::f64::consts::SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn bisect_accepts_endpoint_root() {
        assert_eq!(bisect(|x| x, 0.0, 1.0, 1e-14, 0.0).unwrap(), 0.0);
        assert_eq!(bisect(|x| x - 1.0, 0.0, 1.0, 1e-14, 0.0).unwrap(), 1.0);
    }

    #[test]
    fn bisect_rejects_bad_bracket() {
        assert!(matches!(
            bisect(|x| x * x + 1.0, -1.0, 1.0, 1e-12, 0.0),
            Err(RootError::NoSignChange { .. })
        ));
        assert!(matches!(
            bisect(|x| x, 1.0, 0.0, 1e-12, 0.0),
            Err(RootError::InvalidBracket { .. })
        ));
    }

    #[test]
    fn newton_bisect_quadratic_convergence_on_cubic() {
        // x^3 = 9 (the kind of α-root solve PolyPower does).
        let r = newton_bisect(|x| (x * x * x - 9.0, 3.0 * x * x), 0.0, 9.0, 1e-15, 0.0).unwrap();
        assert!((r - 9f64.powf(1.0 / 3.0)).abs() < 1e-12);
    }

    #[test]
    fn newton_bisect_survives_zero_derivative() {
        // f(x) = x^3 has f'(0) = 0; start bracket straddling 0.
        let r = newton_bisect(|x| (x * x * x, 3.0 * x * x), -1.0, 2.0, 1e-14, 1e-30).unwrap();
        assert!(r.abs() < 1e-7);
    }

    #[test]
    fn invert_monotone_expands_upward() {
        // f(x) = x^2, target 1e8, guess 1: answer 1e4.
        let r = invert_monotone(|x| x * x, 1e8, 1.0, 1e-10, 0.0).unwrap();
        assert!((r - 1e4).abs() / 1e4 < 1e-10);
    }

    #[test]
    fn invert_monotone_contracts_downward() {
        let r = invert_monotone(|x| x * x, 1e-8, 1.0, 1e-16, 0.0).unwrap();
        assert!((r - 1e-4).abs() / 1e-4 < 1e-6);
    }

    #[test]
    fn invert_monotone_exact_guess() {
        let r = invert_monotone(|x| 2.0 * x, 4.0, 2.0, 1e-12, 0.0).unwrap();
        assert_eq!(r, 2.0);
    }

    #[test]
    fn invert_monotone_unreachable_target_fails() {
        // Range of f is (0, 1); target 2 is unreachable.
        let err = invert_monotone(|x| x / (1.0 + x), 2.0, 1.0, 1e-12, 0.0);
        assert!(matches!(err, Err(RootError::BracketSearchFailed { .. })));
    }

    #[test]
    fn invert_monotone_fdf_matches_bisection_with_fewer_evals() {
        // f(x) = x^3 (energy-in-u-shaped), target 512: root 8.
        let mut evals_fdf = 0usize;
        let r = invert_monotone_fdf(
            |x| {
                evals_fdf += 1;
                (x * x * x, 3.0 * x * x)
            },
            512.0,
            5.0,
            0.0,
            1e-10,
        )
        .unwrap();
        assert!((r - 8.0).abs() < 1e-9, "root {r}");
        let mut evals_bisect = 0usize;
        let rb = invert_monotone(
            |x| {
                evals_bisect += 1;
                x * x * x
            },
            512.0,
            5.0,
            0.0,
            1e-10,
        )
        .unwrap();
        assert!((rb - 8.0).abs() < 1e-9);
        assert!(
            evals_fdf < evals_bisect / 2,
            "newton path used {evals_fdf} evals vs {evals_bisect} bisections"
        );
    }

    #[test]
    fn invert_monotone_fdf_seeds_and_contracts() {
        // Warm seed on the wrong side still converges.
        let r = invert_monotone_fdf(|x| (x * x, 2.0 * x), 1e-8, 1.0, 0.0, 1e-16).unwrap();
        assert!((r - 1e-4).abs() / 1e-4 < 1e-6, "root {r}");
        // Exact seed short-circuits.
        let r = invert_monotone_fdf(|x| (2.0 * x, 2.0), 4.0, 2.0, 1e-12, 0.0).unwrap();
        assert_eq!(r, 2.0);
    }

    #[test]
    fn invert_monotone_fdf_fails_fast_on_nan() {
        let mut evals = 0usize;
        let err = invert_monotone_fdf(
            |x| {
                evals += 1;
                if x > 2.0 {
                    (f64::NAN, f64::NAN)
                } else {
                    (x, 1.0)
                }
            },
            10.0,
            1.0,
            0.0,
            1e-12,
        );
        assert!(matches!(err, Err(RootError::BracketSearchFailed { .. })));
        assert!(evals < 10, "aborted after {evals} evals, not 2000");
    }

    #[test]
    fn decreasing_root_inverts_energy_like_curve() {
        // E(T) = 100 / T^2 (server-problem-shaped). E = 4 at T = 5.
        let r = find_decreasing_root(|t| 100.0 / (t * t), 4.0, 1.0, 1e-12, 0.0).unwrap();
        assert!((r - 5.0).abs() < 1e-9);
    }
}
