//! Dense univariate polynomials over `f64`.
//!
//! Theorem 8 of the paper reduces exact flow minimization to finding a root
//! of a specific degree-12 integer polynomial whose Galois group is not
//! solvable. This module provides the polynomial arithmetic needed to
//! state that witness, isolate its real roots, and measure residuals of
//! approximate solutions. Coefficients are stored in ascending order
//! (`coeffs[k]` multiplies `x^k`).

use crate::roots::{bisect, RootError};
use crate::sum::NeumaierSum;

/// A dense univariate polynomial with `f64` coefficients, ascending order.
#[derive(Debug, Clone, PartialEq)]
pub struct Polynomial {
    coeffs: Vec<f64>,
}

impl Polynomial {
    /// Build from ascending coefficients (`coeffs[k]` is the `x^k` term).
    /// Trailing zeros are trimmed; the zero polynomial is `[]`.
    pub fn new(coeffs: Vec<f64>) -> Self {
        let mut p = Polynomial { coeffs };
        p.trim();
        p
    }

    /// Build from *descending* coefficients, the order papers print them in.
    pub fn from_descending(mut coeffs: Vec<f64>) -> Self {
        coeffs.reverse();
        Polynomial::new(coeffs)
    }

    /// The zero polynomial.
    pub fn zero() -> Self {
        Polynomial { coeffs: vec![] }
    }

    /// The constant polynomial `c`.
    pub fn constant(c: f64) -> Self {
        Polynomial::new(vec![c])
    }

    fn trim(&mut self) {
        while self.coeffs.last() == Some(&0.0) {
            self.coeffs.pop();
        }
    }

    /// Degree, or `None` for the zero polynomial.
    pub fn degree(&self) -> Option<usize> {
        self.coeffs.len().checked_sub(1)
    }

    /// Ascending coefficient slice.
    pub fn coeffs(&self) -> &[f64] {
        &self.coeffs
    }

    /// Evaluate at `x` by Horner's rule.
    pub fn eval(&self, x: f64) -> f64 {
        self.coeffs.iter().rev().fold(0.0, |acc, &c| acc * x + c)
    }

    /// Evaluate `(p(x), p'(x))` in one Horner pass.
    pub fn eval_with_derivative(&self, x: f64) -> (f64, f64) {
        let mut p = 0.0;
        let mut dp = 0.0;
        for &c in self.coeffs.iter().rev() {
            dp = dp * x + p;
            p = p * x + c;
        }
        (p, dp)
    }

    /// Formal derivative.
    pub fn derivative(&self) -> Polynomial {
        if self.coeffs.len() <= 1 {
            return Polynomial::zero();
        }
        Polynomial::new(
            self.coeffs
                .iter()
                .enumerate()
                .skip(1)
                .map(|(k, &c)| c * k as f64)
                .collect(),
        )
    }

    /// Cauchy bound: all real roots lie in `[-B, B]` with
    /// `B = 1 + max_k |a_k / a_n|`.
    pub fn cauchy_root_bound(&self) -> Option<f64> {
        let lead = *self.coeffs.last()?;
        if lead == 0.0 {
            return None;
        }
        let max_ratio = self.coeffs[..self.coeffs.len() - 1]
            .iter()
            .map(|c| (c / lead).abs())
            .fold(0.0, f64::max);
        Some(1.0 + max_ratio)
    }

    /// Isolate and refine the real roots in `[lo, hi]`.
    ///
    /// Scans `grid` equal subintervals for sign changes and refines each by
    /// bisection to `xtol`. Roots of even multiplicity that do not cross
    /// zero are not found (sufficient for the square-free witness
    /// polynomial of Theorem 8; documented limitation).
    pub fn real_roots_in(&self, lo: f64, hi: f64, grid: usize, xtol: f64) -> Vec<f64> {
        let mut roots = Vec::new();
        if self.coeffs.len() <= 1 || grid == 0 || !(lo.is_finite() && hi.is_finite() && lo < hi) {
            return roots;
        }
        let step = (hi - lo) / grid as f64;
        let mut x0 = lo;
        let mut f0 = self.eval(x0);
        for k in 1..=grid {
            let x1 = if k == grid { hi } else { lo + step * k as f64 };
            let f1 = self.eval(x1);
            if f0 == 0.0 {
                push_unique(&mut roots, x0, xtol);
            } else if f1 != 0.0 && (f0 < 0.0) != (f1 < 0.0) {
                if let Ok(r) = bisect(|x| self.eval(x), x0, x1, xtol, 0.0) {
                    push_unique(&mut roots, r, xtol);
                }
            }
            x0 = x1;
            f0 = f1;
        }
        if f0 == 0.0 {
            push_unique(&mut roots, x0, xtol);
        }
        roots
    }

    /// Isolate all real roots using the Cauchy bound as the search window.
    pub fn real_roots(&self, grid: usize, xtol: f64) -> Result<Vec<f64>, RootError> {
        let bound = self.cauchy_root_bound().unwrap_or(0.0);
        Ok(self.real_roots_in(-bound, bound, grid, xtol))
    }

    /// Polynomial addition.
    pub fn add(&self, other: &Polynomial) -> Polynomial {
        let n = self.coeffs.len().max(other.coeffs.len());
        let mut out = vec![0.0; n];
        for (k, slot) in out.iter_mut().enumerate() {
            let a = self.coeffs.get(k).copied().unwrap_or(0.0);
            let b = other.coeffs.get(k).copied().unwrap_or(0.0);
            *slot = a + b;
        }
        Polynomial::new(out)
    }

    /// Polynomial multiplication (schoolbook with compensated accumulation).
    pub fn mul(&self, other: &Polynomial) -> Polynomial {
        if self.coeffs.is_empty() || other.coeffs.is_empty() {
            return Polynomial::zero();
        }
        let n = self.coeffs.len() + other.coeffs.len() - 1;
        let mut out = vec![0.0; n];
        for (k, slot) in out.iter_mut().enumerate() {
            let mut acc = NeumaierSum::new();
            let i_lo = k.saturating_sub(other.coeffs.len() - 1);
            let i_hi = k.min(self.coeffs.len() - 1);
            for i in i_lo..=i_hi {
                acc.add(self.coeffs[i] * other.coeffs[k - i]);
            }
            *slot = acc.total();
        }
        Polynomial::new(out)
    }

    /// Scale by a constant.
    pub fn scale(&self, c: f64) -> Polynomial {
        Polynomial::new(self.coeffs.iter().map(|&a| a * c).collect())
    }

    /// `p(x) <- p(c * x)` substitution (used to rescale witnesses).
    pub fn compose_scale(&self, c: f64) -> Polynomial {
        let mut pow = 1.0;
        Polynomial::new(
            self.coeffs
                .iter()
                .map(|&a| {
                    let v = a * pow;
                    pow *= c;
                    v
                })
                .collect(),
        )
    }
}

fn push_unique(roots: &mut Vec<f64>, r: f64, xtol: f64) {
    if roots
        .last()
        .is_none_or(|&prev| (r - prev).abs() > 10.0 * xtol.max(1e-15))
    {
        roots.push(r);
    }
}

impl std::fmt::Display for Polynomial {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.coeffs.is_empty() {
            return write!(f, "0");
        }
        let mut first = true;
        for (k, &c) in self.coeffs.iter().enumerate().rev() {
            if c == 0.0 {
                continue;
            }
            if first {
                write!(f, "{c}")?;
                first = false;
            } else if c < 0.0 {
                write!(f, " - {}", -c)?;
            } else {
                write!(f, " + {c}")?;
            }
            if k >= 1 {
                write!(f, "·x")?;
                if k >= 2 {
                    write!(f, "^{k}")?;
                }
            }
        }
        if first {
            write!(f, "0")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(coeffs: &[f64]) -> Polynomial {
        Polynomial::new(coeffs.to_vec())
    }

    #[test]
    fn eval_matches_manual_expansion() {
        // 1 + 2x + 3x^2 at x = 2 -> 1 + 4 + 12 = 17.
        assert_eq!(p(&[1.0, 2.0, 3.0]).eval(2.0), 17.0);
    }

    #[test]
    fn from_descending_reverses() {
        // x^2 - 3x + 2 printed descending.
        let q = Polynomial::from_descending(vec![1.0, -3.0, 2.0]);
        assert_eq!(q.eval(1.0), 0.0);
        assert_eq!(q.eval(2.0), 0.0);
        assert_eq!(q.eval(0.0), 2.0);
    }

    #[test]
    fn degree_and_trim() {
        assert_eq!(p(&[1.0, 0.0, 0.0]).degree(), Some(0));
        assert_eq!(Polynomial::zero().degree(), None);
        assert_eq!(p(&[0.0, 0.0, 5.0]).degree(), Some(2));
    }

    #[test]
    fn derivative_of_cubic() {
        // d/dx (x^3 - 2x) = 3x^2 - 2
        let q = p(&[0.0, -2.0, 0.0, 1.0]).derivative();
        assert_eq!(q, p(&[-2.0, 0.0, 3.0]));
    }

    #[test]
    fn eval_with_derivative_agrees_with_separate_eval() {
        let q = p(&[3.0, -1.0, 0.5, 2.0]);
        let d = q.derivative();
        for &x in &[-2.0, -0.5, 0.0, 1.0, 3.7] {
            let (v, dv) = q.eval_with_derivative(x);
            assert!((v - q.eval(x)).abs() < 1e-12);
            assert!((dv - d.eval(x)).abs() < 1e-12);
        }
    }

    #[test]
    fn mul_matches_known_product() {
        // (x - 1)(x + 1) = x^2 - 1
        let q = p(&[-1.0, 1.0]).mul(&p(&[1.0, 1.0]));
        assert_eq!(q, p(&[-1.0, 0.0, 1.0]));
    }

    #[test]
    fn add_and_scale() {
        let q = p(&[1.0, 2.0]).add(&p(&[1.0, -2.0, 4.0]));
        assert_eq!(q, p(&[2.0, 0.0, 4.0]));
        assert_eq!(q.scale(0.5), p(&[1.0, 0.0, 2.0]));
    }

    #[test]
    fn cauchy_bound_contains_roots() {
        // Roots at 1, 2, 3: (x-1)(x-2)(x-3) = x^3 - 6x^2 + 11x - 6.
        let q = p(&[-6.0, 11.0, -6.0, 1.0]);
        let b = q.cauchy_root_bound().unwrap();
        assert!(b >= 3.0);
    }

    #[test]
    fn real_roots_of_cubic() {
        let q = p(&[-6.0, 11.0, -6.0, 1.0]);
        let roots = q.real_roots(4000, 1e-12).unwrap();
        assert_eq!(roots.len(), 3);
        for (r, want) in roots.iter().zip([1.0, 2.0, 3.0]) {
            assert!((r - want).abs() < 1e-9, "root {r} vs {want}");
        }
    }

    #[test]
    fn real_roots_in_window_only() {
        let q = p(&[-6.0, 11.0, -6.0, 1.0]);
        let roots = q.real_roots_in(1.5, 3.5, 1000, 1e-12);
        assert_eq!(roots.len(), 2);
    }

    #[test]
    fn compose_scale_substitutes() {
        // p(x) = x^2; p(3x) = 9x^2.
        let q = p(&[0.0, 0.0, 1.0]).compose_scale(3.0);
        assert_eq!(q, p(&[0.0, 0.0, 9.0]));
    }

    #[test]
    fn display_renders_signs() {
        let q = p(&[-6.0, 11.0, -6.0, 1.0]);
        let s = format!("{q}");
        assert!(s.contains("x^3"), "{s}");
        assert!(s.contains("- 6"), "{s}");
    }
}
