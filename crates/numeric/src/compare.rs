//! Floating-point comparison helpers with explicit tolerances.
//!
//! The scheduling algorithms repeatedly compare completion times against
//! release times (the three-way case split of Theorem 1, block-boundary
//! detection in `IncMerge`, ...). Those comparisons must use a single,
//! clearly documented tolerance convention, which this module provides.

/// `x` is a usable positive quantity: finite and strictly greater than
/// zero. Rejects NaN, infinities, zero and negatives — the validation
/// every budget/target/tolerance parameter in the workspace needs.
#[inline]
pub fn is_positive_finite(x: f64) -> bool {
    x.is_finite() && x > 0.0
}

/// `a` strictly exceeds `b` *and* both are honest numbers (NaN on either
/// side fails). The NaN-rejecting form of `a > b` for input validation.
#[inline]
pub fn strictly_exceeds(a: f64, b: f64) -> bool {
    !a.is_nan() && !b.is_nan() && a > b
}

/// Absolute-tolerance comparison: `|a - b| <= tol`.
///
/// Use when the quantities share a natural scale (e.g. times within one
/// instance).
#[inline]
pub fn approx_eq_abs(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol
}

/// Relative-tolerance comparison: `|a - b| <= tol * max(|a|, |b|)`.
///
/// Use when the quantities can span orders of magnitude (e.g. energies).
#[inline]
pub fn approx_eq_rel(a: f64, b: f64, tol: f64) -> bool {
    let scale = a.abs().max(b.abs());
    (a - b).abs() <= tol * scale
}

/// Combined comparison: true when either the absolute test (with `abs_tol`)
/// or the relative test (with `rel_tol`) passes.
///
/// This is the default comparison used across the workspace: the absolute
/// branch handles values near zero, the relative branch large values.
#[inline]
pub fn approx_eq(a: f64, b: f64, abs_tol: f64, rel_tol: f64) -> bool {
    approx_eq_abs(a, b, abs_tol) || approx_eq_rel(a, b, rel_tol)
}

/// Three-way classification of `a` vs `b` under an absolute tolerance.
///
/// Returns [`std::cmp::Ordering::Equal`] when `|a - b| <= tol`, otherwise
/// the strict ordering. This is the primitive behind the Theorem-1 case
/// split (`C_i < r_{i+1}`, `=`, `>`).
#[inline]
pub fn classify(a: f64, b: f64, tol: f64) -> std::cmp::Ordering {
    if approx_eq_abs(a, b, tol) {
        std::cmp::Ordering::Equal
    } else if a < b {
        std::cmp::Ordering::Less
    } else {
        std::cmp::Ordering::Greater
    }
}

/// Clamp `x` into `[lo, hi]`, tolerating slightly inverted bounds caused by
/// rounding (if `lo > hi` but within `tol`, returns their midpoint).
///
/// Returns `None` when the interval is genuinely inverted beyond `tol`.
#[inline]
pub fn clamp_tol(x: f64, lo: f64, hi: f64, tol: f64) -> Option<f64> {
    if lo > hi {
        if lo - hi <= tol {
            Some(0.5 * (lo + hi))
        } else {
            None
        }
    } else {
        Some(x.clamp(lo, hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;

    #[test]
    fn abs_comparison_symmetric() {
        assert!(approx_eq_abs(1.0, 1.0 + 1e-12, 1e-9));
        assert!(approx_eq_abs(1.0 + 1e-12, 1.0, 1e-9));
        assert!(!approx_eq_abs(1.0, 1.1, 1e-9));
    }

    #[test]
    fn rel_comparison_scales() {
        assert!(approx_eq_rel(1e12, 1e12 + 1.0, 1e-9));
        assert!(!approx_eq_rel(1.0, 1.0 + 1e-3, 1e-9));
    }

    #[test]
    fn combined_handles_zero() {
        // Relative comparison alone fails near zero; combined must pass.
        assert!(approx_eq(0.0, 1e-15, 1e-12, 1e-9));
        assert!(!approx_eq(0.0, 1e-3, 1e-12, 1e-9));
    }

    #[test]
    fn classify_three_way() {
        assert_eq!(classify(1.0, 2.0, 1e-9), Ordering::Less);
        assert_eq!(classify(2.0, 1.0, 1e-9), Ordering::Greater);
        assert_eq!(classify(1.0, 1.0 + 1e-12, 1e-9), Ordering::Equal);
    }

    #[test]
    fn clamp_tol_accepts_normal_interval() {
        assert_eq!(clamp_tol(5.0, 0.0, 1.0, 1e-9), Some(1.0));
        assert_eq!(clamp_tol(-5.0, 0.0, 1.0, 1e-9), Some(0.0));
        assert_eq!(clamp_tol(0.5, 0.0, 1.0, 1e-9), Some(0.5));
    }

    #[test]
    fn clamp_tol_handles_inverted_interval() {
        // Slightly inverted by rounding: midpoint.
        let mid = clamp_tol(0.0, 1.0 + 1e-12, 1.0, 1e-9).unwrap();
        assert!((mid - 1.0).abs() < 1e-9);
        // Genuinely inverted: rejected.
        assert_eq!(clamp_tol(0.0, 2.0, 1.0, 1e-9), None);
    }
}
