//! Numeric differentiation with Richardson extrapolation.
//!
//! The frontier module computes `dM/dE` and `d²M/dE²` in closed form for
//! the canonical `σ^α` power model (Figures 2 and 3 of the paper). These
//! routines provide an independent numeric cross-check of those closed
//! forms, and the only way to plot the derivative curves for general
//! convex power models where no closed form exists.

/// Central-difference first derivative with one Richardson extrapolation
/// step: error `O(h⁴)` for smooth `f`.
pub fn derivative(mut f: impl FnMut(f64) -> f64, x: f64, h: f64) -> f64 {
    let d = |f: &mut dyn FnMut(f64) -> f64, h: f64| (f(x + h) - f(x - h)) / (2.0 * h);
    let d_h = d(&mut f, h);
    let d_h2 = d(&mut f, h / 2.0);
    (4.0 * d_h2 - d_h) / 3.0
}

/// Central-difference second derivative with one Richardson step.
pub fn second_derivative(mut f: impl FnMut(f64) -> f64, x: f64, h: f64) -> f64 {
    let d2 = |f: &mut dyn FnMut(f64) -> f64, h: f64| (f(x + h) - 2.0 * f(x) + f(x - h)) / (h * h);
    let d_h = d2(&mut f, h);
    let d_h2 = d2(&mut f, h / 2.0);
    (4.0 * d_h2 - d_h) / 3.0
}

/// One-sided (forward) derivative, for evaluating at the edge of a
/// frontier segment where the two-sided stencil would straddle a
/// breakpoint. Second-order accurate.
pub fn forward_derivative(mut f: impl FnMut(f64) -> f64, x: f64, h: f64) -> f64 {
    (-3.0 * f(x) + 4.0 * f(x + h) - f(x + 2.0 * h)) / (2.0 * h)
}

/// One-sided (backward) derivative; mirror of [`forward_derivative`].
pub fn backward_derivative(mut f: impl FnMut(f64) -> f64, x: f64, h: f64) -> f64 {
    (3.0 * f(x) - 4.0 * f(x - h) + f(x - 2.0 * h)) / (2.0 * h)
}

/// Numerically check convexity of `f` on `[lo, hi]` by testing the
/// midpoint inequality on `samples` random-ish (deterministic low
/// discrepancy) triples. Returns the worst violation (negative slack
/// means a violation of at least that size).
pub fn convexity_slack(mut f: impl FnMut(f64) -> f64, lo: f64, hi: f64, samples: usize) -> f64 {
    let mut worst: f64 = f64::INFINITY;
    // Golden-ratio low-discrepancy sequence over pairs.
    let phi = 0.618_033_988_749_894_9_f64;
    let mut u = 0.11;
    let mut v = 0.37;
    for _ in 0..samples {
        u = (u + phi) % 1.0;
        v = (v + phi * phi) % 1.0;
        let a = lo + (hi - lo) * u;
        let b = lo + (hi - lo) * v;
        if (a - b).abs() < 1e-12 {
            continue;
        }
        let mid = 0.5 * (a + b);
        let slack = 0.5 * (f(a) + f(b)) - f(mid);
        worst = worst.min(slack);
    }
    if worst == f64::INFINITY {
        0.0
    } else {
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derivative_of_cube() {
        // d/dx x^3 at 2 = 12.
        let d = derivative(|x| x * x * x, 2.0, 1e-4);
        assert!((d - 12.0).abs() < 1e-8, "{d}");
    }

    #[test]
    fn second_derivative_of_cube() {
        // d²/dx² x^3 at 2 = 12.
        let d = second_derivative(|x| x * x * x, 2.0, 1e-3);
        assert!((d - 12.0).abs() < 1e-6, "{d}");
    }

    #[test]
    fn one_sided_derivatives_match_at_smooth_point() {
        let f = |x: f64| x.powf(1.5);
        let fwd = forward_derivative(f, 4.0, 1e-5);
        let bwd = backward_derivative(f, 4.0, 1e-5);
        let want = 1.5 * 2.0; // 1.5 * sqrt(4)
        assert!((fwd - want).abs() < 1e-6);
        assert!((bwd - want).abs() < 1e-6);
    }

    #[test]
    fn one_sided_derivatives_split_at_kink() {
        // |x| has one-sided derivatives -1 and +1 at 0.
        let f = |x: f64| x.abs();
        assert!((forward_derivative(f, 0.0, 1e-6) - 1.0).abs() < 1e-9);
        assert!((backward_derivative(f, 0.0, 1e-6) + 1.0).abs() < 1e-9);
    }

    #[test]
    fn convexity_slack_sign() {
        // x^2 is convex: slack >= 0. -x^2 is concave: slack < 0.
        assert!(convexity_slack(|x| x * x, -1.0, 1.0, 500) >= -1e-12);
        assert!(convexity_slack(|x| -x * x, -1.0, 1.0, 500) < 0.0);
    }
}
