//! Compensated (Neumaier) summation.
//!
//! Energy totals accumulate over many schedule slices whose magnitudes can
//! differ by orders of magnitude (a long slow block vs. a short sprint at
//! high speed, where power grows like `σ^α`). Plain `f64` summation loses
//! low-order bits exactly where the frontier breakpoints are decided, so
//! all energy accumulation in the workspace goes through this module.

/// Running Neumaier-compensated sum.
///
/// Neumaier's variant of Kahan summation also handles the case where the
/// incoming term is larger than the running total, which happens routinely
/// when a high-speed block's energy dwarfs the prefix.
#[derive(Debug, Clone, Copy, Default)]
pub struct NeumaierSum {
    sum: f64,
    compensation: f64,
}

impl NeumaierSum {
    /// Start an empty sum.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one term.
    #[inline]
    pub fn add(&mut self, x: f64) {
        let t = self.sum + x;
        if self.sum.abs() >= x.abs() {
            self.compensation += (self.sum - t) + x;
        } else {
            self.compensation += (x - t) + self.sum;
        }
        self.sum = t;
    }

    /// The compensated total.
    #[inline]
    pub fn total(&self) -> f64 {
        self.sum + self.compensation
    }
}

impl Extend<f64> for NeumaierSum {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.add(x);
        }
    }
}

impl FromIterator<f64> for NeumaierSum {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = NeumaierSum::new();
        s.extend(iter);
        s
    }
}

/// Sum a slice with Neumaier compensation.
pub fn compensated_sum(xs: &[f64]) -> f64 {
    xs.iter().copied().collect::<NeumaierSum>().total()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_kahan_killer() {
        // 1 + 1e100 + 1 - 1e100 = 2, but naive f64 gives 0.
        let naive: f64 = [1.0, 1e100, 1.0, -1e100].iter().sum();
        assert_eq!(naive, 0.0);
        assert_eq!(compensated_sum(&[1.0, 1e100, 1.0, -1e100]), 2.0);
    }

    #[test]
    fn matches_exact_small_sums() {
        assert_eq!(compensated_sum(&[0.25, 0.5, 0.125]), 0.875);
        assert_eq!(compensated_sum(&[]), 0.0);
    }

    #[test]
    fn many_small_terms_do_not_drift() {
        // 1e7 copies of 0.1: exact value 1e6; naive sum drifts.
        let n = 10_000_000;
        let mut s = NeumaierSum::new();
        for _ in 0..n {
            s.add(0.1);
        }
        assert!((s.total() - 1e6).abs() < 1e-4);
    }

    #[test]
    fn extend_and_collect() {
        let s: NeumaierSum = vec![1.0, 2.0, 3.0].into_iter().collect();
        assert_eq!(s.total(), 6.0);
        let mut t = NeumaierSum::new();
        t.extend(vec![4.0, 5.0]);
        assert_eq!(t.total(), 9.0);
    }
}
