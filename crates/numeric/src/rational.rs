//! Exact rational arithmetic (`i128` numerator/denominator).
//!
//! The paper's closing remark in §4: *"Only an exact algorithm such as
//! IncMerge can give closed-form solutions suitable for symbolic
//! computation."* For rational instance data and integer `α`, every
//! quantity IncMerge manipulates except the final block's speed — block
//! boundaries, exact-fit speeds, energies, and the frontier breakpoints —
//! is rational, so the symbolic computation the paper alludes to is
//! literally executable. This module provides the arithmetic;
//! `pas-core::makespan::exact` runs the algorithm over it.
//!
//! Overflow: operations use `checked_*` internally and return `None` on
//! overflow (or panic in the `ops` traits, which document it). With
//! gcd-normalization after every step, the experiment-scale inputs stay
//! far below `i128` limits.

/// An exact rational number `num/den`, always normalized: `den > 0`,
/// `gcd(|num|, den) = 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rational {
    num: i128,
    den: i128,
}

fn gcd(mut a: i128, mut b: i128) -> i128 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a.abs().max(1)
}

impl Rational {
    /// Zero.
    pub const ZERO: Rational = Rational { num: 0, den: 1 };
    /// One.
    pub const ONE: Rational = Rational { num: 1, den: 1 };

    /// Build `num/den`, normalizing sign and common factors.
    ///
    /// # Panics
    /// If `den == 0`.
    pub fn new(num: i128, den: i128) -> Rational {
        assert!(den != 0, "zero denominator");
        let sign = if den < 0 { -1 } else { 1 };
        let g = gcd(num, den);
        Rational {
            num: sign * num / g,
            den: (den / g).abs(),
        }
    }

    /// An integer as a rational.
    pub fn from_int(k: i128) -> Rational {
        Rational { num: k, den: 1 }
    }

    /// Numerator (sign-carrying).
    pub fn numerator(&self) -> i128 {
        self.num
    }

    /// Denominator (always positive).
    pub fn denominator(&self) -> i128 {
        self.den
    }

    /// Convert to `f64` (rounding).
    pub fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Checked addition.
    pub fn checked_add(&self, rhs: &Rational) -> Option<Rational> {
        let g = gcd(self.den, rhs.den);
        let lcm_part = rhs.den / g;
        let num = self
            .num
            .checked_mul(lcm_part)?
            .checked_add(rhs.num.checked_mul(self.den / g)?)?;
        let den = self.den.checked_mul(lcm_part)?;
        Some(Rational::new(num, den))
    }

    /// Checked subtraction.
    pub fn checked_sub(&self, rhs: &Rational) -> Option<Rational> {
        self.checked_add(&Rational::new(-rhs.num, rhs.den))
    }

    /// Checked multiplication (cross-reduced to delay overflow).
    pub fn checked_mul(&self, rhs: &Rational) -> Option<Rational> {
        let g1 = gcd(self.num, rhs.den);
        let g2 = gcd(rhs.num, self.den);
        let num = (self.num / g1).checked_mul(rhs.num / g2)?;
        let den = (self.den / g2).checked_mul(rhs.den / g1)?;
        Some(Rational::new(num, den))
    }

    /// Checked division.
    ///
    /// Returns `None` on division by zero or overflow.
    pub fn checked_div(&self, rhs: &Rational) -> Option<Rational> {
        if rhs.num == 0 {
            return None;
        }
        self.checked_mul(&Rational::new(rhs.den, rhs.num))
    }

    /// Checked integer power.
    pub fn checked_pow(&self, mut exp: u32) -> Option<Rational> {
        let mut base = *self;
        let mut acc = Rational::ONE;
        while exp > 0 {
            if exp & 1 == 1 {
                acc = acc.checked_mul(&base)?;
            }
            exp >>= 1;
            if exp > 0 {
                base = base.checked_mul(&base)?;
            }
        }
        Some(acc)
    }

    /// Whether this value is strictly positive.
    pub fn is_positive(&self) -> bool {
        self.num > 0
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // a/b vs c/d  <=>  a·d vs c·b (b, d > 0). i128 is wide enough for
        // the normalized operands the workspace produces; fall back to
        // f64 only on overflow.
        match (
            self.num.checked_mul(other.den),
            other.num.checked_mul(self.den),
        ) {
            (Some(l), Some(r)) => l.cmp(&r),
            _ => self
                .to_f64()
                .partial_cmp(&other.to_f64())
                .expect("finite ratios"),
        }
    }
}

impl std::ops::Add for Rational {
    type Output = Rational;
    /// # Panics
    /// On `i128` overflow.
    fn add(self, rhs: Rational) -> Rational {
        self.checked_add(&rhs).expect("rational overflow in add")
    }
}

impl std::ops::Sub for Rational {
    type Output = Rational;
    /// # Panics
    /// On `i128` overflow.
    fn sub(self, rhs: Rational) -> Rational {
        self.checked_sub(&rhs).expect("rational overflow in sub")
    }
}

impl std::ops::Mul for Rational {
    type Output = Rational;
    /// # Panics
    /// On `i128` overflow.
    fn mul(self, rhs: Rational) -> Rational {
        self.checked_mul(&rhs).expect("rational overflow in mul")
    }
}

impl std::ops::Div for Rational {
    type Output = Rational;
    /// # Panics
    /// On division by zero or overflow.
    fn div(self, rhs: Rational) -> Rational {
        self.checked_div(&rhs).expect("rational division error")
    }
}

impl std::fmt::Display for Rational {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i128, d: i128) -> Rational {
        Rational::new(n, d)
    }

    #[test]
    fn normalization() {
        assert_eq!(r(2, 4), r(1, 2));
        assert_eq!(r(-2, -4), r(1, 2));
        assert_eq!(r(2, -4), r(-1, 2));
        assert_eq!(r(0, 5), Rational::ZERO);
    }

    #[test]
    fn arithmetic() {
        assert_eq!(r(1, 2) + r(1, 3), r(5, 6));
        assert_eq!(r(1, 2) - r(1, 3), r(1, 6));
        assert_eq!(r(2, 3) * r(3, 4), r(1, 2));
        assert_eq!(r(1, 2) / r(1, 4), r(2, 1));
    }

    #[test]
    fn powers_and_order() {
        assert_eq!(r(2, 3).checked_pow(3).unwrap(), r(8, 27));
        assert_eq!(r(5, 1).checked_pow(0).unwrap(), Rational::ONE);
        assert!(r(1, 3) < r(1, 2));
        assert!(r(-1, 2) < Rational::ZERO);
        assert!(r(7, 3) > r(2, 1));
    }

    #[test]
    fn conversions_and_display() {
        assert_eq!(r(1, 2).to_f64(), 0.5);
        assert_eq!(format!("{}", r(17, 1)), "17");
        assert_eq!(format!("{}", r(-3, 4)), "-3/4");
        assert_eq!(Rational::from_int(9), r(9, 1));
    }

    #[test]
    fn division_by_zero_is_none() {
        assert!(r(1, 2).checked_div(&Rational::ZERO).is_none());
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn rejects_zero_denominator() {
        let _ = Rational::new(1, 0);
    }

    #[test]
    fn overflow_is_detected() {
        let huge = Rational::new(i128::MAX, 1);
        assert!(huge.checked_mul(&huge).is_none());
        assert!(huge.checked_add(&Rational::ONE).is_none());
    }
}
