//! Sturm chains: exact real-root *counting* for polynomials.
//!
//! The sign-scan in [`crate::poly::Polynomial::real_roots_in`] can miss
//! tightly-paired roots. A Sturm chain gives a certificate: the number
//! of distinct real roots in `(a, b]` equals the difference in sign
//! variations of the chain at `a` and `b`. The hardness experiments use
//! it to certify that the degree-12 Theorem-8 polynomial's root
//! inventory found by scanning is complete.
//!
//! Chain: `p₀ = p`, `p₁ = p′`, `p_{k+1} = −rem(p_{k−1}, p_k)` until a
//! (near-)zero remainder. Each remainder is rescaled to unit max
//! coefficient — positive scaling preserves signs and keeps the f64
//! arithmetic stable through a dozen division rounds.

use crate::poly::Polynomial;

/// A Sturm chain for one polynomial.
#[derive(Debug, Clone)]
pub struct SturmChain {
    chain: Vec<Polynomial>,
}

/// Coefficients smaller than this (relative to the polynomial scale)
/// are treated as zero when terminating the chain.
const ZERO_TOL: f64 = 1e-10;

impl SturmChain {
    /// Build the chain for `p`.
    ///
    /// Works for square-free polynomials; repeated roots make the chain
    /// terminate early at the gcd, in which case counts refer to
    /// *distinct* roots (the standard Sturm semantics).
    pub fn new(p: &Polynomial) -> SturmChain {
        let mut chain = Vec::new();
        let p0 = normalize(p.clone());
        let p1 = normalize(p.derivative());
        if p0.degree().is_none() {
            return SturmChain { chain };
        }
        chain.push(p0);
        if p1.degree().is_none() {
            return SturmChain { chain };
        }
        chain.push(p1);
        while chain.last().expect("non-empty").degree().map_or(0, |d| d) >= 1 {
            let a = &chain[chain.len() - 2];
            let b = &chain[chain.len() - 1];
            let (_, rem) = div_rem(a, b);
            let next = normalize(rem.scale(-1.0));
            if next.degree().is_none() {
                break;
            }
            chain.push(next);
        }
        SturmChain { chain }
    }

    /// Number of sign variations of the chain evaluated at `x`.
    pub fn variations_at(&self, x: f64) -> usize {
        let mut count = 0;
        let mut last_sign = 0i8;
        for p in &self.chain {
            let v = p.eval(x);
            let sign = if v > ZERO_TOL {
                1
            } else if v < -ZERO_TOL {
                -1
            } else {
                0
            };
            if sign != 0 {
                if last_sign != 0 && sign != last_sign {
                    count += 1;
                }
                last_sign = sign;
            }
        }
        count
    }

    /// Number of distinct real roots in `(a, b]`.
    ///
    /// # Panics
    /// If `a >= b`.
    pub fn count_roots(&self, a: f64, b: f64) -> usize {
        assert!(a < b, "need a < b");
        self.variations_at(a).saturating_sub(self.variations_at(b))
    }

    /// Number of distinct real roots anywhere, via the Cauchy bound of
    /// the chain's head.
    pub fn count_all_roots(&self) -> usize {
        let Some(head) = self.chain.first() else {
            return 0;
        };
        let bound = head.cauchy_root_bound().unwrap_or(0.0) + 1.0;
        self.count_roots(-bound, bound)
    }

    /// The chain polynomials (for inspection).
    pub fn chain(&self) -> &[Polynomial] {
        &self.chain
    }
}

/// Scale a polynomial so its largest |coefficient| is 1 (sign-preserving).
fn normalize(p: Polynomial) -> Polynomial {
    let max = p.coeffs().iter().fold(0.0f64, |m, c| m.max(c.abs()));
    if max <= ZERO_TOL {
        Polynomial::zero()
    } else {
        p.scale(1.0 / max)
    }
}

/// Euclidean division: `a = q·b + r` with `deg r < deg b`.
///
/// # Panics
/// If `b` is the zero polynomial.
pub fn div_rem(a: &Polynomial, b: &Polynomial) -> (Polynomial, Polynomial) {
    let db = b.degree().expect("division by zero polynomial");
    let lead_b = b.coeffs()[db];
    let mut rem: Vec<f64> = a.coeffs().to_vec();
    let da = rem.len().saturating_sub(1);
    if da < db {
        return (Polynomial::zero(), a.clone());
    }
    let mut quot = vec![0.0; da - db + 1];
    for k in (db..=da).rev() {
        let coeff = rem[k] / lead_b;
        quot[k - db] = coeff;
        for j in 0..=db {
            rem[k - db + j] -= coeff * b.coeffs()[j];
        }
        rem[k] = 0.0;
    }
    (Polynomial::new(quot), Polynomial::new(rem))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn poly(coeffs: &[f64]) -> Polynomial {
        Polynomial::new(coeffs.to_vec())
    }

    #[test]
    fn div_rem_identity() {
        // (x² - 1) / (x - 1) = (x + 1), rem 0.
        let a = poly(&[-1.0, 0.0, 1.0]);
        let b = poly(&[-1.0, 1.0]);
        let (q, r) = div_rem(&a, &b);
        assert_eq!(q, poly(&[1.0, 1.0]));
        assert_eq!(r.degree(), None);
        // With remainder: x² / (x - 1) = x + 1 rem 1.
        let (q2, r2) = div_rem(&poly(&[0.0, 0.0, 1.0]), &b);
        assert_eq!(q2, poly(&[1.0, 1.0]));
        assert_eq!(r2, poly(&[1.0]));
    }

    #[test]
    fn counts_roots_of_cubic() {
        // (x-1)(x-2)(x-3).
        let p = poly(&[-6.0, 11.0, -6.0, 1.0]);
        let chain = SturmChain::new(&p);
        assert_eq!(chain.count_all_roots(), 3);
        assert_eq!(chain.count_roots(0.0, 4.0), 3);
        assert_eq!(chain.count_roots(1.5, 2.5), 1);
        assert_eq!(chain.count_roots(3.5, 10.0), 0);
    }

    #[test]
    fn counts_no_real_roots() {
        // x² + 1.
        let chain = SturmChain::new(&poly(&[1.0, 0.0, 1.0]));
        assert_eq!(chain.count_all_roots(), 0);
    }

    #[test]
    fn counts_close_roots_scan_might_merge() {
        // (x - 1)(x - 1.001): two roots 1e-3 apart.
        let p = poly(&[1.0, -1.0]).mul(&poly(&[1.001, -1.0]));
        // Note: mul gives (1 - x)(1.001 - x) = same roots.
        let chain = SturmChain::new(&p);
        assert_eq!(chain.count_roots(0.5, 1.5), 2);
    }

    #[test]
    fn agrees_with_scan_on_random_products() {
        // Build polynomials with known roots; Sturm count must match.
        let roots = [-2.5, -0.5, 0.25, 1.0, 3.75];
        let mut p = Polynomial::constant(1.0);
        for &r in &roots {
            p = p.mul(&poly(&[-r, 1.0]));
        }
        let chain = SturmChain::new(&p);
        assert_eq!(chain.count_all_roots(), roots.len());
        let found = p.real_roots(8000, 1e-12).unwrap();
        assert_eq!(found.len(), roots.len());
    }

    #[test]
    fn variations_monotone_in_x() {
        let p = poly(&[-6.0, 11.0, -6.0, 1.0]);
        let chain = SturmChain::new(&p);
        let mut prev = chain.variations_at(-10.0);
        for k in 1..100 {
            let x = -10.0 + 0.25 * k as f64;
            let v = chain.variations_at(x);
            assert!(v <= prev, "variations increased at {x}");
            prev = v;
        }
    }
}
