//! Golden-section minimization of unimodal scalar functions.
//!
//! Used by the discrete-speed emulation (picking the best level split) and
//! by tests that locate frontier knees.

/// Minimize a unimodal `f` on `[lo, hi]` by golden-section search.
///
/// Returns `(x_min, f(x_min))`. Converges linearly; `xtol` bounds the final
/// bracket width. For non-unimodal functions the result is a local
/// minimum within the bracket.
pub fn golden_section(
    mut f: impl FnMut(f64) -> f64,
    mut lo: f64,
    mut hi: f64,
    xtol: f64,
) -> (f64, f64) {
    debug_assert!(lo <= hi);
    const INV_PHI: f64 = 0.618_033_988_749_894_9;
    let mut x1 = hi - INV_PHI * (hi - lo);
    let mut x2 = lo + INV_PHI * (hi - lo);
    let mut f1 = f(x1);
    let mut f2 = f(x2);
    let mut iterations = 0usize;
    while (hi - lo) > xtol && iterations < 400 {
        if f1 <= f2 {
            hi = x2;
            x2 = x1;
            f2 = f1;
            x1 = hi - INV_PHI * (hi - lo);
            f1 = f(x1);
        } else {
            lo = x1;
            x1 = x2;
            f1 = f2;
            x2 = lo + INV_PHI * (hi - lo);
            f2 = f(x2);
        }
        iterations += 1;
    }
    let x = 0.5 * (lo + hi);
    (x, f(x))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_parabola_vertex() {
        let (x, fx) = golden_section(|x| (x - 3.0) * (x - 3.0) + 1.0, -10.0, 10.0, 1e-10);
        assert!((x - 3.0).abs() < 1e-6);
        assert!((fx - 1.0).abs() < 1e-12);
    }

    #[test]
    fn handles_minimum_at_boundary() {
        let (x, _) = golden_section(|x| x, 0.0, 1.0, 1e-10);
        assert!(x < 1e-8);
    }

    #[test]
    fn energy_vs_split_shape() {
        // Two-speed split energy: convex in the split fraction.
        let energy = |t: f64| 2.0 * t * t + (1.0 - t) * (1.0 - t);
        let (x, _) = golden_section(energy, 0.0, 1.0, 1e-10);
        assert!((x - 1.0 / 3.0).abs() < 1e-7);
    }
}
