//! The timeline engine: shared infrastructure for interval and
//! prefix-sum queries over job time windows.
//!
//! Every algorithm in the deadline stack (YDS, AVR, OA) and several of
//! the paper's own solvers reduce to the same three primitives over a
//! set of time points:
//!
//! * [`EventAxis`] — a coordinate-compressed axis of event times
//!   (releases, deadlines): build once in `O(n log n)`, then map any
//!   event time to its dense rank in `O(log n)`.
//! * [`Fenwick`] — a binary-indexed tree over the compressed axis:
//!   `O(log n)` point updates and prefix sums, used to answer "how much
//!   work has deadline rank `< k`" style queries without rescanning jobs.
//! * [`IntervalSet`] — a sorted, disjoint set of closed intervals with
//!   coalescing insert and `O(log n)`-lookup measure/gap queries against
//!   maintained prefix lengths. This is the explicit-blocked-time
//!   representation YDS uses instead of the textbook "contract the
//!   timeline" step, shared so AVR/OA/experiments stop growing their own
//!   ad-hoc blocked lists.
//!
//! All comparisons are tolerance-free (`f64::total_cmp`); callers decide
//! where epsilons belong — AVR and OA use [`EventAxis`]/[`Fenwick`]
//! directly, while the YDS sweep layers its own EPS-clustered coordinates
//! (see `pas-core`'s `deadline::yds`) over the [`IntervalSet`] and
//! [`TimeKey`]. The structures are deliberately allocation-lean: the hot
//! paths see nothing but linear scans and binary searches.

/// A coordinate-compressed, sorted axis of event times.
///
/// Times equal under `total_cmp` collapse to one coordinate. Dedup uses
/// the *same* equality as [`rank_of`](EventAxis::rank_of)'s binary
/// search, so every time fed into the axis is guaranteed findable
/// (`-0.0` and `+0.0` stay distinct coordinates at the same numeric
/// point; `PartialEq` dedup would merge them and strand `rank_of(0.0)`).
#[derive(Debug, Clone, Default)]
pub struct EventAxis {
    times: Vec<f64>,
}

impl EventAxis {
    /// Build the axis from arbitrary (unsorted, duplicated) times.
    pub fn new(times: impl IntoIterator<Item = f64>) -> Self {
        let mut times: Vec<f64> = times.into_iter().collect();
        times.sort_by(f64::total_cmp);
        times.dedup_by(|a, b| a.total_cmp(b).is_eq());
        EventAxis { times }
    }

    /// Number of distinct coordinates.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Whether the axis has no coordinates.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// The time at dense rank `rank`.
    ///
    /// # Panics
    /// If `rank` is out of bounds.
    pub fn time(&self, rank: usize) -> f64 {
        self.times[rank]
    }

    /// The sorted distinct times.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Dense rank of an exact event time (`None` if `t` is not an event).
    pub fn rank_of(&self, t: f64) -> Option<usize> {
        self.times
            .binary_search_by(|probe| probe.total_cmp(&t))
            .ok()
    }

    /// Number of coordinates strictly below `t` (a lower-bound rank for
    /// arbitrary, not-necessarily-event times).
    pub fn rank_below(&self, t: f64) -> usize {
        self.times.partition_point(|&probe| probe < t)
    }
}

/// A `(time, index)` ordering key for binary heaps over timeline events.
///
/// Orders by time under `f64::total_cmp` (via an order-preserving bit
/// transform, so *any* finite or non-finite time is safe — no
/// positive-only caveat), then by index for deterministic tie-breaks.
/// The deadline-stack schedulers use `Reverse<TimeKey>` for
/// earliest-deadline-first heaps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct TimeKey {
    key: u64,
    index: usize,
}

impl TimeKey {
    /// Key ordering `time` (by `total_cmp`) then `index`.
    pub fn new(time: f64, index: usize) -> Self {
        // Standard monotone f64→u64 map: flip all bits of negatives,
        // set the sign bit of non-negatives.
        let bits = time.to_bits();
        let key = if bits >> 63 == 1 {
            !bits
        } else {
            bits | (1 << 63)
        };
        TimeKey { key, index }
    }

    /// The payload index.
    pub fn index(&self) -> usize {
        self.index
    }
}

/// A Fenwick (binary-indexed) tree of `f64` accumulators.
///
/// `O(log n)` point add and prefix sum; used as the work accumulator
/// keyed by compressed (release-rank, deadline-rank) coordinates.
#[derive(Debug, Clone)]
pub struct Fenwick {
    tree: Vec<f64>,
}

impl Fenwick {
    /// A tree over `n` zero-initialized slots.
    pub fn new(n: usize) -> Self {
        Fenwick {
            tree: vec![0.0; n + 1],
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.tree.len() - 1
    }

    /// Whether the tree has no slots.
    pub fn is_empty(&self) -> bool {
        self.tree.len() <= 1
    }

    /// Add `delta` at slot `i`.
    ///
    /// # Panics
    /// If `i` is out of bounds.
    pub fn add(&mut self, i: usize, delta: f64) {
        assert!(i < self.tree.len() - 1, "Fenwick index out of bounds");
        let mut k = i + 1;
        while k < self.tree.len() {
            self.tree[k] += delta;
            k += k & k.wrapping_neg();
        }
    }

    /// Sum of slots `0..count`.
    ///
    /// # Panics
    /// If `count` exceeds the slot count.
    pub fn prefix_sum(&self, count: usize) -> f64 {
        assert!(count < self.tree.len(), "Fenwick prefix out of bounds");
        let mut sum = 0.0;
        let mut k = count;
        while k > 0 {
            sum += self.tree[k];
            k -= k & k.wrapping_neg();
        }
        sum
    }
}

/// A sorted set of disjoint closed intervals with coalescing insert and
/// logarithmic measure/gap queries.
///
/// Inserting an interval merges it with any overlapping or
/// (within `merge_eps`) abutting neighbors, so the set stays disjoint and
/// sorted. A prefix-length table is maintained alongside, making
/// [`measure_between`](IntervalSet::measure_between) a pair of binary
/// searches. Insertion splices a `Vec`, so it is `O(log n)` to locate
/// plus `O(n)` to shift in the worst case — amortized far lower here
/// because YDS inserts one interval per round and merges shrink the set.
#[derive(Debug, Clone, Default)]
pub struct IntervalSet {
    /// Disjoint `(start, end)` pairs, sorted by start.
    intervals: Vec<(f64, f64)>,
    /// `prefix[i]` = total length of `intervals[..i]`.
    prefix: Vec<f64>,
}

impl IntervalSet {
    /// An empty set.
    pub fn new() -> Self {
        IntervalSet::default()
    }

    /// The disjoint intervals, sorted by start.
    pub fn intervals(&self) -> &[(f64, f64)] {
        &self.intervals
    }

    /// Number of disjoint intervals.
    pub fn len(&self) -> usize {
        self.intervals.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }

    /// Total covered length.
    pub fn total_measure(&self) -> f64 {
        self.prefix.last().copied().unwrap_or(0.0)
            + self.intervals.last().map_or(0.0, |&(a, b)| b - a)
    }

    /// Insert `[start, end]`, merging overlapping or `merge_eps`-abutting
    /// neighbors.
    ///
    /// # Panics
    /// If `start > end` or either bound is not finite.
    pub fn insert(&mut self, start: f64, end: f64, merge_eps: f64) {
        assert!(
            start.is_finite() && end.is_finite() && start <= end,
            "IntervalSet::insert requires a finite, ordered interval"
        );
        // First interval whose end reaches the new start; everything from
        // here to `hi` merges into the inserted interval.
        let lo = self
            .intervals
            .partition_point(|&(_, b)| b < start - merge_eps);
        let hi = self
            .intervals
            .partition_point(|&(a, _)| a <= end + merge_eps);
        let merged = if lo < hi {
            (
                start.min(self.intervals[lo].0),
                end.max(self.intervals[hi - 1].1),
            )
        } else {
            (start, end)
        };
        self.intervals.splice(lo..hi, [merged]);
        self.rebuild_prefix_from(lo);
    }

    fn rebuild_prefix_from(&mut self, index: usize) {
        self.prefix.truncate(index.min(self.prefix.len()));
        while self.prefix.len() < self.intervals.len() {
            let i = self.prefix.len();
            let prev = if i == 0 {
                0.0
            } else {
                self.prefix[i - 1] + (self.intervals[i - 1].1 - self.intervals[i - 1].0)
            };
            self.prefix.push(prev);
        }
    }

    /// Covered length in `(-∞, t]`: full lengths of intervals ending
    /// before `t` plus the partial overlap of the one straddling `t`.
    pub fn coverage_up_to(&self, t: f64) -> f64 {
        // First interval with end >= t: all earlier ones count fully.
        let i = self.intervals.partition_point(|&(_, b)| b < t);
        let full = if i == 0 {
            0.0
        } else {
            self.prefix[i - 1] + (self.intervals[i - 1].1 - self.intervals[i - 1].0)
        };
        let partial = match self.intervals.get(i) {
            Some(&(a, b)) => (t.min(b) - a).max(0.0),
            None => 0.0,
        };
        full + partial
    }

    /// Covered length within `[start, end]` — two binary searches.
    pub fn measure_between(&self, start: f64, end: f64) -> f64 {
        if end <= start {
            return 0.0;
        }
        self.coverage_up_to(end) - self.coverage_up_to(start)
    }

    /// The maximal *uncovered* sub-intervals of `[start, end]`, dropping
    /// gaps of length `<= min_gap`.
    pub fn gaps_between(&self, start: f64, end: f64, min_gap: f64) -> Vec<(f64, f64)> {
        let mut gaps = Vec::new();
        let mut cursor = start;
        // First interval that could overlap [start, end].
        let from = self.intervals.partition_point(|&(_, b)| b <= start);
        for &(a, b) in &self.intervals[from..] {
            if a >= end {
                break;
            }
            if a > cursor && a.min(end) - cursor > min_gap {
                gaps.push((cursor, a.min(end)));
            }
            cursor = cursor.max(b);
            if cursor >= end {
                break;
            }
        }
        if end - cursor > min_gap {
            gaps.push((cursor, end));
        }
        gaps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axis_compresses_and_ranks() {
        let axis = EventAxis::new([3.0, 1.0, 2.0, 1.0, 3.0]);
        assert_eq!(axis.times(), &[1.0, 2.0, 3.0]);
        assert_eq!(axis.rank_of(2.0), Some(1));
        assert_eq!(axis.rank_of(2.5), None);
        assert_eq!(axis.rank_below(2.0), 1);
        assert_eq!(axis.rank_below(2.5), 2);
        assert_eq!(axis.time(2), 3.0);
    }

    #[test]
    fn axis_keeps_negative_zero_findable() {
        // -0.0 and +0.0 are distinct under total_cmp; merging them (as
        // PartialEq dedup would) makes rank_of(0.0) return None.
        let axis = EventAxis::new([-0.0, 0.0, 1.0]);
        assert_eq!(axis.len(), 3);
        assert_eq!(axis.rank_of(-0.0), Some(0));
        assert_eq!(axis.rank_of(0.0), Some(1));
        assert_eq!(axis.rank_of(1.0), Some(2));
    }

    #[test]
    fn time_key_orders_by_total_cmp_then_index() {
        let mut keys = [
            TimeKey::new(2.0, 0),
            TimeKey::new(-1.0, 1),
            TimeKey::new(0.0, 2),
            TimeKey::new(-0.0, 3),
            TimeKey::new(2.0, 1),
            TimeKey::new(f64::INFINITY, 0),
        ];
        keys.sort();
        let order: Vec<usize> = keys.iter().map(TimeKey::index).collect();
        // -1.0 < -0.0 < +0.0 < 2.0 (idx 0 then 1) < inf.
        assert_eq!(order, vec![1, 3, 2, 0, 1, 0]);
    }

    #[test]
    fn fenwick_prefix_sums() {
        let mut f = Fenwick::new(8);
        f.add(0, 1.0);
        f.add(3, 2.5);
        f.add(7, 4.0);
        assert_eq!(f.prefix_sum(0), 0.0);
        assert_eq!(f.prefix_sum(1), 1.0);
        assert_eq!(f.prefix_sum(4), 3.5);
        assert_eq!(f.prefix_sum(8), 7.5);
        f.add(3, -2.5);
        assert_eq!(f.prefix_sum(8), 5.0);
    }

    #[test]
    fn fenwick_matches_naive_on_random_patterns() {
        let n = 64;
        let mut f = Fenwick::new(n);
        let mut naive = vec![0.0f64; n];
        let mut state = 0x1234_5678u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state
        };
        for _ in 0..500 {
            let i = (next() % n as u64) as usize;
            let delta = (next() % 1000) as f64 / 100.0 - 5.0;
            f.add(i, delta);
            naive[i] += delta;
            let k = (next() % (n as u64 + 1)) as usize;
            let expect: f64 = naive[..k].iter().sum();
            assert!((f.prefix_sum(k) - expect).abs() < 1e-9);
        }
    }

    #[test]
    fn interval_set_inserts_and_merges() {
        let mut s = IntervalSet::new();
        s.insert(1.0, 2.0, 1e-9);
        s.insert(4.0, 5.0, 1e-9);
        assert_eq!(s.intervals(), &[(1.0, 2.0), (4.0, 5.0)]);
        // Bridging insert merges everything.
        s.insert(1.5, 4.5, 1e-9);
        assert_eq!(s.intervals(), &[(1.0, 5.0)]);
        assert!((s.total_measure() - 4.0).abs() < 1e-12);
        // Abutting within eps merges too.
        s.insert(5.0 + 1e-12, 6.0, 1e-9);
        assert_eq!(s.len(), 1);
        assert!((s.total_measure() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn measure_and_coverage() {
        let mut s = IntervalSet::new();
        s.insert(1.0, 3.0, 1e-9);
        s.insert(5.0, 6.0, 1e-9);
        assert!((s.coverage_up_to(0.0) - 0.0).abs() < 1e-12);
        assert!((s.coverage_up_to(2.0) - 1.0).abs() < 1e-12);
        assert!((s.coverage_up_to(4.0) - 2.0).abs() < 1e-12);
        assert!((s.coverage_up_to(10.0) - 3.0).abs() < 1e-12);
        assert!((s.measure_between(2.0, 5.5) - 1.5).abs() < 1e-12);
        assert!((s.measure_between(3.0, 5.0) - 0.0).abs() < 1e-12);
        assert_eq!(s.measure_between(5.0, 4.0), 0.0);
    }

    #[test]
    fn gaps_complement_the_measure() {
        let mut s = IntervalSet::new();
        s.insert(2.0, 3.0, 1e-9);
        s.insert(4.0, 6.0, 1e-9);
        let gaps = s.gaps_between(1.0, 7.0, 1e-9);
        assert_eq!(gaps, vec![(1.0, 2.0), (3.0, 4.0), (6.0, 7.0)]);
        let gap_len: f64 = gaps.iter().map(|(a, b)| b - a).sum();
        assert!((gap_len + s.measure_between(1.0, 7.0) - 6.0).abs() < 1e-12);
        // Window entirely inside one interval: no gaps.
        assert!(s.gaps_between(4.2, 5.8, 1e-9).is_empty());
        // Window before everything: one full gap.
        assert_eq!(s.gaps_between(0.0, 1.0, 1e-9), vec![(0.0, 1.0)]);
    }

    #[test]
    fn interval_set_matches_naive_merge_under_random_inserts() {
        let mut s = IntervalSet::new();
        let mut naive: Vec<(f64, f64)> = Vec::new();
        let mut state = 42u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for _ in 0..200 {
            let a = next() * 100.0;
            let b = a + next() * 10.0;
            s.insert(a, b, 0.0);
            naive.push((a, b));
            naive.sort_by(|x, y| x.0.total_cmp(&y.0));
            let mut merged: Vec<(f64, f64)> = Vec::new();
            for &(x, y) in &naive {
                match merged.last_mut() {
                    Some(last) if x <= last.1 => last.1 = last.1.max(y),
                    _ => merged.push((x, y)),
                }
            }
            naive = merged.clone();
            assert_eq!(s.intervals(), naive.as_slice());
            let q = next() * 120.0;
            let naive_cov: f64 = naive.iter().map(|&(x, y)| (y.min(q) - x).max(0.0)).sum();
            assert!((s.coverage_up_to(q) - naive_cov).abs() < 1e-9);
        }
    }
}
