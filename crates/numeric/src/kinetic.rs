//! Kinetic tournament over deadline ranks: `argmax_d prefix(d)/(d − t)`
//! under point weight updates and monotone time advance.
//!
//! The Optimal Available re-planning query (paper §2, `pas-core`'s
//! `deadline::oa`) asks, at every event time `t`, for the deadline `d`
//! maximizing the *remaining-work density* `W(d)/(d − t)` where `W(d)`
//! is the total remaining work with deadline at most `d`. A flat sweep
//! answers it in `O(D log n)` per event; this structure answers it in
//! `O(log n)` amortized by treating each deadline rank as a leaf whose
//! key is the linear-fractional function `t ↦ prefix(d)/(d − t)` and
//! racing the leaves in a segment-tree tournament.
//!
//! # Certificates
//!
//! Each internal node caches the winner of the race between its
//! children's winners, plus a **certificate**: three budgets measuring
//! how much the world may move before any cached race in the subtree
//! can flip —
//!
//! * a *time budget* (absolute erosion headroom per unit of elapsed
//!   time; only races currently won by the *later* leaf erode with
//!   time, at rate `S_j − S_i`, the weight between the racers),
//! * a *positive shift budget* (headroom per unit of weight **added**
//!   left of the whole subtree, which shifts every leaf's numerator up
//!   uniformly and tilts races toward the earlier leaf — so it only
//!   erodes races won by the later leaf, at rate `d_j − d_i`),
//! * a *negative shift budget* (the mirror image: weight **removed**
//!   on the left erodes earlier-winner races).
//!
//! Budgets are aggregated as the `min` over races of
//! `margin / own-rate`, so a near-tie race is only charged its own
//! sensitivities — never a distant pair's. A race between *equal*
//! prefixes (no weight strictly between the racers) is immune to
//! uniform shifts altogether — both numerators move identically, so
//! the earlier leaf keeps winning while prefixes stay non-negative;
//! this exemption is what keeps OA's long not-yet-released suffix from
//! ever revalidating. Validity is the fractional rule
//! `Δt/TB + δ⁺/SB⁺ + δ⁻/SB⁻ < 1`, which is sound for the joint
//! motion because each race's erosion is linear in all three drivers.
//!
//! [`add`](KineticTournament::add) recomputes only the `O(log n)`
//! root-to-leaf path exactly and charges the `O(log n)` subtrees
//! entirely to the right with a lazy shift tag.
//! [`advance_to`](KineticTournament::advance_to) is `O(1)`: elapsed
//! time is charged lazily at the next query. A cached winner is
//! revalidated only when its subtree's accumulated consumption actually
//! exceeds the budgets — the amortized `O(log n)`-per-event behavior
//! the OA event loop observes (E22, `BENCH_oa.json` records the
//! measured curve).
//!
//! The same rank/weight tree also maintains the **maximum inclusive
//! prefix** aggregate ([`peak_prefix`](KineticTournament::peak_prefix)),
//! which is exactly AVR's density-step maximum when the leaves are the
//! event ranks and the weights are signed density deltas (see
//! `deadline::avr::profile_peak` in `pas-core`). Weights may be
//! negative for that use; the tournament's own comparisons are only
//! meaningful for the non-negative prefix profiles OA feeds it.
//!
//! Soundness of the certificate algebra: for a cached race between
//! leaves `i < j` with numerators `S_i ≤ S_j`, the decision quantity is
//! `M(t, P) = S_i (d_j − t) − S_j (d_i − t)` where `P` is the mass left
//! of the subtree. `∂M/∂t = S_j − S_i ≥ 0` and `∂M/∂P = d_j − d_i > 0`
//! are both *constant* until a weight inside the subtree changes — and
//! any such change recomputes the node exactly, because it lies on the
//! update path. A positive-`M` (earlier-winner) race can therefore only
//! be flipped by negative shifts; a negative-`M` race only by time or
//! positive shifts. Each budget is the `min` over its susceptible races
//! of `|M| / rate`, and a child's budgets enter scaled by its remaining
//! fraction, so the aggregate check is conservative, never optimistic.

/// The argmax of a [`KineticTournament`] query: the critical deadline
/// rank and its density.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Critical {
    /// Winning deadline rank.
    pub rank: usize,
    /// The deadline time at that rank.
    pub deadline: f64,
    /// Total weight at ranks `0..=rank` (the numerator).
    pub prefix: f64,
    /// `prefix / (deadline − now)` — the OA speed if this is the
    /// critical rank.
    pub ratio: f64,
}

const NO_WINNER: usize = usize::MAX;

/// `a / b` with the convention `0 / anything = 0` (so an infinite
/// budget never produces `0 · ∞`).
fn frac_of(consumed: f64, budget: f64) -> f64 {
    if consumed == 0.0 {
        0.0
    } else {
        consumed / budget
    }
}

/// Kinetic tournament over fixed sorted x-coordinates ("deadlines")
/// with mutable leaf weights; see the module docs for the contract.
#[derive(Debug, Clone)]
pub struct KineticTournament {
    /// Leaf x-coordinates, strictly increasing and finite.
    xs: Vec<f64>,
    /// Leaf weights.
    weight: Vec<f64>,
    /// Subtree weight sums (segment-tree layout, root at 1).
    sum: Vec<f64>,
    /// Max inclusive in-subtree prefix (for the AVR density-step peak).
    maxpref: Vec<f64>,
    /// Cached winning leaf rank per node.
    win: Vec<usize>,
    /// In-subtree inclusive prefix at the cached winner.
    win_q: Vec<f64>,
    /// Time budget: elapsed time the subtree tolerates from `t_valid`.
    tb: Vec<f64>,
    /// Budget for cumulative positive left-shift (weight added left).
    sb_pos: Vec<f64>,
    /// Budget for cumulative negative left-shift (weight removed left).
    sb_neg: Vec<f64>,
    /// Positive shift consumed since `t_valid` (tags included).
    used_pos: Vec<f64>,
    /// Negative shift consumed since `t_valid` (tags included).
    used_neg: Vec<f64>,
    /// Portions of `used_*` not yet propagated to children.
    pend_pos: Vec<f64>,
    pend_neg: Vec<f64>,
    /// Time the node's cache was last recomputed.
    t_valid: Vec<f64>,
    /// Current time; only moves forward.
    now: f64,
}

impl KineticTournament {
    /// Build over strictly increasing finite `xs`, all weights zero,
    /// starting at time `t0`.
    ///
    /// # Panics
    /// If `xs` is not strictly increasing or contains non-finite
    /// values, or `t0` is not finite.
    pub fn new(xs: &[f64], t0: f64) -> Self {
        assert!(t0.is_finite(), "KineticTournament: t0 must be finite");
        assert!(
            xs.iter().all(|x| x.is_finite()),
            "KineticTournament: coordinates must be finite"
        );
        assert!(
            xs.windows(2).all(|p| p[0] < p[1]),
            "KineticTournament: coordinates must be strictly increasing"
        );
        let k = xs.len();
        let nodes = 4 * k.max(1);
        let mut kt = KineticTournament {
            xs: xs.to_vec(),
            weight: vec![0.0; k],
            sum: vec![0.0; nodes],
            maxpref: vec![0.0; nodes],
            win: vec![NO_WINNER; nodes],
            win_q: vec![0.0; nodes],
            tb: vec![f64::INFINITY; nodes],
            sb_pos: vec![f64::INFINITY; nodes],
            sb_neg: vec![f64::INFINITY; nodes],
            used_pos: vec![0.0; nodes],
            used_neg: vec![0.0; nodes],
            pend_pos: vec![0.0; nodes],
            pend_neg: vec![0.0; nodes],
            t_valid: vec![t0; nodes],
            now: t0,
        };
        if k > 0 {
            kt.build(1, 0, k);
        }
        kt
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// Whether the tournament has no ranks.
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// The current time.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// The weight at `rank`.
    ///
    /// # Panics
    /// If `rank` is out of bounds.
    pub fn weight(&self, rank: usize) -> f64 {
        self.weight[rank]
    }

    /// Total weight at ranks `0..count` (exact tree descent, `O(log n)`).
    ///
    /// # Panics
    /// If `count` exceeds the rank count.
    pub fn prefix_sum(&self, count: usize) -> f64 {
        assert!(count <= self.xs.len(), "prefix_sum out of bounds");
        if self.xs.is_empty() || count == 0 {
            return 0.0;
        }
        self.prefix_rec(1, 0, self.xs.len(), count)
    }

    fn prefix_rec(&self, v: usize, lo: usize, hi: usize, count: usize) -> f64 {
        if count >= hi {
            return self.sum[v];
        }
        let mid = usize::midpoint(lo, hi);
        if count <= mid {
            self.prefix_rec(2 * v, lo, mid, count)
        } else {
            self.sum[2 * v] + self.prefix_rec(2 * v + 1, mid, hi, count)
        }
    }

    /// Advance the clock. `O(1)`: certificates are charged lazily.
    ///
    /// # Panics
    /// If `t` moves backwards by more than `1e-9` (the clock is
    /// monotone; tiny regressions from event arithmetic are clamped).
    pub fn advance_to(&mut self, t: f64) {
        assert!(
            t >= self.now - 1e-9,
            "KineticTournament: time moved backwards ({t} < {})",
            self.now
        );
        self.now = self.now.max(t);
    }

    /// Add `delta` to the weight at `rank` (`O(log n)` exact path
    /// recomputation plus lazy tags to the right).
    ///
    /// # Panics
    /// If `rank` is out of bounds or `delta` is not finite.
    pub fn add(&mut self, rank: usize, delta: f64) {
        assert!(rank < self.xs.len(), "add out of bounds");
        assert!(delta.is_finite(), "add requires a finite delta");
        if delta == 0.0 {
            return;
        }
        self.add_rec(1, 0, self.xs.len(), rank, delta, 0.0);
    }

    fn add_rec(&mut self, v: usize, lo: usize, hi: usize, rank: usize, delta: f64, pfx: f64) {
        self.sum[v] += delta;
        if hi - lo == 1 {
            self.weight[lo] += delta;
            // Re-derive from the source of truth so the leaf and its
            // tree node cannot drift apart.
            self.sum[v] = self.weight[lo];
            self.maxpref[v] = self.weight[lo];
            self.win[v] = lo;
            self.win_q[v] = self.weight[lo];
            return;
        }
        self.pushdown(v);
        let mid = usize::midpoint(lo, hi);
        if rank < mid {
            // Every leaf of the right subtree sees its numerator shift
            // by `delta`: charge the certificate lazily.
            let r = 2 * v + 1;
            if delta > 0.0 {
                self.used_pos[r] += delta;
                self.pend_pos[r] += delta;
            } else {
                self.used_neg[r] -= delta;
                self.pend_neg[r] -= delta;
            }
            self.add_rec(2 * v, lo, mid, rank, delta, pfx);
        } else {
            self.add_rec(2 * v + 1, mid, hi, rank, delta, pfx + self.sum[2 * v]);
        }
        self.ensure_valid(2 * v, lo, mid, pfx);
        self.ensure_valid(2 * v + 1, mid, hi, pfx + self.sum[2 * v]);
        self.recompute(v, lo, hi, pfx);
    }

    /// The rank/prefix/ratio maximizing `prefix(d)/(d − now)` over ranks
    /// with deadline strictly after `now`, or `None` if every deadline
    /// has passed. Ties prefer the earliest rank.
    pub fn argmax(&mut self) -> Option<Critical> {
        self.argmax_from(0)
    }

    /// [`argmax`](KineticTournament::argmax) restricted to ranks
    /// `>= min_rank`.
    ///
    /// OA queries with `min_rank` = the earliest *unfinished* deadline
    /// rank: prefixes below it are exactly zero in real arithmetic, but
    /// carry `~1e-15` of float association noise in any tree-of-sums —
    /// and a query landing within `~1e-15` of a drained deadline would
    /// amplify that noise into a garbage ratio. Excluding the
    /// provably-zero ranks is semantically exact and keeps the noise
    /// out of the max.
    pub fn argmax_from(&mut self, min_rank: usize) -> Option<Critical> {
        let k = self.xs.len();
        let first_active = self.xs.partition_point(|&x| x <= self.now).max(min_rank);
        if first_active >= k {
            return None;
        }
        let mut best: Option<(usize, f64)> = None;
        self.query_rec(1, 0, k, first_active, 0.0, &mut best);
        let (rank, prefix) = best.expect("active range is non-empty");
        Some(Critical {
            rank,
            deadline: self.xs[rank],
            prefix,
            ratio: prefix / (self.xs[rank] - self.now),
        })
    }

    fn query_rec(
        &mut self,
        v: usize,
        lo: usize,
        hi: usize,
        active: usize,
        pfx: f64,
        best: &mut Option<(usize, f64)>,
    ) {
        if hi <= active {
            return;
        }
        if lo >= active {
            self.ensure_valid(v, lo, hi, pfx);
            let cand = (self.win[v], pfx + self.win_q[v]);
            *best = Some(match *best {
                None => cand,
                Some(b) => self.better(b, cand),
            });
            return;
        }
        self.pushdown(v);
        let mid = usize::midpoint(lo, hi);
        self.query_rec(2 * v, lo, mid, active, pfx, best);
        self.query_rec(2 * v + 1, mid, hi, active, pfx + self.sum[2 * v], best);
    }

    /// Pick the better of two candidates (`(rank, prefix)`, first has
    /// the smaller rank); ties keep the earlier rank.
    fn better(&self, a: (usize, f64), b: (usize, f64)) -> (usize, f64) {
        debug_assert!(a.0 < b.0);
        let m = a.1 * (self.xs[b.0] - self.now) - b.1 * (self.xs[a.0] - self.now);
        if m >= 0.0 {
            a
        } else {
            b
        }
    }

    /// The rank with the maximum inclusive prefix sum and that prefix —
    /// AVR's density-step maximum when weights are signed density
    /// deltas. Ties prefer the earliest rank. Time-independent.
    ///
    /// # Panics
    /// If the tournament is empty.
    pub fn peak_prefix(&self) -> (usize, f64) {
        assert!(!self.xs.is_empty(), "peak_prefix on an empty tournament");
        let mut v = 1;
        let (mut lo, mut hi) = (0usize, self.xs.len());
        let mut left_mass = 0.0;
        while hi - lo > 1 {
            let mid = usize::midpoint(lo, hi);
            let via_left = self.maxpref[2 * v];
            let via_right = self.sum[2 * v] + self.maxpref[2 * v + 1];
            if via_left >= via_right {
                v *= 2;
                hi = mid;
            } else {
                left_mass += self.sum[2 * v];
                v = 2 * v + 1;
                lo = mid;
            }
        }
        (lo, left_mass + self.maxpref[v])
    }

    fn build(&mut self, v: usize, lo: usize, hi: usize) {
        if hi - lo == 1 {
            self.win[v] = lo;
            return;
        }
        let mid = usize::midpoint(lo, hi);
        self.build(2 * v, lo, mid);
        self.build(2 * v + 1, mid, hi);
        self.recompute(v, lo, hi, 0.0);
    }

    fn pushdown(&mut self, v: usize) {
        let (pp, pn) = (self.pend_pos[v], self.pend_neg[v]);
        if pp > 0.0 || pn > 0.0 {
            for c in [2 * v, 2 * v + 1] {
                self.used_pos[c] += pp;
                self.pend_pos[c] += pp;
                self.used_neg[c] += pn;
                self.pend_neg[c] += pn;
            }
            self.pend_pos[v] = 0.0;
            self.pend_neg[v] = 0.0;
        }
    }

    /// Fraction of the node's certificate consumed (`>= 1` means some
    /// cached race may have flipped).
    fn frac(&self, v: usize) -> f64 {
        frac_of(self.now - self.t_valid[v], self.tb[v])
            + frac_of(self.used_pos[v], self.sb_pos[v])
            + frac_of(self.used_neg[v], self.sb_neg[v])
    }

    /// Charge the certificate; recompute the subtree's cache only where
    /// the accumulated consumption has actually exceeded the budgets.
    fn ensure_valid(&mut self, v: usize, lo: usize, hi: usize, pfx: f64) {
        if hi - lo == 1 || self.frac(v) < 1.0 {
            return;
        }
        self.pushdown(v);
        let mid = usize::midpoint(lo, hi);
        self.ensure_valid(2 * v, lo, mid, pfx);
        self.ensure_valid(2 * v + 1, mid, hi, pfx + self.sum[2 * v]);
        self.recompute(v, lo, hi, pfx);
    }

    /// Recompute node `v`'s race from its (valid) children at the
    /// current time, with `pfx` mass to the left of the subtree.
    fn recompute(&mut self, v: usize, lo: usize, hi: usize, pfx: f64) {
        debug_assert!(
            self.pend_pos[v] == 0.0 && self.pend_neg[v] == 0.0,
            "recompute with unpushed tags"
        );
        let mid = usize::midpoint(lo, hi);
        let (l, r) = (2 * v, 2 * v + 1);
        debug_assert!(mid - lo >= 1 && hi - mid >= 1);
        let lw = self.win[l];
        let lq = self.win_q[l];
        let rw = self.win[r];
        let rq = self.sum[l] + self.win_q[r];
        let s_l = pfx + lq;
        let s_r = pfx + rq;
        // Decision quantity for "earlier rank lw beats later rank rw".
        let m = s_l * (self.xs[rw] - self.now) - s_r * (self.xs[lw] - self.now);
        let w = (rq - lq).abs();
        let d = self.xs[rw] - self.xs[lw];
        // Own budgets: an earlier-winner race only erodes under
        // negative shifts; a later-winner race under time or positive
        // shifts (see the module docs).
        let (own_tb, own_sp, own_sn);
        if m >= 0.0 {
            self.win[v] = lw;
            self.win_q[v] = lq;
            own_tb = f64::INFINITY;
            own_sp = f64::INFINITY;
            // Equal prefixes (`w == 0`) are *immune* to uniform shifts:
            // both numerators move identically, so `M = S·Δx` keeps its
            // sign for as long as prefixes stay non-negative (the
            // argmax contract). This matters enormously for OA, where
            // the not-yet-released suffix is one long run of
            // equal-prefix races — without the exemption every drain
            // erodes their `S·Δx/Δx = S` budgets and the whole suffix
            // revalidates each time the backlog turns over.
            own_sn = if w == 0.0 { f64::INFINITY } else { m / d };
        } else {
            self.win[v] = rw;
            self.win_q[v] = rq;
            own_tb = if w > 0.0 { -m / w } else { f64::INFINITY };
            own_sp = -m / d;
            own_sn = f64::INFINITY;
        }
        // Children enter scaled by their remaining fraction: race
        // margins in a partially-consumed subtree are at least that
        // fraction of their recorded budgets.
        let mut tb = own_tb;
        let mut sp = own_sp;
        let mut sn = own_sn;
        for c in [l, r] {
            let rem = (1.0 - self.frac(c)).max(0.0);
            tb = tb.min(self.tb[c] * rem);
            sp = sp.min(self.sb_pos[c] * rem);
            sn = sn.min(self.sb_neg[c] * rem);
        }
        self.tb[v] = tb;
        self.sb_pos[v] = sp;
        self.sb_neg[v] = sn;
        self.maxpref[v] = self.maxpref[l].max(self.sum[l] + self.maxpref[r]);
        self.t_valid[v] = self.now;
        self.used_pos[v] = 0.0;
        self.used_neg[v] = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force oracle: argmax of `prefix(d)/(d − t)` over active
    /// ranks, earliest rank on exact ties.
    fn brute_argmax(xs: &[f64], weight: &[f64], t: f64) -> Option<(usize, f64)> {
        let mut prefix = 0.0;
        let mut best: Option<(usize, f64, f64)> = None;
        for (i, (&x, &w)) in xs.iter().zip(weight).enumerate() {
            prefix += w;
            if x <= t {
                continue;
            }
            let ratio = prefix / (x - t);
            match best {
                Some((_, _, r)) if ratio <= r => {}
                _ => best = Some((i, prefix, ratio)),
            }
        }
        best.map(|(i, _, r)| (i, r))
    }

    fn brute_peak(weight: &[f64]) -> (usize, f64) {
        let mut prefix = 0.0;
        let mut best = (0usize, f64::NEG_INFINITY);
        for (i, &w) in weight.iter().enumerate() {
            prefix += w;
            if prefix > best.1 {
                best = (i, prefix);
            }
        }
        best
    }

    #[test]
    fn single_rank() {
        let mut kt = KineticTournament::new(&[4.0], 0.0);
        assert_eq!(kt.argmax().unwrap().ratio, 0.0);
        kt.add(0, 8.0);
        let c = kt.argmax().unwrap();
        assert_eq!(c.rank, 0);
        assert_eq!(c.prefix, 8.0);
        assert!((c.ratio - 2.0).abs() < 1e-12);
        kt.advance_to(2.0);
        assert!((kt.argmax().unwrap().ratio - 4.0).abs() < 1e-12);
        kt.advance_to(4.0);
        assert!(kt.argmax().is_none());
    }

    #[test]
    fn earlier_rank_wins_exact_ties() {
        // Ranks at 2 and 4 with prefixes 1 and 2 from t=0: both ratios
        // are exactly 0.5; the earlier rank must win (the reference
        // sweep keeps the first maximum it sees).
        let mut kt = KineticTournament::new(&[2.0, 4.0], 0.0);
        kt.add(0, 1.0);
        kt.add(1, 1.0);
        let c = kt.argmax().unwrap();
        assert_eq!(c.rank, 0);
        assert!((c.ratio - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_prefix_ranks_are_still_candidates() {
        // Weight only at rank 0; later zero-weight ranks share the
        // prefix but have larger denominators, so rank 0 wins — and
        // once rank 0's deadline passes, the (stale-prefix) later rank
        // takes over exactly like the reference sweep.
        let mut kt = KineticTournament::new(&[1.0, 10.0], 0.0);
        kt.add(0, 3.0);
        assert_eq!(kt.argmax().unwrap().rank, 0);
        kt.advance_to(0.9);
        assert_eq!(kt.argmax().unwrap().rank, 0);
        // Drain rank 0 and cross its deadline: rank 1 carries on.
        kt.add(0, -3.0);
        kt.advance_to(2.0);
        let c = kt.argmax().unwrap();
        assert_eq!(c.rank, 1);
        assert_eq!(c.prefix, 0.0);
        assert_eq!(c.ratio, 0.0);
    }

    #[test]
    fn matches_brute_force_on_random_interleavings() {
        // 1e3 random add/advance_to interleavings against the brute
        // force, on a quantized grid so exact ties actually occur, with
        // leading zero-weight ranks.
        let k = 37;
        let xs: Vec<f64> = (0..k).map(|i| 2.0 + i as f64).collect();
        let mut state = 0x8899_aabb_ccdd_eeffu64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state
        };
        let mut kt = KineticTournament::new(&xs, 0.0);
        let mut naive = vec![0.0f64; k];
        let mut t = 0.0f64;
        for step in 0..1000 {
            match next() % 3 {
                0 | 1 => {
                    let r = (next() % k as u64) as usize;
                    // Quantized deltas (multiples of 0.25) force ties;
                    // keep weights non-negative like an OA profile.
                    let delta = (next() % 17) as f64 * 0.25 - 2.0;
                    let delta = delta.max(-naive[r]);
                    kt.add(r, delta);
                    naive[r] += delta;
                }
                _ => {
                    t += (next() % 8) as f64 * 0.125;
                    if t < kt.now() {
                        t = kt.now();
                    }
                    kt.advance_to(t);
                }
            }
            let got = kt.argmax().map(|c| (c.rank, c.ratio));
            let want = brute_argmax(&xs, &naive, t);
            match (got, want) {
                (None, None) => {}
                (Some((gr, gv)), Some((br, bv))) => {
                    assert!(
                        (gv - bv).abs() <= 1e-9 * bv.abs().max(1.0),
                        "step {step}: ratio {gv} vs brute {bv} (ranks {gr}/{br})"
                    );
                }
                other => panic!("step {step}: {other:?}"),
            }
            let (pr, pv) = kt.peak_prefix();
            let (br, bv) = brute_peak(&naive);
            assert_eq!(pr, br, "step {step}: peak rank");
            assert!((pv - bv).abs() < 1e-9, "step {step}: peak {pv} vs {bv}");
            let cut = (next() % (k as u64 + 1)) as usize;
            let want_prefix: f64 = naive[..cut].iter().sum();
            assert!((kt.prefix_sum(cut) - want_prefix).abs() < 1e-9);
        }
    }

    #[test]
    fn argmax_from_excludes_leading_ranks() {
        // Mass at rank 0 would win unrestricted; from rank 1 the later
        // rank's (prefix-inclusive) ratio is the answer.
        let mut kt = KineticTournament::new(&[2.0, 8.0], 0.0);
        kt.add(0, 4.0);
        kt.add(1, 1.0);
        assert_eq!(kt.argmax().unwrap().rank, 0);
        let c = kt.argmax_from(1).unwrap();
        assert_eq!(c.rank, 1);
        assert!((c.ratio - 5.0 / 8.0).abs() < 1e-12);
        assert!(kt.argmax_from(2).is_none());
    }

    #[test]
    fn peak_prefix_handles_negative_deltas() {
        // AVR-style signed density deltas: +1, +2, -1, -2 — the peak is
        // after the second delta.
        let mut kt = KineticTournament::new(&[0.0, 1.0, 2.0, 3.0], -1.0);
        kt.add(0, 1.0);
        kt.add(1, 2.0);
        kt.add(2, -1.0);
        kt.add(3, -2.0);
        let (rank, peak) = kt.peak_prefix();
        assert_eq!(rank, 1);
        assert!((peak - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unsorted_coordinates() {
        let _ = KineticTournament::new(&[2.0, 1.0], 0.0);
    }

    #[test]
    #[should_panic(expected = "time moved backwards")]
    fn rejects_time_regression() {
        let mut kt = KineticTournament::new(&[1.0], 0.0);
        kt.advance_to(0.5);
        kt.advance_to(0.2);
    }
}
