//! A single job: release time + work requirement.

use serde::{Deserialize, Serialize};

/// One job of the scheduling input.
///
/// `id` is the caller's identifier; algorithms preserve it through
/// sorting so results can be mapped back. `release` is the earliest time
/// the job may run; `work` is the amount of computation (time × speed)
/// it needs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Job {
    /// Caller-chosen identifier, preserved through scheduling.
    pub id: u32,
    /// Release time `r_i` (earliest start).
    pub release: f64,
    /// Work requirement `w_i > 0`.
    pub work: f64,
}

impl Job {
    /// Construct a job.
    pub fn new(id: u32, release: f64, work: f64) -> Self {
        Job { id, release, work }
    }

    /// A job's fields are valid when times are finite, release is
    /// non-negative and work strictly positive.
    pub fn is_valid(&self) -> bool {
        self.release.is_finite() && self.release >= 0.0 && self.work.is_finite() && self.work > 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validity() {
        assert!(Job::new(0, 0.0, 1.0).is_valid());
        assert!(Job::new(0, 5.0, 0.25).is_valid());
        assert!(!Job::new(0, -1.0, 1.0).is_valid());
        assert!(!Job::new(0, 0.0, 0.0).is_valid());
        assert!(!Job::new(0, 0.0, -3.0).is_valid());
        assert!(!Job::new(0, f64::NAN, 1.0).is_valid());
        assert!(!Job::new(0, 0.0, f64::INFINITY).is_valid());
    }
}
